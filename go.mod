module mdjoin

go 1.22
