// Command mdserve serves analyze-by dialect queries over HTTP with the
// hardening layers of internal/server: per-query deadlines, admission
// control over a server-wide memory pool, per-request panic isolation,
// and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	mdserve -addr :8080 Sales=sales.csv Payments=payments.csv
//
// Each positional argument preloads a relation from CSV; further tables
// can be registered at runtime with PUT /tables/{name}, and append-only
// deltas stream in via PUT /tables/{name}/append. Queries go to /query
// (?q= on GET, text body on POST) with optional ?timeout=, ?analyze=1,
// ?stats=1, and ?format=csv. Materialized MD-join views live under
// /views: POST /views/{name} with a query body compiles its MD-join into
// an incrementally-maintained materialization that every append folds
// into, GET /views/{name} reads it without re-scanning the detail
// relation. /healthz is liveness, /readyz flips to 503 once a drain
// begins, /stats reports admission, cache, and view counters.
//
// On the first SIGTERM or SIGINT the server stops admitting queries,
// waits up to -drain-timeout for in-flight ones, cancels stragglers, and
// exits; a second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mdjoin/internal/server"
	"mdjoin/internal/table"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxConc      = flag.String("max-concurrent", "8", "maximum concurrently executing queries")
		budget       = flag.String("memory-budget", "0", "server-wide aggregate-state pool in bytes (suffixes K/M/G; 0 = unbounded)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-query deadline")
		maxTimeout   = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested ?timeout=")
		admitWait    = flag.Duration("admit-wait", 100*time.Millisecond, "how long an un-admittable query queues before 429")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace for in-flight queries on shutdown")
		maxRows      = flag.Int("max-response-rows", 1_000_000, "result-size cap (413 beyond)")
		cacheSize    = flag.Int("plan-cache", 128, "prepared-plan LRU capacity")
		shareWindow  = flag.Duration("share-window", 2*time.Millisecond, "collection window for cross-query shared detail scans")
		shareOff     = flag.Bool("share-off", false, "disable cross-query shared scans")
		maxViews     = flag.Int("max-views", 16, "maximum materialized views (409 beyond)")
		viewPool     = flag.String("view-pool", "0", "memory pool for materialized views in bytes (suffixes K/M/G; 0 = unbounded)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdserve [flags] [NAME=FILE.csv ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	conc, err := strconv.Atoi(*maxConc)
	if err != nil || conc < 1 {
		log.Fatalf("mdserve: bad -max-concurrent %q", *maxConc)
	}
	pool, err := parseBytes(*budget)
	if err != nil {
		log.Fatalf("mdserve: bad -memory-budget %q: %v", *budget, err)
	}
	viewPoolBytes, err := parseBytes(*viewPool)
	if err != nil {
		log.Fatalf("mdserve: bad -view-pool %q: %v", *viewPool, err)
	}

	window := *shareWindow
	if *shareOff {
		window = 0
	}
	s := server.New(server.Config{
		MaxConcurrent:     conc,
		MemoryBudgetBytes: pool,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		AdmitWait:         *admitWait,
		DrainTimeout:      *drainTimeout,
		MaxResponseRows:   *maxRows,
		PlanCacheSize:     *cacheSize,
		ShareWindow:       window,
		MaxViews:          *maxViews,
		ViewPoolBytes:     viewPoolBytes,
	})
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			log.Fatalf("mdserve: bad table binding %q (want NAME=FILE.csv)", arg)
		}
		t, err := table.ReadCSVFile(path)
		if err != nil {
			log.Fatalf("mdserve: loading %s: %v", path, err)
		}
		s.RegisterTable(name, t)
		log.Printf("mdserve: registered %s (%d rows)", name, t.Len())
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	share := "off"
	if window > 0 {
		share = window.String()
	}
	log.Printf("mdserve: serving on %s (concurrency %d, pool %d bytes, per-query budget %d bytes, share window %s)",
		*addr, conc, pool, s.QueryBudgetBytes(), share)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("mdserve: %v", err)
	case got := <-sig:
		log.Printf("mdserve: %v: draining (grace %v)", got, *drainTimeout)
	}

	// A second signal forces exit without waiting for the drain.
	go func() {
		got := <-sig
		log.Fatalf("mdserve: %v during drain: aborting", got)
	}()

	cancelled, err := s.Drain(context.Background())
	if err != nil {
		log.Printf("mdserve: drain: %v", err)
	}
	if cancelled > 0 {
		log.Printf("mdserve: drain cancelled %d in-flight queries", cancelled)
	} else {
		log.Printf("mdserve: drained cleanly")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("mdserve: shutdown: %v", err)
	}
	if err != nil {
		os.Exit(1)
	}
}

// parseBytes parses a byte count with optional K/M/G (binary) suffix.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size")
	}
	return n * mult, nil
}
