// Command mdbench regenerates the paper's figures and headline claims and
// runs one ablation per Section 4 optimization. Each experiment prints a
// paper-style table; EXPERIMENTS.md records a captured run next to what
// the paper reports.
//
// Usage:
//
//	mdbench                 # run every experiment
//	mdbench -exp e4         # one experiment
//	mdbench -exp e4 -rows 200000
//	mdbench -json out.json  # also write machine-readable measurements
//	mdbench -out BENCH.json # same document; the BENCH_*.json snapshot path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"mdjoin"
	"mdjoin/internal/agg"
	"mdjoin/internal/baseline"
	"mdjoin/internal/core"
	"mdjoin/internal/cube"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

var rowsFlag = flag.Int("rows", 0, "override the detail row count of the selected experiment")
var jsonFlag = flag.String("json", "", "write machine-readable results to this file")
var outFlag = flag.String("out", "", "write the same machine-readable document to this file (the BENCH_*.json snapshot convention)")

// benchResult is one recorded measurement; the -json flag serializes the
// run's full list so CI and the repo's BENCH_*.json snapshots can diff
// numbers without scraping the human-readable tables.
type benchResult struct {
	Exp         string      `json:"exp"`
	Label       string      `json:"label"`
	Rows        int         `json:"rows"`
	NsPerOp     int64       `json:"ns_per_op"`
	AllocsPerOp uint64      `json:"allocs_per_op"`
	Stats       *core.Stats `json:"stats,omitempty"`
}

var (
	jsonResults []benchResult
	curExp      string
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e18 or all")
	flag.Parse()

	experiments := []struct {
		id   string
		desc string
		run  func()
	}{
		{"e1", "Figure 1(a): cube-by output and method timings", e1},
		{"e2", "Figure 1(b)/Example 2.2: tri-state pivot", e2},
		{"e3", "Example 2.3: count above cube-cell average", e3},
		{"e4", "Example 2.5 + Section 5: MD-join vs commercial-DBMS plans", e4},
		{"e5", "Figure 2: PIPESORT pipelined paths", e5},
		{"e6", "Theorem 4.1(a): memory-bounded m-scan evaluation", e6},
		{"e7", "Theorem 4.1(b): intra-operator parallelism", e7},
		{"e8", "Theorem 4.2/Obs 4.1: selection pushdown", e8},
		{"e9", "Theorem 4.3: series combining", e9},
		{"e10", "Theorem 4.4: split + equijoin", e10},
		{"e11", "Theorem 4.5: cube computation strategies", e11},
		{"e12", "Section 4.5: indexing the base-values table", e12},
		{"e13", "Section 5: dialect round-trip of the worked examples", e13},
		{"e14", "Theorem 4.1 over a disk-resident detail: memory/scan trade", e14},
		{"e15", "probe pipeline: fingerprint pre-filter on low-hit-rate θ", e15},
		{"e16", "probe pipeline: morsel scheduler vs static split under skew", e16},
		{"e17", "cross-query shared scans: concurrent queries over one R vs N relations", e17},
		{"e18", "incremental maintenance: 1% delta append vs full re-evaluation", e18},
	}

	ran := false
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		ran = true
		curExp = e.id
		fmt.Printf("=== %s: %s ===\n", e.id, e.desc)
		e.run()
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "mdbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonFlag != "" {
		writeJSON(*jsonFlag)
	}
	if *outFlag != "" {
		writeJSON(*outFlag)
	}
}

func writeJSON(path string) {
	doc := struct {
		GOMAXPROCS int           `json:"gomaxprocs"`
		Results    []benchResult `json:"results"`
	}{runtime.GOMAXPROCS(0), jsonResults}
	data, err := json.MarshalIndent(doc, "", "  ")
	check(err)
	check(os.WriteFile(path, append(data, '\n'), 0o644))
	fmt.Printf("wrote %d measurements to %s\n", len(jsonResults), path)
}

// ------------------------------------------------------------- helpers

func rows(def int) int {
	if *rowsFlag > 0 {
		return *rowsFlag
	}
	return def
}

func timeIt(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// record times f like timeIt and additionally captures one benchResult
// (wall time, heap allocation count from runtime.MemStats, and optionally
// the run's Stats) for the -json output. stats may be nil; it is attached
// by pointer so the caller can fill it inside f.
func record(label string, rows int, stats *core.Stats, f func()) time.Duration {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	f()
	d := time.Since(t0)
	runtime.ReadMemStats(&m1)
	jsonResults = append(jsonResults, benchResult{
		Exp:         curExp,
		Label:       label,
		Rows:        rows,
		NsPerOp:     d.Nanoseconds(),
		AllocsPerOp: m1.Mallocs - m0.Mallocs,
		Stats:       stats,
	})
	return d
}

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdbench:", err)
		os.Exit(1)
	}
	return v
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdbench:", err)
		os.Exit(1)
	}
}

func sales(n int, seed int64) *table.Table {
	return workload.Sales(workload.SalesConfig{Rows: n, Customers: 200, Products: 30, Seed: seed})
}

// ---------------------------------------------------------------- e1

func e1() {
	detail := workload.Sales(workload.SalesConfig{Rows: rows(20000), Products: 8, States: 5, Seed: 1})
	dims := []string{"prod", "month", "state"}
	specs := []agg.Spec{agg.NewSpec("sum", expr.C("sale"), "sum_sale")}

	out := must(cube.Compute(detail, dims, specs, cube.Options{Method: cube.Rollup}))
	out.SortBy("prod", "month", "state")
	fmt.Printf("cube(%s): %d cells over %d detail rows; Figure 1(a) layout sample:\n",
		strings.Join(dims, ","), out.Len(), detail.Len())
	fmt.Println(head(out, 6))
	for _, m := range []cube.Method{cube.Naive, cube.Rollup, cube.PipeSort, cube.MDJoinPass, cube.PartitionedCube} {
		d := record(fmt.Sprint(m), detail.Len(), nil, func() { must(cube.Compute(detail, dims, specs, cube.Options{Method: m})) })
		fmt.Printf("  %-12s %10v\n", m, d)
	}
}

// ---------------------------------------------------------------- e2

func e2() {
	detail := workload.Sales(workload.SalesConfig{Rows: rows(20000), Customers: 8, States: 5, Seed: 2})
	base := must(cube.DistinctBase(detail, "cust"))
	phase := func(state, as string) core.Phase {
		return core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), as)},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
				expr.Eq(expr.QC("R", "state"), expr.S(state))),
		}
	}
	var stats core.Stats
	out := must(core.Eval(base, detail, []core.Phase{
		phase("NY", "avg_ny"), phase("NJ", "avg_nj"), phase("CT", "avg_ct"),
	}, core.Options{Stats: &stats}))
	out.SortBy("cust")
	fmt.Println(head(out, 8))
	fmt.Printf("detail scans: %d (three restricted aggregates, one generalized MD-join)\n", stats.DetailScans)
}

// ---------------------------------------------------------------- e3

func e3() {
	detail := workload.Sales(workload.SalesConfig{Rows: rows(10000), Products: 5, States: 3, Seed: 3})
	base := must(cube.CubeBase(detail, "prod", "month"))
	steps := []core.Step{
		{Detail: "Sales", Phase: core.Phase{
			Aggs:  []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_sale")},
			Theta: cube.Theta("prod", "month"),
		}},
		{Detail: "Sales", Phase: core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("count", nil, "n_above")},
			Theta: expr.And(cube.Theta("prod", "month"),
				expr.Gt(expr.QC("R", "sale"), expr.C("avg_sale"))),
		}},
	}
	out := must(core.EvalSeries(base, map[string]*table.Table{"Sales": detail}, steps, core.Options{}))
	out.SortBy("prod", "month")
	fmt.Println(head(out, 6))
	fmt.Printf("%d cube cells, each with its own above-average count (cube-by alone cannot express this)\n", out.Len())
}

// ---------------------------------------------------------------- e4

func e4() {
	fmt.Println("Example 2.5 per (prod,month): MD-join vs multi-block join plan vs correlated subqueries")
	fmt.Printf("%10s %8s %12s %12s %12s %9s %9s\n", "|R|", "|B|", "mdjoin", "joinplan", "correlated", "vs join", "vs corr")
	sizes := []int{10000, 50000, 100000}
	if *rowsFlag > 0 {
		sizes = []int{*rowsFlag}
	}
	for _, n := range sizes {
		detail := workload.Sales(workload.SalesConfig{Rows: n, Products: 20, Years: 3, FirstYear: 1996, Seed: 4})
		filtered := must(engine.Select(detail, expr.Eq(expr.C("year"), expr.I(1997))))
		base := must(cube.DistinctBase(filtered, "prod", "month"))

		steps := windowSteps()
		var mdOut *table.Table
		md := record("mdjoin", n, nil, func() {
			mdOut = must(core.EvalSeries(base, map[string]*table.Table{"Sales": detail}, steps, core.Options{}))
		})

		subs := windowSubqueries()
		var joinOut *table.Table
		jp := record("joinplan", n, nil, func() { joinOut = must(baseline.JoinPlan(base, detail, subs)) })
		var corrOut *table.Table
		cp := record("correlated", n, nil, func() { corrOut = must(baseline.CorrelatedPlan(base, detail, subs)) })

		// Sanity: all three plans compute the same relation.
		if !joinOut.EqualSet(mdOut) || !corrOut.EqualSet(mdOut) {
			fmt.Println("WARNING: plans disagree:", mdOut.Diff(joinOut), "|", mdOut.Diff(corrOut))
		}
		fmt.Printf("%10d %8d %12v %12v %12v %8.1fx %8.1fx\n",
			n, base.Len(), md, jp, cp,
			float64(jp)/float64(md), float64(cp)/float64(md))
	}
	fmt.Println("(paper, Section 5: MD-join prototype an order of magnitude faster than a commercial DBMS)")
}

func windowSteps() []core.Step {
	prodEq := expr.Eq(expr.QC("R", "prod"), expr.C("prod"))
	return []core.Step{
		{Detail: "Sales", Phase: core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_prev")},
			Theta: expr.And(prodEq,
				expr.Eq(expr.QC("R", "month"), expr.Sub(expr.C("month"), expr.I(1)))),
		}},
		{Detail: "Sales", Phase: core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_next")},
			Theta: expr.And(prodEq,
				expr.Eq(expr.QC("R", "month"), expr.Add(expr.C("month"), expr.I(1)))),
		}},
		{Detail: "Sales", Phase: core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("count", nil, "n")},
			Theta: expr.And(prodEq,
				expr.Eq(expr.QC("R", "month"), expr.C("month")),
				expr.Gt(expr.QC("R", "sale"), expr.C("avg_prev")),
				expr.Lt(expr.QC("R", "sale"), expr.C("avg_next"))),
		}},
	}
}

func windowSubqueries() []baseline.Subquery {
	return []baseline.Subquery{
		{
			Keys:   []string{"prod", "month"},
			JoinOn: map[string]expr.Expr{"month": expr.Add(expr.C("month"), expr.I(1))},
			Aggs:   []agg.Spec{agg.NewSpec("avg", expr.C("sale"), "avg_prev")},
		},
		{
			Keys:   []string{"prod", "month"},
			JoinOn: map[string]expr.Expr{"month": expr.Sub(expr.C("month"), expr.I(1))},
			Aggs:   []agg.Spec{agg.NewSpec("avg", expr.C("sale"), "avg_next")},
		},
		{
			// The final correlated block: count sales between the
			// neighbouring months' averages.
			Keys: []string{"prod", "month"},
			Aggs: []agg.Spec{agg.NewSpec("count", nil, "n")},
			Correlated: expr.And(
				expr.Gt(expr.C("sale"), expr.QC("b", "avg_prev")),
				expr.Lt(expr.C("sale"), expr.QC("b", "avg_next"))),
		},
	}
}

// ---------------------------------------------------------------- e5

func e5() {
	detail := workload.Sales(workload.SalesConfig{Rows: rows(5000), Products: 40, Seed: 5})
	for _, dims := range [][]string{{"prod", "month"}, {"prod", "month", "state"}} {
		lat := must(cube.NewLattice(detail, dims))
		plan := cube.PlanPipeSort(lat)
		fmt.Printf("cube(%s) pipelined paths:\n%s\n", strings.Join(dims, ","), indent(plan.String()))
	}
	fmt.Println("(compare Figure 2: one pipeline from the finest sort, dashed resort paths for the rest)")
}

// ---------------------------------------------------------------- e6

func e6() {
	detail := sales(rows(100000), 6)
	base := must(cube.DistinctBase(detail, "cust", "month"))
	theta := expr.And(
		expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		expr.Eq(expr.QC("R", "month"), expr.C("month")))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total")}

	fmt.Printf("|B| = %d; Theorem 4.1 partitions trade scans of R for resident base rows\n", base.Len())
	fmt.Printf("%12s %8s %12s\n", "maxBaseRows", "scans", "time")
	for _, m := range []int{base.Len(), (base.Len() + 1) / 2, (base.Len() + 3) / 4, (base.Len() + 7) / 8} {
		stats := &core.Stats{}
		d := record(fmt.Sprintf("maxbase-%d", m), detail.Len(), stats, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}},
				core.Options{MaxBaseRows: m, Stats: stats}))
		})
		fmt.Printf("%12d %8d %12v\n", m, stats.DetailScans, d)
	}
}

// ---------------------------------------------------------------- e7

func e7() {
	detail := sales(rows(200000), 7)
	base := must(cube.DistinctBase(detail, "cust", "month"))
	theta := expr.And(
		expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		expr.Eq(expr.QC("R", "month"), expr.C("month")))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total"), agg.NewSpec("avg", expr.QC("R", "sale"), "mean")}

	fmt.Printf("|R| = %d, |B| = %d, GOMAXPROCS = %d\n", detail.Len(), base.Len(), runtime.GOMAXPROCS(0))
	fmt.Printf("%4s %16s %16s\n", "p", "B-partitioned", "R-partitioned")
	var t1 time.Duration
	for _, p := range []int{1, 2, 4, 8} {
		db := record(fmt.Sprintf("base-par-%d", p), detail.Len(), nil, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}}, core.Options{Parallelism: p}))
		})
		dr := record(fmt.Sprintf("detail-par-%d", p), detail.Len(), nil, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}}, core.Options{DetailParallelism: p}))
		})
		if p == 1 {
			t1 = db
		}
		fmt.Printf("%4d %10v (%3.1fx) %9v\n", p, db, float64(t1)/float64(db), dr)
	}
}

// ---------------------------------------------------------------- e8

func e8() {
	detail := sales(rows(200000), 8)
	base := must(cube.DistinctBase(detail, "prod"))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total")}

	// A clustered year index is emulated by pre-partitioning the detail on
	// year once (preserving row order within each partition), so the
	// pushed range selection touches only the qualifying partitions — the
	// paper's Example 4.1 setting.
	byYear := map[int64][]table.Row{}
	ycol := detail.Schema.MustColIndex("year")
	for _, r := range detail.Rows {
		y := r[ycol].AsInt()
		byYear[y] = append(byYear[y], r)
	}
	yearSlice := func(lo, hi int64) *table.Table {
		out := table.New(detail.Schema)
		for y := lo; y <= hi; y++ {
			out.Rows = append(out.Rows, byYear[y]...)
		}
		return out
	}

	fmt.Println("Example 4.1 shape: θ restricted to a year range (Theorem 4.2: push the")
	fmt.Println("R-only conjuncts into an index range scan of the detail relation)")
	fmt.Printf("%8s %14s %14s %8s %18s\n", "years", "pushed+index", "full scan", "ratio", "tuples scanned")
	for _, span := range []int64{7, 3, 1} {
		lo, hi := int64(1994), int64(1994+span-1)
		prodEq := expr.Eq(expr.QC("R", "prod"), expr.C("prod"))
		fullTheta := expr.And(prodEq,
			expr.Ge(expr.QC("R", "year"), expr.I(lo)),
			expr.Le(expr.QC("R", "year"), expr.I(hi)))
		sOn, sOff := &core.Stats{}, &core.Stats{}
		// Theorem 4.2 applied: the range moved out of θ into the scan.
		on := record(fmt.Sprintf("pushed-%dy", span), detail.Len(), sOn, func() {
			pruned := yearSlice(lo, hi)
			must(core.Eval(base, pruned, []core.Phase{{Aggs: specs, Theta: prodEq}}, core.Options{Stats: sOn}))
		})
		off := record(fmt.Sprintf("fullscan-%dy", span), detail.Len(), sOff, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: fullTheta}}, core.Options{DisablePushdown: true, Stats: sOff}))
		})
		fmt.Printf("%8d %14v %14v %7.1fx %8d vs %6d\n",
			span, on, off, float64(off)/float64(on), sOn.TuplesScanned, sOff.TuplesScanned)
	}
}

// ---------------------------------------------------------------- e9

func e9() {
	detail := sales(rows(100000), 9)
	base := must(cube.DistinctBase(detail, "cust"))
	mkPhase := func(month int64) core.Phase {
		return core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), fmt.Sprintf("m%d", month))},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
				expr.Eq(expr.QC("R", "month"), expr.I(month))),
		}
	}
	fmt.Println("k independent MD-joins: k separate scans vs one generalized MD-join (Theorem 4.3)")
	fmt.Println("memory-resident detail (scan ≈ free), then disk-resident detail (scan = CSV read, the paper's cost model)")

	// Disk-resident variant: each scan streams and parses the relation
	// from a CSV file, the cost regime the paper's scan counting assumes.
	tmp, err := os.CreateTemp("", "mdbench-sales-*.csv")
	check(err)
	defer os.Remove(tmp.Name())
	check(table.WriteCSV(tmp, detail))
	check(tmp.Close())
	loadDetail := func() *table.Table { return must(table.ReadCSVFile(tmp.Name())) }

	fmt.Printf("%4s %14s %14s %8s %14s %14s %8s\n",
		"k", "mem sep", "mem comb", "ratio", "disk sep", "disk comb", "ratio")
	for _, k := range []int{2, 4, 8} {
		var phases []core.Phase
		for i := 0; i < k; i++ {
			phases = append(phases, mkPhase(int64(i+1)))
		}
		sep := record(fmt.Sprintf("mem-separate-k%d", k), detail.Len(), nil, func() {
			cur := base
			for _, ph := range phases {
				cur = must(core.Eval(cur, detail, []core.Phase{ph}, core.Options{}))
			}
		})
		comb := record(fmt.Sprintf("mem-combined-k%d", k), detail.Len(), nil, func() {
			must(core.Eval(base, detail, phases, core.Options{}))
		})
		dsep := record(fmt.Sprintf("disk-separate-k%d", k), detail.Len(), nil, func() {
			cur := base
			for _, ph := range phases {
				cur = must(core.Eval(cur, loadDetail(), []core.Phase{ph}, core.Options{}))
			}
		})
		dcomb := record(fmt.Sprintf("disk-combined-k%d", k), detail.Len(), nil, func() {
			must(core.Eval(base, loadDetail(), phases, core.Options{}))
		})
		fmt.Printf("%4d %14v %14v %7.1fx %14v %14v %7.1fx\n",
			k, sep, comb, float64(sep)/float64(comb),
			dsep, dcomb, float64(dsep)/float64(dcomb))
	}
}

// ---------------------------------------------------------------- e10

func e10() {
	detail := sales(rows(100000), 10)
	payments := workload.Payments(workload.PaymentsConfig{Rows: rows(100000) / 2, Customers: 200, Seed: 10})
	base := must(cube.DistinctBase(detail, "cust"))
	theta1 := expr.Eq(expr.QC("R", "cust"), expr.C("cust"))
	l1 := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total_sales")}
	l2 := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "amount"), "total_paid")}

	var seqOut, splitOut *table.Table
	seq := record("sequential", detail.Len(), nil, func() {
		mid := must(core.MDJoin(base, detail, l1, theta1))
		seqOut = must(core.MDJoin(mid, payments, l2, theta1))
	})
	split := record("split-join", detail.Len(), nil, func() {
		left := must(core.MDJoin(base, detail, l1, theta1))
		right := must(core.MDJoin(base, payments, l2, theta1))
		splitOut = must(core.SplitJoin(left, right, []string{"cust"}))
	})
	agree := seqOut.EqualSet(splitOut)
	fmt.Printf("sequential series: %v\nsplit + equijoin:  %v\nresults agree: %v (Theorem 4.4)\n", seq, split, agree)
	fmt.Println("(the split halves are independent — a distributed system runs them at the data sources)")
}

// ---------------------------------------------------------------- e11

func e11() {
	fmt.Println("cube computation strategies (sum + count measures)")
	fmt.Printf("%8s %6s %12s %12s %12s %12s %12s\n", "|R|", "dims", "naive", "rollup", "pipesort", "mdjoin", "partitioned")
	for _, cfg := range []struct {
		n    int
		dims []string
	}{
		{rows(50000), []string{"prod", "month"}},
		{rows(50000), []string{"prod", "month", "state"}},
		{rows(50000), []string{"cust", "prod", "month", "state"}},
	} {
		detail := workload.Sales(workload.SalesConfig{Rows: cfg.n, Customers: 50, Products: 12, States: 6, Seed: 11})
		specs := []agg.Spec{agg.NewSpec("sum", expr.C("sale"), "total"), agg.NewSpec("count", nil, "n")}
		var ds []time.Duration
		for _, m := range []cube.Method{cube.Naive, cube.Rollup, cube.PipeSort, cube.MDJoinPass, cube.PartitionedCube} {
			m := m
			ds = append(ds, record(fmt.Sprintf("%v-%dd", m, len(cfg.dims)), cfg.n, nil, func() {
				must(cube.Compute(detail, cfg.dims, specs, cube.Options{Method: m}))
			}))
		}
		fmt.Printf("%8d %6d %12v %12v %12v %12v %12v\n", cfg.n, len(cfg.dims), ds[0], ds[1], ds[2], ds[3], ds[4])
	}
	fmt.Println("(Theorem 4.5: rollup/pipesort reuse finer cuboids; naive recomputes from detail 2^n times)")
}

// ---------------------------------------------------------------- e12

func e12() {
	detail := sales(rows(50000), 12)
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total")}
	fmt.Println("Algorithm 3.1 nested loop vs Section 4.5 hash index on B")
	fmt.Println("(columnar = chunked typed-vector executor [default], rowbatch = boxed row")
	fmt.Println(" batches, scalar = map-index tuple-at-a-time)")
	fmt.Printf("%8s %14s %14s %14s %14s %10s\n", "|B|", "columnar", "rowbatch", "scalar", "nested-loop", "nl/col")
	for _, nb := range []int{100, 1000, 5000} {
		base := must(cube.DistinctBase(detail, "cust", "month"))
		if base.Len() > nb {
			base.Rows = base.Rows[:nb]
		}
		theta := expr.And(
			expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
			expr.Eq(expr.QC("R", "month"), expr.C("month")))
		sIdx := &core.Stats{}
		// Label kept as "indexed" so BENCH_*.json snapshots diff across PRs.
		idx := record(fmt.Sprintf("indexed-b%d", base.Len()), detail.Len(), sIdx, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}}, core.Options{Stats: sIdx}))
		})
		// Every tier records its Stats so the -json snapshot carries the
		// per-phase tier/kernel counters for all four configurations.
		sRB := &core.Stats{}
		rb := record(fmt.Sprintf("rowbatch-b%d", base.Len()), detail.Len(), sRB, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}}, core.Options{DisableColumnar: true, Stats: sRB}))
		})
		sSc := &core.Stats{}
		sc := record(fmt.Sprintf("scalar-b%d", base.Len()), detail.Len(), sSc, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}}, core.Options{DisableBatch: true, Stats: sSc}))
		})
		sNL := &core.Stats{}
		nl := record(fmt.Sprintf("nested-b%d", base.Len()), detail.Len(), sNL, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}}, core.Options{DisableIndex: true, Stats: sNL}))
		})
		fmt.Printf("%8d %14v %14v %14v %14v %9.1fx\n", base.Len(), idx, rb, sc, nl, float64(nl)/float64(idx))
	}
}

// ---------------------------------------------------------------- e13

func e13() {
	detail := workload.Sales(workload.SalesConfig{Rows: rows(5000), Products: 6, States: 4, Years: 3, FirstYear: 1996, Seed: 13})
	cat := mdjoin.Catalog{"Sales": detail}
	queries := []struct{ label, src string }{
		{"Example 5.1 (cube)", "select prod, month, state, sum(sale) as total from Sales analyze by cube(prod, month, state)"},
		{"Example 5.1 (unpivot)", "select prod, month, state, sum(sale) as total from Sales analyze by unpivot(prod, month, state)"},
		{"Example 2.2", `select cust, avg(X.sale) as avg_ny, avg(Y.sale) as avg_nj, avg(Z.sale) as avg_ct
			from Sales group by cust : X, Y, Z
			such that X.cust = cust and X.state = 'NY', Y.cust = cust and Y.state = 'NJ', Z.cust = cust and Z.state = 'CT'`},
		{"Example 2.3", `select prod, month, avg(X.sale) as avg_sale, count(Y.*) as n_above
			from Sales analyze by cube(prod, month)
			such that X.prod = prod and X.month = month,
			          Y.prod = prod and Y.month = month and Y.sale > avg(X.sale)`},
		{"Example 2.5", `select prod, month, count(Z.*) as n from Sales where year = 1997
			group by prod, month : X, Y, Z
			such that X.prod = prod and X.month = month - 1,
			          Y.prod = prod and Y.month = month + 1,
			          Z.prod = prod and Z.month = month and Z.sale > avg(X.sale) and Z.sale < avg(Y.sale)`},
		{"Example 4.1", `select prod, sum(X.sale) as total_96_97, sum(Y.sale) as total_98
			from Sales group by prod : X, Y
			such that X.prod = prod and X.year >= 1996 and X.year <= 1997, Y.prod = prod and Y.year = 1998`},
	}
	for _, q := range queries {
		d := record(q.label, detail.Len(), nil, func() { must(mdjoin.Query(q.src, cat)) })
		out := must(mdjoin.Query(q.src, cat))
		fmt.Printf("  %-22s %6d rows  %10v\n", q.label, out.Len(), d)
	}
}

// ---------------------------------------------------------------- e14

func e14() {
	detail := sales(rows(100000), 14)
	tmp, err := os.CreateTemp("", "mdbench-stream-*.csv")
	check(err)
	defer os.Remove(tmp.Name())
	check(table.WriteCSV(tmp, detail))
	check(tmp.Close())
	src, err := table.NewCSVSource(tmp.Name())
	check(err)

	base := must(cube.DistinctBase(detail, "cust", "month"))
	phase := core.Phase{
		Aggs: []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total")},
		Theta: expr.And(
			expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
			expr.Eq(expr.QC("R", "month"), expr.C("month"))),
	}
	fmt.Printf("detail on disk: %d rows; |B| = %d\n", detail.Len(), base.Len())
	fmt.Printf("%14s %8s %12s\n", "budget", "scans", "time")
	for _, budget := range []int{0, 1 << 20, 256 << 10, 64 << 10} {
		label := "unbounded"
		if budget > 0 {
			label = fmt.Sprintf("%d KiB", budget/1024)
		}
		stats := &core.Stats{}
		d := record(label, detail.Len(), stats, func() {
			must(core.EvalSource(base, src, []core.Phase{phase},
				core.Options{MemoryBudgetBytes: budget, Stats: stats}))
		})
		fmt.Printf("%14s %8d %12v\n", label, stats.DetailScans, d)
	}
	fmt.Println("(Theorem 4.1: resident base rows trade against literal re-reads of the file)")
}

// ---------------------------------------------------------------- e15

func e15() {
	detail := workload.Sales(workload.SalesConfig{Rows: rows(200000), Customers: 5000, Products: 30, Seed: 15})
	full := must(cube.DistinctBase(detail, "cust", "month"))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total")}
	theta := expr.And(
		expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		expr.Eq(expr.QC("R", "month"), expr.C("month")))
	fmt.Println("low-hit-rate θ: B keeps a sliver of the key domain, so almost every probe")
	fmt.Println("misses; the index's 8-bit tag filter resolves misses without loading the")
	fmt.Println("hash array (filter counters from PhaseStats; scalar/rowbatch have none)")
	fmt.Printf("%8s %12s %12s %12s %10s %10s %8s\n",
		"|B|", "columnar", "rowbatch", "scalar", "checked", "skipped", "hit%")
	for _, nb := range []int{50, 200} {
		base := &table.Table{Schema: full.Schema, Rows: full.Rows}
		if base.Len() > nb {
			base.Rows = base.Rows[:nb]
		}
		sCol := &core.Stats{}
		col := record(fmt.Sprintf("filter-b%d", base.Len()), detail.Len(), sCol, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}}, core.Options{Stats: sCol}))
		})
		sRB := &core.Stats{}
		rb := record(fmt.Sprintf("filter-rowbatch-b%d", base.Len()), detail.Len(), sRB, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}}, core.Options{DisableColumnar: true, Stats: sRB}))
		})
		sSc := &core.Stats{}
		sc := record(fmt.Sprintf("filter-scalar-b%d", base.Len()), detail.Len(), sSc, func() {
			must(core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: theta}}, core.Options{DisableBatch: true, Stats: sSc}))
		})
		ph := sCol.Phases[0]
		hitPct := 0.0
		if ph.IndexProbes > 0 {
			hitPct = 100 * float64(ph.IndexHits) / float64(ph.IndexProbes)
		}
		fmt.Printf("%8d %12v %12v %12v %10d %10d %7.2f%%\n",
			base.Len(), col, rb, sc, ph.FilterChecked, ph.FilterSkipped, hitPct)
	}
}

// ---------------------------------------------------------------- e16

func e16() {
	n := rows(400000)
	hot := n / 4
	// Skewed survival: the first quarter of R holds every key that exists
	// in B (the per-match aggregation work), the rest only misses. A static
	// p=4 split hands all of it to worker 0; the morsel cursor spreads it.
	// Builder-built, so the parent table carries the columnar mirror the
	// morsel workers share (static sub-slices must re-transpose).
	db := table.NewBuilder(table.SchemaOf("cust", "month", "sale"))
	for i := 0; i < n; i++ {
		cust := int64(1000 + i%2000) // absent from B
		if i < hot {
			cust = int64(i % 50) // present in B
		}
		db.Append(table.Row{
			table.Int(cust),
			table.Int(int64(i%12 + 1)),
			table.Float(float64(i%97) / 3),
		})
	}
	detail := db.Table()
	base := table.New(table.SchemaOf("cust", "month"))
	for c := 0; c < 50; c++ {
		for m := 1; m <= 12; m++ {
			base.Append(table.Row{table.Int(int64(c)), table.Int(int64(m))})
		}
	}
	specs := []agg.Spec{
		agg.NewSpec("sum", expr.QC("R", "sale"), "total"),
		agg.NewSpec("avg", expr.QC("R", "sale"), "mean"),
		agg.NewSpec("min", expr.QC("R", "sale"), "lo"),
		agg.NewSpec("max", expr.QC("R", "sale"), "hi"),
	}
	phases := []core.Phase{{Aggs: specs, Theta: expr.And(
		expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		expr.Eq(expr.QC("R", "month"), expr.C("month")))}}

	const p = 4
	fmt.Printf("|R| = %d (all surviving work in the first quarter), |B| = %d, p = %d, GOMAXPROCS = %d\n",
		n, base.Len(), p, runtime.GOMAXPROCS(0))
	static := record(fmt.Sprintf("skew-static-p%d", p), n, nil, func() {
		must(core.Eval(base, detail, phases, core.Options{DetailParallelism: p, StaticDetailSplit: true}))
	})
	morsel := record(fmt.Sprintf("skew-morsel-p%d", p), n, nil, func() {
		must(core.Eval(base, detail, phases, core.Options{DetailParallelism: p}))
	})
	fmt.Printf("%14s %14s %8s\n", "static split", "morsel queue", "ratio")
	fmt.Printf("%14v %14v %7.2fx\n", static, morsel, float64(static)/float64(morsel))
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("(single-CPU host: the ratio reflects the morsel path's shared prebuilt")
		fmt.Println(" chunk mirror — static sub-slices re-transpose per worker — while the")
		fmt.Println(" straggler redistribution itself needs real cores to show in wall clock)")
	} else {
		fmt.Println("(static: worker 0 carries every surviving tuple while the rest idle;")
		fmt.Println(" the morsel cursor redistributes the hot quarter across the pool, and")
		fmt.Println(" workers share the prebuilt chunk mirror instead of re-transposing)")
	}
}

// ---------------------------------------------------------------- e17

func e17() {
	n := rows(100000)
	const nq = 8       // concurrent queries per burst
	const rounds = 4   // bursts per configuration
	const measures = 8 // fact-table measure columns
	parent := sales(n, 17)
	// A wide multi-measure fact table (the usual OLAP detail shape),
	// derived per query session: a plain table carries no prebuilt chunk
	// mirror, so every scan re-transposes each batch — the per-batch cost
	// a merged scan pays once for the whole group while solo queries pay
	// it once each.
	cols := []string{"cust", "month"}
	for m := 1; m <= measures; m++ {
		cols = append(cols, fmt.Sprintf("m%d", m))
	}
	wide := table.New(table.SchemaOf(cols...))
	ci := parent.Schema.MustColIndex("cust")
	mi := parent.Schema.MustColIndex("month")
	si := parent.Schema.MustColIndex("sale")
	for _, r := range parent.Rows {
		row := table.Row{r[ci], r[mi]}
		sale := r[si].AsFloat()
		for m := 1; m <= measures; m++ {
			row = append(row, table.Float(sale*float64(m)))
		}
		wide.Append(row)
	}
	sameR := wide
	distinctR := make([]*table.Table, nq)
	for i := range distinctR {
		distinctR[i] = &table.Table{Schema: wide.Schema, Rows: wide.Rows}
	}
	full := must(cube.DistinctBase(wide, "cust", "month"))
	base := &table.Table{Schema: full.Schema, Rows: full.Rows}
	if base.Len() > 60 {
		base.Rows = base.Rows[:60]
	}
	// E12-class probe (indexed equi-keys on B) aggregating every measure.
	specs := []agg.Spec{agg.NewSpec("count", nil, "n")}
	for m := 1; m <= measures; m++ {
		specs = append(specs, agg.NewSpec("sum", expr.QC("R", fmt.Sprintf("m%d", m)), fmt.Sprintf("t%d", m)))
	}
	phases := []core.Phase{{
		Aggs: specs,
		Theta: expr.And(
			expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
			expr.Eq(expr.QC("R", "month"), expr.C("month"))),
	}}
	opt := core.Options{DetailParallelism: runtime.GOMAXPROCS(0)}

	// burst launches one round of nq concurrent queries, query i against
	// rel(i), and waits them out.
	burst := func(se *core.SharedExecutor, rel func(int) *table.Table) {
		var wg sync.WaitGroup
		for i := 0; i < nq; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if se != nil {
					must(se.Eval(base, rel(i), phases, opt))
					return
				}
				must(core.Eval(base, rel(i), phases, opt))
			}(i)
		}
		wg.Wait()
	}
	run := func(label string, se *core.SharedExecutor, rel func(int) *table.Table) time.Duration {
		return record(label, n, nil, func() {
			for r := 0; r < rounds; r++ {
				burst(se, rel)
			}
		})
	}

	same := func(int) *table.Table { return sameR }
	each := func(i int) *table.Table { return distinctR[i] }

	solo := run(fmt.Sprintf("share-solo-n%d", nq), nil, same)
	seSame := core.NewSharedExecutor(2*time.Millisecond, nq)
	merged := run(fmt.Sprintf("share-merged-n%d", nq), seSame, same)
	seDist := core.NewSharedExecutor(2*time.Millisecond, nq)
	dist := run(fmt.Sprintf("share-distinct-n%d", nq), seDist, each)

	qps := func(d time.Duration) float64 {
		return float64(nq*rounds) / d.Seconds()
	}
	fmt.Printf("%d queries/burst x %d bursts, |R| = %d (derived: no chunk mirror), |B| = %d, GOMAXPROCS = %d\n",
		nq, rounds, n, base.Len(), runtime.GOMAXPROCS(0))
	fmt.Printf("%22s %14s %12s %14s\n", "configuration", "wall", "queries/s", "merged scans")
	st := seSame.Snapshot()
	sd := seDist.Snapshot()
	fmt.Printf("%22s %14v %12.1f %14s\n", "solo (no coordinator)", solo, qps(solo), "-")
	fmt.Printf("%22s %14v %12.1f %14d\n", "shared, one R", merged, qps(merged), st.GroupsRun)
	fmt.Printf("%22s %14v %12.1f %14d\n", fmt.Sprintf("shared, %d relations", nq), dist, qps(dist), sd.GroupsRun)
	fmt.Printf("one-R speedup over solo: %.1fx; scans saved: %d of %d submissions\n",
		float64(solo)/float64(merged), st.ScansSaved, st.Submitted)
	fmt.Printf("(scan count follows distinct relations, not query count: %d groups for one R, %d for %d relations)\n",
		st.GroupsRun, sd.GroupsRun, nq)
}

// ---------------------------------------------------------------- e18

func e18() {
	n := rows(50000)
	deltaRows := n / 100 // 1% of the backfill per round
	const roundsN = 8
	detail := sales(n, 18)
	full := must(cube.DistinctBase(detail, "cust", "month"))
	base := &table.Table{Schema: full.Schema, Rows: full.Rows}
	if base.Len() > 1000 {
		base.Rows = base.Rows[:1000]
	}
	// E12-class shape: indexed equi-keys on B's cube dimensions.
	phases := []core.Phase{{
		Aggs: []agg.Spec{
			agg.NewSpec("count", nil, "n"),
			agg.NewSpec("sum", expr.QC("R", "sale"), "total"),
		},
		Theta: expr.And(
			expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
			expr.Eq(expr.QC("R", "month"), expr.C("month"))),
	}}
	opt := core.Options{}

	// Deltas come from a disjoint pool so each round appends fresh rows.
	pool := sales(deltaRows*roundsN, 99)
	delta := func(r int) []table.Row {
		return pool.Rows[r*deltaRows : (r+1)*deltaRows]
	}

	inc := must(core.NewIncremental(base, detail.Schema, phases, opt, core.IncrementalConfig{}))
	check(inc.Append(detail.Rows))
	acc := &table.Table{Schema: detail.Schema, Rows: detail.Rows}

	// Incremental side: each round folds the delta through the probe
	// pipeline and assembles a snapshot — work proportional to the delta
	// plus |B|, never to the accumulated history.
	var incSnap *table.Table
	dInc := record(fmt.Sprintf("inc-append-%drows", deltaRows), n, nil, func() {
		for r := 0; r < roundsN; r++ {
			check(inc.Append(delta(r)))
			incSnap = must(inc.Snapshot())
		}
	})

	// Full side: the same deltas, but each round re-evaluates the MD-join
	// over everything accumulated so far — the cost a view without
	// incremental maintenance pays on every refresh.
	var fullSnap *table.Table
	dFull := record(fmt.Sprintf("full-reeval-%drows", deltaRows), n, nil, func() {
		for r := 0; r < roundsN; r++ {
			acc = &table.Table{
				Schema: acc.Schema,
				Rows:   append(acc.Rows[:len(acc.Rows):len(acc.Rows)], delta(r)...),
			}
			fullSnap = must(core.Eval(base, acc, phases, opt))
		}
	})
	if d := fullSnap.Diff(incSnap); d != "" {
		fmt.Fprintln(os.Stderr, "mdbench: incremental snapshot diverged from re-evaluation:\n"+d)
		os.Exit(1)
	}

	perInc := dInc / roundsN
	perFull := dFull / roundsN
	fmt.Printf("backfill |R| = %d, |B| = %d, delta = %d rows (1%%), %d rounds\n",
		n, base.Len(), deltaRows, roundsN)
	fmt.Printf("%24s %16s %16s\n", "maintenance strategy", "total", "per delta")
	fmt.Printf("%24s %16v %16v\n", "incremental append", dInc, perInc)
	fmt.Printf("%24s %16v %16v\n", "full re-evaluation", dFull, perFull)
	fmt.Printf("speedup per delta: %.1fx (snapshots verified identical)\n",
		float64(perFull)/float64(perInc))
}

// ------------------------------------------------------------- format

func head(t *table.Table, n int) string {
	c := table.New(t.Schema)
	for i := 0; i < len(t.Rows) && i < n; i++ {
		c.Append(t.Rows[i])
	}
	return strings.TrimRight(c.String(), "\n")
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}
