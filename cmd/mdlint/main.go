// mdlint runs the repo's project-specific static analyzers (see
// internal/analyzers and DESIGN.md §8) over the module and prints every
// finding as file:line:col: message (analyzer). Exit status 1 when
// anything is reported, 2 on loading errors.
//
// Usage:
//
//	mdlint [packages]
//
// Package patterns default to ./... relative to the module root, which
// is located from the working directory, so `go run ./cmd/mdlint` works
// from anywhere inside the module.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"mdjoin/internal/analysis"
	"mdjoin/internal/analyzers"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	modRoot, err := moduleRoot()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		return err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return err
	}
	all := analyzers.All()
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, all)
		if err != nil {
			return err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(modRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Printf("%s:%d:%d: %s\n", name, pos.Line, pos.Column, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
	return nil
}

// moduleRoot locates the enclosing module from the working directory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
