// mdlint runs the repo's project-specific static analyzers (see
// internal/analyzers and DESIGN.md §8 and §12) over the module and
// prints every finding as file:line:col: message (analyzer). Exit
// status 1 when anything is reported, 2 on loading errors.
//
// Usage:
//
//	mdlint [-timing] [packages]
//
// Package patterns default to ./... relative to the module root, which
// is located from the working directory, so `go run ./cmd/mdlint` works
// from anywhere inside the module.
//
// Packages are analyzed in dependency order under one shared fact store,
// so cross-package facts (e.g. lockhold's BlockingFacts about core's
// exported functions) are always exported before their importers are
// checked. -timing prints per-analyzer wall time to stderr, aggregated
// across all packages, slowest first.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mdjoin/internal/analysis"
	"mdjoin/internal/analyzers"
)

func main() {
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	flag.Parse()
	if err := run(flag.Args(), *timing); err != nil {
		fmt.Fprintln(os.Stderr, "mdlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, timing bool) error {
	modRoot, err := moduleRoot()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		return err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return err
	}
	runner := analysis.NewRunner()
	results, err := runner.Run(pkgs, analyzers.All())
	if err != nil {
		return err
	}
	findings := 0
	for _, pkg := range pkgs { // report in import-path order, not analysis order
		for _, d := range results[pkg] {
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(modRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Printf("%s:%d:%d: %s\n", name, pos.Line, pos.Column, d.Message)
			findings++
		}
	}
	if timing {
		printTimings(runner)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
	return nil
}

// printTimings writes the per-analyzer wall-time table, slowest first.
func printTimings(r *analysis.Runner) {
	names := make([]string, 0, len(r.Timings))
	for name := range r.Timings {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return r.Timings[names[i]] > r.Timings[names[j]] })
	fmt.Fprintln(os.Stderr, "mdlint: per-analyzer wall time:")
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "  %-14s %v\n", name, r.Timings[name].Round(100*time.Microsecond))
	}
}

// moduleRoot locates the enclosing module from the working directory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
