// Command mdq runs analyze-by dialect queries (Section 5 of the paper)
// against CSV files.
//
// Usage:
//
//	mdq -q "select cust, sum(sale) as total from Sales group by cust" Sales=sales.csv
//	mdq -f query.sql Sales=sales.csv Payments=payments.csv
//	mdq -explain -q "..." Sales=sales.csv
//
// Each positional argument binds a relation name to a CSV file (the first
// record is the header). Results print as an aligned grid; -csv emits CSV
// instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mdjoin"
)

func main() {
	var (
		query   = flag.String("q", "", "query text")
		file    = flag.String("f", "", "file containing the query")
		explain = flag.Bool("explain", false, "print the logical and optimized plans instead of executing")
		analyze = flag.Bool("analyze", false, "execute and print the plan annotated with runtime counters (EXPLAIN ANALYZE)")
		asCSV   = flag.Bool("csv", false, "emit the result as CSV")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdq [-explain|-analyze] [-csv] (-q QUERY | -f FILE) NAME=FILE.csv ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	src := *query
	if src == "" && *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	if src == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *explain {
		out, err := mdjoin.Explain(src)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		return
	}

	cat := mdjoin.Catalog{}
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("bad table binding %q (want NAME=FILE.csv)", arg))
		}
		t, err := mdjoin.ReadCSVFile(path)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", path, err))
		}
		cat[name] = t
	}
	if len(cat) == 0 {
		fatal(fmt.Errorf("no tables bound; pass NAME=FILE.csv arguments"))
	}

	if *analyze {
		text, _, err := mdjoin.ExplainAnalyze(src, cat)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		return
	}

	out, err := mdjoin.Query(src, cat)
	if err != nil {
		fatal(err)
	}
	if *asCSV {
		if err := mdjoin.WriteCSV(os.Stdout, out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdq:", err)
	os.Exit(1)
}
