// Command mdq runs analyze-by dialect queries (Section 5 of the paper)
// against CSV files, either locally or through a running mdserve.
//
// Usage:
//
//	mdq -q "select cust, sum(sale) as total from Sales group by cust" Sales=sales.csv
//	mdq -f query.sql Sales=sales.csv Payments=payments.csv
//	mdq -explain -q "..." Sales=sales.csv
//	mdq -server http://localhost:8080 -q "..."
//	mdq -server http://localhost:8080 -analyze -q "..." Sales=sales.csv
//
// Each positional argument binds a relation name to a CSV file (the first
// record is the header). Results print as an aligned grid; -csv emits CSV
// instead. With -server the query is sent to an mdserve instance: any
// NAME=FILE.csv arguments are uploaded first (PUT /tables/{name}), then
// the query runs remotely with the deadline from -timeout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"mdjoin"
)

func main() {
	var (
		query     = flag.String("q", "", "query text")
		file      = flag.String("f", "", "file containing the query")
		explain   = flag.Bool("explain", false, "print the logical and optimized plans instead of executing")
		analyze   = flag.Bool("analyze", false, "execute and print the plan annotated with runtime counters (EXPLAIN ANALYZE)")
		asCSV     = flag.Bool("csv", false, "emit the result as CSV")
		serverURL = flag.String("server", "", "mdserve base URL; run the query remotely instead of loading CSVs locally")
		timeout   = flag.Duration("timeout", 0, "per-query deadline to request from the server (0 = server default)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdq [-server URL] [-explain|-analyze] [-csv] (-q QUERY | -f FILE) NAME=FILE.csv ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	src := *query
	if src == "" && *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	if src == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *serverURL != "" {
		if *explain {
			fatal(fmt.Errorf("-explain is local-only; use -analyze against a server"))
		}
		runRemote(strings.TrimRight(*serverURL, "/"), src, flag.Args(), *analyze, *asCSV, *timeout)
		return
	}

	if *explain {
		out, err := mdjoin.Explain(src)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		return
	}

	cat := mdjoin.Catalog{}
	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("bad table binding %q (want NAME=FILE.csv)", arg))
		}
		t, err := mdjoin.ReadCSVFile(path)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", path, err))
		}
		cat[name] = t
	}
	if len(cat) == 0 {
		fatal(fmt.Errorf("no tables bound; pass NAME=FILE.csv arguments"))
	}

	if *analyze {
		text, _, err := mdjoin.ExplainAnalyze(src, cat)
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
		return
	}

	out, err := mdjoin.Query(src, cat)
	if err != nil {
		fatal(err)
	}
	if *asCSV {
		if err := mdjoin.WriteCSV(os.Stdout, out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(out)
}

// runRemote executes the query through an mdserve instance: uploads any
// NAME=FILE.csv bindings, then POSTs the query. Plain results come back
// as CSV (rendered as a grid unless -csv); -analyze requests the JSON
// envelope and prints the annotated plan.
func runRemote(base, src string, bindings []string, analyze, asCSV bool, timeout time.Duration) {
	client := &http.Client{}
	for _, arg := range bindings {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("bad table binding %q (want NAME=FILE.csv)", arg))
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, base+"/tables/"+name, f)
		if err != nil {
			f.Close()
			fatal(err)
		}
		resp, err := client.Do(req)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("uploading %s: %w", name, err))
		}
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("uploading %s: %s", name, serverError(resp)))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	params := []string{}
	if timeout > 0 {
		params = append(params, "timeout="+timeout.String())
	}
	if analyze {
		params = append(params, "analyze=1")
	} else {
		params = append(params, "format=csv")
	}
	url := base + "/query?" + strings.Join(params, "&")
	resp, err := client.Post(url, "text/plain", strings.NewReader(src))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("server: %s", serverError(resp)))
	}

	if analyze {
		var envelope struct {
			Analyze string `json:"analyze"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			fatal(fmt.Errorf("decoding response: %w", err))
		}
		fmt.Println(envelope.Analyze)
		return
	}
	if asCSV {
		if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
			fatal(err)
		}
		return
	}
	out, err := mdjoin.ReadCSV(resp.Body)
	if err != nil {
		fatal(fmt.Errorf("decoding result: %w", err))
	}
	fmt.Print(out)
}

// serverError renders an mdserve error response (the JSON envelope when
// present, the raw body otherwise).
func serverError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var envelope struct {
		RequestID string `json:"request_id"`
		Error     string `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err == nil && envelope.Error != "" {
		if envelope.RequestID != "" {
			return fmt.Sprintf("%s (status %d, request %s)", envelope.Error, resp.StatusCode, envelope.RequestID)
		}
		return fmt.Sprintf("%s (status %d)", envelope.Error, resp.StatusCode)
	}
	return fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdq:", err)
	os.Exit(1)
}
