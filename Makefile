# Verification entry points. `make check` is the full gate: vet, build,
# plain tests, and the race detector (the distributed/faultinject packages
# are goroutine-heavy, so tier-1 runs them under -race too). `make bench`
# runs the paper's experiment benchmarks (E1–E14) with allocation counts
# and the E12 executor guard; it is a separate target because the full
# sweep takes minutes.

GO ?= go

.PHONY: check vet build test race race-metrics bench bench-guard

check: vet build test race race-metrics

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The observability counters are written from worker goroutines (parallel
# partitions, concurrent scatter sites), so the metrics tests are rerun
# explicitly under the race detector with caching disabled — a cached
# `race` pass must not mask a freshly introduced data race here.
race-metrics:
	$(GO) test -race -count=1 -run 'TestStats|TestPhaseStats|TestPartitionedParallelCompose|TestEmptyRelationsParallel' ./internal/core
	$(GO) test -race -count=1 -run 'TestReport|TestScatterPhasesCallerStats' ./internal/distributed

# All E1–E14 experiment benchmarks with -benchmem, then the guards. The
# guards (also runnable alone via bench-guard) assert on the E12 workload
# that (a) the row-batch executor over the flat hash index is no slower
# than the tuple-at-a-time map-index baseline, (b) the columnar chunk
# executor is no slower than the boxed row-batch tier, and (c) enabling
# Options.Stats costs no more than 5% over a Stats==nil run — the
# regression tripwires for the executor hot path and its instrumentation.
bench: bench-guard
	$(GO) test -bench 'BenchmarkE' -benchmem -benchtime 5x -run '^$$' .
	$(GO) test ./internal/distributed -bench ScatterFragments -benchtime 20x -run '^$$'

bench-guard:
	MDJOIN_BENCH_GUARD=1 $(GO) test -run 'TestE12(Batch|Columnar)Guard|TestStatsOverheadGuard' -count=1 -v .
