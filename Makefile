# Verification entry points. `make check` is the full gate: vet, build,
# plain tests, and the race detector (the distributed/faultinject packages
# are goroutine-heavy, so tier-1 runs them under -race too). `make bench`
# runs the paper's experiment benchmarks (E1–E14) with allocation counts
# and the E12 executor guard; it is a separate target because the full
# sweep takes minutes.

GO ?= go

.PHONY: check vet build test race bench bench-guard

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# All E1–E14 experiment benchmarks with -benchmem, then the guards. The
# guards (also runnable alone via bench-guard) assert on the E12 workload
# that (a) the row-batch executor over the flat hash index is no slower
# than the tuple-at-a-time map-index baseline, and (b) the columnar chunk
# executor is no slower than the boxed row-batch tier — the regression
# tripwires for the executor hot path.
bench: bench-guard
	$(GO) test -bench 'BenchmarkE' -benchmem -benchtime 5x -run '^$$' .
	$(GO) test ./internal/distributed -bench ScatterFragments -benchtime 20x -run '^$$'

bench-guard:
	MDJOIN_BENCH_GUARD=1 $(GO) test -run 'TestE12(Batch|Columnar)Guard' -count=1 -v .
