# Verification entry points. `make check` is the full gate: vet, build,
# plain tests, and the race detector (the distributed/faultinject packages
# are goroutine-heavy, so tier-1 runs them under -race too).

GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Happy-path overhead of the fault-policy layer (ISSUE budget: <5%).
bench:
	$(GO) test ./internal/distributed -bench ScatterFragments -benchtime 20x -run '^$$'
