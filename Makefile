# Verification entry points. `make check` is the full gate: vet, build,
# plain tests, and the race detector (the distributed/faultinject packages
# are goroutine-heavy, so tier-1 runs them under -race too). `make bench`
# runs the paper's experiment benchmarks (E1–E14) with allocation counts
# and the E12 executor guard; it is a separate target because the full
# sweep takes minutes.

GO ?= go

.PHONY: check vet build test race bench bench-guard

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# All E1–E14 experiment benchmarks with -benchmem, then the guard. The
# guard (also runnable alone via bench-guard) asserts the vectorized
# batched executor over the flat hash index is no slower than the
# tuple-at-a-time map-index baseline on the E12 workload — the regression
# tripwire for the batch-executor hot path.
bench: bench-guard
	$(GO) test -bench 'BenchmarkE' -benchmem -benchtime 5x -run '^$$' .
	$(GO) test ./internal/distributed -bench ScatterFragments -benchtime 20x -run '^$$'

bench-guard:
	MDJOIN_BENCH_GUARD=1 $(GO) test -run TestE12BatchGuard -count=1 -v .
