# Verification entry points. `make check` is the full gate: formatting,
# lint (go vet plus the project's own mdlint analyzers — see DESIGN.md
# §8), build, plain tests, and the race detector (the
# distributed/faultinject packages are goroutine-heavy, so tier-1 runs
# them under -race too). `make bench` runs the paper's experiment
# benchmarks (E1–E14) with allocation counts and the E12 executor guard;
# it is a separate target because the full sweep takes minutes.
# `make fuzz-smoke` gives each native fuzz target a short budget — the
# CI slice of the continuous `go test -fuzz` runs.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check check-nolint fmt lint vet build test race race-metrics race-shared race-incremental bench bench-guard fuzz-smoke serve-smoke

check: fmt lint build test race race-metrics race-shared race-incremental

# The CI check job runs this variant: lint is its own CI job (with the
# build cache persisted across runs, since mdlint loads the module
# against export data), so the main gate does not pay for it twice.
check-nolint: fmt build test race race-metrics race-shared race-incremental

# gofmt emits nothing when the tree is clean; any path listed fails the
# gate.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# mdlint loads the module against build-cache export data, so it needs a
# build to exist; `go vet` (first) guarantees that as a side effect.
# -timing prints the per-pass wall-time table so a slow analyzer is
# visible the moment it lands.
lint: vet
	$(GO) run ./cmd/mdlint -timing ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The observability counters are written from worker goroutines (parallel
# partitions, concurrent scatter sites), so the metrics tests are rerun
# explicitly under the race detector with caching disabled — a cached
# `race` pass must not mask a freshly introduced data race here.
race-metrics:
	$(GO) test -race -count=1 -run 'TestStats|TestPhaseStats|TestPartitionedParallelCompose|TestEmptyRelationsParallel' ./internal/core
	$(GO) test -race -count=1 -run 'TestReport|TestScatterPhasesCallerStats' ./internal/distributed

# The shared-scan torture suite: concurrent queries merged into one detail
# scan while one caller cancels and another panics mid-scan — the survivors
# must complete with byte-identical results. Rerun under the race detector
# with caching disabled so a cached `race` pass cannot mask a fresh race in
# the coordinator or the merged driver's eviction path.
race-shared:
	$(GO) test -race -count=1 -run 'TestMergedScan|TestSharedExecutor|TestEvalBundles' ./internal/core

# The incremental-maintenance suite under the race detector: concurrent
# appenders racing snapshotters over one live materialization (with fault
# injection), plus the differential and windowed tests, rerun with caching
# disabled so a cached `race` pass cannot mask a fresh race in the
# arena-swap or poison paths. The view layer that builds on Incremental is
# covered by ./internal/server in `race`.
race-incremental:
	$(GO) test -race -count=1 -run 'TestIncremental' ./internal/core

# All E1–E14 experiment benchmarks with -benchmem, then the guards. The
# guards (also runnable alone via bench-guard) assert on the E12 workload
# that (a) the row-batch executor over the flat hash index is no slower
# than the tuple-at-a-time map-index baseline, (b) the columnar chunk
# executor stays 1.7x under the boxed row-batch tier (the PR 7 probe
# pipeline ratchet) with zero boxed-fallback elements, (c) the morsel
# scheduler stays 1.2x under the static split on the skewed-survival
# workload, (d) enabling Options.Stats costs no more than 5% over a
# Stats==nil run, and (e) folding a 1% delta into a live
# core.Incremental stays 10x under re-evaluating the accumulated
# relation — the regression tripwires for the executor hot path, its
# probe pipeline, its instrumentation, and incremental maintenance.
bench: bench-guard
	$(GO) test -bench 'BenchmarkE' -benchmem -benchtime 5x -run '^$$' .
	$(GO) test ./internal/distributed -bench ScatterFragments -benchtime 20x -run '^$$'

bench-guard:
	MDJOIN_BENCH_GUARD=1 $(GO) test -run 'TestE12(Batch|Columnar)Guard|TestMorselSkewGuard|TestStatsOverheadGuard|TestSharedScanGuard|TestIncrementalDeltaGuard' -count=1 -v .
	MDJOIN_BENCH_GUARD=1 $(GO) test ./internal/server -run TestServerOverheadGuard -count=1 -v

# End-to-end smoke of the mdserve lifecycle with the real binaries:
# build, serve generated Sales data, query (plain and EXPLAIN ANALYZE)
# through `mdq -server`, then SIGTERM with queries in flight and assert
# a clean drain. The in-process torture suite lives in internal/server;
# this target covers what httptest cannot — sockets, signals, processes.
serve-smoke:
	./scripts/serve_smoke.sh

# Short coverage-guided runs of each native fuzz target (the same
# harnesses run indefinitely with `go test -fuzz ...`). One target per
# invocation: the fuzz engine allows a single -fuzz pattern per package
# run.
fuzz-smoke:
	$(GO) test ./internal/analysis -run '^$$' -fuzz FuzzCFGBuild -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzIncrementalVsBatch -fuzztime $(FUZZTIME)
	$(GO) test ./internal/expr -run '^$$' -fuzz FuzzEvalChunkVsScalar -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sqlext -run '^$$' -fuzz FuzzParseTranslate -fuzztime $(FUZZTIME)
	$(GO) test ./internal/table -run '^$$' -fuzz FuzzReadCSV -fuzztime $(FUZZTIME)
