// Integration tests exercising the public facade end-to-end, the way a
// downstream user would: CSV in, operator API and dialect out, with the
// two paths cross-checked.
package mdjoin_test

import (
	"strings"
	"testing"

	"mdjoin"
	"mdjoin/internal/workload"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	csv := strings.NewReader(`cust,state,sale
alice,NY,10
alice,NJ,20
bob,NY,30
`)
	sales, err := mdjoin.ReadCSV(csv)
	if err != nil {
		t.Fatal(err)
	}
	base, err := mdjoin.DistinctBase(sales, "cust")
	if err != nil {
		t.Fatal(err)
	}
	out, err := mdjoin.MDJoin(base, sales,
		[]mdjoin.Agg{mdjoin.Sum(mdjoin.DetailCol("sale"), "total")},
		mdjoin.Eq(mdjoin.DetailCol("cust"), mdjoin.BaseCol("cust")))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
	dial, err := mdjoin.Query("select cust, sum(sale) as total from Sales group by cust",
		mdjoin.Catalog{"Sales": sales})
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualSet(dial) {
		t.Fatalf("operator API and dialect disagree:\n%s\nvs\n%s", out, dial)
	}
}

func TestFacadeAggConstructors(t *testing.T) {
	sales := workload.Sales(workload.SalesConfig{Rows: 200, Customers: 5, Seed: 1})
	base, err := mdjoin.DistinctBase(sales, "cust")
	if err != nil {
		t.Fatal(err)
	}
	out, err := mdjoin.MDJoin(base, sales,
		[]mdjoin.Agg{
			mdjoin.Count("n"),
			mdjoin.CountCol(mdjoin.DetailCol("sale"), "n_sale"),
			mdjoin.Sum(mdjoin.DetailCol("sale"), "total"),
			mdjoin.Avg(mdjoin.DetailCol("sale"), "mean"),
			mdjoin.Min(mdjoin.DetailCol("sale"), "lo"),
			mdjoin.Max(mdjoin.DetailCol("sale"), "hi"),
			mdjoin.Median(mdjoin.DetailCol("sale"), "mid"),
			mdjoin.NewAgg("count_distinct", mdjoin.DetailCol("month"), "months"),
		},
		mdjoin.Eq(mdjoin.DetailCol("cust"), mdjoin.BaseCol("cust")))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Rows {
		n := out.Value(i, "n").AsInt()
		if n == 0 {
			continue
		}
		lo := out.Value(i, "lo").AsFloat()
		hi := out.Value(i, "hi").AsFloat()
		mean := out.Value(i, "mean").AsFloat()
		mid := out.Value(i, "mid").AsFloat()
		if lo > mean || mean > hi || lo > mid || mid > hi {
			t.Errorf("row %d: aggregate sandwich violated: lo=%v mean=%v mid=%v hi=%v", i, lo, mean, mid, hi)
		}
		if m := out.Value(i, "months").AsInt(); m < 1 || m > 12 {
			t.Errorf("row %d: months distinct = %d", i, m)
		}
	}
}

func TestFacadeCube(t *testing.T) {
	sales := workload.Sales(workload.SalesConfig{Rows: 500, Products: 4, States: 3, Seed: 2})
	for _, m := range []mdjoin.CubeMethod{
		mdjoin.CubeNaive, mdjoin.CubeRollup, mdjoin.CubePipeSort,
		mdjoin.CubeMDJoin, mdjoin.CubePartitioned,
	} {
		out, err := mdjoin.ComputeCube(sales, []string{"prod", "state"},
			[]mdjoin.Agg{mdjoin.Sum(mdjoin.DetailCol("sale"), "total")}, m)
		if err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
		if out.Len() == 0 {
			t.Fatalf("method %v: empty cube", m)
		}
	}
}

func TestFacadeCubeTheta(t *testing.T) {
	sales := workload.Sales(workload.SalesConfig{Rows: 300, Products: 3, Seed: 3})
	base, err := mdjoin.CubeBase(sales, "prod", "month")
	if err != nil {
		t.Fatal(err)
	}
	out, err := mdjoin.MDJoin(base, sales,
		[]mdjoin.Agg{mdjoin.Sum(mdjoin.DetailCol("sale"), "total")},
		mdjoin.CubeTheta("prod", "month"))
	if err != nil {
		t.Fatal(err)
	}
	cube, err := mdjoin.ComputeCube(sales, []string{"prod", "month"},
		[]mdjoin.Agg{mdjoin.Sum(mdjoin.DetailCol("sale"), "total")}, mdjoin.CubeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualSet(cube) {
		t.Fatalf("MD-join cube != naive cube: %s", out.Diff(cube))
	}
}

func TestFacadeExplain(t *testing.T) {
	plan, err := mdjoin.Explain("select cust, sum(sale) as t from Sales group by cust")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "MDJoin") || !strings.Contains(plan, "optimized plan") {
		t.Errorf("unexpected explain output:\n%s", plan)
	}
}

func TestFacadeStatsAndOptions(t *testing.T) {
	sales := workload.Sales(workload.SalesConfig{Rows: 1000, Customers: 20, Seed: 4})
	base, err := mdjoin.DistinctBase(sales, "cust")
	if err != nil {
		t.Fatal(err)
	}
	var stats mdjoin.Stats
	_, err = mdjoin.MDJoinOpt(base, sales,
		[]mdjoin.Phase{{
			Aggs:  []mdjoin.Agg{mdjoin.Count("n")},
			Theta: mdjoin.Eq(mdjoin.DetailCol("cust"), mdjoin.BaseCol("cust")),
		}},
		mdjoin.Options{Stats: &stats, DetailParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TuplesScanned != sales.Len() {
		t.Errorf("tuples scanned = %d, want %d", stats.TuplesScanned, sales.Len())
	}
	if !stats.IndexUsed {
		t.Error("equi θ should use the index")
	}
}

// rangeAgg is a UDAF registered through the public API.
type rangeAgg struct{}

func (rangeAgg) Name() string                              { return "value_range" }
func (rangeAgg) Reaggregate() (mdjoin.AggregateFunc, bool) { return nil, false }
func (rangeAgg) NewState() mdjoin.AggregateState           { return &rangeState{} }

type rangeState struct {
	seen     bool
	min, max float64
}

func (s *rangeState) Add(v mdjoin.Value) {
	if !v.IsNumeric() {
		return
	}
	f := v.AsFloat()
	if !s.seen {
		s.seen, s.min, s.max = true, f, f
		return
	}
	if f < s.min {
		s.min = f
	}
	if f > s.max {
		s.max = f
	}
}

func (s *rangeState) Merge(o mdjoin.AggregateState) {
	os := o.(*rangeState)
	if os.seen {
		s.Add(mdjoin.Float(os.min))
		s.Add(mdjoin.Float(os.max))
	}
}

func (s *rangeState) Result() mdjoin.Value {
	if !s.seen {
		return mdjoin.Null()
	}
	return mdjoin.Float(s.max - s.min)
}

func TestFacadeUDAFThroughDialect(t *testing.T) {
	mdjoin.RegisterAggregate(rangeAgg{})
	sales := workload.Sales(workload.SalesConfig{Rows: 500, Customers: 5, Seed: 5})
	out, err := mdjoin.Query("select cust, value_range(sale) as spread from Sales group by cust",
		mdjoin.Catalog{"Sales": sales})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Rows {
		if v := out.Value(i, "spread"); !v.IsNull() && v.AsFloat() < 0 {
			t.Errorf("negative spread: %v", v)
		}
	}
}

func TestFacadeEvalSeriesAndSplitJoin(t *testing.T) {
	sales := workload.Sales(workload.SalesConfig{Rows: 800, Customers: 10, Seed: 6})
	pay := workload.Payments(workload.PaymentsConfig{Rows: 400, Customers: 10, Seed: 7})
	base, err := mdjoin.DistinctBase(sales, "cust")
	if err != nil {
		t.Fatal(err)
	}
	theta := mdjoin.Eq(mdjoin.DetailCol("cust"), mdjoin.BaseCol("cust"))
	steps := []mdjoin.Step{
		{Detail: "Sales", Phase: mdjoin.Phase{
			Aggs: []mdjoin.Agg{mdjoin.Sum(mdjoin.DetailCol("sale"), "sold")}, Theta: theta}},
		{Detail: "Payments", Phase: mdjoin.Phase{
			Aggs: []mdjoin.Agg{mdjoin.Sum(mdjoin.DetailCol("amount"), "paid")}, Theta: theta}},
	}
	seq, err := mdjoin.EvalSeries(base, map[string]*mdjoin.Table{"Sales": sales, "Payments": pay}, steps, mdjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := mdjoin.MDJoin(base, sales, steps[0].Aggs, theta)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mdjoin.MDJoin(base, pay, steps[1].Aggs, theta)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := mdjoin.SplitJoin(l, r, []string{"cust"})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.EqualSet(joined) {
		t.Fatalf("Theorem 4.4 via facade: %s", seq.Diff(joined))
	}
}
