package table

import (
	"fmt"
	"strings"
)

// Field describes one attribute of a relation schema.
type Field struct {
	Name string
	Type Kind // the expected payload kind; KindNull means "any"
}

// Schema is an ordered list of columns. Column names are matched
// case-insensitively, mirroring SQL identifier semantics.
type Schema struct {
	Cols []Field
	// index maps lower-cased names to ordinal positions; built lazily.
	index map[string]int
}

// NewSchema builds a schema from (name, type) columns.
func NewSchema(cols ...Field) *Schema {
	s := &Schema{Cols: cols}
	s.buildIndex()
	return s
}

// SchemaOf is a convenience constructor from names only (untyped columns).
func SchemaOf(names ...string) *Schema {
	cols := make([]Field, len(names))
	for i, n := range names {
		cols[i] = Field{Name: n}
	}
	return NewSchema(cols...)
}

func (s *Schema) buildIndex() {
	s.index = make(map[string]int, len(s.Cols))
	for i, c := range s.Cols {
		s.index[strings.ToLower(c.Name)] = i
	}
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the ordinal of the named column, or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	if s.index == nil {
		s.buildIndex()
	}
	if i, ok := s.index[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// MustColIndex returns the ordinal of the named column and panics if the
// column does not exist; used by internal plan construction where absence
// is a programming error already validated upstream.
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("table: schema %v has no column %q", s.Names(), name))
	}
	return i
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool { return s.ColIndex(name) >= 0 }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Field, len(s.Cols))
	copy(cols, s.Cols)
	return NewSchema(cols...)
}

// Append returns a new schema with extra columns appended. It is an error
// (panic) to introduce a duplicate column name: MD-join output schemas are
// constructed programmatically and duplicates indicate a bad aggregate
// alias upstream.
func (s *Schema) Append(cols ...Field) *Schema {
	out := make([]Field, 0, len(s.Cols)+len(cols))
	out = append(out, s.Cols...)
	for _, c := range cols {
		if s.Has(c.Name) {
			panic(fmt.Sprintf("table: duplicate column %q appending to %v", c.Name, s.Names()))
		}
		out = append(out, c)
	}
	return NewSchema(out...)
}

// Project returns the schema restricted to the given column names, in the
// given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	cols := make([]Field, len(names))
	for i, n := range names {
		j := s.ColIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("table: projection column %q not in schema %v", n, s.Names())
		}
		cols[i] = s.Cols[j]
	}
	return NewSchema(cols...), nil
}

// EqualNames reports whether two schemas have identical column names in
// identical order (types are advisory and ignored).
func (s *Schema) EqualNames(o *Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if !strings.EqualFold(s.Cols[i].Name, o.Cols[i].Name) {
			return false
		}
	}
	return true
}

// String renders the schema as "(a, b, c)".
func (s *Schema) String() string {
	return "(" + strings.Join(s.Names(), ", ") + ")"
}
