package table

// Prober is the vectorized probe side of the flat Index: the columnar
// chunk executor hands it whole key columns, and it hashes them with the
// typed kernels of value.go — []int64 and []float64 payloads and
// dictionary codes are hashed directly, with no boxed Value materialized
// per row — folding multi-column keys into a reusable per-position hash
// vector. Alongside the hashes it tracks a per-position probe state that
// replicates the scalar reference path's key classification (NULL keys
// kill the tuple, ALL keys degenerate to the full base loop), plus a
// third vectorized-only outcome: a position whose key provably matches no
// base row (a string absent from a dict-keyed column's dictionary, or a
// non-string key against an all-string column) is a miss — the caller
// still accounts the probe, but the index is never touched.
//
// ProbeAppend then resolves live positions against the index's 8-bit tag
// fingerprints first, so probes for absent keys usually finish without
// loading the full hash array — the pre-filter that pays off on
// low-hit-rate θs.
//
// A Prober belongs to one executor worker (it owns scratch) and is only
// built for plain multi-column equality: cube-rewritten keys (ALL
// substitution masks) keep the boxed probe path.
type Prober struct {
	ix      *Index
	hashes  []uint64
	state   []ProbeState
	keyCols []*Column    // column folded at each key position, for verify
	codes   [][]int32    // per dict-keyed position: translated index codes
	xlats   []dictMemo   // per dict-keyed position: R-dict → index-code table
	strHvs  []dictMemo64 // per value-keyed position: per-R-code string hashes
}

// ProbeState classifies one chunk position after all key columns folded.
// States combine by maximum, replicating the scalar precedence: a NULL in
// any key column kills the tuple outright, an ALL degenerates it to the
// full base loop regardless of other columns, and a miss only stands when
// every column is an ordinary live value.
type ProbeState uint8

const (
	// ProbeLive positions probe the index.
	ProbeLive ProbeState = iota
	// ProbeMiss positions count as a probe with zero hits without
	// touching the index (dictionary translation proved no base row can
	// match).
	ProbeMiss
	// ProbeDegen positions carry a detail-side ALL key and must take the
	// full base loop.
	ProbeDegen
	// ProbeDead positions carry a NULL key: strict equality with NULL is
	// never true, so the tuple matches nothing in this phase.
	ProbeDead
)

// dictMemo memoizes a per-dictionary-code translation for one source
// column: valid while the same column's append-only dictionary merely
// grows (scratch columns persist dictionaries across Reset).
type dictMemo struct {
	col   *Column
	ncode int
	tab   []int32
}

type dictMemo64 struct {
	col   *Column
	ncode int
	tab   []uint64
}

// NewProber builds a prober for the index.
func NewProber(ix *Index) *Prober {
	nk := len(ix.cols)
	return &Prober{
		ix:      ix,
		keyCols: make([]*Column, nk),
		codes:   make([][]int32, nk),
		xlats:   make([]dictMemo, nk),
		strHvs:  make([]dictMemo64, nk),
	}
}

// Begin resets the prober for a chunk of n positions: every position
// starts live with the seed hash.
func (p *Prober) Begin(n int) {
	if cap(p.hashes) < n {
		p.hashes = make([]uint64, n)
		p.state = make([]ProbeState, n)
	}
	p.hashes = p.hashes[:n]
	p.state = p.state[:n]
	for i := range p.hashes {
		p.hashes[i] = fnvBasis
	}
	for i := range p.state {
		p.state[i] = ProbeLive
	}
}

// State returns position i's classification after the key columns folded.
func (p *Prober) State(i int) ProbeState { return p.state[i] }

// FoldKeyCol folds key column k (the R-side column vector for that key
// position) into the hash vector and probe states at the selected
// positions. Columns fold in key order, once each per chunk.
func (p *Prober) FoldKeyCol(k int, col *Column, sel []int32) {
	p.keyCols[k] = col
	hasSpec := col.HasSpecial()
	if hasSpec {
		for _, si := range sel {
			i := int(si)
			if col.IsNull(i) {
				p.state[i] = ProbeDead
			} else if col.IsAll(i) && p.state[i] < ProbeDegen {
				p.state[i] = ProbeDegen
			}
		}
	}
	if p.ix.dicts[k] != nil {
		p.foldDictKeyed(k, col, sel, hasSpec)
		return
	}
	switch {
	case col.IsBoxed():
		for _, si := range sel {
			i := int(si)
			if hasSpec && (col.IsNull(i) || col.IsAll(i)) {
				continue
			}
			p.hashes[i] = combineHash(p.hashes[i], hashSingle(col.Value(i)))
		}
	case col.PayloadKind() == KindInt:
		ints := col.Ints()
		for _, si := range sel {
			i := int(si)
			if hasSpec && (col.IsNull(i) || col.IsAll(i)) {
				continue
			}
			p.hashes[i] = combineHash(p.hashes[i], hashIntKey(ints[i]))
		}
	case col.PayloadKind() == KindFloat:
		floats := col.Floats()
		for _, si := range sel {
			i := int(si)
			if hasSpec && (col.IsNull(i) || col.IsAll(i)) {
				continue
			}
			p.hashes[i] = combineHash(p.hashes[i], hashFloatKey(floats[i]))
		}
	case col.PayloadKind() == KindString:
		// Value-keyed index column fed from a dict-encoded detail column:
		// hash each distinct string once per dictionary, then fold by code.
		hv := p.strHashes(k, col)
		codes := col.Codes()
		for _, si := range sel {
			i := int(si)
			if hasSpec && (col.IsNull(i) || col.IsAll(i)) {
				continue
			}
			p.hashes[i] = combineHash(p.hashes[i], hv[codes[i]])
		}
	case col.PayloadKind() == KindBool:
		for _, si := range sel {
			i := int(si)
			if hasSpec && (col.IsNull(i) || col.IsAll(i)) {
				continue
			}
			p.hashes[i] = combineHash(p.hashes[i], hashBoolKey(col.BoolAt(i)))
		}
	}
	// PayloadKind KindNull (empty or all-special column): every selected
	// position was classified by the bitmaps above; nothing to hash.
}

// foldDictKeyed folds a column against a dict-keyed index column: detail
// dictionary codes translate to index codes through a memoized table —
// the dict→dict join path that never touches the string heap — and
// positions whose string is absent from the index dictionary become
// misses.
func (p *Prober) foldDictKeyed(k int, col *Column, sel []int32, hasSpec bool) {
	if cap(p.codes[k]) < col.Len() {
		p.codes[k] = make([]int32, col.Len())
	}
	codes := p.codes[k][:col.Len()]
	p.codes[k] = codes
	switch {
	case col.IsBoxed():
		dict := p.ix.dicts[k]
		for _, si := range sel {
			i := int(si)
			if hasSpec && (col.IsNull(i) || col.IsAll(i)) {
				continue
			}
			v := col.Value(i)
			if v.Kind() != KindString {
				if p.state[i] < ProbeMiss {
					p.state[i] = ProbeMiss
				}
				continue
			}
			bc, ok := dict[v.AsString()]
			if !ok {
				if p.state[i] < ProbeMiss {
					p.state[i] = ProbeMiss
				}
				continue
			}
			codes[i] = bc
			p.hashes[i] = combineHash(p.hashes[i], hashCodeKey(bc))
		}
	case col.PayloadKind() == KindString:
		xl := p.dictXlat(k, col)
		rc := col.Codes()
		for _, si := range sel {
			i := int(si)
			if hasSpec && (col.IsNull(i) || col.IsAll(i)) {
				continue
			}
			bc := xl[rc[i]]
			if bc < 0 {
				if p.state[i] < ProbeMiss {
					p.state[i] = ProbeMiss
				}
				continue
			}
			codes[i] = bc
			p.hashes[i] = combineHash(p.hashes[i], hashCodeKey(bc))
		}
	default:
		// Typed non-string payload against an all-string key column:
		// strings only equal strings, so every live position is a miss.
		for _, si := range sel {
			i := int(si)
			if p.state[i] < ProbeMiss {
				p.state[i] = ProbeMiss
			}
		}
	}
}

// dictXlat returns the R-dict → index-code translation for column col at
// key position k, memoized per column and extended incrementally as the
// column's append-only dictionary grows.
func (p *Prober) dictXlat(k int, col *Column) []int32 {
	m := &p.xlats[k]
	dict := col.Dict()
	if m.col != col {
		m.col, m.ncode, m.tab = col, 0, m.tab[:0]
	}
	if m.ncode < len(dict) {
		bdict := p.ix.dicts[k]
		for _, s := range dict[m.ncode:] {
			bc, ok := bdict[s]
			if !ok {
				bc = -1
			}
			m.tab = append(m.tab, bc)
		}
		m.ncode = len(dict)
	}
	return m.tab
}

// strHashes returns per-code string hashes for column col at a
// value-keyed position k, with the same memoization as dictXlat.
func (p *Prober) strHashes(k int, col *Column) []uint64 {
	m := &p.strHvs[k]
	dict := col.Dict()
	if m.col != col {
		m.col, m.ncode, m.tab = col, 0, m.tab[:0]
	}
	if m.ncode < len(dict) {
		for _, s := range dict[m.ncode:] {
			m.tab = append(m.tab, hashStringKey(s))
		}
		m.ncode = len(dict)
	}
	return m.tab
}

// ProbeAppend resolves a live position against the index, appending
// matching row ordinals to dst. The walk consults the tag fingerprints
// first; skipped reports that the probe resolved empty on tags alone,
// without a single full-hash comparison — the fingerprint pre-filter's
// hit counter.
func (p *Prober) ProbeAppend(dst []int, pos int) (_ []int, skipped bool) {
	ix := p.ix
	h := p.hashes[pos]
	tag := tagOf(h)
	s := mix64(h) & ix.mask
	compared := false
	for {
		t := ix.tags[s]
		if t == 0 {
			return dst, !compared
		}
		if t == tag {
			compared = true
			if ix.hash[s] == h {
				break
			}
		}
		s = (s + 1) & ix.mask
	}
	for ri := ix.head[s]; ri >= 0; ri = ix.next[ri] {
		if p.verify(int(ri), pos) {
			dst = append(dst, int(ri))
		}
	}
	return dst, false
}

// verify confirms a candidate row against the probed position: dict-keyed
// columns compare translated int32 codes, the rest compare values.
func (p *Prober) verify(ri, pos int) bool {
	ix := p.ix
	r := ix.tab.Rows[ri]
	for k, c := range ix.cols {
		if ix.dicts[k] != nil {
			if p.codes[k][pos] != ix.rowCodes[k][ri] {
				return false
			}
			continue
		}
		if !r[c].Equal(p.keyCols[k].Value(pos)) {
			return false
		}
	}
	return true
}
