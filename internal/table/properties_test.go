package table

import (
	"math/rand"
	"sort"
	"testing"
)

// Property tests for the storage invariants the operators lean on.

func randTable(rng *rand.Rand, n int) *Table {
	t := New(SchemaOf("a", "b", "c"))
	for i := 0; i < n; i++ {
		row := make(Row, 3)
		for j := range row {
			switch rng.Intn(8) {
			case 0:
				row[j] = Null()
			case 1:
				row[j] = All()
			case 2:
				row[j] = Str([]string{"x", "y", "z"}[rng.Intn(3)])
			case 3:
				row[j] = Float(float64(rng.Intn(6)) / 2)
			default:
				row[j] = Int(int64(rng.Intn(6)))
			}
		}
		t.Append(row)
	}
	return t
}

func TestSortIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 50; trial++ {
		tt := randTable(rng, rng.Intn(40))
		before := tt.Clone()
		tt.SortAll()
		if !tt.EqualSet(before) {
			t.Fatalf("sorting changed the multiset")
		}
		// Sorted order is actually non-decreasing under the row order.
		for i := 1; i < len(tt.Rows); i++ {
			for c := 0; c < 3; c++ {
				cmp := tt.Rows[i-1][c].Compare(tt.Rows[i][c])
				if cmp < 0 {
					break
				}
				if cmp > 0 {
					t.Fatalf("rows %d/%d out of order: %v > %v", i-1, i, tt.Rows[i-1], tt.Rows[i])
				}
			}
		}
	}
}

func TestSortIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 30; trial++ {
		tt := randTable(rng, rng.Intn(40))
		tt.SortAll()
		once := tt.Clone()
		tt.SortAll()
		for i := range tt.Rows {
			if !tt.Rows[i].Equal(once.Rows[i]) {
				t.Fatalf("second sort changed row %d", i)
			}
		}
	}
}

func TestEqualSetIsEquivalenceRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 30; trial++ {
		a := randTable(rng, rng.Intn(25))
		// b: a shuffled copy — must be EqualSet.
		b := a.Clone()
		rng.Shuffle(len(b.Rows), func(i, j int) { b.Rows[i], b.Rows[j] = b.Rows[j], b.Rows[i] })
		if !a.EqualSet(a) {
			t.Fatal("EqualSet not reflexive")
		}
		if !a.EqualSet(b) || !b.EqualSet(a) {
			t.Fatal("EqualSet not symmetric on a permutation")
		}
		if a.Len() > 0 {
			// Dropping a row must break equality.
			c := a.Clone()
			c.Rows = c.Rows[:len(c.Rows)-1]
			if a.EqualSet(c) {
				t.Fatal("EqualSet ignored a missing row")
			}
		}
	}
}

func TestIndexCoversEveryRow(t *testing.T) {
	// Probing the index with each row's own key must find that row.
	rng := rand.New(rand.NewSource(204))
	for trial := 0; trial < 30; trial++ {
		tt := randTable(rng, 1+rng.Intn(40))
		cols := []int{0, 2}
		ix := BuildIndexOrdinals(tt, cols)
		for ri, r := range tt.Rows {
			key := []Value{r[0], r[2]}
			found := false
			for _, hit := range ix.Probe(key) {
				if hit == ri {
					found = true
				}
			}
			if !found {
				t.Fatalf("row %d (%v) not found by its own key", ri, r)
			}
		}
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	// Transitivity over random value triples, via sort.SliceIsSorted on a
	// sorted slice.
	rng := rand.New(rand.NewSource(205))
	for trial := 0; trial < 50; trial++ {
		vals := make([]Value, 30)
		for i := range vals {
			switch rng.Intn(6) {
			case 0:
				vals[i] = Null()
			case 1:
				vals[i] = All()
			case 2:
				vals[i] = Str(string(rune('a' + rng.Intn(4))))
			default:
				vals[i] = Int(int64(rng.Intn(8) - 4))
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
		if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 }) {
			t.Fatalf("Compare is not a consistent total order: %v", vals)
		}
	}
}
