package table

import (
	"fmt"
	"math/rand"
	"testing"
)

// The Prober is a second implementation of the flat index's probe side;
// this file pins it against the boxed ProbeAppend reference on randomized
// base/detail pairs covering every fold path: dict→dict code translation
// (matched, mismatched, and disjoint dictionaries), typed int/float/bool
// vectors, boxed mixed-kind columns, and NULL/ALL detail keys (which the
// Prober classifies instead of probing).

// proberBase builds a base table whose key columns are either all strings
// (so the index dict-keys them) or mixed kinds (so it falls back to value
// keys), with the string pool drawn in random order so base dictionary
// codes disagree with detail dictionary codes.
func proberBase(rng *rand.Rand, allString bool, n int) *Table {
	pool := []string{"aa", "bb", "cc", "dd", "ee"}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	t := New(SchemaOf("a", "b", "v"))
	mk := func() Value {
		if allString {
			return Str(pool[rng.Intn(len(pool))])
		}
		switch rng.Intn(6) {
		case 0:
			return Null()
		case 1:
			return All()
		case 2:
			return Int(int64(rng.Intn(6)))
		case 3:
			return Float(float64(rng.Intn(6)))
		case 4:
			return Str(pool[rng.Intn(len(pool))])
		default:
			return Bool(rng.Intn(2) == 0)
		}
	}
	for i := 0; i < n; i++ {
		t.Append(Row{mk(), mk(), Int(int64(i))})
	}
	return t
}

// proberDetailValue draws a detail key: pool strings (some hit the base
// dictionary), absent strings (dictionary misses), numerics, bools, and
// the NULL/ALL specials.
func proberDetailValue(rng *rand.Rand, mode int) Value {
	switch mode {
	case 1: // strings only, absent ones included → typed dict column
		return Str([]string{"aa", "bb", "cc", "zz", "qq"}[rng.Intn(5)])
	case 2: // ints only → typed int column against possibly dict-keyed base
		return Int(int64(rng.Intn(8)))
	default: // everything → boxed column
		switch rng.Intn(8) {
		case 0:
			return Null()
		case 1:
			return All()
		case 2:
			return Int(int64(rng.Intn(6)))
		case 3:
			return Float(float64(rng.Intn(6)))
		case 4:
			return Bool(rng.Intn(2) == 0)
		case 5:
			return Str("zz") // never in the base dictionary
		default:
			return Str([]string{"aa", "bb", "cc", "dd", "ee"}[rng.Intn(5)])
		}
	}
}

// TestProberMatchesBoxedProbe is the differential oracle: fold a detail
// chunk through the Prober and compare every position's outcome with the
// boxed ProbeAppend reference. Live positions must return exactly the
// reference ordinals; miss positions must be provable misses (the boxed
// probe returns nothing); NULL/ALL positions must classify as dead/degen
// and never reach the index.
func TestProberMatchesBoxedProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		base := proberBase(rng, trial%2 == 0, 1+rng.Intn(40))
		cols := []int{0, 1}
		if trial%3 == 0 {
			cols = []int{0}
		}
		ix := BuildIndexOrdinals(base, cols)
		pr := NewProber(ix)

		mode := trial % 4 // 0,3: boxed mix; 1: string column; 2: int column
		ch := NewChunk(SchemaOf("a", "b"))
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			ch.AppendRow(Row{proberDetailValue(rng, mode), proberDetailValue(rng, mode)})
		}
		sel := make([]int32, n)
		for i := range sel {
			sel[i] = int32(i)
		}

		pr.Begin(n)
		for k, c := range cols {
			pr.FoldKeyCol(k, ch.Col(c), sel)
		}

		key := make([]Value, len(cols))
		for i := 0; i < n; i++ {
			var hasNull, hasAll bool
			for j, c := range cols {
				key[j] = ch.Value(i, c)
				hasNull = hasNull || key[j].Kind() == KindNull
				hasAll = hasAll || key[j].Kind() == KindAll
			}
			label := fmt.Sprintf("trial %d pos %d key %v", trial, i, key)
			switch st := pr.State(i); {
			case hasNull:
				if st != ProbeDead {
					t.Fatalf("%s: want dead, got %v", label, st)
				}
			case hasAll:
				if st != ProbeDegen {
					t.Fatalf("%s: want degen, got %v", label, st)
				}
			case st == ProbeMiss:
				if got := ix.ProbeAppend(nil, key); len(got) != 0 {
					t.Fatalf("%s: classified miss but boxed probe found %v", label, got)
				}
			case st == ProbeLive:
				want := ix.ProbeAppend(nil, key)
				got, skipped := pr.ProbeAppend(nil, i)
				if len(got) != len(want) {
					t.Fatalf("%s: prober %v vs boxed %v", label, got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("%s: prober %v vs boxed %v", label, got, want)
					}
				}
				if skipped && len(want) != 0 {
					t.Fatalf("%s: fingerprint skipped a hit: %v", label, want)
				}
			default:
				t.Fatalf("%s: unexpected state %v", label, st)
			}
		}
	}
}

// TestProberDisjointDicts pins the translation edge the random oracle can
// sail past: a detail dictionary sharing no string with the base
// dictionary makes every position a miss without touching the index.
func TestProberDisjointDicts(t *testing.T) {
	base := New(SchemaOf("k", "v"))
	for i, s := range []string{"aa", "bb", "cc"} {
		base.Append(Row{Str(s), Int(int64(i))})
	}
	ix := BuildIndexOrdinals(base, []int{0})
	pr := NewProber(ix)

	ch := NewChunk(SchemaOf("k"))
	for i := 0; i < 10; i++ {
		ch.AppendRow(Row{Str([]string{"xx", "yy", "zz"}[i%3])})
	}
	if ch.Col(0).IsBoxed() {
		t.Fatal("fixture must produce a dict-encoded column")
	}
	sel := make([]int32, ch.Len())
	for i := range sel {
		sel[i] = int32(i)
	}
	pr.Begin(ch.Len())
	pr.FoldKeyCol(0, ch.Col(0), sel)
	for i := 0; i < ch.Len(); i++ {
		if pr.State(i) != ProbeMiss {
			t.Fatalf("pos %d: want miss for disjoint dictionaries, got %v", i, pr.State(i))
		}
	}
}

// TestProberScratchReuse pins the allocation discipline: after a warm-up
// chunk, re-folding and re-probing the same shape must not allocate — the
// hash vector, state vector, code vectors, and translation tables are all
// reused, and the memoized dictionary work is keyed by column identity.
func TestProberScratchReuse(t *testing.T) {
	base := New(SchemaOf("k", "m", "v"))
	for i := 0; i < 32; i++ {
		base.Append(Row{Str([]string{"aa", "bb", "cc", "dd"}[i%4]), Int(int64(i % 3)), Int(int64(i))})
	}
	ix := BuildIndexOrdinals(base, []int{0, 1})
	pr := NewProber(ix)

	ch := NewChunk(SchemaOf("k", "m"))
	for i := 0; i < 64; i++ {
		ch.AppendRow(Row{Str([]string{"aa", "bb", "zz"}[i%3]), Int(int64(i % 4))})
	}
	sel := make([]int32, ch.Len())
	for i := range sel {
		sel[i] = int32(i)
	}
	buf := make([]int, 0, 64)
	probe := func() {
		pr.Begin(ch.Len())
		pr.FoldKeyCol(0, ch.Col(0), sel)
		pr.FoldKeyCol(1, ch.Col(1), sel)
		for i := 0; i < ch.Len(); i++ {
			if pr.State(i) == ProbeLive {
				buf, _ = pr.ProbeAppend(buf[:0], i)
			}
		}
	}
	probe() // warm-up sizes every scratch vector
	if allocs := testing.AllocsPerRun(20, probe); allocs != 0 {
		t.Fatalf("steady-state probe allocates %v times per chunk", allocs)
	}
}
