package table

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one tuple; len(Row) always equals the owning schema's length.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports positional value equality.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Hash folds the whole row into a 64-bit hash consistent with Equal.
func (r Row) Hash() uint64 { return HashCols(r, nil) }

// HashCols hashes the row restricted to the given column ordinals; a nil
// slice hashes every column.
func HashCols(r Row, cols []int) uint64 {
	var h uint64 = 14695981039346656037
	if cols == nil {
		for _, v := range r {
			h = hashValue(h, v)
		}
		return h
	}
	for _, c := range cols {
		h = hashValue(h, r[c])
	}
	return h
}

// EqualOn reports equality of two rows restricted to parallel column lists.
func EqualOn(a Row, acols []int, b Row, bcols []int) bool {
	for i := range acols {
		if !a[acols[i]].Equal(b[bcols[i]]) {
			return false
		}
	}
	return true
}

// Table is a materialized relation: a schema plus rows. It is the common
// currency of every operator in this repository (classic relational,
// MD-join, cube).
type Table struct {
	Schema *Schema
	Rows   []Row
	// chunks is the columnar mirror attached by Builder (see chunk.go);
	// chunkSize is the fixed size it was built with. Mutating methods
	// invalidate it; CachedChunks additionally cross-checks the total row
	// count so direct `t.Rows = ...` re-slicing cannot serve stale data.
	// In-place mutation of individual row values on a Builder-built table
	// is not supported (nothing in this repository does that).
	chunks    []*Chunk
	chunkSize int
}

// New creates an empty table with the given schema.
func New(schema *Schema) *Table {
	return &Table{Schema: schema}
}

// FromRows creates a table and validates row widths.
func FromRows(schema *Schema, rows []Row) (*Table, error) {
	for i, r := range rows {
		if len(r) != schema.Len() {
			return nil, fmt.Errorf("table: row %d has %d values, schema %v has %d columns",
				i, len(r), schema.Names(), schema.Len())
		}
	}
	return &Table{Schema: schema, Rows: rows}, nil
}

// MustFromRows is FromRows that panics on width mismatch; for literals in
// tests and examples.
func MustFromRows(schema *Schema, rows []Row) *Table {
	t, err := FromRows(schema, rows)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.Rows) }

// Append adds a row, validating its width against the schema: a mismatch
// panics with a schema-aware message, since a short or long row poisons
// every positional access downstream and indicates a construction bug at
// the call site.
func (t *Table) Append(r Row) {
	if len(r) != t.Schema.Len() {
		panic(fmt.Sprintf("table: appending row with %d values to schema %v with %d columns",
			len(r), t.Schema.Names(), t.Schema.Len()))
	}
	t.chunks = nil
	t.Rows = append(t.Rows, r)
}

// Clone returns a deep copy (rows are copied; Values are immutable).
func (t *Table) Clone() *Table {
	rows := make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = r.Clone()
	}
	return &Table{Schema: t.Schema.Clone(), Rows: rows}
}

// Col returns the ordinal of the named column or -1.
func (t *Table) Col(name string) int { return t.Schema.ColIndex(name) }

// Value returns the value at (row, named column); panics on a bad name.
func (t *Table) Value(row int, col string) Value {
	return t.Rows[row][t.Schema.MustColIndex(col)]
}

// SortBy sorts rows in place by the named columns ascending, using the
// Value total order. It returns the table for chaining.
func (t *Table) SortBy(cols ...string) *Table {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.Schema.MustColIndex(c)
	}
	return t.SortByOrdinals(idx)
}

// SortByOrdinals sorts rows in place by column ordinals ascending. The
// sort is unstable — relations are multisets, so no operator depends on
// the relative order of equal-key rows.
func (t *Table) SortByOrdinals(idx []int) *Table {
	t.chunks = nil // row order diverges from the columnar mirror
	sort.Slice(t.Rows, func(a, b int) bool {
		ra, rb := t.Rows[a], t.Rows[b]
		for _, c := range idx {
			if cmp := ra[c].Compare(rb[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return t
}

// SortAll sorts rows by every column left to right; handy for canonical
// forms in equivalence tests.
func (t *Table) SortAll() *Table {
	idx := make([]int, t.Schema.Len())
	for i := range idx {
		idx[i] = i
	}
	return t.SortByOrdinals(idx)
}

// EqualSet reports whether two tables have identical schemas (by name) and
// the same multiset of rows, ignoring order. It is the equivalence used by
// every theorem test (relations are multisets).
func (t *Table) EqualSet(o *Table) bool {
	if !t.Schema.EqualNames(o.Schema) || len(t.Rows) != len(o.Rows) {
		return false
	}
	a := t.Clone().SortAll()
	b := o.Clone().SortAll()
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference between
// two tables compared as multisets, or "" if they are equivalent. Used by
// tests to produce actionable failures.
func (t *Table) Diff(o *Table) string {
	if !t.Schema.EqualNames(o.Schema) {
		return fmt.Sprintf("schema mismatch: %v vs %v", t.Schema.Names(), o.Schema.Names())
	}
	if len(t.Rows) != len(o.Rows) {
		return fmt.Sprintf("row count mismatch: %d vs %d", len(t.Rows), len(o.Rows))
	}
	a := t.Clone().SortAll()
	b := o.Clone().SortAll()
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			return fmt.Sprintf("row %d differs: %v vs %v", i, a.Rows[i], b.Rows[i])
		}
	}
	return ""
}

// String renders the table as an aligned text grid (column header, rule,
// rows), the format cmd/mdq and cmd/mdbench print.
func (t *Table) String() string {
	names := t.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r))
		for ci, v := range r {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, s := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			for p := len(s); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range cells {
		writeRow(r)
	}
	return b.String()
}

// The hash indexes over table columns (Section 4.5 base-values indexing)
// live in index.go: the cache-friendly open-addressing Index used by the
// executors, and the map-backed MapIndex kept as the reference
// implementation.
