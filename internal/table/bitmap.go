package table

// Bitmap is a dense bit vector used by columnar chunks for validity
// tracking: one bit per row position. Chunks keep two bitmaps per column —
// one for SQL NULL and one for the data-cube ALL placeholder (Gray et
// al.) — so the typed payload arrays stay free of per-value kind tags. A
// set bit marks the position as NULL (resp. ALL); a position with neither
// bit set holds a valid typed payload.
type Bitmap []uint64

// NewBitmap returns a bitmap able to hold n bits, all clear.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// grow returns b extended (reusing capacity when possible) to hold n bits;
// any newly exposed words are zeroed.
func (b Bitmap) grow(n int) Bitmap {
	words := (n + 63) / 64
	if words <= len(b) {
		return b
	}
	if words <= cap(b) {
		ext := b[len(b):words]
		for i := range ext {
			ext[i] = 0
		}
		return b[:words]
	}
	out := make(Bitmap, words)
	copy(out, b)
	return out
}

// reset clears every word and truncates to zero length, keeping capacity.
func (b Bitmap) reset() Bitmap {
	for i := range b {
		b[i] = 0
	}
	return b[:0]
}
