package table

import "fmt"

// ChunkSize is the default number of rows per columnar chunk. The batch
// executor in internal/core aliases this so that tables built through
// Builder hand their cached chunks straight to the scan without a
// transpose.
const ChunkSize = 1024

// Column is one typed vector of a Chunk: struct-of-arrays storage for a
// single attribute across the chunk's rows. The payload lives in a typed
// array chosen by the column's payload kind — []int64, []float64,
// dictionary-encoded strings ([]int32 codes into a string dictionary), or
// packed bools — while SQL NULL and the data-cube ALL placeholder are
// carried out-of-band in two validity bitmaps. A position with neither
// bit set holds a valid payload; the payload slot under a set bit is
// undefined and must not be read.
//
// A column whose values mix payload kinds (legal: Value is dynamically
// typed and relations are schema-flexible) demotes itself to a boxed
// []Value representation; IsBoxed reports this and kernels fall back to
// the generic boxed path.
type Column struct {
	kind    Kind // payload kind; KindNull until the first valid value
	n       int
	ints    []int64
	floats  []float64
	bools   Bitmap // packed bool payload
	dict    []string
	codes   []int32
	dictIdx map[string]int32 // builder state; persists across Reset
	isBoxed bool
	boxed   []Value
	nulls   Bitmap
	alls    Bitmap
	hasNull bool
	hasAll  bool
}

// Len returns the number of positions in the column.
func (c *Column) Len() int { return c.n }

// PayloadKind returns the kind of the typed payload array, or KindNull
// when the column is boxed, empty, or entirely NULL/ALL.
func (c *Column) PayloadKind() Kind {
	if c.isBoxed {
		return KindNull
	}
	return c.kind
}

// IsBoxed reports whether the column fell back to boxed []Value storage
// because its values mix payload kinds.
func (c *Column) IsBoxed() bool { return c.isBoxed }

// IsNull reports whether position i is SQL NULL.
func (c *Column) IsNull(i int) bool { return c.hasNull && c.nulls.Get(i) }

// IsAll reports whether position i is the cube ALL placeholder.
func (c *Column) IsAll(i int) bool { return c.hasAll && c.alls.Get(i) }

// HasSpecial reports whether any position is NULL or ALL; kernels hoist
// this to skip per-row validity checks on fully valid columns.
func (c *Column) HasSpecial() bool { return c.hasNull || c.hasAll }

// Ints returns the int64 payload array (PayloadKind KindInt only).
func (c *Column) Ints() []int64 { return c.ints }

// Floats returns the float64 payload array (PayloadKind KindFloat only).
func (c *Column) Floats() []float64 { return c.floats }

// BoolAt returns the packed bool payload at i (PayloadKind KindBool only).
func (c *Column) BoolAt(i int) bool { return c.bools.Get(i) }

// StrAt returns the decoded string payload at i (PayloadKind KindString
// only; undefined at NULL/ALL positions).
func (c *Column) StrAt(i int) string { return c.dict[c.codes[i]] }

// Dict returns the string dictionary (PayloadKind KindString only). The
// dictionary is append-only and persists across Reset, so codes from
// earlier fills of a reused scratch column stay decodable.
func (c *Column) Dict() []string { return c.dict }

// Codes returns the dictionary codes array (PayloadKind KindString only).
func (c *Column) Codes() []int32 { return c.codes }

// Boxed returns the boxed values, or nil when the column is typed.
func (c *Column) Boxed() []Value {
	if !c.isBoxed {
		return nil
	}
	return c.boxed
}

// Value boxes position i back into a Value; this is the row-view bridge
// used by the scalar reference path and by generic fallbacks.
func (c *Column) Value(i int) Value {
	if c.hasNull && c.nulls.Get(i) {
		return Value{}
	}
	if c.hasAll && c.alls.Get(i) {
		return All()
	}
	if c.isBoxed {
		return c.boxed[i]
	}
	switch c.kind {
	case KindInt:
		return Int(c.ints[i])
	case KindFloat:
		return Float(c.floats[i])
	case KindString:
		return Str(c.dict[c.codes[i]])
	case KindBool:
		return Bool(c.bools.Get(i))
	}
	return Value{}
}

// AppendValue appends v, adapting the representation: the first valid
// value fixes the payload kind, NULL/ALL only touch the bitmaps, and a
// kind mismatch demotes the whole column to boxed storage.
func (c *Column) AppendValue(v Value) {
	i := c.n
	c.n++
	c.nulls = c.nulls.grow(c.n)
	c.alls = c.alls.grow(c.n)
	if c.isBoxed {
		c.boxed = append(c.boxed, v)
		c.noteSpecial(i, v)
		return
	}
	if v.kind == KindNull || v.kind == KindAll {
		c.noteSpecial(i, v)
		c.appendZero()
		return
	}
	if c.kind == KindNull {
		// First valid value: fix the kind and backfill placeholder slots
		// for any leading NULL/ALL positions.
		c.kind = v.kind
		for j := 0; j < i; j++ {
			c.appendZero()
		}
	}
	if v.kind != c.kind {
		c.demote()
		c.boxed = append(c.boxed, v)
		return
	}
	switch c.kind {
	case KindInt:
		c.ints = append(c.ints, v.i)
	case KindFloat:
		c.floats = append(c.floats, v.f)
	case KindString:
		c.codes = append(c.codes, c.code(v.s))
	case KindBool:
		c.bools = c.bools.grow(c.n)
		if v.i != 0 {
			c.bools.Set(i)
		}
	}
}

// appendZero extends the typed payload array with an undefined placeholder
// so it stays positional under a NULL/ALL bit.
func (c *Column) appendZero() {
	switch c.kind {
	case KindInt:
		c.ints = append(c.ints, 0)
	case KindFloat:
		c.floats = append(c.floats, 0)
	case KindString:
		c.codes = append(c.codes, 0)
	case KindBool:
		c.bools = c.bools.grow(c.n)
	}
}

// demote rebuilds the column as boxed []Value; values appended so far are
// boxed via Value (bitmaps already carry the specials).
func (c *Column) demote() {
	vals := make([]Value, c.n-1, c.n)
	for i := range vals {
		vals[i] = c.Value(i)
	}
	c.isBoxed = true
	c.boxed = vals
}

func (c *Column) code(s string) int32 {
	if c.dictIdx == nil {
		c.dictIdx = make(map[string]int32)
	}
	if id, ok := c.dictIdx[s]; ok {
		return id
	}
	id := int32(len(c.dict))
	c.dict = append(c.dict, s)
	c.dictIdx[s] = id
	return id
}

func (c *Column) noteSpecial(i int, v Value) {
	switch v.kind {
	case KindNull:
		c.nulls.Set(i)
		c.hasNull = true
	case KindAll:
		c.alls.Set(i)
		c.hasAll = true
	}
}

// Reset truncates the column to zero length, keeping allocated capacity
// and the string dictionary (codes are append-only across fills).
func (c *Column) Reset() {
	c.n = 0
	c.kind = KindNull
	c.ints = c.ints[:0]
	c.floats = c.floats[:0]
	c.codes = c.codes[:0]
	c.bools = c.bools.reset()
	c.isBoxed = false
	c.boxed = c.boxed[:0]
	c.nulls = c.nulls.reset()
	c.alls = c.alls.reset()
	c.hasNull, c.hasAll = false, false
}

// ResetTyped prepares the column as a positional output vector of n slots
// with payload kind k (KindInt, KindFloat, or KindBool) and all validity
// bits clear. Kernels then write via SetInt/SetFloat/SetBool/SetNull;
// slots never written are undefined and must not be read.
func (c *Column) ResetTyped(k Kind, n int) {
	c.n = n
	c.kind = k
	c.isBoxed = false
	c.hasNull, c.hasAll = false, false
	c.nulls = c.nulls.reset().grow(n)
	c.alls = c.alls.reset().grow(n)
	switch k {
	case KindInt:
		c.ints = sliceTo(c.ints, n)
	case KindFloat:
		c.floats = sliceTo(c.floats, n)
	case KindBool:
		c.bools = c.bools.reset().grow(n)
	default:
		panic(fmt.Sprintf("table: ResetTyped does not support payload kind %v", k))
	}
}

// ResetBoxed prepares the column as a positional boxed output vector of n
// slots, written via SetValue.
func (c *Column) ResetBoxed(n int) {
	c.n = n
	c.kind = KindNull
	c.isBoxed = true
	c.hasNull, c.hasAll = false, false
	c.nulls = c.nulls.reset().grow(n)
	c.alls = c.alls.reset().grow(n)
	c.boxed = sliceTo(c.boxed, n)
}

// SetInt writes a valid int payload at slot i (after ResetTyped KindInt).
func (c *Column) SetInt(i int, v int64) { c.ints[i] = v }

// SetFloat writes a valid float payload at slot i (after ResetTyped KindFloat).
func (c *Column) SetFloat(i int, v float64) { c.floats[i] = v }

// SetBool writes a valid bool payload at slot i (after ResetTyped KindBool).
func (c *Column) SetBool(i int, v bool) {
	if v {
		c.bools.Set(i)
	} else {
		c.bools.Clear(i)
	}
}

// SetNull marks slot i as SQL NULL.
func (c *Column) SetNull(i int) {
	c.nulls.Set(i)
	c.hasNull = true
}

// SetValue writes any value at slot i of a boxed output vector (after
// ResetBoxed), maintaining the validity bitmaps.
func (c *Column) SetValue(i int, v Value) {
	c.boxed[i] = v
	c.noteSpecial(i, v)
}

func sliceTo[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Chunk is a fixed-size columnar slice of a relation: the schema plus one
// Column per attribute, all of equal length. Chunks are the unit the
// batch executor scans; the Row view bridges back to the row-at-a-time
// world for the scalar Algorithm 3.1 reference path and for residual
// predicates that need a per-tuple frame.
type Chunk struct {
	schema *Schema
	cols   []Column
	n      int
	// full is false when LoadRows populated only a subset of ordinals
	// (scratch chunks transpose just the columns the phase programs
	// reference); the Row view refuses to materialize such chunks.
	full bool
}

// NewChunk creates an empty chunk for the schema.
func NewChunk(schema *Schema) *Chunk {
	return &Chunk{schema: schema, cols: make([]Column, schema.Len()), full: true}
}

// Schema returns the chunk's schema.
func (c *Chunk) Schema() *Schema { return c.schema }

// Len returns the number of rows in the chunk.
func (c *Chunk) Len() int { return c.n }

// Col returns the column at ordinal j.
func (c *Chunk) Col(j int) *Column { return &c.cols[j] }

// AppendRow appends one row across all columns.
func (c *Chunk) AppendRow(r Row) {
	for j := range c.cols {
		c.cols[j].AppendValue(r[j])
	}
	c.n++
}

// LoadRows resets the chunk and transposes rows into it. A nil ords loads
// every column; otherwise only the listed ordinals are populated (the
// executor's scratch chunks transpose just the columns its compiled chunk
// programs reference) and the other columns are truncated to zero length
// so stale reads fail loudly.
func (c *Chunk) LoadRows(rows []Row, ords []int) {
	c.n = len(rows)
	for j := range c.cols {
		c.cols[j].Reset()
	}
	c.full = ords == nil
	if ords == nil {
		for j := range c.cols {
			col := &c.cols[j]
			for _, r := range rows {
				col.AppendValue(r[j])
			}
		}
		return
	}
	for _, j := range ords {
		col := &c.cols[j]
		for _, r := range rows {
			col.AppendValue(r[j])
		}
	}
}

// Value returns the value at (row ri, column ci).
func (c *Chunk) Value(ri, ci int) Value { return c.cols[ci].Value(ri) }

// Row materializes row ri into buf (reallocated as needed) — the row view
// adapter for the scalar reference path.
func (c *Chunk) Row(ri int, buf Row) Row {
	if !c.full {
		panic("table: Row view on a partially loaded chunk")
	}
	buf = buf[:0]
	for j := range c.cols {
		buf = append(buf, c.cols[j].Value(ri))
	}
	return buf
}

// Chunks returns the table's rows as a sequence of columnar chunks of at
// most size rows each. Tables built through Builder with size == ChunkSize
// return their cached columnar mirror without transposing; otherwise a
// fresh transpose is built (and deliberately not cached — Chunks may be
// called concurrently by parallel workers sharing one detail table).
func (t *Table) Chunks(size int) []*Chunk {
	if size <= 0 {
		size = ChunkSize
	}
	if cs := t.CachedChunks(size); cs != nil {
		return cs
	}
	out := make([]*Chunk, 0, (len(t.Rows)+size-1)/size)
	for off := 0; off < len(t.Rows); off += size {
		end := min(off+size, len(t.Rows))
		ch := NewChunk(t.Schema)
		ch.LoadRows(t.Rows[off:end], nil)
		out = append(out, ch)
	}
	return out
}

// CachedChunks returns the columnar mirror built by Builder, or nil when
// the table has none, the chunk size differs, or the mirror no longer
// covers the rows (e.g. after a `t.Rows = t.Rows[:n]` truncation). It
// never builds anything, so it is safe under concurrent readers.
func (t *Table) CachedChunks(size int) []*Chunk {
	if t.chunks == nil || t.chunkSize != size {
		return nil
	}
	total := 0
	for _, c := range t.chunks {
		total += c.n
	}
	if total != len(t.Rows) {
		return nil
	}
	return t.chunks
}

// AppendChunk appends every row of the chunk, materializing the row views
// into a single shared backing array (one allocation per chunk rather
// than one per row).
func (t *Table) AppendChunk(c *Chunk) {
	w := t.Schema.Len()
	if c.schema.Len() != w {
		panic(fmt.Sprintf("table: appending chunk with %d columns to schema %v with %d columns",
			c.schema.Len(), t.Schema.Names(), w))
	}
	backing := make([]Value, 0, c.Len()*w)
	for i := 0; i < c.Len(); i++ {
		start := len(backing)
		row := c.Row(i, backing[start:start:start+w])
		backing = backing[:start+w]
		t.Rows = append(t.Rows, row)
	}
	t.chunks = nil
}

// FromChunks materializes a table from columnar chunks; the inverse of
// Table.Chunks.
func FromChunks(schema *Schema, chunks []*Chunk) *Table {
	t := New(schema)
	for _, c := range chunks {
		t.AppendChunk(c)
	}
	return t
}

// Builder accumulates rows for a new table chunk-at-a-time: every
// ChunkSize rows share one backing value block (O(n/ChunkSize) allocations
// instead of O(n)), and the columnar mirror is built as rows arrive so the
// finished table answers Chunks(ChunkSize) with no transpose. All bulk
// construction sites (CSV load, workload generators, cube base-values,
// distributed fragment transfer) build through this.
type Builder struct {
	schema *Schema
	rows   []Row
	chunks []*Chunk
	cur    *Chunk
	block  []Value
}

// NewBuilder creates a builder for the schema.
func NewBuilder(schema *Schema) *Builder {
	return &Builder{schema: schema}
}

// Len returns the number of rows appended so far.
func (b *Builder) Len() int { return len(b.rows) }

// Append validates the row width and appends a copy of the row.
func (b *Builder) Append(r Row) {
	w := b.schema.Len()
	if len(r) != w {
		panic(fmt.Sprintf("table: appending row with %d values to schema %v with %d columns",
			len(r), b.schema.Names(), w))
	}
	if b.cur == nil || b.cur.Len() == ChunkSize {
		b.seal()
		b.cur = NewChunk(b.schema)
		b.block = make([]Value, 0, ChunkSize*w)
	}
	start := len(b.block)
	b.block = append(b.block, r...) // never reallocates: cap is ChunkSize*w
	row := Row(b.block[start:len(b.block):len(b.block)])
	b.rows = append(b.rows, row)
	b.cur.AppendRow(row)
}

func (b *Builder) seal() {
	if b.cur != nil && b.cur.Len() > 0 {
		b.chunks = append(b.chunks, b.cur)
	}
}

// Table seals the builder and returns the table with its columnar mirror
// attached. The builder must not be used afterwards.
func (b *Builder) Table() *Table {
	b.seal()
	b.cur = nil
	t := &Table{Schema: b.schema, Rows: b.rows, chunks: b.chunks, chunkSize: ChunkSize}
	if t.chunks == nil {
		t.chunks = []*Chunk{}
	}
	b.rows, b.chunks, b.block = nil, nil, nil
	return t
}
