package table

import (
	"fmt"
	"math"
)

// Index is a hash index over a subset of a table's columns mapping key
// values to candidate row ordinals. It implements the base-values indexing
// of Section 4.5 of the paper: given a detail tuple, find the relative set
// Rel(t) of B rows in O(1) expected time instead of a nested loop.
//
// The layout is flat and cache-friendly, sized for the MD-join hot path
// where one index is probed once per detail tuple:
//
//   - a power-of-two open-addressing slot array, one slot per distinct key
//     hash, storing the full 64-bit hash inline so almost every probe is
//     resolved by comparing two machine words (no pointer chasing, no map
//     bucket walk);
//   - a parallel byte of 8-bit hash fingerprints (tags), zero meaning
//     empty — the pre-filter the vectorized Prober walks first, so probes
//     for absent keys usually finish without touching the hash array;
//   - a single []int32 ordinal arena (next), parallel to the table's rows,
//     threading each hash's ordinals into a chain — the whole index is
//     four flat allocations regardless of key distribution.
//
// Key columns whose base values are all strings are dictionary-encoded at
// build time (dicts/rowCodes): such columns hash and verify by int32 code,
// and the chunk executor joins dict-encoded detail columns against them
// via a code-translation table without touching the string heap.
//
// The key hash is built per column and folded with combineHash, so probe
// sides that already hold typed column vectors can hash them directly.
// Collisions (distinct keys with equal hashes, or equal-hash slots reached
// by linear probing) are verified against the actual row values.
type Index struct {
	tab  *Table
	cols []int
	mask uint64   // len(slotHash) - 1; len is a power of two
	hash []uint64 // per slot: the full key hash, valid when head >= 0
	head []int32  // per slot: first ordinal of the chain, -1 = empty
	next []int32  // per row ordinal: next ordinal with the same hash, -1 = end
	tags []uint8  // per slot: nonzero fingerprint of the slot hash, 0 = empty
	// dicts[k] maps key column k's strings to index-local codes when every
	// value in that column is a string (nil otherwise); rowCodes[k][ri] is
	// row ri's code in that dictionary.
	dicts    []map[string]int32
	rowCodes [][]int32
}

// BuildIndex indexes the table on the given column names.
func BuildIndex(t *Table, cols []string) *Index {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.Schema.MustColIndex(c)
	}
	return BuildIndexOrdinals(t, idx)
}

// BuildIndexOrdinals indexes the table on column ordinals.
func BuildIndexOrdinals(t *Table, cols []int) *Index {
	n := len(t.Rows)
	if n >= math.MaxInt32 {
		panic(fmt.Sprintf("table: cannot index %d rows (int32 ordinal arena)", n))
	}
	// ≥ 2n slots keeps the load factor at or below 1/2 (there are at most
	// n distinct hashes), so linear probe runs stay short.
	nslots := 8
	for nslots < 2*n {
		nslots <<= 1
	}
	ix := &Index{
		tab:      t,
		cols:     cols,
		mask:     uint64(nslots - 1),
		hash:     make([]uint64, nslots),
		head:     make([]int32, nslots),
		next:     make([]int32, n),
		tags:     make([]uint8, nslots),
		dicts:    make([]map[string]int32, len(cols)),
		rowCodes: make([][]int32, len(cols)),
	}
	for i := range ix.head {
		ix.head[i] = -1
	}
	ix.buildDicts()
	// One pass over the rows. Iterating in reverse and prepending to each
	// chain leaves every chain in ascending ordinal order, matching the
	// append-order semantics of the map-backed reference.
	for ri := n - 1; ri >= 0; ri-- {
		h := ix.rowHash(ri)
		s := ix.findSlot(h)
		if ix.head[s] < 0 {
			ix.hash[s] = h
			ix.tags[s] = tagOf(h)
		}
		ix.next[ri] = ix.head[s]
		ix.head[s] = int32(ri)
	}
	return ix
}

// buildDicts dictionary-encodes every key column whose values are all
// strings. Mixed-kind columns (or ones containing NULL/ALL) stay value
// hashed: string-vs-code equality is only safe when no cross-kind or
// special-marker equality can arise.
func (ix *Index) buildDicts() {
	for k, c := range ix.cols {
		allStr := true
		for _, r := range ix.tab.Rows {
			if r[c].kind != KindString {
				allStr = false
				break
			}
		}
		if !allStr {
			continue
		}
		dict := make(map[string]int32)
		codes := make([]int32, len(ix.tab.Rows))
		for ri, r := range ix.tab.Rows {
			s := r[c].s
			code, ok := dict[s]
			if !ok {
				code = int32(len(dict))
				dict[s] = code
			}
			codes[ri] = code
		}
		ix.dicts[k] = dict
		ix.rowCodes[k] = codes
	}
}

// rowHash computes row ri's key hash, column by column: dict-encoded key
// columns hash their code, the rest hash the value.
func (ix *Index) rowHash(ri int) uint64 {
	h := fnvBasis
	r := ix.tab.Rows[ri]
	for k, c := range ix.cols {
		var hv uint64
		if ix.dicts[k] != nil {
			hv = hashCodeKey(ix.rowCodes[k][ri])
		} else {
			hv = hashSingle(r[c])
		}
		h = combineHash(h, hv)
	}
	return h
}

// mix64 is a splitmix64-style finalizer spreading the FNV hash's entropy
// into the low bits the slot mask keeps.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// tagOf derives a slot's nonzero 8-bit fingerprint from the top byte of
// the mixed hash (the slot position uses the low bits, so tag and slot
// stay independent).
func tagOf(h uint64) uint8 {
	t := uint8(mix64(h) >> 56)
	if t == 0 {
		t = 1
	}
	return t
}

// findSlot locates the slot holding hash h, or the empty slot where h
// belongs. The load factor bound guarantees an empty slot exists.
func (ix *Index) findSlot(h uint64) uint64 {
	s := mix64(h) & ix.mask
	for ix.head[s] >= 0 && ix.hash[s] != h {
		s = (s + 1) & ix.mask
	}
	return s
}

// Cols returns the indexed column ordinals.
func (ix *Index) Cols() []int { return ix.cols }

// Probe returns the ordinals of rows whose indexed columns equal the given
// key values (len(key) == len(cols)). Hash collisions are verified.
func (ix *Index) Probe(key []Value) []int {
	return ix.ProbeAppend(nil, key)
}

// ProbeAppend appends matching row ordinals to dst and returns it —
// the allocation-free variant for scan loops (pass dst[:0] to reuse a
// buffer).
func (ix *Index) ProbeAppend(dst []int, key []Value) []int {
	h := fnvBasis
	for k, v := range key {
		if dict := ix.dicts[k]; dict != nil {
			// Dict-keyed column: the base values are all strings, so only
			// a string key already present in the dictionary can match.
			if v.kind != KindString {
				return dst
			}
			code, ok := dict[v.s]
			if !ok {
				return dst
			}
			h = combineHash(h, hashCodeKey(code))
			continue
		}
		h = combineHash(h, hashSingle(v))
	}
	s := ix.findSlot(h)
	for ri := ix.head[s]; ri >= 0; ri = ix.next[ri] {
		r := ix.tab.Rows[ri]
		match := true
		for i, c := range ix.cols {
			if !r[c].Equal(key[i]) {
				match = false
				break
			}
		}
		if match {
			dst = append(dst, int(ri))
		}
	}
	return dst
}

// MapIndex is the map[uint64][]int hash index the executors used before
// the flat Index existed. It is kept as the reference implementation: the
// verbatim tuple-at-a-time execution path (core.Options.DisableBatch)
// probes it, so equivalence tests and the E12 bench guard can diff the
// vectorized flat-index path against it.
type MapIndex struct {
	tab     *Table
	cols    []int
	buckets map[uint64][]int
}

// BuildMapIndex indexes the table on column ordinals using the map-backed
// layout.
func BuildMapIndex(t *Table, cols []int) *MapIndex {
	ix := &MapIndex{tab: t, cols: cols, buckets: make(map[uint64][]int, len(t.Rows))}
	for ri, r := range t.Rows {
		h := HashCols(r, cols)
		ix.buckets[h] = append(ix.buckets[h], ri)
	}
	return ix
}

// Cols returns the indexed column ordinals.
func (ix *MapIndex) Cols() []int { return ix.cols }

// Probe returns the ordinals of rows whose indexed columns equal the key.
func (ix *MapIndex) Probe(key []Value) []int {
	return ix.ProbeAppend(nil, key)
}

// ProbeAppend appends matching row ordinals to dst and returns it.
func (ix *MapIndex) ProbeAppend(dst []int, key []Value) []int {
	var h uint64 = 14695981039346656037
	for _, v := range key {
		h = hashValue(h, v)
	}
	for _, ri := range ix.buckets[h] {
		r := ix.tab.Rows[ri]
		match := true
		for i, c := range ix.cols {
			if !r[c].Equal(key[i]) {
				match = false
				break
			}
		}
		if match {
			dst = append(dst, ri)
		}
	}
	return dst
}
