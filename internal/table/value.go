// Package table implements the in-memory relation substrate used by the
// MD-join reproduction: typed values (including the distinguished NULL and
// ALL markers from Gray et al.'s data cube model), schemas, rows, tables,
// hashing, ordering, and CSV interchange.
//
// The representation is deliberately row-oriented: the paper's algorithmics
// concern scan counts and the memory-residency of the base-values relation,
// not storage format, and rows keep every operator implementation direct.
package table

import (
	"fmt"
	"math"
	"strconv"
)

// Kind discriminates the payload of a Value.
type Kind uint8

// Value kinds. KindNull models SQL NULL (e.g. the sum over an empty
// θ-range); KindAll models the 'ALL' placeholder that a data cube uses to
// mark a rolled-up dimension (Example 2.1 of the paper).
const (
	KindNull Kind = iota
	KindAll
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the kind name for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindAll:
		return "ALL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// All returns the data-cube 'ALL' placeholder value.
func All() Value { return Value{kind: KindAll} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsAll reports whether the value is the cube 'ALL' placeholder.
func (v Value) IsAll() bool { return v.kind == KindAll }

// AsInt returns the integer payload. It is valid only for KindInt and
// KindBool values.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the value coerced to float64. Integers and booleans
// widen; other kinds return NaN.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool:
		return float64(v.i)
	default:
		return math.NaN()
	}
}

// AsString returns the string payload. It is valid only for KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is valid only for KindBool.
func (v Value) AsBool() bool { return v.i != 0 }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value the way cmd/mdbench prints result tables.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindAll:
		return "ALL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Equal reports SQL-style equality with NULL/ALL treated as ordinary
// distinguished constants: NULL equals NULL and ALL equals ALL. (MD-join
// base-values tables contain ALL markers that must compare equal during
// grouping and indexing; predicate evaluation applies three-valued logic
// separately in package expr.)
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Numeric cross-kind comparison: 1 == 1.0.
		if v.IsNumeric() && o.IsNumeric() {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.kind {
	case KindNull, KindAll:
		return true
	case KindInt, KindBool:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	}
	return false
}

// Compare imposes a total order used for sorting and range predicates:
// NULL < ALL < numerics/bools < strings; numerics compare by value across
// int/float kinds. The result is -1, 0, or +1.
func (v Value) Compare(o Value) int {
	ra, rb := v.rank(), o.rank()
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull, KindAll:
		// Same rank NULL/ALL compare equal.
		if o.kind == v.kind {
			return 0
		}
		if v.kind == KindNull {
			return -1
		}
		return 1
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	default: // numeric / bool
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindAll:
		return 0 // NULL and ALL share a rank; Compare breaks the tie
	case KindInt, KindFloat, KindBool:
		return 1
	case KindString:
		return 2
	default:
		return 3
	}
}

// Less reports v < o under the Compare total order.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// hashInto folds the value into an FNV-1a style hash accumulator.
func (v Value) hashInto(h uint64) uint64 {
	const prime = 1099511628211
	h ^= uint64(v.kind)
	h *= prime
	switch v.kind {
	case KindInt, KindBool:
		h ^= uint64(v.i)
		h *= prime
	case KindFloat:
		// Normalize integral floats so Int(3) and Float(3) hash alike,
		// matching Equal's cross-kind numeric equality.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
			h ^= uint64(int64(v.f))
		} else {
			h ^= math.Float64bits(v.f)
		}
		h *= prime
	case KindString:
		for i := 0; i < len(v.s); i++ {
			h ^= uint64(v.s[i])
			h *= prime
		}
	}
	return h
}

// hashValue hashes a value consistently with Equal's cross-kind numeric
// equality: ints hash through the same path as integral floats. Bools are
// not numeric and hash with their own kind.
func hashValue(h uint64, v Value) uint64 {
	if v.kind == KindInt {
		return Float(float64(v.i)).hashInto(h)
	}
	return v.hashInto(h)
}

// FNV-1a parameters shared by the row hash (hashInto) and the columnar
// key kernels below.
const (
	fnvBasis uint64 = 14695981039346656037
	fnvPrime uint64 = 1099511628211
)

// Columnar key hashing: the flat Index hashes each key column
// independently and folds the per-column hashes together with
// combineHash, so the chunk executor can hash whole typed vectors
// ([]int64, []float64, dictionary codes) without boxing a Value per row.
// Each per-column kernel below agrees exactly with
// hashSingle(v) = hashValue(fnvBasis, v) for the corresponding value, so
// the typed vector path and the boxed ProbeAppend path land in the same
// slot. (Dictionary-encoded index columns are the exception: they hash
// by dictionary code via hashCodeKey, and the boxed path translates the
// string through the index's dictionary first.)

// hashSingle hashes one value as a standalone single-column key.
func hashSingle(v Value) uint64 { return hashValue(fnvBasis, v) }

// hashIntKey hashes an int64 exactly as hashSingle(Int(i)): through the
// integral-float normalization, so Int(3) and Float(3.0) collide.
func hashIntKey(i int64) uint64 {
	h := fnvBasis ^ uint64(KindFloat)
	h *= fnvPrime
	h ^= uint64(int64(float64(i)))
	return h * fnvPrime
}

// hashFloatKey hashes a float64 exactly as hashSingle(Float(f)).
func hashFloatKey(f float64) uint64 {
	h := fnvBasis ^ uint64(KindFloat)
	h *= fnvPrime
	if f == math.Trunc(f) && !math.IsInf(f, 0) {
		h ^= uint64(int64(f))
	} else {
		h ^= math.Float64bits(f)
	}
	return h * fnvPrime
}

// hashStringKey hashes a string exactly as hashSingle(Str(s)).
func hashStringKey(s string) uint64 {
	h := fnvBasis ^ uint64(KindString)
	h *= fnvPrime
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// hashBoolKey hashes a bool exactly as hashSingle(Bool(b)).
func hashBoolKey(b bool) uint64 {
	h := fnvBasis ^ uint64(KindBool)
	h *= fnvPrime
	if b {
		h ^= 1
	}
	return h * fnvPrime
}

// hashCodeKey hashes a dictionary code for a dict-keyed index column.
// Codes are index-local (assigned by BuildIndexOrdinals in row order), so
// any injective mix works; probe-side codes are translated into the
// index's code space before hashing.
func hashCodeKey(c int32) uint64 {
	return (fnvBasis ^ uint64(uint32(c))) * fnvPrime
}

// combineHash folds one column's key hash into the multi-column
// accumulator (seed the accumulator with fnvBasis).
func combineHash(h, hv uint64) uint64 { return (h ^ hv) * fnvPrime }

// ParseValue converts raw text (e.g. a CSV field) into the narrowest value:
// the literals NULL and ALL, then int, float, bool, falling back to string.
func ParseValue(s string) Value {
	switch s {
	case "", "NULL", "null":
		return Null()
	case "ALL", "all":
		return All()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return Bool(b)
	}
	return Str(s)
}
