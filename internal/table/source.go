package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// Source provides repeatable scans of a relation — the abstraction that
// lets the MD-join executor treat a memory-resident table and a
// disk-resident file identically. Every algorithm in the paper is costed
// in scans of the detail relation; a Source makes that cost real: each
// Scan call re-reads the underlying data.
//
// Scan must be safe to call concurrently (Theorem 4.1's base-partitioned
// parallelism scans from several goroutines at once); the iterators it
// returns are used by a single goroutine each.
type Source interface {
	// Schema describes the rows every scan yields.
	Schema() *Schema
	// Scan starts a fresh pass over the relation.
	Scan() (Iterator, error)
}

// Iterator streams rows; Next returns io.EOF after the last row.
type Iterator interface {
	Next() (Row, error)
	Close() error
}

// ---------------------------------------------------------- table source

// tableSource adapts a materialized table.
type tableSource struct {
	t *Table
}

// NewTableSource wraps a materialized table as a Source.
func NewTableSource(t *Table) Source { return &tableSource{t: t} }

func (s *tableSource) Schema() *Schema { return s.t.Schema }

func (s *tableSource) Scan() (Iterator, error) {
	return &tableIterator{rows: s.t.Rows}, nil
}

type tableIterator struct {
	rows []Row
	pos  int
}

func (it *tableIterator) Next() (Row, error) {
	if it.pos >= len(it.rows) {
		return nil, io.EOF
	}
	r := it.rows[it.pos]
	it.pos++
	return r, nil
}

func (it *tableIterator) Close() error { return nil }

// ------------------------------------------------------------ CSV source

// csvSource re-reads a CSV file on every scan — the disk-resident detail
// relation of the paper's cost model. The header is read once at
// construction to fix the schema; each Scan re-opens the file.
type csvSource struct {
	path   string
	schema *Schema
}

// NewCSVSource opens the file once to read the header and returns a
// Source whose scans stream the data records.
func NewCSVSource(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	header, err := csv.NewReader(f).Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header of %s: %w", path, err)
	}
	return &csvSource{path: path, schema: SchemaOf(header...)}, nil
}

func (s *csvSource) Schema() *Schema { return s.schema }

func (s *csvSource) Scan() (Iterator, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	r := csv.NewReader(f)
	r.FieldsPerRecord = s.schema.Len()
	// Skip the header.
	if _, err := r.Read(); err != nil {
		f.Close()
		return nil, fmt.Errorf("table: re-reading CSV header of %s: %w", s.path, err)
	}
	return &csvIterator{f: f, r: r, width: s.schema.Len()}, nil
}

type csvIterator struct {
	f     *os.File
	r     *csv.Reader
	width int
	row   Row // reused buffer? rows escape to aggregate args; allocate fresh
}

func (it *csvIterator) Next() (Row, error) {
	rec, err := it.r.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	row := make(Row, it.width)
	for i, field := range rec {
		row[i] = ParseValue(field)
	}
	return row, nil
}

func (it *csvIterator) Close() error { return it.f.Close() }

// Materialize drains a source into a table (one scan). The result is
// Builder-built, so it carries the columnar mirror the chunk executor
// probes for.
func Materialize(s Source) (*Table, error) {
	it, err := s.Scan()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	b := NewBuilder(s.Schema())
	for {
		r, err := it.Next()
		if err == io.EOF {
			return b.Table(), nil
		}
		if err != nil {
			return nil, err
		}
		b.Append(r)
	}
}
