package table

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{All(), KindAll, "ALL"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("hi"), KindString, "hi"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String() = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(5).AsInt() != 5 {
		t.Error("AsInt")
	}
	if Int(5).AsFloat() != 5.0 {
		t.Error("int AsFloat widening")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat")
	}
	if !math.IsNaN(Str("x").AsFloat()) {
		t.Error("non-numeric AsFloat should be NaN")
	}
	if Str("abc").AsString() != "abc" {
		t.Error("AsString")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool")
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull")
	}
	if !All().IsAll() || Null().IsAll() {
		t.Error("IsAll")
	}
	if !Int(1).IsNumeric() || !Float(1).IsNumeric() || Str("1").IsNumeric() {
		t.Error("IsNumeric")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Int(3), Float(3), true}, // cross-kind numeric equality
		{Float(3), Int(3), true},
		{Float(2.5), Float(2.5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Null(), Null(), true}, // grouping semantics
		{All(), All(), true},
		{Null(), All(), false},
		{Null(), Int(0), false},
		{All(), Str("ALL"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Bool(true), Int(1), false}, // bools are not numerics
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("Equal(%v, %v) (sym) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	// NULL < ALL < numerics < strings.
	ordered := []Value{Null(), All(), Int(-5), Float(-1.5), Int(0), Float(2.5), Int(3), Str("a"), Str("b")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			var want int
			switch {
			case i < j:
				want = -1
			case i > j:
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	// Values that compare Equal must hash identically (index probing
	// correctness): in particular Int(n) and Float(n).
	f := func(n int64) bool {
		hi := hashValue(14695981039346656037, Int(n))
		hf := hashValue(14695981039346656037, Float(float64(n)))
		return hi == hf
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Null()},
		{"NULL", Null()},
		{"null", Null()},
		{"ALL", All()},
		{"all", All()},
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"2.5", Float(2.5)},
		{"true", Bool(true)},
		{"hello", Str("hello")},
		{"12abc", Str("12abc")},
	}
	for _, c := range cases {
		if got := ParseValue(c.in); !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("ParseValue(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	f := func(n int64, s string) bool {
		if !ParseValue(Int(n).String()).Equal(Int(n)) {
			return false
		}
		// Strings that don't look like other literals round-trip.
		v := ParseValue(s)
		return ParseValue(v.String()).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindAll: "ALL", KindInt: "INT",
		KindFloat: "FLOAT", KindString: "STRING", KindBool: "BOOL",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
