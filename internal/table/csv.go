package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// ReadCSV loads a table from CSV. The first record is the header; field
// values are parsed with ParseValue (NULL/ALL literals, then int, float,
// bool, string).
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	schema := SchemaOf(header...)
	b := NewBuilder(schema)
	row := make(Row, schema.Len())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line, err)
		}
		if len(rec) != schema.Len() {
			return nil, fmt.Errorf("table: CSV line %d has %d fields, header has %d", line, len(rec), schema.Len())
		}
		for i, f := range rec {
			row[i] = ParseValue(f)
		}
		b.Append(row) // Builder copies the row into its block storage
	}
	return b.Table(), nil
}

// ReadCSVFile loads a table from a CSV file on disk.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV writes the table as CSV with a header record. Every record
// it emits survives a read back through ReadCSV: encoding/csv writes a
// record consisting of one empty field as a blank line, which readers
// skip, so that shape (found by FuzzReadCSV) is forced to its quoted
// form instead.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	writeRec := func(rec []string) error {
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
			_, err := io.WriteString(w, "\"\"\n")
			return err
		}
		return cw.Write(rec)
	}
	if err := writeRec(t.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, t.Schema.Len())
	for _, r := range t.Rows {
		for i, v := range r {
			rec[i] = v.String()
		}
		if err := writeRec(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to a CSV file on disk.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteCSV(f, t)
}
