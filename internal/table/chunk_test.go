package table

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// Property tests for the columnar chunk storage: transposing a table into
// chunks and materializing it back must be the identity on rows — same
// order, same values, same hashes — across payload kinds, NULL/ALL
// specials, dictionary strings, mixed-kind (boxed) columns, and chunk
// sizes that do and don't divide the row count.

// randChunkTable builds a table whose columns exercise every column
// representation: a typed int column, a typed float column, a dictionary
// string column, and a mixed-kind column that demotes to boxed. Specials
// are sprinkled everywhere.
func randChunkTable(rng *rand.Rand, n int) *Table {
	t := New(SchemaOf("i", "f", "s", "mix"))
	words := []string{"ak", "ca", "ny", "tx", "wa"}
	for k := 0; k < n; k++ {
		row := make(Row, 4)
		row[0] = Int(int64(rng.Intn(100)))
		row[1] = Float(float64(rng.Intn(40)) / 4)
		row[2] = Str(words[rng.Intn(len(words))])
		switch rng.Intn(4) {
		case 0:
			row[3] = Int(int64(rng.Intn(5)))
		case 1:
			row[3] = Str(words[rng.Intn(len(words))])
		case 2:
			row[3] = Bool(rng.Intn(2) == 0)
		default:
			row[3] = Float(float64(rng.Intn(9)) / 2)
		}
		for j := range row {
			switch rng.Intn(12) {
			case 0:
				row[j] = Null()
			case 1:
				row[j] = All()
			}
		}
		t.Append(row)
	}
	return t
}

// requireRowsIdentical fails unless the tables hold positionally identical
// rows with identical hashes (full and column-restricted).
func requireRowsIdentical(t *testing.T, label string, want, got *Table) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	cols := []int{0, 2}
	if want.Schema.Len() < 3 {
		cols = []int{0}
	}
	for i := range want.Rows {
		if !want.Rows[i].Equal(got.Rows[i]) {
			t.Fatalf("%s: row %d differs: %v vs %v", label, i, want.Rows[i], got.Rows[i])
		}
		if want.Rows[i].Hash() != got.Rows[i].Hash() {
			t.Fatalf("%s: row %d hash differs", label, i)
		}
		if HashCols(want.Rows[i], cols) != HashCols(got.Rows[i], cols) {
			t.Fatalf("%s: row %d restricted hash differs", label, i)
		}
	}
}

func TestChunkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(3 * ChunkSize / 2)
		tt := randChunkTable(rng, n)
		for _, size := range []int{1, 3, 7, ChunkSize} {
			chunks := tt.Chunks(size)
			total := 0
			for _, c := range chunks {
				if c.Len() > size {
					t.Fatalf("chunk of %d rows exceeds size %d", c.Len(), size)
				}
				total += c.Len()
			}
			if total != tt.Len() {
				t.Fatalf("chunks cover %d rows, want %d", total, tt.Len())
			}
			back := FromChunks(tt.Schema, chunks)
			requireRowsIdentical(t, "round trip", tt, back)
		}
	}
}

func TestChunkRowViewMatchesSource(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	tt := randChunkTable(rng, ChunkSize+37)
	ri := 0
	for _, c := range tt.Chunks(64) {
		for i := 0; i < c.Len(); i++ {
			row := c.Row(i, nil)
			if !row.Equal(tt.Rows[ri]) {
				t.Fatalf("row view %d differs: %v vs %v", ri, row, tt.Rows[ri])
			}
			if row.Hash() != tt.Rows[ri].Hash() {
				t.Fatalf("row view %d hash differs", ri)
			}
			// Per-cell access agrees with the view.
			for j := range row {
				if !c.Value(i, j).Equal(row[j]) {
					t.Fatalf("Value(%d,%d) disagrees with Row view", i, j)
				}
			}
			ri++
		}
	}
	if ri != tt.Len() {
		t.Fatalf("visited %d rows, want %d", ri, tt.Len())
	}
}

func TestBuilderMatchesAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(2*ChunkSize + 100)
		src := randChunkTable(rng, n)
		b := NewBuilder(src.Schema)
		for _, r := range src.Rows {
			b.Append(r)
		}
		built := b.Table()
		requireRowsIdentical(t, "builder", src, built)

		// The builder table carries its columnar mirror; the appended one
		// does not.
		cached := built.CachedChunks(ChunkSize)
		if cached == nil {
			t.Fatal("builder table must cache chunks at ChunkSize")
		}
		if src.CachedChunks(ChunkSize) != nil {
			t.Fatal("append-built table must not have cached chunks")
		}
		if built.CachedChunks(ChunkSize-1) != nil {
			t.Fatal("cache must not serve a different chunk size")
		}
		back := FromChunks(built.Schema, cached)
		requireRowsIdentical(t, "cached chunks", src, back)
	}
}

func TestMutationInvalidatesChunkCache(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	mk := func() *Table {
		b := NewBuilder(SchemaOf("i", "f", "s", "mix"))
		for _, r := range randChunkTable(rng, 50).Rows {
			b.Append(r)
		}
		return b.Table()
	}

	appended := mk()
	appended.Append(Row{Int(1), Float(2), Str("x"), Null()})
	if appended.CachedChunks(ChunkSize) != nil {
		t.Fatal("Append must invalidate the columnar mirror")
	}

	sorted := mk()
	sorted.SortBy("i")
	if sorted.CachedChunks(ChunkSize) != nil {
		t.Fatal("sorting must invalidate the columnar mirror")
	}

	// Re-slicing Rows directly bypasses the mutating methods; the cache
	// must detect the row-count mismatch instead of serving stale chunks.
	truncated := mk()
	truncated.Rows = truncated.Rows[:truncated.Len()-7]
	if truncated.CachedChunks(ChunkSize) != nil {
		t.Fatal("row-count mismatch must disable the cached chunks")
	}
}

func TestCSVRoundTripThroughChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	// Values whose String() re-parses to the same kind: ints, non-integral
	// floats, lowercase words, NULL, ALL.
	src := New(SchemaOf("i", "f", "s"))
	words := []string{"ak", "ca", "ny"}
	for k := 0; k < ChunkSize+41; k++ {
		row := Row{
			Int(int64(rng.Intn(50))),
			Float(float64(rng.Intn(20)) + 0.5),
			Str(words[rng.Intn(len(words))]),
		}
		if rng.Intn(10) == 0 {
			row[rng.Intn(3)] = Null()
		}
		if rng.Intn(10) == 0 {
			row[rng.Intn(3)] = All()
		}
		src.Append(row)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, src); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireRowsIdentical(t, "csv", src, loaded)
	// ReadCSV is Builder-backed: the loaded table must carry its mirror,
	// and the mirror must reproduce the rows.
	cached := loaded.CachedChunks(ChunkSize)
	if cached == nil {
		t.Fatal("CSV-loaded table must cache chunks")
	}
	back := FromChunks(loaded.Schema, cached)
	requireRowsIdentical(t, "csv chunks", src, back)
}

func TestColumnRepresentations(t *testing.T) {
	ints := New(SchemaOf("c"))
	for i := 0; i < 10; i++ {
		ints.Append(Row{Int(int64(i))})
	}
	c := ints.Chunks(ChunkSize)[0].Col(0)
	if c.PayloadKind() != KindInt || c.IsBoxed() {
		t.Fatalf("int column: kind %v boxed %t", c.PayloadKind(), c.IsBoxed())
	}

	// Leading specials then strings: the column must settle on the string
	// dictionary with the specials recorded in the bitmaps.
	strs := New(SchemaOf("c"))
	strs.Append(Row{Null()})
	strs.Append(Row{All()})
	strs.Append(Row{Str("a")})
	strs.Append(Row{Str("b")})
	strs.Append(Row{Str("a")})
	c = strs.Chunks(ChunkSize)[0].Col(0)
	if c.PayloadKind() != KindString || c.IsBoxed() {
		t.Fatalf("string column: kind %v boxed %t", c.PayloadKind(), c.IsBoxed())
	}
	if !c.IsNull(0) || !c.IsAll(1) || c.IsNull(2) || c.IsAll(2) {
		t.Fatal("special bitmaps wrong")
	}
	if len(c.Dict()) != 2 {
		t.Fatalf("dictionary has %d entries, want 2", len(c.Dict()))
	}
	if c.StrAt(2) != "a" || c.StrAt(3) != "b" || c.StrAt(4) != "a" {
		t.Fatal("dictionary decode wrong")
	}

	// A kind clash demotes to boxed, preserving all values.
	mixed := New(SchemaOf("c"))
	mixed.Append(Row{Int(1)})
	mixed.Append(Row{Str("x")})
	mixed.Append(Row{Null()})
	c = mixed.Chunks(ChunkSize)[0].Col(0)
	if !c.IsBoxed() {
		t.Fatal("mixed-kind column must demote to boxed")
	}
	for i, want := range []Value{Int(1), Str("x"), Null()} {
		if !c.Value(i).Equal(want) {
			t.Fatalf("boxed value %d: %v want %v", i, c.Value(i), want)
		}
	}
	if !c.IsNull(2) || c.IsNull(0) {
		t.Fatal("boxed column must still maintain the null bitmap")
	}
}

func TestAppendWidthPanics(t *testing.T) {
	requirePanic := func(label string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: want panic", label)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "schema") || !strings.Contains(msg, "a b") {
				t.Fatalf("%s: panic message must name the schema, got %v", label, r)
			}
		}()
		f()
	}
	tt := New(SchemaOf("a", "b"))
	requirePanic("short row", func() { tt.Append(Row{Int(1)}) })
	requirePanic("long row", func() { tt.Append(Row{Int(1), Int(2), Int(3)}) })
	b := NewBuilder(SchemaOf("a", "b"))
	requirePanic("builder short row", func() { b.Append(Row{Int(1)}) })
}
