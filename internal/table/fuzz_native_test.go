package table

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz target for the CSV loader: any byte string must either be
// rejected with an error or produce a structurally sound table whose
// WriteCSV output loads back with the same shape. Values are not
// compared — ParseValue narrows on re-read by design ("1" written from a
// string cell loads as an int, NaN never equals itself) — the round-trip
// contract is schema and row count. Run continuously with
//
//	go test ./internal/table -fuzz FuzzReadCSV
//
// or for the CI smoke slice, make fuzz-smoke.
func FuzzReadCSV(f *testing.F) {
	f.Add("cust,prod,sale\nc1,p1,10\nc2,p2,3.5\n")
	f.Add("a,b\n1,2\nNULL,ALL\n")
	f.Add("x\ntrue\nfalse\n'quoted'\n")
	f.Add("a,a\n1,2\n")             // duplicate column names
	f.Add("\"a,b\",c\n\"1,5\",2\n") // quoted separators
	f.Add("a,b\n1\n")               // width mismatch: must error
	f.Add("a;b\n1;2\n")             // no commas: one wide column
	f.Add("")                       // empty: header read must error
	f.Add("a,b\r\n1,2\r\n")         // CRLF
	f.Add("héllo,wörld\n\"multi\nline\",x\n")

	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return // rejected input; the only contract is no panic
		}
		width := tab.Schema.Len()
		if width == 0 {
			t.Fatalf("accepted CSV produced an empty schema")
		}
		for i, r := range tab.Rows {
			if len(r) != width {
				t.Fatalf("row %d has %d fields, schema has %d", i, len(r), width)
			}
		}

		var buf bytes.Buffer
		if err := WriteCSV(&buf, tab); err != nil {
			t.Fatalf("WriteCSV of a loaded table failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read of written CSV failed: %v", err)
		}
		if got, want := back.Schema.Len(), width; got != want {
			t.Fatalf("round-trip schema width %d, want %d", got, want)
		}
		for i, name := range tab.Schema.Names() {
			// encoding/csv normalizes \r\n to \n inside quoted fields, so
			// compare names modulo that rewrite.
			want := strings.ReplaceAll(name, "\r\n", "\n")
			got := back.Schema.Names()[i]
			if !strings.EqualFold(got, want) {
				t.Fatalf("round-trip column %d name %q, want %q", i, got, want)
			}
		}
		if back.Len() != tab.Len() {
			t.Fatalf("round-trip row count %d, want %d", back.Len(), tab.Len())
		}
	})
}
