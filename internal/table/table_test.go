package table

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestSchemaBasics(t *testing.T) {
	s := SchemaOf("a", "b", "c")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.ColIndex("b") != 1 || s.ColIndex("B") != 1 {
		t.Error("ColIndex should be case-insensitive")
	}
	if s.ColIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
	if !s.Has("c") || s.Has("d") {
		t.Error("Has")
	}
	if got := s.String(); got != "(a, b, c)" {
		t.Errorf("String = %q", got)
	}
}

func TestSchemaAppendAndProject(t *testing.T) {
	s := SchemaOf("a", "b")
	s2 := s.Append(Field{Name: "c"})
	if s.Len() != 2 || s2.Len() != 3 {
		t.Error("Append must not mutate the receiver")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Append should panic")
		}
	}()
	p, err := s2.Project("c", "a")
	if err != nil || p.Len() != 2 || p.Cols[0].Name != "c" {
		t.Errorf("Project = %v, %v", p, err)
	}
	if _, err := s2.Project("nope"); err == nil {
		t.Error("Project with bad column should error")
	}
	s2.Append(Field{Name: "a"}) // panics
}

func TestSchemaEqualNames(t *testing.T) {
	if !SchemaOf("a", "b").EqualNames(SchemaOf("A", "B")) {
		t.Error("EqualNames should ignore case")
	}
	if SchemaOf("a").EqualNames(SchemaOf("a", "b")) {
		t.Error("different lengths")
	}
	if SchemaOf("a", "b").EqualNames(SchemaOf("b", "a")) {
		t.Error("order matters")
	}
}

func TestMustColIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustColIndex should panic on a missing column")
		}
	}()
	SchemaOf("a").MustColIndex("b")
}

func TestFromRowsValidatesWidth(t *testing.T) {
	s := SchemaOf("a", "b")
	if _, err := FromRows(s, []Row{{Int(1)}}); err == nil {
		t.Error("narrow row should error")
	}
	tt, err := FromRows(s, []Row{{Int(1), Int(2)}})
	if err != nil || tt.Len() != 1 {
		t.Errorf("FromRows: %v", err)
	}
}

func TestSortByAndEqualSet(t *testing.T) {
	s := SchemaOf("a", "b")
	t1 := MustFromRows(s, []Row{
		{Int(2), Str("x")},
		{Int(1), Str("y")},
		{Int(1), Str("a")},
	})
	t2 := MustFromRows(s, []Row{
		{Int(1), Str("a")},
		{Int(2), Str("x")},
		{Int(1), Str("y")},
	})
	if !t1.EqualSet(t2) {
		t.Error("EqualSet must ignore order")
	}
	t1.SortBy("a", "b")
	if t1.Rows[0][1].AsString() != "a" || t1.Rows[2][0].AsInt() != 2 {
		t.Errorf("SortBy order wrong: %v", t1.Rows)
	}
	t3 := MustFromRows(s, []Row{
		{Int(1), Str("a")},
		{Int(2), Str("x")},
		{Int(2), Str("x")},
	})
	if t1.EqualSet(t3) {
		t.Error("multiset difference must be detected")
	}
	if d := t1.Diff(t3); d == "" {
		t.Error("Diff should describe the difference")
	}
	if d := t1.Diff(t2); d != "" {
		t.Errorf("Diff of equal tables = %q", d)
	}
}

func TestTableStringFormat(t *testing.T) {
	tt := MustFromRows(SchemaOf("name", "n"), []Row{
		{Str("alice"), Int(1)},
	})
	out := tt.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "alice") || !strings.Contains(out, "---") {
		t.Errorf("unexpected format:\n%s", out)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tt := MustFromRows(SchemaOf("a"), []Row{{Int(1)}})
	c := tt.Clone()
	c.Rows[0][0] = Int(99)
	if tt.Rows[0][0].AsInt() != 1 {
		t.Error("Clone must deep-copy rows")
	}
}

func TestIndexProbe(t *testing.T) {
	s := SchemaOf("k", "v")
	tt := MustFromRows(s, []Row{
		{Int(1), Str("a")},
		{Int(2), Str("b")},
		{Int(1), Str("c")},
		{All(), Str("d")},
		{Null(), Str("e")},
	})
	ix := BuildIndex(tt, []string{"k"})
	if got := ix.Probe([]Value{Int(1)}); len(got) != 2 {
		t.Errorf("Probe(1) = %v, want 2 rows", got)
	}
	if got := ix.Probe([]Value{Int(3)}); len(got) != 0 {
		t.Errorf("Probe(3) = %v, want none", got)
	}
	if got := ix.Probe([]Value{All()}); len(got) != 1 || got[0] != 3 {
		t.Errorf("Probe(ALL) = %v, want row 3", got)
	}
	if got := ix.Probe([]Value{Null()}); len(got) != 1 || got[0] != 4 {
		t.Errorf("Probe(NULL) = %v, want row 4", got)
	}
	// Cross-kind numeric probing: Float(1) finds Int(1) rows.
	if got := ix.Probe([]Value{Float(1)}); len(got) != 2 {
		t.Errorf("Probe(1.0) = %v, want 2 rows", got)
	}
}

func TestIndexProbeMatchesLinearScan(t *testing.T) {
	// Property: probing equals filtering by Equal on the key columns.
	rng := rand.New(rand.NewSource(99))
	s := SchemaOf("a", "b", "v")
	tt := New(s)
	for i := 0; i < 500; i++ {
		tt.Append(Row{Int(int64(rng.Intn(10))), Str(string(rune('a' + rng.Intn(5)))), Int(int64(i))})
	}
	ix := BuildIndex(tt, []string{"a", "b"})
	for trial := 0; trial < 100; trial++ {
		key := []Value{Int(int64(rng.Intn(12))), Str(string(rune('a' + rng.Intn(6))))}
		got := ix.Probe(key)
		var want []int
		for ri, r := range tt.Rows {
			if r[0].Equal(key[0]) && r[1].Equal(key[1]) {
				want = append(want, ri)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("probe %v: got %d rows, want %d", key, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("probe %v: got %v, want %v", key, got, want)
			}
		}
	}
}

func TestHashColsSubset(t *testing.T) {
	r := Row{Int(1), Str("x"), Float(2.5)}
	if HashCols(r, []int{0}) == HashCols(r, []int{1}) {
		t.Error("different columns should (virtually always) hash differently")
	}
	if r.Hash() != HashCols(r, nil) {
		t.Error("Hash must equal full-column HashCols")
	}
}

func TestEqualOn(t *testing.T) {
	a := Row{Int(1), Str("x")}
	b := Row{Str("x"), Int(1)}
	if !EqualOn(a, []int{0, 1}, b, []int{1, 0}) {
		t.Error("EqualOn with permuted ordinals")
	}
	if EqualOn(a, []int{0}, b, []int{0}) {
		t.Error("1 != x")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tt := MustFromRows(SchemaOf("a", "b", "c"), []Row{
		{Int(1), Str("x"), Float(1.5)},
		{Null(), All(), Str("hello, world")},
		{Bool(true), Str("quote\"inside"), Int(-2)},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tt); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := tt.Diff(back); d != "" {
		t.Errorf("round trip: %s\n%s", d, buf.String())
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(vals []int64, strs []string) bool {
		tt := New(SchemaOf("n", "s"))
		for i := range vals {
			s := "v"
			if i < len(strs) {
				// Avoid strings parsing as other literal kinds.
				s = "s_" + strs[i]
				s = strings.ReplaceAll(s, "\n", "_")
				s = strings.ReplaceAll(s, "\r", "_")
			}
			tt.Append(Row{Int(vals[i]), Str(s)})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tt); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return tt.Diff(back) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSVFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	tt := MustFromRows(SchemaOf("a"), []Row{{Int(7)}})
	if err := WriteCSVFile(path, tt); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := tt.Diff(back); d != "" {
		t.Error(d)
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error (no header)")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("short record should error")
	}
}
