package table

import (
	"math/rand"
	"testing"
)

// randIndexTable builds a table with mixed-kind key columns so hashes
// collide across kinds (Int vs integral Float) and NULL/ALL appear as
// ordinary index keys.
func randIndexTable(rng *rand.Rand, n int) *Table {
	t := New(SchemaOf("a", "b", "v"))
	mkVal := func() Value {
		switch rng.Intn(6) {
		case 0:
			return Null()
		case 1:
			return All()
		case 2:
			return Int(int64(rng.Intn(8)))
		case 3:
			return Float(float64(rng.Intn(8))) // collides with Int by design
		case 4:
			return Str(string(rune('a' + rng.Intn(5))))
		default:
			return Bool(rng.Intn(2) == 0)
		}
	}
	for i := 0; i < n; i++ {
		t.Append(Row{mkVal(), mkVal(), Int(int64(i))})
	}
	return t
}

// TestFlatIndexMatchesMapIndex: on random tables and random probe keys the
// flat open-addressing index must return exactly the ordinals of the
// map-backed reference, in the same (ascending) order.
func TestFlatIndexMatchesMapIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		tt := randIndexTable(rng, rng.Intn(300))
		cols := []int{0, 1}
		if rng.Intn(2) == 0 {
			cols = []int{rng.Intn(2)}
		}
		flat := BuildIndexOrdinals(tt, cols)
		ref := BuildMapIndex(tt, cols)

		probes := make([][]Value, 0, 40)
		// Keys drawn from the table (guaranteed hits)...
		for i := 0; i < 20 && i < tt.Len(); i++ {
			r := tt.Rows[rng.Intn(tt.Len())]
			key := make([]Value, len(cols))
			for j, c := range cols {
				key[j] = r[c]
			}
			probes = append(probes, key)
		}
		// ...and random keys (mostly misses).
		for i := 0; i < 20; i++ {
			key := make([]Value, len(cols))
			for j := range key {
				key[j] = Int(int64(rng.Intn(20)))
			}
			probes = append(probes, key)
		}
		for _, key := range probes {
			got := flat.Probe(key)
			want := ref.Probe(key)
			if len(got) != len(want) {
				t.Fatalf("trial %d key %v: flat %v vs map %v", trial, key, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d key %v: flat %v vs map %v", trial, key, got, want)
				}
			}
		}
	}
}

// TestFlatIndexDictKeyedVsMapIndex pins the dict-keyed build: a key
// column holding only strings makes the flat index hash dictionary codes
// instead of values, and boxed probes translate through the dictionary —
// including probes whose key is a non-string (Int, Float, NULL, ALL,
// Bool), which can never match a string and must return empty exactly
// like the map-backed reference.
func TestFlatIndexDictKeyedVsMapIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	words := []string{"ak", "ca", "ny", "tx", "wa"}
	for trial := 0; trial < 30; trial++ {
		tt := New(SchemaOf("s1", "s2", "v"))
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			tt.Append(Row{
				Str(words[rng.Intn(len(words))]),
				Str(words[rng.Intn(len(words))]),
				Int(int64(i)),
			})
		}
		cols := []int{0, 1}
		if trial%2 == 0 {
			cols = []int{rng.Intn(2)}
		}
		flat := BuildIndexOrdinals(tt, cols)
		ref := BuildMapIndex(tt, cols)

		mkKey := func() Value {
			switch rng.Intn(8) {
			case 0:
				return Int(int64(rng.Intn(5)))
			case 1:
				return Float(float64(rng.Intn(5)))
			case 2:
				return Null()
			case 3:
				return All()
			case 4:
				return Bool(true)
			case 5:
				return Str("zz") // absent from the dictionary
			default:
				return Str(words[rng.Intn(len(words))])
			}
		}
		for p := 0; p < 40; p++ {
			key := make([]Value, len(cols))
			for j := range key {
				key[j] = mkKey()
			}
			got, want := flat.Probe(key), ref.Probe(key)
			if len(got) != len(want) {
				t.Fatalf("trial %d key %v: flat %v vs map %v", trial, key, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d key %v: flat %v vs map %v", trial, key, got, want)
				}
			}
		}
	}
}

func TestFlatIndexEmptyTable(t *testing.T) {
	tt := New(SchemaOf("a"))
	ix := BuildIndexOrdinals(tt, []int{0})
	if got := ix.Probe([]Value{Int(1)}); len(got) != 0 {
		t.Fatalf("probe on empty table: %v", got)
	}
}

// TestFlatIndexProbeAppendReuse pins the allocation-free reuse contract:
// passing dst[:0] must not grow past the first high-water mark.
func TestFlatIndexProbeAppendReuse(t *testing.T) {
	tt := New(SchemaOf("k"))
	for i := 0; i < 64; i++ {
		tt.Append(Row{Int(int64(i % 4))})
	}
	ix := BuildIndexOrdinals(tt, []int{0})
	buf := ix.ProbeAppend(nil, []Value{Int(0)})
	if len(buf) != 16 {
		t.Fatalf("want 16 hits, got %d", len(buf))
	}
	c := cap(buf)
	for k := int64(0); k < 4; k++ {
		buf = ix.ProbeAppend(buf[:0], []Value{Int(k)})
		if len(buf) != 16 || cap(buf) != c {
			t.Fatalf("reuse broke: len=%d cap=%d (want 16, %d)", len(buf), cap(buf), c)
		}
	}
}
