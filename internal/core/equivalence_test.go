package core

import (
	"math/rand"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// This file property-tests the paper's theorems on randomized relations:
// every algebraic identity of Section 4 must hold exactly (as multiset
// equality of result relations) for arbitrary inputs, not just the worked
// examples.

// genRelations builds a random (base, detail) pair. Base columns: g1, g2
// (small domains so groups repeat); detail columns: g1, g2, w (a numeric
// weight), plus a filter column f.
func genRelations(rng *rand.Rand, nBase, nDetail int) (*table.Table, *table.Table) {
	bs := table.SchemaOf("g1", "g2")
	b := table.New(bs)
	seen := map[[2]int64]bool{}
	for len(b.Rows) < nBase {
		k := [2]int64{int64(rng.Intn(6)), int64(rng.Intn(4))}
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Append(table.Row{table.Int(k[0]), table.Int(k[1])})
	}
	rs := table.SchemaOf("g1", "g2", "w", "f")
	r := table.New(rs)
	for i := 0; i < nDetail; i++ {
		r.Append(table.Row{
			table.Int(int64(rng.Intn(7))), // slightly larger domain: some tuples match nothing
			table.Int(int64(rng.Intn(5))),
			table.Int(int64(rng.Intn(100))),
			table.Int(int64(rng.Intn(3))),
		})
	}
	return b, r
}

func stdTheta() expr.Expr {
	return expr.And(
		expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
		expr.Eq(expr.QC("R", "g2"), expr.C("g2")),
	)
}

func stdSpecs() []agg.Spec {
	return []agg.Spec{
		agg.NewSpec("count", nil, "n"),
		agg.NewSpec("sum", expr.QC("R", "w"), "total"),
		agg.NewSpec("min", expr.QC("R", "w"), "lo"),
		agg.NewSpec("avg", expr.QC("R", "w"), "mean"),
	}
}

func mdJoin(t *testing.T, b, r *table.Table, specs []agg.Spec, theta expr.Expr, opt Options) *table.Table {
	t.Helper()
	out, err := Eval(b, r, []Phase{{Aggs: specs, Theta: theta}}, opt)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return out
}

// TestTheorem41Partitioning: MD(B,R,l,θ) = ∪ᵢ MD(Bᵢ,R,l,θ) for arbitrary
// partitions of B.
func TestTheorem41Partitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		b, r := genRelations(rng, 3+rng.Intn(10), 20+rng.Intn(100))
		whole := mdJoin(t, b, r, stdSpecs(), stdTheta(), Options{})

		// Random partition of B into up to 4 pieces.
		p := 1 + rng.Intn(4)
		parts := make([]*table.Table, p)
		for i := range parts {
			parts[i] = table.New(b.Schema)
		}
		for _, row := range b.Rows {
			parts[rng.Intn(p)].Append(row)
		}
		var results []*table.Table
		for _, part := range parts {
			if part.Len() == 0 {
				continue
			}
			results = append(results, mdJoin(t, part, r, stdSpecs(), stdTheta(), Options{}))
		}
		union, err := engine.Union(results...)
		if err != nil {
			t.Fatal(err)
		}
		if d := whole.Diff(union); d != "" {
			t.Fatalf("trial %d: Theorem 4.1 violated: %s", trial, d)
		}
	}
}

// TestTheorem41Strategies: the executor's partitioned and parallel
// strategies implement Theorem 4.1 and must equal the single-pass result.
func TestTheorem41Strategies(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	for trial := 0; trial < 20; trial++ {
		b, r := genRelations(rng, 4+rng.Intn(12), 30+rng.Intn(150))
		want := mdJoin(t, b, r, stdSpecs(), stdTheta(), Options{})
		for name, opt := range map[string]Options{
			"maxbase-1":  {MaxBaseRows: 1},
			"maxbase-3":  {MaxBaseRows: 3},
			"parallel-2": {Parallelism: 2},
			"parallel-5": {Parallelism: 5},
			"detail-2":   {DetailParallelism: 2},
			"detail-7":   {DetailParallelism: 7},
		} {
			got := mdJoin(t, b, r, stdSpecs(), stdTheta(), opt)
			if d := want.Diff(got); d != "" {
				t.Fatalf("trial %d, %s: %s", trial, name, d)
			}
		}
	}
}

// TestTheorem42Pushdown: MD(B, R, l, θ₁ ∧ θ₂) = MD(B, σ_θ₂(R), l, θ₁) when
// θ₂ references only R.
func TestTheorem42Pushdown(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		b, r := genRelations(rng, 3+rng.Intn(8), 20+rng.Intn(100))
		rOnly := expr.Eq(expr.QC("R", "f"), expr.I(int64(rng.Intn(3))))
		full := expr.And(stdTheta(), rOnly)

		lhs := mdJoin(t, b, r, stdSpecs(), full, Options{})

		// Manually apply the theorem: select on R, drop the conjunct.
		filtered, err := engine.Select(r, expr.Eq(expr.C("f"), rOnly.(*expr.Binary).R))
		if err != nil {
			t.Fatal(err)
		}
		rhs := mdJoin(t, b, filtered, stdSpecs(), stdTheta(), Options{})
		if d := lhs.Diff(rhs); d != "" {
			t.Fatalf("trial %d: Theorem 4.2 violated: %s", trial, d)
		}

		// The executor's internal pushdown must agree with pushdown off.
		off := mdJoin(t, b, r, stdSpecs(), full, Options{DisablePushdown: true})
		if d := lhs.Diff(off); d != "" {
			t.Fatalf("trial %d: pushdown on/off disagree: %s", trial, d)
		}
	}
}

// TestObservation41: σ range on B pushed through equi conjuncts onto R.
func TestObservation41(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 30; trial++ {
		b, r := genRelations(rng, 4+rng.Intn(10), 20+rng.Intn(100))
		lo := int64(rng.Intn(4))
		bPred := expr.Ge(expr.C("g1"), expr.V(table.Int(lo)))

		selB, err := engine.Select(b, bPred)
		if err != nil {
			t.Fatal(err)
		}
		lhs := mdJoin(t, selB, r, stdSpecs(), stdTheta(), Options{})

		rPred, ok := PushBaseRange(bPred, stdTheta(), b.Schema, r.Schema, Options{})
		if !ok {
			t.Fatal("pushdown should apply: every B column has an equi conjunct")
		}
		selR, err := engine.Select(r, rPred)
		if err != nil {
			t.Fatal(err)
		}
		rhs := mdJoin(t, selB, selR, stdSpecs(), stdTheta(), Options{})
		if d := lhs.Diff(rhs); d != "" {
			t.Fatalf("trial %d: Observation 4.1 violated: %s", trial, d)
		}
	}
}

// TestTheorem43Commutativity: independent MD-joins commute.
func TestTheorem43Commutativity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		b, r := genRelations(rng, 3+rng.Intn(8), 20+rng.Intn(80))
		theta1 := expr.And(
			expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
			expr.Eq(expr.QC("R", "f"), expr.I(0)))
		theta2 := expr.And(
			expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
			expr.Eq(expr.QC("R", "f"), expr.I(1)))
		l1 := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "w"), "s0")}
		l2 := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "w"), "s1")}

		ab1 := mdJoin(t, b, r, l1, theta1, Options{})
		ab := mdJoin(t, ab1, r, l2, theta2, Options{})

		ba1 := mdJoin(t, b, r, l2, theta2, Options{})
		ba := mdJoin(t, ba1, r, l1, theta1, Options{})

		// Same relation up to column order: project to a common order.
		cols := []string{"g1", "g2", "s0", "s1"}
		abp, err := engine.Project(ab, engine.Cols(cols...), false)
		if err != nil {
			t.Fatal(err)
		}
		bap, err := engine.Project(ba, engine.Cols(cols...), false)
		if err != nil {
			t.Fatal(err)
		}
		if d := abp.Diff(bap); d != "" {
			t.Fatalf("trial %d: Theorem 4.3 violated: %s", trial, d)
		}

		// And both must equal the single generalized MD-join.
		gen, err := Eval(b, r, []Phase{{Aggs: l1, Theta: theta1}, {Aggs: l2, Theta: theta2}}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d := abp.Diff(mustProject(t, gen, cols)); d != "" {
			t.Fatalf("trial %d: generalized MD-join differs: %s", trial, d)
		}
	}
}

func mustProject(t *testing.T, tt *table.Table, cols []string) *table.Table {
	t.Helper()
	out, err := engine.Project(tt, engine.Cols(cols...), false)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTheorem44Split: sequential MD-join chain = equijoin of independent
// MD-joins on (distinct) base columns.
func TestTheorem44Split(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		b, r1 := genRelations(rng, 4+rng.Intn(8), 20+rng.Intn(80))
		_, r2 := genRelations(rng, 1, 20+rng.Intn(80))
		theta := stdTheta()
		l1 := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "w"), "t1")}
		l2 := []agg.Spec{agg.NewSpec("count", nil, "c2")}

		step1 := mdJoin(t, b, r1, l1, theta, Options{})
		sequential := mdJoin(t, step1, r2, l2, theta, Options{})

		left := mdJoin(t, b, r1, l1, theta, Options{})
		right := mdJoin(t, b, r2, l2, theta, Options{})
		joined, err := SplitJoin(left, right, []string{"g1", "g2"})
		if err != nil {
			t.Fatal(err)
		}
		if d := sequential.Diff(joined); d != "" {
			t.Fatalf("trial %d: Theorem 4.4 violated: %s", trial, d)
		}
	}
}

// TestTheorem45Rollup: a coarser aggregation computed from a finer one by
// re-aggregation equals direct computation — the identity behind all cube
// strategies.
func TestTheorem45Rollup(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	specs := []agg.Spec{
		agg.NewSpec("count", nil, "n"),
		agg.NewSpec("sum", expr.QC("R", "w"), "total"),
		agg.NewSpec("min", expr.QC("R", "w"), "lo"),
		agg.NewSpec("max", expr.QC("R", "w"), "hi"),
	}
	reagg := []agg.Spec{
		agg.NewSpec("sum", expr.C("n"), "n"),
		agg.NewSpec("sum", expr.C("total"), "total"),
		agg.NewSpec("min", expr.C("lo"), "lo"),
		agg.NewSpec("max", expr.C("hi"), "hi"),
	}
	for trial := 0; trial < 30; trial++ {
		_, r := genRelations(rng, 1, 30+rng.Intn(150))

		// Finer: group by (g1, g2); coarser: group by g1.
		finer, err := engine.GroupBy(r, []string{"g1", "g2"}, specs)
		if err != nil {
			t.Fatal(err)
		}
		fromFiner, err := engine.GroupBy(finer, []string{"g1"}, reagg)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := engine.GroupBy(r, []string{"g1"}, specs)
		if err != nil {
			t.Fatal(err)
		}
		if d := direct.Diff(fromFiner); d != "" {
			t.Fatalf("trial %d: Theorem 4.5 violated: %s", trial, d)
		}
	}
}

// TestStrategiesAgainstReference fuzzes every executor strategy against
// the Definition 3.1 reference on fully random θ shapes, including
// residual and B-only conjuncts.
func TestStrategiesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3000))
	for trial := 0; trial < 40; trial++ {
		b, r := genRelations(rng, 2+rng.Intn(10), 10+rng.Intn(80))
		var conj []expr.Expr
		conj = append(conj, expr.Eq(expr.QC("R", "g1"), expr.C("g1")))
		if rng.Intn(2) == 0 {
			conj = append(conj, expr.Eq(expr.QC("R", "g2"), expr.C("g2")))
		}
		if rng.Intn(2) == 0 {
			conj = append(conj, expr.Le(expr.QC("R", "f"), expr.I(int64(rng.Intn(3)))))
		}
		if rng.Intn(2) == 0 {
			conj = append(conj, expr.Gt(expr.C("g2"), expr.I(int64(rng.Intn(3)))))
		}
		if rng.Intn(2) == 0 {
			conj = append(conj, expr.Gt(expr.QC("R", "w"), expr.Mul(expr.C("g1"), expr.I(10))))
		}
		theta := expr.And(conj...)
		specs := stdSpecs()

		want := refMDJoin(t, b, r, specs, theta, Options{})
		for name, opt := range map[string]Options{
			"default":     {},
			"no-index":    {DisableIndex: true},
			"no-push":     {DisablePushdown: true},
			"plain":       {DisableIndex: true, DisablePushdown: true},
			"partitioned": {MaxBaseRows: 2},
			"par-base":    {Parallelism: 3},
			"par-detail":  {DetailParallelism: 4},
		} {
			got := mdJoin(t, b, r, specs, theta, opt)
			if d := want.Diff(got); d != "" {
				t.Fatalf("trial %d, strategy %s, θ=%s: %s", trial, name, theta, d)
			}
		}
	}
}

// TestCubeEqualityAgainstReference fuzzes cube-equality θs (base tables
// containing ALL) against the reference.
func TestCubeEqualityAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3100))
	for trial := 0; trial < 30; trial++ {
		_, r := genRelations(rng, 1, 10+rng.Intn(60))
		// Base: random subset of the cube over (g1, g2), with ALL cells.
		b := table.New(table.SchemaOf("g1", "g2"))
		seen := map[[2]string]bool{}
		for i := 0; i < 8; i++ {
			var v1, v2 table.Value
			if rng.Intn(3) == 0 {
				v1 = table.All()
			} else {
				v1 = table.Int(int64(rng.Intn(6)))
			}
			if rng.Intn(3) == 0 {
				v2 = table.All()
			} else {
				v2 = table.Int(int64(rng.Intn(4)))
			}
			k := [2]string{v1.String(), v2.String()}
			if seen[k] {
				continue
			}
			seen[k] = true
			b.Append(table.Row{v1, v2})
		}
		theta := expr.And(
			expr.CubeEq(expr.QC("R", "g1"), expr.C("g1")),
			expr.CubeEq(expr.QC("R", "g2"), expr.C("g2")),
		)
		specs := stdSpecs()
		want := refMDJoin(t, b, r, specs, theta, Options{})
		for name, opt := range map[string]Options{
			"indexed":     {},
			"nested":      {DisableIndex: true},
			"partitioned": {MaxBaseRows: 3},
			"par-detail":  {DetailParallelism: 3},
		} {
			got := mdJoin(t, b, r, specs, theta, opt)
			if d := want.Diff(got); d != "" {
				t.Fatalf("trial %d, %s: cube equality broken: %s", trial, name, d)
			}
		}
	}
}

// TestNullKeysAgainstReference pins the NULL-join semantics: strict
// equality never matches NULL keys, on both the indexed and nested paths.
func TestNullKeysAgainstReference(t *testing.T) {
	b := table.MustFromRows(table.SchemaOf("g1"), []table.Row{
		{table.Int(1)},
		{table.Null()},
	})
	r := table.MustFromRows(table.SchemaOf("g1", "w"), []table.Row{
		{table.Int(1), table.Int(10)},
		{table.Null(), table.Int(20)},
	})
	theta := expr.Eq(expr.QC("R", "g1"), expr.C("g1"))
	specs := []agg.Spec{agg.NewSpec("count", nil, "n")}
	want := refMDJoin(t, b, r, specs, theta, Options{})
	// Reference: NULL = NULL evaluates NULL → false, so the NULL base row
	// matches nothing.
	if want.Value(1, "n").AsInt() != 0 {
		t.Fatalf("reference itself wrong: %v", want)
	}
	for name, opt := range map[string]Options{
		"indexed": {},
		"nested":  {DisableIndex: true},
	} {
		got := mdJoin(t, b, r, specs, theta, opt)
		if d := want.Diff(got); d != "" {
			t.Fatalf("%s: %s", name, d)
		}
	}
}
