package core

import (
	"path/filepath"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// writeCSVFixture persists the test Sales relation and returns a CSV
// source over it.
func writeCSVFixture(t *testing.T, tt *table.Table) table.Source {
	t.Helper()
	path := filepath.Join(t.TempDir(), "detail.csv")
	if err := table.WriteCSVFile(path, tt); err != nil {
		t.Fatal(err)
	}
	src, err := table.NewCSVSource(path)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestEvalSourceMatchesTableEval(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	theta := expr.And(
		expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		expr.Gt(expr.QC("R", "sale"), expr.F(15)))
	specs := []agg.Spec{
		agg.NewSpec("sum", expr.QC("R", "sale"), "total"),
		agg.NewSpec("count", nil, "n"),
	}
	want, err := MDJoin(base, sales, specs, theta)
	if err != nil {
		t.Fatal(err)
	}

	csvSrc := writeCSVFixture(t, sales)
	tblSrc := table.NewTableSource(sales)
	for name, src := range map[string]table.Source{"csv": csvSrc, "table": tblSrc} {
		for optName, opt := range map[string]Options{
			"single":      {},
			"partitioned": {MaxBaseRows: 1},
			"par-base":    {Parallelism: 2},
			"par-detail":  {DetailParallelism: 3},
			"budgeted":    {MemoryBudgetBytes: 1},
			"no-index":    {DisableIndex: true},
		} {
			got, err := EvalSource(base, src, []Phase{{Aggs: specs, Theta: theta}}, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, optName, err)
			}
			if d := want.Diff(got); d != "" {
				t.Fatalf("%s/%s: %s", name, optName, d)
			}
		}
	}
}

func TestEvalSourceScansCount(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	src := writeCSVFixture(t, sales)
	theta := expr.Eq(expr.QC("R", "cust"), expr.C("cust"))
	specs := []agg.Spec{agg.NewSpec("count", nil, "n")}

	var stats Stats
	if _, err := EvalSource(base, src, []Phase{{Aggs: specs, Theta: theta}},
		Options{MaxBaseRows: 1, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.DetailScans != base.Len() {
		t.Errorf("scans = %d, want %d (one file pass per base partition)", stats.DetailScans, base.Len())
	}
	if stats.TuplesScanned != base.Len()*sales.Len() {
		t.Errorf("tuples = %d, want %d", stats.TuplesScanned, base.Len()*sales.Len())
	}
}

func TestEvalSourceGeneralizedSingleScan(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	src := writeCSVFixture(t, sales)
	mk := func(state, as string) Phase {
		return Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), as)},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
				expr.Eq(expr.QC("R", "state"), expr.S(state))),
		}
	}
	var stats Stats
	if _, err := EvalSource(base, src,
		[]Phase{mk("NY", "a"), mk("NJ", "b"), mk("CT", "c")},
		Options{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.DetailScans != 1 {
		t.Errorf("generalized MD-join over a file must read it once: %d scans", stats.DetailScans)
	}
}

func TestMaterialize(t *testing.T) {
	sales := salesFixture()
	src := writeCSVFixture(t, sales)
	back, err := table.Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	if d := sales.Diff(back); d != "" {
		t.Fatalf("materialized CSV differs: %s", d)
	}
}

func TestCSVSourceMissingFile(t *testing.T) {
	if _, err := table.NewCSVSource(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing file must error at construction")
	}
}
