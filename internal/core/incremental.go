// Incremental MD-join maintenance: compile MD(B, R, l, θ) once into a
// live materialization, then fold detail deltas into it as they arrive
// instead of rescanning R.
//
// The trick is that nothing about the MD-join's inner loop cares whether
// the detail tuples come from one scan or many: every probe-and-feed
// touches only the compiled phase plans (read-only, built over B) and the
// per-(row, spec) aggregate arenas (mergeable, and for count/sum/avg
// invertible). Append therefore drives the exact vectorized pipeline of
// the batch executor — pushdown filters, typed equi-key kernels, the flat
// index prober — over each delta batch. The Incremental keeps one
// persistent batch driver, so the scratch chunk's dictionaries (and with
// them the prober's memoized dict-translation tables, see table.Prober)
// extend incrementally across appends: a string key seen in batch 1 is a
// cached code translation in batch 1000.
//
// Three maintenance modes:
//
//   - Append-only (the default): states only ever grow; Snapshot is a
//     pure assemble over the live arenas, O(|B|) with no R work at all.
//   - Windowed with subtraction: when every aggregate is invertible
//     (agg.Subtractor — count, sum, avg), expired buckets are replayed
//     through the same pipeline into a scratch arena and subtracted
//     (Arena.Unmerge) from the live one. The window costs one retained
//     copy of each in-window delta row.
//   - Windowed, partitioned: non-invertible aggregates (min, median, ...)
//     get one arena per window bucket; Snapshot merges the surviving
//     buckets and eviction just drops one — re-aggregation over buckets
//     instead of rows, the classic paired-down subtraction substitute.
//
// Roll-up maintenance (Theorem 4.5) rides on the same delta flow: a
// Rollup holds a coarser cuboid's states and, on every append, folds the
// *finer materialization's delta results* — not R — through each
// function's re-aggregate (count→sum, sum→sum, min→min). Distributivity
// makes the sum of per-delta re-aggregations equal the re-aggregation of
// the total, so the coarse cuboid stays exact without ever touching the
// detail relation.
package core

import (
	"fmt"
	"sync"

	"mdjoin/internal/agg"
	"mdjoin/internal/engine"
	"mdjoin/internal/table"
)

// IncrementalConfig selects the maintenance mode of an Incremental.
type IncrementalConfig struct {
	// WindowBuckets, when positive, keeps the materialization windowed:
	// appended rows land in the current bucket, Advance seals it and
	// starts a new one, and only the most recent WindowBuckets buckets
	// (including the current one) contribute to Snapshot. 0 means
	// append-only: every row ever appended stays in the result.
	WindowBuckets int

	// DisableSubtraction forces the window-partitioned arenas even when
	// every aggregate is invertible. Eviction then re-aggregates over the
	// surviving buckets instead of subtracting the expired one — the
	// differential tests diff the two paths against each other.
	DisableSubtraction bool
}

// bucket is one window generation: the rows it contributed (retained only
// in subtraction mode, for the eviction replay) or its own sealed arenas
// (partitioned mode).
type bucket struct {
	rows   []table.Row
	arenas []*agg.Arena
	n      int
}

// Incremental is a live MD-join materialization. Build one with
// NewIncremental, feed it with Append (and Advance, when windowed), read
// it with Snapshot. All methods are safe for concurrent use; Append,
// Advance, and Snapshot serialize on an internal mutex, so writers never
// observe a half-applied delta and readers always see a batch boundary.
//
// A context cancellation that lands mid-append leaves the materialization
// between batches of a delta; the Incremental then poisons itself — every
// later call returns the interrupting error — rather than serve a state
// that corresponds to no prefix of the appended stream.
type Incremental struct {
	mu      sync.Mutex
	base    *table.Table
	rSchema *table.Schema
	schema  *table.Schema
	opt     Options
	cfg     IncrementalConfig

	plans  []*phasePlan
	cps    []*compiledPhase
	driver *batchDriver
	scalar bool

	// subtract is true when the window evicts by replay-and-unmerge;
	// false selects partitioned buckets (or no window at all).
	subtract bool
	buckets  []*bucket // sealed, oldest first; windowed mode only
	cur      *bucket   // the open bucket; windowed mode only

	rollups []*Rollup

	live  int   // rows currently contributing to Snapshot
	total int64 // rows ever appended
	err   error // poisoned after a mid-append interruption

	// scalar-tier scratch (persistent so the per-tuple path allocates
	// nothing per append)
	frame []table.Row
	key   []table.Value
}

// NewIncremental compiles MD(b, R, l, θ) into a live materialization with
// an empty detail relation: θ analysis, pushdown compilation, the flat
// index over b, and the B-only liveness bitmap all happen once, here.
//
// Execution is strictly sequential — parallel options are rejected — and
// the whole base relation stays resident: Options.MaxBaseRows and
// MemoryBudgetBytes do not partition an Incremental (partitioned
// evaluation trades memory for rescans of R, and an Incremental never
// rescans). Callers that need memory accounting read SizeBytes.
func NewIncremental(b *table.Table, rSchema *table.Schema, phases []Phase, opt Options, cfg IncrementalConfig) (*Incremental, error) {
	if b == nil || rSchema == nil {
		return nil, fmt.Errorf("core: incremental needs a base table and a detail schema")
	}
	if opt.Parallelism > 1 || opt.DetailParallelism > 1 {
		return nil, fmt.Errorf("core: incremental evaluation is sequential; parallel options are not supported")
	}
	if opt.MaxBaseRows > 0 {
		return nil, fmt.Errorf("core: incremental evaluation keeps all base rows resident; MaxBaseRows is not supported")
	}
	if cfg.WindowBuckets < 0 {
		return nil, fmt.Errorf("core: negative WindowBuckets %d", cfg.WindowBuckets)
	}
	if err := ctxErr(opt.Ctx); err != nil {
		return nil, err
	}
	schema, err := outSchema(b, phases)
	if err != nil {
		return nil, err
	}
	plans, err := compilePhases(b, rSchema, phases, opt)
	if err != nil {
		return nil, err
	}
	cps := newPhaseExecs(plans, b.Len())
	recordTiers(opt.Stats, cps)
	recordArenas(opt.Stats, cps)
	inc := &Incremental{
		base:    b,
		rSchema: rSchema,
		schema:  schema,
		opt:     opt,
		cfg:     cfg,
		plans:   plans,
		cps:     cps,
		driver:  newBatchDriver(rSchema, cps),
		scalar:  opt.DisableBatch,
		frame:   make([]table.Row, 2),
	}
	if cfg.WindowBuckets > 0 {
		inc.cur = &bucket{}
		inc.subtract = !cfg.DisableSubtraction
		for _, cp := range cps {
			for _, c := range cp.specs {
				if !agg.IsSubtractable(c.Fn) {
					inc.subtract = false
				}
			}
		}
	}
	return inc, nil
}

// Schema returns the output schema: the base columns followed by every
// phase's aggregate columns.
func (inc *Incremental) Schema() *table.Schema { return inc.schema }

// Rows reports how many appended detail rows currently contribute to the
// result (the live window, or everything in append-only mode).
func (inc *Incremental) Rows() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.live
}

// Total reports how many detail rows were ever appended.
func (inc *Incremental) Total() int64 {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.total
}

// Append folds a batch of new detail tuples into the materialization
// through the compiled probe pipeline. Rows are validated against the
// detail schema before any state changes; a width mismatch is rejected
// with the materialization untouched. The Incremental aliases the given
// rows only in windowed-subtraction mode (they are retained until their
// bucket expires); callers must not mutate them after a successful
// Append.
func (inc *Incremental) Append(rows []table.Row) error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.err != nil {
		return inc.err
	}
	for i, r := range rows {
		// Validation happens before any state changes, so cancellation
		// here fails fast with no poisoning — nothing was applied.
		if i&1023 == 0 {
			if err := ctxErr(inc.opt.Ctx); err != nil {
				return err
			}
		}
		if len(r) != inc.rSchema.Len() {
			return fmt.Errorf("core: incremental append row %d has %d values, schema has %d", i, len(r), inc.rSchema.Len())
		}
	}
	// An empty delta skips the loop's poll; an already-cancelled context
	// still fails fast before the fold below.
	if err := ctxErr(inc.opt.Ctx); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}

	// Roll-up maintenance needs this append's delta isolated: swap fresh
	// arenas in, feed, then merge the delta back and fold its results
	// into every attached roll-up.
	var live []*agg.Arena
	if len(inc.rollups) > 0 {
		live = inc.detachArenas()
		inc.installArenas(inc.freshArenas())
	}
	if err := inc.feed(rows); err != nil {
		// Mid-append cancellation: some batches of this delta applied,
		// some did not. No consistent prefix corresponds to the current
		// states, so poison the materialization.
		inc.err = err
		return err
	}
	if live != nil {
		delta := inc.detachArenas()
		inc.installArenas(live)
		for i, a := range live {
			a.Merge(delta[i])
		}
		for _, ru := range inc.rollups {
			ru.fold(delta)
		}
	}
	if inc.cur != nil {
		inc.cur.n += len(rows)
		if inc.subtract {
			inc.cur.rows = append(inc.cur.rows, rows...)
		}
	}
	inc.live += len(rows)
	inc.total += int64(len(rows))
	return nil
}

// feed runs the delta through the compiled pipeline: the persistent batch
// driver on the vectorized tiers (reusing its scratch chunk, whose
// dictionaries — and the prober's translation memos keyed on them — grow
// append-only across calls), or the tuple-at-a-time interpreter under
// DisableBatch. The context is polled at batch cadence, same as a scan.
func (inc *Incremental) feed(rows []table.Row) error {
	stats := inc.opt.Stats
	if inc.scalar {
		for i, t := range rows {
			// The i == 0 poll is the caller's (Append checks before any
			// state changes), so a cancellation can only interrupt a
			// partially-applied delta, never a pristine one.
			if i > 0 && i%cancelCheckInterval == 0 {
				if err := ctxErr(inc.opt.Ctx); err != nil {
					return err
				}
			}
			inc.key = processTuple(inc.base, inc.cps, inc.frame, inc.key, t, stats)
		}
		return nil
	}
	for start := 0; start < len(rows); start += batchSize {
		if start > 0 {
			if err := ctxErr(inc.opt.Ctx); err != nil {
				return err
			}
		}
		end := start + batchSize
		if end > len(rows) {
			end = len(rows)
		}
		inc.driver.processBatch(inc.base, inc.cps, rows[start:end], nil, stats)
	}
	return nil
}

// Advance seals the current window bucket and starts a new one, evicting
// buckets that fall out of the window. In subtraction mode the expired
// bucket's rows are replayed through the pipeline into a scratch arena
// and subtracted from the live states; in partitioned mode the bucket's
// arenas are simply dropped. Advance on a non-windowed Incremental is an
// error.
func (inc *Incremental) Advance() error {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.err != nil {
		return inc.err
	}
	if inc.cur == nil {
		return fmt.Errorf("core: Advance on a non-windowed incremental (WindowBuckets is 0)")
	}
	if err := ctxErr(inc.opt.Ctx); err != nil {
		return err
	}
	sealed := inc.cur
	if !inc.subtract {
		sealed.arenas = inc.detachArenas()
		inc.installArenas(inc.freshArenas())
	}
	inc.buckets = append(inc.buckets, sealed)
	inc.cur = &bucket{}
	for len(inc.buckets) > inc.cfg.WindowBuckets-1 {
		victim := inc.buckets[0]
		inc.buckets = inc.buckets[1:]
		if inc.subtract {
			if err := inc.unmergeRows(victim.rows); err != nil {
				inc.err = err
				return err
			}
		}
		inc.live -= victim.n
	}
	return nil
}

// unmergeRows replays expired rows through the pipeline into scratch
// arenas and subtracts the result from the live states — the delta
// inverse, reusing the whole probe pipeline (and its memoized dictionary
// translations) instead of duplicating it with a sign flipped.
func (inc *Incremental) unmergeRows(rows []table.Row) error {
	if len(rows) == 0 {
		return nil
	}
	live := inc.detachArenas()
	inc.installArenas(inc.freshArenas())
	err := inc.feed(rows)
	scratch := inc.detachArenas()
	inc.installArenas(live)
	if err != nil {
		return err
	}
	for i, a := range live {
		a.Unmerge(scratch[i])
	}
	return nil
}

// Snapshot assembles the current result table — one row per base row,
// aggregates over every detail tuple in the live window — without
// touching R. The returned table is freshly allocated and immune to later
// appends. Cost is O(|B| × specs) in append-only and subtraction modes;
// partitioned windows additionally merge the surviving buckets' arenas
// first.
func (inc *Incremental) Snapshot() (*table.Table, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.err != nil {
		return nil, inc.err
	}
	if err := ctxErr(inc.opt.Ctx); err != nil {
		return nil, err
	}
	if inc.cur == nil || inc.subtract {
		return assemble(inc.schema, inc.base, inc.cps), nil
	}
	// Partitioned window: re-aggregate the surviving buckets (oldest
	// first, so order-sensitive states see arrival order) plus the open
	// bucket into fresh arenas, and assemble from shallow phase copies.
	tmp := make([]*compiledPhase, len(inc.cps))
	for i, cp := range inc.cps {
		merged := agg.NewArena(cp.specs, inc.base.Len())
		for _, bk := range inc.buckets {
			merged.Merge(bk.arenas[i])
		}
		merged.Merge(cp.states)
		shallow := *cp
		shallow.states = merged
		tmp[i] = &shallow
	}
	return assemble(inc.schema, inc.base, tmp), nil
}

// SizeBytes estimates the materialization's resident footprint: live and
// sealed arenas plus retained window rows. This is what mdserve's
// per-view accounting charges against the view budget.
func (inc *Incremental) SizeBytes() int64 {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.err != nil {
		// A poisoned materialization serves nothing, so it charges
		// nothing; walking half-applied arenas would also misreport.
		return 0
	}
	const valueBytes = 48 // table.Value struct, as in baseRowsForBudget
	rowBytes := int64(inc.rSchema.Len()) * valueBytes
	var total int64
	for _, cp := range inc.cps {
		total += cp.states.SizeBytes()
	}
	add := func(bk *bucket) {
		total += int64(len(bk.rows)) * rowBytes
		for _, a := range bk.arenas {
			total += a.SizeBytes()
		}
	}
	for _, bk := range inc.buckets {
		add(bk)
	}
	if inc.cur != nil {
		add(inc.cur)
	}
	for _, ru := range inc.rollups {
		total += ru.sizeBytes()
	}
	return total
}

func (inc *Incremental) detachArenas() []*agg.Arena {
	out := make([]*agg.Arena, len(inc.cps))
	for i, cp := range inc.cps {
		out[i] = cp.states
	}
	return out
}

func (inc *Incremental) installArenas(as []*agg.Arena) {
	for i, cp := range inc.cps {
		cp.states = as[i]
	}
}

func (inc *Incremental) freshArenas() []*agg.Arena {
	out := make([]*agg.Arena, len(inc.cps))
	for i, cp := range inc.cps {
		out[i] = agg.NewArena(cp.specs, inc.base.Len())
	}
	return out
}

// ------------------------------------------------------------- roll-ups

// Rollup maintains a coarser cuboid from the finer materialization's
// deltas — Theorem 4.5 run incrementally. Every aggregate of the finer
// MD-join must be distributive (Func.Reaggregate reports its l → l'
// mapping: count→sum, sum→sum, min→min, max→max); the coarse states
// absorb each append's per-base-row delta results, never the detail rows.
type Rollup struct {
	inc    *Incremental
	base   *table.Table // distinct projection of the finer base over dims
	schema *table.Schema
	groups []int      // finer base row → coarse row
	reaggs []agg.Func // flattened across phases, in output order
	states [][]agg.State
}

// Rollup attaches a coarser cuboid over the given base dimensions to an
// append-only Incremental. The coarse base is the distinct projection of
// the finer base over dims, so equivalence with a direct coarse MD-join
// holds whenever the finer base covers every dim combination appearing in
// the appended detail (the usual cuboid-lattice setting, where both bases
// come from the same dimension hierarchy).
//
// Windowed materializations cannot carry roll-ups: an eviction is a
// deletion, and re-aggregated results are not invertible (a departed
// minimum is unrecoverable from coarse states).
func (inc *Incremental) Rollup(dims ...string) (*Rollup, error) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.err != nil {
		return nil, inc.err
	}
	if inc.cur != nil {
		return nil, fmt.Errorf("core: roll-up maintenance requires an append-only incremental (WindowBuckets is 0)")
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("core: roll-up needs at least one dimension")
	}
	var reaggs []agg.Func
	var outs []string
	for pi, cp := range inc.cps {
		for _, c := range cp.specs {
			f, ok := c.Fn.Reaggregate()
			if !ok {
				return nil, fmt.Errorf("core: phase %d aggregate %s does not re-aggregate (Theorem 4.5 needs distributive functions)", pi, c.Fn.Name())
			}
			reaggs = append(reaggs, f)
			outs = append(outs, c.Spec.OutName())
		}
	}
	coarse, err := engine.DistinctOn(inc.base, dims...)
	if err != nil {
		return nil, err
	}
	schema := coarse.Schema
	for _, name := range outs {
		if schema.Has(name) {
			return nil, fmt.Errorf("core: roll-up aggregate output %q collides with dimension column", name)
		}
		schema = schema.Append(table.Field{Name: name})
	}
	dimOrds := make([]int, len(dims))
	for i, d := range dims {
		dimOrds[i] = inc.base.Schema.ColIndex(d)
	}
	index := make(map[string]int, coarse.Len())
	for ci, cr := range coarse.Rows {
		if ci&1023 == 0 {
			if err := ctxErr(inc.opt.Ctx); err != nil {
				return nil, err
			}
		}
		index[rollupKey(cr)] = ci
	}
	groups := make([]int, inc.base.Len())
	keyRow := make(table.Row, len(dims))
	for bi, br := range inc.base.Rows {
		if bi&1023 == 0 {
			if err := ctxErr(inc.opt.Ctx); err != nil {
				return nil, err
			}
		}
		for i, o := range dimOrds {
			keyRow[i] = br[o]
		}
		groups[bi] = index[rollupKey(keyRow)]
	}
	states := make([][]agg.State, coarse.Len())
	for ci := range states {
		row := make([]agg.State, len(reaggs))
		for j, f := range reaggs {
			row[j] = f.NewState()
		}
		states[ci] = row
	}
	ru := &Rollup{inc: inc, base: coarse, schema: schema, groups: groups, reaggs: reaggs, states: states}
	// Seed with everything appended so far: the cumulative arenas are one
	// big delta, and distributivity makes one big fold equal many small
	// ones.
	ru.fold(inc.detachArenas())
	inc.rollups = append(inc.rollups, ru)
	return ru, nil
}

// rollupKey renders a dimension tuple into a collision-safe map key: each
// value is prefixed by its kind, so Int(1) and Str("1") stay distinct.
func rollupKey(r table.Row) string {
	var b []byte
	for _, v := range r {
		b = append(b, byte('0'+int(v.Kind())))
		b = append(b, v.String()...)
		b = append(b, 0)
	}
	return string(b)
}

// fold absorbs one finer delta (per-phase arenas over the finer base)
// into the coarse states through the re-aggregate functions. Empty delta
// states contribute NULL results, which every re-aggregate state ignores;
// count contributes Int(0), which its sum absorbs harmlessly.
func (ru *Rollup) fold(delta []*agg.Arena) {
	for bi, ci := range ru.groups {
		row := ru.states[ci]
		j := 0
		for _, a := range delta {
			for s := 0; s < a.Specs(); s++ {
				row[j].Add(a.At(bi, s).Result())
				j++
			}
		}
	}
}

// Snapshot assembles the coarse cuboid: one row per distinct dimension
// combination, re-aggregated results alongside.
func (ru *Rollup) Snapshot() (*table.Table, error) {
	ru.inc.mu.Lock()
	defer ru.inc.mu.Unlock()
	if ru.inc.err != nil {
		return nil, ru.inc.err
	}
	out := table.New(ru.schema)
	w := ru.schema.Len()
	out.Rows = make([]table.Row, 0, ru.base.Len())
	backing := make([]table.Value, 0, ru.base.Len()*w)
	for ci, cr := range ru.base.Rows {
		start := len(backing)
		backing = append(backing, cr...)
		for _, st := range ru.states[ci] {
			backing = append(backing, st.Result())
		}
		out.Rows = append(out.Rows, table.Row(backing[start:len(backing):len(backing)]))
	}
	return out, nil
}

func (ru *Rollup) sizeBytes() int64 {
	// Coarse states are individually allocated; charge the same flat
	// estimate Arena.SizeBytes uses (header + small struct) per state.
	n := int64(ru.base.Len()) * int64(len(ru.reaggs))
	return n * 48
}
