package core

import (
	"context"
	"errors"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

// The scan loops poll Options.Ctx so a caller's deadline cancels the
// MD-join itself — the property the distributed layer's site timeouts
// rely on.

func ctxFixture(t *testing.T) (*table.Table, *table.Table, []Phase) {
	t.Helper()
	sales := workload.Sales(workload.SalesConfig{Rows: 3000, Customers: 12, States: 3, Seed: 5})
	base := table.New(table.NewSchema(table.Field{Name: "cust"}))
	ci := sales.Schema.MustColIndex("cust")
	seen := map[string]bool{}
	for _, r := range sales.Rows {
		if k := r[ci].String(); !seen[k] {
			seen[k] = true
			base.Append(table.Row{r[ci]})
		}
	}
	phases := []Phase{{
		Aggs:  []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}}
	return base, sales, phases
}

func TestEvalCancelledContext(t *testing.T) {
	base, sales, phases := ctxFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opt := range []Options{
		{Ctx: ctx},
		{Ctx: ctx, MaxBaseRows: 3},
		{Ctx: ctx, Parallelism: 2},
		{Ctx: ctx, DetailParallelism: 2},
	} {
		if _, err := Eval(base, sales, phases, opt); !errors.Is(err, context.Canceled) {
			t.Fatalf("opt %+v: want context.Canceled, got %v", opt, err)
		}
	}
}

func TestEvalSourceCancelledContext(t *testing.T) {
	base, sales, phases := ctxFixture(t)
	src := table.NewTableSource(sales)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opt := range []Options{
		{Ctx: ctx},
		{Ctx: ctx, DetailParallelism: 2},
	} {
		if _, err := EvalSource(base, src, phases, opt); !errors.Is(err, context.Canceled) {
			t.Fatalf("opt %+v: want context.Canceled, got %v", opt, err)
		}
	}
}

func TestEvalNilContextRuns(t *testing.T) {
	base, sales, phases := ctxFixture(t)
	res, err := Eval(base, sales, phases, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != base.Len() {
		t.Fatalf("rows: %d, want %d", res.Len(), base.Len())
	}
}
