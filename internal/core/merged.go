package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mdjoin/internal/table"
)

// Merged evaluation: the merge and scatter stages of the three-stage API.
//
// EvalBundles generalizes the paper's Section 4.3 one step further: where a
// generalized MD-join shares one scan of R across the phases of one query,
// the merged driver shares one scan of R across the phases of several
// *queries* — each bundle keeps its own base table, flat index, liveness
// bitmap, and arena states, and every detail batch is fed through each live
// bundle in turn. Per-bundle θ pushdown stays separate (Theorem 4.2 applies
// per phase, exactly as in a solo run), morsel scheduling is unchanged from
// the single-query detail-parallel path, and the scatter stage assembles
// each bundle's output table and Stats independently, so a merged run is
// byte-identical and Semantic()-identical to N solo runs.
//
// Per-caller fault domains: a bundle whose Ctx cancels is evicted — its
// phases stop consuming batches, its submitter gets ctx.Err() — without
// aborting the scan for the others; a panic out of one bundle's phases
// (only possible with corrupt inputs) is caught per batch when bundles > 1
// and surfaces as *PanicError to that submitter alone. A solo run (one
// bundle) keeps today's contract: panics propagate to the caller.

// BundleResult is one bundle's scatter: its output table or the error that
// evicted it from the merged scan.
type BundleResult struct {
	Table *table.Table
	Err   error
}

// PanicError wraps a panic recovered from one bundle's phases during a
// merged multi-query scan, isolating the fault to the submitting caller.
type PanicError struct {
	Val any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: panic during merged evaluation: %v", e.Val)
}

func errUnmergeableBundles() error {
	return fmt.Errorf("core: EvalBundles needs mergeable bundles over one shared detail table")
}

// bundleRun is one bundle's mutable state across the merged scan: per-worker
// execution state and scratch stats, plus the eviction latch.
type bundleRun struct {
	bu      *Bundle
	workers [][]*compiledPhase
	stats   []Stats
	evicted atomic.Bool
	mu      sync.Mutex
	err     error
}

// evict latches the bundle out of the scan with its terminal error; the
// first error wins (a ctx cancellation seen by two workers reports once).
func (run *bundleRun) evict(err error) {
	run.mu.Lock()
	if run.err == nil {
		run.err = err
	}
	run.mu.Unlock()
	run.evicted.Store(true)
}

// wstats is worker wi's private stats sink for this bundle (nil when the
// submitter asked for none — the zero-overhead contract holds per bundle).
func (run *bundleRun) wstats(wi int) *Stats {
	if run.bu.opt.Stats == nil {
		return nil
	}
	return &run.stats[wi]
}

// mergedExec is one bundle's per-worker execution state.
type mergedExec struct {
	cps      []*compiledPhase
	scalar   bool // tuple-at-a-time interpreter (Options.DisableBatch)
	columnar bool // any phase runs on the chunk executor
}

// feedBatch folds one detail batch into this bundle's phases. ch is the
// batch's columnar view (nil when no live bundle needs one); transposed
// tells the prebuilt/transposed accounting apart. When isolate is set the
// bundle is merged with others and a panic out of its phases evicts it
// instead of unwinding the scan. Returns the (possibly grown) scalar
// probe-key buffer for reuse.
func (run *bundleRun) feedBatch(ex *mergedExec, frame []table.Row, key []table.Value, batch []table.Row, ch *table.Chunk, transposed bool, st *Stats, isolate bool) []table.Value {
	if isolate {
		defer func() {
			if p := recover(); p != nil {
				run.evict(&PanicError{Val: p})
			}
		}()
	}
	b := run.bu.base
	if ex.scalar {
		for _, t := range batch {
			key = processTuple(b, ex.cps, frame, key, t, st)
		}
		return key
	}
	if st != nil {
		st.TuplesScanned += len(batch)
		st.Batches++
		if ex.columnar && ch != nil {
			if transposed {
				st.ChunksTransposed++
			} else {
				st.ChunksPrebuilt++
			}
		}
	}
	for _, cp := range ex.cps {
		if cp.chunk != nil && ch != nil {
			processPhaseChunk(b, cp, frame, batch, ch, st)
		} else {
			processPhaseBatch(b, cp, frame, batch, st)
		}
	}
	return key
}

// bindWorker prepares worker wi's execution state for this bundle. Like
// feedBatch, a panic (corrupt base data reaching arena sizing) evicts the
// bundle instead of unwinding the scan when merged.
func (run *bundleRun) bindWorker(wi int, st *Stats, isolate bool) (ex mergedExec, ok bool) {
	if isolate {
		defer func() {
			if p := recover(); p != nil {
				run.evict(&PanicError{Val: p})
			}
		}()
	}
	cps := newPhaseExecs(run.bu.plans, run.bu.base.Len())
	recordTiers(st, cps)
	recordArenas(st, cps)
	run.workers[wi] = cps
	ex = mergedExec{cps: cps, scalar: len(cps) > 0 && cps[0].scalar}
	for _, cp := range cps {
		if cp.chunk != nil {
			ex.columnar = true
		}
	}
	return ex, true
}

// EvalBundles runs the merged multi-B evaluation: one scan of the shared
// detail table feeds every bundle's phases, then each bundle's results and
// stats scatter back independently (results[i] belongs to bundles[i]).
// Every bundle must be Mergeable and share one detail table. Worker count
// is the maximum DetailParallelism any bundle asked for; a group of one
// with no parallelism runs inline — this is also the single-query path.
func EvalBundles(bundles []*Bundle) []BundleResult {
	results := make([]BundleResult, len(bundles))
	if len(bundles) == 0 {
		return results
	}
	detail := bundles[0].detail
	for _, bu := range bundles {
		if !bu.Mergeable() || bu.detail != detail {
			err := errUnmergeableBundles()
			for i := range results {
				results[i].Err = err
			}
			return results
		}
	}
	isolate := len(bundles) > 1

	n := detail.Len()
	p := 1
	statsOn := false
	for _, bu := range bundles {
		if bu.opt.DetailParallelism > p {
			p = bu.opt.DetailParallelism
		}
		if bu.opt.Stats != nil {
			statsOn = true
		}
	}
	// Morsel sizing and worker clamping, unchanged from the single-query
	// morsel scheduler: shrink the morsel (chunk-aligned, at least one
	// chunk) when R is too small to give every worker a full-size one,
	// then never run more workers than morsels.
	morsel := morselRows
	if need := (n + p - 1) / p; p > 1 && need < morsel {
		morsel = (need + batchSize - 1) / batchSize * batchSize
		if morsel < batchSize {
			morsel = batchSize
		}
	}
	if nMorsels := (n + morsel - 1) / morsel; p > nMorsels {
		p = nMorsels
	}
	if p < 1 {
		p = 1
	}

	runs := make([]*bundleRun, len(bundles))
	for bi, bu := range bundles {
		runs[bi] = &bundleRun{
			bu:      bu,
			workers: make([][]*compiledPhase, p),
			stats:   make([]Stats, p),
		}
	}

	// The parent table's columnar mirror is shared read-only across
	// workers and bundles, addressed by row offset. Guard the offset
	// arithmetic: every chunk but the last must hold exactly batchSize rows.
	prebuilt := detail.CachedChunks(batchSize)
	for ci, ch := range prebuilt {
		lo := ci * batchSize
		want := batchSize
		if n-lo < want {
			want = n - lo
		}
		if ch.Len() != want {
			prebuilt = nil
			break
		}
	}

	var scanMark time.Time
	if statsOn {
		scanMark = time.Now()
	}

	rows := detail.Rows
	var cursor atomic.Int64
	worker := func(wi int) {
		execs := make([]mergedExec, len(runs))
		for bi, run := range runs {
			if run.evicted.Load() {
				continue
			}
			execs[bi], _ = run.bindWorker(wi, run.wstats(wi), isolate)
		}
		d := newBatchDriver(detail.Schema, allPhases(execs))
		var key []table.Value
		for {
			lo := int(cursor.Add(int64(morsel))) - morsel
			if lo >= n {
				return
			}
			hi := lo + morsel
			if hi > n {
				hi = n
			}
			for off := lo; off < hi; off += batchSize {
				end := off + batchSize
				if end > hi {
					end = hi
				}
				batch := rows[off:end]
				var ch *table.Chunk
				transposed := false
				live := 0
				for bi, run := range runs {
					if run.evicted.Load() {
						continue
					}
					// Per-bundle poll: one caller's cancellation evicts
					// only its phases, never the shared scan.
					if err := ctxErr(run.bu.opt.Ctx); err != nil {
						run.evict(err)
						continue
					}
					if ch == nil && execs[bi].columnar {
						// First live columnar bundle materializes the
						// batch's chunk view; the rest share it.
						if prebuilt != nil {
							ch = prebuilt[off/batchSize]
						} else {
							if d.scratch == nil {
								d.scratch = table.NewChunk(detail.Schema)
							}
							d.scratch.LoadRows(batch, d.ords)
							ch = d.scratch
							transposed = true
						}
					}
					key = run.feedBatch(&execs[bi], d.frame, key, batch, ch, transposed, run.wstats(wi), isolate)
					if !run.evicted.Load() {
						live++
					}
				}
				if live == 0 {
					return // every bundle evicted: nothing left to feed
				}
			}
		}
	}

	if p == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for wi := 0; wi < p; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				worker(wi)
			}(wi)
		}
		wg.Wait()
	}

	var scanNanos int64
	if statsOn {
		scanNanos = time.Since(scanMark).Nanoseconds()
	}

	// Scatter: each bundle assembles its own output and folds its workers'
	// scratch stats into its submitter's tree, independently of the others.
	for bi, run := range runs {
		bu := run.bu
		if run.err != nil {
			results[bi] = BundleResult{Err: run.err}
			continue
		}
		if bu.opt.Stats != nil {
			bu.opt.Stats.DetailScans++ // one shared scan, one logical scan per bundle
			bu.opt.Stats.ScanNanos += scanNanos
			for wi := range run.stats {
				bu.opt.Stats.Merge(&run.stats[wi])
			}
		}
		merged := run.workers[0]
		for _, w := range run.workers[1:] {
			for pi := range merged {
				merged[pi].states.Merge(w[pi].states)
			}
		}
		var mark time.Time
		if bu.opt.Stats != nil {
			mark = time.Now()
		}
		out := assemble(bu.schema, bu.base, merged)
		if bu.opt.Stats != nil {
			bu.opt.Stats.AssembleNanos += time.Since(mark).Nanoseconds()
		}
		results[bi] = BundleResult{Table: out}
	}
	return results
}

// allPhases flattens every bundle's per-worker phases so one batch driver
// can size its transpose set (the union of detail ordinals any phase reads).
func allPhases(execs []mergedExec) []*compiledPhase {
	var all []*compiledPhase
	for i := range execs {
		all = append(all, execs[i].cps...)
	}
	return all
}
