package core

import (
	"context"
	"io"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Vectorized row-batch executor: the boxed middle tier of the detail scan
// (the columnar chunk executor in chunk.go is the default; this path runs
// under Options.DisableColumnar and for phases that fail chunk compilation).
//
// Instead of dispatching every detail tuple through every phase's compiled
// predicates one at a time, the scan slices R into fixed-size batches and,
// per phase, (1) filters the batch through the R-only conjuncts (Theorem
// 4.2) into a selection vector, (2) evaluates each index-key expression
// once over the survivors into a column vector, and (3) runs a fused
// probe-and-feed loop over the selection: gather the tuple's key from the
// column vectors, probe the flat base index, and fold the tuple into the
// arena-backed aggregate states of its relative set. Context-cancellation
// polls and Stats counter updates happen once per batch instead of once
// per tuple, so neither appears in the per-tuple profile.
//
// All scratch (selection vector, key column vectors, probe buffer) lives
// on the phase's compiledPhase and is reused across batches; steady-state
// scanning allocates nothing.

// batchSize is the number of detail tuples processed per batch: large
// enough to amortize per-batch work (selection reset, stats flush, ctx
// poll), small enough that the batch's column vectors stay cache-resident.
// It equals table.ChunkSize so a Builder-built detail table's cached
// chunks line up one-to-one with the scan's batches.
const batchSize = table.ChunkSize

// scanDetailBatched drives the batch executor over a materialized detail
// table. When the table carries a columnar mirror built at the right chunk
// size, each batch reuses its prebuilt chunk; otherwise columnar phases
// transpose the batch into the driver's scratch chunk. A cancelled ctx
// aborts the scan between batches.
func scanDetailBatched(ctx context.Context, b *table.Table, r *table.Table, cps []*compiledPhase, stats *Stats) error {
	d := newBatchDriver(r.Schema, cps)
	if d.columnar {
		d.prebuilt = r.CachedChunks(batchSize)
	}
	rows := r.Rows
	ci := 0
	for off := 0; off < len(rows); off += batchSize {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		end := off + batchSize
		if end > len(rows) {
			end = len(rows)
		}
		var ch *table.Chunk
		if d.prebuilt != nil {
			ch = d.prebuilt[ci]
			ci++
			if ch.Len() != end-off {
				ch = nil // misaligned mirror; transpose instead
			}
		}
		d.processBatch(b, cps, rows[off:end], ch, stats)
	}
	return nil
}

// scanIteratorBatched drives the batch executor over a streaming source
// iterator, buffering rows into fixed-size batches. Source iterators hand
// ownership of each returned row to the caller (table-backed iterators
// return stable references, CSV iterators allocate fresh rows), so
// buffering never sees a row mutated behind its back.
func scanIteratorBatched(ctx context.Context, b *table.Table, rSchema *table.Schema, it table.Iterator, cps []*compiledPhase, stats *Stats) error {
	d := newBatchDriver(rSchema, cps)
	buf := make([]table.Row, 0, batchSize)
	for {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		buf = buf[:0]
		for len(buf) < batchSize {
			t, err := it.Next()
			if err == io.EOF {
				if len(buf) > 0 {
					d.processBatch(b, cps, buf, nil, stats)
				}
				return nil
			}
			if err != nil {
				return err
			}
			buf = append(buf, t)
		}
		d.processBatch(b, cps, buf, nil, stats)
	}
}

// processPhaseBatch runs one phase over one batch: R-only filter, batched
// key evaluation, then the fused probe-and-feed loop.
func processPhaseBatch(b *table.Table, cp *compiledPhase, frame []table.Row, batch []table.Row, stats *Stats) {
	frame[0], frame[1] = nil, nil
	cp.sel = expr.IdentitySel(cp.sel, len(batch))
	sel := cp.sel

	// Theorem 4.2: R-only conjuncts gate the whole batch before any
	// base-row work, compacting the selection to the survivors.
	if cp.rOnly != nil {
		in := len(sel)
		sel = cp.rOnly.FilterSlotBatch(frame, 1, batch, sel)
		if stats != nil {
			ph := stats.phase(cp.pi)
			ph.PushdownIn += in
			ph.PushdownOut += len(sel)
			ph.BoxedElems += int64(in) // row-batch kernels are all boxed
		}
		if len(sel) == 0 {
			return
		}
	}

	tested, matched := 0, 0
	if cp.index == nil {
		// Verbatim Algorithm 3.1 inner loop for the surviving tuples.
		for _, si := range sel {
			frame[1] = batch[si]
			for bi, br := range b.Rows {
				if !cp.bAlive[bi] {
					continue
				}
				tested++
				if feedPair(cp, br, bi, frame, -1) {
					matched++
				}
			}
		}
		frame[0], frame[1] = nil, nil
		flushPhaseStats(stats, cp.pi, tested, matched, 0, 0)
		return
	}

	// Section 4.5: evaluate every index-key expression once over the
	// selection into its column vector.
	nk := len(cp.equiKeys)
	if cap(cp.keyCols) < nk {
		cp.keyCols = make([][]table.Value, nk)
	}
	cp.keyCols = cp.keyCols[:nk]
	for i, ke := range cp.equiKeys {
		cp.keyCols[i] = ke.EvalSlotBatch(frame, 1, batch, sel, cp.keyCols[i])
	}
	if stats != nil {
		stats.phase(cp.pi).BoxedElems += int64(nk) * int64(len(sel))
	}
	if cap(cp.keyBuf) < nk {
		cp.keyBuf = make([]table.Value, nk)
	}
	key := cp.keyBuf[:nk]

	// Fused probe-and-feed loop: gather the key from the column vectors,
	// probe the flat index, fold matches into the arena states.
	probes, hits := 0, 0
	for _, si := range sel {
		degenerate, dead := false, false
		for i := range key {
			key[i] = cp.keyCols[i][si]
			if key[i].IsAll() {
				// A detail-side ALL matches every base value under =^;
				// fall back to the full loop for this tuple (cannot arise
				// from ordinary detail data).
				degenerate = true
			}
			if key[i].IsNull() && !cp.cubeAt[i] {
				// Strict equality with NULL is never true: no base row
				// can match this tuple in this phase.
				dead = true
			}
		}
		if dead {
			continue
		}
		frame[1] = batch[si]
		switch {
		case degenerate:
			for bi, br := range b.Rows {
				if !cp.bAlive[bi] {
					continue
				}
				tested++
				if feedPair(cp, br, bi, frame, -1) {
					matched++
				}
			}
		case len(cp.cubePos) == 0:
			// Plain equality: one probe, no key rewriting.
			cp.probeBuf = cp.index.ProbeAppend(cp.probeBuf[:0], key)
			probes++
			hits += len(cp.probeBuf)
			for _, bi := range cp.probeBuf {
				if !cp.bAlive[bi] {
					continue
				}
				tested++
				if feedPair(cp, b.Rows[bi], bi, frame, -1) {
					matched++
				}
			}
		default:
			t, m, pr, h := probeCubeBatched(cp, b, key, frame, -1)
			tested += t
			matched += m
			probes += pr
			hits += h
		}
	}
	frame[0], frame[1] = nil, nil
	flushPhaseStats(stats, cp.pi, tested, matched, probes, hits)
}

// probeCubeBatched is probeCube with batch-local counters: one probe per
// cube-equality combination, so a tuple updates its 2^k cube cells in one
// pass. si carries the tuple's chunk position through to feedPair (-1 on
// the boxed path).
func probeCubeBatched(cp *compiledPhase, b *table.Table, key []table.Value, frame []table.Row, si int) (tested, matched, probes, hits int) {
	k := len(cp.cubePos)
	if cap(cp.savedBuf) < k {
		cp.savedBuf = make([]table.Value, k)
	}
	saved := cp.savedBuf[:k]
	for i, p := range cp.cubePos {
		saved[i] = key[p]
	}
	for mask := 0; mask < 1<<k; mask++ {
		for i, p := range cp.cubePos {
			if mask&(1<<i) != 0 {
				key[p] = table.All()
			} else {
				key[p] = saved[i]
			}
		}
		cp.probeBuf = cp.index.ProbeAppend(cp.probeBuf[:0], key)
		probes++
		hits += len(cp.probeBuf)
		for _, bi := range cp.probeBuf {
			if !cp.bAlive[bi] {
				continue
			}
			tested++
			if feedPair(cp, b.Rows[bi], bi, frame, si) {
				matched++
			}
		}
	}
	for i, p := range cp.cubePos {
		key[p] = saved[i]
	}
	return tested, matched, probes, hits
}

// feedPair checks the residual θ conjuncts for one (b, r) pair and feeds
// the aggregates on success, reporting whether the pair matched. Unlike
// updatePair it leaves the stats counters to the caller's batch-local
// accumulators. si is the tuple's position in the current chunk: when
// non-negative, specs with a resolved argument column fold the typed
// payload at si instead of re-evaluating the argument per pair; -1 selects
// the boxed feed (row-batch path, or no chunk for this phase).
func feedPair(cp *compiledPhase, brow table.Row, bi int, frame []table.Row, si int) bool {
	frame[0] = brow
	if cp.residual != nil && !cp.residual.Truth(frame) {
		return false
	}
	row := cp.states.Row(bi)
	if si >= 0 {
		for j, c := range cp.specs {
			if col := cp.chunk.argCols[j]; col != nil {
				agg.FoldInto(row[j], col, si)
			} else {
				c.Feed(row[j], frame)
			}
		}
		return true
	}
	for j, c := range cp.specs {
		c.Feed(row[j], frame)
	}
	return true
}

// flushPhaseStats adds one phase-batch's pair and probe counters to the
// shared Stats — the amortization point of the overhead contract: the
// fused loops above count into locals unconditionally and pay the nil
// check once per batch.
func flushPhaseStats(stats *Stats, pi, tested, matched, probes, hits int) {
	if stats == nil {
		return
	}
	stats.PairsTested += tested
	stats.PairsMatched += matched
	ph := stats.phase(pi)
	ph.PairsTested += tested
	ph.PairsMatched += matched
	ph.IndexProbes += probes
	ph.IndexHits += hits
}

// flushFilterStats adds one batch's fingerprint pre-filter counters —
// same amortization contract as flushPhaseStats.
func flushFilterStats(stats *Stats, pi, checked, skipped int) {
	if stats == nil {
		return
	}
	ph := stats.phase(pi)
	ph.FilterChecked += checked
	ph.FilterSkipped += skipped
}
