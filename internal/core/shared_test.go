package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Tests for the three-stage API's merge and scatter stages (EvalBundles),
// the cross-query coordinator (SharedExecutor), and the merged scan's
// per-caller fault domains. The whole file reruns under -race via
// `make race-shared` (part of `make check`): the merged driver's workers,
// the eviction latches, and the coordinator's window bookkeeping are
// exactly the code a cached race pass must not mask.

// genSharedDetail builds a random detail relation with occasional NULL
// join keys: NULLs must flow through the merged scan with the same
// never-matches semantics as a solo run.
func genSharedDetail(rng *rand.Rand, n int) *table.Table {
	r := table.New(table.SchemaOf("g1", "g2", "w", "f"))
	for i := 0; i < n; i++ {
		row := table.Row{
			table.Int(int64(rng.Intn(7))),
			table.Int(int64(rng.Intn(5))),
			table.Int(int64(rng.Intn(100))),
			table.Int(int64(rng.Intn(3))),
		}
		if rng.Intn(12) == 0 {
			row[rng.Intn(2)] = table.Null()
		}
		r.Append(row)
	}
	return r
}

// genSharedBase builds a random base: a flat group-by style base with
// occasional NULL keys, or (cube=true) a cube subset containing ALL cells
// so cube-equality θs exercise their super-aggregate semantics merged.
func genSharedBase(rng *rand.Rand, cube bool) *table.Table {
	b := table.New(table.SchemaOf("g1", "g2"))
	seen := map[[2]string]bool{}
	want := 3 + rng.Intn(8)
	for tries := 0; tries < 64 && b.Len() < want; tries++ {
		var v1, v2 table.Value
		switch {
		case cube && rng.Intn(3) == 0:
			v1 = table.All()
		case !cube && rng.Intn(10) == 0:
			v1 = table.Null()
		default:
			v1 = table.Int(int64(rng.Intn(6)))
		}
		switch {
		case cube && rng.Intn(3) == 0:
			v2 = table.All()
		case !cube && rng.Intn(10) == 0:
			v2 = table.Null()
		default:
			v2 = table.Int(int64(rng.Intn(4)))
		}
		k := [2]string{v1.String(), v2.String()}
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Append(table.Row{v1, v2})
	}
	return b
}

// sharedQuery is one randomized query in a differential trial: its base,
// phases, and executor options (the Stats pointer is filled per run).
type sharedQuery struct {
	base   *table.Table
	phases []Phase
	opt    Options
}

// genSharedQuery draws a random query shape: equi / equi+residual /
// cube-equality θ, a random aggregate list, and one of the executor
// option sets the merged driver must model per bundle (tiers, index
// on/off, its own DetailParallelism ask).
func genSharedQuery(rng *rand.Rand) sharedQuery {
	var theta expr.Expr
	cube := false
	switch rng.Intn(4) {
	case 0:
		theta = expr.And(
			expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
			expr.Eq(expr.QC("R", "g2"), expr.C("g2")))
	case 1:
		theta = expr.And(
			expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
			expr.Le(expr.QC("R", "f"), expr.I(int64(rng.Intn(3)))))
	case 2:
		theta = expr.And(
			expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
			expr.Eq(expr.QC("R", "g2"), expr.C("g2")),
			expr.Gt(expr.QC("R", "w"), expr.Mul(expr.C("g1"), expr.I(10))))
	default:
		cube = true
		theta = expr.And(
			expr.CubeEq(expr.QC("R", "g1"), expr.C("g1")),
			expr.CubeEq(expr.QC("R", "g2"), expr.C("g2")))
	}
	specs := []agg.Spec{agg.NewSpec("count", nil, "n")}
	if rng.Intn(2) == 0 {
		specs = append(specs, agg.NewSpec("sum", expr.QC("R", "w"), "total"))
	}
	if rng.Intn(2) == 0 {
		specs = append(specs, agg.NewSpec("min", expr.QC("R", "w"), "lo"))
	}
	var opt Options
	switch rng.Intn(5) {
	case 0: // columnar default
	case 1:
		opt.DisableBatch = true // scalar interpreter
	case 2:
		opt.DisableColumnar = true // boxed row-batch tier
	case 3:
		opt.DisableIndex = true // nested-loop access path
	case 4:
		opt.DetailParallelism = 2 + rng.Intn(3)
	}
	return sharedQuery{
		base:   genSharedBase(rng, cube),
		phases: []Phase{{Aggs: specs, Theta: theta}},
		opt:    opt,
	}
}

// TestEvalBundlesDifferentialRandomized is the acceptance differential:
// N random queries over one shared detail relation — mixed θ shapes,
// cube and non-cube bases, NULL join keys, mixed executor tiers and
// parallelism asks — run once solo and once merged into a single scan.
// Every query's merged result must be byte-identical to its solo result
// and its Stats must render the same Semantic() projection (one logical
// detail scan per caller, identical tuple/pair/probe accounting).
func TestEvalBundlesDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	for trial := 0; trial < 20; trial++ {
		r := genSharedDetail(rng, 200+rng.Intn(1800)) // spans the batch boundary
		nq := 2 + rng.Intn(4)
		queries := make([]sharedQuery, nq)
		for i := range queries {
			queries[i] = genSharedQuery(rng)
		}

		// One bundle per query submits no Stats at all: the merged driver's
		// zero-overhead contract is per bundle, not per group.
		noStats := rng.Intn(nq)

		solo := make([]*table.Table, nq)
		soloStats := make([]*Stats, nq)
		for i, q := range queries {
			opt := q.opt
			if i != noStats {
				soloStats[i] = &Stats{}
				opt.Stats = soloStats[i]
			}
			out, err := Eval(q.base, r, q.phases, opt)
			if err != nil {
				t.Fatalf("trial %d query %d solo: %v", trial, i, err)
			}
			solo[i] = out
		}

		bundles := make([]*Bundle, nq)
		mergedStats := make([]*Stats, nq)
		for i, q := range queries {
			opt := q.opt
			if i != noStats {
				mergedStats[i] = &Stats{}
				opt.Stats = mergedStats[i]
			}
			bu, err := Compile(q.base, r, q.phases, opt)
			if err != nil {
				t.Fatalf("trial %d query %d compile: %v", trial, i, err)
			}
			if !bu.Mergeable() {
				t.Fatalf("trial %d query %d: bundle unexpectedly unmergeable", trial, i)
			}
			bundles[i] = bu
		}
		results := EvalBundles(bundles)

		for i := range queries {
			if results[i].Err != nil {
				t.Fatalf("trial %d query %d merged: %v", trial, i, results[i].Err)
			}
			if d := solo[i].Diff(results[i].Table); d != "" {
				t.Fatalf("trial %d query %d: merged result differs from solo: %s", trial, i, d)
			}
			if i == noStats {
				continue
			}
			if got, want := mergedStats[i].Semantic(), soloStats[i].Semantic(); got != want {
				t.Fatalf("trial %d query %d: semantic stats diverge\nmerged: %s\nsolo:   %s",
					trial, i, got, want)
			}
			if mergedStats[i].DetailScans != 1 {
				t.Fatalf("trial %d query %d: caller observed %d detail scans, want 1 (semantic contract)",
					trial, i, mergedStats[i].DetailScans)
			}
		}
	}
}

// TestEvalBundlesRejectsUnmergeable: bundles over different detail tables,
// or bundles whose strategy the merged driver does not model, fail the
// whole call with one explanatory error per submitter (never a partial
// merge), and an empty group is a no-op.
func TestEvalBundlesRejectsUnmergeable(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	r1 := genSharedDetail(rng, 100)
	r2 := genSharedDetail(rng, 100)
	q := genSharedQuery(rng)
	q.opt = Options{}

	mk := func(r *table.Table, opt Options) *Bundle {
		bu, err := Compile(q.base, r, q.phases, opt)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return bu
	}

	for name, bundles := range map[string][]*Bundle{
		"mixed-details": {mk(r1, Options{}), mk(r2, Options{})},
		"base-parallel": {mk(r1, Options{}), mk(r1, Options{Parallelism: 2})},
		"static-split":  {mk(r1, Options{}), mk(r1, Options{StaticDetailSplit: true, DetailParallelism: 2})},
	} {
		results := EvalBundles(bundles)
		for i, res := range results {
			if res.Err == nil {
				t.Errorf("%s: bundle %d got no error from an unmergeable group", name, i)
			}
		}
	}

	if got := EvalBundles(nil); len(got) != 0 {
		t.Errorf("empty group returned %d results", len(got))
	}
}

// panicBundle compiles a bundle that panics mid-scan: its base holds a
// truncated row and its θ is a non-equi (nested-loop) predicate reading
// the missing base column, so the first batch fed to this bundle's phases
// indexes past the row's end — the corrupt-input shape the per-bundle
// isolation exists for.
func panicBundle(t *testing.T, r *table.Table, opt Options) *Bundle {
	t.Helper()
	bad := table.New(table.SchemaOf("g1", "g2"))
	bad.Append(table.Row{table.Int(1), table.Int(1)})
	bad.Rows = append(bad.Rows, table.Row{}) // truncated: no g2 to read
	phases := []Phase{{
		Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
		Theta: expr.Gt(expr.QC("R", "w"), expr.C("g2")),
	}}
	bu, err := Compile(bad, r, phases, opt)
	if err != nil {
		t.Fatalf("panic bundle compile: %v", err)
	}
	if !bu.Mergeable() {
		t.Fatal("panic bundle must be mergeable for the torture run")
	}
	return bu
}

// TestMergedScanTortureCancelAndPanic is the fault-domain torture: five
// bundles share one scan while one caller's ctx is cancelled and another
// bundle panics on corrupt base data. The cancelled caller gets its
// ctx.Err(), the corrupt one gets *PanicError, and the three healthy
// bundles — spanning the scalar, row-batch, and parallel columnar tiers —
// complete byte-identical to their solo runs. Runs under -race via
// `make race-shared`.
func TestMergedScanTortureCancelAndPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	r := genSharedDetail(rng, 20000) // several morsels for the parallel ask

	healthy := []sharedQuery{
		{base: genSharedBase(rng, false), phases: []Phase{{
			Aggs: []agg.Spec{agg.NewSpec("count", nil, "n"), agg.NewSpec("sum", expr.QC("R", "w"), "total")},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
				expr.Eq(expr.QC("R", "g2"), expr.C("g2"))),
		}}, opt: Options{}},
		{base: genSharedBase(rng, false), phases: []Phase{{
			Aggs:  []agg.Spec{agg.NewSpec("min", expr.QC("R", "w"), "lo")},
			Theta: expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
		}}, opt: Options{DisableBatch: true}},
		{base: genSharedBase(rng, false), phases: []Phase{{
			Aggs:  []agg.Spec{agg.NewSpec("avg", expr.QC("R", "w"), "mean")},
			Theta: expr.Eq(expr.QC("R", "g2"), expr.C("g2")),
		}}, opt: Options{DetailParallelism: 4}},
	}
	solo := make([]*table.Table, len(healthy))
	for i, q := range healthy {
		out, err := Eval(q.base, r, q.phases, q.opt)
		if err != nil {
			t.Fatalf("solo %d: %v", i, err)
		}
		solo[i] = out
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancelledOpt := Options{Ctx: ctx}
	cancelledStats := &Stats{}
	cancelledOpt.Stats = cancelledStats
	cancelledBu, err := Compile(healthy[0].base, r, healthy[0].phases, cancelledOpt)
	if err != nil {
		t.Fatalf("cancelled bundle compile: %v", err)
	}
	cancel() // dies between compile and scan: evicted at the first batch poll

	bundles := []*Bundle{
		mustCompile(t, healthy[0], r),
		cancelledBu,
		panicBundle(t, r, Options{}),
		mustCompile(t, healthy[1], r),
		mustCompile(t, healthy[2], r),
	}
	results := EvalBundles(bundles)

	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("cancelled bundle: got %v, want context.Canceled", results[1].Err)
	}
	var pe *PanicError
	if !errors.As(results[2].Err, &pe) {
		t.Errorf("corrupt bundle: got %v, want *PanicError", results[2].Err)
	}
	for hi, ri := range map[int]int{0: 0, 1: 3, 2: 4} {
		if results[ri].Err != nil {
			t.Fatalf("healthy bundle %d died alongside the faults: %v", ri, results[ri].Err)
		}
		if d := solo[hi].Diff(results[ri].Table); d != "" {
			t.Errorf("healthy bundle %d: result drifted under merged faults: %s", ri, d)
		}
	}
}

func mustCompile(t *testing.T, q sharedQuery, r *table.Table) *Bundle {
	t.Helper()
	bu, err := Compile(q.base, r, q.phases, q.opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return bu
}

// TestSharedExecutorMergesFullGroup: concurrent submitters over one
// relation close the group at MaxBatch (the window is a stall backstop,
// not the trigger), run one merged scan, and every caller gets its solo
// result and solo-semantic Stats back.
func TestSharedExecutorMergesFullGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	r := genSharedDetail(rng, 3000)
	nq := 4
	queries := make([]sharedQuery, nq)
	solo := make([]*table.Table, nq)
	for i := range queries {
		queries[i] = genSharedQuery(rng)
		queries[i].opt = Options{}
		out, err := Eval(queries[i].base, r, queries[i].phases, queries[i].opt)
		if err != nil {
			t.Fatalf("solo %d: %v", i, err)
		}
		solo[i] = out
	}

	se := NewSharedExecutor(2*time.Second, nq) // window long enough to never fire
	got := make([]*table.Table, nq)
	errs := make([]error, nq)
	stats := make([]Stats, nq)
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := queries[i].opt
			opt.Stats = &stats[i]
			got[i], errs[i] = se.Eval(queries[i].base, r, queries[i].phases, opt)
		}(i)
	}
	wg.Wait()

	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if d := solo[i].Diff(got[i]); d != "" {
			t.Errorf("query %d: shared result differs from solo: %s", i, d)
		}
		if stats[i].DetailScans != 1 {
			t.Errorf("query %d observed %d detail scans, want 1", i, stats[i].DetailScans)
		}
	}
	st := se.Snapshot()
	if st.Submitted != int64(nq) || st.GroupsRun != 1 ||
		st.MergedBundles != int64(nq) || st.ScansSaved != int64(nq-1) {
		t.Errorf("share stats %+v: want submitted=%d groups_run=1 merged=%d scans_saved=%d",
			st, nq, nq, nq-1)
	}
}

// TestSharedExecutorWindowTimerRunsPartialGroup: a submitter with no
// companions waits out the window and runs as a group of one off the
// timer path — correctness cannot depend on MaxBatch ever being reached.
func TestSharedExecutorWindowTimerRunsPartialGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(174))
	r := genSharedDetail(rng, 500)
	q := genSharedQuery(rng)
	q.opt = Options{}
	want, err := Eval(q.base, r, q.phases, q.opt)
	if err != nil {
		t.Fatal(err)
	}

	se := NewSharedExecutor(5*time.Millisecond, 64)
	got, err := se.Eval(q.base, r, q.phases, q.opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := want.Diff(got); d != "" {
		t.Errorf("timer-path result differs: %s", d)
	}
	st := se.Snapshot()
	if st.GroupsRun != 1 || st.ScansSaved != 0 || st.Submitted != 1 {
		t.Errorf("share stats %+v: want one group of one, nothing saved", st)
	}
}

// TestSharedExecutorSoloFallbacks: everything that cannot or should not
// merge — a nil coordinator, a disabled window, an unmergeable strategy —
// degrades to a plain solo run with identical results and honest
// accounting.
func TestSharedExecutorSoloFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(175))
	r := genSharedDetail(rng, 500)
	q := genSharedQuery(rng)
	q.opt = Options{}
	want, err := Eval(q.base, r, q.phases, q.opt)
	if err != nil {
		t.Fatal(err)
	}

	var nilSE *SharedExecutor
	got, err := nilSE.Eval(q.base, r, q.phases, q.opt)
	if err != nil {
		t.Fatalf("nil coordinator: %v", err)
	}
	if d := want.Diff(got); d != "" {
		t.Errorf("nil coordinator result differs: %s", d)
	}
	if st := nilSE.Snapshot(); st != (ShareStats{}) {
		t.Errorf("nil coordinator snapshot %+v, want zero", st)
	}
	if w := nilSE.Window(); w != 0 {
		t.Errorf("nil coordinator window %v, want 0", w)
	}

	off := NewSharedExecutor(0, 0) // the -share-off escape hatch
	got, err = off.Eval(q.base, r, q.phases, q.opt)
	if err != nil {
		t.Fatalf("disabled window: %v", err)
	}
	if d := want.Diff(got); d != "" {
		t.Errorf("disabled-window result differs: %s", d)
	}
	if st := off.Snapshot(); st.SoloRuns != 1 || st.Submitted != 0 || st.GroupsRun != 0 {
		t.Errorf("disabled-window stats %+v: want one solo run, no window traffic", st)
	}

	// Base-parallel bundles have per-fragment plans and cannot merge: the
	// coordinator must route them solo even with the window on.
	on := NewSharedExecutor(10*time.Millisecond, 0)
	parOpt := q.opt
	parOpt.Parallelism = 2
	got, err = on.Eval(q.base, r, q.phases, parOpt)
	if err != nil {
		t.Fatalf("unmergeable strategy: %v", err)
	}
	if d := want.Diff(got); d != "" {
		t.Errorf("unmergeable-strategy result differs: %s", d)
	}
	if st := on.Snapshot(); st.SoloRuns != 1 || st.Submitted != 0 {
		t.Errorf("unmergeable-strategy stats %+v: want a solo fallback, not a window entry", st)
	}
}

// TestSharedExecutorPanicDelivery: a group of ONE whose bundle panics
// exercises the delivery guarantee — single-bundle groups keep the solo
// contract (the panic unwinds EvalBundles), and runGroup must still
// unblock the submitter with a *PanicError instead of leaving it waiting
// on a dead group.
func TestSharedExecutorPanicDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(176))
	r := genSharedDetail(rng, 300)
	se := NewSharedExecutor(time.Hour, 1) // full at one: runs inline, timer never fires

	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = se.Run(panicBundle(t, r, Options{}))
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("submitter still blocked after its group panicked")
	}
	var pe *PanicError
	if !errors.As(runErr, &pe) {
		t.Fatalf("got %v, want *PanicError delivered to the submitter", runErr)
	}
}

// TestSharedExecutorCancelledCallerEvicted: a caller whose ctx dies after
// compile but before its group runs is evicted from the merged scan with
// its own ctx.Err(); cancellation composes per caller through the
// coordinator exactly as it does through EvalBundles directly.
func TestSharedExecutorCancelledCallerEvicted(t *testing.T) {
	rng := rand.New(rand.NewSource(177))
	r := genSharedDetail(rng, 2000)
	q := genSharedQuery(rng)
	q.opt = Options{}

	se := NewSharedExecutor(5*time.Millisecond, 64)
	ctx, cancel := context.WithCancel(context.Background())
	opt := q.opt
	opt.Ctx = ctx
	bu, err := Compile(q.base, r, q.phases, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cancel()
	if _, err := se.Run(bu); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
