package core

import (
	"sync"
	"sync/atomic"
	"time"

	"mdjoin/internal/table"
)

// SharedExecutor: the cross-query shared-scan coordinator.
//
// Concurrent queries frequently target the same detail relation; each one
// alone is a generalized MD-join sharing a single scan across its phases
// (Section 4.3), and the merged driver (merged.go) extends that sharing
// across queries. The coordinator supplies the missing piece: *when* to
// merge. Submitted bundles are grouped by detail-table identity — the
// catalog hands every query the same *table.Table for a named relation,
// so pointer identity is the detail-relation fingerprint — and each
// group's first arrival opens a short collection window. When the window
// closes (or the group hits MaxBatch), the whole group runs as one merged
// scan and results scatter back to the blocked submitters.
//
// Fairness versus admission control: the window only delays a query by at
// most Window, and a merged group occupies the workers of a single scan
// rather than one scan per query — so under concurrency the coordinator
// *reduces* pressure on the admission slots it runs under. Cancellation
// composes per caller: a submitter whose ctx dies during the window or the
// scan is evicted from its group's bundle list or merged scan without
// disturbing the others; a panic out of one bundle's phases surfaces as
// *PanicError to that submitter alone.
type SharedExecutor struct {
	window   time.Duration
	maxBatch int

	mu     sync.Mutex
	groups map[*table.Table]*shareGroup

	// Monotonic counters, exported via Snapshot for /stats and the
	// shared-scan bench guard.
	submitted     atomic.Int64 // bundles routed through the coordinator
	soloRuns      atomic.Int64 // bundles that bypassed it (unmergeable or window off)
	groupsRun     atomic.Int64 // merged scans started (any size)
	mergedBundles atomic.Int64 // bundles served by those scans
	scansSaved    atomic.Int64 // detail scans avoided: Σ (group size − 1)
}

// shareGroup is one detail relation's open collection window.
type shareGroup struct {
	detail  *table.Table
	entries []shareEntry
	timer   *time.Timer
	closed  bool
}

// shareEntry pairs a collected bundle with its submitter's result channel.
type shareEntry struct {
	bu  *Bundle
	res chan BundleResult
}

// defaultMaxBatch bounds how many bundles one merged scan serves. Each
// bundle adds its own index probes and arena feeds to every batch, so an
// unbounded group would trade scan count for a batch loop that no longer
// fits in cache; past a dozen-odd queries a second scan is the better deal.
const defaultMaxBatch = 16

// NewSharedExecutor returns a coordinator collecting bundles for the given
// window. window <= 0 disables batching: every submission runs solo (the
// -share-off escape hatch reuses this). maxBatch <= 0 selects the default.
func NewSharedExecutor(window time.Duration, maxBatch int) *SharedExecutor {
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	return &SharedExecutor{
		window:   window,
		maxBatch: maxBatch,
		groups:   map[*table.Table]*shareGroup{},
	}
}

// Eval compiles one generalized MD-join and executes it through the
// coordinator — the shared-scan counterpart of core.Eval. Compilation
// (θ analysis, index build, pushdown split) happens on the caller's
// goroutine before the window, so only the scan itself is shared.
func (se *SharedExecutor) Eval(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	bu, err := Compile(b, r, phases, opt)
	if err != nil {
		return nil, err
	}
	return se.Run(bu)
}

// Run submits a compiled bundle. Mergeable bundles wait out the collection
// window (joining an already-open group costs only the window's remainder)
// and run merged; everything else — source bundles, partitioned or
// base-parallel strategies, or a nil/disabled coordinator — runs solo with
// identical results and Stats.
func (se *SharedExecutor) Run(bu *Bundle) (*table.Table, error) {
	if se == nil || se.window <= 0 || !bu.Mergeable() {
		if se != nil {
			se.soloRuns.Add(1)
		}
		return bu.Run()
	}
	se.submitted.Add(1)
	e := shareEntry{bu: bu, res: make(chan BundleResult, 1)}

	se.mu.Lock()
	g := se.groups[bu.detail]
	if g == nil {
		g = &shareGroup{detail: bu.detail}
		se.groups[bu.detail] = g
		// The first arrival arms the window; the timer goroutine runs the
		// group when it fires (unless MaxBatch closed it first).
		g.timer = time.AfterFunc(se.window, func() { se.closeAndRun(g) })
	}
	g.entries = append(g.entries, e)
	full := len(g.entries) >= se.maxBatch
	if full {
		se.detachLocked(g)
	}
	se.mu.Unlock()

	if full {
		g.timer.Stop()
		se.runGroup(g)
	}
	r := <-e.res
	return r.Table, r.Err
}

// closeAndRun is the timer path: claim the group if MaxBatch has not
// already, then run it.
func (se *SharedExecutor) closeAndRun(g *shareGroup) {
	se.mu.Lock()
	claimed := !g.closed
	if claimed {
		se.detachLocked(g)
	}
	se.mu.Unlock()
	if claimed {
		se.runGroup(g)
	}
}

// detachLocked closes the group and removes it from the open-groups map so
// later arrivals open a fresh window. Callers hold se.mu.
func (se *SharedExecutor) detachLocked(g *shareGroup) {
	g.closed = true
	if se.groups[g.detail] == g {
		delete(se.groups, g.detail)
	}
}

// runGroup executes a closed group as one merged scan and delivers each
// submitter's result. The delivery guarantee is absolute: even if the
// merged driver itself fails (a panic a single-bundle group propagates,
// or one escaping the per-bundle isolation), every submitter is unblocked
// with a *PanicError rather than left waiting on a dead group.
func (se *SharedExecutor) runGroup(g *shareGroup) {
	delivered := 0
	defer func() {
		if p := recover(); p != nil {
			err := &PanicError{Val: p}
			for _, e := range g.entries[delivered:] {
				e.res <- BundleResult{Err: err}
			}
		}
	}()
	se.groupsRun.Add(1)
	se.mergedBundles.Add(int64(len(g.entries)))
	se.scansSaved.Add(int64(len(g.entries) - 1))
	bundles := make([]*Bundle, len(g.entries))
	for i, e := range g.entries {
		bundles[i] = e.bu
	}
	results := EvalBundles(bundles)
	for i, e := range g.entries {
		e.res <- results[i]
		delivered++
	}
}

// ShareStats is a point-in-time snapshot of the coordinator's counters.
type ShareStats struct {
	Submitted     int64 `json:"submitted"`      // bundles that entered a window
	SoloRuns      int64 `json:"solo_runs"`      // bundles that bypassed the coordinator
	GroupsRun     int64 `json:"groups_run"`     // merged scans started
	MergedBundles int64 `json:"merged_bundles"` // bundles served by merged scans
	ScansSaved    int64 `json:"scans_saved"`    // detail scans avoided by merging
}

// Snapshot reads the counters. Safe for concurrent use.
func (se *SharedExecutor) Snapshot() ShareStats {
	if se == nil {
		return ShareStats{}
	}
	return ShareStats{
		Submitted:     se.submitted.Load(),
		SoloRuns:      se.soloRuns.Load(),
		GroupsRun:     se.groupsRun.Load(),
		MergedBundles: se.mergedBundles.Load(),
		ScansSaved:    se.scansSaved.Load(),
	}
}

// Window reports the configured collection window (0 when batching is off).
func (se *SharedExecutor) Window() time.Duration {
	if se == nil {
		return 0
	}
	return se.window
}
