package core

import (
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// refMDJoin is the verbatim Definition 3.1 semantics: for each b ∈ B,
// compute RNG(b, R, θ) by testing θ against every detail tuple, then apply
// each aggregate to the multiset. Every executor strategy must agree with
// it; the property tests in equivalence_test.go compare against it on
// random inputs.
func refMDJoin(t *testing.T, b, r *table.Table, specs []agg.Spec, theta expr.Expr, opt Options) *table.Table {
	t.Helper()
	bind := expr.NewBinding()
	bquals := []string{"b", "base"}
	if opt.BAlias != "" {
		bquals = append(bquals, opt.BAlias)
	}
	rquals := []string{"r", "detail"}
	if opt.RAlias != "" {
		rquals = append(rquals, opt.RAlias)
	}
	bind.AddRel(b.Schema, bquals...)
	bind.AddRel(r.Schema, rquals...)

	var pred *expr.Compiled
	if theta != nil {
		pred = expr.MustCompile(theta, bind)
	}
	compiled, err := agg.CompileSpecs(specs, bind)
	if err != nil {
		t.Fatalf("compiling specs: %v", err)
	}

	schema := b.Schema
	for _, s := range specs {
		schema = schema.Append(table.Field{Name: s.OutName()})
	}
	out := table.New(schema)
	frame := make([]table.Row, 2)
	for _, br := range b.Rows {
		states := make([]agg.State, len(compiled))
		for i, c := range compiled {
			states[i] = c.NewState()
		}
		for _, rr := range r.Rows {
			frame[0], frame[1] = br, rr
			if pred != nil && !pred.Truth(frame) {
				continue
			}
			for i, c := range compiled {
				c.Feed(states[i], frame)
			}
		}
		row := append(br.Clone(), make(table.Row, 0)...)
		for _, st := range states {
			row = append(row, st.Result())
		}
		out.Append(row)
	}
	return out
}

// salesFixture builds the small Sales relation used across core tests.
func salesFixture() *table.Table {
	schema := table.SchemaOf("cust", "prod", "month", "state", "sale")
	rows := []table.Row{
		{table.Str("alice"), table.Int(1), table.Int(1), table.Str("NY"), table.Float(10)},
		{table.Str("alice"), table.Int(1), table.Int(2), table.Str("NY"), table.Float(30)},
		{table.Str("alice"), table.Int(2), table.Int(1), table.Str("NJ"), table.Float(20)},
		{table.Str("bob"), table.Int(1), table.Int(1), table.Str("CT"), table.Float(50)},
		{table.Str("bob"), table.Int(2), table.Int(2), table.Str("NY"), table.Float(40)},
		{table.Str("carol"), table.Int(3), table.Int(3), table.Str("CA"), table.Float(70)},
	}
	return table.MustFromRows(schema, rows)
}

func custBase(t *testing.T, sales *table.Table) *table.Table {
	t.Helper()
	schema := table.SchemaOf("cust")
	seen := map[string]bool{}
	out := table.New(schema)
	for _, r := range sales.Rows {
		c := r[0].AsString()
		if !seen[c] {
			seen[c] = true
			out.Append(table.Row{r[0]})
		}
	}
	return out
}

func TestMDJoinBasicSum(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	theta := expr.Eq(expr.QC("R", "cust"), expr.QC("B", "cust"))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total")}

	got, err := MDJoin(base, sales, specs, theta)
	if err != nil {
		t.Fatalf("MDJoin: %v", err)
	}
	want := refMDJoin(t, base, sales, specs, theta, Options{})
	if d := got.Diff(want); d != "" {
		t.Fatalf("MD-join disagrees with Definition 3.1 reference: %s\ngot:\n%s\nwant:\n%s", d, got, want)
	}

	// Spot-check: alice bought 10+30+20 = 60.
	if v := got.Value(0, "total"); v.AsFloat() != 60 {
		t.Errorf("alice total = %v, want 60", v)
	}
}

func TestMDJoinOuterSemantics(t *testing.T) {
	// A base row with no matching detail must still appear, with count 0
	// and NULL sum (Definition 3.1's outer-join-like row-count guarantee).
	sales := salesFixture()
	base := table.MustFromRows(table.SchemaOf("cust"), []table.Row{
		{table.Str("alice")},
		{table.Str("nobody")},
	})
	theta := expr.Eq(expr.QC("R", "cust"), expr.C("cust"))
	specs := []agg.Spec{
		agg.NewSpec("count", nil, "n"),
		agg.NewSpec("sum", expr.QC("R", "sale"), "total"),
	}
	got, err := MDJoin(base, sales, specs, theta)
	if err != nil {
		t.Fatalf("MDJoin: %v", err)
	}
	if got.Len() != 2 {
		t.Fatalf("row count = %d, want 2 (one per base row)", got.Len())
	}
	if v := got.Value(1, "n"); v.AsInt() != 0 {
		t.Errorf("nobody count = %v, want 0", v)
	}
	if v := got.Value(1, "total"); !v.IsNull() {
		t.Errorf("nobody total = %v, want NULL", v)
	}
}

func TestMDJoinThetaWithConstantsAndResidual(t *testing.T) {
	// Example 2.2-style restricted θ: per-customer NY-only average, plus a
	// residual non-equi conjunct.
	sales := salesFixture()
	base := custBase(t, sales)
	theta := expr.And(
		expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		expr.Eq(expr.QC("R", "state"), expr.S("NY")),
		expr.Gt(expr.QC("R", "sale"), expr.F(15)),
	)
	specs := []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_ny_big")}

	for name, opt := range map[string]Options{
		"indexed":       {},
		"nested-loop":   {DisableIndex: true},
		"no-pushdown":   {DisablePushdown: true},
		"nothing":       {DisableIndex: true, DisablePushdown: true},
		"partitioned":   {MaxBaseRows: 1},
		"parallel-base": {Parallelism: 2},
		"parallel-r":    {DetailParallelism: 3},
	} {
		got, err := Eval(base, sales, []Phase{{Aggs: specs, Theta: theta}}, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := refMDJoin(t, base, sales, specs, theta, opt)
		if d := got.Diff(want); d != "" {
			t.Errorf("%s: %s\ngot:\n%s", name, d, got)
		}
	}
}

func TestGeneralizedMDJoinSingleScan(t *testing.T) {
	// Example 2.2 as one generalized MD-join: three θs, one scan.
	sales := salesFixture()
	base := custBase(t, sales)
	mk := func(state, as string) Phase {
		return Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), as)},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
				expr.Eq(expr.QC("R", "state"), expr.S(state)),
			),
		}
	}
	var stats Stats
	got, err := Eval(base, sales, []Phase{mk("NY", "avg_ny"), mk("NJ", "avg_nj"), mk("CT", "avg_ct")}, Options{Stats: &stats})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if stats.DetailScans != 1 {
		t.Errorf("detail scans = %d, want 1 (generalized MD-join shares the scan)", stats.DetailScans)
	}
	if stats.TuplesScanned != sales.Len() {
		t.Errorf("tuples scanned = %d, want %d", stats.TuplesScanned, sales.Len())
	}
	// alice: NY avg (10+30)/2=20, NJ avg 20, CT NULL.
	if v := got.Value(0, "avg_ny"); v.AsFloat() != 20 {
		t.Errorf("alice avg_ny = %v, want 20", v)
	}
	if v := got.Value(0, "avg_nj"); v.AsFloat() != 20 {
		t.Errorf("alice avg_nj = %v, want 20", v)
	}
	if v := got.Value(0, "avg_ct"); !v.IsNull() {
		t.Errorf("alice avg_ct = %v, want NULL", v)
	}
}

func TestEvalSeriesDependentPhases(t *testing.T) {
	// Example 2.3 shape: first compute per-customer avg, then count sales
	// above that avg. The second θ references the generated column, so the
	// series planner must keep two stages.
	sales := salesFixture()
	base := custBase(t, sales)
	steps := []Step{
		{
			Detail: "Sales",
			Phase: Phase{
				Aggs:  []agg.Spec{agg.NewSpec("avg", expr.QC("Sales", "sale"), "avg_sale")},
				Theta: expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
			},
		},
		{
			Detail: "Sales",
			Phase: Phase{
				Aggs: []agg.Spec{agg.NewSpec("count", nil, "n_above")},
				Theta: expr.And(
					expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
					expr.Gt(expr.QC("Sales", "sale"), expr.C("avg_sale")),
				),
			},
		},
	}
	stages := PlanSeries(base.Schema, steps)
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2 (second θ depends on avg_sale)", len(stages))
	}
	got, err := EvalSeries(base, map[string]*table.Table{"Sales": sales}, steps, Options{})
	if err != nil {
		t.Fatalf("EvalSeries: %v", err)
	}
	// alice: sales 10,30,20 avg 20 → above: {30} → 1.
	if v := got.Value(0, "n_above"); v.AsInt() != 1 {
		t.Errorf("alice n_above = %v, want 1", v)
	}
	// carol: single sale 70, avg 70 → none above.
	if v := got.Value(2, "n_above"); v.AsInt() != 0 {
		t.Errorf("carol n_above = %v, want 0", v)
	}
}

func TestPlanSeriesCombinesIndependentSteps(t *testing.T) {
	// Example 2.2's three independent MD-joins must collapse into one
	// generalized stage (Section 4.3).
	mk := func(state string) Step {
		return Step{
			Detail: "Sales",
			Phase: Phase{
				Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("Sales", "sale"), "avg_"+state)},
				Theta: expr.And(
					expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
					expr.Eq(expr.QC("Sales", "state"), expr.S(state)),
				),
			},
		}
	}
	stages := PlanSeries(table.SchemaOf("cust"), []Step{mk("NY"), mk("NJ"), mk("CT")})
	if len(stages) != 1 {
		t.Fatalf("stages = %d, want 1 (independent θs combine)", len(stages))
	}
	if len(stages[0].Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(stages[0].Phases))
	}
}

func TestPlanSeriesSeparatesDetails(t *testing.T) {
	// Example 3.3: Sales and Payments steps are independent but have
	// different details, so they form two stages at the same level.
	s1 := Step{Detail: "Sales", Phase: Phase{
		Aggs:  []agg.Spec{agg.NewSpec("sum", expr.QC("Sales", "sale"), "total_sale")},
		Theta: expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
	}}
	s2 := Step{Detail: "Payments", Phase: Phase{
		Aggs:  []agg.Spec{agg.NewSpec("sum", expr.QC("Payments", "amount"), "total_paid")},
		Theta: expr.Eq(expr.QC("Payments", "cust"), expr.C("cust")),
	}}
	stages := PlanSeries(table.SchemaOf("cust"), []Step{s1, s2})
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2 (different detail relations)", len(stages))
	}
	if !Commutable(s1, s2) {
		t.Errorf("independent steps over different details must commute (Theorem 4.3)")
	}
}

func TestSplitJoin(t *testing.T) {
	// Theorem 4.4: MD(MD(B,R,l1,θ1),R,l2,θ2) equals the equijoin of the
	// two independent MD-joins on B's columns.
	sales := salesFixture()
	base := custBase(t, sales)
	theta1 := expr.And(expr.Eq(expr.QC("R", "cust"), expr.C("cust")), expr.Eq(expr.QC("R", "state"), expr.S("NY")))
	theta2 := expr.And(expr.Eq(expr.QC("R", "cust"), expr.C("cust")), expr.Eq(expr.QC("R", "state"), expr.S("NJ")))
	l1 := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "ny_total")}
	l2 := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "nj_total")}

	seq1, err := MDJoin(base, sales, l1, theta1)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := MDJoin(seq1, sales, l2, theta2)
	if err != nil {
		t.Fatal(err)
	}

	left, err := MDJoin(base, sales, l1, theta1)
	if err != nil {
		t.Fatal(err)
	}
	right, err := MDJoin(base, sales, l2, theta2)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := SplitJoin(left, right, []string{"cust"})
	if err != nil {
		t.Fatal(err)
	}
	if d := sequential.Diff(joined); d != "" {
		t.Fatalf("Theorem 4.4 violated: %s\nsequential:\n%s\nsplit-join:\n%s", d, sequential, joined)
	}
}

func TestPushBaseRange(t *testing.T) {
	// Observation 4.1: σ(month between 1 and 3) on B pushes to R when θ
	// equates B.month with R.month.
	bSchema := table.SchemaOf("cust", "month")
	rSchema := table.SchemaOf("cust", "month", "sale")
	theta := expr.And(
		expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		expr.Eq(expr.QC("R", "month"), expr.C("month")),
	)
	bPred := expr.And(
		expr.Ge(expr.C("month"), expr.I(1)),
		expr.Le(expr.C("month"), expr.I(3)),
	)
	got, ok := PushBaseRange(bPred, theta, bSchema, rSchema, Options{})
	if !ok {
		t.Fatalf("pushdown should apply")
	}
	// The rewritten predicate must reference only R.
	bind := expr.NewBinding()
	bind.AddRel(rSchema, "r")
	if _, err := expr.Compile(got, bind); err != nil {
		t.Fatalf("rewritten predicate does not compile against R alone: %v (%s)", err, got)
	}

	// Not applicable when a referenced B column lacks an equi conjunct.
	bPred2 := expr.Gt(expr.C("cust"), expr.S("m"))
	theta2 := expr.Eq(expr.QC("R", "month"), expr.C("month"))
	if _, ok := PushBaseRange(bPred2, theta2, bSchema, rSchema, Options{}); ok {
		t.Errorf("pushdown must not apply when cust has no equi counterpart")
	}
}

func TestStatsIndexUsage(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	theta := expr.Eq(expr.QC("R", "cust"), expr.C("cust"))
	specs := []agg.Spec{agg.NewSpec("count", nil, "n")}

	var with, without Stats
	if _, err := Eval(base, sales, []Phase{{Aggs: specs, Theta: theta}}, Options{Stats: &with}); err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(base, sales, []Phase{{Aggs: specs, Theta: theta}}, Options{Stats: &without, DisableIndex: true}); err != nil {
		t.Fatal(err)
	}
	if !with.IndexUsed || without.IndexUsed {
		t.Errorf("IndexUsed flags wrong: with=%v without=%v", with.IndexUsed, without.IndexUsed)
	}
	if with.PairsTested >= without.PairsTested {
		t.Errorf("index should test fewer pairs: indexed=%d nested=%d", with.PairsTested, without.PairsTested)
	}
}
