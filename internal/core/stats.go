package core

import (
	"fmt"
	"strings"
	"time"
)

// Execution observability: the structured metrics tree every executor path
// feeds. Collection follows one contract, enforced by TestStatsOverheadGuard:
// when Options.Stats is nil the hot path pays nothing beyond a pointer
// comparison — the batched executors accumulate counters in locals and
// flush once per batch behind a nil check, the scalar reference path guards
// every increment, and time.Now is never called. When Stats is non-nil the
// cost stays amortized per batch, not per tuple.

// ExecTier identifies which executor drove a phase's detail scan.
type ExecTier int

const (
	// TierUnset means the phase has not been scanned (or stats were off).
	TierUnset ExecTier = iota
	// TierScalar is the tuple-at-a-time Algorithm 3.1 interpreter
	// (Options.DisableBatch).
	TierScalar
	// TierRowBatch is the boxed row-batch executor of batch.go
	// (Options.DisableColumnar, or a phase that failed chunk compilation).
	TierRowBatch
	// TierColumnar is the typed columnar chunk executor of chunk.go — the
	// default.
	TierColumnar
)

func (t ExecTier) String() string {
	switch t {
	case TierScalar:
		return "scalar"
	case TierRowBatch:
		return "rowbatch"
	case TierColumnar:
		return "columnar"
	default:
		return "unset"
	}
}

// PhaseStats is one phase's leaf of the metrics tree.
type PhaseStats struct {
	// Tier is the executor that drove this phase's scan.
	Tier ExecTier `json:"tier"`
	// IndexUsed reports whether a base index (Section 4.5) was built for
	// this phase's equi conjuncts.
	IndexUsed bool `json:"index_used"`
	// IndexProbes counts index lookups (one per surviving tuple for plain
	// equality, 2^k per tuple for k cube-equality positions); IndexHits
	// counts the candidate base rows those probes returned, before the
	// B-only liveness filter.
	IndexProbes int `json:"index_probes"`
	IndexHits   int `json:"index_hits"`
	// PushdownIn/PushdownOut measure Theorem 4.2 selectivity: detail tuples
	// entering the phase's R-only filter and tuples surviving it. Zero when
	// the phase has no pushed conjuncts.
	PushdownIn  int `json:"pushdown_in"`
	PushdownOut int `json:"pushdown_out"`
	// TypedElems/BoxedElems count elements evaluated by the batch kernels:
	// on the columnar tier, elements whose kernel produced a typed column
	// versus a boxed fallback column (the perf cliff this tree exists to
	// expose); on the row-batch tier every kernel is boxed so all elements
	// count as boxed; the scalar interpreter uses no batch kernels and
	// leaves both zero.
	TypedElems int64 `json:"typed_elems"`
	BoxedElems int64 `json:"boxed_elems"`
	// PairsTested/PairsMatched are the phase's slice of the flat pair
	// counters.
	PairsTested  int `json:"pairs_tested"`
	PairsMatched int `json:"pairs_matched"`
	// FilterChecked/FilterSkipped split the vectorized prober's index
	// probes by how they resolved: checked probes reached the full hash
	// array, skipped probes short-circuited — the 8-bit tag fingerprint
	// proved the key absent, or dictionary translation already had (a
	// string missing from the index dictionary, a non-string key against
	// an all-string column). Both still count in IndexProbes; these are
	// tier-specific diagnostics and deliberately absent from Semantic().
	FilterChecked int `json:"filter_checked,omitempty"`
	FilterSkipped int `json:"filter_skipped,omitempty"`
}

// Stats is the execution metrics tree: flat whole-query counters plus one
// PhaseStats per phase of the generalized MD-join. Parallel evaluations
// give each worker a private Stats and fold them with Merge, so every field
// must be merge-covered (pinned by a reflection test).
type Stats struct {
	DetailScans   int  `json:"detail_scans"`   // full or filtered passes over R
	TuplesScanned int  `json:"tuples_scanned"` // detail tuples visited across all scans
	PairsTested   int  `json:"pairs_tested"`   // (b, r) candidate pairs evaluated
	PairsMatched  int  `json:"pairs_matched"`  // pairs that satisfied θ and updated aggregates
	IndexUsed     bool `json:"index_used"`     // any phase built a base index

	// Batches counts batch-executor iterations (zero on the scalar tier);
	// ChunksPrebuilt/ChunksTransposed split the columnar batches into those
	// served by a Builder-built columnar mirror and those transposed on the
	// fly — the zero-transpose ratio of the chunk path.
	Batches          int `json:"batches,omitempty"`
	ChunksPrebuilt   int `json:"chunks_prebuilt,omitempty"`
	ChunksTransposed int `json:"chunks_transposed,omitempty"`

	// PartitionPasses counts Theorem 4.1 memory-bounded passes (one per
	// base partition; zero when evaluation was single-pass).
	PartitionPasses int `json:"partition_passes,omitempty"`

	// ArenaBytes estimates the aggregate-state arenas' footprint, summed
	// across phases and parallel workers.
	ArenaBytes int64 `json:"arena_bytes,omitempty"`

	// Per-stage wall times. On parallel evaluations these sum across
	// workers (CPU-style accounting), so they can exceed wall clock.
	CompileNanos  int64 `json:"compile_nanos,omitempty"`
	ScanNanos     int64 `json:"scan_nanos,omitempty"`
	AssembleNanos int64 `json:"assemble_nanos,omitempty"`

	// Phases holds the per-phase subtree, indexed by phase ordinal.
	Phases []PhaseStats `json:"phases,omitempty"`
}

// phase returns the pi-th phase leaf, growing the tree as needed. Callers
// hold a non-nil *Stats; compilePhases pre-sizes the slice so the append
// path is cold.
func (s *Stats) phase(pi int) *PhaseStats {
	for len(s.Phases) <= pi {
		s.Phases = append(s.Phases, PhaseStats{})
	}
	return &s.Phases[pi]
}

// ensurePhases pre-sizes the per-phase subtree.
func (s *Stats) ensurePhases(n int) {
	for len(s.Phases) < n {
		s.Phases = append(s.Phases, PhaseStats{})
	}
}

// Merge folds another Stats into this one: counters add, booleans or, the
// phase subtrees merge pairwise. It is the single merge point for every
// parallel path (base-parallel, detail-parallel, source variants) and for
// distributed per-site stats, so a counter added here is merged everywhere;
// TestStatsMergeCoversAllFields asserts the coverage by reflection.
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	s.DetailScans += o.DetailScans
	s.TuplesScanned += o.TuplesScanned
	s.PairsTested += o.PairsTested
	s.PairsMatched += o.PairsMatched
	s.IndexUsed = s.IndexUsed || o.IndexUsed
	s.Batches += o.Batches
	s.ChunksPrebuilt += o.ChunksPrebuilt
	s.ChunksTransposed += o.ChunksTransposed
	s.PartitionPasses += o.PartitionPasses
	s.ArenaBytes += o.ArenaBytes
	s.CompileNanos += o.CompileNanos
	s.ScanNanos += o.ScanNanos
	s.AssembleNanos += o.AssembleNanos
	for pi := range o.Phases {
		p := s.phase(pi)
		op := &o.Phases[pi]
		if p.Tier == TierUnset {
			p.Tier = op.Tier
		}
		p.IndexUsed = p.IndexUsed || op.IndexUsed
		p.IndexProbes += op.IndexProbes
		p.IndexHits += op.IndexHits
		p.PushdownIn += op.PushdownIn
		p.PushdownOut += op.PushdownOut
		p.TypedElems += op.TypedElems
		p.BoxedElems += op.BoxedElems
		p.PairsTested += op.PairsTested
		p.PairsMatched += op.PairsMatched
		p.FilterChecked += op.FilterChecked
		p.FilterSkipped += op.FilterSkipped
	}
}

// Tier reports the executor tier that drove the scan: the phases' common
// tier, TierUnset when nothing was scanned (or a mix — multi-phase joins
// where some phases fell back report the majority tier as "mixed" via
// TierLabel, not here).
func (s *Stats) Tier() ExecTier {
	t := TierUnset
	for i := range s.Phases {
		pt := s.Phases[i].Tier
		if pt == TierUnset {
			continue
		}
		if t == TierUnset {
			t = pt
		} else if t != pt {
			return TierUnset
		}
	}
	return t
}

// TierLabel renders the scan's executor tier for display: "scalar",
// "rowbatch", "columnar", "mixed" when phases diverged, "" when unknown.
func (s *Stats) TierLabel() string {
	seen := TierUnset
	for i := range s.Phases {
		pt := s.Phases[i].Tier
		if pt == TierUnset {
			continue
		}
		if seen == TierUnset {
			seen = pt
		} else if seen != pt {
			return "mixed"
		}
	}
	if seen == TierUnset {
		return ""
	}
	return seen.String()
}

// String renders the counters in the style of an EXPLAIN ANALYZE line,
// reporting the actual executor tier alongside the access path (a zero
// Stats — nothing scanned — still renders "nested-loop").
func (s Stats) String() string {
	idx := "nested-loop"
	if s.IndexUsed {
		idx = "indexed"
	}
	exec := s.TierLabel()
	if exec != "" {
		exec += ", "
	}
	return fmt.Sprintf("scans=%d tuples=%d pairs=%d matched=%d (%s%s)",
		s.DetailScans, s.TuplesScanned, s.PairsTested, s.PairsMatched, exec, idx)
}

// Semantic renders the executor-independent projection of the tree: the
// counters that must be identical whichever tier drove the scan (tuple,
// pair, probe, and pushdown accounting — not tiers, batch/chunk counts,
// kernel element counts, or wall times, which differ by construction).
// The three-way equivalence tests compare tiers by this string.
func (s *Stats) Semantic() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scans=%d tuples=%d pairs=%d matched=%d indexed=%t",
		s.DetailScans, s.TuplesScanned, s.PairsTested, s.PairsMatched, s.IndexUsed)
	for i := range s.Phases {
		p := &s.Phases[i]
		fmt.Fprintf(&b, "; phase%d{indexed=%t probes=%d hits=%d pushin=%d pushout=%d pairs=%d matched=%d}",
			i, p.IndexUsed, p.IndexProbes, p.IndexHits, p.PushdownIn, p.PushdownOut, p.PairsTested, p.PairsMatched)
	}
	return b.String()
}

// Lines renders the full metrics tree, one line per level — the standard
// diagnostic block EXPLAIN ANALYZE and the bench harness print.
func (s *Stats) Lines() []string {
	out := []string{s.String()}
	if s.Batches > 0 || s.PartitionPasses > 0 || s.ArenaBytes > 0 {
		out = append(out, fmt.Sprintf("batches=%d chunks(prebuilt=%d transposed=%d) partitions=%d arena=%dB",
			s.Batches, s.ChunksPrebuilt, s.ChunksTransposed, s.PartitionPasses, s.ArenaBytes))
	}
	if s.CompileNanos > 0 || s.ScanNanos > 0 || s.AssembleNanos > 0 {
		out = append(out, fmt.Sprintf("times: compile=%v scan=%v assemble=%v",
			time.Duration(s.CompileNanos).Round(time.Microsecond),
			time.Duration(s.ScanNanos).Round(time.Microsecond),
			time.Duration(s.AssembleNanos).Round(time.Microsecond)))
	}
	for i := range s.Phases {
		p := &s.Phases[i]
		access := "nested-loop"
		if p.IndexUsed {
			access = fmt.Sprintf("indexed probes=%d hits=%d", p.IndexProbes, p.IndexHits)
			if p.FilterChecked > 0 || p.FilterSkipped > 0 {
				access += fmt.Sprintf(" filter(checked=%d skipped=%d)", p.FilterChecked, p.FilterSkipped)
			}
		}
		push := "pushdown=off"
		if p.PushdownIn > 0 {
			push = fmt.Sprintf("pushdown=%d→%d", p.PushdownIn, p.PushdownOut)
		}
		out = append(out, fmt.Sprintf("phase %d: tier=%s %s %s typed=%d boxed=%d pairs=%d matched=%d",
			i, p.Tier, access, push, p.TypedElems, p.BoxedElems, p.PairsTested, p.PairsMatched))
	}
	return out
}
