package core

// BudgetShare carves a per-query MemoryBudgetBytes out of a server-wide
// aggregate-state pool shared by up to slots concurrent queries — the
// admission-control arithmetic mdserve applies: every admitted query may
// partition its MD-joins down to its share (Theorem 4.1's bounded-memory
// evaluation), so the sum of in-flight budgets never exceeds the pool.
//
// The share is the pool divided evenly across the slots, floored at one
// byte so MemoryBudgetBytes stays positive (baseRowsForBudget always
// admits at least one base row per pass, so even a degenerate share
// still evaluates — it just maximizes partition passes). A non-positive
// pool means "no budget": the helper returns 0 and queries run
// unbounded.
func BudgetShare(poolBytes int64, slots int) int {
	if poolBytes <= 0 {
		return 0
	}
	if slots < 1 {
		slots = 1
	}
	share := poolBytes / int64(slots)
	if share < 1 {
		share = 1
	}
	const maxInt = int(^uint(0) >> 1)
	if share > int64(maxInt) {
		return maxInt
	}
	return int(share)
}
