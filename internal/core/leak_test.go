package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Cancellation must not leak goroutines: when a query's context is
// cancelled mid-scan, every worker and reader goroutine the parallel
// strategies spawned has to exit. These tests pin that with a
// before/after runtime.NumGoroutine bracket (settle loop, since workers
// need a moment to observe the cancellation and unwind) around a
// deterministic mid-scan cancellation: a gate aggregate blocks the scan
// inside State.Add until the test has cancelled the context, so the
// cancellation always lands while workers are mid-flight — never before
// the scan starts or after it finished.

// checkGoroutines snapshots the goroutine count and returns a closure
// that fails the test if the count has not settled back by the deadline.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	runtime.GC()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d goroutines, %d at start\n%s",
					runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// gateAgg is a test aggregate whose states block inside Add until the
// gate opens, signalling entry exactly once — the hook that lets a test
// cancel a context while the detail scan is provably in flight.
type gateAgg struct {
	name    string
	entered chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func newGateAgg(name string) *gateAgg {
	g := &gateAgg{name: name, entered: make(chan struct{}), gate: make(chan struct{})}
	agg.Register(g)
	return g
}

func (g *gateAgg) Name() string                  { return g.name }
func (g *gateAgg) NewState() agg.State           { return &gateState{g: g} }
func (g *gateAgg) Reaggregate() (agg.Func, bool) { return nil, false }

type gateState struct {
	g *gateAgg
	n int64
}

func (s *gateState) Add(table.Value) {
	s.g.once.Do(func() { close(s.g.entered) })
	<-s.g.gate
	s.n++
}
func (s *gateState) Merge(o agg.State)   { s.n += o.(*gateState).n }
func (s *gateState) Result() table.Value { return table.Int(s.n) }

// gatePhases builds a single-phase MD-join over the gate aggregate.
func gatePhases(g *gateAgg) []Phase {
	return []Phase{{
		Aggs:  []agg.Spec{agg.NewSpec(g.name, expr.QC("R", "v"), "gated")},
		Theta: expr.Eq(expr.QC("R", "k"), expr.C("k")),
	}}
}

// gateTables builds a small base (k ∈ 0..3) and detail (n rows round-robin
// over the keys) for the gate fixture.
func gateTables(n int) (*table.Table, *table.Table) {
	base := table.New(table.SchemaOf("k"))
	for k := 0; k < 4; k++ {
		base.Append(table.Row{table.Int(int64(k))})
	}
	detail := table.New(table.SchemaOf("k", "v"))
	for i := 0; i < n; i++ {
		detail.Append(table.Row{table.Int(int64(i % 4)), table.Int(int64(i))})
	}
	return base, detail
}

// runGated launches eval in a goroutine, waits for the scan to enter the
// gate, cancels the context, opens the gate, and returns eval's error.
func runGated(t *testing.T, g *gateAgg, eval func(ctx context.Context) error) error {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eval(ctx) }()
	select {
	case <-g.entered:
	case err := <-done:
		t.Fatalf("eval returned before the scan reached the gate: %v", err)
	}
	cancel()
	close(g.gate)
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("eval did not return after cancellation")
		return nil
	}
}

func TestCancelMidParallelDetailNoLeak(t *testing.T) {
	g := newGateAgg("testgate_pd")
	base, detail := gateTables(64 * 1024)
	settle := checkGoroutines(t)
	err := runGated(t, g, func(ctx context.Context) error {
		_, err := Eval(base, detail, gatePhases(g), Options{Ctx: ctx, DetailParallelism: 4})
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	settle()
}

func TestCancelMidSourceParallelDetailNoLeak(t *testing.T) {
	g := newGateAgg("testgate_spd")
	base, detail := gateTables(64 * 1024)
	settle := checkGoroutines(t)
	err := runGated(t, g, func(ctx context.Context) error {
		_, err := EvalSource(base, table.NewTableSource(detail), gatePhases(g),
			Options{Ctx: ctx, DetailParallelism: 4})
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	settle()
}

// TestCancelMidPartitionedNoLeak cancels inside the first partition pass
// of a partitioned+parallel composition (Theorem 4.1 partitioning with
// per-pass base parallelism), pinning that neither the pass's workers
// nor any later pass survive the cancellation.
func TestCancelMidPartitionedNoLeak(t *testing.T) {
	g := newGateAgg("testgate_part")
	base, detail := gateTables(64 * 1024)
	settle := checkGoroutines(t)
	err := runGated(t, g, func(ctx context.Context) error {
		_, err := Eval(base, detail, gatePhases(g),
			Options{Ctx: ctx, MaxBaseRows: 2, Parallelism: 2})
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	settle()
}

// TestCancelledContextFailsFast pins the fail-fast contract: an
// already-cancelled Options.Ctx must abort Eval/EvalSource BEFORE phase
// compilation and arena allocation. The phases deliberately contain an
// unknown aggregate — if compilation ran first, the error would be the
// compile error, not context.Canceled.
func TestCancelledContextFailsFast(t *testing.T) {
	base, detail := gateTables(8)
	phases := []Phase{{
		Aggs:  []agg.Spec{agg.NewSpec("no_such_aggregate", expr.QC("R", "v"), "x")},
		Theta: expr.Eq(expr.QC("R", "k"), expr.C("k")),
	}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	stats := &Stats{}
	if _, err := Eval(base, detail, phases, Options{Ctx: ctx, Stats: stats}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Eval: want context.Canceled before compile, got %v", err)
	}
	if stats.CompileNanos != 0 || stats.ArenaBytes != 0 {
		t.Fatalf("fail-fast ran compile/allocation: compileNanos=%d arenaBytes=%d",
			stats.CompileNanos, stats.ArenaBytes)
	}
	if _, err := EvalSource(base, table.NewTableSource(detail), phases, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalSource: want context.Canceled before compile, got %v", err)
	}
	// Sanity: with a live context the same phases do fail in compile.
	if _, err := Eval(base, detail, phases, Options{}); err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("want compile error with live ctx, got %v", err)
	}
}

func TestBudgetShare(t *testing.T) {
	for _, tc := range []struct {
		pool  int64
		slots int
		want  int
	}{
		{0, 8, 0},             // no pool → unbounded
		{-5, 8, 0},            // negative pool → unbounded
		{1 << 20, 8, 1 << 17}, // even carve
		{1 << 20, 0, 1 << 20}, // degenerate slots clamp to 1
		{7, 8, 1},             // floor at one byte
	} {
		if got := BudgetShare(tc.pool, tc.slots); got != tc.want {
			t.Errorf("BudgetShare(%d, %d) = %d, want %d", tc.pool, tc.slots, got, tc.want)
		}
	}
	// Shares of a pool never sum past the pool.
	const pool, slots = 1<<30 + 12345, 7
	if total := int64(BudgetShare(pool, slots)) * slots; total > pool {
		t.Errorf("shares sum past the pool: %d > %d", total, pool)
	}
}
