package core

import (
	"time"

	"mdjoin/internal/table"
)

// Bundle: the compile stage of the three-stage evaluation API
// (compile → merge → scatter).
//
// Compile/CompileSource validate Options, derive the Theorem 4.1
// partition bound from a byte budget, and — for strategies that share one
// set of read-only plans across all workers — compile the phases up front:
// predicate pieces, equi-key programs, the base index, the B-only liveness
// bitmap, and the output schema. The resulting Bundle is an inert value:
// nothing has scanned yet, no arena has been allocated, and the same
// machinery that runs it alone (Bundle.Run) also runs it merged with other
// bundles over one shared detail scan (EvalBundles, merged.go). Eval and
// EvalSource are thin wrappers: compile one bundle, run it.
//
// Strategies that re-compile per base fragment — Theorem 4.1 partitioning
// and base-parallel workers, whose index and liveness bitmap are functions
// of the fragment — keep plans nil and dispatch to the recursive paths in
// partition.go/source.go; such bundles are not mergeable.

// Bundle is one compiled MD-join evaluation: the base table, the detail
// relation (materialized table or streaming source), the phases with their
// shared read-only plans, and the options that selected the strategy.
type Bundle struct {
	base   *table.Table
	detail *table.Table // nil when the detail relation is a source
	src    table.Source // nil when the detail relation is a table
	phases []Phase
	opt    Options

	// schema and plans are non-nil iff the bundle's strategy shares one
	// compiled plan set across workers (see prepare).
	schema *table.Schema
	plans  []*phasePlan
}

// Compile validates the options and compiles the phases of a generalized
// MD-join over a materialized detail table into a runnable Bundle.
func Compile(b, r *table.Table, phases []Phase, opt Options) (*Bundle, error) {
	bu := &Bundle{base: b, detail: r, phases: phases, opt: opt}
	if err := bu.prepare(r.Schema); err != nil {
		return nil, err
	}
	return bu, nil
}

// CompileSource is Compile for a streaming detail source.
func CompileSource(b *table.Table, src table.Source, phases []Phase, opt Options) (*Bundle, error) {
	bu := &Bundle{base: b, src: src, phases: phases, opt: opt}
	if err := bu.prepare(src.Schema()); err != nil {
		return nil, err
	}
	return bu, nil
}

// prepare validates, resolves the memory budget, and front-loads phase
// compilation for the plan-sharing strategies.
func (bu *Bundle) prepare(rSchema *table.Schema) error {
	if len(bu.phases) == 0 {
		return errNoPhases()
	}
	if bu.opt.Parallelism > 1 && bu.opt.DetailParallelism > 1 {
		return errConflictingParallelism()
	}
	// Fail fast on an already-cancelled context: a caller whose deadline
	// has expired (a timed-out mdserve request, a distributed site whose
	// caller gave up) must not pay for plan compilation, index builds, or
	// arena allocation just to discover the cancellation on the first
	// scan poll.
	if err := ctxErr(bu.opt.Ctx); err != nil {
		return err
	}
	if bu.opt.MaxBaseRows == 0 && bu.opt.MemoryBudgetBytes > 0 {
		bu.opt.MaxBaseRows = baseRowsForBudget(bu.base, bu.phases, bu.opt.MemoryBudgetBytes)
	}
	if bu.partitioned() || bu.opt.Parallelism > 1 {
		// Plans are per base fragment on these strategies; Run recurses
		// through the partitioning paths, which compile per fragment.
		return nil
	}
	schema, err := outSchema(bu.base, bu.phases)
	if err != nil {
		return err
	}
	var mark time.Time
	if bu.opt.Stats != nil {
		mark = time.Now()
	}
	plans, err := compilePhases(bu.base, rSchema, bu.phases, bu.opt)
	if err != nil {
		return err
	}
	if bu.opt.Stats != nil {
		bu.opt.Stats.CompileNanos += time.Since(mark).Nanoseconds()
	}
	bu.schema = schema
	bu.plans = plans
	return nil
}

// partitioned reports whether Theorem 4.1 partitioning applies.
func (bu *Bundle) partitioned() bool {
	return bu.opt.MaxBaseRows > 0 && bu.opt.MaxBaseRows < bu.base.Len()
}

// Detail returns the bundle's materialized detail table (nil for source
// bundles) — the identity the shared executor groups merge candidates by.
func (bu *Bundle) Detail() *table.Table { return bu.detail }

// Mergeable reports whether the bundle can join a multi-query merged scan:
// it must hold precompiled shared plans over a materialized detail table
// and not request a strategy the merged driver does not model (recursive
// partitioning, base parallelism, or the static reference scheduler).
func (bu *Bundle) Mergeable() bool {
	return bu.plans != nil && bu.detail != nil && !bu.opt.StaticDetailSplit
}

// Run evaluates the bundle alone. Mergeable bundles go through the merged
// driver as a group of one — the single-query path is the one-bundle case
// of the shared machinery, not a parallel implementation.
func (bu *Bundle) Run() (*table.Table, error) {
	if bu.src != nil {
		switch {
		case bu.partitioned():
			return evalSourcePartitioned(bu.base, bu.src, bu.phases, bu.opt)
		case bu.opt.Parallelism > 1:
			return evalSourceParallelBase(bu.base, bu.src, bu.phases, bu.opt)
		case bu.opt.DetailParallelism > 1:
			return evalSourceParallelDetail(bu)
		default:
			return evalSourceSingle(bu)
		}
	}
	switch {
	case bu.partitioned():
		return evalPartitioned(bu.base, bu.detail, bu.phases, bu.opt)
	case bu.opt.Parallelism > 1:
		return evalParallelBase(bu.base, bu.detail, bu.phases, bu.opt)
	case bu.opt.StaticDetailSplit && bu.opt.DetailParallelism > 1:
		return evalParallelDetailStatic(bu)
	default:
		rs := EvalBundles([]*Bundle{bu})
		return rs[0].Table, rs[0].Err
	}
}

// evalSingle is the single-bundle convenience the recursive strategies
// call per base fragment: compile, then run as a one-bundle merged scan.
func evalSingle(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	// The fragment inherits the caller's options with parallelism already
	// consumed by the outer strategy; force the sequential shape so a
	// stray DetailParallelism cannot fan out again inside a worker.
	opt.Parallelism = 0
	opt.DetailParallelism = 0
	bu, err := Compile(b, r, phases, opt)
	if err != nil {
		return nil, err
	}
	rs := EvalBundles([]*Bundle{bu})
	return rs[0].Table, rs[0].Err
}
