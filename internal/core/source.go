package core

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"mdjoin/internal/table"
)

// EvalSource evaluates a generalized MD-join whose detail relation is a
// table.Source — typically a disk-resident CSV file that is re-read on
// every scan. This realizes the paper's cost model literally: Theorem
// 4.1's "m scans of R" become m passes over the file, and the generalized
// MD-join's single shared scan becomes a single read.
//
// All Options are honored. Base-partitioned strategies issue one Scan per
// partition or worker; detail parallelism pumps a single scan through a
// channel to state-merging workers. Like Eval, this is a thin wrapper over
// the bundle API: compile one bundle, run it.
func EvalSource(b *table.Table, src table.Source, phases []Phase, opt Options) (*table.Table, error) {
	bu, err := CompileSource(b, src, phases, opt)
	if err != nil {
		return nil, err
	}
	return bu.Run()
}

// scanSource streams one pass of the source through the phases. The
// vectorized executor buffers rows into batches (source iterators hand
// ownership of each row to the caller, so buffering is safe); the scalar
// path processes tuple at a time. A cancelled ctx aborts the scan between
// tuples or batches.
func scanSource(ctx context.Context, b *table.Table, src table.Source, cps []*compiledPhase, stats *Stats) error {
	recordTiers(stats, cps)
	it, err := src.Scan()
	if err != nil {
		return err
	}
	defer it.Close()
	if len(cps) > 0 && !cps[0].scalar {
		return scanIteratorBatched(ctx, b, src.Schema(), it, cps, stats)
	}
	frame := make([]table.Row, 2)
	var key []table.Value
	for i := 0; ; i++ {
		if i%cancelCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		t, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		key = processTuple(b, cps, frame, key, t, stats)
	}
}

// evalSourceOne compiles and runs one sequential source pass — the per-
// fragment call of the recursive source strategies below.
func evalSourceOne(b *table.Table, src table.Source, phases []Phase, opt Options) (*table.Table, error) {
	opt.Parallelism = 0
	opt.DetailParallelism = 0
	bu, err := CompileSource(b, src, phases, opt)
	if err != nil {
		return nil, err
	}
	return evalSourceSingle(bu)
}

// evalSourceSingle streams one pass of the source through the bundle's
// precompiled phases on the calling goroutine.
func evalSourceSingle(bu *Bundle) (*table.Table, error) {
	b, src, opt := bu.base, bu.src, bu.opt
	var mark time.Time
	if opt.Stats != nil {
		mark = time.Now()
	}
	cps := newPhaseExecs(bu.plans, b.Len())
	recordArenas(opt.Stats, cps)
	if opt.Stats != nil {
		opt.Stats.CompileNanos += time.Since(mark).Nanoseconds()
		mark = time.Now()
	}
	if err := scanSource(opt.Ctx, b, src, cps, opt.Stats); err != nil {
		return nil, err
	}
	if opt.Stats != nil {
		opt.Stats.ScanNanos += time.Since(mark).Nanoseconds()
		opt.Stats.DetailScans++
		mark = time.Now()
	}
	out := assemble(bu.schema, b, cps)
	if opt.Stats != nil {
		opt.Stats.AssembleNanos += time.Since(mark).Nanoseconds()
	}
	return out, nil
}

// evalSourcePartitioned composes with Parallelism/DetailParallelism the
// same way evalPartitioned does: each pass recurses through EvalSource with
// partitioning cleared, so the parallel strategy applies within the pass.
func evalSourcePartitioned(b *table.Table, src table.Source, phases []Phase, opt Options) (*table.Table, error) {
	m := opt.MaxBaseRows
	sub := opt
	sub.MaxBaseRows = 0
	sub.MemoryBudgetBytes = 0

	var out *table.Table
	for lo := 0; lo < b.Len(); lo += m {
		hi := lo + m
		if hi > b.Len() {
			hi = b.Len()
		}
		if opt.Stats != nil {
			opt.Stats.PartitionPasses++
		}
		part := &table.Table{Schema: b.Schema, Rows: b.Rows[lo:hi]}
		res, err := EvalSource(part, src, phases, sub)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = table.New(res.Schema)
		}
		out.Rows = append(out.Rows, res.Rows...)
	}
	if out == nil {
		schema, err := outSchema(b, phases)
		if err != nil {
			return nil, err
		}
		out = table.New(schema)
	}
	return out, nil
}

func evalSourceParallelBase(b *table.Table, src table.Source, phases []Phase, opt Options) (*table.Table, error) {
	p := opt.Parallelism
	if p > b.Len() && b.Len() > 0 {
		p = b.Len()
	}
	if p <= 1 {
		return evalSourceOne(b, src, phases, opt)
	}
	sub := opt
	sub.Parallelism = 0
	sub.Stats = nil

	bounds := splitBounds(b.Len(), p)
	results := make([]*table.Table, len(bounds))
	errs := make([]error, len(bounds))
	stats := make([]Stats, len(bounds))

	var wg sync.WaitGroup
	for wi, bd := range bounds {
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			wopt := sub
			if opt.Stats != nil {
				wopt.Stats = &stats[wi]
			}
			part := &table.Table{Schema: b.Schema, Rows: b.Rows[lo:hi]}
			results[wi], errs[wi] = evalSourceOne(part, src, phases, wopt)
		}(wi, bd[0], bd[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		for wi := range stats {
			opt.Stats.Merge(&stats[wi])
		}
	}
	out := table.New(results[0].Schema)
	for _, res := range results {
		out.Rows = append(out.Rows, res.Rows...)
	}
	return out, nil
}

// evalSourceParallelDetail pumps a single scan through a channel to p
// state-merging workers. One reader goroutine owns the iterator and
// slices the stream into batch-sized morsels; workers pull whole morsels
// (the source-side analogue of evalParallelDetail's cursor queue — the
// channel is the queue), own private phase states (merged at the end),
// and share nothing else.
func evalSourceParallelDetail(bu *Bundle) (*table.Table, error) {
	b, src, opt := bu.base, bu.src, bu.opt
	p := opt.DetailParallelism
	if p <= 1 {
		return evalSourceSingle(bu)
	}
	schema, plans := bu.schema, bu.plans
	morsels := make(chan []table.Row, 2*p)
	readErr := make(chan error, 1)
	go func() {
		defer close(morsels)
		it, err := src.Scan()
		if err != nil {
			readErr <- err
			return
		}
		defer it.Close()
		// Each morsel is a fresh slice: workers hold theirs while the
		// reader fills the next (source iterators hand over row ownership,
		// so buffering is safe).
		buf := make([]table.Row, 0, batchSize)
		for n := 0; ; n++ {
			if n%cancelCheckInterval == 0 {
				if err := ctxErr(opt.Ctx); err != nil {
					readErr <- err
					return
				}
			}
			t, err := it.Next()
			if err == io.EOF {
				if len(buf) > 0 {
					morsels <- buf
				}
				readErr <- nil
				return
			}
			if err != nil {
				readErr <- err
				return
			}
			buf = append(buf, t)
			if len(buf) == batchSize {
				morsels <- buf
				buf = make([]table.Row, 0, batchSize)
			}
		}
	}()

	// Plans were compiled once by CompileSource, before any worker starts:
	// they are read-only and shared; each worker gets private arena states
	// below.
	workers := make([][]*compiledPhase, p)
	errs := make([]error, p)
	stats := make([]Stats, p)
	var wg sync.WaitGroup
	for wi := 0; wi < p; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			var st *Stats
			if opt.Stats != nil {
				st = &stats[wi]
			}
			cps := newPhaseExecs(plans, b.Len())
			recordTiers(st, cps)
			recordArenas(st, cps)
			drainOnCancel := func() bool {
				if err := ctxErr(opt.Ctx); err != nil {
					errs[wi] = err
					for range morsels {
					}
					return true
				}
				return false
			}
			if len(cps) > 0 && !cps[0].scalar {
				// Batched: each morsel is already one batch.
				d := newBatchDriver(src.Schema(), cps)
				for m := range morsels {
					if drainOnCancel() {
						return
					}
					d.processBatch(b, cps, m, nil, st)
				}
				workers[wi] = cps
				return
			}
			frame := make([]table.Row, 2)
			var key []table.Value
			for m := range morsels {
				if drainOnCancel() {
					return
				}
				for _, t := range m {
					key = processTuple(b, cps, frame, key, t, st)
				}
			}
			workers[wi] = cps
		}(wi)
	}
	wg.Wait()
	if err := <-readErr; err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		opt.Stats.DetailScans++
		for wi := range stats {
			opt.Stats.Merge(&stats[wi])
		}
	}
	merged := workers[0]
	for _, w := range workers[1:] {
		for pi := range merged {
			merged[pi].states.Merge(w[pi].states)
		}
	}
	return assemble(schema, b, merged), nil
}

func errNoPhases() error {
	return fmt.Errorf("core: MD-join needs at least one phase")
}

func errConflictingParallelism() error {
	return fmt.Errorf("core: Parallelism and DetailParallelism are mutually exclusive")
}
