package core

import (
	"sync"

	"mdjoin/internal/table"
)

// evalPartitioned implements Theorem 4.1's in-memory evaluation: B is split
// into contiguous partitions of at most MaxBaseRows rows and R is scanned
// once per partition. MD(B,R,l,θ) = ∪ᵢ MD(Bᵢ,R,l,θ); contiguous partitions
// preserve B's row order in the concatenated result.
//
// Parallelism and DetailParallelism compose: each partition pass recurses
// through Eval with the partitioning options cleared, so the requested
// parallel strategy applies within every pass (see the Options.MaxBaseRows
// doc for the memory implications).
func evalPartitioned(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	m := opt.MaxBaseRows
	sub := opt
	sub.MaxBaseRows = 0
	sub.MemoryBudgetBytes = 0

	var out *table.Table
	for lo := 0; lo < b.Len(); lo += m {
		hi := lo + m
		if hi > b.Len() {
			hi = b.Len()
		}
		if opt.Stats != nil {
			opt.Stats.PartitionPasses++
		}
		part := &table.Table{Schema: b.Schema, Rows: b.Rows[lo:hi]}
		res, err := Eval(part, r, phases, sub)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = table.New(res.Schema)
		}
		out.Rows = append(out.Rows, res.Rows...)
	}
	if out == nil { // empty B
		schema, err := outSchema(b, phases)
		if err != nil {
			return nil, err
		}
		out = table.New(schema)
	}
	return out, nil
}

// evalParallelBase implements Theorem 4.1's intra-operator parallelism: B
// is partitioned across p workers, each evaluating its fragment with a full
// scan of R; fragments concatenate in order.
func evalParallelBase(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	p := opt.Parallelism
	if p > b.Len() && b.Len() > 0 {
		p = b.Len()
	}
	if p <= 1 {
		return evalSingle(b, r, phases, opt)
	}
	sub := opt
	sub.Parallelism = 0
	sub.Stats = nil // workers keep private stats; merged below

	bounds := splitBounds(b.Len(), p)
	results := make([]*table.Table, len(bounds))
	errs := make([]error, len(bounds))
	stats := make([]Stats, len(bounds))

	var wg sync.WaitGroup
	for wi, bd := range bounds {
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			wopt := sub
			if opt.Stats != nil {
				wopt.Stats = &stats[wi]
			}
			part := &table.Table{Schema: b.Schema, Rows: b.Rows[lo:hi]}
			results[wi], errs[wi] = evalSingle(part, r, phases, wopt)
		}(wi, bd[0], bd[1])
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		for wi := range stats {
			opt.Stats.Merge(&stats[wi])
		}
	}
	out := table.New(results[0].Schema)
	for _, res := range results {
		out.Rows = append(out.Rows, res.Rows...)
	}
	return out, nil
}

// evalParallelDetail partitions the detail relation across p workers, each
// accumulating private aggregate states over the full base table, then
// merges states — the parallelization that mergeable aggregates enable
// (the complement of Theorem 4.1, analogous to partitioned hash
// aggregation in [Gra93]).
func evalParallelDetail(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	p := opt.DetailParallelism
	if p > r.Len() && r.Len() > 0 {
		p = r.Len()
	}
	if p <= 1 {
		return evalSingle(b, r, phases, opt)
	}

	schema, err := outSchema(b, phases)
	if err != nil {
		return nil, err
	}

	// Compile once, before any goroutine starts: the plans (base index,
	// compiled θ pieces, liveness bitmap) are read-only and shared by every
	// worker, so the index is built a single time and IndexUsed is recorded
	// without a race. Only the arena-backed states are per-worker.
	plans, err := compilePhases(b, r.Schema, phases, opt)
	if err != nil {
		return nil, err
	}

	bounds := splitBounds(r.Len(), p)
	workers := make([][]*compiledPhase, len(bounds))
	errs := make([]error, len(bounds))
	stats := make([]Stats, len(bounds))

	var wg sync.WaitGroup
	for wi, bd := range bounds {
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			// Workers get private stats and states (merged below).
			var st *Stats
			if opt.Stats != nil {
				st = &stats[wi]
			}
			cps := newPhaseExecs(plans, b.Len())
			recordArenas(st, cps)
			part := &table.Table{Schema: r.Schema, Rows: r.Rows[lo:hi]}
			if err := scanDetail(opt.Ctx, b, part, cps, st); err != nil {
				errs[wi] = err
				return
			}
			workers[wi] = cps
		}(wi, bd[0], bd[1])
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		opt.Stats.DetailScans++ // one logical scan, split across workers
		for wi := range stats {
			opt.Stats.Merge(&stats[wi])
		}
	}

	// Merge worker states into worker 0, arena against arena.
	merged := workers[0]
	for _, w := range workers[1:] {
		for pi := range merged {
			merged[pi].states.Merge(w[pi].states)
		}
	}
	return assemble(schema, b, merged), nil
}

// splitBounds divides n items into p contiguous [lo, hi) ranges of nearly
// equal size; empty ranges are dropped.
func splitBounds(n, p int) [][2]int {
	if p < 1 {
		p = 1
	}
	var out [][2]int
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	if len(out) == 0 {
		out = append(out, [2]int{0, 0})
	}
	return out
}
