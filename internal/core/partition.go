package core

import (
	"sync"
	"sync/atomic"

	"mdjoin/internal/table"
)

// evalPartitioned implements Theorem 4.1's in-memory evaluation: B is split
// into contiguous partitions of at most MaxBaseRows rows and R is scanned
// once per partition. MD(B,R,l,θ) = ∪ᵢ MD(Bᵢ,R,l,θ); contiguous partitions
// preserve B's row order in the concatenated result.
//
// Parallelism and DetailParallelism compose: each partition pass recurses
// through Eval with the partitioning options cleared, so the requested
// parallel strategy applies within every pass (see the Options.MaxBaseRows
// doc for the memory implications).
func evalPartitioned(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	m := opt.MaxBaseRows
	sub := opt
	sub.MaxBaseRows = 0
	sub.MemoryBudgetBytes = 0

	var out *table.Table
	for lo := 0; lo < b.Len(); lo += m {
		hi := lo + m
		if hi > b.Len() {
			hi = b.Len()
		}
		if opt.Stats != nil {
			opt.Stats.PartitionPasses++
		}
		part := &table.Table{Schema: b.Schema, Rows: b.Rows[lo:hi]}
		res, err := Eval(part, r, phases, sub)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = table.New(res.Schema)
		}
		out.Rows = append(out.Rows, res.Rows...)
	}
	if out == nil { // empty B
		schema, err := outSchema(b, phases)
		if err != nil {
			return nil, err
		}
		out = table.New(schema)
	}
	return out, nil
}

// evalParallelBase implements Theorem 4.1's intra-operator parallelism: B
// is partitioned across p workers, each evaluating its fragment with a full
// scan of R; fragments concatenate in order.
func evalParallelBase(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	p := opt.Parallelism
	if p > b.Len() && b.Len() > 0 {
		p = b.Len()
	}
	if p <= 1 {
		return evalSingle(b, r, phases, opt)
	}
	sub := opt
	sub.Parallelism = 0
	sub.Stats = nil // workers keep private stats; merged below

	bounds := splitBounds(b.Len(), p)
	results := make([]*table.Table, len(bounds))
	errs := make([]error, len(bounds))
	stats := make([]Stats, len(bounds))

	var wg sync.WaitGroup
	for wi, bd := range bounds {
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			wopt := sub
			if opt.Stats != nil {
				wopt.Stats = &stats[wi]
			}
			part := &table.Table{Schema: b.Schema, Rows: b.Rows[lo:hi]}
			results[wi], errs[wi] = evalSingle(part, r, phases, wopt)
		}(wi, bd[0], bd[1])
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		for wi := range stats {
			opt.Stats.Merge(&stats[wi])
		}
	}
	out := table.New(results[0].Schema)
	for _, res := range results {
		out.Rows = append(out.Rows, res.Rows...)
	}
	return out, nil
}

// morselRows is the morsel size of the detail-parallel scheduler: the
// contiguous row range a worker claims per cursor bump. A few chunks
// amortizes the claim (one atomic add per morsel) while staying small
// enough that a skewed tail redistributes across the pool.
const morselRows = 4 * batchSize

// evalParallelDetail partitions the detail relation across p workers, each
// accumulating private aggregate states over the full base table, then
// merges states — the parallelization that mergeable aggregates enable
// (the complement of Theorem 4.1, analogous to partitioned hash
// aggregation in [Gra93]).
//
// Scheduling is morsel-driven: workers claim contiguous chunk-aligned
// morsels from a shared atomic cursor, so a worker whose morsels carry
// most of the surviving tuples (skewed pushdown selectivity) simply
// claims fewer of them, while the rest of the pool drains the remainder
// instead of idling. Chunk alignment keeps the parent table's prebuilt
// columnar mirror usable: workers address it by offset and never
// transpose — the static split's sub-slice tables lost that.
func evalParallelDetail(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	if opt.StaticDetailSplit {
		return evalParallelDetailStatic(b, r, phases, opt)
	}
	p := opt.DetailParallelism
	n := r.Len()
	if p > n && n > 0 {
		p = n
	}
	morsel := morselRows
	// Shrink the morsel (chunk-aligned, at least one chunk) when R is too
	// small to give every worker a full-size one: p workers on 8k rows
	// should run 8 chunk-sized morsels, not 2 of 4 chunks.
	if need := (n + p - 1) / p; p > 1 && need < morsel {
		morsel = (need + batchSize - 1) / batchSize * batchSize
		if morsel < batchSize {
			morsel = batchSize
		}
	}
	nMorsels := (n + morsel - 1) / morsel
	if p > nMorsels {
		p = nMorsels
	}
	if p <= 1 {
		// Empty R, a single morsel, or morsel ≥ r.Len(): nothing to
		// schedule — evalSingle covers every degenerate shape.
		return evalSingle(b, r, phases, opt)
	}

	schema, err := outSchema(b, phases)
	if err != nil {
		return nil, err
	}

	// Compile once, before any goroutine starts: the plans (base index,
	// compiled θ pieces, liveness bitmap) are read-only and shared by every
	// worker, so the index is built a single time and IndexUsed is recorded
	// without a race. Only the arena-backed states are per-worker.
	plans, err := compilePhases(b, r.Schema, phases, opt)
	if err != nil {
		return nil, err
	}

	// The parent table's columnar mirror is shared read-only across
	// workers, addressed by row offset. Guard the offset arithmetic: every
	// chunk but the last must hold exactly batchSize rows.
	prebuilt := r.CachedChunks(batchSize)
	for ci, ch := range prebuilt {
		lo := ci * batchSize
		want := batchSize
		if n-lo < want {
			want = n - lo
		}
		if ch.Len() != want {
			prebuilt = nil
			break
		}
	}

	var cursor atomic.Int64
	workers := make([][]*compiledPhase, p)
	errs := make([]error, p)
	stats := make([]Stats, p)
	var wg sync.WaitGroup
	for wi := 0; wi < p; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// Workers get private stats and states (merged below).
			var st *Stats
			if opt.Stats != nil {
				st = &stats[wi]
			}
			cps := newPhaseExecs(plans, b.Len())
			recordTiers(st, cps)
			recordArenas(st, cps)
			// Publish before the first claim: a worker that loses every
			// morsel race still contributes its (empty) states to the
			// merge rather than a nil entry.
			workers[wi] = cps
			if len(cps) > 0 && !cps[0].scalar {
				d := newBatchDriver(r.Schema, cps)
				for {
					lo := int(cursor.Add(int64(morsel))) - morsel
					if lo >= n {
						return
					}
					hi := lo + morsel
					if hi > n {
						hi = n
					}
					for off := lo; off < hi; off += batchSize {
						if err := ctxErr(opt.Ctx); err != nil {
							errs[wi] = err
							return
						}
						end := off + batchSize
						if end > hi {
							end = hi
						}
						var ch *table.Chunk
						if d.columnar && prebuilt != nil {
							ch = prebuilt[off/batchSize]
						}
						d.processBatch(b, cps, r.Rows[off:end], ch, st)
					}
				}
			}
			frame := make([]table.Row, 2)
			var key []table.Value
			cnt := 0
			for {
				lo := int(cursor.Add(int64(morsel))) - morsel
				if lo >= n {
					return
				}
				hi := lo + morsel
				if hi > n {
					hi = n
				}
				for _, t := range r.Rows[lo:hi] {
					if cnt%cancelCheckInterval == 0 {
						if err := ctxErr(opt.Ctx); err != nil {
							errs[wi] = err
							return
						}
					}
					cnt++
					key = processTuple(b, cps, frame, key, t, st)
				}
			}
		}(wi)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		opt.Stats.DetailScans++ // one logical scan, split across workers
		for wi := range stats {
			opt.Stats.Merge(&stats[wi])
		}
	}

	// Merge worker states into worker 0, arena against arena.
	merged := workers[0]
	for _, w := range workers[1:] {
		for pi := range merged {
			merged[pi].states.Merge(w[pi].states)
		}
	}
	return assemble(schema, b, merged), nil
}

// evalParallelDetailStatic is the pre-morsel reference scheduler
// (Options.StaticDetailSplit): R is split into p contiguous ranges up
// front, one per worker. A range whose tuples dominate the surviving work
// turns its worker into a straggler the others cannot help — exactly the
// skew the morsel queue exists to absorb; the skew bench guard diffs the
// two.
func evalParallelDetailStatic(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	p := opt.DetailParallelism
	if p > r.Len() && r.Len() > 0 {
		p = r.Len()
	}
	if p <= 1 {
		return evalSingle(b, r, phases, opt)
	}

	schema, err := outSchema(b, phases)
	if err != nil {
		return nil, err
	}

	// Compile once, before any goroutine starts (see evalParallelDetail).
	plans, err := compilePhases(b, r.Schema, phases, opt)
	if err != nil {
		return nil, err
	}

	bounds := splitBounds(r.Len(), p)
	workers := make([][]*compiledPhase, len(bounds))
	errs := make([]error, len(bounds))
	stats := make([]Stats, len(bounds))

	var wg sync.WaitGroup
	for wi, bd := range bounds {
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			// Workers get private stats and states (merged below).
			var st *Stats
			if opt.Stats != nil {
				st = &stats[wi]
			}
			cps := newPhaseExecs(plans, b.Len())
			recordArenas(st, cps)
			part := &table.Table{Schema: r.Schema, Rows: r.Rows[lo:hi]}
			if err := scanDetail(opt.Ctx, b, part, cps, st); err != nil {
				errs[wi] = err
				return
			}
			workers[wi] = cps
		}(wi, bd[0], bd[1])
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		opt.Stats.DetailScans++ // one logical scan, split across workers
		for wi := range stats {
			opt.Stats.Merge(&stats[wi])
		}
	}

	// Merge worker states into worker 0, arena against arena.
	merged := workers[0]
	for _, w := range workers[1:] {
		for pi := range merged {
			merged[pi].states.Merge(w[pi].states)
		}
	}
	return assemble(schema, b, merged), nil
}

// splitBounds divides n items into p contiguous [lo, hi) ranges of nearly
// equal size; empty ranges are dropped.
func splitBounds(n, p int) [][2]int {
	if p < 1 {
		p = 1
	}
	var out [][2]int
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	if len(out) == 0 {
		out = append(out, [2]int{0, 0})
	}
	return out
}
