package core

import (
	"sync"

	"mdjoin/internal/table"
)

// evalPartitioned implements Theorem 4.1's in-memory evaluation: B is split
// into contiguous partitions of at most MaxBaseRows rows and R is scanned
// once per partition. MD(B,R,l,θ) = ∪ᵢ MD(Bᵢ,R,l,θ); contiguous partitions
// preserve B's row order in the concatenated result.
//
// Parallelism and DetailParallelism compose: each partition pass recurses
// through Eval with the partitioning options cleared, so the requested
// parallel strategy applies within every pass (see the Options.MaxBaseRows
// doc for the memory implications).
func evalPartitioned(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	m := opt.MaxBaseRows
	sub := opt
	sub.MaxBaseRows = 0
	sub.MemoryBudgetBytes = 0

	var out *table.Table
	for lo := 0; lo < b.Len(); lo += m {
		hi := lo + m
		if hi > b.Len() {
			hi = b.Len()
		}
		if opt.Stats != nil {
			opt.Stats.PartitionPasses++
		}
		part := &table.Table{Schema: b.Schema, Rows: b.Rows[lo:hi]}
		res, err := Eval(part, r, phases, sub)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = table.New(res.Schema)
		}
		out.Rows = append(out.Rows, res.Rows...)
	}
	if out == nil { // empty B
		schema, err := outSchema(b, phases)
		if err != nil {
			return nil, err
		}
		out = table.New(schema)
	}
	return out, nil
}

// evalParallelBase implements Theorem 4.1's intra-operator parallelism: B
// is partitioned across p workers, each evaluating its fragment with a full
// scan of R; fragments concatenate in order.
func evalParallelBase(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	p := opt.Parallelism
	if p > b.Len() && b.Len() > 0 {
		p = b.Len()
	}
	if p <= 1 {
		return evalSingle(b, r, phases, opt)
	}
	sub := opt
	sub.Parallelism = 0
	sub.Stats = nil // workers keep private stats; merged below

	bounds := splitBounds(b.Len(), p)
	results := make([]*table.Table, len(bounds))
	errs := make([]error, len(bounds))
	stats := make([]Stats, len(bounds))

	var wg sync.WaitGroup
	for wi, bd := range bounds {
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			wopt := sub
			if opt.Stats != nil {
				wopt.Stats = &stats[wi]
			}
			part := &table.Table{Schema: b.Schema, Rows: b.Rows[lo:hi]}
			results[wi], errs[wi] = evalSingle(part, r, phases, wopt)
		}(wi, bd[0], bd[1])
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		for wi := range stats {
			opt.Stats.Merge(&stats[wi])
		}
	}
	out := table.New(results[0].Schema)
	for _, res := range results {
		out.Rows = append(out.Rows, res.Rows...)
	}
	return out, nil
}

// morselRows is the morsel size of the detail-parallel scheduler: the
// contiguous row range a worker claims per cursor bump. A few chunks
// amortizes the claim (one atomic add per morsel) while staying small
// enough that a skewed tail redistributes across the pool. The morsel
// queue itself lives in the merged driver (merged.go): detail parallelism
// is the one-bundle case of the merged multi-query scan.
const morselRows = 4 * batchSize

// evalParallelDetailStatic is the pre-morsel reference scheduler
// (Options.StaticDetailSplit): R is split into p contiguous ranges up
// front, one per worker. A range whose tuples dominate the surviving work
// turns its worker into a straggler the others cannot help — exactly the
// skew the morsel queue exists to absorb; the skew bench guard diffs the
// two. The bundle arrives with shared plans already compiled.
func evalParallelDetailStatic(bu *Bundle) (*table.Table, error) {
	b, r, opt := bu.base, bu.detail, bu.opt
	p := opt.DetailParallelism
	if p > r.Len() && r.Len() > 0 {
		p = r.Len()
	}
	if p <= 1 {
		// Degenerate split (|R| ≤ 1): run as a one-bundle merged scan.
		bu.opt.StaticDetailSplit = false
		bu.opt.DetailParallelism = 0
		rs := EvalBundles([]*Bundle{bu})
		return rs[0].Table, rs[0].Err
	}
	schema, plans := bu.schema, bu.plans

	bounds := splitBounds(r.Len(), p)
	workers := make([][]*compiledPhase, len(bounds))
	errs := make([]error, len(bounds))
	stats := make([]Stats, len(bounds))

	var wg sync.WaitGroup
	for wi, bd := range bounds {
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			// Workers get private stats and states (merged below).
			var st *Stats
			if opt.Stats != nil {
				st = &stats[wi]
			}
			cps := newPhaseExecs(plans, b.Len())
			recordArenas(st, cps)
			part := &table.Table{Schema: r.Schema, Rows: r.Rows[lo:hi]}
			if err := scanDetail(opt.Ctx, b, part, cps, st); err != nil {
				errs[wi] = err
				return
			}
			workers[wi] = cps
		}(wi, bd[0], bd[1])
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Stats != nil {
		opt.Stats.DetailScans++ // one logical scan, split across workers
		for wi := range stats {
			opt.Stats.Merge(&stats[wi])
		}
	}

	// Merge worker states into worker 0, arena against arena.
	merged := workers[0]
	for _, w := range workers[1:] {
		for pi := range merged {
			merged[pi].states.Merge(w[pi].states)
		}
	}
	return assemble(schema, b, merged), nil
}

// splitBounds divides n items into p contiguous [lo, hi) ranges of nearly
// equal size; empty ranges are dropped.
func splitBounds(n, p int) [][2]int {
	if p < 1 {
		p = 1
	}
	var out [][2]int
	base, rem := n/p, n%p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	if len(out) == 0 {
		out = append(out, [2]int{0, 0})
	}
	return out
}
