package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// incTiers is the executor-tier matrix every incremental differential
// runs across: the scalar interpreter, the boxed row-batch executor, and
// the columnar chunk executor.
func incTiers() map[string]Options {
	return map[string]Options{
		"scalar":   {DisableBatch: true},
		"boxed":    {DisableColumnar: true},
		"columnar": {},
	}
}

// incTheta builds a randomized θ like the batch equivalence matrix: cube
// equality over ALL-marked bases every third trial, otherwise one or two
// equi conjuncts, an optional residual, and an optional R-only pushdown.
func incTheta(rng *rand.Rand, cube bool) expr.Expr {
	var conj []expr.Expr
	if cube {
		conj = append(conj,
			expr.CubeEq(expr.QC("R", "g1"), expr.C("g1")),
			expr.CubeEq(expr.QC("R", "g2"), expr.C("g2")))
	} else {
		conj = append(conj, expr.Eq(expr.QC("R", "g1"), expr.C("g1")))
		if rng.Intn(2) == 0 {
			conj = append(conj, expr.Eq(expr.QC("R", "g2"), expr.C("g2")))
		}
		if rng.Intn(2) == 0 {
			conj = append(conj, expr.Gt(expr.QC("R", "w"), expr.Mul(expr.C("g1"), expr.I(10))))
		}
	}
	if rng.Intn(2) == 0 {
		conj = append(conj, expr.Lt(expr.QC("R", "f"), expr.I(2))) // R-only: pushdown
	}
	return expr.And(conj...)
}

// appendSchedule splits rows into a random sequence of delta batches
// (some empty, some spanning multiple executor batches).
func appendSchedule(rng *rand.Rand, rows []table.Row) [][]table.Row {
	var out [][]table.Row
	for start := 0; start < len(rows); {
		n := rng.Intn(40)
		if n > len(rows)-start {
			n = len(rows) - start
		}
		out = append(out, rows[start:start+n])
		start += n
	}
	return out
}

// TestIncrementalMatchesBatch is the differential suite's core property:
// for randomized append schedules over randomized (B, R, θ) — mixed equi
// /residual/pushdown θs, cube equality with ALL-marked bases, NULL detail
// keys — Snapshot() after every delta is byte-identical to a batch Eval
// over the detail rows accumulated so far, on all three executor tiers.
func TestIncrementalMatchesBatch(t *testing.T) {
	for tier, topt := range incTiers() {
		t.Run(tier, func(t *testing.T) {
			rng := rand.New(rand.NewSource(900))
			for trial := 0; trial < 16; trial++ {
				cube := trial%3 == 2
				b, r := genBatchRelations(rng, cube)
				phases := []Phase{{
					Aggs: []agg.Spec{
						agg.NewSpec("count", nil, "n"),
						agg.NewSpec("sum", expr.QC("R", "w"), "total"),
						agg.NewSpec("min", expr.QC("R", "w"), "lo"),
						agg.NewSpec("avg", expr.QC("R", "w"), "mean"),
						agg.NewSpec("median", expr.QC("R", "w"), "med"),
					},
					Theta: incTheta(rng, cube),
				}}
				if trial%4 == 1 {
					// Generalized MD-join: a second phase with its own θ
					// sharing the same appends.
					phases = append(phases, Phase{
						Aggs:  []agg.Spec{agg.NewSpec("max", expr.QC("R", "w"), "hi")},
						Theta: expr.Eq(expr.QC("R", "g2"), expr.C("g2")),
					})
				}
				inc, err := NewIncremental(b, r.Schema, phases, topt, IncrementalConfig{})
				if err != nil {
					t.Fatalf("trial %d: NewIncremental: %v", trial, err)
				}
				var acc []table.Row
				for si, delta := range appendSchedule(rng, r.Rows) {
					if err := inc.Append(delta); err != nil {
						t.Fatalf("trial %d step %d: Append: %v", trial, si, err)
					}
					acc = append(acc, delta...)
					got, err := inc.Snapshot()
					if err != nil {
						t.Fatalf("trial %d step %d: Snapshot: %v", trial, si, err)
					}
					accT := table.New(r.Schema)
					accT.Rows = acc
					want, err := Eval(b, accT, phases, topt)
					if err != nil {
						t.Fatalf("trial %d step %d: Eval: %v", trial, si, err)
					}
					if d := want.Diff(got); d != "" {
						t.Fatalf("trial %d step %d (%d rows in): snapshot diverges from batch eval: %s",
							trial, si, len(acc), d)
					}
				}
				if inc.Rows() != len(acc) || inc.Total() != int64(len(acc)) {
					t.Fatalf("trial %d: Rows/Total = %d/%d, want %d", trial, inc.Rows(), inc.Total(), len(acc))
				}
			}
		})
	}
}

// TestIncrementalWindowMatchesBatch checks windowed maintenance on both
// eviction strategies: direct subtraction (count/sum/avg — all
// invertible) and window-partitioned arenas (forced via
// DisableSubtraction, and naturally via min/median specs). After every
// Append/Advance, Snapshot must be byte-identical to a batch Eval over a
// shadow copy of the surviving window.
func TestIncrementalWindowMatchesBatch(t *testing.T) {
	subtractable := []agg.Spec{
		agg.NewSpec("count", nil, "n"),
		agg.NewSpec("sum", expr.QC("R", "w"), "total"),
		agg.NewSpec("avg", expr.QC("R", "w"), "mean"),
	}
	holistic := []agg.Spec{
		agg.NewSpec("count", nil, "n"),
		agg.NewSpec("min", expr.QC("R", "w"), "lo"),
		agg.NewSpec("median", expr.QC("R", "w"), "med"),
	}
	cases := map[string]struct {
		aggs []agg.Spec
		cfg  IncrementalConfig
	}{
		"subtract":         {subtractable, IncrementalConfig{WindowBuckets: 3}},
		"partition-forced": {subtractable, IncrementalConfig{WindowBuckets: 3, DisableSubtraction: true}},
		"partition":        {holistic, IncrementalConfig{WindowBuckets: 2}},
	}
	for tier, topt := range incTiers() {
		for cname, c := range cases {
			t.Run(tier+"/"+cname, func(t *testing.T) {
				rng := rand.New(rand.NewSource(901))
				for trial := 0; trial < 8; trial++ {
					cube := trial%3 == 2
					b, r := genBatchRelations(rng, cube)
					phases := []Phase{{Aggs: c.aggs, Theta: incTheta(rng, cube)}}
					inc, err := NewIncremental(b, r.Schema, phases, topt, c.cfg)
					if err != nil {
						t.Fatalf("NewIncremental: %v", err)
					}
					// Shadow window: sealed buckets plus the open one.
					var sealed [][]table.Row
					var cur []table.Row
					next := 0
					for step := 0; step < 24; step++ {
						if rng.Intn(3) == 0 {
							if err := inc.Advance(); err != nil {
								t.Fatalf("Advance: %v", err)
							}
							sealed = append(sealed, cur)
							cur = nil
							for len(sealed) > c.cfg.WindowBuckets-1 {
								sealed = sealed[1:]
							}
						} else {
							n := rng.Intn(30)
							if n > len(r.Rows)-next {
								n = len(r.Rows) - next
							}
							delta := r.Rows[next : next+n]
							next += n
							if err := inc.Append(delta); err != nil {
								t.Fatalf("Append: %v", err)
							}
							cur = append(cur, delta...)
						}
						var live []table.Row
						for _, bk := range sealed {
							live = append(live, bk...)
						}
						live = append(live, cur...)
						got, err := inc.Snapshot()
						if err != nil {
							t.Fatalf("Snapshot: %v", err)
						}
						liveT := table.New(r.Schema)
						liveT.Rows = live
						want, err := Eval(b, liveT, phases, topt)
						if err != nil {
							t.Fatalf("Eval: %v", err)
						}
						if d := want.Diff(got); d != "" {
							t.Fatalf("trial %d step %d: windowed snapshot diverges from batch over surviving window (%d live rows): %s",
								trial, step, len(live), d)
						}
						if inc.Rows() != len(live) {
							t.Fatalf("trial %d step %d: Rows() = %d, want %d", trial, step, inc.Rows(), len(live))
						}
					}
				}
			})
		}
	}
}

// TestIncrementalRollup checks Theorem 4.5 maintenance: a roll-up
// attached to the finer materialization (before and after backfill) must
// stay byte-identical to a direct coarse MD-join over the accumulated
// detail — coarse states fed only by finer deltas, never by R.
func TestIncrementalRollup(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// Finer base: the full g1 × g2 cross product, so it covers every
	// combination the detail generator can emit (the Theorem 4.5 lattice
	// premise).
	b := table.New(table.SchemaOf("g1", "g2"))
	for g1 := 0; g1 < 6; g1++ {
		for g2 := 0; g2 < 4; g2++ {
			b.Append(table.Row{table.Int(int64(g1)), table.Int(int64(g2))})
		}
	}
	rSchema := table.SchemaOf("g1", "g2", "w", "f")
	genRow := func() table.Row {
		return table.Row{
			table.Int(int64(rng.Intn(6))),
			table.Int(int64(rng.Intn(4))),
			table.Int(int64(rng.Intn(100))),
			table.Int(int64(rng.Intn(3))),
		}
	}
	finePhases := []Phase{{
		Aggs: []agg.Spec{
			agg.NewSpec("count", nil, "n"),
			agg.NewSpec("sum", expr.QC("R", "w"), "total"),
			agg.NewSpec("min", expr.QC("R", "w"), "lo"),
			agg.NewSpec("max", expr.QC("R", "w"), "hi"),
		},
		Theta: expr.And(
			expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
			expr.Eq(expr.QC("R", "g2"), expr.C("g2"))),
	}}
	coarsePhases := []Phase{{
		Aggs:  finePhases[0].Aggs,
		Theta: expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
	}}
	coarseBase, err := engine.DistinctOn(b, "g1")
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(b, rSchema, finePhases, Options{}, IncrementalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	early, err := inc.Rollup("g1") // attached before any data: pure delta flow
	if err != nil {
		t.Fatal(err)
	}
	var acc []table.Row
	appendRows := func(n int) {
		t.Helper()
		delta := make([]table.Row, n)
		for i := range delta {
			delta[i] = genRow()
		}
		if err := inc.Append(delta); err != nil {
			t.Fatal(err)
		}
		acc = append(acc, delta...)
	}
	appendRows(500)
	late, err := inc.Rollup("g1") // attached mid-stream: seeded from cumulative state
	if err != nil {
		t.Fatal(err)
	}
	appendRows(700)
	accT := table.New(rSchema)
	accT.Rows = acc
	want, err := Eval(coarseBase, accT, coarsePhases, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, ru := range map[string]*Rollup{"early": early, "late": late} {
		got, err := ru.Snapshot()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := want.Diff(got); d != "" {
			t.Fatalf("%s roll-up diverges from direct coarse MD-join: %s", name, d)
		}
	}
	// The finer materialization itself must be unperturbed by the delta
	// swapping the roll-up flow introduces.
	fine, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantFine, err := Eval(b, accT, finePhases, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := wantFine.Diff(fine); d != "" {
		t.Fatalf("finer materialization diverges with roll-ups attached: %s", d)
	}
}

// TestIncrementalRejections pins the constructor and mode guards.
func TestIncrementalRejections(t *testing.T) {
	b, r := genBatchRelations(rand.New(rand.NewSource(1)), false)
	phases := []Phase{{
		Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
		Theta: expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
	}}
	if _, err := NewIncremental(b, r.Schema, phases, Options{Parallelism: 4}, IncrementalConfig{}); err == nil {
		t.Error("parallel options must be rejected")
	}
	if _, err := NewIncremental(b, r.Schema, phases, Options{MaxBaseRows: 2}, IncrementalConfig{}); err == nil {
		t.Error("MaxBaseRows must be rejected")
	}
	if _, err := NewIncremental(b, r.Schema, phases, Options{}, IncrementalConfig{WindowBuckets: -1}); err == nil {
		t.Error("negative WindowBuckets must be rejected")
	}
	inc, err := NewIncremental(b, r.Schema, phases, Options{}, IncrementalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Advance(); err == nil {
		t.Error("Advance without a window must be rejected")
	}
	if err := inc.Append([]table.Row{{table.Int(1)}}); err == nil {
		t.Error("width-mismatched rows must be rejected")
	}
	if err := inc.Append(nil); err != nil {
		t.Errorf("empty append should be a no-op, got %v", err)
	}
	windowed, err := NewIncremental(b, r.Schema, phases, Options{}, IncrementalConfig{WindowBuckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := windowed.Rollup("g1"); err == nil {
		t.Error("roll-up on a windowed incremental must be rejected")
	}
	avgPhases := []Phase{{
		Aggs:  []agg.Spec{agg.NewSpec("avg", expr.QC("R", "w"), "mean")},
		Theta: expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
	}}
	avgInc, err := NewIncremental(b, r.Schema, avgPhases, Options{}, IncrementalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := avgInc.Rollup("g1"); err == nil {
		t.Error("roll-up over a non-distributive aggregate must be rejected")
	}
}

// countdownCtx is a context that reports cancellation after its Done
// channel has been consulted n times — a deterministic way to land a
// cancellation in the middle of a multi-batch append.
type countdownCtx struct {
	context.Context
	mu     sync.Mutex
	n      int
	closed chan struct{}
}

func newCountdownCtx(n int) *countdownCtx {
	c := &countdownCtx{Context: context.Background(), n: n, closed: make(chan struct{})}
	close(c.closed)
	return c
}

func (c *countdownCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.n < 0 {
		return c.closed
	}
	return make(chan struct{})
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < 0 {
		return context.Canceled
	}
	return nil
}

// TestIncrementalPoisonsOnMidAppendCancel: a cancellation that interrupts
// a partially-applied delta must poison the materialization — every later
// Append, Advance, and Snapshot reports the interruption instead of
// serving a state matching no prefix of the stream.
func TestIncrementalPoisonsOnMidAppendCancel(t *testing.T) {
	b, r := genBatchRelations(rand.New(rand.NewSource(2)), false)
	phases := []Phase{{
		Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
		Theta: expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
	}}
	ctx := newCountdownCtx(2) // survives Append's gate + first batch poll, dies mid-delta
	inc, err := NewIncremental(b, r.Schema, phases, Options{Ctx: ctx}, IncrementalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]table.Row, 4*batchSize)
	for i := range big {
		big[i] = r.Rows[i%len(r.Rows)]
	}
	if err := inc.Append(big); err == nil {
		t.Fatal("mid-append cancellation must surface")
	}
	if err := inc.Append(r.Rows[:1]); err == nil {
		t.Error("poisoned incremental must reject further appends")
	}
	if _, err := inc.Snapshot(); err == nil {
		t.Error("poisoned incremental must not serve snapshots")
	}
}

// TestIncrementalTorture — the race suite entry point — lives in
// incremental_torture_test.go (package core_test): it drives the fault
// injector, which itself imports core, so it cannot sit in this package.
