package core

import (
	"strings"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

func TestMemoryBudgetDerivesPartitioning(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	theta := expr.Eq(expr.QC("R", "cust"), expr.C("cust"))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total")}

	want, err := MDJoin(base, sales, specs, theta)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny budget forces one-row partitions; result must not change.
	var stats Stats
	got, err := Eval(base, sales, []Phase{{Aggs: specs, Theta: theta}},
		Options{MemoryBudgetBytes: 1, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if d := want.Diff(got); d != "" {
		t.Fatalf("budgeted evaluation differs: %s", d)
	}
	if stats.DetailScans != base.Len() {
		t.Errorf("1-byte budget should force one scan per base row: %d scans, |B|=%d",
			stats.DetailScans, base.Len())
	}

	// A generous budget keeps everything resident: a single scan.
	var stats2 Stats
	if _, err := Eval(base, sales, []Phase{{Aggs: specs, Theta: theta}},
		Options{MemoryBudgetBytes: 1 << 30, Stats: &stats2}); err != nil {
		t.Fatal(err)
	}
	if stats2.DetailScans != 1 {
		t.Errorf("large budget should keep one scan: %d", stats2.DetailScans)
	}
}

func TestExplicitMaxBaseRowsWinsOverBudget(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	theta := expr.Eq(expr.QC("R", "cust"), expr.C("cust"))
	specs := []agg.Spec{agg.NewSpec("count", nil, "n")}
	var stats Stats
	if _, err := Eval(base, sales, []Phase{{Aggs: specs, Theta: theta}},
		Options{MaxBaseRows: base.Len(), MemoryBudgetBytes: 1, Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.DetailScans != 1 {
		t.Errorf("explicit MaxBaseRows must take precedence: %d scans", stats.DetailScans)
	}
}

func TestConflictingParallelismOptions(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	_, err := Eval(base, sales, []Phase{{
		Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}}, Options{Parallelism: 2, DetailParallelism: 2})
	if err == nil {
		t.Fatal("conflicting parallelism options must error")
	}
}

func TestNoPhasesError(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	if _, err := Eval(base, sales, nil, Options{}); err == nil {
		t.Fatal("zero phases must error")
	}
}

func TestDuplicateOutputColumnError(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	theta := expr.Eq(expr.QC("R", "cust"), expr.C("cust"))
	_, err := Eval(base, sales, []Phase{
		{Aggs: []agg.Spec{agg.NewSpec("count", nil, "n")}, Theta: theta},
		{Aggs: []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "n")}, Theta: theta},
	}, Options{})
	if err == nil {
		t.Fatal("colliding output columns across phases must error")
	}
	// Collision with a base column too.
	_, err = Eval(base, sales, []Phase{
		{Aggs: []agg.Spec{agg.NewSpec("count", nil, "cust")}, Theta: theta},
	}, Options{})
	if err == nil {
		t.Fatal("collision with a base column must error")
	}
}

func TestEmptyBaseAndEmptyDetail(t *testing.T) {
	sales := salesFixture()
	emptyBase := table.New(table.SchemaOf("cust"))
	theta := expr.Eq(expr.QC("R", "cust"), expr.C("cust"))
	specs := []agg.Spec{agg.NewSpec("count", nil, "n")}

	out, err := MDJoin(emptyBase, sales, specs, theta)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty base → empty result, got %d rows", out.Len())
	}
	// Partitioned path with empty base.
	out, err = Eval(emptyBase, sales, []Phase{{Aggs: specs, Theta: theta}}, Options{MaxBaseRows: 1})
	if err != nil || out.Len() != 0 {
		t.Errorf("partitioned empty base: %d rows, %v", out.Len(), err)
	}

	base := custBase(t, sales)
	emptyDetail := table.New(sales.Schema)
	out, err = MDJoin(base, emptyDetail, specs, theta)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != base.Len() {
		t.Fatalf("empty detail must keep every base row: %d", out.Len())
	}
	for i := range out.Rows {
		if out.Value(i, "n").AsInt() != 0 {
			t.Errorf("row %d: count over empty detail = %v", i, out.Value(i, "n"))
		}
	}
}

func TestNilThetaIsCrossProduct(t *testing.T) {
	// A nil θ relates every detail tuple to every base row — the
	// grand-total per base row.
	sales := salesFixture()
	base := custBase(t, sales)
	out, err := MDJoin(base, sales, []agg.Spec{agg.NewSpec("count", nil, "n")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Rows {
		if out.Value(i, "n").AsInt() != int64(sales.Len()) {
			t.Errorf("row %d: nil θ count = %v, want %d", i, out.Value(i, "n"), sales.Len())
		}
	}
}

func TestDegenerateDetailALLValue(t *testing.T) {
	// A detail tuple whose cube-joined column holds ALL matches every base
	// value under =^; the indexed path must fall back to the full loop for
	// that tuple and agree with the nested-loop evaluation.
	base := table.MustFromRows(table.SchemaOf("g"), []table.Row{
		{table.Int(1)},
		{table.Int(2)},
		{table.All()},
	})
	detail := table.MustFromRows(table.SchemaOf("g", "w"), []table.Row{
		{table.Int(1), table.Int(10)},
		{table.All(), table.Int(5)}, // degenerate: matches every base row
	})
	theta := expr.CubeEq(expr.QC("R", "g"), expr.C("g"))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "w"), "total")}

	idx, err := MDJoin(base, detail, specs, theta)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := Eval(base, detail, []Phase{{Aggs: specs, Theta: theta}}, Options{DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := idx.Diff(loop); d != "" {
		t.Fatalf("degenerate ALL tuple: indexed vs nested disagree: %s\nindexed:\n%s\nnested:\n%s", d, idx, loop)
	}
	// Base row 1: gets 10 (exact) + 5 (ALL tuple) = 15.
	if v := idx.Value(0, "total"); v.AsInt() != 15 {
		t.Errorf("base 1 total = %v, want 15", v)
	}
	// Base ALL row: matches everything = 15.
	if v := idx.Value(2, "total"); v.AsInt() != 15 {
		t.Errorf("base ALL total = %v, want 15", v)
	}
}

func TestDuplicateBaseRows(t *testing.T) {
	// Definition 3.1 does not require B's rows distinct: duplicates each
	// get their own output row with identical aggregates.
	base := table.MustFromRows(table.SchemaOf("g"), []table.Row{
		{table.Int(1)},
		{table.Int(1)},
	})
	detail := table.MustFromRows(table.SchemaOf("g", "w"), []table.Row{
		{table.Int(1), table.Int(7)},
	})
	out, err := MDJoin(base, detail,
		[]agg.Spec{agg.NewSpec("sum", expr.QC("R", "w"), "total")},
		expr.Eq(expr.QC("R", "g"), expr.C("g")))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (duplicates preserved)", out.Len())
	}
	for i := range out.Rows {
		if v := out.Value(i, "total"); v.AsInt() != 7 {
			t.Errorf("row %d total = %v, want 7", i, v)
		}
	}
	// But SplitJoin must reject duplicate bases (Theorem 4.4 precondition).
	out2, err := MDJoin(base, detail,
		[]agg.Spec{agg.NewSpec("count", nil, "n")},
		expr.Eq(expr.QC("R", "g"), expr.C("g")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SplitJoin(out, out2, []string{"g"}); err == nil {
		t.Error("SplitJoin must reject non-distinct base rows")
	}
	// And colliding aggregate columns error rather than panic.
	if _, err := SplitJoin(out, out, []string{"g"}); err == nil {
		t.Error("SplitJoin must reject colliding aggregate columns")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{DetailScans: 2, TuplesScanned: 10, PairsTested: 5, PairsMatched: 3, IndexUsed: true}
	got := s.String()
	for _, want := range []string{"scans=2", "tuples=10", "pairs=5", "matched=3", "indexed"} {
		if !strings.Contains(got, want) {
			t.Errorf("Stats.String() = %q, missing %q", got, want)
		}
	}
	if !strings.Contains(Stats{}.String(), "nested-loop") {
		t.Error("zero stats should render nested-loop")
	}
}

func TestEvalSeriesUnknownDetail(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	_, err := EvalSeries(base, map[string]*table.Table{"Sales": sales}, []Step{{
		Detail: "Nowhere",
		Phase: Phase{
			Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
			Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		},
	}}, Options{})
	if err == nil {
		t.Fatal("unknown detail relation must error")
	}
}

func TestEvalSeriesCaseInsensitiveDetail(t *testing.T) {
	sales := salesFixture()
	base := custBase(t, sales)
	out, err := EvalSeries(base, map[string]*table.Table{"SALES": sales}, []Step{{
		Detail: "sales",
		Phase: Phase{
			Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
			Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		},
	}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != base.Len() {
		t.Errorf("rows = %d", out.Len())
	}
}
