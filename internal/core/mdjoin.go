// Package core implements the MD-join operator of Chatziantoniou & Johnson
// (ICDE 2001) and its execution strategies.
//
// The MD-join MD(B, R, l, θ) produces one output row per row b of the
// base-values relation B, carrying b's attributes plus one column per
// aggregate f(c) ∈ l evaluated over RNG(b, R, θ) = {r ∈ R | θ(b, r)}
// (Definition 3.1). Its row count equals |B| — an outer-join-like
// semantics: base rows with empty ranges still appear, with count 0 and
// NULL for the other aggregates.
//
// The executor realizes Algorithm 3.1 — scan the detail relation once and
// fold each tuple into the aggregate states of its relative set Rel(t) ⊆ B
// — augmented with the paper's Section 4 optimizations:
//
//   - Section 4.5 indexing: equi conjuncts of θ ("B.col = expr(R)") build a
//     hash index on B so Rel(t) is found by probing instead of a nested
//     loop.
//   - Theorem 4.2 pushdown: conjuncts referencing only R pre-filter the
//     detail scan.
//   - Generalized MD-join (Section 4.3): a vector of (l, θ) phases shares a
//     single detail scan.
//   - Theorem 4.1: partitioned evaluation bounds resident base rows
//     (m scans of R), and both base- and detail-partitioned parallelism.
//
// Three interchangeable inner loops drive the detail scan. The default is
// the columnar chunk executor (chunk.go): R is processed in fixed-size
// batches viewed as table.Chunk columns — typed arrays plus NULL/ALL
// bitmaps, either prebuilt by table.Builder or transposed on the fly — and
// per-phase R-only conjuncts, index-key expressions, and aggregate
// arguments all run through typed kernels before a fused probe-and-feed
// loop updates arena-backed aggregate states through a flat
// open-addressing index. Options.DisableColumnar keeps the same batch
// structure but row-major: boxed table.Value vectors per batch (batch.go),
// the PR 2 executor. The tuple-at-a-time interpreter below is kept
// verbatim as the Algorithm 3.1 reference, selectable via
// Options.DisableBatch, so equivalence tests and benches can diff all
// three.
package core

import (
	"context"
	"fmt"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Phase is one (aggregate-list, θ) pair of a generalized MD-join. The
// plain MD-join of Definition 3.1 is a single phase.
type Phase struct {
	Aggs  []agg.Spec
	Theta expr.Expr
}

// Options tune the execution strategy. The zero value gives the fully
// optimized single-pass evaluation (vectorized batches, index on, pushdown
// on, sequential).
type Options struct {
	// BAlias and RAlias add extra qualifiers under which θ may reference
	// the base and detail relations (besides the defaults "B" and "R") —
	// typically the real table name, e.g. "Sales", so θ can be written
	// exactly as in the paper: Sales.cust = cust.
	BAlias string
	RAlias string

	// DisableIndex forces the verbatim nested-loop Algorithm 3.1 even when
	// θ has equi conjuncts; used by benches to measure the Section 4.5
	// indexing payoff.
	DisableIndex bool

	// DisablePushdown keeps R-only conjuncts in the per-pair check instead
	// of pre-filtering the scan (Theorem 4.2 off).
	DisablePushdown bool

	// DisableBatch forces the tuple-at-a-time interpreter instead of the
	// vectorized batch executor: each detail tuple is dispatched through
	// every phase individually and the base index (if any) is the
	// map-backed reference implementation. Combined with DisableIndex this
	// is the verbatim Algorithm 3.1 nested loop. Equivalence tests diff
	// the batched paths against it; benches use it as the scalar baseline.
	DisableBatch bool

	// DisableColumnar keeps the row-batch executor: batches stay row-major
	// []table.Row and predicates, keys, and aggregate arguments evaluate
	// through the boxed value kernels instead of the typed columnar chunk
	// kernels. Ignored when DisableBatch already selected the scalar
	// interpreter. Equivalence tests diff all three executor paths.
	DisableColumnar bool

	// MaxBaseRows, when positive, bounds how many base rows are resident
	// at once; B is split into ceil(|B|/MaxBaseRows) contiguous partitions
	// and R is scanned once per partition (Theorem 4.1's in-memory
	// evaluation trade: m scans for bounded memory).
	//
	// Partitioning composes with Parallelism and DetailParallelism: each
	// partition pass evaluates with the requested parallel strategy.
	// Base parallelism splits the (already bounded) partition further, so
	// the MaxBaseRows residency bound still holds; detail parallelism
	// multiplies a partition's aggregate-state memory by the worker count,
	// which the MemoryBudgetBytes estimate does not model — size budgets
	// for the combined footprint when mixing the two.
	MaxBaseRows int

	// MemoryBudgetBytes, when positive and MaxBaseRows is zero, derives
	// MaxBaseRows from an estimate of the per-base-row working-set size
	// (row values, aggregate states, index entries) — the way an engine
	// would apply Theorem 4.1 given its buffer allocation. A budget
	// smaller than one row's footprint still admits one row per pass.
	MemoryBudgetBytes int

	// Parallelism, when > 1, partitions B across that many goroutines,
	// each scanning R independently (Theorem 4.1's intra-operator
	// parallelism). Mutually exclusive with DetailParallelism.
	Parallelism int

	// DetailParallelism, when > 1, partitions R across that many
	// goroutines and merges per-partition aggregate states — the
	// alternative parallelization enabled by mergeable aggregates.
	// Workers pull morsels (a few chunks of R) from a shared atomic
	// cursor, so skewed pushdown selectivity or straggling workers
	// cannot idle the rest of the pool.
	DetailParallelism int

	// StaticDetailSplit restores the pre-morsel detail parallelism: R is
	// split into p contiguous ranges up front, one per worker. Kept as
	// the reference scheduler the skew benchmarks diff the morsel queue
	// against; production callers should leave it false.
	StaticDetailSplit bool

	// Stats, when non-nil, receives the execution metrics tree (flat
	// counters plus per-phase tier/index/pushdown/kernel detail). A nil
	// Stats costs the hot path nothing beyond a pointer check — see the
	// overhead contract in stats.go.
	Stats *Stats

	// Ctx, when non-nil, is polled during detail scans (once per batch on
	// the vectorized path, every cancelCheckInterval tuples on the scalar
	// path); cancellation aborts the evaluation with ctx.Err(). This is
	// what lets a distributed site abandon work whose caller has timed out
	// instead of scanning to completion. Under a merged multi-query scan
	// the poll is per bundle: cancellation evicts this caller's phases
	// without aborting the shared scan.
	Ctx context.Context

	// Shared, when non-nil, routes mergeable evaluations through the
	// cross-query shared-scan coordinator (shared.go): bundles arriving
	// within its window that target the same detail table run as one
	// merged scan. Plan nodes (optimizer.MDJoin) honor it; calling
	// Eval/EvalSource directly bypasses it.
	Shared *SharedExecutor
}

// cancelCheckInterval bounds how many detail tuples are processed between
// Ctx polls on the scalar path: frequent enough that a cancelled scan
// stops promptly, rare enough that the check is invisible in the profile.
// The batch executor polls once per batch, which is the same cadence.
const cancelCheckInterval = 1024

// ctxErr reports the context's error if it has been cancelled; a nil
// context never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// MDJoin evaluates the plain MD-join MD(b, r, aggs, theta) with default
// options: this is the operator of Definition 3.1.
func MDJoin(b, r *table.Table, aggs []agg.Spec, theta expr.Expr) (*table.Table, error) {
	return Eval(b, r, []Phase{{Aggs: aggs, Theta: theta}}, Options{})
}

// Eval evaluates a generalized MD-join MD(b, r, (l₁..l_k), (θ₁..θ_k)): all
// phases share the detail scan(s), appending their aggregate columns to B
// in phase order. It is a thin wrapper over the three-stage bundle API:
// compile one bundle, run it (a one-bundle merged scan on the plan-sharing
// strategies — see bundle.go).
func Eval(b, r *table.Table, phases []Phase, opt Options) (*table.Table, error) {
	bu, err := Compile(b, r, phases, opt)
	if err != nil {
		return nil, err
	}
	return bu.Run()
}

// baseRowsForBudget estimates how many base rows fit in the given byte
// budget: each resident row carries its values, one aggregate state per
// spec per phase, and a hash-index entry. The estimate is deliberately
// coarse (holistic aggregate states grow with data); at least one row is
// always admitted so evaluation can proceed.
func baseRowsForBudget(b *table.Table, phases []Phase, budget int) int {
	const (
		valueBytes = 48 // table.Value struct
		stateBytes = 64 // typical small aggregate state + header
		indexBytes = 24 // bucket slot + ordinal
	)
	perRow := b.Schema.Len()*valueBytes + indexBytes
	for _, p := range phases {
		perRow += len(p.Aggs) * stateBytes
	}
	n := budget / perRow
	if n < 1 {
		n = 1
	}
	return n
}

// probeIndex is the common surface of the two base-index layouts: the flat
// open-addressing table.Index (vectorized path) and the map-backed
// table.MapIndex (scalar reference path).
type probeIndex interface {
	ProbeAppend(dst []int, key []table.Value) []int
}

// phasePlan is one phase compiled against the (B, R) schemas: the
// read-only product of analysis and compilation, safe to share across the
// workers of a parallel evaluation. All mutable per-evaluation state lives
// in compiledPhase.
type phasePlan struct {
	// pi is the phase's ordinal, addressing its PhaseStats leaf.
	pi    int
	specs []*agg.Compiled
	// analysis of θ
	analysis *expr.ThetaAnalysis
	// compiled predicate pieces
	rOnly    *expr.Compiled // conjunction of R-only conjuncts (nil if none)
	bOnly    *expr.Compiled // conjunction of B-only conjuncts
	residual *expr.Compiled // conjunction of residual conjuncts
	equiKeys []*expr.Compiled
	// cubePos lists positions in equiKeys that use cube equality (=^):
	// for those, the probe expands over {value, ALL} so base rows holding
	// the ALL marker receive every matching tuple. cubeAt is the parallel
	// per-position flag.
	cubePos []int
	cubeAt  []bool
	// index over B's equi columns (nil → nested loop). Flat when the
	// batch executor drives the scan, map-backed for the scalar reference.
	index probeIndex
	// scalar is true when Options.DisableBatch selected the
	// tuple-at-a-time interpreter.
	scalar bool
	// columnar is true when the chunk executor should drive this phase
	// (batching on, DisableColumnar off); newPhaseExecs then compiles the
	// per-worker chunkPhase from bind/rslot.
	columnar bool
	bind     *expr.Binding
	rslot    int
	// bAlive[i] == false when the B-only conjuncts exclude row i forever.
	bAlive []bool
}

// compiledPhase is a phasePlan plus the mutable execution state one worker
// owns: arena-backed aggregate states and reusable scratch vectors.
type compiledPhase struct {
	*phasePlan
	// per-B-row aggregate states: states.At(bi, j) is row bi's
	// accumulator for spec j, arena-allocated in one block per phase.
	states *agg.Arena
	// scratch buffers reused across tuples and batches (each worker owns
	// its compiledPhases, so no synchronization is needed)
	probeBuf []int
	savedBuf []table.Value
	keyBuf   []table.Value
	// batch-executor scratch: the selection vector and one column vector
	// per equi-key expression
	sel     []int32
	keyCols [][]table.Value
	// chunk holds this worker's compiled columnar programs when the phase
	// runs on the chunk executor; nil selects the boxed row-batch path.
	chunk *chunkPhase
}

// outSchema derives the generalized MD-join's output schema: B's columns
// followed by every phase's aggregate columns. Duplicate aggregate output
// names across phases are an error (surfaced by Schema.Append's panic is
// avoided — we validate here).
func outSchema(b *table.Table, phases []Phase) (*table.Schema, error) {
	schema := b.Schema
	for pi, p := range phases {
		for _, s := range p.Aggs {
			if schema.Has(s.OutName()) {
				return nil, fmt.Errorf("core: phase %d aggregate output %q collides with an existing column", pi, s.OutName())
			}
			schema = schema.Append(table.Field{Name: s.OutName()})
		}
	}
	return schema, nil
}

// compilePhases compiles every phase against the base/detail schemas and
// builds the read-only plans: predicates, key expressions, the base index,
// and the B-only liveness bitmap. The result is shared by all workers of
// a parallel evaluation; call newPhaseExecs once per worker for the
// mutable part.
func compilePhases(b *table.Table, rSchema *table.Schema, phases []Phase, opt Options) ([]*phasePlan, error) {
	if opt.Stats != nil {
		opt.Stats.ensurePhases(len(phases))
	}
	out := make([]*phasePlan, len(phases))
	for pi, p := range phases {
		bind := expr.NewBinding()
		bquals := []string{"b", "base"}
		if opt.BAlias != "" {
			bquals = append(bquals, opt.BAlias)
		}
		rquals := []string{"r", "detail"}
		if opt.RAlias != "" {
			rquals = append(rquals, opt.RAlias)
		}
		bslot := bind.AddRel(b.Schema, bquals...)
		rslot := bind.AddRel(rSchema, rquals...)

		ta, err := expr.AnalyzeTheta(p.Theta, bind, bslot, rslot)
		if err != nil {
			return nil, fmt.Errorf("core: phase %d θ analysis: %w", pi, err)
		}
		pp := &phasePlan{
			pi:       pi,
			analysis: ta,
			scalar:   opt.DisableBatch,
			columnar: !opt.DisableBatch && !opt.DisableColumnar,
			bind:     bind,
			rslot:    rslot,
		}

		pp.specs, err = agg.CompileSpecs(p.Aggs, bind)
		if err != nil {
			return nil, fmt.Errorf("core: phase %d: %w", pi, err)
		}

		compileAnd := func(es []expr.Expr) (*expr.Compiled, error) {
			if len(es) == 0 {
				return nil, nil
			}
			return expr.Compile(expr.And(es...), bind)
		}
		if !opt.DisablePushdown {
			if pp.rOnly, err = compileAnd(ta.ROnly); err != nil {
				return nil, err
			}
			residual := ta.Residual
			if opt.DisableIndex {
				// Index off: equi conjuncts degrade to residual checks.
				for _, c := range ta.Conjuncts {
					if c.Class == expr.ClassEqui || c.Class == expr.ClassCubeEqui {
						residual = append(residual, c.Expr)
					}
				}
			}
			if pp.residual, err = compileAnd(residual); err != nil {
				return nil, err
			}
		} else {
			// Pushdown off: R-only conjuncts are evaluated per pair too.
			residual := append(append([]expr.Expr{}, ta.Residual...), ta.ROnly...)
			if opt.DisableIndex {
				for _, c := range ta.Conjuncts {
					if c.Class == expr.ClassEqui || c.Class == expr.ClassCubeEqui {
						residual = append(residual, c.Expr)
					}
				}
			}
			if pp.residual, err = compileAnd(residual); err != nil {
				return nil, err
			}
		}
		if pp.bOnly, err = compileAnd(ta.BOnly); err != nil {
			return nil, err
		}

		if !opt.DisableIndex && len(ta.EquiBCols) > 0 {
			if opt.DisableBatch {
				pp.index = table.BuildMapIndex(b, ta.EquiBCols)
			} else {
				pp.index = table.BuildIndexOrdinals(b, ta.EquiBCols)
			}
			pp.equiKeys = make([]*expr.Compiled, len(ta.EquiRSides))
			for i, e := range ta.EquiRSides {
				c, err := expr.Compile(e, bind)
				if err != nil {
					return nil, err
				}
				pp.equiKeys[i] = c
				if ta.EquiIsCube[i] {
					pp.cubePos = append(pp.cubePos, i)
				}
			}
			pp.cubeAt = make([]bool, len(ta.EquiIsCube))
			copy(pp.cubeAt, ta.EquiIsCube)
			if opt.Stats != nil {
				opt.Stats.IndexUsed = true
				opt.Stats.phase(pi).IndexUsed = true
			}
		}

		// Pre-evaluate B-only conjuncts once per base row.
		pp.bAlive = make([]bool, b.Len())
		frame := make([]table.Row, 2)
		for i, br := range b.Rows {
			if pp.bOnly == nil {
				pp.bAlive[i] = true
				continue
			}
			frame[0] = br
			pp.bAlive[i] = pp.bOnly.Truth(frame)
		}
		out[pi] = pp
	}
	return out, nil
}

// newPhaseExecs attaches fresh per-worker execution state (arena-backed
// aggregate states, scratch buffers) to shared phase plans.
func newPhaseExecs(plans []*phasePlan, nBase int) []*compiledPhase {
	out := make([]*compiledPhase, len(plans))
	for i, pp := range plans {
		cp := &compiledPhase{
			phasePlan: pp,
			states:    agg.NewArena(pp.specs, nBase),
		}
		if pp.columnar {
			// nil on (unreachable) chunk-compile failure, which quietly
			// falls back to the boxed row-batch path for this phase.
			cp.chunk = newChunkPhase(pp)
		}
		out[i] = cp
	}
	return out
}

// recordArenas adds the workers' aggregate-state footprint to the tree.
func recordArenas(stats *Stats, cps []*compiledPhase) {
	if stats == nil {
		return
	}
	for _, cp := range cps {
		stats.ArenaBytes += cp.states.SizeBytes()
	}
}

// recordTiers notes which executor will drive each phase's scan: the
// scalar interpreter, the boxed row-batch path, or — when the phase's
// chunk programs compiled — the columnar chunk executor.
func recordTiers(stats *Stats, cps []*compiledPhase) {
	if stats == nil {
		return
	}
	for _, cp := range cps {
		ph := stats.phase(cp.pi)
		switch {
		case cp.scalar:
			ph.Tier = TierScalar
		case cp.chunk != nil:
			ph.Tier = TierColumnar
		default:
			ph.Tier = TierRowBatch
		}
	}
}

// scanDetail performs the detail scan over a materialized table, updating
// every phase's states. The vectorized batch executor drives the scan
// unless the phases were compiled with DisableBatch. A cancelled ctx
// aborts the scan between tuples (scalar) or batches (vectorized).
func scanDetail(ctx context.Context, b, r *table.Table, cps []*compiledPhase, stats *Stats) error {
	recordTiers(stats, cps)
	if len(cps) > 0 && !cps[0].scalar {
		return scanDetailBatched(ctx, b, r, cps, stats)
	}
	frame := make([]table.Row, 2)
	var key []table.Value
	for i, t := range r.Rows {
		if i%cancelCheckInterval == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		key = processTuple(b, cps, frame, key, t, stats)
	}
	return nil
}

// processTuple folds one detail tuple into every phase; it returns the
// (possibly grown) probe-key buffer for reuse. This is the verbatim
// tuple-at-a-time interpreter kept as the Algorithm 3.1 reference.
func processTuple(b *table.Table, cps []*compiledPhase, frame []table.Row, key []table.Value, t table.Row, stats *Stats) []table.Value {
	{
		if stats != nil {
			stats.TuplesScanned++
		}
		frame[1] = t
		for _, cp := range cps {
			// Theorem 4.2: R-only conjuncts gate the tuple before any
			// base-row work.
			if cp.rOnly != nil {
				frame[0] = nil
				ok := cp.rOnly.Truth(frame)
				if stats != nil {
					ph := stats.phase(cp.pi)
					ph.PushdownIn++
					if ok {
						ph.PushdownOut++
					}
				}
				if !ok {
					continue
				}
			}
			if cp.index != nil {
				// Section 4.5: probe the B index with the tuple's key.
				if cap(key) < len(cp.equiKeys) {
					key = make([]table.Value, len(cp.equiKeys))
				}
				key = key[:len(cp.equiKeys)]
				degenerate, dead := false, false
				for i, ke := range cp.equiKeys {
					key[i] = ke.Eval(frame)
					if key[i].IsAll() {
						// A detail-side ALL matches every base value
						// under =^; fall back to the full loop for this
						// tuple (cannot arise from ordinary detail data).
						degenerate = true
					}
					if key[i].IsNull() && !cp.cubeAt[i] {
						// Strict equality with NULL is never true: no
						// base row can match this tuple in this phase.
						dead = true
					}
				}
				if dead {
					continue
				}
				if !degenerate {
					if len(cp.cubePos) == 0 {
						// Plain equality: one probe, no key rewriting.
						cp.probeBuf = cp.index.ProbeAppend(cp.probeBuf[:0], key)
						if stats != nil {
							ph := stats.phase(cp.pi)
							ph.IndexProbes++
							ph.IndexHits += len(cp.probeBuf)
						}
						for _, bi := range cp.probeBuf {
							if !cp.bAlive[bi] {
								continue
							}
							updatePair(cp, b.Rows[bi], bi, frame, stats)
						}
						continue
					}
					probeCube(cp, b, key, frame, stats)
					continue
				}
			}
			// Verbatim Algorithm 3.1: loop over all rows of B.
			for bi, br := range b.Rows {
				if !cp.bAlive[bi] {
					continue
				}
				updatePair(cp, br, bi, frame, stats)
			}
		}
	}
	return key
}

// probeCube probes the base index once per cube-equality combination:
// each =^ key position is tried both with the tuple's value and with the
// ALL marker, so a tuple updates its 2^k cube cells in one pass — the
// paper's single-scan evaluation of a cube-structured base-values table.
func probeCube(cp *compiledPhase, b *table.Table, key []table.Value, frame []table.Row, stats *Stats) {
	k := len(cp.cubePos)
	if cap(cp.savedBuf) < k {
		cp.savedBuf = make([]table.Value, k)
	}
	saved := cp.savedBuf[:k]
	for i, p := range cp.cubePos {
		saved[i] = key[p]
	}
	for mask := 0; mask < 1<<k; mask++ {
		for i, p := range cp.cubePos {
			if mask&(1<<i) != 0 {
				key[p] = table.All()
			} else {
				key[p] = saved[i]
			}
		}
		cp.probeBuf = cp.index.ProbeAppend(cp.probeBuf[:0], key)
		if stats != nil {
			ph := stats.phase(cp.pi)
			ph.IndexProbes++
			ph.IndexHits += len(cp.probeBuf)
		}
		for _, bi := range cp.probeBuf {
			if !cp.bAlive[bi] {
				continue
			}
			updatePair(cp, b.Rows[bi], bi, frame, stats)
		}
	}
	// Restore the key buffer for the next phase.
	for i, p := range cp.cubePos {
		key[p] = saved[i]
	}
}

// updatePair checks the residual θ conjuncts for one (b, r) pair and feeds
// the aggregates on success.
func updatePair(cp *compiledPhase, brow table.Row, bi int, frame []table.Row, stats *Stats) {
	frame[0] = brow
	if stats != nil {
		stats.PairsTested++
		stats.phase(cp.pi).PairsTested++
	}
	if cp.residual != nil && !cp.residual.Truth(frame) {
		return
	}
	if stats != nil {
		stats.PairsMatched++
		stats.phase(cp.pi).PairsMatched++
	}
	row := cp.states.Row(bi)
	for j, c := range cp.specs {
		c.Feed(row[j], frame)
	}
}

// assemble emits the output table: B's rows extended with each phase's
// aggregate results. All output rows are carved out of one backing array —
// |B|·width values in a single allocation instead of one per row — sized
// exactly, so the appends below never reallocate and every row is a
// full-capacity three-index slice (an append to one row can never spill
// into the next).
func assemble(schema *table.Schema, b *table.Table, cps []*compiledPhase) *table.Table {
	out := table.New(schema)
	w := schema.Len()
	out.Rows = make([]table.Row, 0, b.Len())
	backing := make([]table.Value, 0, b.Len()*w)
	for bi, br := range b.Rows {
		start := len(backing)
		backing = append(backing, br...)
		for _, cp := range cps {
			for _, st := range cp.states.Row(bi) {
				backing = append(backing, st.Result())
			}
		}
		out.Rows = append(out.Rows, table.Row(backing[start:len(backing):len(backing)]))
	}
	return out
}
