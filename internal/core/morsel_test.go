package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Tests for the morsel-driven detail scheduler (evalParallelDetail) and
// the dict→dict probe translation it drives: the dynamic cursor queue
// must be row-identical and Semantic-identical to both the single-scan
// evaluator and the retained static splitter, across every degenerate
// shape the cursor arithmetic can meet.

// evalMorselVsRefs evaluates one phase under the morsel scheduler, the
// static splitter, and the single scan, failing on any divergence in rows
// or in the executor-independent Stats projection.
func evalMorselVsRefs(t *testing.T, label string, b, r *table.Table, specs []agg.Spec, theta expr.Expr, p int) {
	t.Helper()
	var sM, sS, s1 Stats
	morsel := mdJoin(t, b, r, specs, theta, Options{DetailParallelism: p, Stats: &sM})
	static := mdJoin(t, b, r, specs, theta, Options{DetailParallelism: p, StaticDetailSplit: true, Stats: &sS})
	single := mdJoin(t, b, r, specs, theta, Options{Stats: &s1})
	if d := single.Diff(morsel); d != "" {
		t.Fatalf("%s: morsel p=%d vs single: %s", label, p, d)
	}
	if d := single.Diff(static); d != "" {
		t.Fatalf("%s: static p=%d vs single: %s", label, p, d)
	}
	if sM.Semantic() != s1.Semantic() || sS.Semantic() != s1.Semantic() {
		t.Fatalf("%s p=%d: stats diverge:\n morsel %s\n static %s\n single %s",
			label, p, sM.Semantic(), sS.Semantic(), s1.Semantic())
	}
}

// TestMorselDegenerateShapes pins the cursor arithmetic at the shapes
// where the queue collapses: empty R, one row, exactly one morsel, one
// morsel plus a row, p far beyond the morsel count, and p beyond r.Len()
// (the clamp the static path also applies).
func TestMorselDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9100))
	specs := stdSpecs()
	theta := expr.Eq(expr.QC("R", "g1"), expr.C("g1"))
	b := table.MustFromRows(table.SchemaOf("g1"), []table.Row{
		{table.Int(0)}, {table.Int(1)}, {table.Int(2)},
	})
	mkR := func(n int) *table.Table {
		r := table.New(table.SchemaOf("g1", "w", "f"))
		for i := 0; i < n; i++ {
			r.Append(table.Row{
				table.Int(int64(rng.Intn(4))),
				table.Int(int64(rng.Intn(50))),
				table.Int(int64(rng.Intn(3))),
			})
		}
		return r
	}
	for _, n := range []int{0, 1, batchSize - 1, morselRows, morselRows + 1, 3 * morselRows} {
		r := mkR(n)
		for _, p := range []int{2, 4, 9, n + 7} {
			evalMorselVsRefs(t, fmt.Sprintf("|R|=%d", n), b, r, specs, theta, p)
		}
	}
}

// TestMorselMatchesStaticSplit runs randomized relations — including the
// dict-encoded string keys that engage the translation path — through the
// scheduler comparison at several worker counts.
func TestMorselMatchesStaticSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(9200))
	for trial := 0; trial < 10; trial++ {
		var b, r *table.Table
		if trial%2 == 0 {
			b, r = genBatchRelations(rng, false)
		} else {
			b, r = genStringRelations(rng, false)
		}
		theta := expr.And(
			expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
			expr.Le(expr.QC("R", "f"), expr.I(int64(rng.Intn(3)))))
		for _, p := range []int{2, 3, 8} {
			evalMorselVsRefs(t, fmt.Sprintf("trial %d", trial), b, r, stdSpecs(), theta, p)
		}
	}
}

// TestCancelMidStaticParallelDetailNoLeak is the StaticDetailSplit
// variant of TestCancelMidParallelDetailNoLeak (which now exercises the
// morsel path): cancelling mid-scan must error with context.Canceled and
// leave no worker goroutine behind.
func TestCancelMidStaticParallelDetailNoLeak(t *testing.T) {
	g := newGateAgg("testgate_static_pd")
	base, detail := gateTables(64 * 1024)
	settle := checkGoroutines(t)
	err := runGated(t, g, func(ctx context.Context) error {
		_, err := Eval(base, detail, gatePhases(g),
			Options{Ctx: ctx, DetailParallelism: 4, StaticDetailSplit: true})
		return err
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	settle()
}

// genDictRelations builds base/detail pairs around the dict→dict code
// translation: an all-string base key column (dict-keyed index) against a
// detail string column whose dictionary disagrees with the base's — codes
// assigned in a different order, strings the base has never seen
// (translation misses), NULLs (dead keys), and optionally cube-ALL base
// cells probed through CubeEq (which keeps the boxed probe path; the two
// must agree).
func genDictRelations(rng *rand.Rand, cube bool) (*table.Table, *table.Table) {
	pool := []string{"ak", "ca", "ny", "tx", "wa"}
	b := table.New(table.SchemaOf("g1", "g2"))
	seen := map[string]bool{}
	for b.Len() < 2+rng.Intn(7) {
		var v1 table.Value = table.Str(pool[rng.Intn(len(pool))])
		if cube && rng.Intn(3) == 0 {
			v1 = table.All()
		}
		v2 := table.Int(int64(rng.Intn(3)))
		k := fmt.Sprintf("%d:%v/%v", v1.Kind(), v1, v2)
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Append(table.Row{v1, v2})
	}
	// Detail dictionary: shuffled order plus strings absent from the base.
	dpool := append([]string{"zz", "qq"}, pool...)
	rng.Shuffle(len(dpool), func(i, j int) { dpool[i], dpool[j] = dpool[j], dpool[i] })
	r := table.New(table.SchemaOf("g1", "g2", "w", "f"))
	n := 20 + rng.Intn(3*table.ChunkSize)
	for i := 0; i < n; i++ {
		var g1 table.Value = table.Str(dpool[rng.Intn(len(dpool))])
		if rng.Intn(10) == 0 {
			g1 = table.Null()
		}
		r.Append(table.Row{
			g1,
			table.Int(int64(rng.Intn(4))),
			table.Float(float64(rng.Intn(100)) / 4),
			table.Int(int64(rng.Intn(3))),
		})
	}
	return b, r
}

// TestDictTranslationEquivalence pins the translated probe path against
// the scalar and row-batch references on mismatched dictionaries, NULL
// keys, and — with cube masks — ALL base cells.
func TestDictTranslationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9300))
	for trial := 0; trial < 12; trial++ {
		cube := trial%3 == 2
		b, r := genDictRelations(rng, cube)
		var theta expr.Expr
		if cube {
			theta = expr.And(
				expr.CubeEq(expr.QC("R", "g1"), expr.C("g1")),
				expr.CubeEq(expr.QC("R", "g2"), expr.C("g2")))
		} else {
			theta = expr.And(
				expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
				expr.Eq(expr.QC("R", "g2"), expr.C("g2")))
		}
		label := fmt.Sprintf("dict trial %d (cube=%v)", trial, cube)
		threeWay(t, label, b, r, stdSpecs(), theta, Options{})
		evalMorselVsRefs(t, label, b, r, stdSpecs(), theta, 4)
	}
}

// TestProbeFilterStats pins the fingerprint pre-filter's accounting on a
// low-hit-rate workload (most detail keys are absent from B): the
// columnar run must report the same Semantic stats as the scalar
// reference — skipped probes still count as probes with zero hits — while
// the tier-specific filter counters record that most probes resolved on
// tags alone and never exceed the probe count.
func TestProbeFilterStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9400))
	b := table.New(table.SchemaOf("g1"))
	for k := 0; k < 8; k++ {
		b.Append(table.Row{table.Int(int64(k))})
	}
	r := table.New(table.SchemaOf("g1", "w"))
	for i := 0; i < 4*table.ChunkSize; i++ {
		r.Append(table.Row{
			table.Int(int64(8 + rng.Intn(1000))), // absent from B
			table.Int(int64(i)),
		})
	}
	// A sprinkle of hits so both counters move.
	for i := 0; i < 64; i++ {
		r.Append(table.Row{table.Int(int64(i % 8)), table.Int(int64(i))})
	}
	theta := expr.Eq(expr.QC("R", "g1"), expr.C("g1"))
	specs := []agg.Spec{agg.NewSpec("count", nil, "n")}

	var columnar, scalar Stats
	mdJoin(t, b, r, specs, theta, Options{Stats: &columnar})
	mdJoin(t, b, r, specs, theta, Options{Stats: &scalar, DisableBatch: true})
	if columnar.Semantic() != scalar.Semantic() {
		t.Fatalf("stats diverge:\n columnar %s\n scalar   %s", columnar.Semantic(), scalar.Semantic())
	}
	ph := columnar.Phases[0]
	if ph.FilterSkipped == 0 {
		t.Fatal("low-hit-rate workload recorded no fingerprint skips")
	}
	if ph.FilterChecked+ph.FilterSkipped > ph.IndexProbes {
		t.Fatalf("filter counters exceed probes: checked=%d skipped=%d probes=%d",
			ph.FilterChecked, ph.FilterSkipped, ph.IndexProbes)
	}
	if ph.FilterSkipped < ph.FilterChecked {
		t.Fatalf("workload is ~99%% misses yet skipped=%d < checked=%d",
			ph.FilterSkipped, ph.FilterChecked)
	}
	for _, sc := range scalar.Phases {
		if sc.FilterChecked != 0 || sc.FilterSkipped != 0 {
			t.Fatalf("scalar tier must not report filter counters: %+v", sc)
		}
	}
}
