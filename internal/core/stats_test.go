package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// fillNonZero sets every numeric field to a nonzero value, every bool to
// true, and populates slices of structs with one filled element.
func fillNonZero(v reflect.Value) {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Slice:
		el := reflect.New(v.Type().Elem()).Elem()
		fillNonZero(el)
		v.Set(reflect.Append(reflect.MakeSlice(v.Type(), 0, 1), el))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillNonZero(v.Field(i))
		}
	default:
		panic("fillNonZero: unhandled kind " + v.Kind().String())
	}
}

// assertNonZero fails on any field Merge left at its zero value.
func assertNonZero(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if v.Int() == 0 {
			t.Errorf("Stats.Merge drops field %s", path)
		}
	case reflect.Bool:
		if !v.Bool() {
			t.Errorf("Stats.Merge drops field %s", path)
		}
	case reflect.Slice:
		if v.Len() == 0 {
			t.Errorf("Stats.Merge drops field %s", path)
			return
		}
		for i := 0; i < v.Len(); i++ {
			assertNonZero(t, v.Index(i), path+"[i]")
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			assertNonZero(t, v.Field(i), path+"."+v.Type().Field(i).Name)
		}
	default:
		t.Fatalf("assertNonZero: unhandled kind %s at %s", v.Kind(), path)
	}
}

// TestStatsMergeCoversAllFields pins the single-merge-point contract: every
// field of Stats (and of the per-phase subtree) must be covered by Merge.
// A counter added to the struct but not to Merge fails here, instead of
// being silently dropped by the parallel paths — the drift this PR fixed.
func TestStatsMergeCoversAllFields(t *testing.T) {
	var src Stats
	fillNonZero(reflect.ValueOf(&src).Elem())
	var dst Stats
	dst.Merge(&src)
	assertNonZero(t, reflect.ValueOf(dst), "Stats")

	// Merging into an already populated tree adds rather than overwrites.
	dst.Merge(&src)
	if dst.PairsTested != 2*src.PairsTested || dst.Phases[0].IndexProbes != 2*src.Phases[0].IndexProbes {
		t.Errorf("second merge did not add: %+v", dst)
	}
	// Nil merge is a no-op.
	before := dst.Semantic()
	dst.Merge(nil)
	if dst.Semantic() != before {
		t.Error("Merge(nil) changed the stats")
	}
}

func TestStatsTierLabel(t *testing.T) {
	cases := []struct {
		phases []PhaseStats
		want   string
	}{
		{nil, ""},
		{[]PhaseStats{{Tier: TierScalar}}, "scalar"},
		{[]PhaseStats{{Tier: TierRowBatch}}, "rowbatch"},
		{[]PhaseStats{{Tier: TierColumnar}, {Tier: TierColumnar}}, "columnar"},
		{[]PhaseStats{{Tier: TierColumnar}, {Tier: TierRowBatch}}, "mixed"},
		{[]PhaseStats{{Tier: TierUnset}, {Tier: TierScalar}}, "scalar"},
	}
	for i, c := range cases {
		s := Stats{Phases: c.phases}
		if got := s.TierLabel(); got != c.want {
			t.Errorf("case %d: TierLabel() = %q, want %q", i, got, c.want)
		}
	}
}

// TestStatsStringReportsTier pins the satellite fix: String must report the
// executor tier that actually ran, not just indexed/nested-loop.
func TestStatsStringReportsTier(t *testing.T) {
	b, r := statsFixture()
	theta := expr.Eq(expr.QC("R", "g"), expr.C("g"))
	specs := []agg.Spec{agg.NewSpec("count", nil, "n")}
	for _, tc := range []struct {
		opt  Options
		want string
	}{
		{Options{}, "columnar"},
		{Options{DisableColumnar: true}, "rowbatch"},
		{Options{DisableBatch: true}, "scalar"},
	} {
		var s Stats
		tc.opt.Stats = &s
		if _, err := Eval(b, r, []Phase{{Aggs: specs, Theta: theta}}, tc.opt); err != nil {
			t.Fatal(err)
		}
		if got := s.String(); !strings.Contains(got, tc.want) || !strings.Contains(got, "indexed") {
			t.Errorf("String() = %q, want tier %q and access path", got, tc.want)
		}
	}
}

func statsFixture() (*table.Table, *table.Table) {
	b := table.MustFromRows(table.SchemaOf("g"), []table.Row{
		{table.Int(0)}, {table.Int(1)}, {table.Int(2)},
	})
	r := table.New(table.SchemaOf("g", "w"))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		r.Append(table.Row{table.Int(int64(rng.Intn(4))), table.Int(int64(rng.Intn(50)))})
	}
	return b, r
}

// TestPhaseStatsCounters sanity-checks the per-phase counters on an
// indexed, pushdown-bearing query across all three tiers.
func TestPhaseStatsCounters(t *testing.T) {
	b, r := statsFixture()
	theta := expr.And(
		expr.Eq(expr.QC("R", "g"), expr.C("g")),
		expr.Le(expr.QC("R", "w"), expr.I(25)))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "w"), "total")}
	for name, opt := range map[string]Options{
		"columnar": {},
		"rowbatch": {DisableColumnar: true},
		"scalar":   {DisableBatch: true},
	} {
		var s Stats
		opt.Stats = &s
		if _, err := Eval(b, r, []Phase{{Aggs: specs, Theta: theta}}, opt); err != nil {
			t.Fatal(err)
		}
		if len(s.Phases) != 1 {
			t.Fatalf("%s: phases = %d, want 1", name, len(s.Phases))
		}
		ph := s.Phases[0]
		if !ph.IndexUsed || ph.IndexProbes == 0 {
			t.Errorf("%s: index not reported: %+v", name, ph)
		}
		if ph.PushdownIn != r.Len() || ph.PushdownOut >= ph.PushdownIn || ph.PushdownOut == 0 {
			t.Errorf("%s: pushdown selectivity off: in=%d out=%d (|R|=%d)", name, ph.PushdownIn, ph.PushdownOut, r.Len())
		}
		if ph.IndexProbes != ph.PushdownOut {
			t.Errorf("%s: probes=%d, want one per surviving tuple (%d)", name, ph.IndexProbes, ph.PushdownOut)
		}
		if ph.PairsMatched != s.PairsMatched || ph.PairsTested != s.PairsTested {
			t.Errorf("%s: phase pair counters diverge from flat: %+v vs %+v", name, ph, s)
		}
		if s.ArenaBytes <= 0 {
			t.Errorf("%s: ArenaBytes = %d, want > 0", name, s.ArenaBytes)
		}
		if s.ScanNanos <= 0 || s.CompileNanos <= 0 || s.AssembleNanos <= 0 {
			t.Errorf("%s: stage times missing: compile=%d scan=%d assemble=%d", name, s.CompileNanos, s.ScanNanos, s.AssembleNanos)
		}
		switch name {
		case "columnar":
			if s.Batches == 0 || ph.TypedElems == 0 {
				t.Errorf("columnar: batches=%d typed=%d, want both > 0", s.Batches, ph.TypedElems)
			}
		case "rowbatch":
			if s.Batches == 0 || ph.BoxedElems == 0 || ph.TypedElems != 0 {
				t.Errorf("rowbatch: batches=%d boxed=%d typed=%d", s.Batches, ph.BoxedElems, ph.TypedElems)
			}
		case "scalar":
			if s.Batches != 0 || ph.TypedElems != 0 || ph.BoxedElems != 0 {
				t.Errorf("scalar: batch counters must stay zero: %+v", s)
			}
		}
	}
}

// TestPartitionedParallelCompose pins the satellite fix for the silent
// parallelism drop: MaxBaseRows (or MemoryBudgetBytes) combined with
// Parallelism or DetailParallelism now evaluates each partition pass with
// the requested parallel strategy instead of silently zeroing it, for both
// Eval and EvalSource.
func TestPartitionedParallelCompose(t *testing.T) {
	b, r := statsFixture()
	theta := expr.Eq(expr.QC("R", "g"), expr.C("g"))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "w"), "total"), agg.NewSpec("count", nil, "n")}
	phases := []Phase{{Aggs: specs, Theta: theta}}
	want, err := Eval(b, r, phases, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := table.NewTableSource(r)
	for name, opt := range map[string]Options{
		"maxbase+base-par":   {MaxBaseRows: 2, Parallelism: 2},
		"maxbase+detail-par": {MaxBaseRows: 2, DetailParallelism: 3},
		"budget+detail-par":  {MemoryBudgetBytes: 1, DetailParallelism: 3},
	} {
		var s Stats
		opt.Stats = &s
		got, err := Eval(b, r, phases, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := want.Diff(got); d != "" {
			t.Fatalf("%s: %s", name, d)
		}
		if s.PartitionPasses < 2 {
			t.Errorf("%s: PartitionPasses = %d, want ≥ 2", name, s.PartitionPasses)
		}
		if s.TuplesScanned == 0 || s.PairsMatched == 0 {
			t.Errorf("%s: merged stats empty: %+v", name, s)
		}

		var ss Stats
		opt.Stats = &ss
		gotSrc, err := EvalSource(b, src, phases, opt)
		if err != nil {
			t.Fatalf("%s (source): %v", name, err)
		}
		if d := want.Diff(gotSrc); d != "" {
			t.Fatalf("%s (source): %s", name, d)
		}
		if ss.PartitionPasses < 2 {
			t.Errorf("%s (source): PartitionPasses = %d, want ≥ 2", name, ss.PartitionPasses)
		}
	}
}

// TestEmptyRelationsParallel: empty B with base parallelism and empty R
// with detail parallelism must return schema-correct results (no rows /
// NULL-or-zero aggregates) with sane merged stats, via Eval and EvalSource.
func TestEmptyRelationsParallel(t *testing.T) {
	theta := expr.Eq(expr.QC("R", "g"), expr.C("g"))
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "w"), "total"), agg.NewSpec("count", nil, "n")}
	phases := []Phase{{Aggs: specs, Theta: theta}}

	t.Run("empty base", func(t *testing.T) {
		b := table.New(table.SchemaOf("g"))
		_, r := statsFixture()
		src := table.NewTableSource(r)
		for _, run := range []struct {
			name string
			eval func(Options) (*table.Table, error)
		}{
			{"eval", func(o Options) (*table.Table, error) { return Eval(b, r, phases, o) }},
			{"source", func(o Options) (*table.Table, error) { return EvalSource(b, src, phases, o) }},
		} {
			var s Stats
			out, err := run.eval(Options{Parallelism: 4, Stats: &s})
			if err != nil {
				t.Fatalf("%s: %v", run.name, err)
			}
			if out.Len() != 0 {
				t.Fatalf("%s: rows = %d, want 0", run.name, out.Len())
			}
			wantCols := []string{"g", "total", "n"}
			if got := out.Schema.Names(); !reflect.DeepEqual(got, wantCols) {
				t.Fatalf("%s: schema = %v, want %v", run.name, got, wantCols)
			}
			if s.PairsMatched != 0 {
				t.Errorf("%s: PairsMatched = %d on empty base", run.name, s.PairsMatched)
			}
		}
	})

	t.Run("empty detail", func(t *testing.T) {
		b, _ := statsFixture()
		r := table.New(table.SchemaOf("g", "w"))
		src := table.NewTableSource(r)
		for _, run := range []struct {
			name string
			eval func(Options) (*table.Table, error)
		}{
			{"eval", func(o Options) (*table.Table, error) { return Eval(b, r, phases, o) }},
			{"source", func(o Options) (*table.Table, error) { return EvalSource(b, src, phases, o) }},
		} {
			var s Stats
			out, err := run.eval(Options{DetailParallelism: 4, Stats: &s})
			if err != nil {
				t.Fatalf("%s: %v", run.name, err)
			}
			if out.Len() != b.Len() {
				t.Fatalf("%s: rows = %d, want %d", run.name, out.Len(), b.Len())
			}
			for i := 0; i < out.Len(); i++ {
				if v := out.Value(i, "total"); !v.IsNull() {
					t.Errorf("%s: row %d sum = %v, want NULL", run.name, i, v)
				}
				if v := out.Value(i, "n"); v.AsInt() != 0 {
					t.Errorf("%s: row %d count = %v, want 0", run.name, i, v)
				}
			}
			if s.TuplesScanned != 0 || s.PairsTested != 0 {
				t.Errorf("%s: stats counted phantom tuples: %+v", run.name, s)
			}
		}
	})
}
