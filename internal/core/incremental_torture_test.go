package core_test

// The incremental torture test lives in the external test package because
// it drives internal/faultinject, which itself imports core (it wraps
// distributed-site evaluators) — in-package it would be an import cycle.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/expr"
	"mdjoin/internal/faultinject"
	"mdjoin/internal/table"
)

// TestIncrementalTorture is the race suite (make race-incremental):
// concurrent appenders — some of whose deltas are vetoed by a fault
// injector before they reach the materialization — racing snapshotters,
// plus a windowed sibling absorbing appends and Advances concurrently.
// The append-only materialization must end byte-identical to a batch
// Eval over exactly the successfully-appended rows.
func TestIncrementalTorture(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := table.New(table.SchemaOf("g1"))
	for g1 := 0; g1 < 6; g1++ {
		b.Append(table.Row{table.Int(int64(g1))})
	}
	rSchema := table.SchemaOf("g1", "w")
	pool := make([]table.Row, 512)
	for i := range pool {
		pool[i] = table.Row{table.Int(int64(rng.Intn(7))), table.Int(int64(rng.Intn(100)))}
	}
	phases := []core.Phase{{
		Aggs: []agg.Spec{
			agg.NewSpec("count", nil, "n"),
			agg.NewSpec("sum", expr.QC("R", "w"), "total"),
			agg.NewSpec("min", expr.QC("R", "w"), "lo"),
			agg.NewSpec("max", expr.QC("R", "w"), "hi"),
		},
		Theta: expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
	}}
	inc, err := core.NewIncremental(b, rSchema, phases, core.Options{}, core.IncrementalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := core.NewIncremental(b, rSchema, phases, core.Options{}, core.IncrementalConfig{WindowBuckets: 3})
	if err != nil {
		t.Fatal(err)
	}
	errOutage := errors.New("injected append outage")
	inj := faultinject.New(faultinject.Plan{FailFirst: 5, Err: errOutage})

	const appenders, rounds = 4, 40
	var mu sync.Mutex // guards applied
	var applied []table.Row
	var appendWG, snapWG sync.WaitGroup
	for a := 0; a < appenders; a++ {
		appendWG.Add(1)
		go func(a int) {
			defer appendWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + a)))
			for i := 0; i < rounds; i++ {
				delta := make([]table.Row, 1+rng.Intn(8))
				for j := range delta {
					delta[j] = pool[rng.Intn(len(pool))]
				}
				if err := inj.Intercept(context.Background()); err != nil {
					continue // injected outage: this delta never happened
				}
				if err := inc.Append(delta); err != nil {
					t.Errorf("appender %d: %v", a, err)
					return
				}
				mu.Lock()
				applied = append(applied, delta...)
				mu.Unlock()
				if err := windowed.Append(delta); err != nil {
					t.Errorf("windowed appender %d: %v", a, err)
					return
				}
				if i%10 == 9 {
					if err := windowed.Advance(); err != nil {
						t.Errorf("advancer %d: %v", a, err)
						return
					}
				}
			}
		}(a)
	}
	stop := make(chan struct{})
	for s := 0; s < 2; s++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := inc.Snapshot(); err != nil {
					t.Errorf("snapshotter: %v", err)
					return
				}
				if _, err := windowed.Snapshot(); err != nil {
					t.Errorf("windowed snapshotter: %v", err)
					return
				}
			}
		}()
	}
	appendWG.Wait()
	close(stop)
	snapWG.Wait()
	if inj.Injected() == 0 {
		t.Error("fault injector never fired")
	}
	got, err := inc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	accT := table.New(rSchema)
	accT.Rows = applied
	want, err := core.Eval(b, accT, phases, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := want.Diff(got); d != "" {
		t.Fatalf("torture materialization diverges from batch over applied rows: %s", d)
	}
	if inc.Rows() != len(applied) {
		t.Fatalf("Rows() = %d, want %d applied", inc.Rows(), len(applied))
	}
}
