package core

import (
	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Columnar chunk executor: the default inner loop of the detail scan.
//
// The boxed batch executor (batch.go) still moves row-major []table.Row
// batches and evaluates predicates value-at-a-time through boxed
// table.Value vectors. The chunk executor instead transposes each batch
// into a table.Chunk of typed columns — or, for detail tables built
// through table.Builder, reuses the table's cached columnar mirror with no
// transpose at all — and runs the per-phase pushdown filter, equi-key
// evaluation, and aggregate feeds through the typed kernels of
// internal/expr (FilterChunk/EvalChunk) and internal/agg (FoldInto/
// FoldColumn). Residual θ conjuncts reference both relations, so they
// still evaluate per pair over the row view.
//
// Structure is deliberately parallel to processPhaseBatch: the same
// selection-vector flow, the same dead/degenerate key handling, the same
// stats accounting, so the three executor paths (scalar, boxed batch,
// columnar) are interchangeable and diffable row for row and counter for
// counter.

// chunkPhase holds one worker's compiled columnar programs and scratch for
// one phase. The ChunkCompiled kernels own scratch output columns, so a
// chunkPhase is built per worker (newPhaseExecs), never shared.
type chunkPhase struct {
	rOnly *expr.ChunkCompiled   // pushdown filter (nil if none)
	keys  []*expr.ChunkCompiled // equi-key expressions (index path)
	// args[j] is spec j's argument compiled for the chunk, or nil when the
	// argument references B (or is count(*)) and must feed per pair.
	args []*expr.ChunkCompiled
	// feedable is true when every spec either has a chunk-compiled
	// argument or is count(*): the precondition for the bulk fold below.
	feedable bool
	// per-batch resolved columns and caller-owned scratch (value slices:
	// one allocation each, EvalChunk takes &keyScr[i])
	keyCols []*table.Column
	keyScr  []table.Column
	argCols []*table.Column
	argScr  []table.Column
	// prober vectorizes plain-equality probes against the flat index
	// (nil for cube-rewritten keys or non-flat probe targets, which keep
	// the boxed per-row gather).
	prober *table.Prober
	// union of detail-column ordinals all programs read; the batch driver
	// transposes only these.
	ords []int
}

// addOrd appends o to ords unless present. The unions here are a handful
// of ordinals, so a linear scan beats allocating a set.
func addOrd(ords []int, o int) []int {
	for _, have := range ords {
		if have == o {
			return ords
		}
	}
	return append(ords, o)
}

// newChunkPhase compiles the phase's predicate pieces against the chunked
// detail slot. It returns nil — and the phase falls back to the boxed
// batch path — if an index-key or pushdown expression cannot be
// chunk-compiled (by construction of the θ analysis they always can; the
// guard keeps the fallback airtight rather than load-bearing). A spec
// argument that cannot be chunk-compiled only disables the typed feed for
// that spec, not the whole phase.
func newChunkPhase(pp *phasePlan) *chunkPhase {
	cpk := &chunkPhase{ords: []int{}}
	addOrds := func(cc *expr.ChunkCompiled) {
		for _, o := range cc.Ordinals() {
			cpk.ords = addOrd(cpk.ords, o)
		}
	}
	if pp.rOnly != nil {
		cc, err := expr.CompileChunk(pp.rOnly.Source(), pp.bind, pp.rslot)
		if err != nil {
			return nil
		}
		cpk.rOnly = cc
		addOrds(cc)
	}
	if pp.index != nil {
		n := len(pp.equiKeys)
		cpk.keys = make([]*expr.ChunkCompiled, n)
		cpk.keyCols = make([]*table.Column, n)
		cpk.keyScr = make([]table.Column, n)
		for i, ke := range pp.equiKeys {
			cc, err := expr.CompileChunk(ke.Source(), pp.bind, pp.rslot)
			if err != nil {
				return nil
			}
			cpk.keys[i] = cc
			addOrds(cc)
		}
		if len(pp.cubePos) == 0 {
			if ix, ok := pp.index.(*table.Index); ok {
				cpk.prober = table.NewProber(ix)
			}
		}
	}
	n := len(pp.specs)
	cpk.args = make([]*expr.ChunkCompiled, n)
	cpk.argCols = make([]*table.Column, n)
	cpk.argScr = make([]table.Column, n)
	cpk.feedable = true
	for j, c := range pp.specs {
		arg := c.Spec.Arg
		if arg == nil {
			continue // count(*): Feed's marker path, no argument column
		}
		cc, err := expr.CompileChunk(arg, pp.bind, pp.rslot)
		if err != nil {
			cpk.feedable = false // e.g. sum(B.x - R.y): per-pair boxed feed
			continue
		}
		cpk.args[j] = cc
		addOrds(cc)
	}
	return cpk
}

// batchDriver owns one worker's per-scan state: the evaluation frame, the
// scratch chunk that batches are transposed into, the union of ordinals
// worth transposing, and — when the detail table was built through
// table.Builder — its prebuilt chunks, consumed aligned with the batch
// loop so the scan skips the transpose entirely.
type batchDriver struct {
	frame    []table.Row
	columnar bool
	rSchema  *table.Schema
	// scratch is allocated lazily on the first batch with no prebuilt
	// chunk, so scans over Builder-built tables never pay for it.
	scratch  *table.Chunk
	ords     []int
	prebuilt []*table.Chunk
}

// newBatchDriver prepares a driver for one scan. columnar stays false when
// no phase runs columnar, making the driver a plain frame holder for the
// boxed batch path.
func newBatchDriver(rSchema *table.Schema, cps []*compiledPhase) *batchDriver {
	d := &batchDriver{frame: make([]table.Row, 2), rSchema: rSchema}
	for _, cp := range cps {
		if cp.chunk == nil {
			continue
		}
		d.columnar = true
		for _, o := range cp.chunk.ords {
			d.ords = addOrd(d.ords, o)
		}
	}
	if d.columnar && d.ords == nil {
		d.ords = []int{} // non-nil: transpose no columns, not all of them
	}
	return d
}

// processBatch folds one batch of detail tuples into every phase,
// providing columnar phases with a chunk view of the batch: the prebuilt
// chunk when the caller has one, otherwise a transpose of just the needed
// ordinals into the driver's scratch chunk.
func (d *batchDriver) processBatch(b *table.Table, cps []*compiledPhase, batch []table.Row, ch *table.Chunk, stats *Stats) {
	if stats != nil {
		stats.TuplesScanned += len(batch)
		stats.Batches++
		if ch != nil {
			stats.ChunksPrebuilt++
		}
	}
	if ch == nil && d.columnar {
		if d.scratch == nil {
			d.scratch = table.NewChunk(d.rSchema)
		}
		d.scratch.LoadRows(batch, d.ords)
		ch = d.scratch
		if stats != nil {
			stats.ChunksTransposed++
		}
	}
	for _, cp := range cps {
		if cp.chunk != nil && ch != nil {
			processPhaseChunk(b, cp, d.frame, batch, ch, stats)
		} else {
			processPhaseBatch(b, cp, d.frame, batch, stats)
		}
	}
}

// processPhaseChunk is processPhaseBatch over a columnar chunk: pushdown
// filters through FilterChunk, equi keys evaluate through EvalChunk into
// typed columns, aggregate arguments resolve once per batch, and the fused
// probe-and-feed loop gathers keys from the columns. Pair bookkeeping is
// identical to the boxed path so Stats stay bit-for-bit equal.
func processPhaseChunk(b *table.Table, cp *compiledPhase, frame []table.Row, batch []table.Row, ch *table.Chunk, stats *Stats) {
	cpk := cp.chunk
	frame[0], frame[1] = nil, nil
	cp.sel = expr.IdentitySel(cp.sel, len(batch))
	sel := cp.sel

	// Theorem 4.2: the R-only conjuncts gate the whole batch in one typed
	// pass, compacting the selection to the survivors.
	if cpk.rOnly != nil {
		in := len(sel)
		sel = cpk.rOnly.FilterChunk(ch, sel)
		if stats != nil {
			ph := stats.phase(cp.pi)
			ph.PushdownIn += in
			ph.PushdownOut += len(sel)
			countKernel(ph, cpk.rOnly, in)
		}
		if len(sel) == 0 {
			return
		}
	}

	// Resolve each chunkable aggregate argument once per batch. Plain
	// column references come back zero-copy; computed arguments evaluate
	// over the surviving selection (for selective phases this can touch
	// tuples that end up matching nothing — the price of batching, same as
	// the boxed path's key evaluation).
	for j, cc := range cpk.args {
		if cc == nil {
			cpk.argCols[j] = nil
			continue
		}
		cpk.argCols[j] = cc.EvalChunk(ch, sel, &cpk.argScr[j])
		if stats != nil {
			countKernel(stats.phase(cp.pi), cc, len(sel))
		}
	}

	tested, matched := 0, 0
	if cp.index == nil {
		if cp.residual == nil && cpk.feedable {
			// Bulk fold: with no residual, every surviving tuple matches
			// every live base row, so each state folds the whole argument
			// column (in sel order — the same feed order as the pair loop).
			nAlive := 0
			for bi := range b.Rows {
				if !cp.bAlive[bi] {
					continue
				}
				nAlive++
				row := cp.states.Row(bi)
				for j, c := range cp.specs {
					if col := cpk.argCols[j]; col != nil {
						agg.FoldColumn(row[j], col, sel)
					} else {
						for range sel {
							c.Feed(row[j], nil) // count(*): frame unused
						}
					}
				}
			}
			flushPhaseStats(stats, cp.pi, nAlive*len(sel), nAlive*len(sel), 0, 0)
			return
		}
		// Verbatim Algorithm 3.1 inner loop for the surviving tuples.
		for _, si := range sel {
			frame[1] = batch[si]
			for bi, br := range b.Rows {
				if !cp.bAlive[bi] {
					continue
				}
				tested++
				if feedPair(cp, br, bi, frame, int(si)) {
					matched++
				}
			}
		}
		frame[0], frame[1] = nil, nil
		flushPhaseStats(stats, cp.pi, tested, matched, 0, 0)
		return
	}

	// Section 4.5: evaluate every index-key expression once over the
	// selection into a typed column.
	for i, cc := range cpk.keys {
		cpk.keyCols[i] = cc.EvalChunk(ch, sel, &cpk.keyScr[i])
		if stats != nil {
			countKernel(stats.phase(cp.pi), cc, len(sel))
		}
	}
	if cpk.prober != nil {
		probeChunkVectorized(b, cp, frame, batch, sel, stats)
		return
	}
	probeChunkBoxed(b, cp, frame, batch, sel, stats)
}

// probeChunkVectorized is the plain-equality probe pipeline: the prober
// hashes the key columns wholesale (typed vectors and dictionary codes,
// no boxed key per row), classifies each position, and the loop below
// only dispatches on the classification — probing the index through the
// fingerprint pre-filter for live positions and feeding matches into the
// arena states. Pair, probe, and hit accounting is identical to the
// scalar reference path; the filter counters are vectorized-only
// diagnostics and stay out of Stats.Semantic.
func probeChunkVectorized(b *table.Table, cp *compiledPhase, frame []table.Row, batch []table.Row, sel []int32, stats *Stats) {
	cpk := cp.chunk
	pr := cpk.prober
	pr.Begin(len(batch))
	for kix, kc := range cpk.keyCols {
		pr.FoldKeyCol(kix, kc, sel)
	}
	tested, matched, probes, hits := 0, 0, 0, 0
	checked, skipped := 0, 0
	for _, si := range sel {
		i := int(si)
		switch pr.State(i) {
		case table.ProbeDead:
			// NULL key: strict equality with NULL is never true.
			continue
		case table.ProbeDegen:
			// Detail-side ALL matches every base value under =^; full loop.
			frame[1] = batch[si]
			for bi, br := range b.Rows {
				if !cp.bAlive[bi] {
					continue
				}
				tested++
				if feedPair(cp, br, bi, frame, i) {
					matched++
				}
			}
		case table.ProbeMiss:
			// Dictionary translation proved no base row matches: account
			// the probe (the scalar path probes and gets zero hits) but
			// never touch the index.
			probes++
			skipped++
		default: // ProbeLive
			var skip bool
			cp.probeBuf, skip = pr.ProbeAppend(cp.probeBuf[:0], i)
			probes++
			hits += len(cp.probeBuf)
			if skip {
				skipped++
			} else {
				checked++
			}
			if len(cp.probeBuf) == 0 {
				continue
			}
			frame[1] = batch[si]
			for _, bi := range cp.probeBuf {
				if !cp.bAlive[bi] {
					continue
				}
				tested++
				if feedPair(cp, b.Rows[bi], bi, frame, i) {
					matched++
				}
			}
		}
	}
	frame[0], frame[1] = nil, nil
	flushPhaseStats(stats, cp.pi, tested, matched, probes, hits)
	flushFilterStats(stats, cp.pi, checked, skipped)
}

// probeChunkBoxed is the per-row gather fallback for phases the prober
// cannot serve: cube-rewritten keys (probeCubeBatched mutates the
// gathered key through 2^k ALL-substitution masks) and non-flat probe
// targets. Keys box back into []table.Value through Column.Value.
//
//mdlint:boxedkey cube rewriting mutates a boxed key copy per probe mask
func probeChunkBoxed(b *table.Table, cp *compiledPhase, frame []table.Row, batch []table.Row, sel []int32, stats *Stats) {
	cpk := cp.chunk
	nk := len(cpk.keys)
	if cap(cp.keyBuf) < nk {
		cp.keyBuf = make([]table.Value, nk)
	}
	key := cp.keyBuf[:nk]

	tested, matched, probes, hits := 0, 0, 0, 0
	for _, si := range sel {
		i := int(si)
		degenerate, dead := false, false
		for kix := range key {
			kc := cpk.keyCols[kix]
			if kc.IsAll(i) {
				// A detail-side ALL matches every base value under =^;
				// fall back to the full loop for this tuple (cannot arise
				// from ordinary detail data).
				degenerate = true
			}
			if kc.IsNull(i) && !cp.cubeAt[kix] {
				// Strict equality with NULL is never true: no base row
				// can match this tuple in this phase.
				dead = true
			}
			key[kix] = kc.Value(i)
		}
		if dead {
			continue
		}
		frame[1] = batch[si]
		switch {
		case degenerate:
			for bi, br := range b.Rows {
				if !cp.bAlive[bi] {
					continue
				}
				tested++
				if feedPair(cp, br, bi, frame, i) {
					matched++
				}
			}
		case len(cp.cubePos) == 0:
			// Plain equality: one probe, no key rewriting.
			cp.probeBuf = cp.index.ProbeAppend(cp.probeBuf[:0], key)
			probes++
			hits += len(cp.probeBuf)
			for _, bi := range cp.probeBuf {
				if !cp.bAlive[bi] {
					continue
				}
				tested++
				if feedPair(cp, b.Rows[bi], bi, frame, i) {
					matched++
				}
			}
		default:
			t, m, pr, h := probeCubeBatched(cp, b, key, frame, i)
			tested += t
			matched += m
			probes += pr
			hits += h
		}
	}
	frame[0], frame[1] = nil, nil
	flushPhaseStats(stats, cp.pi, tested, matched, probes, hits)
}

// countKernel attributes one chunk-kernel run's elements to the typed or
// boxed counter — the tripwire for the whole-column boxed fallback, which
// silently costs an order of magnitude over the typed loops.
func countKernel(ph *PhaseStats, cc *expr.ChunkCompiled, n int) {
	if cc.ResultBoxed() {
		ph.BoxedElems += int64(n)
	} else {
		ph.TypedElems += int64(n)
	}
}
