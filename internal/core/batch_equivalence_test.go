package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// The vectorized batch executor and the tuple-at-a-time interpreter are two
// implementations of the same operator; this file pins them against each
// other (and against the Definition 3.1 reference) across the full options
// matrix: index on/off × pushdown on/off × execution strategy, on θ shapes
// covering plain equality, cube equality over ALL-bearing base tables, and
// NULL detail keys. Results must be row-identical, not just multiset-equal.

// genBatchRelations builds a random (base, detail) pair for the matrix.
// Detail keys are NULL with probability 1/8 so the dead-key fast path is
// exercised on every trial; when cube is set, base cells carry the ALL
// marker with probability 1/3.
func genBatchRelations(rng *rand.Rand, cube bool) (*table.Table, *table.Table) {
	b := table.New(table.SchemaOf("g1", "g2"))
	seen := map[[2]string]bool{}
	for b.Len() < 2+rng.Intn(9) {
		var v1, v2 table.Value
		v1 = table.Int(int64(rng.Intn(6)))
		v2 = table.Int(int64(rng.Intn(4)))
		if cube {
			if rng.Intn(3) == 0 {
				v1 = table.All()
			}
			if rng.Intn(3) == 0 {
				v2 = table.All()
			}
		}
		k := [2]string{v1.String(), v2.String()}
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Append(table.Row{v1, v2})
	}
	r := table.New(table.SchemaOf("g1", "g2", "w", "f"))
	n := 10 + rng.Intn(120)
	for i := 0; i < n; i++ {
		var g1 table.Value = table.Int(int64(rng.Intn(7)))
		if rng.Intn(8) == 0 {
			g1 = table.Null()
		}
		r.Append(table.Row{
			g1,
			table.Int(int64(rng.Intn(5))),
			table.Int(int64(rng.Intn(100))),
			table.Int(int64(rng.Intn(3))),
		})
	}
	return b, r
}

// batchMatrix enumerates the option combinations of the equivalence
// matrix; DisableBatch is left to the caller.
func batchMatrix() map[string]Options {
	out := map[string]Options{}
	for _, idx := range []bool{false, true} {
		for _, push := range []bool{false, true} {
			for sname, strat := range map[string]Options{
				"single":     {},
				"maxbase-3":  {MaxBaseRows: 3},
				"par-base-3": {Parallelism: 3},
				"par-det-3":  {DetailParallelism: 3},
			} {
				opt := strat
				opt.DisableIndex = idx
				opt.DisablePushdown = push
				name := fmt.Sprintf("idx=%t/push=%t/%s", !idx, !push, sname)
				out[name] = opt
			}
		}
	}
	return out
}

// TestBatchMatrixAgainstScalar: for every options combination, the
// vectorized executor must produce a result row-identical to the
// tuple-at-a-time interpreter with the same options, and the default path
// must match the Definition 3.1 reference.
func TestBatchMatrixAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7000))
	for trial := 0; trial < 24; trial++ {
		cube := trial%3 == 2
		b, r := genBatchRelations(rng, cube)

		var conj []expr.Expr
		if cube {
			conj = append(conj,
				expr.CubeEq(expr.QC("R", "g1"), expr.C("g1")),
				expr.CubeEq(expr.QC("R", "g2"), expr.C("g2")))
		} else {
			conj = append(conj, expr.Eq(expr.QC("R", "g1"), expr.C("g1")))
			if rng.Intn(2) == 0 {
				conj = append(conj, expr.Eq(expr.QC("R", "g2"), expr.C("g2")))
			}
			if rng.Intn(2) == 0 {
				// Residual conjunct: survives pushdown and indexing.
				conj = append(conj, expr.Gt(expr.QC("R", "w"), expr.Mul(expr.C("g1"), expr.I(10))))
			}
		}
		if rng.Intn(2) == 0 {
			// R-only conjunct: the Theorem 4.2 pushdown target.
			conj = append(conj, expr.Le(expr.QC("R", "f"), expr.I(int64(rng.Intn(3)))))
		}
		theta := expr.And(conj...)
		specs := stdSpecs()

		ref := refMDJoin(t, b, r, specs, theta, Options{})
		if d := ref.Diff(mdJoin(t, b, r, specs, theta, Options{})); d != "" {
			t.Fatalf("trial %d: default path vs Definition 3.1 reference: %s", trial, d)
		}

		for name, opt := range batchMatrix() {
			scalarOpt := opt
			scalarOpt.DisableBatch = true
			want := mdJoin(t, b, r, specs, theta, scalarOpt)
			got := mdJoin(t, b, r, specs, theta, opt)
			if d := want.Diff(got); d != "" {
				t.Fatalf("trial %d, %s, θ=%s: batched vs scalar: %s", trial, name, theta, d)
			}
			if d := ref.Diff(got); d != "" {
				t.Fatalf("trial %d, %s, θ=%s: batched vs reference: %s", trial, name, theta, d)
			}
		}
	}
}

// TestBatchSourceMatchesScalarSource extends the matrix to the streaming
// entry point: the batched source scan (buffered iterator batches) must
// match the scalar source scan and the materialized result.
func TestBatchSourceMatchesScalarSource(t *testing.T) {
	rng := rand.New(rand.NewSource(7100))
	for trial := 0; trial < 10; trial++ {
		b, r := genBatchRelations(rng, false)
		theta := expr.And(
			expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
			expr.Le(expr.QC("R", "f"), expr.I(1)))
		specs := stdSpecs()
		src := table.NewTableSource(r)

		want := mdJoin(t, b, r, specs, theta, Options{})
		for name, opt := range map[string]Options{
			"single":    {},
			"scalar":    {DisableBatch: true},
			"par-det":   {DetailParallelism: 3},
			"scal-det":  {DisableBatch: true, DetailParallelism: 3},
			"maxbase-2": {MaxBaseRows: 2},
		} {
			got, err := EvalSource(b, src, []Phase{{Aggs: specs, Theta: theta}}, opt)
			if err != nil {
				t.Fatalf("trial %d, %s: %v", trial, name, err)
			}
			if d := want.Diff(got); d != "" {
				t.Fatalf("trial %d, %s: source vs materialized: %s", trial, name, d)
			}
		}
	}
}

// TestBatchBoundarySizes pins the batch-boundary arithmetic: detail
// cardinalities straddling multiples of batchSize (0, 1, batchSize-1,
// batchSize, batchSize+1, 2·batchSize+17) must all agree with the scalar
// interpreter.
func TestBatchBoundarySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7200))
	theta := expr.Eq(expr.QC("R", "g1"), expr.C("g1"))
	specs := []agg.Spec{
		agg.NewSpec("count", nil, "n"),
		agg.NewSpec("sum", expr.QC("R", "w"), "total"),
	}
	b := table.MustFromRows(table.SchemaOf("g1"), []table.Row{
		{table.Int(0)}, {table.Int(1)}, {table.Int(2)},
	})
	for _, n := range []int{0, 1, batchSize - 1, batchSize, batchSize + 1, 2*batchSize + 17} {
		r := table.New(table.SchemaOf("g1", "w"))
		for i := 0; i < n; i++ {
			r.Append(table.Row{table.Int(int64(rng.Intn(4))), table.Int(int64(rng.Intn(50)))})
		}
		want := mdJoin(t, b, r, specs, theta, Options{DisableBatch: true})
		got := mdJoin(t, b, r, specs, theta, Options{})
		if d := want.Diff(got); d != "" {
			t.Fatalf("|R|=%d: %s", n, d)
		}
	}
}

// TestBatchStatsMatchScalar: the amortized per-batch counter flushes must
// produce the same totals as per-tuple counting.
func TestBatchStatsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7300))
	b, r := genBatchRelations(rng, false)
	theta := expr.And(
		expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
		expr.Le(expr.QC("R", "f"), expr.I(1)))
	specs := stdSpecs()

	var batched, scalar Stats
	mdJoin(t, b, r, specs, theta, Options{Stats: &batched})
	mdJoin(t, b, r, specs, theta, Options{Stats: &scalar, DisableBatch: true})
	if batched.Semantic() != scalar.Semantic() {
		t.Fatalf("stats diverge:\n batched %s\n scalar  %s", batched.Semantic(), scalar.Semantic())
	}
}
