package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// The columnar chunk executor is the third implementation of the operator;
// this file extends the equivalence matrix of batch_equivalence_test.go to
// all three paths: scalar (DisableBatch) vs boxed row-batch
// (DisableColumnar) vs columnar (default). Beyond the shapes the two-way
// matrix covers, the trials here exercise what is new in the columnar
// representation: dictionary-encoded string keys with NULL (and cube-ALL
// base cells), mixed-kind detail columns that demote chunk columns to the
// boxed fallback, chunk-boundary cardinalities, and prebuilt Builder
// chunks vs on-the-fly transposition. Results must be row-identical.

// threeWay evaluates the phase under all three executors derived from opt
// and fails on the first divergence. It returns the columnar result so
// callers can chain further comparisons.
func threeWay(t *testing.T, label string, b, r *table.Table, specs []agg.Spec, theta expr.Expr, opt Options) *table.Table {
	t.Helper()
	scalarOpt := opt
	scalarOpt.DisableBatch = true
	rowOpt := opt
	rowOpt.DisableColumnar = true

	scalar := mdJoin(t, b, r, specs, theta, scalarOpt)
	rowbatch := mdJoin(t, b, r, specs, theta, rowOpt)
	columnar := mdJoin(t, b, r, specs, theta, opt)
	if d := scalar.Diff(rowbatch); d != "" {
		t.Fatalf("%s: row-batch vs scalar: %s", label, d)
	}
	if d := scalar.Diff(columnar); d != "" {
		t.Fatalf("%s: columnar vs scalar: %s", label, d)
	}
	return columnar
}

// genStringRelations builds a (base, detail) pair keyed by a
// dictionary-encoded string dimension. Detail g1 is NULL with probability
// 1/8; when cube is set, base cells carry ALL with probability 1/3.
func genStringRelations(rng *rand.Rand, cube bool) (*table.Table, *table.Table) {
	states := []string{"ak", "ca", "ny", "tx", "wa", "vt", "or"}
	b := table.New(table.SchemaOf("g1", "g2"))
	seen := map[string]bool{}
	for b.Len() < 2+rng.Intn(9) {
		var v1, v2 table.Value
		v1 = table.Str(states[rng.Intn(len(states))])
		v2 = table.Int(int64(rng.Intn(4)))
		if cube {
			if rng.Intn(3) == 0 {
				v1 = table.All()
			}
			if rng.Intn(3) == 0 {
				v2 = table.All()
			}
		}
		k := fmt.Sprintf("%d:%v/%d:%v", v1.Kind(), v1, v2.Kind(), v2)
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Append(table.Row{v1, v2})
	}
	r := table.New(table.SchemaOf("g1", "g2", "w", "f"))
	n := 10 + rng.Intn(120)
	for i := 0; i < n; i++ {
		var g1 table.Value = table.Str(states[rng.Intn(len(states))])
		if rng.Intn(8) == 0 {
			g1 = table.Null()
		}
		r.Append(table.Row{
			g1,
			table.Int(int64(rng.Intn(5))),
			table.Float(float64(rng.Intn(100)) / 4),
			table.Int(int64(rng.Intn(3))),
		})
	}
	return b, r
}

// genMixedKindRelations builds a detail relation whose key and argument
// columns mix ints, floats, and strings, so the chunk columns demote to
// the boxed representation and the executor's generic fallback carries the
// phase.
func genMixedKindRelations(rng *rand.Rand) (*table.Table, *table.Table) {
	b := table.New(table.SchemaOf("g1"))
	seen := map[string]bool{}
	for b.Len() < 3+rng.Intn(5) {
		v := mixedValue(rng)
		k := fmt.Sprintf("%d:%v", v.Kind(), v)
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Append(table.Row{v})
	}
	r := table.New(table.SchemaOf("g1", "w", "f"))
	n := 10 + rng.Intn(100)
	for i := 0; i < n; i++ {
		r.Append(table.Row{
			mixedValue(rng),
			mixedValue(rng), // aggregate argument: mixed kinds too
			table.Int(int64(rng.Intn(3))),
		})
	}
	return b, r
}

func mixedValue(rng *rand.Rand) table.Value {
	switch rng.Intn(5) {
	case 0:
		return table.Str(fmt.Sprintf("s%d", rng.Intn(3)))
	case 1:
		return table.Float(float64(rng.Intn(4)) + 0.5)
	case 2:
		return table.Null()
	default:
		return table.Int(int64(rng.Intn(4)))
	}
}

// TestColumnarMatrixAgainstScalar runs the full options matrix over int,
// string-dictionary, and mixed-kind relations, diffing all three executor
// paths per combination.
func TestColumnarMatrixAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(8000))
	for trial := 0; trial < 18; trial++ {
		cube := trial%3 == 2
		var b, r *table.Table
		var keyCol string
		switch trial % 2 {
		case 0:
			b, r = genBatchRelations(rng, cube)
			keyCol = "g1"
		default:
			b, r = genStringRelations(rng, cube)
			keyCol = "g1"
		}

		var conj []expr.Expr
		if cube {
			conj = append(conj,
				expr.CubeEq(expr.QC("R", keyCol), expr.C(keyCol)),
				expr.CubeEq(expr.QC("R", "g2"), expr.C("g2")))
		} else {
			conj = append(conj, expr.Eq(expr.QC("R", keyCol), expr.C(keyCol)))
			if rng.Intn(2) == 0 {
				// Residual conjunct referencing both relations.
				conj = append(conj, expr.Ge(expr.QC("R", "g2"), expr.C("g2")))
			}
		}
		if rng.Intn(2) == 0 {
			// R-only conjunct: the pushdown target, FilterChunk's input.
			conj = append(conj, expr.Le(expr.QC("R", "f"), expr.I(int64(rng.Intn(3)))))
		}
		theta := expr.And(conj...)
		specs := stdSpecs()

		ref := refMDJoin(t, b, r, specs, theta, Options{})
		for name, opt := range batchMatrix() {
			label := fmt.Sprintf("trial %d, %s, θ=%s", trial, name, theta)
			got := threeWay(t, label, b, r, specs, theta, opt)
			if d := ref.Diff(got); d != "" {
				t.Fatalf("%s: columnar vs reference: %s", label, d)
			}
		}
	}
}

// TestColumnarMixedKindColumns pins the boxed-fallback path: keys and
// aggregate arguments over columns that cannot hold a single payload kind.
func TestColumnarMixedKindColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(8100))
	specs := []agg.Spec{
		agg.NewSpec("count", nil, "n"),
		agg.NewSpec("sum", expr.QC("R", "w"), "total"),
		agg.NewSpec("max", expr.QC("R", "w"), "top"),
	}
	for trial := 0; trial < 12; trial++ {
		b, r := genMixedKindRelations(rng)
		theta := expr.Eq(expr.QC("R", "g1"), expr.C("g1"))
		threeWay(t, fmt.Sprintf("mixed trial %d indexed", trial), b, r, specs, theta, Options{})
		threeWay(t, fmt.Sprintf("mixed trial %d nested", trial), b, r, specs, theta, Options{DisableIndex: true})
	}
}

// TestColumnarChunkBoundaries pins the chunk/batch boundary arithmetic at
// |R| ∈ {1, ChunkSize-1, ChunkSize, ChunkSize+1}, each built two ways: via
// plain Append (the scan transposes into the scratch chunk) and via
// table.Builder (the scan consumes the prebuilt columnar mirror). Both
// must match the scalar interpreter, and each other.
func TestColumnarChunkBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(8200))
	theta := expr.And(
		expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
		expr.Le(expr.QC("R", "f"), expr.I(1)))
	specs := stdSpecs()
	b := table.MustFromRows(table.SchemaOf("g1"), []table.Row{
		{table.Int(0)}, {table.Int(1)}, {table.Int(2)},
	})
	for _, n := range []int{1, table.ChunkSize - 1, table.ChunkSize, table.ChunkSize + 1} {
		appended := table.New(table.SchemaOf("g1", "w", "f"))
		built := table.NewBuilder(table.SchemaOf("g1", "w", "f"))
		for i := 0; i < n; i++ {
			row := table.Row{
				table.Int(int64(rng.Intn(4))),
				table.Int(int64(rng.Intn(50))),
				table.Int(int64(rng.Intn(3))),
			}
			appended.Append(row)
			built.Append(row)
		}
		builtTab := built.Table()
		if builtTab.CachedChunks(batchSize) == nil {
			t.Fatalf("|R|=%d: Builder table must carry cached chunks at the executor batch size", n)
		}

		fromAppend := threeWay(t, fmt.Sprintf("|R|=%d appended", n), b, appended, specs, theta, Options{})
		fromBuilder := threeWay(t, fmt.Sprintf("|R|=%d built", n), b, builtTab, specs, theta, Options{})
		if d := fromAppend.Diff(fromBuilder); d != "" {
			t.Fatalf("|R|=%d: transposed vs prebuilt chunks: %s", n, d)
		}
	}
}

// TestColumnarBulkFoldPath pins the no-index no-residual bulk fold (every
// selected tuple feeds every live base row via FoldColumn) against the
// scalar interpreter, including the pushdown-filtered variant.
func TestColumnarBulkFoldPath(t *testing.T) {
	rng := rand.New(rand.NewSource(8300))
	b := table.MustFromRows(table.SchemaOf("tag"), []table.Row{
		{table.Str("lo")}, {table.Str("hi")},
	})
	r := table.New(table.SchemaOf("w", "f"))
	n := 2*table.ChunkSize + 33
	for i := 0; i < n; i++ {
		var w table.Value = table.Float(float64(rng.Intn(100)) / 8)
		if rng.Intn(10) == 0 {
			w = table.Null()
		}
		r.Append(table.Row{w, table.Int(int64(rng.Intn(4)))})
	}
	specs := []agg.Spec{
		agg.NewSpec("count", nil, "n"),
		agg.NewSpec("sum", expr.QC("R", "w"), "total"),
		agg.NewSpec("avg", expr.QC("R", "w"), "mean"),
		agg.NewSpec("min", expr.QC("R", "w"), "low"),
	}
	// No θ at all: every tuple matches every base row.
	always := expr.V(table.Bool(true))
	threeWay(t, "bulk unfiltered", b, r, nil, always, Options{})
	threeWay(t, "bulk aggs unfiltered", b, r, specs, always, Options{})
	// R-only filter: the bulk fold runs over the compacted selection.
	threeWay(t, "bulk pushdown", b, r, specs, expr.Le(expr.QC("R", "f"), expr.I(1)), Options{})
	// B-only conjunct: dead base rows must stay out of the fold.
	theta := expr.And(expr.Le(expr.QC("R", "f"), expr.I(2)), expr.Eq(expr.C("tag"), expr.S("hi")))
	threeWay(t, "bulk balive", b, r, specs, theta, Options{})
}

// TestColumnarStatsMatch: all three executors must report identical
// executor-independent Stats (the Semantic projection — tuple, pair, probe,
// and pushdown counters) on indexed, bulk-fold, and residual-bearing
// shapes, and each must report its own tier.
func TestColumnarStatsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8400))
	for trial, mk := range []func() (*table.Table, *table.Table, expr.Expr){
		func() (*table.Table, *table.Table, expr.Expr) {
			b, r := genBatchRelations(rng, false)
			return b, r, expr.And(
				expr.Eq(expr.QC("R", "g1"), expr.C("g1")),
				expr.Le(expr.QC("R", "f"), expr.I(1)))
		},
		func() (*table.Table, *table.Table, expr.Expr) {
			b, r := genStringRelations(rng, true)
			return b, r, expr.And(
				expr.CubeEq(expr.QC("R", "g1"), expr.C("g1")),
				expr.CubeEq(expr.QC("R", "g2"), expr.C("g2")))
		},
		func() (*table.Table, *table.Table, expr.Expr) {
			b, r := genBatchRelations(rng, false)
			// No equi conjunct: bulk-fold / full-loop territory.
			return b, r, expr.Le(expr.QC("R", "f"), expr.I(1))
		},
		func() (*table.Table, *table.Table, expr.Expr) {
			b, r := genBatchRelations(rng, false)
			// Residual-only: per-pair checks on all three paths.
			return b, r, expr.Ge(expr.QC("R", "w"), expr.Mul(expr.C("g1"), expr.I(10)))
		},
	} {
		b, r, theta := mk()
		specs := stdSpecs()
		var scalar, rowbatch, columnar Stats
		mdJoin(t, b, r, specs, theta, Options{Stats: &scalar, DisableBatch: true})
		mdJoin(t, b, r, specs, theta, Options{Stats: &rowbatch, DisableColumnar: true})
		mdJoin(t, b, r, specs, theta, Options{Stats: &columnar})
		if scalar.Semantic() != rowbatch.Semantic() || scalar.Semantic() != columnar.Semantic() {
			t.Fatalf("shape %d: stats diverge:\n scalar   %s\n rowbatch %s\n columnar %s",
				trial, scalar.Semantic(), rowbatch.Semantic(), columnar.Semantic())
		}
		if scalar.Tier() != TierScalar || rowbatch.Tier() != TierRowBatch || columnar.Tier() != TierColumnar {
			t.Fatalf("shape %d: tier misreported: scalar=%v rowbatch=%v columnar=%v",
				trial, scalar.Tier(), rowbatch.Tier(), columnar.Tier())
		}
	}
}
