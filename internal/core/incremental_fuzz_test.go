package core

import (
	"math/rand"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// FuzzIncrementalVsBatch is the native fuzz harness for the incremental
// maintenance invariant: any append schedule — sizes decoded from the
// fuzzed bytes, rows drawn from a seeded pool with NULL keys and ALL
// cells — must leave Snapshot byte-identical to a batch Eval over the
// rows accumulated so far. Run continuously with
//
//	go test ./internal/core -run '^$' -fuzz FuzzIncrementalVsBatch
//
// or for the CI smoke slice, make fuzz-smoke.
func FuzzIncrementalVsBatch(f *testing.F) {
	f.Add(int64(1), []byte{0, 5, 40, 255})
	f.Add(int64(2), []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add(int64(3), []byte{200, 0, 0, 17})
	f.Add(int64(4), []byte{})

	f.Fuzz(func(t *testing.T, seed int64, sched []byte) {
		rng := rand.New(rand.NewSource(seed))
		cube := seed%2 == 0
		b, r := genBatchRelations(rng, cube)
		phases := []Phase{{
			Aggs: []agg.Spec{
				agg.NewSpec("count", nil, "n"),
				agg.NewSpec("sum", expr.QC("R", "w"), "total"),
				agg.NewSpec("min", expr.QC("R", "w"), "lo"),
				agg.NewSpec("avg", expr.QC("R", "w"), "mean"),
			},
			Theta: incTheta(rng, cube),
		}}
		inc, err := NewIncremental(b, r.Schema, phases, Options{}, IncrementalConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if len(sched) > 48 {
			sched = sched[:48]
		}
		var acc []table.Row
		next := 0
		for si, sb := range sched {
			n := int(sb) % 33
			delta := make([]table.Row, 0, n)
			for i := 0; i < n; i++ {
				delta = append(delta, r.Rows[next%len(r.Rows)])
				next++
			}
			if err := inc.Append(delta); err != nil {
				t.Fatalf("step %d: Append: %v", si, err)
			}
			acc = append(acc, delta...)
			got, err := inc.Snapshot()
			if err != nil {
				t.Fatalf("step %d: Snapshot: %v", si, err)
			}
			accT := table.New(r.Schema)
			accT.Rows = acc
			want, err := Eval(b, accT, phases, Options{})
			if err != nil {
				t.Fatalf("step %d: Eval: %v", si, err)
			}
			if d := want.Diff(got); d != "" {
				t.Fatalf("step %d (%d rows in): snapshot diverges from batch eval: %s", si, len(acc), d)
			}
		}
	})
}
