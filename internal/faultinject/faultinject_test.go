package faultinject_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/distributed"
	"mdjoin/internal/expr"
	"mdjoin/internal/faultinject"
	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

func onSiteCluster(t *testing.T, plan faultinject.Plan) (*distributed.Cluster, *faultinject.Injector, *table.Table) {
	t.Helper()
	sales := workload.Sales(workload.SalesConfig{Rows: 500, Customers: 10, States: 2, Seed: 7})
	site := distributed.NewSite("solo", sales)
	inj := faultinject.Wrap(site, plan)
	cluster, err := distributed.NewCluster(site)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	base := table.New(table.NewSchema(table.Field{Name: "cust"}))
	base.Append(table.Row{table.Int(1)})
	return cluster, inj, base
}

func countPhase() core.Phase {
	return core.Phase{
		Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
}

func TestFailFirstIsDeterministic(t *testing.T) {
	cluster, inj, base := onSiteCluster(t, faultinject.Plan{FailFirst: 2})
	for i := 1; i <= 2; i++ {
		if _, err := cluster.ScatterFragments(context.Background(), base, countPhase(), core.Options{}); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("request %d: want ErrInjected, got %v", i, err)
		}
	}
	if _, err := cluster.ScatterFragments(context.Background(), base, countPhase(), core.Options{}); err != nil {
		t.Fatalf("request 3 must succeed, got %v", err)
	}
	if inj.Requests() != 3 || inj.Injected() != 2 {
		t.Fatalf("counters: requests=%d injected=%d, want 3/2", inj.Requests(), inj.Injected())
	}
}

func TestCustomErrAndPanicOrdering(t *testing.T) {
	sentinel := errors.New("boom")
	cluster, _, base := onSiteCluster(t, faultinject.Plan{FailFirst: 1, Err: sentinel, PanicFirst: 1})
	if _, err := cluster.ScatterFragments(context.Background(), base, countPhase(), core.Options{}); !errors.Is(err, sentinel) {
		t.Fatalf("request 1: want the custom error, got %v", err)
	}
	_, err := cluster.ScatterFragments(context.Background(), base, countPhase(), core.Options{})
	if err == nil || errors.Is(err, sentinel) {
		t.Fatalf("request 2: want the injected panic surfaced as an error, got %v", err)
	}
	if _, err := cluster.ScatterFragments(context.Background(), base, countPhase(), core.Options{}); err != nil {
		t.Fatalf("request 3 must succeed, got %v", err)
	}
}

func TestDelayRespectsContext(t *testing.T) {
	cluster, inj, base := onSiteCluster(t, faultinject.Plan{Delay: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cluster.ScatterFragments(ctx, base, countPhase(), core.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("delay must be cut short by the context")
	}
	if inj.Requests() != 1 {
		t.Fatalf("requests=%d, want 1", inj.Requests())
	}
}

func TestDropNthOnlyDropsThatRequest(t *testing.T) {
	cluster, inj, base := onSiteCluster(t, faultinject.Plan{DropNth: 2})
	if _, err := cluster.ScatterFragments(context.Background(), base, countPhase(), core.Options{}); err != nil {
		t.Fatalf("request 1 must pass through, got %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := cluster.ScatterFragments(ctx, base, countPhase(), core.Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("request 2 must hang until the deadline, got %v", err)
	}
	if _, err := cluster.ScatterFragments(context.Background(), base, countPhase(), core.Options{}); err != nil {
		t.Fatalf("request 3 must pass through, got %v", err)
	}
	if inj.Injected() != 1 {
		t.Fatalf("injected=%d, want 1 (only the dropped request)", inj.Injected())
	}
}
