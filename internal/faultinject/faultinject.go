// Package faultinject is a deterministic fault harness for the
// distributed emulation: it wraps a Site's evaluator so tests (and the
// example) can make a site slow, flaky, crashy, or silent on demand and
// observe how the cluster's fault policy reacts. Faults are keyed off a
// per-site request counter, never off wall-clock randomness, so every
// policy path — timeout, retry, failover, circuit breaking, partial
// degradation — is reproducible run over run.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mdjoin/internal/core"
	"mdjoin/internal/distributed"
	"mdjoin/internal/table"
)

// ErrInjected is the default error returned by FailFirst faults.
var ErrInjected = errors.New("faultinject: injected failure")

// Plan describes the faults to inject, applied in the order of the fields
// below. The request counter n is 1-based and counts every request the
// site's evaluator receives.
type Plan struct {
	// Delay is added before serving each request (cancelled early if the
	// request's context expires first).
	Delay time.Duration

	// Stall makes every request hang until its context is cancelled —
	// the "site is alive but never answers" failure a timeout must catch.
	Stall bool

	// DropNth makes request number n == DropNth hang until its context
	// is cancelled: a single lost response, recoverable by retry.
	DropNth int

	// FailFirst makes requests n <= FailFirst return Err — the transient
	// error burst a retry or failover rides out.
	FailFirst int

	// Err is the error FailFirst returns; nil means ErrInjected.
	Err error

	// PanicFirst makes requests n <= PanicFirst panic (after FailFirst is
	// exhausted) — exercising the serve loop's recover path.
	PanicFirst int
}

// Injector wraps one site's evaluator with a Plan and counts traffic.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	requests int
	injected int
}

// New returns a standalone injector applying plan to successive
// Intercept calls — for wrapping any evaluator-shaped function, not just
// a distributed site. mdserve's torture tests use it to make the query
// executor stall, fail, or panic on demand.
func New(plan Plan) *Injector {
	return &Injector{plan: plan}
}

// Wrap installs plan around the site's current evaluator and returns the
// injector for inspecting counters. Call before the site joins a cluster.
func Wrap(s *distributed.Site, plan Plan) *Injector {
	inj := New(plan)
	inner := s.Evaluator()
	s.SetEvaluator(func(ctx context.Context, base *table.Table, phases []core.Phase, opt core.Options) (*table.Table, error) {
		if err := inj.Intercept(ctx); err != nil {
			return nil, err
		}
		return inner(ctx, base, phases, opt)
	})
	return inj
}

// Requests reports how many requests the site has received.
func (inj *Injector) Requests() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.requests
}

// Injected reports how many requests were answered by a fault (error,
// panic, stall, or drop) instead of the real evaluator.
func (inj *Injector) Injected() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.injected
}

// Intercept applies the plan to one request; a nil return lets the real
// evaluator run. It counts the request, then (in order) delays, stalls
// or drops, fails, or panics per the plan.
func (inj *Injector) Intercept(ctx context.Context) error {
	inj.mu.Lock()
	inj.requests++
	n := inj.requests
	p := inj.plan
	inj.mu.Unlock()

	if p.Delay > 0 {
		t := time.NewTimer(p.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			inj.fault()
			return ctx.Err()
		}
	}
	if p.Stall || (p.DropNth > 0 && n == p.DropNth) {
		inj.fault()
		<-ctx.Done()
		return ctx.Err()
	}
	if n <= p.FailFirst {
		inj.fault()
		if p.Err != nil {
			return p.Err
		}
		return ErrInjected
	}
	if n <= p.FailFirst+p.PanicFirst {
		inj.fault()
		panic(fmt.Sprintf("faultinject: injected panic (request %d)", n))
	}
	return nil
}

func (inj *Injector) fault() {
	inj.mu.Lock()
	inj.injected++
	inj.mu.Unlock()
}
