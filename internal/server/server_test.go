package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mdjoin/internal/sqlext"
	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

// testSales is a small seeded Sales relation shared by the functional
// tests.
func testSales() *table.Table {
	return workload.Sales(workload.SalesConfig{
		Rows: 2000, Customers: 50, Products: 20,
		Years: 2, FirstYear: 1996, States: 5, Seed: 1,
	})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.RegisterTable("Sales", testSales())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends query text to /query with the given raw URL params and
// returns the status, body, and headers.
func post(t *testing.T, ts *httptest.Server, query, params string) (int, []byte, http.Header) {
	t.Helper()
	url := ts.URL + "/query"
	if params != "" {
		url += "?" + params
	}
	resp, err := http.Post(url, "text/plain", strings.NewReader(query))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, body, resp.Header
}

func decodeQuery(t *testing.T, body []byte) queryResponse {
	t.Helper()
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding envelope: %v\n%s", err, body)
	}
	return qr
}

func decodeError(t *testing.T, body []byte) errorResponse {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("decoding error envelope: %v\n%s", err, body)
	}
	return er
}

const groupQuery = "select cust, sum(sale) as total from Sales group by cust"

func TestQueryJSONEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, body, hdr := post(t, ts, groupQuery, "")
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	qr := decodeQuery(t, body)
	if qr.RequestID == "" || hdr.Get("X-Request-Id") != qr.RequestID {
		t.Errorf("request id: envelope %q, header %q", qr.RequestID, hdr.Get("X-Request-Id"))
	}
	if want := []string{"cust", "total"}; len(qr.Columns) != 2 || qr.Columns[0] != want[0] || qr.Columns[1] != want[1] {
		t.Errorf("columns = %v, want %v", qr.Columns, want)
	}
	if qr.RowCount == 0 || qr.RowCount != len(qr.Rows) {
		t.Errorf("row_count = %d with %d rows", qr.RowCount, len(qr.Rows))
	}
	if qr.CachedPlan {
		t.Error("first execution reported a cached plan")
	}
	// cust is an int column: it must arrive as a JSON number.
	if _, ok := qr.Rows[0][0].(float64); !ok {
		t.Errorf("cust value decoded as %T, want number", qr.Rows[0][0])
	}

	// Same text again: plan comes from the LRU.
	status, body, _ = post(t, ts, groupQuery, "")
	if status != http.StatusOK {
		t.Fatalf("second query status = %d", status)
	}
	if qr := decodeQuery(t, body); !qr.CachedPlan {
		t.Error("second execution did not hit the plan cache")
	}
}

func TestQueryGETAndCSV(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query?format=csv&q=" + strings.ReplaceAll(groupQuery, " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("content type = %q", ct)
	}
	out, err := table.ReadCSV(resp.Body)
	if err != nil {
		t.Fatalf("parsing CSV result: %v", err)
	}
	if out.Len() == 0 || out.Schema.Len() != 2 {
		t.Errorf("CSV result %d rows × %d cols", out.Len(), out.Schema.Len())
	}
}

func TestQueryAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, groupQuery, "analyze=1")
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	qr := decodeQuery(t, body)
	if !strings.Contains(qr.Analyze, "-- explain analyze --") {
		t.Errorf("analyze text missing header:\n%s", qr.Analyze)
	}
	if !strings.Contains(qr.Analyze, "actual rows=") {
		t.Errorf("analyze text missing runtime counters:\n%s", qr.Analyze)
	}
	if qr.Stats == nil || qr.Stats.DetailScans == 0 {
		t.Errorf("analyze envelope missing merged stats: %+v", qr.Stats)
	}
	if qr.RowCount == 0 {
		t.Error("analyze dropped the result rows")
	}
}

func TestParseErrorIs400WithPosition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "select cust frum Sales group by cust", "")
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", status, body)
	}
	er := decodeError(t, body)
	if !strings.Contains(er.Error, "offset") {
		t.Errorf("parse error lost its position: %q", er.Error)
	}
}

func TestUnknownTableIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts, "select cust, sum(sale) as total from Nope group by cust", "")
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", status, body)
	}
}

func TestBadTimeoutIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, raw := range []string{"banana", "-3s", "0"} {
		status, body, _ := post(t, ts, groupQuery, "timeout="+raw)
		if status != http.StatusBadRequest {
			t.Errorf("timeout=%q: status = %d, body %s", raw, status, body)
		}
	}
	// Millisecond shorthand and Go durations both admit.
	for _, raw := range []string{"2500", "2s"} {
		if status, body, _ := post(t, ts, groupQuery, "timeout="+raw); status != http.StatusOK {
			t.Errorf("timeout=%q: status = %d, body %s", raw, status, body)
		}
	}
}

func TestResponseRowLimitIs413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxResponseRows: 5})
	status, body, _ := post(t, ts, groupQuery, "")
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if er := decodeError(t, body); !strings.Contains(er.Error, "LIMIT") {
		t.Errorf("over-limit error should hint at LIMIT: %q", er.Error)
	}
	// A query under the cap still works.
	if status, body, _ := post(t, ts, groupQuery+" order by total desc limit 3", ""); status != http.StatusOK {
		t.Fatalf("limited query status = %d, body %s", status, body)
	}
}

func TestQueryTextLimitIs413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxQueryBytes: 64})
	status, body, _ := post(t, ts, groupQuery+" -- "+strings.Repeat("x", 200), "")
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s", status, body)
	}
}

func TestTableUploadAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	csv := "k,v\n1,10\n2,20\n1,30\n"
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/tables/T", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}

	lr, err := http.Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	var infos []struct {
		Name string `json:"name"`
		Rows int    `json:"rows"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "Sales" || infos[1].Name != "T" || infos[1].Rows != 3 {
		t.Fatalf("table list = %+v", infos)
	}

	status, body, _ := post(t, ts, "select k, sum(v) as total from T group by k", "")
	if status != http.StatusOK {
		t.Fatalf("query against uploaded table: %d %s", status, body)
	}
	if qr := decodeQuery(t, body); qr.RowCount != 2 {
		t.Errorf("row_count = %d, want 2", qr.RowCount)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Errorf("healthz = %d", c)
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Errorf("readyz = %d", c)
	}

	s.BeginDrain()
	if c := get("/healthz"); c != http.StatusOK {
		t.Errorf("healthz while draining = %d (liveness must stay up)", c)
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d", c)
	}
	status, body, hdr := post(t, ts, groupQuery, "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %d %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining rejection missing Retry-After")
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MemoryBudgetBytes: 1 << 20, MaxConcurrent: 4})
	post(t, ts, groupQuery, "")
	post(t, ts, groupQuery, "")
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Draining  bool `json:"draining"`
		Admission struct {
			QueryBudgetBytes int64 `json:"query_budget_bytes"`
			ReservedBytes    int64 `json:"reserved_bytes"`
			PeakReserved     int64 `json:"peak_reserved_bytes"`
		} `json:"admission"`
		PlanCache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"plan_cache"`
		Queries struct {
			Served uint64 `json:"served"`
		} `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries.Served != 2 || st.PlanCache.Hits != 1 || st.PlanCache.Misses != 1 {
		t.Errorf("counters: %+v", st)
	}
	if st.Admission.QueryBudgetBytes != int64(1<<20)/4 {
		t.Errorf("query budget = %d", st.Admission.QueryBudgetBytes)
	}
	if st.Admission.ReservedBytes != 0 {
		t.Errorf("reserved bytes after idle = %d, want 0", st.Admission.ReservedBytes)
	}
	if st.Admission.PeakReserved <= 0 {
		t.Errorf("peak reserved = %d, want > 0", st.Admission.PeakReserved)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	prep := func(src string) {
		p, err := sqlext.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		c.put(planKey{src: src}, p)
	}
	prep("select cust, sum(sale) as a from Sales group by cust")
	prep("select prod, sum(sale) as b from Sales group by prod")
	if _, ok := c.get(planKey{src: "select cust, sum(sale) as a from Sales group by cust"}); !ok {
		t.Fatal("first plan evicted too early")
	}
	prep("select state, sum(sale) as c from Sales group by state")
	// LRU: the prod plan (least recently used) must be gone, cust kept.
	if _, ok := c.get(planKey{src: "select prod, sum(sale) as b from Sales group by prod"}); ok {
		t.Error("LRU kept the least recently used plan past capacity")
	}
	if _, ok := c.get(planKey{src: "select cust, sum(sale) as a from Sales group by cust"}); !ok {
		t.Error("LRU evicted the recently used plan")
	}
}
