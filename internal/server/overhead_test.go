package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"mdjoin/internal/core"
	"mdjoin/internal/optimizer"
	"mdjoin/internal/sqlext"
	"mdjoin/internal/workload"
)

// TestServerOverheadGuard is the serving-layer performance tripwire: an
// E12-class aggregation (20k-row Sales detail, ~1000 result groups)
// issued through a localhost mdserve — admission, context plumbing, plan
// cache, JSON-free CSV marshalling — must stay within 2× of calling
// sqlext directly in-process. Timing comparisons are noisy, so the guard
// is opt-in via MDJOIN_BENCH_GUARD like the executor guards.
func TestServerOverheadGuard(t *testing.T) {
	if os.Getenv("MDJOIN_BENCH_GUARD") == "" {
		t.Skip("set MDJOIN_BENCH_GUARD=1 (or run `make bench`) to run the serving overhead guard")
	}

	sales := workload.Sales(workload.SalesConfig{
		Rows: 20000, Customers: 84, Products: 50,
		Years: 2, FirstYear: 1996, States: 10, Seed: 7,
	})
	const query = "select cust, month, sum(sale) as total from Sales group by cust, month"

	// Direct baseline: prepared once, executed in-process — the floor the
	// serving layers sit on.
	prep, err := sqlext.Prepare(query)
	if err != nil {
		t.Fatal(err)
	}
	cat := optimizer.Catalog{"Sales": sales}
	direct := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prep.ExecContext(nil, cat, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	s := New(Config{})
	s.RegisterTable("Sales", sales)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	url := ts.URL + "/query?format=csv"
	runServed := func() error {
		resp, err := client.Post(url, "text/plain", strings.NewReader(query))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	// Warm the plan cache so the served path measures steady state.
	if err := runServed(); err != nil {
		t.Fatal(err)
	}
	served := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := runServed(); err != nil {
				b.Fatal(err)
			}
		}
	})

	t.Logf("direct: %v, served: %v", direct, served)
	if lim := direct.NsPerOp() * 2; served.NsPerOp() > lim {
		t.Errorf("serving overhead regressed: %d ns/op > %d ns/op (direct %d × 2)",
			served.NsPerOp(), lim, direct.NsPerOp())
	}
}
