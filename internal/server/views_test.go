package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

// do issues an arbitrary request against the test server.
func do(t *testing.T, ts *httptest.Server, method, path, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// salesCSV renders a Sales delta as a CSV upload body.
func salesCSV(t *testing.T, rows *table.Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := table.WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// resultRows decodes the "rows" array of a JSON envelope into a
// canonically-ordered string form for comparison.
func resultRows(t *testing.T, body []byte) []string {
	t.Helper()
	var env struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decoding result envelope: %v\n%s", err, body)
	}
	out := make([]string, len(env.Rows))
	for i, r := range env.Rows {
		out[i] = fmt.Sprint(r)
	}
	// Order-insensitive: group-by output order is not part of the contract.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestViewMatchesQueryAcrossAppends is the end-to-end maintenance
// contract: a view answers exactly what its query answers over the
// current table state, before and after appended deltas — without the
// server ever re-running the MD-join over the full detail relation.
func TestViewMatchesQueryAcrossAppends(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const q = "select cust, sum(sale) as total, count(*) as n from Sales group by cust"

	status, body := do(t, ts, http.MethodPost, "/views/by_cust", q)
	if status != http.StatusOK {
		t.Fatalf("create view: %d %s", status, body)
	}

	check := func(stage string) {
		t.Helper()
		vs, vbody := do(t, ts, http.MethodGet, "/views/by_cust", "")
		if vs != http.StatusOK {
			t.Fatalf("%s: read view: %d %s", stage, vs, vbody)
		}
		qs, qbody, _ := post(t, ts, q, "")
		if qs != http.StatusOK {
			t.Fatalf("%s: query: %d %s", stage, qs, qbody)
		}
		got, want := resultRows(t, vbody), resultRows(t, qbody)
		if len(got) != len(want) {
			t.Fatalf("%s: view has %d rows, query has %d", stage, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d: view %s, query %s", stage, i, got[i], want[i])
			}
		}
	}
	check("initial")

	for round := 0; round < 3; round++ {
		delta := workload.Sales(workload.SalesConfig{
			Rows: 150, Customers: 50, Products: 20,
			Years: 2, FirstYear: 1996, States: 5, Seed: int64(100 + round),
		})
		as, abody := do(t, ts, http.MethodPut, "/tables/Sales/append", salesCSV(t, delta))
		if as != http.StatusOK {
			t.Fatalf("append round %d: %d %s", round, as, abody)
		}
		var ar struct {
			RowsAppended int      `json:"rows_appended"`
			ViewsUpdated []string `json:"views_updated"`
		}
		if err := json.Unmarshal(abody, &ar); err != nil {
			t.Fatal(err)
		}
		if ar.RowsAppended != 150 || len(ar.ViewsUpdated) != 1 || ar.ViewsUpdated[0] != "by_cust" {
			t.Fatalf("append round %d response: %s", round, abody)
		}
		check(fmt.Sprintf("after append %d", round))
	}

	// The surrounding plan (projection renaming, order, limit) executes
	// over the materialized snapshot too.
	status, body = do(t, ts, http.MethodPost, "/views/top",
		"select cust, sum(sale) as total from Sales group by cust order by total desc limit 3")
	if status != http.StatusOK {
		t.Fatalf("create ordered view: %d %s", status, body)
	}
	vs, vbody := do(t, ts, http.MethodGet, "/views/top", "")
	if vs != http.StatusOK {
		t.Fatalf("read ordered view: %d %s", vs, vbody)
	}
	var env struct {
		Rows [][]any `json:"rows"`
	}
	if err := json.Unmarshal(vbody, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Rows) != 3 {
		t.Fatalf("limit 3 view returned %d rows", len(env.Rows))
	}

	// Lifecycle: list, delete, gone.
	ls, lbody := do(t, ts, http.MethodGet, "/views", "")
	if ls != http.StatusOK || !strings.Contains(string(lbody), "by_cust") || !strings.Contains(string(lbody), "top") {
		t.Fatalf("list views: %d %s", ls, lbody)
	}
	if ds, _ := do(t, ts, http.MethodDelete, "/views/top", ""); ds != http.StatusOK {
		t.Fatalf("delete view: %d", ds)
	}
	if gs, _ := do(t, ts, http.MethodGet, "/views/top", ""); gs != http.StatusNotFound {
		t.Fatalf("deleted view answered %d", gs)
	}
}

// TestViewValidation pins the creation and append guardrails.
func TestViewValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxViews: 2})

	cases := map[string]struct {
		path, body string
		status     int
	}{
		"no md-join": {"/views/v", "select cust from Sales", http.StatusBadRequest},
		"with":       {"/views/v", "with s as (select cust, sale from Sales) select cust, sum(sale) as t from s group by cust", http.StatusBadRequest},
		"bad table":  {"/views/v", "select cust, sum(sale) as t from Nope group by cust", http.StatusBadRequest},
		"parse":      {"/views/v", "selec nothing", http.StatusBadRequest},
	}
	for name, c := range cases {
		if status, body := do(t, ts, http.MethodPost, c.path, c.body); status != c.status {
			t.Errorf("%s: status %d (want %d): %s", name, status, c.status, body)
		}
	}

	const q = "select cust, sum(sale) as total from Sales group by cust"
	if status, body := do(t, ts, http.MethodPost, "/views/a", q); status != http.StatusOK {
		t.Fatalf("create: %d %s", status, body)
	}
	if status, _ := do(t, ts, http.MethodPost, "/views/a", q); status != http.StatusConflict {
		t.Errorf("duplicate view name not refused with 409 (got %d)", status)
	}
	if status, body := do(t, ts, http.MethodPost, "/views/b", q); status != http.StatusOK {
		t.Fatalf("create second: %d %s", status, body)
	}
	if status, _ := do(t, ts, http.MethodPost, "/views/c", q); status != http.StatusConflict {
		t.Errorf("view over MaxViews not refused with 409 (got %d)", status)
	}

	// Appends: unknown table, schema mismatch.
	if status, _ := do(t, ts, http.MethodPut, "/tables/Nope/append", "a,b\n1,2\n"); status != http.StatusNotFound {
		t.Errorf("append to unknown table answered %d, want 404", status)
	}
	if status, _ := do(t, ts, http.MethodPut, "/tables/Sales/append", "a,b\n1,2\n"); status != http.StatusBadRequest {
		t.Errorf("schema-mismatched append answered %d, want 400", status)
	}
}

// TestViewBudgetEviction: a view over a holistic aggregate grows with its
// inputs (agg.Sized accounting); crossing the per-view budget evicts the
// view at append time instead of letting maintenance state grow without
// bound. Creation over the budget is refused outright.
func TestViewBudgetEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxViews: 4, ViewPoolBytes: 4 * 600_000})
	const q = "select cust, median(sale) as med from Sales group by cust"

	status, body := do(t, ts, http.MethodPost, "/views/med", q)
	if status != http.StatusOK {
		t.Fatalf("create: %d %s", status, body)
	}

	// Feed deltas until the retained multisets cross the ~600KB share.
	evicted := false
	for round := 0; round < 40 && !evicted; round++ {
		delta := workload.Sales(workload.SalesConfig{
			Rows: 4000, Customers: 50, Seed: int64(round),
		})
		as, abody := do(t, ts, http.MethodPut, "/tables/Sales/append", salesCSV(t, delta))
		if as != http.StatusOK {
			t.Fatalf("append: %d %s", as, abody)
		}
		var ar struct {
			ViewsEvicted []string `json:"views_evicted"`
		}
		if err := json.Unmarshal(abody, &ar); err != nil {
			t.Fatal(err)
		}
		evicted = len(ar.ViewsEvicted) > 0
	}
	if !evicted {
		t.Fatal("over-budget view was never evicted")
	}
	if status, _ := do(t, ts, http.MethodGet, "/views/med", ""); status != http.StatusNotFound {
		t.Errorf("evicted view still answers (%d)", status)
	}
	if s.m.viewsEvicted.Load() == 0 {
		t.Error("eviction counter did not move")
	}

	// A view whose backfill alone exceeds the budget is refused at birth.
	tiny, tinyTS := New(Config{MaxViews: 4, ViewPoolBytes: 4 * 1024}), (*httptest.Server)(nil)
	tiny.RegisterTable("Sales", testSales())
	tinyTS = httptest.NewServer(tiny.Handler())
	defer tinyTS.Close()
	if status, body := do(t, tinyTS, http.MethodPost, "/views/med", q); status != http.StatusRequestEntityTooLarge {
		t.Errorf("over-budget creation answered %d (want 413): %s", status, body)
	}
}

// TestAppendIsCopyOnWrite: a table snapshot taken before an append (as an
// in-flight query would) must not observe the appended rows.
func TestAppendIsCopyOnWrite(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	before, err := s.snapshot().Lookup("Sales")
	if err != nil {
		t.Fatal(err)
	}
	nBefore := before.Len()
	delta := workload.Sales(workload.SalesConfig{Rows: 100, Customers: 50, Seed: 77})
	if status, body := do(t, ts, http.MethodPut, "/tables/Sales/append", salesCSV(t, delta)); status != http.StatusOK {
		t.Fatalf("append: %d %s", status, body)
	}
	if before.Len() != nBefore {
		t.Fatalf("pre-append snapshot grew from %d to %d rows", nBefore, before.Len())
	}
	after, err := s.snapshot().Lookup("Sales")
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != nBefore+100 {
		t.Fatalf("post-append table has %d rows, want %d", after.Len(), nBefore+100)
	}
}

// TestViewStatsAndDrain: /stats carries the views block, and mutating
// view/append endpoints refuse during drain while reads keep working.
func TestViewStatsAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const q = "select cust, sum(sale) as total from Sales group by cust"
	if status, body := do(t, ts, http.MethodPost, "/views/v", q); status != http.StatusOK {
		t.Fatalf("create: %d %s", status, body)
	}
	delta := workload.Sales(workload.SalesConfig{Rows: 10, Customers: 50, Seed: 9})
	if status, _ := do(t, ts, http.MethodPut, "/tables/Sales/append", salesCSV(t, delta)); status != http.StatusOK {
		t.Fatal("append failed")
	}

	status, body := do(t, ts, http.MethodGet, "/stats", "")
	if status != http.StatusOK {
		t.Fatalf("/stats: %d", status)
	}
	var st struct {
		Views struct {
			Count   int    `json:"count"`
			Appends uint64 `json:"appends"`
		} `json:"views"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Views.Count != 1 || st.Views.Appends != 1 {
		t.Fatalf("views stats = %+v, body %s", st.Views, body)
	}

	s.BeginDrain()
	if status, _ := do(t, ts, http.MethodPost, "/views/w", q); status != http.StatusServiceUnavailable {
		t.Errorf("view creation during drain answered %d", status)
	}
	if status, _ := do(t, ts, http.MethodPut, "/tables/Sales/append", salesCSV(t, delta)); status != http.StatusServiceUnavailable {
		t.Errorf("append during drain answered %d", status)
	}
	if status, _ := do(t, ts, http.MethodGet, "/views/v", ""); status != http.StatusOK {
		t.Errorf("view read during drain answered %d", status)
	}
}
