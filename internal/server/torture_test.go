package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mdjoin/internal/faultinject"
)

// The torture suite drives the server through its failure modes with the
// deterministic faultinject harness wired into the exec hook: stalled
// executors must surface as deadline 504s, injected panics as isolated
// 500s, admission storms as 429 shedding with exact byte accounting, and
// drain-under-load as a clean shutdown with no leaked goroutines.

// checkGoroutines snapshots the goroutine count and returns a closure
// that fails the test if the count has not settled back by the deadline.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	runtime.GC()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d goroutines, %d at start\n%s",
					runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestStalledQueryHitsDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inj := faultinject.New(faultinject.Plan{Stall: true})
	s.setExecHook(inj.Intercept)

	start := time.Now()
	status, body, _ := post(t, ts, groupQuery, "timeout=100ms")
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("stalled query: status = %d, body %s", status, body)
	}
	if elapsed < 100*time.Millisecond {
		t.Errorf("stalled query answered in %v, before its 100ms deadline", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("stalled query took %v; the deadline did not cut it off", elapsed)
	}
	if inj.Injected() != 1 {
		t.Errorf("injector faulted %d times, want 1", inj.Injected())
	}

	// The stall consumed one request, not the server: with the hook gone
	// the next query runs normally.
	s.setExecHook(nil)
	if status, body, _ := post(t, ts, groupQuery, ""); status != http.StatusOK {
		t.Fatalf("post-stall query: status = %d, body %s", status, body)
	}
}

func TestPanicIsIsolatedPerRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inj := faultinject.New(faultinject.Plan{PanicFirst: 1})
	s.setExecHook(inj.Intercept)

	// Five concurrent queries; exactly the injector's first victim gets a
	// 500, the other four complete normally while it unwinds.
	const n = 5
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i], _ = post(t, ts, groupQuery, "")
		}(i)
	}
	wg.Wait()

	var oks, fails int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			oks++
		case http.StatusInternalServerError:
			fails++
			er := decodeError(t, bodies[i])
			if !strings.Contains(er.Error, "panicked") || !strings.Contains(er.Error, er.RequestID) {
				t.Errorf("panic response should carry the panic and its request id: %+v", er)
			}
		default:
			t.Errorf("query %d: unexpected status %d: %s", i, st, bodies[i])
		}
	}
	if fails != 1 || oks != n-1 {
		t.Fatalf("want exactly 1 panic failure and %d successes, got %d/%d", n-1, fails, oks)
	}
	if got := s.m.panics.Load(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}

	// The server keeps serving after the panic.
	if status, body, _ := post(t, ts, groupQuery, ""); status != http.StatusOK {
		t.Fatalf("post-panic query: status = %d, body %s", status, body)
	}
}

func TestBudgetStormShedsAndAccountsToZero(t *testing.T) {
	const pool = 1 << 20
	s, ts := newTestServer(t, Config{
		MaxConcurrent:     2,
		MemoryBudgetBytes: pool,
		AdmitWait:         20 * time.Millisecond,
	})
	// Every admitted query holds its slot (and byte share) for 150ms, so
	// a 12-query burst over 2 slots must shed most of the field.
	inj := faultinject.New(faultinject.Plan{Delay: 150 * time.Millisecond})
	s.setExecHook(inj.Intercept)

	const n = 12
	statuses := make([]int, n)
	headers := make([]http.Header, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, headers[i] = post(t, ts, groupQuery, "")
		}(i)
	}
	wg.Wait()

	var served, shed int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			shed++
			if headers[i].Get("Retry-After") == "" {
				t.Error("429 missing Retry-After")
			}
		default:
			t.Errorf("query %d: unexpected status %d", i, st)
		}
	}
	if served < 2 {
		t.Errorf("storm served %d queries, want ≥ 2 (the slot count)", served)
	}
	if shed == 0 {
		t.Error("storm shed nothing; admission control is not bounding the burst")
	}

	// Accounting: the pool must return to zero, and the high-water mark
	// must show real carving without ever exceeding the pool.
	if used := s.adm.usedBytes(); used != 0 {
		t.Errorf("reserved bytes after storm = %d, want 0", used)
	}
	if s.adm.active() != 0 {
		t.Errorf("active slots after storm = %d, want 0", s.adm.active())
	}
	peak := s.adm.peak()
	if peak <= 0 || peak > pool {
		t.Errorf("peak reserved = %d, want in (0, %d]", peak, pool)
	}
	if share := int64(s.QueryBudgetBytes()); peak%share != 0 {
		t.Errorf("peak %d is not a multiple of the per-query share %d", peak, share)
	}
}

func TestOversizedBudgetIs413(t *testing.T) {
	// A pool smaller than one per-query share cannot exist through
	// Config (the share is pool/slots), so drive admission directly.
	a := newAdmission(2, 100)
	if _, err := a.acquire(context.Background(), 101, time.Millisecond); err != ErrBudgetTooLarge {
		t.Fatalf("oversized acquire: err = %v, want ErrBudgetTooLarge", err)
	}
}

func TestDrainUnderLoadCancelsInFlight(t *testing.T) {
	settle := checkGoroutines(t)

	s := New(Config{DrainTimeout: 50 * time.Millisecond})
	s.RegisterTable("Sales", testSales())
	ts := httptest.NewServer(s.Handler())
	inj := faultinject.New(faultinject.Plan{Delay: 30 * time.Second})
	s.setExecHook(inj.Intercept)

	const n = 3
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, _ = post(t, ts, groupQuery, "timeout=60s")
		}(i)
	}
	// Wait until all three are provably in flight.
	for deadline := time.Now().Add(5 * time.Second); s.active.Load() < n; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d queries in flight", s.active.Load())
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	cancelled, err := s.Drain(context.Background())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if cancelled != n {
		t.Errorf("drain cancelled %d queries, want %d", cancelled, n)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond || waited > 5*time.Second {
		t.Errorf("drain took %v, want ≥ the 50ms grace and well under the queries' 30s delay", waited)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusServiceUnavailable {
			t.Errorf("query %d: status %d, want 503 (cancelled by drain)", i, st)
		}
	}

	// New work is refused after the drain.
	if status, _, _ := post(t, ts, groupQuery, ""); status != http.StatusServiceUnavailable {
		t.Errorf("post-drain query: status = %d, want 503", status)
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	settle()
}

func TestDrainLetsInFlightFinish(t *testing.T) {
	settle := checkGoroutines(t)

	s := New(Config{DrainTimeout: 10 * time.Second})
	s.RegisterTable("Sales", testSales())
	ts := httptest.NewServer(s.Handler())
	inj := faultinject.New(faultinject.Plan{Delay: 100 * time.Millisecond})
	s.setExecHook(inj.Intercept)

	const n = 3
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, _ = post(t, ts, groupQuery, "")
		}(i)
	}
	for deadline := time.Now().Add(5 * time.Second); s.active.Load() < n; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d queries in flight", s.active.Load())
		}
		time.Sleep(time.Millisecond)
	}

	cancelled, err := s.Drain(context.Background())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if cancelled != 0 {
		t.Errorf("graceful drain cancelled %d queries, want 0", cancelled)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("query %d: status %d, want 200 (finished within the grace)", i, st)
		}
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	settle()
}
