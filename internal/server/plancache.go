package server

import (
	"container/list"
	"sync"

	"mdjoin/internal/sqlext"
)

// planKey identifies a cached plan: the exact query text plus every
// request option that feeds plan construction or stamping-time strategy
// choices. Caching on text alone once returned a plan optimized under one
// request's memory budget to a request running with a different share
// (config reloads change the carve), and conflated analyze and plain
// executions of the same text; keying on the full tuple keeps a hit
// exactly as good as a fresh Prepare for that request.
type planKey struct {
	src         string
	analyze     bool
	budgetBytes int
}

// planCache is an LRU over prepared plans keyed by planKey, so repeated
// queries skip the parse/translate/optimize front end. Entries are
// *sqlext.Prepared, which are immutable and safe to share across
// concurrent requests (every execution clones the plan before stamping
// per-request options), so a cache hit costs one map lookup and a list
// splice under a mutex.
type planCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[planKey]*list.Element

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key  planKey
	prep *sqlext.Prepared
}

// newPlanCache returns a cache holding at most max plans; max < 1
// disables caching (every get misses, puts are dropped).
func newPlanCache(max int) *planCache {
	return &planCache{
		max:   max,
		ll:    list.New(),
		byKey: make(map[planKey]*list.Element),
	}
}

func (c *planCache) get(key planKey) (*sqlext.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).prep, true
	}
	c.misses++
	return nil, false
}

func (c *planCache) put(key planKey, prep *sqlext.Prepared) {
	if c.max < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).prep = prep
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, prep: prep})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *planCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
