// Package server implements mdserve's query service: a stdlib-only
// HTTP/JSON front end that accepts analyze-by dialect queries against
// registered catalogs and is engineered first for robustness under
// hostile conditions — slow queries, overload storms, panicking
// aggregates, and shutdown under load.
//
// The hardening layers, outermost first:
//
//   - Per-query deadlines: every request derives a context from the HTTP
//     request with a server-default (or ?timeout=) deadline, threaded
//     into Options.Ctx so detail scans abort mid-flight at expiry (504).
//   - Admission control: a slot semaphore bounds concurrent queries and
//     a server-wide memory pool carves each admitted query's
//     MemoryBudgetBytes (core.BudgetShare), so the sum of in-flight
//     budgets never exceeds the pool. A query that cannot be admitted
//     waits a bounded time, then is shed with 429 + Retry-After; a query
//     whose budget exceeds the entire pool gets 413.
//   - Failure isolation: each request recovers its own panics into a 500
//     carrying the request ID while the server keeps serving; parse and
//     translate errors come back 400 with the parser's positions;
//     response size is bounded.
//   - Graceful drain: BeginDrain stops admitting new queries (503 +
//     Retry-After, /readyz flips), Drain waits for in-flight queries up
//     to the drain deadline and then cancels the stragglers through the
//     same context plumbing; /healthz and /readyz expose the lifecycle.
//
// A plan LRU keyed by query text caches sqlext.Prepared plans (immutable
// and shared; every execution clones before stamping per-request
// options), so the steady-state request cost is admission + execution.
package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mdjoin/internal/core"
	"mdjoin/internal/optimizer"
	"mdjoin/internal/table"
)

// Config carries the server's robustness knobs. The zero value is usable:
// every field has a production-shaped default applied by New.
type Config struct {
	// MaxConcurrent bounds how many queries execute at once; further
	// admissions queue (bounded by AdmitWait) and then shed. Default 8.
	MaxConcurrent int

	// MemoryBudgetBytes is the server-wide aggregate-state pool. Each
	// admitted query reserves its share (pool / MaxConcurrent, the
	// core.BudgetShare carve) and runs with that MemoryBudgetBytes, so
	// concurrent queries never budget past the pool in sum. 0 disables
	// byte accounting (slot-only admission, unbounded query memory).
	MemoryBudgetBytes int64

	// DefaultTimeout is the per-query deadline when the request does not
	// pass ?timeout=. Default 30s.
	DefaultTimeout time.Duration

	// MaxTimeout caps ?timeout= so a client cannot opt out of deadlines.
	// Default 5m.
	MaxTimeout time.Duration

	// AdmitWait bounds how long an un-admittable query queues for a slot
	// and memory share before being shed with 429. Default 100ms.
	AdmitWait time.Duration

	// DrainTimeout is how long Drain waits for in-flight queries before
	// cancelling them. Default 10s.
	DrainTimeout time.Duration

	// MaxQueryBytes caps the query text size (413 beyond). Default 1MiB.
	MaxQueryBytes int64

	// MaxUploadBytes caps a CSV table upload (413 beyond). Default 64MiB.
	MaxUploadBytes int64

	// MaxResponseRows caps result cardinality: larger results are refused
	// with 413 and a hint to add a LIMIT clause, instead of streaming an
	// unbounded payload. Default 1,000,000.
	MaxResponseRows int

	// PlanCacheSize bounds the prepared-plan LRU. Default 128; negative
	// disables caching.
	PlanCacheSize int

	// ShareWindow enables cross-query shared scans: queries arriving
	// within this window whose MD-joins target the same detail relation
	// run as one merged scan (core.SharedExecutor). Every query pays up
	// to ShareWindow of extra latency in exchange for one detail scan per
	// relation per window under concurrency. 0 (the default) disables
	// sharing — it is an explicit opt-in (mdserve's -share-window flag)
	// because the window tax is a bad deal for an idle server.
	ShareWindow time.Duration

	// MaxViews bounds how many materialized views the server maintains
	// (POST /views/{name}); further creations are refused with 409.
	// Default 16.
	MaxViews int

	// ViewPoolBytes is the server-wide memory pool for materialized
	// views. Each view may grow to its share (pool / MaxViews, the same
	// core.BudgetShare carve admission uses); an append that pushes a view
	// past its share evicts the view rather than let maintenance state
	// grow unboundedly. 0 disables view byte accounting.
	ViewPoolBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.AdmitWait <= 0 {
		c.AdmitWait = 100 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxQueryBytes <= 0 {
		c.MaxQueryBytes = 1 << 20
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.MaxResponseRows <= 0 {
		c.MaxResponseRows = 1_000_000
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 128
	}
	if c.MaxViews <= 0 {
		c.MaxViews = 16
	}
	return c
}

// metrics are the server's lifetime counters, exposed by /stats.
type metrics struct {
	served    atomic.Uint64 // queries answered 200
	failed    atomic.Uint64 // 4xx/5xx answers of any kind
	shed      atomic.Uint64 // 429 overload rejections
	tooLarge  atomic.Uint64 // 413 rejections (query size, budget, result size)
	timedOut  atomic.Uint64 // 504 deadline expiries
	cancelled atomic.Uint64 // 503 drain/client cancellations
	panics    atomic.Uint64 // recovered query panics (500)

	appends      atomic.Uint64 // accepted /tables/{name}/append batches
	viewsEvicted atomic.Uint64 // views dropped by failed or over-budget maintenance
}

// Server is the query service. Create with New, expose via Handler, shut
// down with BeginDrain + Drain.
type Server struct {
	cfg   Config
	adm   *admission
	plans *planCache
	mux   *http.ServeMux

	// shared is the cross-query shared-scan coordinator (nil when
	// Config.ShareWindow is zero): concurrent queries over one detail
	// relation merge into a single scan, composing with admission (each
	// query still holds its slot and budget share) and with per-request
	// cancellation (a dead caller is evicted from the merged scan).
	shared *core.SharedExecutor

	// baseCtx is the ancestor of every query context; cancelAll fires at
	// the drain deadline and propagates into in-flight scans.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu    sync.Mutex // guards cat (copy-on-write: handlers snapshot) and views
	cat   optimizer.Catalog
	views map[string]*view

	// appendMu serializes table appends and view creation: the catalog
	// extension and every dependent view fold commit as one unit, so a
	// view is never offset from its detail table's row stream.
	appendMu sync.Mutex

	draining atomic.Bool
	active   atomic.Int64 // queries past the drain gate, not yet done
	reqSeq   atomic.Uint64

	m metrics

	// execHook, when non-nil, runs immediately before each query executes
	// — the seam the torture tests use (via faultinject.Intercept) to
	// stall, fail, or panic the executor on demand. Guarded by mu so
	// tests can swap it under live traffic.
	execHook func(ctx context.Context) error
}

// setExecHook installs (or clears) the pre-execution hook.
func (s *Server) setExecHook(fn func(ctx context.Context) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.execHook = fn
}

func (s *Server) hook() func(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execHook
}

// New builds a Server with cfg (zero fields defaulted) and an empty
// catalog.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		adm:   newAdmission(cfg.MaxConcurrent, cfg.MemoryBudgetBytes),
		plans: newPlanCache(cfg.PlanCacheSize),
		cat:   optimizer.Catalog{},
	}
	if cfg.ShareWindow > 0 {
		s.shared = core.NewSharedExecutor(cfg.ShareWindow, 0)
	}
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /tables", s.handleListTables)
	s.mux.HandleFunc("POST /tables/{name}", s.handlePutTable)
	s.mux.HandleFunc("PUT /tables/{name}", s.handlePutTable)
	s.mux.HandleFunc("POST /tables/{name}/append", s.handleAppendTable)
	s.mux.HandleFunc("PUT /tables/{name}/append", s.handleAppendTable)
	s.mux.HandleFunc("GET /views", s.handleListViews)
	s.mux.HandleFunc("POST /views/{name}", s.handleCreateView)
	s.mux.HandleFunc("PUT /views/{name}", s.handleCreateView)
	s.mux.HandleFunc("GET /views/{name}", s.handleReadView)
	s.mux.HandleFunc("DELETE /views/{name}", s.handleDeleteView)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// ServeHTTP serves the API with a last-resort recovery wrapper: a panic
// outside the query execution path (marshalling, handler bugs) answers
// 500 instead of killing the connection's goroutine state machine.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			s.m.panics.Add(1)
			// Best effort: if the handler already wrote, this is a no-op.
			http.Error(w, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s }

// RegisterTable publishes (or replaces) a relation in the catalog. The
// catalog is copy-on-write: in-flight queries keep the snapshot they
// started with.
func (s *Server) RegisterTable(name string, t *table.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make(optimizer.Catalog, len(s.cat)+1)
	for k, v := range s.cat {
		next[k] = v
	}
	next[name] = t
	s.cat = next
}

// snapshot returns the current catalog map; callers must not mutate it.
func (s *Server) snapshot() optimizer.Catalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cat
}

// QueryBudgetBytes reports the per-query memory share admission reserves
// — what each admitted query runs with as MemoryBudgetBytes.
func (s *Server) QueryBudgetBytes() int {
	return core.BudgetShare(s.cfg.MemoryBudgetBytes, s.cfg.MaxConcurrent)
}

// Draining reports whether the server has stopped admitting queries.
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain stops admitting new queries: /query answers 503 +
// Retry-After and /readyz flips to 503. In-flight queries continue.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain gracefully shuts down query processing: it calls BeginDrain,
// waits up to Config.DrainTimeout for in-flight queries to finish, then
// cancels the stragglers through the shared base context and waits for
// them to unwind. It returns how many queries had to be cancelled (0
// means a fully graceful drain). ctx aborts the grace wait early (the
// stragglers are still cancelled and awaited). An error means cancelled
// queries failed to unwind — a stuck executor, which the context-poll
// machinery is supposed to make impossible.
func (s *Server) Drain(ctx context.Context) (cancelledQueries int, err error) {
	s.BeginDrain()
	grace := time.NewTimer(s.cfg.DrainTimeout)
	defer grace.Stop()
wait:
	for s.active.Load() > 0 {
		select {
		case <-grace.C:
			break wait
		case <-ctx.Done():
			break wait
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancelledQueries = int(s.active.Load())
	s.cancelAll()
	// Cancelled queries abort at the next context poll; give them a hard
	// bound to unwind so a wedged executor surfaces as an error instead
	// of hanging shutdown forever.
	deadline := time.Now().Add(10 * time.Second)
	for s.active.Load() > 0 {
		if time.Now().After(deadline) {
			return cancelledQueries, fmt.Errorf("server: %d queries still running after drain cancellation", s.active.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cancelledQueries, nil
}

// nextRequestID returns a process-unique request identifier, echoed in
// the X-Request-Id header and every JSON envelope so a panic report can
// be correlated with server logs.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("q%08d", s.reqSeq.Add(1))
}
