package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission errors, mapped to HTTP statuses by the query handler.
var (
	// ErrOverloaded means the bounded queue wait expired with no free
	// slot or memory share — the query is shed (429 + Retry-After).
	ErrOverloaded = errors.New("server: overloaded; admission wait exceeded")
	// ErrBudgetTooLarge means a single query's memory budget exceeds the
	// entire server-wide pool: it can never be admitted (413).
	ErrBudgetTooLarge = errors.New("server: query memory budget exceeds the server-wide pool")
)

// admission is the server's admission controller: a counting semaphore
// over concurrent queries plus a byte pool from which each admitted
// query reserves its MemoryBudgetBytes — the server-side application of
// Theorem 4.1's bounded-memory evaluation. A query that cannot get both
// a slot and its byte share immediately waits (bounded) for releases,
// then sheds. The pool guarantees by construction that the sum of
// admitted budgets never exceeds the configured server-wide budget;
// peakBytes records the high-water mark so tests can assert it.
type admission struct {
	maxSlots int
	maxBytes int64 // 0 → slot-only admission, no byte accounting

	mu        sync.Mutex
	slots     int
	bytes     int64 // free bytes of the pool
	peakBytes int64
	waitCh    chan struct{} // closed and replaced on every release
}

func newAdmission(slots int, poolBytes int64) *admission {
	if slots < 1 {
		slots = 1
	}
	if poolBytes < 0 {
		poolBytes = 0
	}
	return &admission{
		maxSlots: slots,
		maxBytes: poolBytes,
		slots:    slots,
		bytes:    poolBytes,
		waitCh:   make(chan struct{}),
	}
}

// acquire blocks until a concurrency slot and need bytes of the pool are
// both available, waiting at most wait; the returned release is
// idempotent. A ctx cancellation while queued returns ctx.Err() (the
// query's deadline expired before it was admitted).
func (a *admission) acquire(ctx context.Context, need int64, wait time.Duration) (release func(), err error) {
	if need < 0 {
		need = 0
	}
	if a.maxBytes > 0 && need > a.maxBytes {
		return nil, ErrBudgetTooLarge
	}
	var timeout <-chan time.Time
	for {
		a.mu.Lock()
		if a.slots > 0 && (a.maxBytes == 0 || a.bytes >= need) {
			a.slots--
			if a.maxBytes > 0 {
				a.bytes -= need
				if used := a.maxBytes - a.bytes; used > a.peakBytes {
					a.peakBytes = used
				}
			}
			a.mu.Unlock()
			var once sync.Once
			return func() { once.Do(func() { a.release(need) }) }, nil
		}
		ch := a.waitCh
		a.mu.Unlock()
		if timeout == nil {
			t := time.NewTimer(wait)
			defer t.Stop()
			timeout = t.C
		}
		select {
		case <-ch:
			// A release fired; retry.
		case <-timeout:
			return nil, ErrOverloaded
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (a *admission) release(need int64) {
	a.mu.Lock()
	a.slots++
	if a.maxBytes > 0 {
		a.bytes += need
	}
	close(a.waitCh)
	a.waitCh = make(chan struct{})
	a.mu.Unlock()
}

// usedBytes reports the bytes currently reserved by admitted queries.
func (a *admission) usedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.maxBytes == 0 {
		return 0
	}
	return a.maxBytes - a.bytes
}

// peak reports the high-water mark of reserved bytes.
func (a *admission) peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peakBytes
}

// active reports how many slots are currently held.
func (a *admission) active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxSlots - a.slots
}
