package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, a *admission, need int64) func() {
	t.Helper()
	release, err := a.acquire(context.Background(), need, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("acquire(%d): %v", need, err)
	}
	return release
}

func TestAdmissionSlotsAndBytes(t *testing.T) {
	a := newAdmission(2, 100)
	r1 := mustAcquire(t, a, 50)
	r2 := mustAcquire(t, a, 50)
	if used := a.usedBytes(); used != 100 {
		t.Errorf("used = %d, want 100", used)
	}

	// No slot and no bytes left: the bounded wait expires into shedding.
	if _, err := a.acquire(context.Background(), 50, 10*time.Millisecond); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full acquire: err = %v, want ErrOverloaded", err)
	}

	r1()
	r3 := mustAcquire(t, a, 50)
	r2()
	r3()
	if used, active := a.usedBytes(), a.active(); used != 0 || active != 0 {
		t.Errorf("after release: used = %d, active = %d, want 0/0", used, active)
	}
	if peak := a.peak(); peak != 100 {
		t.Errorf("peak = %d, want 100", peak)
	}
}

func TestAdmissionReleaseIsIdempotent(t *testing.T) {
	a := newAdmission(1, 100)
	release := mustAcquire(t, a, 100)
	release()
	release() // double release must not free a second slot or share
	if used, active := a.usedBytes(), a.active(); used != 0 || active != 0 {
		t.Errorf("after double release: used = %d, active = %d", used, active)
	}
	r := mustAcquire(t, a, 100)
	if _, err := a.acquire(context.Background(), 100, 5*time.Millisecond); !errors.Is(err, ErrOverloaded) {
		t.Errorf("slot leaked by double release: err = %v", err)
	}
	r()
}

func TestAdmissionQueuedWaiterAdmitsOnRelease(t *testing.T) {
	a := newAdmission(1, 0)
	release := mustAcquire(t, a, 0)
	got := make(chan error, 1)
	go func() {
		r, err := a.acquire(context.Background(), 0, 5*time.Second)
		if err == nil {
			r()
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter queue
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never admitted after release")
	}
}

func TestAdmissionCtxCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 0)
	release := mustAcquire(t, a, 0)
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := a.acquire(ctx, 0, 10*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel: err = %v, want context.Canceled", err)
	}
}

// TestAdmissionPeakNeverExceedsPool hammers the pool from many
// goroutines and asserts the invariant the carve exists for: the sum of
// admitted budgets (tracked by the high-water mark) never passes the
// pool.
func TestAdmissionPeakNeverExceedsPool(t *testing.T) {
	const (
		pool  = 1000
		slots = 4
		need  = pool / slots
	)
	a := newAdmission(slots, pool)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.acquire(context.Background(), need, 10*time.Second)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
			release()
		}()
	}
	wg.Wait()
	if used := a.usedBytes(); used != 0 {
		t.Errorf("used after storm = %d, want 0", used)
	}
	if peak := a.peak(); peak <= 0 || peak > pool {
		t.Errorf("peak = %d, want in (0, %d]", peak, pool)
	}
}
