package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mdjoin/internal/core"
	"mdjoin/internal/sqlext"
	"mdjoin/internal/table"
)

// queryResponse is the JSON envelope of a successful query.
type queryResponse struct {
	RequestID   string      `json:"request_id"`
	Columns     []string    `json:"columns"`
	Rows        [][]any     `json:"rows"`
	RowCount    int         `json:"row_count"`
	ElapsedMs   float64     `json:"elapsed_ms"`
	CachedPlan  bool        `json:"cached_plan"`
	BudgetBytes int         `json:"budget_bytes,omitempty"`
	Stats       *core.Stats `json:"stats,omitempty"`
	Analyze     string      `json:"analyze,omitempty"`
}

// errorResponse is the JSON envelope of a failed query.
type errorResponse struct {
	RequestID string `json:"request_id"`
	Status    int    `json:"status"`
	Error     string `json:"error"`
}

// panicError marks a recovered query panic so the status mapper can
// distinguish "the executor blew up" (500, server's fault) from ordinary
// query errors (400, client's fault).
type panicError struct{ val any }

func (e panicError) Error() string {
	return fmt.Sprintf("query panicked: %v", e.val)
}

// handleQuery serves /query: the query text comes from ?q= (GET) or the
// request body (POST); ?timeout= overrides the default deadline,
// ?analyze=1 adds the EXPLAIN ANALYZE rendering, ?stats=1 adds the
// merged per-query Stats, ?format=csv returns bare CSV instead of the
// JSON envelope.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := s.nextRequestID()
	w.Header().Set("X-Request-Id", id)

	if s.draining.Load() {
		s.refuse(w, id, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Register as in-flight before re-checking the drain flag: Drain's
	// wait loop only sees queries that are already counted, so a query
	// racing BeginDrain either rejects itself here or is waited for.
	s.active.Add(1)
	defer s.active.Add(-1)
	if s.draining.Load() {
		s.refuse(w, id, http.StatusServiceUnavailable, "server is draining")
		return
	}

	src, ok := s.readQueryText(w, r, id)
	if !ok {
		return
	}
	params := r.URL.Query()
	timeout, err := s.queryTimeout(params.Get("timeout"))
	if err != nil {
		s.refuse(w, id, http.StatusBadRequest, err.Error())
		return
	}

	// The query context: the client connection (r.Context) bounded by the
	// deadline, additionally cancelled when the drain deadline fires.
	qctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	analyze := isOn(params.Get("analyze"))
	budget := s.QueryBudgetBytes()
	prep, cached, err := s.preparePlan(planKey{src: src, analyze: analyze, budgetBytes: budget})
	if err != nil {
		s.refuse(w, id, http.StatusBadRequest, err.Error())
		return
	}

	release, err := s.adm.acquire(qctx, int64(budget), s.cfg.AdmitWait)
	if err != nil {
		s.refuseErr(w, id, err)
		return
	}
	defer release()

	wantStats := analyze || isOn(params.Get("stats"))
	stats := &core.Stats{}
	opt := core.Options{MemoryBudgetBytes: budget, Shared: s.shared}
	if wantStats {
		opt.Stats = stats
	}

	start := time.Now()
	res, analyzeText, err := s.execute(qctx, prep, opt, analyze)
	if err != nil {
		s.refuseErr(w, id, err)
		return
	}
	if res.Len() > s.cfg.MaxResponseRows {
		s.refuse(w, id, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("result has %d rows, over the %d-row response limit; add a LIMIT clause", res.Len(), s.cfg.MaxResponseRows))
		return
	}

	if params.Get("format") == "csv" && !analyze {
		w.Header().Set("Content-Type", "text/csv")
		if err := table.WriteCSV(w, res); err != nil {
			// Headers are gone; all we can do is abort the stream.
			s.m.failed.Add(1)
			return
		}
		s.m.served.Add(1)
		return
	}

	resp := queryResponse{
		RequestID:   id,
		Columns:     res.Schema.Names(),
		Rows:        jsonRows(res),
		RowCount:    res.Len(),
		ElapsedMs:   float64(time.Since(start).Microseconds()) / 1000,
		CachedPlan:  cached,
		BudgetBytes: budget,
		Analyze:     analyzeText,
	}
	if wantStats {
		resp.Stats = stats
	}
	s.m.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// execute runs the prepared query with per-request panic isolation: a
// panicking aggregate or operator is recovered into a panicError so this
// request answers 500 while every other request keeps running.
func (s *Server) execute(ctx context.Context, prep *sqlext.Prepared, opt core.Options, analyze bool) (res *table.Table, analyzeText string, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.m.panics.Add(1)
			res, analyzeText, err = nil, "", panicError{val: p}
		}
	}()
	if h := s.hook(); h != nil {
		if err := h(ctx); err != nil {
			return nil, "", err
		}
	}
	cat := s.snapshot()
	if analyze {
		analyzeText, res, err = prep.ExplainAnalyzeContext(ctx, cat, opt)
		return res, analyzeText, err
	}
	res, err = prep.ExecContext(ctx, cat, opt)
	return res, "", err
}

// preparePlan resolves the query through the plan LRU, compiling on miss.
// The key carries the execution-affecting request options alongside the
// text (see planKey). The bool reports whether the plan came from the
// cache.
func (s *Server) preparePlan(key planKey) (*sqlext.Prepared, bool, error) {
	if prep, ok := s.plans.get(key); ok {
		return prep, true, nil
	}
	prep, err := sqlext.Prepare(key.src)
	if err != nil {
		return nil, false, err
	}
	s.plans.put(key, prep)
	return prep, false, nil
}

// readQueryText extracts the query: ?q= on GET, the body (size-capped)
// on POST. On failure it writes the error response and returns ok=false.
func (s *Server) readQueryText(w http.ResponseWriter, r *http.Request, id string) (string, bool) {
	if r.Method == http.MethodGet {
		src := r.URL.Query().Get("q")
		if src == "" {
			s.refuse(w, id, http.StatusBadRequest, "missing query: pass ?q= or POST the text")
			return "", false
		}
		return src, true
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxQueryBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.refuse(w, id, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("query text exceeds the %d-byte limit", s.cfg.MaxQueryBytes))
		} else {
			s.refuse(w, id, http.StatusBadRequest, "reading request body: "+err.Error())
		}
		return "", false
	}
	if len(body) == 0 {
		s.refuse(w, id, http.StatusBadRequest, "missing query: pass ?q= or POST the text")
		return "", false
	}
	return string(body), true
}

// queryTimeout parses ?timeout= (a Go duration like "250ms", or a bare
// number of milliseconds), clamped to (0, MaxTimeout]; empty means the
// server default.
func (s *Server) queryTimeout(raw string) (time.Duration, error) {
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		ms, merr := strconv.ParseInt(raw, 10, 64)
		if merr != nil {
			return 0, fmt.Errorf("bad timeout %q: want a duration like 250ms or a millisecond count", raw)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad timeout %q: must be positive", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// refuseErr maps an execution or admission error to its HTTP status and
// writes the error envelope.
func (s *Server) refuseErr(w http.ResponseWriter, id string, err error) {
	var pe panicError
	var cpe *core.PanicError
	switch {
	case errors.As(err, &pe):
		s.refuse(w, id, http.StatusInternalServerError,
			fmt.Sprintf("internal error (request %s): %v", id, err))
	case errors.As(err, &cpe):
		// A panic inside a merged shared scan is recovered by the merged
		// driver (so the other queries in the group keep running) and
		// surfaces here as an error value rather than through execute's
		// recover — count and report it like any other query panic.
		s.m.panics.Add(1)
		s.refuse(w, id, http.StatusInternalServerError,
			fmt.Sprintf("internal error (request %s): %v", id, err))
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		s.refuse(w, id, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrBudgetTooLarge):
		s.refuse(w, id, http.StatusRequestEntityTooLarge, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		s.refuse(w, id, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		if s.draining.Load() {
			s.refuse(w, id, http.StatusServiceUnavailable, "query cancelled: server is draining")
		} else {
			s.refuse(w, id, http.StatusServiceUnavailable, "query cancelled")
		}
	default:
		s.refuse(w, id, http.StatusBadRequest, err.Error())
	}
}

// refuse writes the error envelope and bumps the failure counters.
func (s *Server) refuse(w http.ResponseWriter, id string, status int, msg string) {
	s.m.failed.Add(1)
	switch status {
	case http.StatusTooManyRequests:
		s.m.shed.Add(1)
	case http.StatusRequestEntityTooLarge:
		s.m.tooLarge.Add(1)
	case http.StatusGatewayTimeout:
		s.m.timedOut.Add(1)
	case http.StatusServiceUnavailable:
		s.m.cancelled.Add(1)
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{RequestID: id, Status: status, Error: msg})
}

// handleListTables serves GET /tables: the registered relations with
// their shapes.
func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	type tableInfo struct {
		Name    string   `json:"name"`
		Rows    int      `json:"rows"`
		Columns []string `json:"columns"`
	}
	cat := s.snapshot()
	infos := make([]tableInfo, 0, len(cat))
	for name, t := range cat {
		infos = append(infos, tableInfo{Name: name, Rows: t.Len(), Columns: t.Schema.Names()})
	}
	// Deterministic order for clients and tests.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].Name < infos[j-1].Name; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

// handlePutTable serves POST/PUT /tables/{name}: the body is a CSV
// relation (header row first) registered under the path name.
func (s *Server) handlePutTable(w http.ResponseWriter, r *http.Request) {
	id := s.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	if s.draining.Load() {
		s.refuse(w, id, http.StatusServiceUnavailable, "server is draining")
		return
	}
	name := r.PathValue("name")
	t, err := table.ReadCSV(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.refuse(w, id, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("upload exceeds the %d-byte limit", s.cfg.MaxUploadBytes))
			return
		}
		s.refuse(w, id, http.StatusBadRequest, "parsing CSV: "+err.Error())
		return
	}
	s.RegisterTable(name, t)
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "rows": t.Len()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleStats serves GET /stats: admission, cache, and lifetime counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.plans.stats()
	body := map[string]any{
		"draining":       s.draining.Load(),
		"active_queries": s.adm.active(),
		"admission": map[string]any{
			"max_concurrent":      s.cfg.MaxConcurrent,
			"pool_bytes":          s.cfg.MemoryBudgetBytes,
			"query_budget_bytes":  s.QueryBudgetBytes(),
			"reserved_bytes":      s.adm.usedBytes(),
			"peak_reserved_bytes": s.adm.peak(),
		},
		"plan_cache": map[string]any{"hits": hits, "misses": misses, "size": size},
		"views": map[string]any{
			"count":             len(s.viewsSnapshot()),
			"max_views":         s.cfg.MaxViews,
			"pool_bytes":        s.cfg.ViewPoolBytes,
			"view_budget_bytes": s.ViewBudgetBytes(),
			"appends":           s.m.appends.Load(),
			"evicted":           s.m.viewsEvicted.Load(),
		},
		"queries": map[string]any{
			"served":    s.m.served.Load(),
			"failed":    s.m.failed.Load(),
			"shed":      s.m.shed.Load(),
			"too_large": s.m.tooLarge.Load(),
			"timed_out": s.m.timedOut.Load(),
			"cancelled": s.m.cancelled.Load(),
			"panics":    s.m.panics.Load(),
		},
	}
	if s.shared != nil {
		sh := s.shared.Snapshot()
		body["shared_scans"] = map[string]any{
			"window_ms":      float64(s.shared.Window().Microseconds()) / 1000,
			"submitted":      sh.Submitted,
			"solo_runs":      sh.SoloRuns,
			"groups_run":     sh.GroupsRun,
			"merged_bundles": sh.MergedBundles,
			"scans_saved":    sh.ScansSaved,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// jsonRows converts a result table to JSON-ready rows: NULL → null, ALL →
// "ALL" (the CSV literal convention), ints/floats/bools/strings as their
// native JSON types.
func jsonRows(t *table.Table) [][]any {
	rows := make([][]any, t.Len())
	for i, r := range t.Rows {
		row := make([]any, len(r))
		for j, v := range r {
			row[j] = jsonValue(v)
		}
		rows[i] = row
	}
	return rows
}

func jsonValue(v table.Value) any {
	switch v.Kind() {
	case table.KindNull:
		return nil
	case table.KindAll:
		return "ALL"
	case table.KindInt:
		return v.AsInt()
	case table.KindFloat:
		return v.AsFloat()
	case table.KindBool:
		return v.AsBool()
	default:
		return v.String()
	}
}

// isOn interprets a boolean query parameter: any value but "", "0", and
// "false" enables the flag.
func isOn(v string) bool {
	return v != "" && v != "0" && v != "false"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
