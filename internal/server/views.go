package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"mdjoin/internal/core"
	"mdjoin/internal/optimizer"
	"mdjoin/internal/sqlext"
	"mdjoin/internal/table"
)

// view is one materialized MD-join view: a prepared query whose single
// MDJoin node has been compiled into a core.Incremental. Appends to the
// view's detail table fold into the materialization through the
// incremental pipeline; a read snapshots the operator's current result
// and grafts it back into the rest of the query plan (sorts, projections,
// limits execute normally over the snapshot).
//
// The view's base relation — and any other relation the plan references —
// is frozen at creation: a view answers over the base cells that existed
// when it was built. Re-create the view to pick up a changed base.
type view struct {
	name   string
	src    string
	detail string // catalog name of the detail relation appends fold from
	plan   optimizer.Plan
	mdj    *optimizer.MDJoin
	inc    *core.Incremental
}

// ViewBudgetBytes reports the per-view memory share: the view pool carved
// evenly across the view slots (the same core.BudgetShare carve admission
// uses for queries). 0 means unbounded views.
func (s *Server) ViewBudgetBytes() int {
	return core.BudgetShare(s.cfg.ViewPoolBytes, s.cfg.MaxViews)
}

// viewsSnapshot returns the current views, sorted by name.
func (s *Server) viewsSnapshot() []*view {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*view, 0, len(s.views))
	for _, v := range s.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// dropView removes a view by name, reporting whether it existed.
func (s *Server) dropView(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.views[name]; !ok {
		return false
	}
	delete(s.views, name)
	return true
}

// handleCreateView serves POST/PUT /views/{name}: the body is a dialect
// query whose plan must contain exactly one MD-join over a registered
// detail table; the server compiles it into an incremental
// materialization, backfills it from the detail relation's current rows,
// and from then on folds every /tables/{detail}/append delta into it.
//
// Serializing the backfill under appendMu is the point of that lock:
// appends must freeze until the view catches up to the snapshot.
//
//mdlint:lockhold-allow appendMu
func (s *Server) handleCreateView(w http.ResponseWriter, r *http.Request) {
	id := s.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	if s.draining.Load() {
		s.refuse(w, id, http.StatusServiceUnavailable, "server is draining")
		return
	}
	name := r.PathValue("name")
	src, ok := s.readQueryText(w, r, id)
	if !ok {
		return
	}

	// The append lock freezes table appends for the whole build, so the
	// backfill and the first folded delta cannot overlap or double-count.
	s.appendMu.Lock()
	defer s.appendMu.Unlock()

	s.mu.Lock()
	_, exists := s.views[name]
	full := len(s.views) >= s.cfg.MaxViews
	s.mu.Unlock()
	if exists {
		s.refuse(w, id, http.StatusConflict, fmt.Sprintf("view %q already exists; DELETE it first", name))
		return
	}
	if full {
		s.refuse(w, id, http.StatusConflict, fmt.Sprintf("view limit (%d) reached", s.cfg.MaxViews))
		return
	}

	prep, err := sqlext.Prepare(src)
	if err != nil {
		s.refuse(w, id, http.StatusBadRequest, err.Error())
		return
	}
	if prep.HasWith() {
		s.refuse(w, id, http.StatusBadRequest, "view queries cannot use WITH: members re-materialize per execution, which a frozen view cannot maintain")
		return
	}
	plan := prep.Plan()
	mdjs := optimizer.CollectMDJoins(plan)
	if len(mdjs) != 1 {
		s.refuse(w, id, http.StatusBadRequest,
			fmt.Sprintf("view queries must contain exactly one MD-join (found %d)", len(mdjs)))
		return
	}
	mdj := mdjs[0]
	scan, ok := mdj.Detail.(*optimizer.Scan)
	if !ok {
		s.refuse(w, id, http.StatusBadRequest,
			"the view's detail relation must be a registered table scan (appends are keyed by table name)")
		return
	}
	cat := s.snapshot()
	detailKey, detailT, err := lookupKey(cat, scan.Name)
	if err != nil {
		s.refuse(w, id, http.StatusBadRequest, err.Error())
		return
	}
	base, err := mdj.Base.Execute(cat)
	if err != nil {
		s.refuse(w, id, http.StatusBadRequest, "building view base: "+err.Error())
		return
	}
	opt := mdj.Opt
	if opt.RAlias == "" {
		opt.RAlias = mdj.DetailName
	}
	// Strip the execution strategy a one-shot evaluation would use:
	// incrementals are sequential and never partition (NewIncremental
	// rejects the parallel knobs), and a view outlives any one request's
	// context, stats sink, or shared-scan window.
	opt.Parallelism, opt.DetailParallelism = 0, 0
	opt.MaxBaseRows, opt.MemoryBudgetBytes = 0, 0
	opt.Ctx, opt.Stats, opt.Shared = nil, nil, nil
	inc, err := core.NewIncremental(base, detailT.Schema, mdj.Phases, opt, core.IncrementalConfig{})
	if err != nil {
		s.refuse(w, id, http.StatusBadRequest, err.Error())
		return
	}
	if err := inc.Append(detailT.Rows); err != nil {
		s.refuse(w, id, http.StatusBadRequest, "backfilling view: "+err.Error())
		return
	}
	if budget := s.ViewBudgetBytes(); budget > 0 && inc.SizeBytes() > int64(budget) {
		s.refuse(w, id, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("view needs %d bytes, over the %d-byte per-view budget", inc.SizeBytes(), budget))
		return
	}
	v := &view{name: name, src: src, detail: detailKey, plan: plan, mdj: mdj, inc: inc}
	s.mu.Lock()
	if s.views == nil {
		s.views = map[string]*view{}
	}
	s.views[name] = v
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"name":         name,
		"detail":       detailKey,
		"rows_in":      inc.Rows(),
		"size_bytes":   inc.SizeBytes(),
		"budget_bytes": s.ViewBudgetBytes(),
	})
}

// handleReadView serves GET /views/{name}: snapshot the materialized
// MD-join, graft it into the rest of the view's plan, and execute that
// remainder against the current catalog.
func (s *Server) handleReadView(w http.ResponseWriter, r *http.Request) {
	id := s.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	name := r.PathValue("name")
	s.mu.Lock()
	v := s.views[name]
	s.mu.Unlock()
	if v == nil {
		s.refuse(w, id, http.StatusNotFound, fmt.Sprintf("no view %q", name))
		return
	}
	snap, err := v.inc.Snapshot()
	if err != nil {
		s.refuse(w, id, http.StatusInternalServerError, "view snapshot: "+err.Error())
		return
	}
	grafted := optimizer.ReplacePlanNode(v.plan, v.mdj, &optimizer.Literal{Table: snap, Label: "view " + v.name})
	res, err := grafted.Execute(s.snapshot())
	if err != nil {
		s.refuse(w, id, http.StatusBadRequest, err.Error())
		return
	}
	if res.Len() > s.cfg.MaxResponseRows {
		s.refuse(w, id, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("view result has %d rows, over the %d-row response limit", res.Len(), s.cfg.MaxResponseRows))
		return
	}
	s.m.served.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"request_id": id,
		"name":       v.name,
		"detail":     v.detail,
		"columns":    res.Schema.Names(),
		"rows":       jsonRows(res),
		"row_count":  res.Len(),
		"rows_in":    v.inc.Rows(),
		"size_bytes": v.inc.SizeBytes(),
	})
}

// handleDeleteView serves DELETE /views/{name}.
func (s *Server) handleDeleteView(w http.ResponseWriter, r *http.Request) {
	id := s.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	name := r.PathValue("name")
	if !s.dropView(name) {
		s.refuse(w, id, http.StatusNotFound, fmt.Sprintf("no view %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "deleted": true})
}

// handleListViews serves GET /views.
func (s *Server) handleListViews(w http.ResponseWriter, r *http.Request) {
	type viewInfo struct {
		Name      string `json:"name"`
		Detail    string `json:"detail"`
		Query     string `json:"query"`
		RowsIn    int    `json:"rows_in"`
		SizeBytes int64  `json:"size_bytes"`
	}
	views := s.viewsSnapshot()
	infos := make([]viewInfo, 0, len(views))
	for _, v := range views {
		infos = append(infos, viewInfo{
			Name: v.name, Detail: v.detail, Query: v.src,
			RowsIn: v.inc.Rows(), SizeBytes: v.inc.SizeBytes(),
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleAppendTable serves POST/PUT /tables/{name}/append: the body is a
// CSV batch of new rows (header first, schema matching the registered
// relation). The catalog entry is extended copy-on-write — in-flight
// queries keep the snapshot they started with — and the delta folds into
// every view maintained over this table. A view whose maintenance fails
// or whose footprint crosses the per-view budget is evicted (reported in
// the response), never served stale.
//
// The view folds run under appendMu deliberately: catalog extension and
// view maintenance commit as one unit, so views never observe a row
// order other than the table's.
//
//mdlint:lockhold-allow appendMu
func (s *Server) handleAppendTable(w http.ResponseWriter, r *http.Request) {
	id := s.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	if s.draining.Load() {
		s.refuse(w, id, http.StatusServiceUnavailable, "server is draining")
		return
	}
	name := r.PathValue("name")
	delta, err := table.ReadCSV(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.refuse(w, id, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("upload exceeds the %d-byte limit", s.cfg.MaxUploadBytes))
			return
		}
		s.refuse(w, id, http.StatusBadRequest, "parsing CSV: "+err.Error())
		return
	}

	// One append at a time: the catalog extension and every view fold
	// commit together, so views and tables always agree on the row order
	// of the stream.
	s.appendMu.Lock()
	defer s.appendMu.Unlock()

	cat := s.snapshot()
	key, old, err := lookupKey(cat, name)
	if err != nil {
		s.refuse(w, id, http.StatusNotFound, err.Error())
		return
	}
	if !delta.Schema.EqualNames(old.Schema) {
		s.refuse(w, id, http.StatusBadRequest,
			fmt.Sprintf("append columns %v do not match table %q columns %v", delta.Schema.Names(), key, old.Schema.Names()))
		return
	}
	// Copy-on-write: the three-index reslice caps the shared prefix, so
	// appending cannot scribble into a snapshot another query is reading.
	next := &table.Table{
		Schema: old.Schema,
		Rows:   append(old.Rows[:old.Len():old.Len()], delta.Rows...),
	}
	s.RegisterTable(key, next)
	s.m.appends.Add(1)

	var updated, evicted []string
	for _, v := range s.viewsSnapshot() {
		if !strings.EqualFold(v.detail, key) {
			continue
		}
		if err := v.inc.Append(delta.Rows); err != nil {
			s.dropView(v.name)
			s.m.viewsEvicted.Add(1)
			evicted = append(evicted, fmt.Sprintf("%s: %v", v.name, err))
			continue
		}
		if budget := s.ViewBudgetBytes(); budget > 0 && v.inc.SizeBytes() > int64(budget) {
			s.dropView(v.name)
			s.m.viewsEvicted.Add(1)
			evicted = append(evicted, fmt.Sprintf("%s: over the %d-byte per-view budget", v.name, budget))
			continue
		}
		updated = append(updated, v.name)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":          key,
		"rows_appended": delta.Len(),
		"total_rows":    next.Len(),
		"views_updated": updated,
		"views_evicted": evicted,
	})
}

// lookupKey resolves a relation case-insensitively like Catalog.Lookup,
// additionally returning the canonical catalog key — appends re-register
// under the original key, and views match deltas against it.
func lookupKey(cat optimizer.Catalog, name string) (string, *table.Table, error) {
	if t, ok := cat[name]; ok {
		return name, t, nil
	}
	for k, t := range cat {
		if strings.EqualFold(k, name) {
			return k, t, nil
		}
	}
	return "", nil, fmt.Errorf("no table %q", name)
}
