package server

import (
	"net/http"
	"testing"

	"mdjoin/internal/sqlext"
)

// TestPlanKeyDistinguishesOptions is the regression test for keying the
// LRU on query text alone: two requests with the same text but different
// execution-affecting options (analyze flag, budget share) must resolve
// to distinct cache entries, while an exact repeat must hit.
func TestPlanKeyDistinguishesOptions(t *testing.T) {
	c := newPlanCache(8)
	prep, err := sqlext.Prepare(groupQuery)
	if err != nil {
		t.Fatal(err)
	}

	plain := planKey{src: groupQuery, budgetBytes: 1 << 20}
	c.put(plain, prep)

	if _, ok := c.get(plain); !ok {
		t.Error("exact key repeat missed the cache")
	}
	if _, ok := c.get(planKey{src: groupQuery, analyze: true, budgetBytes: 1 << 20}); ok {
		t.Error("analyze variant hit the plain entry")
	}
	if _, ok := c.get(planKey{src: groupQuery, budgetBytes: 2 << 20}); ok {
		t.Error("different budget share hit the old entry")
	}
	if _, ok := c.get(planKey{src: "select cust from Sales group by cust", budgetBytes: 1 << 20}); ok {
		t.Error("different text hit the cache")
	}

	// The variants coexist: caching one must not evict or shadow another.
	c.put(planKey{src: groupQuery, analyze: true, budgetBytes: 1 << 20}, prep)
	if _, ok := c.get(plain); !ok {
		t.Error("plain entry lost after caching the analyze variant")
	}
	hits, misses, size := c.stats()
	if size != 2 {
		t.Errorf("cache size = %d, want 2 (plain + analyze entries)", size)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("stats hits=%d misses=%d, want both non-zero", hits, misses)
	}
}

// TestPlanCacheOptionKeyOverHTTP drives the same property through the
// handler: a plain execution must not satisfy a later analyze execution
// of the same text from the cache (their keys differ), but each variant
// caches for its own repeats.
func TestPlanCacheOptionKeyOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if status, body, _ := post(t, ts, groupQuery, ""); status != http.StatusOK {
		t.Fatalf("plain query status = %d, body %s", status, body)
	} else if decodeQuery(t, body).CachedPlan {
		t.Error("first plain execution reported a cached plan")
	}

	status, body, _ := post(t, ts, groupQuery, "analyze=1")
	if status != http.StatusOK {
		t.Fatalf("analyze query status = %d, body %s", status, body)
	}
	if decodeQuery(t, body).CachedPlan {
		t.Error("analyze execution was served from the plain query's cache entry")
	}

	status, body, _ = post(t, ts, groupQuery, "analyze=1")
	if status != http.StatusOK {
		t.Fatalf("repeat analyze status = %d", status)
	}
	if !decodeQuery(t, body).CachedPlan {
		t.Error("repeat analyze execution missed its own cache entry")
	}
}
