package expr

import (
	"math/rand"
	"testing"

	"mdjoin/internal/table"
)

// The chunk kernels are a second evaluator for the same expression
// language; these tests pin them position-by-position against the scalar
// Compile/Eval path over randomly generated expression trees and chunks
// whose columns cover every representation: typed ints/floats/bools,
// dictionary strings, mixed-kind boxed columns, and NULL/ALL specials.

// chunkFixture builds a binding with a base slot (0) and a chunked detail
// slot (1), plus a detail chunk and the matching row batch.
func chunkFixture(rng *rand.Rand, n int) (*Binding, *table.Chunk, []table.Row) {
	schema := table.SchemaOf("i", "f", "s", "bl", "mix")
	bind := NewBinding()
	bind.AddRel(table.SchemaOf("g"), "b")
	bind.AddRel(schema, "r")

	words := []string{"ak", "ca", "ny", "tx"}
	rows := make([]table.Row, n)
	for k := range rows {
		row := table.Row{
			table.Int(int64(rng.Intn(10) - 4)),
			table.Float(float64(rng.Intn(30)-10) / 4),
			table.Str(words[rng.Intn(len(words))]),
			table.Bool(rng.Intn(2) == 0),
			table.Null(),
		}
		switch rng.Intn(3) {
		case 0:
			row[4] = table.Int(int64(rng.Intn(5)))
		case 1:
			row[4] = table.Str(words[rng.Intn(len(words))])
		default:
			row[4] = table.Float(float64(rng.Intn(7)) / 2)
		}
		for j := range row {
			switch rng.Intn(10) {
			case 0:
				row[j] = table.Null()
			case 1:
				row[j] = table.All()
			}
		}
		rows[k] = row
	}
	ch := table.NewChunk(schema)
	for _, r := range rows {
		ch.AppendRow(r)
	}
	return bind, ch, rows
}

// randExpr generates a random expression over the detail columns.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(7) {
		case 0:
			return I(int64(rng.Intn(7) - 3))
		case 1:
			return F(float64(rng.Intn(9)) / 2)
		case 2:
			return S([]string{"ak", "ca", "zz"}[rng.Intn(3)])
		case 3:
			return V(table.Null())
		default:
			return QC("r", []string{"i", "f", "s", "bl", "mix"}[rng.Intn(5)])
		}
	}
	switch rng.Intn(12) {
	case 0:
		return Not(randExpr(rng, depth-1))
	case 1:
		return &Unary{Op: OpIsNull, X: randExpr(rng, depth-1)}
	case 2:
		return And(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 3:
		return Or(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 4:
		return Add(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 5:
		return Sub(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 6:
		return Mul(randExpr(rng, depth-1), randExpr(rng, depth-1))
	case 7:
		return Div(randExpr(rng, depth-1), randExpr(rng, depth-1)) // div-by-zero → NULL
	default:
		ops := []func(l, r Expr) Expr{Eq, Ne, Lt, Le, Gt, Ge, CubeEq}
		return ops[rng.Intn(len(ops))](randExpr(rng, depth-1), randExpr(rng, depth-1))
	}
}

// TestEvalChunkMatchesScalar: for random expressions, EvalChunk must agree
// with scalar Eval at every selected position.
func TestEvalChunkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9000))
	for trial := 0; trial < 300; trial++ {
		bind, ch, rows := chunkFixture(rng, 40+rng.Intn(80))
		e := randExpr(rng, 3)
		scalar, err := Compile(e, bind)
		if err != nil {
			continue // e.g. unknown column shapes are not the target here
		}
		cc, err := CompileChunk(e, bind, 1)
		if err != nil {
			t.Fatalf("trial %d: CompileChunk(%s): %v", trial, e, err)
		}

		sel := IdentitySel(nil, ch.Len())
		if rng.Intn(2) == 0 {
			// Random sub-selection: unselected positions must not matter.
			kept := sel[:0]
			for _, si := range IdentitySel(nil, ch.Len()) {
				if rng.Intn(3) > 0 {
					kept = append(kept, si)
				}
			}
			sel = kept
		}
		scratch := new(table.Column)
		out := cc.EvalChunk(ch, sel, scratch)

		frame := make([]table.Row, 2)
		for _, si := range sel {
			frame[1] = rows[si]
			want := scalar.Eval(frame)
			got := out.Value(int(si))
			if !valuesAgree(got, want) {
				t.Fatalf("trial %d: %s at %d: chunk %v (%d) vs scalar %v (%d)",
					trial, e, si, got, got.Kind(), want, want.Kind())
			}
		}
	}
}

// valuesAgree: Equal, plus the NULL/ALL cases Equal reports false for.
func valuesAgree(a, b table.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	if a.IsAll() || b.IsAll() {
		return a.IsAll() && b.IsAll()
	}
	return a.Equal(b)
}

// TestFilterChunkMatchesTruth: the compacted selection must hold exactly
// the positions where scalar Truth is true, in order.
func TestFilterChunkMatchesTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(9100))
	nontrivial := 0
	for trial := 0; trial < 200; trial++ {
		bind, ch, rows := chunkFixture(rng, 60)
		e := randExpr(rng, 3)
		scalar, err := Compile(e, bind)
		if err != nil {
			continue
		}
		cc, err := CompileChunk(e, bind, 1)
		if err != nil {
			t.Fatalf("trial %d: CompileChunk(%s): %v", trial, e, err)
		}

		sel := cc.FilterChunk(ch, IdentitySel(nil, ch.Len()))
		var want []int32
		frame := make([]table.Row, 2)
		for i, r := range rows {
			frame[1] = r
			if scalar.Truth(frame) {
				want = append(want, int32(i))
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("trial %d: %s kept %d, scalar %d", trial, e, len(sel), len(want))
		}
		for i := range sel {
			if sel[i] != want[i] {
				t.Fatalf("trial %d: %s pos %d: %d vs %d", trial, e, i, sel[i], want[i])
			}
		}
		if len(sel) > 0 && len(sel) < len(rows) {
			nontrivial++
		}
	}
	if nontrivial < 20 {
		t.Fatalf("only %d non-degenerate filters; fixture too weak", nontrivial)
	}
}

// TestCompileChunkOrdinals: compiled programs must report exactly the
// detail ordinals they read, and reject columns outside the chunk slot.
func TestCompileChunkOrdinals(t *testing.T) {
	bind := NewBinding()
	bind.AddRel(table.SchemaOf("g"), "b")
	bind.AddRel(table.SchemaOf("i", "f", "s"), "r")

	cc, err := CompileChunk(Add(QC("r", "i"), Mul(QC("r", "f"), QC("r", "i"))), bind, 1)
	if err != nil {
		t.Fatal(err)
	}
	ords := map[int]bool{}
	for _, o := range cc.Ordinals() {
		if ords[o] {
			t.Fatalf("duplicate ordinal %d", o)
		}
		ords[o] = true
	}
	if !ords[0] || !ords[1] || ords[2] {
		t.Fatalf("ordinals %v, want {0,1}", cc.Ordinals())
	}

	if _, err := CompileChunk(Eq(QC("b", "g"), QC("r", "i")), bind, 1); err == nil {
		t.Fatal("expression reading the base slot must not chunk-compile")
	}
}

// TestEvalChunkScratchReuse: repeated evaluation through the same scratch
// column must not corrupt results (the executor reuses scratch per batch).
func TestEvalChunkScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9200))
	bind, ch, rows := chunkFixture(rng, 50)
	e := Add(QC("r", "i"), I(1))
	scalar := MustCompile(e, bind)
	cc, err := CompileChunk(e, bind, 1)
	if err != nil {
		t.Fatal(err)
	}
	scratch := new(table.Column)
	frame := make([]table.Row, 2)
	for pass := 0; pass < 3; pass++ {
		sel := IdentitySel(nil, ch.Len()-pass*7)
		out := cc.EvalChunk(ch, sel, scratch)
		for _, si := range sel {
			frame[1] = rows[si]
			if !valuesAgree(out.Value(int(si)), scalar.Eval(frame)) {
				t.Fatalf("pass %d pos %d diverged", pass, si)
			}
		}
	}
}

// TestChunkKernelIntExactness pins the int-comparison semantics at the
// edge where float64 conversion loses precision: Eq/Ne stay exact int64
// (matching Value.Equal), orderings go through the float64 conversion
// (matching Value.Compare).
func TestChunkKernelIntExactness(t *testing.T) {
	big := int64(1) << 53
	schema := table.SchemaOf("x")
	bind := NewBinding()
	bind.AddRel(table.SchemaOf("g"), "b")
	bind.AddRel(schema, "r")
	ch := table.NewChunk(schema)
	rows := []table.Row{{table.Int(big)}, {table.Int(big + 1)}, {table.Int(-big)}}
	for _, r := range rows {
		ch.AppendRow(r)
	}
	for _, e := range []Expr{
		Eq(QC("r", "x"), I(big)),
		Ne(QC("r", "x"), I(big+1)),
		Lt(QC("r", "x"), I(big+1)),
		Ge(QC("r", "x"), I(big)),
	} {
		scalar := MustCompile(e, bind)
		cc, err := CompileChunk(e, bind, 1)
		if err != nil {
			t.Fatal(err)
		}
		out := cc.EvalChunk(ch, IdentitySel(nil, ch.Len()), new(table.Column))
		frame := make([]table.Row, 2)
		for i, r := range rows {
			frame[1] = r
			if !valuesAgree(out.Value(i), scalar.Eval(frame)) {
				t.Fatalf("%s at %d: %v vs %v", e, i, out.Value(i), scalar.Eval(frame))
			}
		}
	}
}
