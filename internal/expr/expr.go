// Package expr implements the scalar expression language used by every
// operator in the repository: θ-conditions of MD-joins (which reference two
// relations, the base-values table B and the detail table R), selection
// predicates, and computed columns.
//
// Expressions are built as an untyped AST (either programmatically or by
// internal/sqlext's parser), then bound against one or more relation
// schemas, producing ordinal-resolved evaluators. Comparison and boolean
// operators follow SQL three-valued logic; the data-cube 'ALL' marker
// compares equal only to itself (it is an ordinary distinguished constant
// in base-values tables, per Gray et al.).
package expr

import (
	"fmt"
	"math"
	"strings"

	"mdjoin/internal/table"
)

// Op enumerates expression operators.
type Op uint8

// Operators. Comparisons use SQL three-valued logic; arithmetic on NULL
// yields NULL.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpNeg
	OpIsNull
	OpIsNotNull
	// OpCubeEq is cube equality: it treats the data-cube 'ALL' marker as
	// matching any value (ALL ≐ x is true for every x), while NULL matches
	// only NULL. It is the equality under which a cube-structured
	// base-values table relates to detail tuples — the row (ALL, 3, 'NY')
	// of Figure 1 aggregates every product's sales for month 3 in NY.
	OpCubeEq
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpNot: "NOT", OpNeg: "-",
	OpIsNull: "IS NULL", OpIsNotNull: "IS NOT NULL",
	OpCubeEq: "=^",
}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator is a binary comparison.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// Expr is a node of the untyped expression AST.
type Expr interface {
	String() string
	// walk invokes f on this node and all descendants.
	walk(f func(Expr))
}

// Col references a column, optionally qualified by a relation name
// ("Sales.cust") or by the conventional qualifiers "B"/"R". An unqualified
// column resolves against the binding's relations in order — for MD-join θs
// the base-values relation is bound first, matching the paper's convention
// that in "Sales.cust = cust" the bare "cust" denotes a B attribute.
type Col struct {
	Qual string
	Name string
}

func (c *Col) String() string {
	if c.Qual != "" {
		return c.Qual + "." + c.Name
	}
	return c.Name
}
func (c *Col) walk(f func(Expr)) { f(c) }

// Lit is a literal value.
type Lit struct{ Val table.Value }

func (l *Lit) String() string    { return l.Val.String() }
func (l *Lit) walk(f func(Expr)) { f(l) }

// Unary applies OpNot, OpNeg, OpIsNull or OpIsNotNull.
type Unary struct {
	Op Op
	X  Expr
}

func (u *Unary) String() string {
	if u.Op == OpIsNull || u.Op == OpIsNotNull {
		return fmt.Sprintf("(%s %s)", u.X, u.Op)
	}
	return fmt.Sprintf("(%s %s)", u.Op, u.X)
}
func (u *Unary) walk(f func(Expr)) { f(u); u.X.walk(f) }

// Binary applies a binary arithmetic, comparison, or boolean operator.
type Binary struct {
	Op   Op
	L, R Expr
}

func (b *Binary) String() string    { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }
func (b *Binary) walk(f func(Expr)) { f(b); b.L.walk(f); b.R.walk(f) }

// Call is an aggregate-function call as it appears in the EMF-SQL/analyze-by
// dialect (count(Z.*), avg(X.sale)). Calls cannot be evaluated directly —
// internal/sqlext's translator replaces each one with a reference to the
// column the corresponding MD-join phase generates. Compile rejects any
// Call that survives translation.
type Call struct {
	Fn   string
	Arg  Expr // nil for f(*)
	Star bool
}

func (c *Call) String() string {
	if c.Star || c.Arg == nil {
		return c.Fn + "(*)"
	}
	return fmt.Sprintf("%s(%s)", c.Fn, c.Arg)
}
func (c *Call) walk(f func(Expr)) {
	f(c)
	if c.Arg != nil {
		c.Arg.walk(f)
	}
}

// Convenience constructors keep plan-building code readable.

// C returns an unqualified column reference.
func C(name string) Expr { return &Col{Name: name} }

// QC returns a qualified column reference.
func QC(qual, name string) Expr { return &Col{Qual: qual, Name: name} }

// I returns an integer literal.
func I(v int64) Expr { return &Lit{Val: table.Int(v)} }

// F returns a float literal.
func F(v float64) Expr { return &Lit{Val: table.Float(v)} }

// S returns a string literal.
func S(v string) Expr { return &Lit{Val: table.Str(v)} }

// V returns a literal from an arbitrary value.
func V(v table.Value) Expr { return &Lit{Val: v} }

// Eq, Ne, Lt, Le, Gt, Ge build comparisons.
func Eq(l, r Expr) Expr { return &Binary{Op: OpEq, L: l, R: r} }

// CubeEq builds a cube-equality comparison (ALL matches anything).
func CubeEq(l, r Expr) Expr { return &Binary{Op: OpCubeEq, L: l, R: r} }
func Ne(l, r Expr) Expr     { return &Binary{Op: OpNe, L: l, R: r} }
func Lt(l, r Expr) Expr     { return &Binary{Op: OpLt, L: l, R: r} }
func Le(l, r Expr) Expr     { return &Binary{Op: OpLe, L: l, R: r} }
func Gt(l, r Expr) Expr     { return &Binary{Op: OpGt, L: l, R: r} }
func Ge(l, r Expr) Expr     { return &Binary{Op: OpGe, L: l, R: r} }

// Add, Sub, Mul, Div build arithmetic.
func Add(l, r Expr) Expr { return &Binary{Op: OpAdd, L: l, R: r} }
func Sub(l, r Expr) Expr { return &Binary{Op: OpSub, L: l, R: r} }
func Mul(l, r Expr) Expr { return &Binary{Op: OpMul, L: l, R: r} }
func Div(l, r Expr) Expr { return &Binary{Op: OpDiv, L: l, R: r} }

// Not negates a predicate.
func Not(x Expr) Expr { return &Unary{Op: OpNot, X: x} }

// And conjoins predicates; And() returns nil and And(p) returns p, so
// callers can fold conjunct slices without special cases.
func And(ps ...Expr) Expr {
	var out Expr
	for _, p := range ps {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &Binary{Op: OpAnd, L: out, R: p}
		}
	}
	return out
}

// Or disjoins predicates, with the same nil-folding behaviour as And.
func Or(ps ...Expr) Expr {
	var out Expr
	for _, p := range ps {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = &Binary{Op: OpOr, L: out, R: p}
		}
	}
	return out
}

// Binding associates relation qualifiers with schemas and frame slots. An
// expression bound against a Binding evaluates over a frame of rows, one
// per slot.
type Binding struct {
	rels []boundRel
}

type boundRel struct {
	qual   string
	schema *table.Schema
}

// NewBinding creates a binding; qualifiers are matched case-insensitively.
// Slot order is the order of AddRel calls.
func NewBinding() *Binding { return &Binding{} }

// AddRel registers a relation under one or more qualifiers (e.g. both the
// table's real name and the conventional "R"). It returns the slot index.
func (b *Binding) AddRel(schema *table.Schema, quals ...string) int {
	b.rels = append(b.rels, boundRel{qual: strings.ToLower(strings.Join(quals, "\x00")), schema: schema})
	return len(b.rels) - 1
}

// resolve finds (slot, ordinal) for a column reference.
func (b *Binding) resolve(c *Col) (int, int, error) {
	q := strings.ToLower(c.Qual)
	if q != "" {
		for slot, r := range b.rels {
			for _, alias := range strings.Split(r.qual, "\x00") {
				if alias == q {
					if ord := r.schema.ColIndex(c.Name); ord >= 0 {
						return slot, ord, nil
					}
					return 0, 0, fmt.Errorf("expr: relation %q has no column %q", c.Qual, c.Name)
				}
			}
		}
		return 0, 0, fmt.Errorf("expr: unknown relation qualifier %q", c.Qual)
	}
	for slot, r := range b.rels {
		if ord := r.schema.ColIndex(c.Name); ord >= 0 {
			return slot, ord, nil
		}
	}
	return 0, 0, fmt.Errorf("expr: unresolved column %q", c.Name)
}

// Compiled is an expression bound to a Binding, ready to evaluate against a
// frame of rows (frame[slot] is the current row of the slot's relation).
type Compiled struct {
	eval func(frame []table.Row) table.Value
	src  Expr
}

// Compile binds an expression against the binding. Column references are
// resolved to (slot, ordinal) pairs once; evaluation is allocation-free.
func Compile(e Expr, b *Binding) (*Compiled, error) {
	ev, err := compile(e, b)
	if err != nil {
		return nil, err
	}
	return &Compiled{eval: ev, src: e}, nil
}

// MustCompile is Compile that panics; for statically known-good plans.
func MustCompile(e Expr, b *Binding) *Compiled {
	c, err := Compile(e, b)
	if err != nil {
		panic(err)
	}
	return c
}

// Eval evaluates the expression over the frame.
func (c *Compiled) Eval(frame []table.Row) table.Value { return c.eval(frame) }

// Truth evaluates the expression as a predicate: the result is true only if
// evaluation yields boolean true (NULL and non-boolean results are false),
// implementing SQL's WHERE semantics.
func (c *Compiled) Truth(frame []table.Row) bool {
	v := c.eval(frame)
	return v.Kind() == table.KindBool && v.AsBool()
}

// Source returns the AST the evaluator was compiled from.
func (c *Compiled) Source() Expr { return c.src }

func compile(e Expr, b *Binding) (func([]table.Row) table.Value, error) {
	switch n := e.(type) {
	case *Lit:
		v := n.Val
		return func([]table.Row) table.Value { return v }, nil
	case *Col:
		slot, ord, err := b.resolve(n)
		if err != nil {
			return nil, err
		}
		return func(frame []table.Row) table.Value { return frame[slot][ord] }, nil
	case *Unary:
		x, err := compile(n.X, b)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(frame []table.Row) table.Value {
			return applyUnary(op, x(frame))
		}, nil
	case *Binary:
		l, err := compile(n.L, b)
		if err != nil {
			return nil, err
		}
		r, err := compile(n.R, b)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(frame []table.Row) table.Value {
			return applyBinary(op, l(frame), r(frame))
		}, nil
	case *Call:
		return nil, fmt.Errorf("expr: aggregate call %s cannot be evaluated here (it must be translated to a generated column)", n)
	default:
		return nil, fmt.Errorf("expr: cannot compile %T", e)
	}
}

// applyUnary implements the unary operator semantics shared by the
// compiled evaluator and the chunk kernels (chunk.go).
func applyUnary(op Op, v table.Value) table.Value {
	switch op {
	case OpNot:
		if v.Kind() != table.KindBool {
			return table.Null()
		}
		return table.Bool(!v.AsBool())
	case OpNeg:
		switch v.Kind() {
		case table.KindInt:
			return table.Int(-v.AsInt())
		case table.KindFloat:
			return table.Float(-v.AsFloat())
		default:
			return table.Null()
		}
	case OpIsNull:
		return table.Bool(v.IsNull())
	case OpIsNotNull:
		return table.Bool(!v.IsNull())
	}
	return table.Null()
}

// applyBinary implements the binary operator semantics shared by the
// compiled evaluator, the chunk kernels (chunk.go), and constant folding.
func applyBinary(op Op, a, c table.Value) table.Value {
	switch op {
	case OpAnd:
		// Kleene AND: false dominates NULL.
		af, at := truthState(a)
		cf, ct := truthState(c)
		switch {
		case af || cf:
			return table.Bool(false)
		case at && ct:
			return table.Bool(true)
		default:
			return table.Null()
		}
	case OpOr:
		af, at := truthState(a)
		cf, ct := truthState(c)
		switch {
		case at || ct:
			return table.Bool(true)
		case af && cf:
			return table.Bool(false)
		default:
			return table.Null()
		}
	}

	if op == OpCubeEq {
		// Cube equality: ALL matches anything; NULL matches only NULL
		// (grouping semantics, so rollups over NULL dimension values
		// group correctly).
		switch {
		case a.IsAll() || c.IsAll():
			return table.Bool(true)
		case a.IsNull() && c.IsNull():
			return table.Bool(true)
		case a.IsNull() || c.IsNull():
			return table.Bool(false)
		default:
			return table.Bool(a.Equal(c))
		}
	}

	if a.IsNull() || c.IsNull() {
		return table.Null()
	}

	if op.IsComparison() {
		// ALL is a distinguished constant: equal only to itself, and
		// unordered relative to real values under <, <=, >, >=.
		if a.IsAll() || c.IsAll() {
			switch op {
			case OpEq:
				return table.Bool(a.IsAll() && c.IsAll())
			case OpNe:
				return table.Bool(!(a.IsAll() && c.IsAll()))
			default:
				return table.Bool(false)
			}
		}
		cmp := a.Compare(c)
		eq := a.Equal(c)
		switch op {
		case OpEq:
			return table.Bool(eq)
		case OpNe:
			return table.Bool(!eq)
		case OpLt:
			return table.Bool(cmp < 0)
		case OpLe:
			return table.Bool(cmp <= 0)
		case OpGt:
			return table.Bool(cmp > 0)
		case OpGe:
			return table.Bool(cmp >= 0)
		}
	}

	// Arithmetic: ints stay ints except division, which widens.
	if !a.IsNumeric() || !c.IsNumeric() {
		return table.Null()
	}
	if a.Kind() == table.KindInt && c.Kind() == table.KindInt && op != OpDiv {
		x, y := a.AsInt(), c.AsInt()
		switch op {
		case OpAdd:
			return table.Int(x + y)
		case OpSub:
			return table.Int(x - y)
		case OpMul:
			return table.Int(x * y)
		case OpMod:
			if y == 0 {
				return table.Null()
			}
			return table.Int(x % y)
		}
	}
	x, y := a.AsFloat(), c.AsFloat()
	switch op {
	case OpAdd:
		return table.Float(x + y)
	case OpSub:
		return table.Float(x - y)
	case OpMul:
		return table.Float(x * y)
	case OpDiv:
		if y == 0 {
			return table.Null()
		}
		return table.Float(x / y)
	case OpMod:
		if y == 0 {
			return table.Null()
		}
		return table.Float(math.Mod(x, y))
	}
	return table.Null()
}

// truthState classifies a value for Kleene logic: (isFalse, isTrue).
func truthState(v table.Value) (isFalse, isTrue bool) {
	if v.Kind() == table.KindBool {
		if v.AsBool() {
			return false, true
		}
		return true, false
	}
	return false, false // NULL / non-bool: unknown
}
