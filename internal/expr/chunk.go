// Columnar chunk kernels: expressions compiled to evaluate column-at-a-time
// over table.Chunk typed vectors instead of value-at-a-time over rows. The
// kernels run typed loops (int64/float64/dictionary-string/packed-bool)
// over the payload arrays whenever both operands have a compatible payload
// kind, falling back per-element to the boxed applyBinary/applyUnary for
// NULL/ALL positions and whole-column to a boxed loop for mixed-kind
// (boxed) columns, cube equality, and kind combinations with no typed
// loop. Every fallback routes through the same applyBinary/applyUnary the
// scalar evaluator uses, so the two paths cannot drift semantically.
package expr

import (
	"fmt"
	"math"

	"mdjoin/internal/table"
)

// operand is an intermediate kernel result: either a column positional
// over the chunk, or a single constant value (col == nil).
type operand struct {
	col *table.Column
	k   table.Value
}

// value boxes position i (or the constant).
func (o operand) value(i int) table.Value {
	if o.col == nil {
		return o.k
	}
	return o.col.Value(i)
}

type chunkKernel func(ch *table.Chunk, sel []int32) operand

// ChunkCompiled is an expression compiled against one relation slot to
// evaluate over that relation's chunks. Its kernel nodes own scratch
// output columns, so a ChunkCompiled must not be used from more than one
// goroutine at a time (the executor compiles one per worker).
type ChunkCompiled struct {
	run  chunkKernel
	ords []int
	src  Expr
	// lastBoxed records whether the most recent EvalChunk/FilterChunk run
	// landed on a boxed result column (mixed-kind fallback or materialized
	// constant) instead of a typed payload — the executor's tripwire for
	// the whole-column boxed fallback.
	lastBoxed bool
}

// CompileChunk binds an expression for columnar evaluation over the given
// relation slot. It fails — and the caller falls back to the boxed batch
// kernels — if any column reference resolves outside that slot, so a
// successful compile guarantees the expression reads only the chunked
// relation and constants.
func CompileChunk(e Expr, b *Binding, slot int) (*ChunkCompiled, error) {
	var ords []int
	k, err := compileChunk(e, b, slot, &ords)
	if err != nil {
		return nil, err
	}
	// Dedup in place; the ordinal lists are a handful of entries, so a
	// linear scan beats allocating a set.
	dedup := ords[:0]
	for _, o := range ords {
		have := false
		for _, d := range dedup {
			if d == o {
				have = true
				break
			}
		}
		if !have {
			dedup = append(dedup, o)
		}
	}
	return &ChunkCompiled{run: k, ords: dedup, src: e}, nil
}

// Ordinals returns the chunk-relation column ordinals the expression
// reads; the executor unions these to transpose only the needed columns.
func (cc *ChunkCompiled) Ordinals() []int { return cc.ords }

// Source returns the AST the kernel was compiled from.
func (cc *ChunkCompiled) Source() Expr { return cc.src }

// ResultBoxed reports whether the most recent EvalChunk/FilterChunk run
// produced a boxed result column rather than a typed payload.
func (cc *ChunkCompiled) ResultBoxed() bool { return cc.lastBoxed }

// EvalChunk evaluates the expression over the selected positions of the
// chunk. The result column is positional over the whole chunk but defined
// only at positions in sel. Column references return the chunk's columns
// zero-copy; a constant result is materialized into the caller-owned
// scratch column.
func (cc *ChunkCompiled) EvalChunk(ch *table.Chunk, sel []int32, scratch *table.Column) *table.Column {
	res := cc.run(ch, sel)
	cc.lastBoxed = res.col == nil || res.col.IsBoxed()
	if res.col != nil {
		return res.col
	}
	scratch.ResetBoxed(ch.Len())
	for _, si := range sel {
		scratch.SetValue(int(si), res.k)
	}
	return scratch
}

// FilterChunk compacts sel in place to the positions where the predicate
// evaluates to boolean true (SQL WHERE semantics: NULL, ALL, and non-bool
// results drop the row).
func (cc *ChunkCompiled) FilterChunk(ch *table.Chunk, sel []int32) []int32 {
	res := cc.run(ch, sel)
	cc.lastBoxed = res.col == nil || res.col.IsBoxed()
	if res.col == nil {
		if res.k.Kind() == table.KindBool && res.k.AsBool() {
			return sel
		}
		return sel[:0]
	}
	col := res.col
	out := sel[:0]
	if col.PayloadKind() == table.KindBool {
		for _, si := range sel {
			i := int(si)
			if !col.IsNull(i) && !col.IsAll(i) && col.BoolAt(i) {
				out = append(out, si)
			}
		}
		return out
	}
	for _, si := range sel {
		v := col.Value(int(si))
		if v.Kind() == table.KindBool && v.AsBool() {
			out = append(out, si)
		}
	}
	return out
}

func compileChunk(e Expr, b *Binding, slot int, ords *[]int) (chunkKernel, error) {
	switch n := e.(type) {
	case *Lit:
		v := n.Val
		return func(*table.Chunk, []int32) operand { return operand{k: v} }, nil
	case *Col:
		cslot, ord, err := b.resolve(n)
		if err != nil {
			return nil, err
		}
		if cslot != slot {
			return nil, fmt.Errorf("expr: column %s resolves to slot %d, outside the chunked relation (slot %d)", n, cslot, slot)
		}
		*ords = append(*ords, ord)
		return func(ch *table.Chunk, _ []int32) operand { return operand{col: ch.Col(ord)} }, nil
	case *Unary:
		xk, err := compileChunk(n.X, b, slot, ords)
		if err != nil {
			return nil, err
		}
		op := n.Op
		out := new(table.Column) // node-owned scratch
		return func(ch *table.Chunk, sel []int32) operand {
			x := xk(ch, sel)
			if x.col == nil {
				return operand{k: applyUnary(op, x.k)}
			}
			applyUnaryChunk(op, x.col, ch.Len(), sel, out)
			return operand{col: out}
		}, nil
	case *Binary:
		lk, err := compileChunk(n.L, b, slot, ords)
		if err != nil {
			return nil, err
		}
		rk, err := compileChunk(n.R, b, slot, ords)
		if err != nil {
			return nil, err
		}
		op := n.Op
		out := new(table.Column) // node-owned scratch
		return func(ch *table.Chunk, sel []int32) operand {
			l := lk(ch, sel)
			r := rk(ch, sel)
			if l.col == nil && r.col == nil {
				return operand{k: applyBinary(op, l.k, r.k)}
			}
			applyBinaryChunk(op, l, r, ch.Len(), sel, out)
			return operand{col: out}
		}, nil
	case *Call:
		return nil, fmt.Errorf("expr: aggregate call %s cannot be evaluated here (it must be translated to a generated column)", n)
	default:
		return nil, fmt.Errorf("expr: cannot compile %T", e)
	}
}

// payloadKindOf returns the typed payload kind a kernel can loop over:
// the column's payload kind, or the constant's kind. KindNull means "no
// typed loop" (boxed column, empty column, or NULL/ALL constant).
func payloadKindOf(o operand) table.Kind {
	if o.col != nil {
		return o.col.PayloadKind()
	}
	switch o.k.Kind() {
	case table.KindNull, table.KindAll:
		return table.KindNull
	default:
		return o.k.Kind()
	}
}

// specialAt reports a NULL/ALL position on a column operand (constants are
// pre-screened by payloadKindOf).
func specialAt(o operand, i int) bool {
	return o.col.IsNull(i) || o.col.IsAll(i)
}

func hasSpecialSide(o operand) bool { return o.col != nil && o.col.HasSpecial() }

// iside / fside / sside are per-operand accessors the typed loops index
// through; they hoist the column-vs-constant and int-vs-float dispatch out
// of the loop body into a nil check the compiler can hoist or predict.
type iside struct {
	vals []int64
	c    int64
}

func intSideOf(o operand) iside {
	if o.col == nil {
		return iside{c: o.k.AsInt()}
	}
	return iside{vals: o.col.Ints()}
}

func (s iside) at(i int) int64 {
	if s.vals != nil {
		return s.vals[i]
	}
	return s.c
}

type fside struct {
	ints   []int64
	floats []float64
	c      float64
}

func floatSideOf(o operand) fside {
	if o.col == nil {
		return fside{c: o.k.AsFloat()}
	}
	if o.col.PayloadKind() == table.KindInt {
		return fside{ints: o.col.Ints()}
	}
	return fside{floats: o.col.Floats()}
}

func (s fside) at(i int) float64 {
	if s.ints != nil {
		return float64(s.ints[i])
	}
	if s.floats != nil {
		return s.floats[i]
	}
	return s.c
}

type sside struct {
	dict  []string
	codes []int32
	c     string
}

func strSideOf(o operand) sside {
	if o.col == nil {
		return sside{c: o.k.AsString()}
	}
	return sside{dict: o.col.Dict(), codes: o.col.Codes()}
}

func (s sside) at(i int) string {
	if s.codes != nil {
		return s.dict[s.codes[i]]
	}
	return s.c
}

func applyUnaryChunk(op Op, col *table.Column, n int, sel []int32, out *table.Column) {
	switch op {
	case OpIsNull:
		out.ResetTyped(table.KindBool, n)
		for _, si := range sel {
			out.SetBool(int(si), col.IsNull(int(si)))
		}
		return
	case OpIsNotNull:
		out.ResetTyped(table.KindBool, n)
		for _, si := range sel {
			out.SetBool(int(si), !col.IsNull(int(si)))
		}
		return
	case OpNot:
		if col.PayloadKind() == table.KindBool {
			out.ResetTyped(table.KindBool, n)
			sp := col.HasSpecial()
			for _, si := range sel {
				i := int(si)
				if sp && (col.IsNull(i) || col.IsAll(i)) {
					out.SetNull(i) // NOT NULL is NULL; NOT ALL is non-bool, also NULL
					continue
				}
				out.SetBool(i, !col.BoolAt(i))
			}
			return
		}
	case OpNeg:
		switch col.PayloadKind() {
		case table.KindInt:
			out.ResetTyped(table.KindInt, n)
			sp := col.HasSpecial()
			ints := col.Ints()
			for _, si := range sel {
				i := int(si)
				if sp && (col.IsNull(i) || col.IsAll(i)) {
					out.SetNull(i)
					continue
				}
				out.SetInt(i, -ints[i])
			}
			return
		case table.KindFloat:
			out.ResetTyped(table.KindFloat, n)
			sp := col.HasSpecial()
			floats := col.Floats()
			for _, si := range sel {
				i := int(si)
				if sp && (col.IsNull(i) || col.IsAll(i)) {
					out.SetNull(i)
					continue
				}
				out.SetFloat(i, -floats[i])
			}
			return
		}
	}
	// Generic boxed fallback: mixed-kind columns and kind/op combinations
	// without a typed loop.
	out.ResetBoxed(n)
	for _, si := range sel {
		i := int(si)
		out.SetValue(i, applyUnary(op, col.Value(i)))
	}
}

func applyBinaryChunk(op Op, l, r operand, n int, sel []int32, out *table.Column) {
	switch {
	case op == OpAnd || op == OpOr:
		if logicalChunk(op, l, r, n, sel, out) {
			return
		}
	case op == OpCubeEq:
		// Cube equality's ALL-matches-anything semantics live entirely in
		// the special lanes, so the boxed loop is the natural shape.
	case op.IsComparison():
		lk, rk := payloadKindOf(l), payloadKindOf(r)
		lNum := lk == table.KindInt || lk == table.KindFloat
		rNum := rk == table.KindInt || rk == table.KindFloat
		switch {
		case lNum && rNum:
			compareNumericChunk(op, l, r, n, sel, out)
			return
		case lk == table.KindString && rk == table.KindString:
			compareStringChunk(op, l, r, n, sel, out)
			return
		}
	default: // arithmetic
		lk, rk := payloadKindOf(l), payloadKindOf(r)
		lNum := lk == table.KindInt || lk == table.KindFloat
		rNum := rk == table.KindInt || rk == table.KindFloat
		if lNum && rNum {
			arithChunk(op, l, r, n, sel, out)
			return
		}
	}
	// Generic boxed fallback, element-wise through the scalar operator.
	out.ResetBoxed(n)
	for _, si := range sel {
		i := int(si)
		out.SetValue(i, applyBinary(op, l.value(i), r.value(i)))
	}
}

// fallbackCompare handles a NULL/ALL position inside a typed comparison
// loop; applyBinary yields Bool or Null here, never anything else.
func fallbackCompare(op Op, l, r operand, i int, out *table.Column) {
	v := applyBinary(op, l.value(i), r.value(i))
	if v.IsNull() {
		out.SetNull(i)
	} else {
		out.SetBool(i, v.AsBool())
	}
}

func compareNumericChunk(op Op, l, r operand, n int, sel []int32, out *table.Column) {
	out.ResetTyped(table.KindBool, n)
	lsp, rsp := hasSpecialSide(l), hasSpecialSide(r)
	if payloadKindOf(l) == table.KindInt && payloadKindOf(r) == table.KindInt &&
		(op == OpEq || op == OpNe) {
		// Value.Equal compares same-kind ints exactly (no float round-trip),
		// so int=int / int<>int get an exact int64 loop. Orderings go
		// through Value.Compare's float conversion below.
		li, ri := intSideOf(l), intSideOf(r)
		want := op == OpEq
		for _, si := range sel {
			i := int(si)
			if (lsp && specialAt(l, i)) || (rsp && specialAt(r, i)) {
				fallbackCompare(op, l, r, i, out)
				continue
			}
			out.SetBool(i, (li.at(i) == ri.at(i)) == want)
		}
		return
	}
	lf, rf := floatSideOf(l), floatSideOf(r)
	for _, si := range sel {
		i := int(si)
		if (lsp && specialAt(l, i)) || (rsp && specialAt(r, i)) {
			fallbackCompare(op, l, r, i, out)
			continue
		}
		x, y := lf.at(i), rf.at(i)
		var t bool
		switch op {
		case OpEq:
			t = x == y
		case OpNe:
			t = x != y
		case OpLt:
			t = x < y
		case OpLe:
			t = !(x > y) // Compare-style: NaN ties rank as equal
		case OpGt:
			t = x > y
		case OpGe:
			t = !(x < y)
		}
		out.SetBool(i, t)
	}
}

func compareStringChunk(op Op, l, r operand, n int, sel []int32, out *table.Column) {
	out.ResetTyped(table.KindBool, n)
	lsp, rsp := hasSpecialSide(l), hasSpecialSide(r)
	ls, rs := strSideOf(l), strSideOf(r)
	for _, si := range sel {
		i := int(si)
		if (lsp && specialAt(l, i)) || (rsp && specialAt(r, i)) {
			fallbackCompare(op, l, r, i, out)
			continue
		}
		x, y := ls.at(i), rs.at(i)
		var t bool
		switch op {
		case OpEq:
			t = x == y
		case OpNe:
			t = x != y
		case OpLt:
			t = x < y
		case OpLe:
			t = x <= y
		case OpGt:
			t = x > y
		case OpGe:
			t = x >= y
		}
		out.SetBool(i, t)
	}
}

func arithChunk(op Op, l, r operand, n int, sel []int32, out *table.Column) {
	lsp, rsp := hasSpecialSide(l), hasSpecialSide(r)
	if payloadKindOf(l) == table.KindInt && payloadKindOf(r) == table.KindInt && op != OpDiv {
		// Int arithmetic stays int (division widens). NULL/ALL operands
		// always yield NULL for arithmetic, so specials never demote the
		// output kind.
		out.ResetTyped(table.KindInt, n)
		li, ri := intSideOf(l), intSideOf(r)
		for _, si := range sel {
			i := int(si)
			if (lsp && specialAt(l, i)) || (rsp && specialAt(r, i)) {
				out.SetNull(i)
				continue
			}
			x, y := li.at(i), ri.at(i)
			switch op {
			case OpAdd:
				out.SetInt(i, x+y)
			case OpSub:
				out.SetInt(i, x-y)
			case OpMul:
				out.SetInt(i, x*y)
			case OpMod:
				if y == 0 {
					out.SetNull(i)
				} else {
					out.SetInt(i, x%y)
				}
			}
		}
		return
	}
	out.ResetTyped(table.KindFloat, n)
	lf, rf := floatSideOf(l), floatSideOf(r)
	for _, si := range sel {
		i := int(si)
		if (lsp && specialAt(l, i)) || (rsp && specialAt(r, i)) {
			out.SetNull(i)
			continue
		}
		x, y := lf.at(i), rf.at(i)
		switch op {
		case OpAdd:
			out.SetFloat(i, x+y)
		case OpSub:
			out.SetFloat(i, x-y)
		case OpMul:
			out.SetFloat(i, x*y)
		case OpDiv:
			if y == 0 {
				out.SetNull(i)
			} else {
				out.SetFloat(i, x/y)
			}
		case OpMod:
			if y == 0 {
				out.SetNull(i)
			} else {
				out.SetFloat(i, math.Mod(x, y))
			}
		}
	}
}

// logicalChunk runs Kleene AND/OR when every column operand has a bool
// payload (constants of any kind classify through truthState, matching
// the scalar path). Returns false — caller takes the boxed loop — when a
// column operand is non-bool or boxed.
func logicalChunk(op Op, l, r operand, n int, sel []int32, out *table.Column) bool {
	if l.col != nil && l.col.PayloadKind() != table.KindBool {
		return false
	}
	if r.col != nil && r.col.PayloadKind() != table.KindBool {
		return false
	}
	out.ResetTyped(table.KindBool, n)
	for _, si := range sel {
		i := int(si)
		lf, lt := truthSideAt(l, i)
		rf, rt := truthSideAt(r, i)
		if op == OpAnd {
			switch {
			case lf || rf:
				out.SetBool(i, false)
			case lt && rt:
				out.SetBool(i, true)
			default:
				out.SetNull(i)
			}
		} else {
			switch {
			case lt || rt:
				out.SetBool(i, true)
			case lf && rf:
				out.SetBool(i, false)
			default:
				out.SetNull(i)
			}
		}
	}
	return true
}

// truthSideAt classifies one operand position for Kleene logic:
// (isFalse, isTrue); NULL/ALL and non-bool values are unknown.
func truthSideAt(o operand, i int) (bool, bool) {
	if o.col == nil {
		return truthState(o.k)
	}
	if o.col.IsNull(i) || o.col.IsAll(i) {
		return false, false
	}
	if o.col.BoolAt(i) {
		return false, true
	}
	return true, false
}
