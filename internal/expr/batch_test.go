package expr

import (
	"math/rand"
	"testing"

	"mdjoin/internal/table"
)

func batchFixture(t *testing.T) (*Binding, []table.Row) {
	t.Helper()
	b := NewBinding()
	b.AddRel(table.SchemaOf("g"), "b")      // slot 0: pinned
	b.AddRel(table.SchemaOf("x", "f"), "r") // slot 1: varies over the batch
	rng := rand.New(rand.NewSource(21))
	batch := make([]table.Row, 100)
	for i := range batch {
		var x table.Value = table.Int(int64(rng.Intn(10)))
		if rng.Intn(8) == 0 {
			x = table.Null()
		}
		batch[i] = table.Row{x, table.Int(int64(rng.Intn(3)))}
	}
	return b, batch
}

// TestEvalSlotBatchMatchesScalar: batch evaluation must agree position by
// position with scalar Eval.
func TestEvalSlotBatchMatchesScalar(t *testing.T) {
	bind, batch := batchFixture(t)
	c := MustCompile(Add(QC("r", "x"), I(5)), bind)

	frame := make([]table.Row, 2)
	sel := IdentitySel(nil, len(batch))
	out := c.EvalSlotBatch(frame, 1, batch, sel, nil)
	if frame[1] != nil {
		t.Fatal("frame slot not restored")
	}
	for i, r := range batch {
		frame[1] = r
		if want := c.Eval(frame); !out[i].Equal(want) && !(out[i].IsNull() && want.IsNull()) {
			t.Fatalf("pos %d: batch %v vs scalar %v", i, out[i], want)
		}
	}

	// Partial selection: only selected positions are written.
	out2 := make([]table.Value, len(batch))
	for i := range out2 {
		out2[i] = table.Str("sentinel")
	}
	frame = make([]table.Row, 2)
	half := sel[:0]
	for i := 0; i < len(batch); i += 2 {
		half = append(half, int32(i))
	}
	out2 = c.EvalSlotBatch(frame, 1, batch, half, out2)
	for i := range batch {
		if i%2 == 1 {
			if !out2[i].Equal(table.Str("sentinel")) {
				t.Fatalf("unselected pos %d overwritten: %v", i, out2[i])
			}
		}
	}
}

// TestFilterSlotBatchMatchesTruth: the compacted selection must hold
// exactly the positions where scalar Truth reports true, in order.
func TestFilterSlotBatchMatchesTruth(t *testing.T) {
	bind, batch := batchFixture(t)
	// Includes a NULL-producing comparison: NULL must filter out.
	c := MustCompile(Gt(QC("r", "x"), I(4)), bind)

	frame := make([]table.Row, 2)
	sel := IdentitySel(nil, len(batch))
	sel = c.FilterSlotBatch(frame, 1, batch, sel)
	if frame[1] != nil {
		t.Fatal("frame slot not restored")
	}

	var want []int32
	sf := make([]table.Row, 2)
	for i, r := range batch {
		sf[1] = r
		if c.Truth(sf) {
			want = append(want, int32(i))
		}
	}
	if len(sel) != len(want) {
		t.Fatalf("filter kept %d, scalar %d", len(sel), len(want))
	}
	for i := range sel {
		if sel[i] != want[i] {
			t.Fatalf("pos %d: %d vs %d", i, sel[i], want[i])
		}
	}
	if len(sel) == 0 || len(sel) == len(batch) {
		t.Fatalf("degenerate fixture: %d of %d selected", len(sel), len(batch))
	}
}

// TestIdentitySelReuse pins buffer reuse across batches of varying size.
func TestIdentitySelReuse(t *testing.T) {
	sel := IdentitySel(nil, 8)
	c := cap(sel)
	sel = IdentitySel(sel, 4)
	if len(sel) != 4 || cap(sel) != c {
		t.Fatalf("shrink reallocated: len=%d cap=%d", len(sel), cap(sel))
	}
	for i, v := range sel {
		if v != int32(i) {
			t.Fatalf("sel[%d] = %d", i, v)
		}
	}
	sel = IdentitySel(sel, 100)
	if len(sel) != 100 || sel[99] != 99 {
		t.Fatalf("grow wrong: len=%d", len(sel))
	}
}
