package expr

import (
	"testing"
	"testing/quick"

	"mdjoin/internal/table"
)

// evalOne compiles and evaluates an expression against a single-relation
// frame.
func evalOne(t *testing.T, e Expr, schema *table.Schema, row table.Row) table.Value {
	t.Helper()
	b := NewBinding()
	b.AddRel(schema, "r")
	c, err := Compile(e, b)
	if err != nil {
		t.Fatalf("compiling %s: %v", e, err)
	}
	return c.Eval([]table.Row{row})
}

func TestArithmetic(t *testing.T) {
	schema := table.SchemaOf("x", "y")
	row := table.Row{table.Int(7), table.Float(2)}
	cases := []struct {
		e    Expr
		want table.Value
	}{
		{Add(C("x"), I(3)), table.Int(10)},
		{Sub(C("x"), I(3)), table.Int(4)},
		{Mul(C("x"), I(2)), table.Int(14)},
		{Div(C("x"), C("y")), table.Float(3.5)},
		{Div(I(1), I(0)), table.Null()}, // division by zero is NULL
		{Add(C("x"), C("y")), table.Float(9)},
		{&Binary{Op: OpMod, L: I(7), R: I(3)}, table.Int(1)},
		{&Binary{Op: OpMod, L: I(7), R: I(0)}, table.Null()},
		{&Unary{Op: OpNeg, X: C("x")}, table.Int(-7)},
		{Add(C("x"), V(table.Null())), table.Null()}, // NULL propagates
		{Add(S("a"), I(1)), table.Null()},            // non-numeric arithmetic
	}
	for _, c := range cases {
		got := evalOne(t, c.e, schema, row)
		if !got.Equal(c.want) || got.IsNull() != c.want.IsNull() {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	schema := table.SchemaOf("x")
	row := table.Row{table.Int(5)}
	cases := []struct {
		e    Expr
		want table.Value
	}{
		{Eq(C("x"), I(5)), table.Bool(true)},
		{Ne(C("x"), I(5)), table.Bool(false)},
		{Lt(C("x"), I(6)), table.Bool(true)},
		{Le(C("x"), I(5)), table.Bool(true)},
		{Gt(C("x"), I(5)), table.Bool(false)},
		{Ge(C("x"), I(5)), table.Bool(true)},
		{Eq(C("x"), F(5)), table.Bool(true)}, // cross-kind numeric
		{Eq(S("a"), S("b")), table.Bool(false)},
		{Lt(S("a"), S("b")), table.Bool(true)},
		{Eq(C("x"), V(table.Null())), table.Null()}, // NULL comparison is NULL
		{Lt(V(table.Null()), I(1)), table.Null()},
	}
	for _, c := range cases {
		got := evalOne(t, c.e, schema, row)
		if got.Kind() != c.want.Kind() || (got.Kind() == table.KindBool && got.AsBool() != c.want.AsBool()) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestCubeEquality(t *testing.T) {
	schema := table.SchemaOf("d")
	cases := []struct {
		l, r table.Value
		want bool
	}{
		{table.All(), table.Int(5), true}, // ALL matches anything
		{table.Int(5), table.All(), true},
		{table.All(), table.All(), true},
		{table.Int(5), table.Int(5), true},
		{table.Int(5), table.Int(6), false},
		{table.Null(), table.Null(), true}, // grouping semantics
		{table.Null(), table.Int(5), false},
		{table.All(), table.Null(), true}, // ALL really matches anything
	}
	for _, c := range cases {
		got := evalOne(t, CubeEq(V(c.l), V(c.r)), schema, table.Row{table.Int(0)})
		if got.Kind() != table.KindBool || got.AsBool() != c.want {
			t.Errorf("CubeEq(%v, %v) = %v, want %v", c.l, c.r, got, c.want)
		}
	}
}

func TestKleeneLogic(t *testing.T) {
	T, F, N := V(table.Bool(true)), V(table.Bool(false)), V(table.Null())
	schema := table.SchemaOf("x")
	row := table.Row{table.Int(0)}
	cases := []struct {
		e    Expr
		want table.Value
	}{
		{And(T, T), table.Bool(true)},
		{And(T, F), table.Bool(false)},
		{And(F, N), table.Bool(false)}, // false dominates unknown
		{And(N, F), table.Bool(false)},
		{And(T, N), table.Null()},
		{Or(F, F), table.Bool(false)},
		{Or(T, N), table.Bool(true)}, // true dominates unknown
		{Or(N, T), table.Bool(true)},
		{Or(F, N), table.Null()},
		{Not(T), table.Bool(false)},
		{Not(N), table.Null()},
	}
	for _, c := range cases {
		got := evalOne(t, c.e, schema, row)
		if got.Kind() != c.want.Kind() || (got.Kind() == table.KindBool && got.AsBool() != c.want.AsBool()) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestIsNull(t *testing.T) {
	schema := table.SchemaOf("x")
	got := evalOne(t, &Unary{Op: OpIsNull, X: V(table.Null())}, schema, table.Row{table.Int(0)})
	if !got.AsBool() {
		t.Error("NULL IS NULL should be true")
	}
	got = evalOne(t, &Unary{Op: OpIsNotNull, X: I(1)}, schema, table.Row{table.Int(0)})
	if !got.AsBool() {
		t.Error("1 IS NOT NULL should be true")
	}
}

func TestTruthSemantics(t *testing.T) {
	// WHERE semantics: only boolean true passes.
	b := NewBinding()
	b.AddRel(table.SchemaOf("x"), "r")
	for _, c := range []struct {
		e    Expr
		want bool
	}{
		{V(table.Bool(true)), true},
		{V(table.Bool(false)), false},
		{V(table.Null()), false},
		{I(1), false}, // non-boolean is not true
	} {
		cm := MustCompile(c.e, b)
		if got := cm.Truth([]table.Row{{table.Int(0)}}); got != c.want {
			t.Errorf("Truth(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestBindingResolution(t *testing.T) {
	b := NewBinding()
	b.AddRel(table.SchemaOf("cust", "month"), "b", "base")
	b.AddRel(table.SchemaOf("cust", "sale"), "r", "sales")

	// Unqualified resolves in slot order (base first).
	c, err := Compile(Eq(C("cust"), QC("r", "cust")), b)
	if err != nil {
		t.Fatal(err)
	}
	frame := []table.Row{
		{table.Str("alice"), table.Int(1)},
		{table.Str("bob"), table.Float(10)},
	}
	if c.Truth(frame) {
		t.Error("base.cust (alice) should not equal r.cust (bob)")
	}

	// Qualifier aliases both work.
	if _, err := Compile(QC("sales", "sale"), b); err != nil {
		t.Errorf("alias resolution failed: %v", err)
	}
	if _, err := Compile(QC("nope", "sale"), b); err == nil {
		t.Error("unknown qualifier should error")
	}
	if _, err := Compile(QC("r", "nope"), b); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := Compile(C("nope"), b); err == nil {
		t.Error("unresolvable bare column should error")
	}
}

func TestAndOrFolding(t *testing.T) {
	if And() != nil {
		t.Error("And() should be nil")
	}
	p := Eq(C("x"), I(1))
	if And(p) != p {
		t.Error("And(p) should be p")
	}
	if And(nil, p, nil) != p {
		t.Error("And should skip nils")
	}
	if Or() != nil || Or(p) != p {
		t.Error("Or folding")
	}
}

func TestSplitConjuncts(t *testing.T) {
	a, b, c := Eq(C("x"), I(1)), Eq(C("y"), I(2)), Eq(C("z"), I(3))
	cj := SplitConjuncts(And(a, b, c))
	if len(cj) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(cj))
	}
	if len(SplitConjuncts(nil)) != 0 {
		t.Error("nil predicate has no conjuncts")
	}
	// OR is not split.
	if len(SplitConjuncts(Or(a, b))) != 1 {
		t.Error("Or must remain one conjunct")
	}
}

func TestAnalyzeThetaClassification(t *testing.T) {
	bind := NewBinding()
	bslot := bind.AddRel(table.SchemaOf("cust", "month", "avg_sale"), "b")
	rslot := bind.AddRel(table.SchemaOf("cust", "month", "state", "sale"), "r")

	theta := And(
		Eq(QC("r", "cust"), C("cust")),              // equi
		Eq(QC("r", "month"), Sub(C("month"), I(1))), // NOT equi (B side is an expression... see below)
		Eq(QC("r", "state"), S("NY")),               // r-only
		Gt(C("avg_sale"), F(10)),                    // b-only
		Gt(QC("r", "sale"), C("avg_sale")),          // residual
	)
	ta, err := AnalyzeTheta(theta, bind, bslot, rslot)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ConjunctClass]int{}
	for _, c := range ta.Conjuncts {
		counts[c.Class]++
	}
	// month conjunct: B side is month-1 → linear solve makes it equi too.
	if counts[ClassEqui] != 2 {
		t.Errorf("equi = %d, want 2 (cust, and linear-solved month)", counts[ClassEqui])
	}
	if counts[ClassROnly] != 1 || counts[ClassBOnly] != 1 || counts[ClassResidual] != 1 {
		t.Errorf("classes = %v", counts)
	}
	if len(ta.EquiBCols) != 2 {
		t.Errorf("EquiBCols = %v", ta.EquiBCols)
	}
}

func TestAnalyzeThetaCubeEquality(t *testing.T) {
	bind := NewBinding()
	bslot := bind.AddRel(table.SchemaOf("prod"), "b")
	rslot := bind.AddRel(table.SchemaOf("prod"), "r")
	ta, err := AnalyzeTheta(CubeEq(QC("r", "prod"), C("prod")), bind, bslot, rslot)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.EquiIsCube) != 1 || !ta.EquiIsCube[0] {
		t.Errorf("cube-equi not detected: %+v", ta)
	}
}

func TestLinearSolveProperty(t *testing.T) {
	// Property: for θ "r.m = b.m - k", the derived RSide evaluated at a
	// detail row gives exactly the base value that matches.
	bind := NewBinding()
	bslot := bind.AddRel(table.SchemaOf("m"), "b")
	rslot := bind.AddRel(table.SchemaOf("m"), "r")
	f := func(m, k int64) bool {
		theta := Eq(QC("r", "m"), Sub(C("m"), V(table.Int(k))))
		ta, err := AnalyzeTheta(theta, bind, bslot, rslot)
		if err != nil || len(ta.EquiBCols) != 1 {
			return false
		}
		c, err := Compile(ta.EquiRSides[0], bind)
		if err != nil {
			return false
		}
		// detail row with r.m = m - k should map back to base m.
		frame := []table.Row{nil, {table.Int(m - k)}}
		return c.Eval(frame).AsInt() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSubstituteCols(t *testing.T) {
	e := And(Eq(C("month"), I(1)), Gt(QC("b", "month"), I(0)))
	out := SubstituteCols(e, map[string]Expr{
		"month":   QC("r", "month"),
		"b.month": QC("r", "month"),
	})
	for _, c := range ColumnsOf(out) {
		if c.Qual != "r" {
			t.Errorf("column %s not substituted", c)
		}
	}
}

func TestColumnsOfDedup(t *testing.T) {
	e := And(Eq(C("x"), C("x")), Eq(C("x"), QC("r", "x")))
	cols := ColumnsOf(e)
	if len(cols) != 2 { // "x" and "r.x"
		t.Errorf("ColumnsOf = %v, want 2 distinct", cols)
	}
}

func TestCallsOfAndSubstituteCalls(t *testing.T) {
	call := &Call{Fn: "avg", Arg: QC("X", "sale")}
	e := Gt(QC("Z", "sale"), call)
	calls := CallsOf(e)
	if len(calls) != 1 || calls[0].Fn != "avg" {
		t.Fatalf("CallsOf = %v", calls)
	}
	out := SubstituteCalls(e, func(c *Call) Expr { return C("avg_x_sale") })
	if len(CallsOf(out)) != 0 {
		t.Error("calls should be gone after substitution")
	}
	// A surviving Call must fail to compile.
	b := NewBinding()
	b.AddRel(table.SchemaOf("sale"), "z")
	if _, err := Compile(e, b); err == nil {
		t.Error("compiling a Call should error")
	}
}

func TestEvalConst(t *testing.T) {
	v, ok := EvalConst(Add(I(2), Mul(I(3), I(4))))
	if !ok || v.AsInt() != 14 {
		t.Errorf("EvalConst = %v, %v", v, ok)
	}
	if _, ok := EvalConst(C("x")); ok {
		t.Error("column reference is not constant")
	}
}

func TestExprStringRendering(t *testing.T) {
	e := And(Eq(QC("Sales", "cust"), C("cust")), Gt(QC("Sales", "sale"), F(1.5)))
	want := "((Sales.cust = cust) AND (Sales.sale > 1.5))"
	if e.String() != want {
		t.Errorf("String = %q, want %q", e.String(), want)
	}
}

func TestRefs(t *testing.T) {
	b := NewBinding()
	s0 := b.AddRel(table.SchemaOf("a"), "x")
	s1 := b.AddRel(table.SchemaOf("b"), "y")
	rs, err := Refs(And(Eq(QC("x", "a"), I(1)), Eq(QC("y", "b"), I(2))), b)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Slots[s0] || !rs.Slots[s1] {
		t.Error("both slots should be referenced")
	}
	if rs.OnlySlot(s0) {
		t.Error("OnlySlot must be false when two slots referenced")
	}
	rs2, _ := Refs(I(5), b)
	if !rs2.OnlySlot(s0) || !rs2.OnlySlot(s1) {
		t.Error("constants reference no slot, OnlySlot is vacuously true")
	}
}
