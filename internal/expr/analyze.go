package expr

import (
	"sort"
	"strings"

	"mdjoin/internal/table"
)

// RefSet records which relations (by binding slot) and columns an
// expression references. It drives the θ-condition analyses of Sections
// 4.2–4.5 of the paper: selection pushdown, base-range pushdown,
// commutativity checks, and index column selection.
type RefSet struct {
	// Slots is the set of referenced binding slots.
	Slots map[int]bool
	// Cols is the set of referenced (slot, ordinal) pairs.
	Cols map[[2]int]bool
}

// Refs computes the reference set of e against a binding. Unresolvable
// columns are reported via the error.
func Refs(e Expr, b *Binding) (*RefSet, error) {
	rs := &RefSet{Slots: map[int]bool{}, Cols: map[[2]int]bool{}}
	var firstErr error
	e.walk(func(n Expr) {
		c, ok := n.(*Col)
		if !ok {
			return
		}
		slot, ord, err := b.resolve(c)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		rs.Slots[slot] = true
		rs.Cols[[2]int{slot, ord}] = true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return rs, nil
}

// OnlySlot reports whether the expression references at most the given
// slot (constant expressions reference no slot and qualify trivially).
func (rs *RefSet) OnlySlot(slot int) bool {
	for s := range rs.Slots {
		if s != slot {
			return false
		}
	}
	return true
}

// SlotCols returns the sorted ordinals referenced in the given slot.
func (rs *RefSet) SlotCols(slot int) []int {
	var out []int
	for sc := range rs.Cols {
		if sc[0] == slot {
			out = append(out, sc[1])
		}
	}
	sort.Ints(out)
	return out
}

// SplitConjuncts flattens a predicate's top-level AND tree into conjuncts.
// Nil input yields nil (the always-true predicate has no conjuncts).
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// ConjunctClass classifies one conjunct of an MD-join θ-condition relative
// to the two slots of the operator's binding (slot 0 = B, slot 1 = R).
type ConjunctClass uint8

const (
	// ClassEqui is "B.col = <R-only expression>": usable for indexing B
	// (Section 4.5) and for Observation 4.1 rewriting.
	ClassEqui ConjunctClass = iota
	// ClassCubeEqui is "B.col =^ <R-only expression>" (cube equality): the
	// B column may hold the ALL marker, which matches any detail value.
	// The executor probes the B index once per {value, ALL} combination —
	// the classic single-pass cube-cell update.
	ClassCubeEqui
	// ClassROnly references only R (and constants): Theorem 4.2 pushes it
	// into a selection on the detail relation.
	ClassROnly
	// ClassBOnly references only B: it prunes which B rows can ever be
	// updated and can be evaluated once per B row.
	ClassBOnly
	// ClassResidual is everything else (e.g. R.sale > B.avg_sale): it must
	// be evaluated per (b, r) candidate pair.
	ClassResidual
)

// String names the class for diagnostics.
func (c ConjunctClass) String() string {
	switch c {
	case ClassEqui:
		return "equi"
	case ClassCubeEqui:
		return "cube-equi"
	case ClassROnly:
		return "r-only"
	case ClassBOnly:
		return "b-only"
	default:
		return "residual"
	}
}

// Conjunct is one analyzed conjunct of a θ-condition.
type Conjunct struct {
	Expr  Expr
	Class ConjunctClass
	// For ClassEqui: the B column ordinal and the matching R-side
	// expression (which references only R and constants).
	BCol  int
	RSide Expr
}

// ThetaAnalysis is the decomposition of an MD-join θ into its usable parts.
// The MD-join executor derives its strategy directly from this analysis:
// EquiBCols/EquiRSides build the hash index on B; ROnly becomes a detail
// pre-filter; BOnly prunes B rows up front; Residual is checked last.
type ThetaAnalysis struct {
	Conjuncts []Conjunct
	// EquiBCols lists B column ordinals with (cube-)equi conjuncts,
	// parallel to EquiRSides; EquiIsCube marks which entries use cube
	// equality and therefore need {value, ALL} probe expansion.
	EquiBCols  []int
	EquiRSides []Expr
	EquiIsCube []bool
	ROnly      []Expr
	BOnly      []Expr
	Residual   []Expr
}

// AnalyzeTheta classifies θ's conjuncts against a two-relation binding
// where slot bslot holds B and slot rslot holds R. A nil θ yields an empty
// analysis (every detail tuple relates to every base row — the degenerate
// grand-total case).
func AnalyzeTheta(theta Expr, b *Binding, bslot, rslot int) (*ThetaAnalysis, error) {
	ta := &ThetaAnalysis{}
	for _, cj := range SplitConjuncts(theta) {
		rs, err := Refs(cj, b)
		if err != nil {
			return nil, err
		}
		c := Conjunct{Expr: cj, Class: ClassResidual, BCol: -1}
		switch {
		case rs.OnlySlot(rslot):
			c.Class = ClassROnly
		case rs.OnlySlot(bslot):
			c.Class = ClassBOnly
		default:
			if bcol, rside, cube, ok := equiForm(cj, b, bslot, rslot); ok {
				if cube {
					c.Class = ClassCubeEqui
				} else {
					c.Class = ClassEqui
				}
				c.BCol = bcol
				c.RSide = rside
			}
		}
		ta.Conjuncts = append(ta.Conjuncts, c)
		switch c.Class {
		case ClassEqui, ClassCubeEqui:
			ta.EquiBCols = append(ta.EquiBCols, c.BCol)
			ta.EquiRSides = append(ta.EquiRSides, c.RSide)
			ta.EquiIsCube = append(ta.EquiIsCube, c.Class == ClassCubeEqui)
		case ClassROnly:
			ta.ROnly = append(ta.ROnly, c.Expr)
		case ClassBOnly:
			ta.BOnly = append(ta.BOnly, c.Expr)
		default:
			ta.Residual = append(ta.Residual, c.Expr)
		}
	}
	return ta, nil
}

// equiForm recognizes conjuncts of the shape "B.col = e(R)" or
// "e(R) = B.col" (also with cube equality =^) where the non-column side
// references only rslot. It additionally solves simple linear forms —
// "B.col ± k = e(R)" rewrites to "B.col = e(R) ∓ k" — so window θs like
// the paper's Example 2.5 ("X.month = month - 1", i.e. R.month = B.month -
// 1 ⇔ B.month = R.month + 1) still hit the Section 4.5 index.
func equiForm(e Expr, b *Binding, bslot, rslot int) (bcol int, rside Expr, cube, ok bool) {
	bin, isBin := e.(*Binary)
	if !isBin || (bin.Op != OpEq && bin.Op != OpCubeEq) {
		return 0, nil, false, false
	}
	try := func(colSide, otherSide Expr) (int, Expr, bool) {
		col, adjust, isLinear := solveLinearBCol(colSide)
		if !isLinear {
			return 0, nil, false
		}
		slot, ord, err := b.resolve(col)
		if err != nil || slot != bslot {
			return 0, nil, false
		}
		rs, err := Refs(otherSide, b)
		if err != nil || !rs.OnlySlot(rslot) {
			return 0, nil, false
		}
		return ord, adjust(otherSide), true
	}
	if ord, rs, ok := try(bin.L, bin.R); ok {
		return ord, rs, bin.Op == OpCubeEq, true
	}
	if ord, rs, ok := try(bin.R, bin.L); ok {
		return ord, rs, bin.Op == OpCubeEq, true
	}
	return 0, nil, false, false
}

// solveLinearBCol matches a bare column or "col ± literal" and returns the
// column plus a function that applies the inverse offset to the other side
// of the equality.
func solveLinearBCol(e Expr) (*Col, func(Expr) Expr, bool) {
	if c, ok := e.(*Col); ok {
		return c, func(o Expr) Expr { return o }, true
	}
	bin, ok := e.(*Binary)
	if !ok || (bin.Op != OpAdd && bin.Op != OpSub) {
		return nil, nil, false
	}
	// col + k  /  col - k
	if c, ok := bin.L.(*Col); ok {
		if lit, ok := bin.R.(*Lit); ok {
			if bin.Op == OpAdd {
				return c, func(o Expr) Expr { return &Binary{Op: OpSub, L: o, R: lit} }, true
			}
			return c, func(o Expr) Expr { return &Binary{Op: OpAdd, L: o, R: lit} }, true
		}
	}
	// k + col (k - col flips sign; skip it — rare and easy to get wrong)
	if lit, ok := bin.L.(*Lit); ok && bin.Op == OpAdd {
		if c, ok := bin.R.(*Col); ok {
			return c, func(o Expr) Expr { return &Binary{Op: OpSub, L: o, R: lit} }, true
		}
	}
	return nil, nil, false
}

// SubstituteCols returns a copy of e with column references rewritten
// through the given mapping (matched by qualifier+name, case-insensitive).
// It implements the attribute renaming of Observation 4.1: a range
// predicate on B's attributes S is pushed to R by replacing each S column
// with the R-side expression it is equated to in θ.
func SubstituteCols(e Expr, mapping map[string]Expr) Expr {
	switch n := e.(type) {
	case *Col:
		if rep, ok := mapping[strings.ToLower(n.String())]; ok {
			return rep
		}
		if rep, ok := mapping[strings.ToLower(n.Name)]; ok {
			return rep
		}
		return n
	case *Lit:
		return n
	case *Unary:
		return &Unary{Op: n.Op, X: SubstituteCols(n.X, mapping)}
	case *Binary:
		return &Binary{Op: n.Op, L: SubstituteCols(n.L, mapping), R: SubstituteCols(n.R, mapping)}
	case *Call:
		if n.Arg == nil {
			return n
		}
		return &Call{Fn: n.Fn, Arg: SubstituteCols(n.Arg, mapping), Star: n.Star}
	default:
		return e
	}
}

// SubstituteCalls returns a copy of e with every aggregate Call node
// replaced by f's result — how internal/sqlext rewrites avg(X.sale) into a
// reference to the column the X grouping variable's MD-join generates.
func SubstituteCalls(e Expr, f func(*Call) Expr) Expr {
	switch n := e.(type) {
	case *Call:
		return f(n)
	case *Unary:
		return &Unary{Op: n.Op, X: SubstituteCalls(n.X, f)}
	case *Binary:
		return &Binary{Op: n.Op, L: SubstituteCalls(n.L, f), R: SubstituteCalls(n.R, f)}
	default:
		return e
	}
}

// CallsOf returns every aggregate Call node in e, in first-seen order.
func CallsOf(e Expr) []*Call {
	if e == nil {
		return nil
	}
	var out []*Call
	e.walk(func(n Expr) {
		if c, ok := n.(*Call); ok {
			out = append(out, c)
		}
	})
	return out
}

// ColumnsOf returns the distinct column references in e, in first-seen
// order; used by optimizer dependency analysis (Theorem 4.3) to detect
// whether a θ mentions aggregate columns generated by an earlier MD-join.
func ColumnsOf(e Expr) []*Col {
	if e == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []*Col
	e.walk(func(n Expr) {
		if c, ok := n.(*Col); ok {
			key := strings.ToLower(c.String())
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
	})
	return out
}

// EvalConst evaluates an expression that references no columns; it returns
// (value, true) on success and (NULL, false) if the expression has column
// references.
func EvalConst(e Expr) (table.Value, bool) {
	b := NewBinding()
	c, err := Compile(e, b)
	if err != nil {
		return table.Null(), false
	}
	return c.Eval(nil), true
}
