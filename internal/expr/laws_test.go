package expr

import (
	"math/rand"
	"testing"

	"mdjoin/internal/table"
)

// This file property-tests the logical laws the rewrite rules silently
// rely on: Kleene three-valued logic obeys De Morgan and double negation,
// conjunct splitting and re-folding is semantics-preserving, and cube
// equality is reflexive/symmetric. The checks evaluate randomly generated
// predicate trees against random rows and compare results cell by cell.

// randValue draws a value including NULL and ALL with some probability.
func randValue(rng *rand.Rand) table.Value {
	switch rng.Intn(10) {
	case 0:
		return table.Null()
	case 1:
		return table.All()
	case 2:
		return table.Str([]string{"a", "b", "c"}[rng.Intn(3)])
	case 3:
		return table.Float(float64(rng.Intn(5)) / 2)
	default:
		return table.Int(int64(rng.Intn(5)))
	}
}

// randPredicate builds a random boolean expression over columns c0..c3.
func randPredicate(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		l := &Col{Name: []string{"c0", "c1", "c2", "c3"}[rng.Intn(4)]}
		r := Expr(&Col{Name: []string{"c0", "c1", "c2", "c3"}[rng.Intn(4)]})
		if rng.Intn(2) == 0 {
			r = V(randValue(rng))
		}
		ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpCubeEq}
		return &Binary{Op: ops[rng.Intn(len(ops))], L: l, R: r}
	}
	switch rng.Intn(3) {
	case 0:
		return &Binary{Op: OpAnd, L: randPredicate(rng, depth-1), R: randPredicate(rng, depth-1)}
	case 1:
		return &Binary{Op: OpOr, L: randPredicate(rng, depth-1), R: randPredicate(rng, depth-1)}
	default:
		return Not(randPredicate(rng, depth-1))
	}
}

func evalPred(t *testing.T, e Expr, row table.Row) table.Value {
	t.Helper()
	b := NewBinding()
	b.AddRel(table.SchemaOf("c0", "c1", "c2", "c3"), "r")
	c, err := Compile(e, b)
	if err != nil {
		t.Fatalf("compiling %s: %v", e, err)
	}
	return c.Eval([]table.Row{row})
}

func sameTruth(a, b table.Value) bool {
	if a.Kind() != table.KindBool || b.Kind() != table.KindBool {
		return a.IsNull() == b.IsNull() && a.Kind() == b.Kind()
	}
	return a.AsBool() == b.AsBool()
}

func randRow(rng *rand.Rand) table.Row {
	return table.Row{randValue(rng), randValue(rng), randValue(rng), randValue(rng)}
}

func TestDeMorganUnderKleene(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		p := randPredicate(rng, 2)
		q := randPredicate(rng, 2)
		row := randRow(rng)
		// ¬(p ∧ q) ≡ ¬p ∨ ¬q
		lhs := evalPred(t, Not(And(p, q)), row)
		rhs := evalPred(t, Or(Not(p), Not(q)), row)
		if !sameTruth(lhs, rhs) {
			t.Fatalf("De Morgan AND violated: %s over %v: %v vs %v", And(p, q), row, lhs, rhs)
		}
		// ¬(p ∨ q) ≡ ¬p ∧ ¬q
		lhs = evalPred(t, Not(Or(p, q)), row)
		rhs = evalPred(t, And(Not(p), Not(q)), row)
		if !sameTruth(lhs, rhs) {
			t.Fatalf("De Morgan OR violated: %s over %v: %v vs %v", Or(p, q), row, lhs, rhs)
		}
	}
}

func TestDoubleNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 300; trial++ {
		p := randPredicate(rng, 2)
		row := randRow(rng)
		a := evalPred(t, p, row)
		b := evalPred(t, Not(Not(p)), row)
		if !sameTruth(a, b) {
			t.Fatalf("double negation violated for %s over %v: %v vs %v", p, row, a, b)
		}
	}
}

func TestAndOrCommutativity(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 300; trial++ {
		p := randPredicate(rng, 2)
		q := randPredicate(rng, 2)
		row := randRow(rng)
		if !sameTruth(evalPred(t, And(p, q), row), evalPred(t, And(q, p), row)) {
			t.Fatalf("AND not commutative for %s / %s", p, q)
		}
		if !sameTruth(evalPred(t, Or(p, q), row), evalPred(t, Or(q, p), row)) {
			t.Fatalf("OR not commutative for %s / %s", p, q)
		}
	}
}

func TestSplitRefoldPreservesSemantics(t *testing.T) {
	// The θ analysis machinery splits conjunctions and re-folds subsets;
	// splitting then And-ing back must not change any evaluation.
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 300; trial++ {
		var conj []Expr
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			conj = append(conj, randPredicate(rng, 1))
		}
		orig := And(conj...)
		refolded := And(SplitConjuncts(orig)...)
		row := randRow(rng)
		if !sameTruth(evalPred(t, orig, row), evalPred(t, refolded, row)) {
			t.Fatalf("split/refold changed semantics of %s", orig)
		}
	}
}

func TestCubeEqReflexiveSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 300; trial++ {
		a, b := randValue(rng), randValue(rng)
		refl := evalPred(t, CubeEq(V(a), V(a)), table.Row{table.Int(0), table.Int(0), table.Int(0), table.Int(0)})
		if !refl.AsBool() {
			t.Fatalf("=^ not reflexive for %v", a)
		}
		ab := evalPred(t, CubeEq(V(a), V(b)), table.Row{table.Int(0), table.Int(0), table.Int(0), table.Int(0)})
		ba := evalPred(t, CubeEq(V(b), V(a)), table.Row{table.Int(0), table.Int(0), table.Int(0), table.Int(0)})
		if ab.AsBool() != ba.AsBool() {
			t.Fatalf("=^ not symmetric for %v, %v", a, b)
		}
	}
}

func TestComparisonTrichotomyOnRealValues(t *testing.T) {
	// For non-NULL, non-ALL values exactly one of <, =, > holds.
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 300; trial++ {
		a, b := table.Int(int64(rng.Intn(10))), table.Float(float64(rng.Intn(10)))
		row := table.Row{table.Int(0), table.Int(0), table.Int(0), table.Int(0)}
		lt := evalPred(t, Lt(V(a), V(b)), row).AsBool()
		eq := evalPred(t, Eq(V(a), V(b)), row).AsBool()
		gt := evalPred(t, Gt(V(a), V(b)), row).AsBool()
		count := 0
		for _, x := range []bool{lt, eq, gt} {
			if x {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("trichotomy violated for %v vs %v: lt=%v eq=%v gt=%v", a, b, lt, eq, gt)
		}
	}
}
