package expr

import "mdjoin/internal/table"

// Batch evaluation: the vectorized MD-join executor processes the detail
// relation in fixed-size batches, so per-phase predicates and index-key
// expressions are evaluated once per batch into reusable column and
// selection vectors instead of being re-dispatched tuple by tuple from the
// scan loop.
//
// The convention mirrors columnar engines' selection vectors: a batch is a
// slice of rows bound one at a time to a single frame slot (the other
// slots stay fixed for the whole batch — for an MD-join θ, slot 1 varies
// over R while slot 0 is nil or a pinned B row), and sel lists the batch
// positions still alive. Both vector types are caller-owned and reused
// across batches, so steady-state evaluation allocates nothing.

// IdentitySel resets sel to the full selection [0, n) and returns it,
// growing the buffer only when n exceeds its capacity.
func IdentitySel(sel []int32, n int) []int32 {
	if cap(sel) < n {
		sel = make([]int32, n)
	}
	sel = sel[:n]
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// EvalSlotBatch evaluates the expression once per selected batch row,
// binding batch[si] to frame[slot] for each si in sel, and writes the
// results into out[si] (out is positional, parallel to batch). It returns
// out, grown if its capacity was short. Unselected positions are left
// untouched. frame[slot] is restored to nil afterwards.
func (c *Compiled) EvalSlotBatch(frame []table.Row, slot int, batch []table.Row, sel []int32, out []table.Value) []table.Value {
	if cap(out) < len(batch) {
		out = make([]table.Value, len(batch))
	}
	out = out[:len(batch)]
	for _, si := range sel {
		frame[slot] = batch[si]
		out[si] = c.eval(frame)
	}
	frame[slot] = nil
	return out
}

// FilterSlotBatch evaluates the expression as a predicate (SQL WHERE
// semantics: only boolean true passes) over the selected batch rows and
// compacts sel in place to the surviving positions, returning the
// shortened slice. frame[slot] is restored to nil afterwards.
func (c *Compiled) FilterSlotBatch(frame []table.Row, slot int, batch []table.Row, sel []int32) []int32 {
	out := sel[:0]
	for _, si := range sel {
		frame[slot] = batch[si]
		if v := c.eval(frame); v.Kind() == table.KindBool && v.AsBool() {
			out = append(out, si)
		}
	}
	frame[slot] = nil
	return out
}
