package expr

import (
	"math/rand"
	"testing"

	"mdjoin/internal/table"
)

// Native fuzz target for the two expression evaluators. Corpus bytes are
// decoded into a well-formed expression tree (so every input exercises
// the evaluators rather than dying in a constructor), printed, compiled
// both ways, and the chunk kernels are pinned position-by-position
// against the scalar path over the mixed-representation fixture chunk —
// the differential oracle of TestEvalChunkMatchesScalar, driven by the
// coverage-guided mutator instead of math/rand. Run continuously with
//
//	go test ./internal/expr -fuzz FuzzEvalChunkVsScalar
//
// or for the CI smoke slice, make fuzz-smoke.

// exprDecoder turns an arbitrary byte string into an expression tree.
// Exhausted input yields zero bytes, which decode to leaves, so every
// input terminates.
type exprDecoder struct {
	data []byte
	pos  int
}

func (d *exprDecoder) next() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

var fuzzWords = [...]string{"ak", "ca", "ny", "zz"}
var fuzzCols = [...]string{"i", "f", "s", "bl", "mix"}
var fuzzCmps = [...]func(l, r Expr) Expr{Eq, Ne, Lt, Le, Gt, Ge, CubeEq}

func (d *exprDecoder) expr(depth int) Expr {
	op := d.next() % 16
	if depth <= 0 {
		op %= 7 // leaves only
	}
	switch op {
	case 0:
		return I(int64(int8(d.next())))
	case 1:
		return F(float64(int8(d.next())) / 4)
	case 2:
		return S(fuzzWords[d.next()%4])
	case 3:
		return V(table.Null())
	case 4:
		return V(table.All())
	case 5, 6:
		return QC("r", fuzzCols[d.next()%5])
	case 7:
		return Not(d.expr(depth - 1))
	case 8:
		return &Unary{Op: OpIsNull, X: d.expr(depth - 1)}
	case 9:
		return And(d.expr(depth-1), d.expr(depth-1))
	case 10:
		return Or(d.expr(depth-1), d.expr(depth-1))
	case 11:
		return Add(d.expr(depth-1), d.expr(depth-1))
	case 12:
		return Sub(d.expr(depth-1), d.expr(depth-1))
	case 13:
		return Mul(d.expr(depth-1), d.expr(depth-1))
	case 14:
		return Div(d.expr(depth-1), d.expr(depth-1))
	default:
		cmp := fuzzCmps[d.next()%7]
		return cmp(d.expr(depth-1), d.expr(depth-1))
	}
}

func FuzzEvalChunkVsScalar(f *testing.F) {
	f.Add([]byte{})                                      // I(0)
	f.Add([]byte{15, 0, 5, 0, 5, 1})                     // (r.i = r.f)
	f.Add([]byte{11, 5, 0, 0, 3})                        // (r.i + 3)
	f.Add([]byte{9, 8, 5, 3, 7, 5, 4})                   // ((r.bl IS NULL) AND (NOT r.mix))
	f.Add([]byte{15, 6, 5, 2, 2, 1})                     // (r.s =^ "ca")
	f.Add([]byte{15, 0, 5, 2, 2, 1})                     // (r.s = "ca"): dict-code equality
	f.Add([]byte{15, 0, 5, 2, 5, 2})                     // (r.s = r.s): dict vs dict column
	f.Add([]byte{14, 5, 1, 12, 5, 0, 0, 2})              // (r.f / (r.i - 2))
	f.Add([]byte{10, 15, 2, 5, 4, 3, 8, 13, 1, 8, 1, 8}) // nested mixed tree

	f.Fuzz(func(t *testing.T, data []byte) {
		d := &exprDecoder{data: data}
		e := d.expr(4)
		_ = e.String() // printing any decoded tree must not panic

		// The fixture is deterministic: only the expression varies, so
		// every crash reproduces from its corpus entry alone.
		rng := rand.New(rand.NewSource(1))
		bind, ch, rows := chunkFixture(rng, 48)

		scalar, err := Compile(e, bind)
		if err != nil {
			return // e.g. a column shape the binding rejects; not the target
		}
		cc, err := CompileChunk(e, bind, 1)
		if err != nil {
			t.Fatalf("CompileChunk(%s) failed after Compile succeeded: %v", e, err)
		}

		sel := IdentitySel(nil, ch.Len())
		scratch := new(table.Column)
		out := cc.EvalChunk(ch, sel, scratch)

		frame := make([]table.Row, 2)
		for _, si := range sel {
			frame[1] = rows[si]
			want := scalar.Eval(frame)
			if got := out.Value(int(si)); !valuesAgree(got, want) {
				t.Fatalf("%s at %d: chunk %v (%d) vs scalar %v (%d)",
					e, si, got, got.Kind(), want, want.Kind())
			}
		}

		// The compacted filter must agree with scalar Truth at every
		// position, in order.
		fsel := cc.FilterChunk(ch, IdentitySel(nil, ch.Len()))
		j := 0
		for _, si := range IdentitySel(nil, ch.Len()) {
			frame[1] = rows[si]
			if scalar.Truth(frame) {
				if j >= len(fsel) || fsel[j] != si {
					t.Fatalf("%s: FilterChunk missed position %d", e, si)
				}
				j++
			}
		}
		if j != len(fsel) {
			t.Fatalf("%s: FilterChunk kept %d extra positions", e, len(fsel)-j)
		}
	})
}
