// Package baseline implements the "standard relational algebra / commercial
// DBMS" comparators the paper measures the MD-join against.
//
// Section 5 reports that the EMF-SQL prototype (MD-join evaluation) ran an
// order of magnitude faster than a commercially available DBMS on Example
// 2.5. We reproduce that comparison with two baseline executions of the
// same queries on our own classic engine (internal/engine), sharing
// storage, expression evaluation and aggregate code with the MD-join so
// the measured gap isolates plan shape:
//
//   - JoinPlan: the best multi-block SQL92 rewrite — subquery-per-aggregate
//     materialized with GROUP BY, recombined with LEFT OUTER JOINs on the
//     base table (the four-outer-join plan Example 2.2's discussion
//     describes).
//   - CorrelatedPlan: the correlated-subquery execution strategy of
//     2001-era optimizers — for every base row, re-scan the detail
//     relation once per aggregate. This is the plan shape behind the
//     paper's order-of-magnitude observation.
package baseline

import (
	"fmt"

	"mdjoin/internal/agg"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Subquery is one aggregate block of a decision-support query: compute
// Aggs over the detail rows satisfying Where, grouped by Keys, and attach
// the results to the base table by equating base columns with the
// (possibly shifted) group keys.
type Subquery struct {
	// Where filters the detail relation (e.g. state = 'NY').
	Where expr.Expr
	// Keys are the detail grouping columns (e.g. cust, month).
	Keys []string
	// JoinOn maps each base column to the expression over the subquery's
	// key columns it must equal (e.g. month → month + 1 for "previous
	// month"). Entries default to identity for same-named keys.
	JoinOn map[string]expr.Expr
	// Aggs are the aggregates to compute, named uniquely across the query.
	Aggs []agg.Spec
	// Correlated, when non-nil, is an extra predicate over the base row
	// (columns qualified "b" — including aggregates attached by earlier
	// subqueries) and the detail row (bare columns). It makes the
	// subquery correlated beyond key equality — Example 2.5's "sale
	// between the neighbouring months' averages". JoinPlan must then
	// θ-join the raw detail and re-group (no pre-aggregation possible);
	// CorrelatedPlan folds it into the per-base-row rescan.
	Correlated expr.Expr
}

// JoinPlan evaluates base ⟕ sub₁ ⟕ sub₂ ⟕ ... : each subquery is
// materialized with a full GROUP BY of (filtered) detail, then left-outer
// joined to the running result on the base columns. This is the multi-
// block plan a careful SQL author produces; it scans the detail once per
// subquery and materializes every intermediate join.
func JoinPlan(base, detail *table.Table, subs []Subquery) (*table.Table, error) {
	cur := base
	for si, sub := range subs {
		filtered, err := engine.Select(detail, sub.Where)
		if err != nil {
			return nil, fmt.Errorf("baseline: subquery %d filter: %w", si, err)
		}
		if sub.Correlated != nil {
			cur, err = joinCorrelated(cur, filtered, sub)
			if err != nil {
				return nil, fmt.Errorf("baseline: subquery %d: %w", si, err)
			}
			continue
		}
		grouped, err := engine.GroupBy(filtered, sub.Keys, sub.Aggs)
		if err != nil {
			return nil, fmt.Errorf("baseline: subquery %d group-by: %w", si, err)
		}
		// Rename the subquery's key columns so they don't collide with the
		// base's; the join predicate references them via the "sq" alias.
		on := joinPredicate(base, sub)
		joined, err := engine.Join(cur, grouped, "b", "sq", on, engine.LeftOuterJoin)
		if err != nil {
			return nil, fmt.Errorf("baseline: subquery %d join: %w", si, err)
		}
		// Drop the subquery's key columns, keeping base + aggregates.
		keep := engine.Cols(cur.Schema.Names()...)
		for _, a := range sub.Aggs {
			keep = append(keep, engine.ProjCol{Expr: expr.C(a.OutName())})
		}
		cur, err = engine.Project(joined, keep, false)
		if err != nil {
			return nil, fmt.Errorf("baseline: subquery %d projection: %w", si, err)
		}
		coalesceCounts(cur, sub.Aggs)
	}
	return cur, nil
}

// coalesceCounts replaces NULL count results with 0 in place — the
// COALESCE(n, 0) a careful SQL author adds after an outer join, closing
// the semantic gap the paper notes between standard aggregation (absent
// group → NULL from the outer join) and the MD-join (empty range → 0).
func coalesceCounts(t *table.Table, aggs []agg.Spec) {
	for _, a := range aggs {
		fn, err := agg.Lookup(a.Func)
		if err != nil {
			continue
		}
		// Only aggregates whose empty-range result is non-NULL need the
		// coalesce; that is exactly count (and count_distinct).
		if !fn.NewState().Result().IsNull() {
			col := t.Schema.MustColIndex(a.OutName())
			zero := fn.NewState().Result()
			for _, r := range t.Rows {
				if r[col].IsNull() {
					r[col] = zero
				}
			}
		}
	}
}

// joinCorrelated evaluates a correlated subquery the multi-block way: θ
// left-outer-join the running result against the raw detail (key equality
// plus the correlated predicate), then re-group on every base column to
// aggregate the matches. The join materializes up to |matching detail|
// rows — the cost the MD-join avoids by aggregating in place.
func joinCorrelated(cur, detail *table.Table, sub Subquery) (*table.Table, error) {
	var conj []expr.Expr
	for _, k := range sub.Keys {
		if !cur.Schema.Has(k) {
			return nil, fmt.Errorf("correlated key %q not in base schema %v", k, cur.Schema.Names())
		}
		conj = append(conj, expr.Eq(expr.QC("b", k), expr.QC("sq", k)))
	}
	if sub.Correlated != nil {
		conj = append(conj, requalify(sub.Correlated, "sq"))
	}
	joined, err := engine.Join(cur, detail, "b", "sq", expr.And(conj...), engine.LeftOuterJoin)
	if err != nil {
		return nil, err
	}
	// Re-group on all base columns; aggregate arguments reference the
	// detail's columns (renamed with the sq_ prefix on collision).
	aggs := make([]agg.Spec, len(sub.Aggs))
	for i, a := range sub.Aggs {
		arg := a.Arg
		if arg != nil {
			mapping := map[string]expr.Expr{}
			for _, c := range expr.ColumnsOf(arg) {
				name := c.Name
				if cur.Schema.Has(name) {
					name = "sq_" + name
				}
				mapping[lower(c.String())] = expr.C(name)
			}
			arg = expr.SubstituteCols(arg, mapping)
		} else {
			// count(*) would count the NULL-padded row of empty groups;
			// count a detail key column instead (NULL-padded → 0).
			name := sub.Keys[0]
			if cur.Schema.Has(name) {
				name = "sq_" + name
			}
			arg = expr.C(name)
		}
		aggs[i] = agg.Spec{Func: a.Func, Arg: arg, As: a.OutName()}
	}
	return engine.GroupBy(joined, cur.Schema.Names(), aggs)
}

// requalify rewrites bare detail columns with the given alias, leaving
// b-qualified base references alone.
func requalify(e expr.Expr, alias string) expr.Expr {
	mapping := map[string]expr.Expr{}
	for _, c := range expr.ColumnsOf(e) {
		if c.Qual == "" {
			mapping[lower(c.Name)] = expr.QC(alias, c.Name)
		}
	}
	return expr.SubstituteCols(e, mapping)
}

// joinPredicate builds the left-outer-join condition between the running
// base result and a materialized subquery.
func joinPredicate(base *table.Table, sub Subquery) expr.Expr {
	var conj []expr.Expr
	for _, bcol := range base.Schema.Names() {
		var rhs expr.Expr
		if sub.JoinOn != nil {
			if e, ok := sub.JoinOn[bcol]; ok {
				rhs = qualify(e, "sq")
			}
		}
		if rhs == nil {
			// Identity join on same-named keys only.
			found := false
			for _, k := range sub.Keys {
				if equalFold(k, bcol) {
					found = true
					break
				}
			}
			if !found {
				continue
			}
			rhs = expr.QC("sq", bcol)
		}
		conj = append(conj, expr.Eq(expr.QC("b", bcol), rhs))
	}
	return expr.And(conj...)
}

// qualify rewrites bare columns with the given qualifier.
func qualify(e expr.Expr, qual string) expr.Expr {
	mapping := map[string]expr.Expr{}
	for _, c := range expr.ColumnsOf(e) {
		if c.Qual == "" {
			mapping[lower(c.Name)] = expr.QC(qual, c.Name)
		}
	}
	return expr.SubstituteCols(e, mapping)
}

// CorrelatedPlan evaluates the same query the way 2001-era commercial
// optimizers executed correlated subqueries: for every row of the base
// table and every subquery, re-scan the (filtered) detail relation and
// aggregate the rows whose keys match. Complexity O(|B| · |subs| · |R|) —
// the plan shape responsible for the paper's order-of-magnitude report.
func CorrelatedPlan(base, detail *table.Table, subs []Subquery) (*table.Table, error) {
	outSchema := base.Schema
	for _, sub := range subs {
		outSchema = outSchema.Append(agg.OutColumns(sub.Aggs)...)
	}
	out := table.New(outSchema)

	// Pre-compile per-subquery machinery once.
	type compiledSub struct {
		where   *expr.Compiled
		corr    *expr.Compiled // over (base-so-far, detail) frames
		keyIdx  []int
		keyVals []*expr.Compiled // base-side expressions for each key
		specs   []*agg.Compiled
		nBase   int // base width when this subquery runs
	}
	// Base rows grow as subqueries attach aggregates; track the schema a
	// correlated predicate sees.
	runningSchema := base.Schema
	csubs := make([]*compiledSub, len(subs))
	for si, sub := range subs {
		cs := &compiledSub{nBase: runningSchema.Len()}
		dbind := expr.NewBinding()
		dbind.AddRel(detail.Schema)
		if sub.Where != nil {
			c, err := expr.Compile(sub.Where, dbind)
			if err != nil {
				return nil, err
			}
			cs.where = c
		}
		if sub.Correlated != nil {
			cbind := expr.NewBinding()
			cbind.AddRel(runningSchema, "b", "base")
			cbind.AddRel(detail.Schema)
			c, err := expr.Compile(sub.Correlated, cbind)
			if err != nil {
				return nil, err
			}
			cs.corr = c
		}
		for _, k := range sub.Keys {
			j := detail.Schema.ColIndex(k)
			if j < 0 {
				return nil, fmt.Errorf("baseline: key %q not in detail schema", k)
			}
			cs.keyIdx = append(cs.keyIdx, j)
		}
		bbind := expr.NewBinding()
		bbind.AddRel(runningSchema)
		for _, k := range sub.Keys {
			// The base-side value each key must equal: invert JoinOn
			// (JoinOn maps base column → key expression); for identity
			// joins the base column has the key's name.
			e := baseSideFor(sub, k)
			c, err := expr.Compile(e, bbind)
			if err != nil {
				return nil, fmt.Errorf("baseline: base-side key %q: %w", k, err)
			}
			cs.keyVals = append(cs.keyVals, c)
		}
		specs, err := agg.CompileSpecs(sub.Aggs, dbind)
		if err != nil {
			return nil, err
		}
		cs.specs = specs
		csubs[si] = cs
		runningSchema = runningSchema.Append(agg.OutColumns(sub.Aggs)...)
	}

	dframe := make([]table.Row, 1)
	cframe := make([]table.Row, 2)
	for _, brow := range base.Rows {
		row := append(table.Row{}, brow...)
		for _, cs := range csubs {
			states := make([]agg.State, len(cs.specs))
			for i, sp := range cs.specs {
				states[i] = sp.NewState()
			}
			cframe[0] = row
			want := make([]table.Value, len(cs.keyVals))
			for i, kv := range cs.keyVals {
				want[i] = kv.Eval(cframe[:1])
			}
			// The correlated re-scan.
			for _, drow := range detail.Rows {
				dframe[0] = drow
				if cs.where != nil && !cs.where.Truth(dframe) {
					continue
				}
				match := true
				for i, j := range cs.keyIdx {
					if want[i].IsNull() || !drow[j].Equal(want[i]) {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				if cs.corr != nil {
					cframe[1] = drow
					if !cs.corr.Truth(cframe) {
						continue
					}
				}
				for i, sp := range cs.specs {
					sp.Feed(states[i], dframe)
				}
			}
			for _, st := range states {
				row = append(row, st.Result())
			}
		}
		out.Append(row)
	}
	return out, nil
}

// baseSideFor computes, for a subquery key column, the base-side
// expression whose value selects the matching group. JoinOn maps base
// column b → key expression e(keys); when e is "k + c" or "k - c" over a
// single key k, the inverse is applied; identity otherwise.
func baseSideFor(sub Subquery, key string) expr.Expr {
	for bcol, e := range sub.JoinOn {
		switch n := e.(type) {
		case *expr.Col:
			if equalFold(n.Name, key) {
				return expr.C(bcol)
			}
		case *expr.Binary:
			if c, ok := n.L.(*expr.Col); ok && equalFold(c.Name, key) {
				if lit, ok := n.R.(*expr.Lit); ok {
					switch n.Op {
					case expr.OpAdd: // base = key + c → key = base - c
						return expr.Sub(expr.C(bcol), &expr.Lit{Val: lit.Val})
					case expr.OpSub:
						return expr.Add(expr.C(bcol), &expr.Lit{Val: lit.Val})
					}
				}
			}
		}
	}
	return expr.C(key)
}

func equalFold(a, b string) bool {
	return lower(a) == lower(b)
}

func lower(s string) string {
	out := []byte(s)
	for i, c := range out {
		if 'A' <= c && c <= 'Z' {
			out[i] = c + 'a' - 'A'
		}
	}
	return string(out)
}
