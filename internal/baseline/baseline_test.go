package baseline

import (
	"math/rand"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/cube"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

// The baselines exist to be compared against the MD-join; these tests pin
// that all three executions compute the same relation, so the benchmark
// comparisons in cmd/mdbench and bench_test.go are apples-to-apples.

func genSales(n int, seed int64) *table.Table {
	return workload.Sales(workload.SalesConfig{
		Rows: n, Customers: 10, Products: 6, Years: 2, FirstYear: 1997, Seed: seed,
	})
}

func TestJoinPlanMatchesMDJoinSimple(t *testing.T) {
	detail := genSales(300, 1)
	base, err := cube.DistinctBase(detail, "cust")
	if err != nil {
		t.Fatal(err)
	}
	subs := []Subquery{
		{
			Where: expr.Eq(expr.C("state"), expr.S("NY")),
			Keys:  []string{"cust"},
			Aggs:  []agg.Spec{agg.NewSpec("sum", expr.C("sale"), "ny_total")},
		},
		{
			Keys: []string{"cust"},
			Aggs: []agg.Spec{agg.NewSpec("count", nil, "n")},
		},
	}
	jp, err := JoinPlan(base, detail, subs)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CorrelatedPlan(base, detail, subs)
	if err != nil {
		t.Fatal(err)
	}

	steps := []core.Step{
		{Detail: "Sales", Phase: core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "ny_total")},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
				expr.Eq(expr.QC("R", "state"), expr.S("NY"))),
		}},
		{Detail: "Sales", Phase: core.Phase{
			Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
			Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
		}},
	}
	md, err := core.EvalSeries(base, map[string]*table.Table{"Sales": detail}, steps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if d := md.Diff(jp); d != "" {
		t.Errorf("JoinPlan differs from MD-join: %s", d)
	}
	if d := md.Diff(cp); d != "" {
		t.Errorf("CorrelatedPlan differs from MD-join: %s", d)
	}
}

func TestShiftedJoinKeys(t *testing.T) {
	// The "previous month" JoinOn shape of Example 2.5.
	detail := genSales(400, 2)
	base, err := cube.DistinctBase(detail, "prod", "month")
	if err != nil {
		t.Fatal(err)
	}
	subs := []Subquery{{
		Keys:   []string{"prod", "month"},
		JoinOn: map[string]expr.Expr{"month": expr.Add(expr.C("month"), expr.I(1))},
		Aggs:   []agg.Spec{agg.NewSpec("avg", expr.C("sale"), "avg_prev")},
	}}
	jp, err := JoinPlan(base, detail, subs)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CorrelatedPlan(base, detail, subs)
	if err != nil {
		t.Fatal(err)
	}
	md, err := core.MDJoin(base, detail,
		[]agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_prev")},
		expr.And(
			expr.Eq(expr.QC("R", "prod"), expr.C("prod")),
			expr.Eq(expr.QC("R", "month"), expr.Sub(expr.C("month"), expr.I(1)))))
	if err != nil {
		t.Fatal(err)
	}
	if d := md.Diff(jp); d != "" {
		t.Errorf("JoinPlan differs: %s", d)
	}
	if d := md.Diff(cp); d != "" {
		t.Errorf("CorrelatedPlan differs: %s", d)
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	// The full Example 2.5 pipeline with the correlated final block.
	detail := genSales(500, 3)
	base, err := cube.DistinctBase(detail, "prod", "month")
	if err != nil {
		t.Fatal(err)
	}
	subs := []Subquery{
		{
			Keys:   []string{"prod", "month"},
			JoinOn: map[string]expr.Expr{"month": expr.Add(expr.C("month"), expr.I(1))},
			Aggs:   []agg.Spec{agg.NewSpec("avg", expr.C("sale"), "avg_prev")},
		},
		{
			Keys:   []string{"prod", "month"},
			JoinOn: map[string]expr.Expr{"month": expr.Sub(expr.C("month"), expr.I(1))},
			Aggs:   []agg.Spec{agg.NewSpec("avg", expr.C("sale"), "avg_next")},
		},
		{
			Keys: []string{"prod", "month"},
			Aggs: []agg.Spec{agg.NewSpec("count", nil, "n")},
			Correlated: expr.And(
				expr.Gt(expr.C("sale"), expr.QC("b", "avg_prev")),
				expr.Lt(expr.C("sale"), expr.QC("b", "avg_next"))),
		},
	}
	jp, err := JoinPlan(base, detail, subs)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CorrelatedPlan(base, detail, subs)
	if err != nil {
		t.Fatal(err)
	}
	if d := jp.Diff(cp); d != "" {
		t.Fatalf("join vs correlated: %s", d)
	}

	prodEq := expr.Eq(expr.QC("R", "prod"), expr.C("prod"))
	steps := []core.Step{
		{Detail: "Sales", Phase: core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_prev")},
			Theta: expr.And(prodEq,
				expr.Eq(expr.QC("R", "month"), expr.Sub(expr.C("month"), expr.I(1)))),
		}},
		{Detail: "Sales", Phase: core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_next")},
			Theta: expr.And(prodEq,
				expr.Eq(expr.QC("R", "month"), expr.Add(expr.C("month"), expr.I(1)))),
		}},
		{Detail: "Sales", Phase: core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("count", nil, "n")},
			Theta: expr.And(prodEq,
				expr.Eq(expr.QC("R", "month"), expr.C("month")),
				expr.Gt(expr.QC("R", "sale"), expr.C("avg_prev")),
				expr.Lt(expr.QC("R", "sale"), expr.C("avg_next"))),
		}},
	}
	md, err := core.EvalSeries(base, map[string]*table.Table{"Sales": detail}, steps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := md.Diff(jp); d != "" {
		t.Fatalf("MD-join vs baselines: %s", d)
	}
}

func TestRandomizedAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		detail := genSales(100+rng.Intn(200), int64(trial+10))
		base, err := cube.DistinctBase(detail, "prod")
		if err != nil {
			t.Fatal(err)
		}
		state := []string{"NY", "NJ", "CT"}[rng.Intn(3)]
		subs := []Subquery{{
			Where: expr.Eq(expr.C("state"), expr.S(state)),
			Keys:  []string{"prod"},
			Aggs: []agg.Spec{
				agg.NewSpec("sum", expr.C("sale"), "total"),
				agg.NewSpec("count", nil, "n"),
				agg.NewSpec("max", expr.C("sale"), "hi"),
			},
		}}
		jp, err := JoinPlan(base, detail, subs)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := CorrelatedPlan(base, detail, subs)
		if err != nil {
			t.Fatal(err)
		}
		md, err := core.MDJoin(base, detail, []agg.Spec{
			agg.NewSpec("sum", expr.QC("R", "sale"), "total"),
			agg.NewSpec("count", nil, "n"),
			agg.NewSpec("max", expr.QC("R", "sale"), "hi"),
		}, expr.And(
			expr.Eq(expr.QC("R", "prod"), expr.C("prod")),
			expr.Eq(expr.QC("R", "state"), expr.S(state))))
		if err != nil {
			t.Fatal(err)
		}
		if d := md.Diff(jp); d != "" {
			t.Fatalf("trial %d JoinPlan: %s", trial, d)
		}
		if d := md.Diff(cp); d != "" {
			t.Fatalf("trial %d CorrelatedPlan: %s", trial, d)
		}
	}
}

func TestBadInputs(t *testing.T) {
	detail := genSales(50, 5)
	base, _ := cube.DistinctBase(detail, "cust")
	if _, err := JoinPlan(base, detail, []Subquery{{Keys: []string{"nope"}}}); err == nil {
		t.Error("bad group key should error")
	}
	if _, err := CorrelatedPlan(base, detail, []Subquery{{Keys: []string{"nope"}}}); err == nil {
		t.Error("bad key should error in correlated plan")
	}
}
