// Package workload generates the synthetic datasets the experiments run
// on. The paper evaluates on retail-style Sales data (schema cust, prod,
// day, month, year, state, sale) that is not published; this generator is
// the substitution documented in DESIGN.md: seeded, with configurable
// cardinalities and either uniform or zipfian skew, so every experiment is
// reproducible and the workload knobs the paper's queries depend on
// (number of customers, products, months, states) can be swept.
package workload

import (
	"math/rand"

	"mdjoin/internal/table"
)

// SalesConfig parameterizes the Sales generator.
type SalesConfig struct {
	Rows      int
	Customers int
	Products  int
	Years     int // years covered, starting at FirstYear
	FirstYear int
	States    int // number of distinct states, capped at len(stateNames)
	// ZipfS > 1 skews customer and product choice zipfian with parameter
	// s; 0 means uniform.
	ZipfS float64
	// MaxSale bounds the sale amount (exclusive); defaults to 1000.
	MaxSale int
	Seed    int64
}

var stateNames = []string{
	"NY", "NJ", "CT", "CA", "IL", "TX", "WA", "FL", "MA", "PA",
	"OH", "MI", "GA", "NC", "VA", "AZ", "CO", "OR", "MN", "WI",
}

// SalesSchema is the schema of generated Sales relations.
func SalesSchema() *table.Schema {
	return table.SchemaOf("cust", "prod", "day", "month", "year", "state", "sale")
}

// Sales generates a Sales relation.
func Sales(cfg SalesConfig) *table.Table {
	cfg = fillDefaults(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	custPick := picker(rng, cfg.Customers, cfg.ZipfS)
	prodPick := picker(rng, cfg.Products, cfg.ZipfS)

	// Builder-built so the table carries its columnar mirror: benches and
	// examples that scan Sales as the detail relation hit the zero-transpose
	// chunk path.
	b := table.NewBuilder(SalesSchema())
	for i := 0; i < cfg.Rows; i++ {
		b.Append(table.Row{
			table.Int(int64(custPick() + 1)),
			table.Int(int64(prodPick() + 1)),
			table.Int(int64(rng.Intn(28) + 1)),
			table.Int(int64(rng.Intn(12) + 1)),
			table.Int(int64(cfg.FirstYear + rng.Intn(cfg.Years))),
			table.Str(stateNames[rng.Intn(cfg.States)]),
			table.Float(float64(rng.Intn(cfg.MaxSale)) + rng.Float64()),
		})
	}
	return b.Table()
}

// PaymentsConfig parameterizes the Payments generator (Example 3.3's
// second detail relation).
type PaymentsConfig struct {
	Rows      int
	Customers int
	Years     int
	FirstYear int
	MaxAmount int
	Seed      int64
}

// PaymentsSchema is the schema of generated Payments relations.
func PaymentsSchema() *table.Schema {
	return table.SchemaOf("cust", "day", "month", "year", "amount")
}

// Payments generates a Payments relation.
func Payments(cfg PaymentsConfig) *table.Table {
	if cfg.Rows == 0 {
		cfg.Rows = 1000
	}
	if cfg.Customers == 0 {
		cfg.Customers = 100
	}
	if cfg.Years == 0 {
		cfg.Years = 3
	}
	if cfg.FirstYear == 0 {
		cfg.FirstYear = 1995
	}
	if cfg.MaxAmount == 0 {
		cfg.MaxAmount = 500
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := table.NewBuilder(PaymentsSchema())
	for i := 0; i < cfg.Rows; i++ {
		b.Append(table.Row{
			table.Int(int64(rng.Intn(cfg.Customers) + 1)),
			table.Int(int64(rng.Intn(28) + 1)),
			table.Int(int64(rng.Intn(12) + 1)),
			table.Int(int64(cfg.FirstYear + rng.Intn(cfg.Years))),
			table.Float(float64(rng.Intn(cfg.MaxAmount)) + rng.Float64()),
		})
	}
	return b.Table()
}

func fillDefaults(cfg SalesConfig) SalesConfig {
	if cfg.Rows == 0 {
		cfg.Rows = 10000
	}
	if cfg.Customers == 0 {
		cfg.Customers = 100
	}
	if cfg.Products == 0 {
		cfg.Products = 50
	}
	if cfg.Years == 0 {
		cfg.Years = 7
	}
	if cfg.FirstYear == 0 {
		cfg.FirstYear = 1994
	}
	if cfg.States == 0 || cfg.States > len(stateNames) {
		cfg.States = 10
	}
	if cfg.MaxSale == 0 {
		cfg.MaxSale = 1000
	}
	return cfg
}

// picker returns a function drawing values in [0, n) — uniform, or zipfian
// with parameter s when s > 1. A one-value domain short-circuits before
// rand.NewZipf sees imax = 0, and a nil Zipf (NewZipf rejects s <= 1 or
// imax < 1 with nil rather than panicking) falls back to uniform instead
// of nil-dereferencing on the first draw.
func picker(rng *rand.Rand, n int, s float64) func() int {
	if n <= 1 {
		return func() int { return 0 }
	}
	if s > 1 {
		if z := rand.NewZipf(rng, s, 1, uint64(n-1)); z != nil {
			return func() int { return int(z.Uint64()) }
		}
	}
	return func() int { return rng.Intn(n) }
}
