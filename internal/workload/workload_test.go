package workload

import (
	"testing"

	"mdjoin/internal/table"
)

func TestSalesDeterministic(t *testing.T) {
	a := Sales(SalesConfig{Rows: 500, Seed: 7})
	b := Sales(SalesConfig{Rows: 500, Seed: 7})
	if d := a.Diff(b); d != "" {
		t.Fatalf("same seed must generate identical data: %s", d)
	}
	c := Sales(SalesConfig{Rows: 500, Seed: 8})
	if a.EqualSet(c) {
		t.Error("different seeds should differ")
	}
}

func TestSalesSchemaAndRanges(t *testing.T) {
	cfg := SalesConfig{Rows: 2000, Customers: 10, Products: 5, Years: 2, FirstYear: 1997, States: 4, MaxSale: 100, Seed: 1}
	s := Sales(cfg)
	if !s.Schema.EqualNames(SalesSchema()) {
		t.Fatalf("schema = %v", s.Schema.Names())
	}
	if s.Len() != cfg.Rows {
		t.Fatalf("rows = %d", s.Len())
	}
	ci, pi, mi, yi, sli := s.Col("cust"), s.Col("prod"), s.Col("month"), s.Col("year"), s.Col("sale")
	states := map[string]bool{}
	for _, r := range s.Rows {
		if c := r[ci].AsInt(); c < 1 || c > int64(cfg.Customers) {
			t.Fatalf("cust out of range: %d", c)
		}
		if p := r[pi].AsInt(); p < 1 || p > int64(cfg.Products) {
			t.Fatalf("prod out of range: %d", p)
		}
		if m := r[mi].AsInt(); m < 1 || m > 12 {
			t.Fatalf("month out of range: %d", m)
		}
		if y := r[yi].AsInt(); y < 1997 || y > 1998 {
			t.Fatalf("year out of range: %d", y)
		}
		if v := r[sli].AsFloat(); v < 0 || v >= float64(cfg.MaxSale)+1 {
			t.Fatalf("sale out of range: %v", v)
		}
		states[r[s.Col("state")].AsString()] = true
	}
	if len(states) > cfg.States {
		t.Errorf("states = %d, want <= %d", len(states), cfg.States)
	}
}

func TestZipfSkew(t *testing.T) {
	uni := Sales(SalesConfig{Rows: 20000, Customers: 50, Seed: 3})
	skew := Sales(SalesConfig{Rows: 20000, Customers: 50, ZipfS: 1.5, Seed: 3})
	top := func(tt *table.Table) float64 {
		counts := map[int64]int{}
		ci := tt.Col("cust")
		for _, r := range tt.Rows {
			counts[r[ci].AsInt()]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		return float64(best) / float64(tt.Len())
	}
	if top(skew) < 2*top(uni) {
		t.Errorf("zipf should concentrate mass: top uniform %.3f vs zipf %.3f", top(uni), top(skew))
	}
}

func TestPayments(t *testing.T) {
	p := Payments(PaymentsConfig{Rows: 300, Customers: 7, Seed: 9})
	if !p.Schema.EqualNames(PaymentsSchema()) {
		t.Fatalf("schema = %v", p.Schema.Names())
	}
	if p.Len() != 300 {
		t.Fatalf("rows = %d", p.Len())
	}
	ci := p.Col("cust")
	for _, r := range p.Rows {
		if c := r[ci].AsInt(); c < 1 || c > 7 {
			t.Fatalf("cust out of range: %d", c)
		}
	}
	// Defaults fill in.
	d := Payments(PaymentsConfig{Seed: 1})
	if d.Len() == 0 {
		t.Error("defaults should produce rows")
	}
}

func TestSalesDefaults(t *testing.T) {
	s := Sales(SalesConfig{Seed: 2})
	if s.Len() != 10000 {
		t.Errorf("default rows = %d, want 10000", s.Len())
	}
}

// TestPickerDegenerateDomains is the regression test for the picker
// edges: a one-value domain must not reach rand.NewZipf with imax = 0
// (it panicked with a division by zero before the guard), and a skew at
// exactly the Zipf validity boundary (NewZipf rejects s <= 1 with nil)
// must fall back to uniform instead of nil-dereferencing.
func TestPickerDegenerateDomains(t *testing.T) {
	for _, cfg := range []SalesConfig{
		{Rows: 100, Customers: 1, ZipfS: 1.0, Seed: 5},
		{Rows: 100, Customers: 1, ZipfS: 2.0, Seed: 5},
		{Rows: 100, Customers: 1, Products: 1, ZipfS: 1.5, Seed: 5},
	} {
		s := Sales(cfg)
		if s.Len() != cfg.Rows {
			t.Fatalf("rows = %d, want %d", s.Len(), cfg.Rows)
		}
		ci := s.Col("cust")
		for _, r := range s.Rows {
			if c := r[ci].AsInt(); c != 1 {
				t.Fatalf("one-customer domain produced cust %d", c)
			}
		}
	}
}
