// Package engine implements the classic relational operators the paper
// treats as the surrounding algebra: selection, projection (with DISTINCT),
// renaming, union, joins (inner, left outer), sorting, and grouped
// aggregation (hash- and sort-based).
//
// The engine serves three roles in the reproduction: it is the substrate
// from which base-values tables are built (select distinct ... — Examples
// 3.1/3.3), it executes the "standard relational algebra" formulations the
// paper contrasts the MD-join against (internal/baseline builds multi-block
// plans from it), and it provides the equijoin used by Theorem 4.4's split
// transformation.
package engine

import (
	"fmt"
	"strings"

	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Select returns the rows of t satisfying pred (SQL truth: NULL is false).
// A nil predicate returns a shallow copy of t.
func Select(t *table.Table, pred expr.Expr) (*table.Table, error) {
	out := table.New(t.Schema)
	if pred == nil {
		out.Rows = append(out.Rows, t.Rows...)
		return out, nil
	}
	b := expr.NewBinding()
	b.AddRel(t.Schema, "r", "detail")
	c, err := expr.Compile(pred, b)
	if err != nil {
		return nil, err
	}
	frame := make([]table.Row, 1)
	for _, r := range t.Rows {
		frame[0] = r
		if c.Truth(frame) {
			out.Append(r)
		}
	}
	return out, nil
}

// ProjCol is one projected column: an expression and its output name. A
// bare column reference keeps its own name when As is empty.
type ProjCol struct {
	Expr expr.Expr
	As   string
}

// Name returns the output column name.
func (p ProjCol) Name() string {
	if p.As != "" {
		return p.As
	}
	if c, ok := p.Expr.(*expr.Col); ok {
		return c.Name
	}
	return p.Expr.String()
}

// Cols builds ProjCols from bare column names.
func Cols(names ...string) []ProjCol {
	out := make([]ProjCol, len(names))
	for i, n := range names {
		out[i] = ProjCol{Expr: expr.C(n)}
	}
	return out
}

// Project evaluates the projection list over every row. With distinct set,
// duplicate output rows are removed (set projection — how the paper's
// "select distinct cust from Sales" base-values tables arise).
func Project(t *table.Table, cols []ProjCol, distinct bool) (*table.Table, error) {
	b := expr.NewBinding()
	b.AddRel(t.Schema, "r", "detail")
	compiled := make([]*expr.Compiled, len(cols))
	outCols := make([]table.Field, len(cols))
	for i, p := range cols {
		c, err := expr.Compile(p.Expr, b)
		if err != nil {
			return nil, err
		}
		compiled[i] = c
		outCols[i] = table.Field{Name: p.Name()}
	}
	out := table.New(table.NewSchema(outCols...))
	var seen map[uint64][]table.Row
	if distinct {
		seen = make(map[uint64][]table.Row, len(t.Rows))
	}
	frame := make([]table.Row, 1)
	for _, r := range t.Rows {
		frame[0] = r
		row := make(table.Row, len(compiled))
		for i, c := range compiled {
			row[i] = c.Eval(frame)
		}
		if distinct {
			h := row.Hash()
			dup := false
			for _, prev := range seen[h] {
				if prev.Equal(row) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[h] = append(seen[h], row)
		}
		out.Append(row)
	}
	return out, nil
}

// Distinct removes duplicate rows over the full schema.
func Distinct(t *table.Table) (*table.Table, error) {
	return Project(t, Cols(t.Schema.Names()...), true)
}

// DistinctOn projects t to the named columns and removes duplicates — the
// standard base-values constructor ("select distinct a, b from R").
func DistinctOn(t *table.Table, cols ...string) (*table.Table, error) {
	return Project(t, Cols(cols...), true)
}

// Rename returns a view of t with columns renamed via the mapping (old →
// new); unmapped columns keep their names. The paper's footnote 3 notes
// each MD-join application should rename the detail table — Rename is that
// operator.
func Rename(t *table.Table, mapping map[string]string) *table.Table {
	cols := make([]table.Field, t.Schema.Len())
	for i, c := range t.Schema.Cols {
		name := c.Name
		for old, new := range mapping {
			if strings.EqualFold(old, c.Name) {
				name = new
			}
		}
		cols[i] = table.Field{Name: name, Type: c.Type}
	}
	return &table.Table{Schema: table.NewSchema(cols...), Rows: t.Rows}
}

// Union concatenates tables with identical schemas (UNION ALL — relations
// are multisets, the semantics Theorem 4.1 relies on, since the Bᵢ
// partition B and the fragment results are disjoint).
func Union(ts ...*table.Table) (*table.Table, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("engine: union of zero tables")
	}
	out := table.New(ts[0].Schema)
	for _, t := range ts {
		if !t.Schema.EqualNames(ts[0].Schema) {
			return nil, fmt.Errorf("engine: union schema mismatch: %v vs %v",
				ts[0].Schema.Names(), t.Schema.Names())
		}
		out.Rows = append(out.Rows, t.Rows...)
	}
	return out, nil
}

// JoinKind selects the join variant.
type JoinKind uint8

const (
	// InnerJoin keeps matching pairs only.
	InnerJoin JoinKind = iota
	// LeftOuterJoin keeps every left row, padding right columns with NULL
	// when no match exists — the operator the paper's Example 2.2
	// discussion says standard SQL needs four of.
	LeftOuterJoin
)

// Join joins l and r on the predicate. Column names are disambiguated by
// qualifying with the given relation aliases (laliase, ralias) when both
// sides share a name; the output schema concatenates left then right
// columns, prefixing collided right columns with ralias+"_".
//
// When the predicate contains equi-conjuncts (l.col = r.col), a hash join
// executes; otherwise it falls back to a nested loop. This mirrors what a
// "commercial DBMS" of the paper's era would pick and keeps the baseline
// comparator honest.
func Join(l, r *table.Table, lalias, ralias string, on expr.Expr, kind JoinKind) (*table.Table, error) {
	return JoinWithStats(l, r, lalias, ralias, on, kind, nil)
}

// JoinStats reports which strategy Join picked and its row counts — the
// runtime counters EXPLAIN ANALYZE attaches to a Join node (the static plan
// cannot tell hash from nested-loop, exactly the blindness the MD-join
// tier label fixes on the core side).
type JoinStats struct {
	// Hash reports the equi-conjunct hash path; false means nested loop.
	Hash bool `json:"hash"`
	// BuildRows/ProbeRows are the hash-side build input and the outer probe
	// input (outer and inner rows for a nested loop).
	BuildRows int `json:"build_rows"`
	ProbeRows int `json:"probe_rows"`
	// Output counts emitted rows (including outer-join NULL padding).
	Output int `json:"output"`
}

// JoinWithStats is Join recording its strategy and row counts into st
// (nil disables collection).
func JoinWithStats(l, r *table.Table, lalias, ralias string, on expr.Expr, kind JoinKind, st *JoinStats) (*table.Table, error) {
	bind := expr.NewBinding()
	lslot := bind.AddRel(l.Schema, lalias)
	rslot := bind.AddRel(r.Schema, ralias)

	// Output schema: left columns as-is, right columns prefixed on clash.
	cols := make([]table.Field, 0, l.Schema.Len()+r.Schema.Len())
	cols = append(cols, l.Schema.Cols...)
	for _, c := range r.Schema.Cols {
		name := c.Name
		if l.Schema.Has(name) {
			name = ralias + "_" + name
		}
		// Guard against double collision.
		for hasCol(cols, name) {
			name = name + "_"
		}
		cols = append(cols, table.Field{Name: name, Type: c.Type})
	}
	out := table.New(table.NewSchema(cols...))

	var pred *expr.Compiled
	if on != nil {
		c, err := expr.Compile(on, bind)
		if err != nil {
			return nil, err
		}
		pred = c
	}

	// Detect hashable equi conjuncts: l.col = r.col (either orientation).
	lk, rk, residual := equiKeys(on, bind, lslot, rslot)

	emit := func(lr, rr table.Row) {
		row := make(table.Row, 0, len(cols))
		row = append(row, lr...)
		if rr == nil {
			for range r.Schema.Cols {
				row = append(row, table.Null())
			}
		} else {
			row = append(row, rr...)
		}
		out.Append(row)
	}

	frame := make([]table.Row, 2)
	if st != nil {
		st.Hash = len(lk) > 0
		st.BuildRows = r.Len()
		st.ProbeRows = l.Len()
	}
	if len(lk) > 0 {
		// Hash join on the right side.
		idx := table.BuildIndexOrdinals(r, rk)
		var resPred *expr.Compiled
		if residual != nil {
			c, err := expr.Compile(residual, bind)
			if err != nil {
				return nil, err
			}
			resPred = c
		}
		key := make([]table.Value, len(lk))
		for _, lr := range l.Rows {
			for i, c := range lk {
				key[i] = lr[c]
			}
			matched := false
			for _, ri := range idx.Probe(key) {
				rr := r.Rows[ri]
				if resPred != nil {
					frame[0], frame[1] = lr, rr
					if !resPred.Truth(frame) {
						continue
					}
				}
				matched = true
				emit(lr, rr)
			}
			if !matched && kind == LeftOuterJoin {
				emit(lr, nil)
			}
		}
		if st != nil {
			st.Output = out.Len()
		}
		return out, nil
	}

	// Nested loop.
	for _, lr := range l.Rows {
		matched := false
		for _, rr := range r.Rows {
			if pred != nil {
				frame[0], frame[1] = lr, rr
				if !pred.Truth(frame) {
					continue
				}
			}
			matched = true
			emit(lr, rr)
		}
		if !matched && kind == LeftOuterJoin {
			emit(lr, nil)
		}
	}
	if st != nil {
		st.Output = out.Len()
	}
	return out, nil
}

func hasCol(cols []table.Field, name string) bool {
	for _, c := range cols {
		if strings.EqualFold(c.Name, name) {
			return true
		}
	}
	return false
}

// equiKeys extracts parallel (left ordinals, right ordinals) for conjuncts
// of the form l.col = r.col; the remaining conjuncts are returned as the
// residual predicate.
func equiKeys(on expr.Expr, bind *expr.Binding, lslot, rslot int) (lk, rk []int, residual expr.Expr) {
	var rest []expr.Expr
	for _, cj := range expr.SplitConjuncts(on) {
		if lo, ro, ok := colEqCol(cj, bind, lslot, rslot); ok {
			lk = append(lk, lo)
			rk = append(rk, ro)
			continue
		}
		rest = append(rest, cj)
	}
	return lk, rk, expr.And(rest...)
}

// colEqCol recognizes "col = col" conjuncts across the two slots.
func colEqCol(e expr.Expr, bind *expr.Binding, lslot, rslot int) (lo, ro int, ok bool) {
	bin, isBin := e.(*expr.Binary)
	if !isBin || bin.Op != expr.OpEq {
		return 0, 0, false
	}
	rs, err := expr.Refs(e, bind)
	if err != nil {
		return 0, 0, false
	}
	lc, rc := rs.SlotCols(lslot), rs.SlotCols(rslot)
	if len(lc) != 1 || len(rc) != 1 {
		return 0, 0, false
	}
	// Verify both operand sides are bare columns.
	if _, isCol := bin.L.(*expr.Col); !isCol {
		return 0, 0, false
	}
	if _, isCol := bin.R.(*expr.Col); !isCol {
		return 0, 0, false
	}
	return lc[0], rc[0], true
}
