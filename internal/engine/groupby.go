package engine

import (
	"fmt"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// GroupBy computes the standard grouped aggregation "SELECT keys, l FROM t
// GROUP BY keys" with hash aggregation. Unlike the MD-join it derives its
// groups from the data (no base-values relation) and emits no row for
// empty groups — the exact semantic gap Example 2.2 of the paper points
// at, which the baseline comparator papers over with outer joins.
func GroupBy(t *table.Table, keys []string, specs []agg.Spec) (*table.Table, error) {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		j := t.Schema.ColIndex(k)
		if j < 0 {
			return nil, fmt.Errorf("engine: group-by key %q not in schema %v", k, t.Schema.Names())
		}
		keyIdx[i] = j
	}

	bind := expr.NewBinding()
	bind.AddRel(t.Schema, "r", "detail")
	compiled, err := agg.CompileSpecs(specs, bind)
	if err != nil {
		return nil, err
	}

	keyCols := make([]table.Field, len(keys))
	for i, j := range keyIdx {
		keyCols[i] = t.Schema.Cols[j]
	}
	outSchema := table.NewSchema(keyCols...).Append(agg.OutColumns(specs)...)

	type group struct {
		key    table.Row
		states []agg.State
	}
	buckets := make(map[uint64][]*group, 1024)
	var order []*group

	frame := make([]table.Row, 1)
	for _, r := range t.Rows {
		h := table.HashCols(r, keyIdx)
		var g *group
		for _, cand := range buckets[h] {
			if table.EqualOn(r, keyIdx, cand.key, identity(len(keyIdx))) {
				g = cand
				break
			}
		}
		if g == nil {
			key := make(table.Row, len(keyIdx))
			for i, j := range keyIdx {
				key[i] = r[j]
			}
			g = &group{key: key, states: make([]agg.State, len(compiled))}
			for i, c := range compiled {
				g.states[i] = c.NewState()
			}
			buckets[h] = append(buckets[h], g)
			order = append(order, g)
		}
		frame[0] = r
		for i, c := range compiled {
			c.Feed(g.states[i], frame)
		}
	}

	out := table.New(outSchema)
	for _, g := range order {
		row := make(table.Row, 0, outSchema.Len())
		row = append(row, g.key...)
		for _, st := range g.states {
			row = append(row, st.Result())
		}
		out.Append(row)
	}
	return out, nil
}

// SortGroupBy computes the same result as GroupBy but via sort-then-scan —
// the evaluation style PIPESORT's pipelined paths assume (detail arrives
// ordered, each group closes when its key changes). Exposed so benches can
// contrast hash vs sort aggregation and so the cube pipeline can reuse it.
func SortGroupBy(t *table.Table, keys []string, specs []agg.Spec) (*table.Table, error) {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		j := t.Schema.ColIndex(k)
		if j < 0 {
			return nil, fmt.Errorf("engine: group-by key %q not in schema %v", k, t.Schema.Names())
		}
		keyIdx[i] = j
	}

	bind := expr.NewBinding()
	bind.AddRel(t.Schema, "r", "detail")
	compiled, err := agg.CompileSpecs(specs, bind)
	if err != nil {
		return nil, err
	}

	keyCols := make([]table.Field, len(keys))
	for i, j := range keyIdx {
		keyCols[i] = t.Schema.Cols[j]
	}
	outSchema := table.NewSchema(keyCols...).Append(agg.OutColumns(specs)...)
	out := table.New(outSchema)

	sorted := &table.Table{Schema: t.Schema, Rows: append([]table.Row(nil), t.Rows...)}
	sorted.SortByOrdinals(keyIdx)

	var curKey table.Row
	var states []agg.State
	flush := func() {
		if curKey == nil {
			return
		}
		row := make(table.Row, 0, outSchema.Len())
		row = append(row, curKey...)
		for _, st := range states {
			row = append(row, st.Result())
		}
		out.Append(row)
	}
	frame := make([]table.Row, 1)
	for _, r := range sorted.Rows {
		if curKey == nil || !table.EqualOn(r, keyIdx, curKey, identity(len(keyIdx))) {
			flush()
			curKey = make(table.Row, len(keyIdx))
			for i, j := range keyIdx {
				curKey[i] = r[j]
			}
			states = make([]agg.State, len(compiled))
			for i, c := range compiled {
				states[i] = c.NewState()
			}
		}
		frame[0] = r
		for i, c := range compiled {
			c.Feed(states[i], frame)
		}
	}
	flush()
	return out, nil
}

// identity returns [0, 1, ..., n-1]; used to compare a full key row against
// projected columns of a data row.
func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
