package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

func fixture() *table.Table {
	s := table.SchemaOf("cust", "state", "sale")
	return table.MustFromRows(s, []table.Row{
		{table.Str("alice"), table.Str("NY"), table.Float(10)},
		{table.Str("alice"), table.Str("NJ"), table.Float(20)},
		{table.Str("bob"), table.Str("NY"), table.Float(30)},
		{table.Str("bob"), table.Str("NY"), table.Float(40)},
		{table.Str("carol"), table.Str("CT"), table.Float(50)},
	})
}

func TestSelect(t *testing.T) {
	tt := fixture()
	out, err := Select(tt, expr.Eq(expr.C("state"), expr.S("NY")))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("rows = %d, want 3", out.Len())
	}
	all, err := Select(tt, nil)
	if err != nil || all.Len() != tt.Len() {
		t.Errorf("nil predicate should keep everything")
	}
	if _, err := Select(tt, expr.Eq(expr.C("nope"), expr.I(1))); err == nil {
		t.Error("bad column should error")
	}
}

func TestProjectAndDistinct(t *testing.T) {
	tt := fixture()
	out, err := Project(tt, Cols("cust"), true)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("distinct custs = %d, want 3", out.Len())
	}
	// Computed projection with alias.
	out2, err := Project(tt, []ProjCol{{Expr: expr.Mul(expr.C("sale"), expr.I(2)), As: "double"}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Schema.Names()[0] != "double" || out2.Value(0, "double").AsFloat() != 20 {
		t.Errorf("projection: %v", out2.Rows[0])
	}
	d, err := DistinctOn(tt, "cust", "state")
	if err != nil || d.Len() != 4 {
		t.Errorf("DistinctOn = %d rows, want 4 (%v)", d.Len(), err)
	}
}

func TestRename(t *testing.T) {
	tt := fixture()
	r := Rename(tt, map[string]string{"sale": "amount"})
	if !r.Schema.Has("amount") || r.Schema.Has("sale") {
		t.Errorf("rename failed: %v", r.Schema.Names())
	}
	// Rows are shared, not copied.
	if &r.Rows[0][0] != &tt.Rows[0][0] {
		t.Error("Rename must not copy rows")
	}
}

func TestUnion(t *testing.T) {
	tt := fixture()
	u, err := Union(tt, tt)
	if err != nil || u.Len() != 2*tt.Len() {
		t.Errorf("union all must keep duplicates: %d (%v)", u.Len(), err)
	}
	other := table.New(table.SchemaOf("x"))
	if _, err := Union(tt, other); err == nil {
		t.Error("schema mismatch should error")
	}
	if _, err := Union(); err == nil {
		t.Error("empty union should error")
	}
}

func TestInnerJoin(t *testing.T) {
	l := table.MustFromRows(table.SchemaOf("k", "a"), []table.Row{
		{table.Int(1), table.Str("x")},
		{table.Int(2), table.Str("y")},
	})
	r := table.MustFromRows(table.SchemaOf("k", "b"), []table.Row{
		{table.Int(1), table.Str("p")},
		{table.Int(1), table.Str("q")},
		{table.Int(3), table.Str("z")},
	})
	out, err := Join(l, r, "l", "r", expr.Eq(expr.QC("l", "k"), expr.QC("r", "k")), InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("inner join rows = %d, want 2", out.Len())
	}
	// Collided column renamed.
	if !out.Schema.Has("r_k") {
		t.Errorf("collided right column should be r_k: %v", out.Schema.Names())
	}
}

func TestLeftOuterJoin(t *testing.T) {
	l := table.MustFromRows(table.SchemaOf("k"), []table.Row{
		{table.Int(1)}, {table.Int(2)},
	})
	r := table.MustFromRows(table.SchemaOf("k", "v"), []table.Row{
		{table.Int(1), table.Str("x")},
	})
	out, err := Join(l, r, "l", "r", expr.Eq(expr.QC("l", "k"), expr.QC("r", "k")), LeftOuterJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
	var unmatched table.Row
	for _, row := range out.Rows {
		if row[0].AsInt() == 2 {
			unmatched = row
		}
	}
	if unmatched == nil || !unmatched[2].IsNull() {
		t.Errorf("unmatched row should be NULL-padded: %v", unmatched)
	}
}

func TestThetaJoinFallsBackToNestedLoop(t *testing.T) {
	l := table.MustFromRows(table.SchemaOf("a"), []table.Row{{table.Int(1)}, {table.Int(5)}})
	r := table.MustFromRows(table.SchemaOf("b"), []table.Row{{table.Int(3)}})
	out, err := Join(l, r, "l", "r", expr.Lt(expr.QC("l", "a"), expr.QC("r", "b")), InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][0].AsInt() != 1 {
		t.Errorf("theta join: %v", out.Rows)
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	// Property: the hash path and the pure θ path compute the same join.
	rng := rand.New(rand.NewSource(5))
	mk := func(n int, name string) *table.Table {
		tt := table.New(table.SchemaOf("k", name))
		for i := 0; i < n; i++ {
			tt.Append(table.Row{table.Int(int64(rng.Intn(8))), table.Int(int64(i))})
		}
		return tt
	}
	l, r := mk(60, "lv"), mk(40, "rv")
	eq := expr.Eq(expr.QC("l", "k"), expr.QC("r", "k"))
	hash, err := Join(l, r, "l", "r", eq, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	// Force the nested loop by obscuring the equi conjunct: (l.k = r.k) OR false.
	theta := expr.Or(eq, expr.V(table.Bool(false)))
	loop, err := Join(l, r, "l", "r", theta, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !hash.EqualSet(loop) {
		t.Errorf("hash join differs from nested loop: %s", hash.Diff(loop))
	}
}

func TestGroupBy(t *testing.T) {
	tt := fixture()
	out, err := GroupBy(tt, []string{"cust"}, []agg.Spec{
		agg.NewSpec("sum", expr.C("sale"), "total"),
		agg.NewSpec("count", nil, "n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("groups = %d, want 3", out.Len())
	}
	got := map[string]float64{}
	for i := range out.Rows {
		got[out.Value(i, "cust").AsString()] = out.Value(i, "total").AsFloat()
	}
	if got["alice"] != 30 || got["bob"] != 70 || got["carol"] != 50 {
		t.Errorf("totals = %v", got)
	}
	if _, err := GroupBy(tt, []string{"nope"}, nil); err == nil {
		t.Error("bad key should error")
	}
}

func TestGroupByNoKeys(t *testing.T) {
	tt := fixture()
	out, err := GroupBy(tt, nil, []agg.Spec{agg.NewSpec("sum", expr.C("sale"), "total")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Value(0, "total").AsFloat() != 150 {
		t.Errorf("grand total: %v", out)
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	empty := table.New(table.SchemaOf("k", "v"))
	out, err := GroupBy(empty, []string{"k"}, []agg.Spec{agg.NewSpec("count", nil, "n")})
	if err != nil || out.Len() != 0 {
		t.Errorf("empty input → no groups (classic semantics): %d, %v", out.Len(), err)
	}
}

func TestSortGroupByMatchesHash(t *testing.T) {
	prop := func(keys []uint8, vals []int8) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		tt := table.New(table.SchemaOf("k", "v"))
		for i := 0; i < n; i++ {
			tt.Append(table.Row{table.Int(int64(keys[i] % 6)), table.Int(int64(vals[i]))})
		}
		specs := []agg.Spec{
			agg.NewSpec("sum", expr.C("v"), "s"),
			agg.NewSpec("count", nil, "n"),
			agg.NewSpec("min", expr.C("v"), "lo"),
			agg.NewSpec("max", expr.C("v"), "hi"),
		}
		h, err := GroupBy(tt, []string{"k"}, specs)
		if err != nil {
			return false
		}
		s, err := SortGroupBy(tt, []string{"k"}, specs)
		if err != nil {
			return false
		}
		return h.EqualSet(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestGroupByWithNullAndAllKeys(t *testing.T) {
	tt := table.MustFromRows(table.SchemaOf("k", "v"), []table.Row{
		{table.Null(), table.Int(1)},
		{table.Null(), table.Int(2)},
		{table.All(), table.Int(3)},
		{table.Int(0), table.Int(4)},
	})
	out, err := GroupBy(tt, []string{"k"}, []agg.Spec{agg.NewSpec("count", nil, "n")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("NULL, ALL and 0 must be three distinct groups: %d\n%s", out.Len(), out)
	}
}
