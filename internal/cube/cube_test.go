package cube

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// randSales builds a deterministic random Sales(prod, month, state, sale)
// detail relation.
func randSales(n int, prods, months, states int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	schema := table.SchemaOf("prod", "month", "state", "sale")
	t := table.New(schema)
	stateNames := []string{"NY", "NJ", "CT", "CA", "IL", "TX", "WA", "FL"}
	for i := 0; i < n; i++ {
		t.Append(table.Row{
			table.Int(int64(rng.Intn(prods) + 1)),
			table.Int(int64(rng.Intn(months) + 1)),
			table.Str(stateNames[rng.Intn(states)]),
			table.Float(float64(rng.Intn(1000)) + 0.5),
		})
	}
	return t
}

func specsSumCount() []agg.Spec {
	return []agg.Spec{
		agg.NewSpec("sum", expr.C("sale"), "total"),
		agg.NewSpec("count", nil, "n"),
	}
}

func TestCubeMethodsAgree(t *testing.T) {
	detail := randSales(300, 5, 4, 3, 42)
	dims := []string{"prod", "month", "state"}
	specs := specsSumCount()

	want, err := Compute(detail, dims, specs, Options{Method: Naive})
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	// Sanity: cube row count = Σ over masks of distinct combos.
	if want.Len() == 0 {
		t.Fatal("naive cube is empty")
	}

	for _, m := range []Method{Rollup, PipeSort, MDJoinPass, PartitionedCube} {
		got, err := Compute(detail, dims, specs, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if d := want.Diff(got); d != "" {
			t.Errorf("method %v disagrees with naive: %s", m, d)
		}
	}
}

func TestCubeWithAvgDecomposition(t *testing.T) {
	detail := randSales(200, 4, 3, 3, 7)
	dims := []string{"prod", "month"}
	specs := []agg.Spec{agg.NewSpec("avg", expr.C("sale"), "avg_sale")}

	want, err := Compute(detail, dims, specs, Options{Method: Naive})
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	for _, m := range []Method{Rollup, PipeSort, PartitionedCube} {
		got, err := Compute(detail, dims, specs, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// avg decomposes to sum/count; floating division is deterministic,
		// so exact comparison is fine given identical inputs... but the
		// summation order differs between strategies. Compare with
		// tolerance per cell instead.
		if err := approxEqualCubes(want, got, 1e-9); err != nil {
			t.Errorf("method %v: %v", m, err)
		}
	}
}

// approxEqualCubes compares two cube tables keyed on their dimension
// columns with a relative tolerance on numeric aggregates.
func approxEqualCubes(a, b *table.Table, tol float64) error {
	if a.Len() != b.Len() {
		return errf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	as := a.Clone().SortAll()
	bs := b.Clone().SortAll()
	for i := range as.Rows {
		ra, rb := as.Rows[i], bs.Rows[i]
		for j := range ra {
			va, vb := ra[j], rb[j]
			if va.IsNumeric() && vb.IsNumeric() {
				d := va.AsFloat() - vb.AsFloat()
				if d < 0 {
					d = -d
				}
				scale := va.AsFloat()
				if scale < 0 {
					scale = -scale
				}
				if scale < 1 {
					scale = 1
				}
				if d/scale > tol {
					return errf("row %d col %d: %v vs %v", i, j, va, vb)
				}
				continue
			}
			if !va.Equal(vb) {
				return errf("row %d col %d: %v vs %v", i, j, va, vb)
			}
		}
	}
	return nil
}

func errf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}

func TestCubeBaseSizes(t *testing.T) {
	detail := randSales(500, 6, 5, 4, 9)
	dims := []string{"prod", "month", "state"}

	base, err := CubeBase(detail, dims...)
	if err != nil {
		t.Fatal(err)
	}
	// The cube base must contain the apex row (ALL, ALL, ALL) exactly once
	// and one row per distinct full combination.
	apex := 0
	for _, r := range base.Rows {
		if r[0].IsAll() && r[1].IsAll() && r[2].IsAll() {
			apex++
		}
	}
	if apex != 1 {
		t.Errorf("apex rows = %d, want 1", apex)
	}

	roll, err := RollupBase(detail, dims...)
	if err != nil {
		t.Fatal(err)
	}
	if roll.Len() >= base.Len() {
		t.Errorf("rollup base (%d rows) must be smaller than cube base (%d rows)", roll.Len(), base.Len())
	}

	unp, err := UnpivotBase(detail, dims...)
	if err != nil {
		t.Fatal(err)
	}
	// Marginals: Σ card(dim) rows.
	lat, err := NewLattice(detail, dims)
	if err != nil {
		t.Fatal(err)
	}
	wantUnp := lat.Card[0] + lat.Card[1] + lat.Card[2]
	if unp.Len() != wantUnp {
		t.Errorf("unpivot base rows = %d, want %d", unp.Len(), wantUnp)
	}
}

func TestGroupingSetsDedup(t *testing.T) {
	detail := randSales(100, 3, 3, 2, 5)
	dims := []string{"prod", "month"}
	a, err := GroupingSetsBase(detail, dims, [][]string{{"prod"}, {"prod"}, {"month"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GroupingSetsBase(detail, dims, [][]string{{"prod"}, {"month"}})
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Diff(b); d != "" {
		t.Errorf("duplicate grouping sets must deduplicate: %s", d)
	}
}

func TestPipeSortPlanFigure2(t *testing.T) {
	// A 2-dimensional cube must plan exactly two pipelined paths — the
	// shape of the paper's Figure 2: one path from the (A,B) sort pipelining
	// down the lattice, and one resort path for the remaining level-1 node.
	detail := randSales(400, 8, 5, 3, 11)
	lat, err := NewLattice(detail, []string{"prod", "month"})
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanPipeSort(lat)
	if len(plan.Paths) != 2 {
		t.Fatalf("paths = %d, want 2:\n%s", len(plan.Paths), plan)
	}
	if plan.Paths[0].Resort {
		t.Errorf("first path must be the detail-sourced pipeline")
	}
	if !plan.Paths[1].Resort {
		t.Errorf("second path must be a resort (the dashed edge of Figure 2)")
	}
	// Every cuboid covered exactly once.
	seen := map[uint]int{}
	for _, p := range plan.Paths {
		for _, n := range p.Nodes {
			seen[n.Mask]++
		}
	}
	for m := uint(0); m <= lat.FullMask(); m++ {
		if seen[m] != 1 {
			t.Errorf("cuboid %s covered %d times, want 1", lat.MaskName(m), seen[m])
		}
	}
	// The first path must be a chain of strict subsets with prefix orders.
	first := plan.Paths[0]
	for i := 1; i < len(first.Nodes); i++ {
		prev, cur := first.Nodes[i-1], first.Nodes[i]
		if cur.Mask&prev.Mask != cur.Mask {
			t.Errorf("path node %d is not a subset of its predecessor", i)
		}
		for j, a := range cur.Order {
			if !strings.EqualFold(a, prev.Order[j]) {
				t.Errorf("node %d order %v is not a prefix of %v", i, cur.Order, prev.Order)
			}
		}
	}
}

func TestPipeSortPlanCoversLargerLattices(t *testing.T) {
	detail := randSales(600, 7, 6, 5, 13)
	for _, dims := range [][]string{
		{"prod"},
		{"prod", "month", "state"},
		{"prod", "month", "state", "sale"},
	} {
		lat, err := NewLattice(detail, dims)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanPipeSort(lat)
		seen := map[uint]int{}
		for _, p := range plan.Paths {
			for _, n := range p.Nodes {
				seen[n.Mask]++
			}
		}
		for m := uint(0); m <= lat.FullMask(); m++ {
			if seen[m] != 1 {
				t.Errorf("dims %v: cuboid %s covered %d times", dims, lat.MaskName(m), seen[m])
			}
		}
	}
}

func TestLatticeEstimates(t *testing.T) {
	detail := randSales(1000, 10, 12, 4, 17)
	lat, err := NewLattice(detail, []string{"prod", "month", "state"})
	if err != nil {
		t.Fatal(err)
	}
	if lat.Estimate(0) != 1 {
		t.Errorf("apex estimate = %d, want 1", lat.Estimate(0))
	}
	full := lat.Estimate(lat.FullMask())
	if full > detail.Len() {
		t.Errorf("full estimate %d exceeds |R| %d", full, detail.Len())
	}
	// Monotone: finer masks estimate at least as large.
	if lat.Estimate(1) > lat.Estimate(3) {
		t.Errorf("estimate must grow with mask: %d > %d", lat.Estimate(1), lat.Estimate(3))
	}
}
