package cube

import (
	"fmt"
	"math/bits"
	"sort"

	"mdjoin/internal/engine"
	"mdjoin/internal/table"
)

// Lattice models the cuboid search lattice of a data cube over n
// dimensions: node mask m has one bit per dimension; m' is an ancestor of
// m when m ⊂ m' (m rolls up m' — the paper's drill-down relation that
// Theorem 4.5 exploits).
type Lattice struct {
	Dims []string
	// Card[i] is the distinct-value count of dimension i in the detail
	// relation; used for cuboid size estimation in PIPESORT and
	// parent-choice in the rollup strategy.
	Card []int
	// DetailRows is |R|, the cap for every size estimate.
	DetailRows int
}

// NewLattice measures dimension cardinalities from the detail relation.
func NewLattice(detail *table.Table, dims []string) (*Lattice, error) {
	l := &Lattice{Dims: dims, Card: make([]int, len(dims)), DetailRows: detail.Len()}
	for i, d := range dims {
		dt, err := engine.DistinctOn(detail, d)
		if err != nil {
			return nil, err
		}
		l.Card[i] = dt.Len()
	}
	return l, nil
}

// N returns the number of dimensions.
func (l *Lattice) N() int { return len(l.Dims) }

// FullMask returns the mask of the finest cuboid (all dimensions).
func (l *Lattice) FullMask() uint { return 1<<uint(l.N()) - 1 }

// Attrs returns the dimension names selected by a mask, in dimension
// order.
func (l *Lattice) Attrs(mask uint) []string { return subset(l.Dims, mask) }

// Estimate approximates a cuboid's row count as min(|R|, Π card(dᵢ)) — the
// standard independence estimate the PIPESORT cost model uses.
func (l *Lattice) Estimate(mask uint) int {
	est := 1
	for i := range l.Dims {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		est *= l.Card[i]
		if est >= l.DetailRows || est < 0 {
			return l.DetailRows
		}
	}
	if est > l.DetailRows {
		return l.DetailRows
	}
	return est
}

// Level returns the masks with exactly k bits set, in ascending mask
// order (deterministic).
func (l *Lattice) Level(k int) []uint {
	var out []uint
	for m := uint(0); m <= l.FullMask(); m++ {
		if bits.OnesCount(uint(m)) == k {
			out = append(out, m)
		}
	}
	return out
}

// Parents returns the masks of the drill-down cuboids one level finer
// (supersets with exactly one extra bit).
func (l *Lattice) Parents(mask uint) []uint {
	var out []uint
	for i := 0; i < l.N(); i++ {
		b := uint(1) << uint(i)
		if mask&b == 0 {
			out = append(out, mask|b)
		}
	}
	return out
}

// CheapestParent picks the parent with the smallest estimated row count —
// the greedy choice the rollup strategy uses for each coarser cuboid.
func (l *Lattice) CheapestParent(mask uint) uint {
	ps := l.Parents(mask)
	if len(ps) == 0 {
		return mask
	}
	best := ps[0]
	for _, p := range ps[1:] {
		if l.Estimate(p) < l.Estimate(best) {
			best = p
		}
	}
	return best
}

// MaskName renders a mask as its attribute tuple, with "()" for the apex —
// useful in plan printouts and tests ("(prod,month)").
func (l *Lattice) MaskName(mask uint) string {
	attrs := l.Attrs(mask)
	if len(attrs) == 0 {
		return "()"
	}
	out := "("
	for i, a := range attrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out + ")"
}

// SortedMasksDescending returns all masks ordered finest-first (by
// descending popcount, then ascending mask) — the computation order of the
// rollup strategy, which guarantees every parent is materialized before
// its children.
func (l *Lattice) SortedMasksDescending() []uint {
	masks := make([]uint, 0, l.FullMask()+1)
	for m := uint(0); m <= l.FullMask(); m++ {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(a, b int) bool {
		pa, pb := bits.OnesCount(uint(masks[a])), bits.OnesCount(uint(masks[b]))
		if pa != pb {
			return pa > pb
		}
		return masks[a] < masks[b]
	})
	return masks
}

// Validate checks that the lattice's dimensions exist in the given schema.
func (l *Lattice) Validate(s *table.Schema) error {
	for _, d := range l.Dims {
		if !s.Has(d) {
			return fmt.Errorf("cube: dimension %q not in schema %v", d, s.Names())
		}
	}
	return nil
}
