package cube

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// PathNode is one cuboid of a pipelined path, with the attribute order in
// which its groups close during the path's single scan.
type PathNode struct {
	Mask  uint
	Order []string
}

// Path is one pipelined path of a PIPESORT plan: Nodes[0] (the head) is
// computed by sorting the source cuboid into Nodes[0].Order; every
// subsequent node's attributes are a prefix of that order, so the whole
// chain closes in the same pass. Resort marks paths that begin with a
// re-sort of an already materialized cuboid — the dashed edges of the
// paper's Figure 2.
type Path struct {
	Nodes      []PathNode
	SourceMask uint // cuboid the head aggregates from; FullMask+1 sentinel = detail
	Resort     bool
}

// Plan is a full PIPESORT plan over a lattice.
type Plan struct {
	Lattice *Lattice
	Paths   []Path
}

// detailSource is the SourceMask sentinel meaning "aggregate from the
// detail relation".
func (p *Plan) detailSource() uint { return p.Lattice.FullMask() + 1 }

// String renders the plan in the style of Figure 2: one line per path,
// pipelined edges as "→", resort heads flagged.
func (p *Plan) String() string {
	var b strings.Builder
	for i, path := range p.Paths {
		if i > 0 {
			b.WriteByte('\n')
		}
		if path.Resort {
			b.WriteString("resort ")
		}
		for j, n := range path.Nodes {
			if j > 0 {
				b.WriteString(" → ")
			}
			if len(n.Order) == 0 {
				b.WriteString("(ALL)")
			} else {
				b.WriteString("(" + strings.Join(n.Order, ",") + ")")
			}
		}
	}
	return b.String()
}

// PlanPipeSort builds pipelined paths with the greedy level-by-level
// assignment of [AAD+96]: children at level k pick the cheapest level-k+1
// parent, where a parent's first (pipe) slot costs a scan of its estimated
// result and subsequent children cost a re-sort. Larger children choose
// first, approximating the minimum-cost matching of the original
// algorithm. The result covers every cuboid exactly once.
func PlanPipeSort(lat *Lattice) *Plan {
	n := lat.N()
	full := lat.FullMask()

	type edge struct {
		parent uint
		pipe   bool
	}
	parentOf := map[uint]edge{}
	pipeTaken := map[uint]bool{}

	scanCost := func(m uint) float64 { return float64(lat.Estimate(m)) }
	sortCost := func(m uint) float64 {
		e := float64(lat.Estimate(m))
		if e < 2 {
			return e
		}
		return e * log2(e)
	}

	for k := n - 1; k >= 0; k-- {
		children := lat.Level(k)
		// Larger cuboids claim pipe slots first.
		sort.Slice(children, func(a, b int) bool {
			ea, eb := lat.Estimate(children[a]), lat.Estimate(children[b])
			if ea != eb {
				return ea > eb
			}
			return children[a] < children[b]
		})
		for _, c := range children {
			var best edge
			bestCost := -1.0
			for _, p := range lat.Parents(c) {
				var cost float64
				var pipe bool
				if !pipeTaken[p] {
					cost, pipe = scanCost(p), true
				} else {
					cost, pipe = sortCost(p), false
				}
				if bestCost < 0 || cost < bestCost {
					best, bestCost = edge{parent: p, pipe: pipe}, cost
				}
			}
			parentOf[c] = best
			if best.pipe {
				pipeTaken[best.parent] = true
			}
		}
	}

	// Chains of pipe edges. pipeChild[p] = the unique child pipelined from
	// p, if any.
	pipeChild := map[uint]uint{}
	hasPipeChild := map[uint]bool{}
	for c, e := range parentOf {
		if e.pipe {
			pipeChild[e.parent] = c
			hasPipeChild[e.parent] = true
		}
	}

	plan := &Plan{Lattice: lat}
	// Heads: the full cuboid, plus every resort-edge child.
	var heads []uint
	heads = append(heads, full)
	for c, e := range parentOf {
		if !e.pipe {
			heads = append(heads, c)
		}
	}
	// Deterministic order: by descending level then ascending mask, so a
	// path's source cuboid is always materialized by an earlier path.
	sort.Slice(heads, func(a, b int) bool {
		pa, pb := bits.OnesCount(uint(heads[a])), bits.OnesCount(uint(heads[b]))
		if pa != pb {
			return pa > pb
		}
		return heads[a] < heads[b]
	})

	for _, h := range heads {
		var chain []uint
		for m := h; ; {
			chain = append(chain, m)
			c, ok := pipeChild[m]
			if !ok {
				break
			}
			m = c
		}
		// Orders, built from the tail up: each node's order is the next
		// node's order followed by its extra attributes (so every
		// descendant's attributes are a prefix).
		orders := make([][]string, len(chain))
		var prev []string
		for i := len(chain) - 1; i >= 0; i-- {
			extra := diffAttrs(lat, chain[i], prev)
			order := append(append([]string(nil), prev...), extra...)
			orders[i] = order
			prev = order
		}
		path := Path{Resort: h != full}
		if h == full {
			path.SourceMask = plan.detailSource()
		} else {
			path.SourceMask = parentOf[h].parent
		}
		for i, m := range chain {
			path.Nodes = append(path.Nodes, PathNode{Mask: m, Order: orders[i]})
		}
		plan.Paths = append(plan.Paths, path)
	}
	return plan
}

// diffAttrs lists mask's attributes not already in the prefix order.
func diffAttrs(lat *Lattice, mask uint, prefix []string) []string {
	var out []string
	for _, a := range lat.Attrs(mask) {
		if !containsFold(prefix, a) {
			out = append(out, a)
		}
	}
	return out
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}

// computePipeSort plans and executes PIPESORT: each path sorts its source
// once into the head's order and closes every node of the chain in one
// pass (pipelining); sources of later paths are cuboids materialized by
// earlier ones, re-aggregated per Theorem 4.5.
func computePipeSort(detail *table.Table, lat *Lattice, specs []agg.Spec) (*table.Table, error) {
	dec, err := decompose(lat, specs)
	if err != nil {
		return nil, err
	}
	work := dec.work
	reagg, err := reaggSpecs(work)
	if err != nil {
		return nil, err
	}
	plan := PlanPipeSort(lat)

	cuboids := make(map[uint]*table.Table)
	for _, path := range plan.Paths {
		var source *table.Table
		var srcSpecs []agg.Spec
		if path.SourceMask == plan.detailSource() {
			source = detail
			srcSpecs = work
		} else {
			source = cuboids[path.SourceMask]
			if source == nil {
				return nil, fmt.Errorf("cube: pipesort source %s not materialized", lat.MaskName(path.SourceMask))
			}
			srcSpecs = reagg
		}
		results, err := executePath(source, srcSpecs, path, lat, len(work))
		if err != nil {
			return nil, err
		}
		for m, t := range results {
			cuboids[m] = t
		}
	}

	out := table.New(table.SchemaOf(lat.Dims...).Append(agg.OutColumns(work)...))
	for _, m := range lat.SortedMasksDescending() {
		t, ok := cuboids[m]
		if !ok {
			return nil, fmt.Errorf("cube: pipesort plan missed cuboid %s", lat.MaskName(m))
		}
		out.Rows = append(out.Rows, t.Rows...)
	}
	if dec.finalize != nil {
		return dec.finalize(out, lat)
	}
	return out, nil
}

// executePath sorts the source by the head node's order and computes every
// node of the path in a single pass. Pipelining works as in [AAD+96]: the
// head aggregates raw source rows; every deeper node aggregates the
// *flushed group rows* of the node above it (re-aggregated per Theorem
// 4.5), so a node's work is proportional to the finer cuboid's size, not
// to |source|.
func executePath(source *table.Table, specs []agg.Spec, path Path, lat *Lattice, nAggs int) (map[uint]*table.Table, error) {
	head := path.Nodes[0]
	// Sort a shallow copy of the source rows by the head order.
	sorted := &table.Table{Schema: source.Schema, Rows: append([]table.Row(nil), source.Rows...)}
	orderIdx := make([]int, len(head.Order))
	for i, a := range head.Order {
		j := source.Schema.ColIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("cube: sort attribute %q not in source schema %v", a, source.Schema.Names())
		}
		orderIdx[i] = j
	}
	sorted.SortByOrdinals(orderIdx)

	outSchema := table.SchemaOf(lat.Dims...).Append(agg.OutColumns(specs)...)

	// The head consumes source rows with the given specs; deeper nodes
	// consume emitted cuboid rows with the Theorem 4.5 re-aggregation.
	headSpecs, err := agg.CompileSpecs(specs, newSourceBinding(source))
	if err != nil {
		return nil, err
	}
	reagg, err := reaggSpecs(specs)
	if err != nil {
		return nil, err
	}
	cuboidBind := expr.NewBinding()
	cuboidBind.AddRel(outSchema, "r", "detail")
	pipeSpecs, err := agg.CompileSpecs(reagg, cuboidBind)
	if err != nil {
		return nil, err
	}

	// keySlot[di] is dimension di's position in the head sort order (or
	// -1): emitted rows read their dim values from the current group key.
	keySlot := make([]int, len(lat.Dims))
	for di, d := range lat.Dims {
		keySlot[di] = -1
		for oi, o := range head.Order {
			if strings.EqualFold(o, d) {
				keySlot[di] = oi
			}
		}
	}

	type nodeAcc struct {
		mask      uint
		prefixLen int
		curKey    table.Row
		states    []agg.State
		out       *table.Table
	}
	accs := make([]*nodeAcc, len(path.Nodes))
	for i, n := range path.Nodes {
		specsFor := headSpecs
		if i > 0 {
			specsFor = pipeSpecs
		}
		a := &nodeAcc{
			mask:      n.Mask,
			prefixLen: len(lat.Attrs(n.Mask)),
			states:    make([]agg.State, len(specsFor)),
			out:       table.New(outSchema),
		}
		accs[i] = a
	}
	newStates := func(i int) []agg.State {
		specsFor := headSpecs
		if i > 0 {
			specsFor = pipeSpecs
		}
		st := make([]agg.State, len(specsFor))
		for j, c := range specsFor {
			st[j] = c.NewState()
		}
		return st
	}

	frame := make([]table.Row, 1)
	// flush closes node i's group, emits its row, and feeds it to node
	// i+1 (it belongs to i+1's still-open group because prefixes nest).
	var flush func(i int)
	flush = func(i int) {
		a := accs[i]
		if a.curKey == nil {
			return
		}
		row := make(table.Row, 0, len(lat.Dims)+nAggs)
		for di := range lat.Dims {
			if a.mask&(1<<uint(di)) == 0 {
				row = append(row, table.All())
			} else {
				row = append(row, a.curKey[keySlot[di]])
			}
		}
		for _, st := range a.states {
			row = append(row, st.Result())
		}
		a.out.Append(row)
		if i+1 < len(accs) {
			next := accs[i+1]
			if next.curKey == nil {
				next.curKey = a.curKey
				next.states = newStates(i + 1)
			}
			frame[0] = row
			for j, c := range pipeSpecs {
				c.Feed(next.states[j], frame)
			}
		}
	}

	rowFrame := make([]table.Row, 1)
	for _, r := range sorted.Rows {
		key := make(table.Row, len(orderIdx))
		for i, j := range orderIdx {
			key[i] = r[j]
		}
		// Deepest position where the key changed; nodes with longer
		// prefixes close (they are a prefix of the node list, finest
		// first).
		head0 := accs[0]
		if head0.curKey != nil {
			d := 0
			for d < len(key) && head0.curKey[d].Equal(key[d]) {
				d++
			}
			// Flush finest-first so each flushed row lands in the old
			// group of the node below before that node flushes.
			for i := 0; i < len(accs) && accs[i].prefixLen > d; i++ {
				flush(i)
				accs[i].curKey = nil
			}
		}
		if head0.curKey == nil {
			head0.curKey = key
			head0.states = newStates(0)
		} else {
			head0.curKey = key
		}
		rowFrame[0] = r
		for j, c := range headSpecs {
			c.Feed(head0.states[j], rowFrame)
		}
	}
	for i := range accs {
		flush(i)
		accs[i].curKey = nil
	}

	out := make(map[uint]*table.Table, len(accs))
	for _, a := range accs {
		out[a.mask] = a.out
	}
	return out, nil
}

// newSourceBinding binds a single source relation under the conventional
// detail qualifiers, so aggregate arguments written as R.col (or bare)
// compile against it.
func newSourceBinding(t *table.Table) *expr.Binding {
	b := expr.NewBinding()
	b.AddRel(t.Schema, "r", "detail")
	return b
}

// mdJoinCube evaluates MD(base, detail, specs, ∧ R.d =^ d) — the
// single-scan cube computation (method MDJoinPass and Example 2.3's first
// stage).
func mdJoinCube(base, detail *table.Table, dims []string, specs []agg.Spec) (*table.Table, error) {
	return core.Eval(base, detail, []core.Phase{{Aggs: specs, Theta: Theta(dims...)}}, core.Options{})
}
