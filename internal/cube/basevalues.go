// Package cube implements the data-cube side of the reproduction: the
// base-values builders the paper's "analyze by" clause enumerates (group
// by, cube by, rollup, grouping sets, unpivot), the cuboid lattice, the
// roll-up computation of Theorem 4.5, the PIPESORT pipelined-path
// construction the paper expresses algebraically in Section 4.4 (Figure 2),
// and the Ross–Srivastava Partitioned-Cube strategy.
//
// Every builder returns a base-values table over the full dimension list;
// rolled-up dimensions hold the ALL marker, so the cube of Figure 1 is a
// single relation and an MD-join against it uses cube equality (=^) in θ.
package cube

import (
	"fmt"
	"strings"

	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// DistinctBase builds the plain group-by base-values table: the distinct
// combinations of the dimensions present in the data ("select distinct ...
// from R" — Example 3.1).
func DistinctBase(t *table.Table, dims ...string) (*table.Table, error) {
	return engine.DistinctOn(t, dims...)
}

// CubeBase builds the full data-cube base-values table over the given
// dimensions: one row per element of every one of the 2^n group-bys, with
// ALL marking rolled-up dimensions (Example 2.1 / [GBLP96]).
func CubeBase(t *table.Table, dims ...string) (*table.Table, error) {
	sets := make([][]string, 0, 1<<len(dims))
	for mask := 0; mask < 1<<len(dims); mask++ {
		sets = append(sets, subset(dims, uint(mask)))
	}
	return GroupingSetsBase(t, dims, sets)
}

// RollupBase builds the rollup base-values table: the prefixes
// (d₁..d_n), (d₁..d_{n-1}), ..., () — the SQL99 ROLLUP grouping.
func RollupBase(t *table.Table, dims ...string) (*table.Table, error) {
	sets := make([][]string, 0, len(dims)+1)
	for k := len(dims); k >= 0; k-- {
		sets = append(sets, dims[:k])
	}
	return GroupingSetsBase(t, dims, sets)
}

// UnpivotBase builds the marginal-distribution base-values table of the
// unpivot operator [GFC98]: one grouping set per single dimension, the
// input decision-tree algorithms consume (Example 2.1's grouping-sets
// query).
func UnpivotBase(t *table.Table, dims ...string) (*table.Table, error) {
	sets := make([][]string, len(dims))
	for i, d := range dims {
		sets[i] = []string{d}
	}
	return GroupingSetsBase(t, dims, sets)
}

// GroupingSetsBase builds the base-values table for an explicit list of
// grouping sets (SQL99 GROUPING SETS): the union over sets S of the
// distinct S-projections of t, padded with ALL outside S. Duplicate sets
// are deduplicated.
func GroupingSetsBase(t *table.Table, dims []string, sets [][]string) (*table.Table, error) {
	dimIdx := make([]int, len(dims))
	for i, d := range dims {
		j := t.Schema.ColIndex(d)
		if j < 0 {
			return nil, fmt.Errorf("cube: dimension %q not in schema %v", d, t.Schema.Names())
		}
		dimIdx[i] = j
	}
	// Distinct full-dimension combinations, computed once; every grouping
	// set projects from it.
	full, err := engine.DistinctOn(t, dims...)
	if err != nil {
		return nil, err
	}

	// Builder-built: cube base-values tables double as detail inputs when
	// MD-joins chain (Theorem 4.5 roll-ups), so carrying the columnar
	// mirror lets those scans skip the transpose.
	out := table.NewBuilder(table.SchemaOf(dims...))
	seenSet := map[uint]bool{}
	for _, s := range sets {
		mask, err := maskOf(dims, s)
		if err != nil {
			return nil, err
		}
		if seenSet[mask] {
			continue
		}
		seenSet[mask] = true
		appendMaskRows(out, full, mask)
	}
	return out.Table(), nil
}

// appendMaskRows appends the distinct mask-projection of the full
// combination table, padding non-mask dimensions with ALL.
func appendMaskRows(out *table.Builder, full *table.Table, mask uint) {
	n := full.Schema.Len()
	seen := map[uint64][]table.Row{}
	for _, r := range full.Rows {
		row := make(table.Row, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				row[i] = r[i]
			} else {
				row[i] = table.All()
			}
		}
		h := row.Hash()
		dup := false
		for _, prev := range seen[h] {
			if prev.Equal(row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], row)
		out.Append(row)
	}
}

// subset returns the dims selected by the bit mask (bit i ↔ dims[i]).
func subset(dims []string, mask uint) []string {
	var out []string
	for i, d := range dims {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, d)
		}
	}
	return out
}

// maskOf converts a grouping set to its bit mask over dims.
func maskOf(dims []string, set []string) (uint, error) {
	var mask uint
	for _, s := range set {
		found := false
		for i, d := range dims {
			if strings.EqualFold(d, s) {
				mask |= 1 << uint(i)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("cube: grouping set column %q not among dimensions %v", s, dims)
		}
	}
	return mask, nil
}

// Theta builds the MD-join θ-condition relating a cube-structured
// base-values table to a detail relation: the conjunction over dims of
// R.dim =^ B.dim (cube equality, so ALL cells receive every tuple). The
// detail side is qualified with "R"; the base side is unqualified, as in
// the paper's examples.
func Theta(dims ...string) expr.Expr {
	var conj []expr.Expr
	for _, d := range dims {
		conj = append(conj, expr.CubeEq(expr.QC("R", d), expr.C(d)))
	}
	return expr.And(conj...)
}
