package cube

import (
	"fmt"
	"strings"

	"mdjoin/internal/agg"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Method selects the cube computation strategy.
type Method uint8

const (
	// Naive computes every cuboid independently from the detail relation —
	// the 2^n-group-bys plan the paper says a user without cube support
	// must write (Example 2.3's discussion), and the baseline the
	// optimized strategies are benched against.
	Naive Method = iota
	// Rollup applies Theorem 4.5: the finest cuboid is aggregated from
	// detail; every coarser cuboid is re-aggregated from its cheapest
	// already-computed drill-down parent (count re-aggregates as sum,
	// etc.).
	Rollup
	// PipeSort computes cuboids along PIPESORT pipelined paths ([AAD+96],
	// Figure 2 of the paper): each path sorts its source once and closes
	// all prefix cuboids in a single pass.
	PipeSort
	// MDJoinPass evaluates the whole cube as a single MD-join against the
	// cube base-values table with cube-equality θ — Algorithm 3.1 with
	// 2^n index probes per tuple. One detail scan, no sorting.
	MDJoinPass
	// PartitionedCube is the Ross–Srivastava divide-and-conquer [RS96]:
	// partition detail on one dimension, compute the sub-cube without that
	// dimension per partition (in memory), then the ALL-slice by
	// re-aggregation — expressed in the paper as Theorem 4.1 +
	// Observation 4.1.
	PartitionedCube
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Naive:
		return "naive"
	case Rollup:
		return "rollup"
	case PipeSort:
		return "pipesort"
	case MDJoinPass:
		return "mdjoin"
	case PartitionedCube:
		return "partitioned"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Options configure cube computation.
type Options struct {
	Method Method
	// PartitionDim, for PartitionedCube, names the dimension to partition
	// on; empty picks the highest-cardinality dimension (the [RS96]
	// heuristic: it yields the most, smallest partitions).
	PartitionDim string
}

// Compute materializes the full data cube of the detail relation over the
// dimensions: a single table with one column per dimension (ALL marking
// rolled-up ones) plus one column per aggregate spec — the Figure 1(a)
// layout.
//
// Aggregate specs may reference detail columns unqualified or via "R".
// Non-distributive specs (avg) are handled by sum/count decomposition on
// the rollup-based strategies and natively on the scan-based ones.
func Compute(detail *table.Table, dims []string, specs []agg.Spec, opt Options) (*table.Table, error) {
	lat, err := NewLattice(detail, dims)
	if err != nil {
		return nil, err
	}
	switch opt.Method {
	case Naive:
		return computeNaive(detail, lat, specs)
	case Rollup:
		return computeRollup(detail, lat, specs)
	case PipeSort:
		return computePipeSort(detail, lat, specs)
	case MDJoinPass:
		return computeMDJoinPass(detail, lat, specs)
	case PartitionedCube:
		return computePartitioned(detail, lat, specs, opt.PartitionDim)
	default:
		return nil, fmt.Errorf("cube: unknown method %v", opt.Method)
	}
}

// cuboidSchemaFor is the uniform output schema: all dims then aggregates.
func cuboidSchemaFor(lat *Lattice, specs []agg.Spec) *table.Schema {
	return table.SchemaOf(lat.Dims...).Append(agg.OutColumns(specs)...)
}

// padCuboid expands a group-by result over a subset of dims into the
// uniform cuboid schema (dims then aggregate columns), inserting ALL for
// rolled-up dimensions. The group-by result's columns are attrs followed
// by aggregate columns.
func padCuboid(lat *Lattice, mask uint, grouped *table.Table, specs []agg.Spec) *table.Table {
	nAggs := len(specs)
	attrs := lat.Attrs(mask)
	out := table.New(cuboidSchemaFor(lat, specs))
	// Map each dim to the grouped column ordinal or -1 (ALL).
	pos := make([]int, len(lat.Dims))
	for i, d := range lat.Dims {
		pos[i] = -1
		for j, a := range attrs {
			if strings.EqualFold(a, d) {
				pos[i] = j
			}
		}
	}
	for _, r := range grouped.Rows {
		row := make(table.Row, 0, len(lat.Dims)+nAggs)
		for i := range lat.Dims {
			if pos[i] < 0 {
				row = append(row, table.All())
			} else {
				row = append(row, r[pos[i]])
			}
		}
		row = append(row, r[len(attrs):]...)
		out.Append(row)
	}
	return out
}

// computeNaive evaluates every cuboid independently from detail.
func computeNaive(detail *table.Table, lat *Lattice, specs []agg.Spec) (*table.Table, error) {
	out := table.New(cuboidSchemaFor(lat, specs))
	for m := uint(0); m <= lat.FullMask(); m++ {
		g, err := engine.GroupBy(detail, lat.Attrs(m), specs)
		if err != nil {
			return nil, err
		}
		p := padCuboid(lat, m, g, specs)
		out.Rows = append(out.Rows, p.Rows...)
	}
	return out, nil
}

// decomposed rewrites specs so every one re-aggregates: avg(x) becomes
// hidden sum(x) and count(x) columns recombined by a final projection.
// It returns the working specs, and a post-processing step (nil when no
// rewrite was needed).
type decomposed struct {
	work []agg.Spec
	// finalize rebuilds the requested columns from the working columns.
	finalize func(*table.Table, *Lattice) (*table.Table, error)
}

func decompose(lat *Lattice, specs []agg.Spec) (*decomposed, error) {
	needs := false
	for _, s := range specs {
		fn, err := agg.Lookup(s.Func)
		if err != nil {
			return nil, err
		}
		if _, ok := fn.Reaggregate(); !ok {
			if !strings.EqualFold(s.Func, "avg") {
				return nil, fmt.Errorf("cube: aggregate %q is not distributive and cannot be rolled up (Theorem 4.5 requires distributive aggregates; use the naive or mdjoin method)", s.Func)
			}
			needs = true
		}
	}
	if !needs {
		return &decomposed{work: specs}, nil
	}
	var work []agg.Spec
	type avgParts struct{ sum, count string }
	parts := map[string]avgParts{} // out name → hidden columns
	for i, s := range specs {
		if strings.EqualFold(s.Func, "avg") {
			p := avgParts{
				sum:   fmt.Sprintf("__avg%d_sum", i),
				count: fmt.Sprintf("__avg%d_cnt", i),
			}
			parts[s.OutName()] = p
			work = append(work,
				agg.Spec{Func: "sum", Arg: s.Arg, As: p.sum},
				agg.Spec{Func: "count", Arg: s.Arg, As: p.count},
			)
			continue
		}
		work = append(work, s)
	}
	finalize := func(t *table.Table, lat *Lattice) (*table.Table, error) {
		cols := make([]engine.ProjCol, 0, len(lat.Dims)+len(specs))
		for _, d := range lat.Dims {
			cols = append(cols, engine.ProjCol{Expr: expr.C(d)})
		}
		for _, s := range specs {
			if p, ok := parts[s.OutName()]; ok {
				cols = append(cols, engine.ProjCol{
					Expr: expr.Div(expr.C(p.sum), expr.C(p.count)),
					As:   s.OutName(),
				})
				continue
			}
			cols = append(cols, engine.ProjCol{Expr: expr.C(s.OutName()), As: s.OutName()})
		}
		return engine.Project(t, cols, false)
	}
	return &decomposed{work: work, finalize: finalize}, nil
}

// reaggSpecs maps working specs to their Theorem 4.5 re-aggregation over a
// materialized cuboid: f(arg) AS name becomes f'(name) AS name.
func reaggSpecs(specs []agg.Spec) ([]agg.Spec, error) {
	out := make([]agg.Spec, len(specs))
	for i, s := range specs {
		fn, err := agg.Lookup(s.Func)
		if err != nil {
			return nil, err
		}
		re, ok := fn.Reaggregate()
		if !ok {
			return nil, fmt.Errorf("cube: aggregate %q cannot re-aggregate", s.Func)
		}
		out[i] = agg.Spec{Func: re.Name(), Arg: expr.C(s.OutName()), As: s.OutName()}
	}
	return out, nil
}

// computeRollup implements the Theorem 4.5 strategy: finest cuboid from
// detail, every other from its cheapest finer parent.
func computeRollup(detail *table.Table, lat *Lattice, specs []agg.Spec) (*table.Table, error) {
	dec, err := decompose(lat, specs)
	if err != nil {
		return nil, err
	}
	work := dec.work
	reagg, err := reaggSpecs(work)
	if err != nil {
		return nil, err
	}

	cuboids := make(map[uint]*table.Table, lat.FullMask()+1)
	for _, m := range lat.SortedMasksDescending() {
		if m == lat.FullMask() {
			g, err := engine.GroupBy(detail, lat.Attrs(m), work)
			if err != nil {
				return nil, err
			}
			cuboids[m] = padCuboid(lat, m, g, work)
			continue
		}
		parent := lat.CheapestParent(m)
		g, err := engine.GroupBy(cuboids[parent], lat.Attrs(m), reagg)
		if err != nil {
			return nil, err
		}
		cuboids[m] = padCuboid(lat, m, g, work)
	}

	out := table.New(table.SchemaOf(lat.Dims...).Append(agg.OutColumns(work)...))
	for _, m := range lat.SortedMasksDescending() {
		out.Rows = append(out.Rows, cuboids[m].Rows...)
	}
	if dec.finalize != nil {
		return dec.finalize(out, lat)
	}
	return out, nil
}

// computeMDJoinPass evaluates the cube as one MD-join against the cube
// base-values table: MD(CubeBase, R, l, ∧ᵢ R.dᵢ =^ dᵢ).
func computeMDJoinPass(detail *table.Table, lat *Lattice, specs []agg.Spec) (*table.Table, error) {
	base, err := CubeBase(detail, lat.Dims...)
	if err != nil {
		return nil, err
	}
	return mdJoinCube(base, detail, lat.Dims, specs)
}

// computePartitioned is the Ross–Srivastava strategy expressed through the
// paper's transformations. With partition dimension D:
//
//	MD(B, R, l, θ)
//	  = ∪_z MD(σ_{D=z}(B), σ_{R.D=z}(R), l, θ)   (Thm 4.1 + Obs 4.1)
//	    ∪ MD(σ_{D=ALL}(B), cube_without_D, l', θ) (Thm 4.5)
//
// Each partition's sub-cube is computed in memory (here: by the rollup
// strategy); the D=ALL slice re-aggregates the D-partitioned results.
func computePartitioned(detail *table.Table, lat *Lattice, specs []agg.Spec, partDim string) (*table.Table, error) {
	if len(lat.Dims) < 2 {
		return computeRollup(detail, lat, specs)
	}
	if partDim == "" {
		// Heuristic from [RS96]: partition on the highest-cardinality
		// dimension to keep partitions small.
		best := 0
		for i := range lat.Dims {
			if lat.Card[i] > lat.Card[best] {
				best = i
			}
		}
		partDim = lat.Dims[best]
	}
	pcol := detail.Schema.ColIndex(partDim)
	if pcol < 0 {
		return nil, fmt.Errorf("cube: partition dimension %q not in schema %v", partDim, detail.Schema.Names())
	}
	rest := make([]string, 0, len(lat.Dims)-1)
	for _, d := range lat.Dims {
		if !strings.EqualFold(d, partDim) {
			rest = append(rest, d)
		}
	}

	dec, err := decompose(lat, specs)
	if err != nil {
		return nil, err
	}
	work := dec.work

	// Partition the detail relation by the dimension's values.
	parts := map[table.Value]*table.Table{}
	var order []table.Value
	for _, r := range detail.Rows {
		v := r[pcol]
		p, ok := parts[v]
		if !ok {
			p = table.New(detail.Schema)
			parts[v] = p
			order = append(order, v)
		}
		p.Append(r)
	}

	out := table.New(table.SchemaOf(lat.Dims...).Append(agg.OutColumns(work)...))
	// Per-partition sub-cubes over the remaining dimensions (D held at z).
	for _, z := range order {
		sub, err := Compute(parts[z], rest, work, Options{Method: Rollup})
		if err != nil {
			return nil, err
		}
		// Re-insert the partition dimension column with value z, in the
		// full dimension order.
		for _, r := range sub.Rows {
			row := make(table.Row, 0, out.Schema.Len())
			ri := 0
			for _, d := range lat.Dims {
				if strings.EqualFold(d, partDim) {
					row = append(row, z)
				} else {
					row = append(row, r[ri])
					ri++
				}
			}
			row = append(row, r[ri:]...)
			out.Append(row)
		}
	}

	// The D=ALL slice: re-aggregate the union of partition results
	// (Theorem 4.5, since the partition slices are one level finer).
	reagg, err := reaggSpecs(work)
	if err != nil {
		return nil, err
	}
	for m := uint(0); m <= lat.FullMask(); m++ {
		attrs := lat.Attrs(m)
		if containsFold(attrs, partDim) {
			continue // only D=ALL cells remain to compute
		}
		// Source: rows of out where D != ALL and the non-D dims of m are
		// real, i.e. the cells (D=z, m) — they are exactly one level finer.
		src, err := sliceCells(out, lat, m|dimBit(lat, partDim))
		if err != nil {
			return nil, err
		}
		g, err := engine.GroupBy(src, attrs, reagg)
		if err != nil {
			return nil, err
		}
		p := padCuboid(lat, m, g, work)
		out.Rows = append(out.Rows, p.Rows...)
	}

	if dec.finalize != nil {
		return dec.finalize(out, lat)
	}
	return out, nil
}

// dimBit returns the lattice bit of the named dimension.
func dimBit(lat *Lattice, dim string) uint {
	for i, d := range lat.Dims {
		if strings.EqualFold(d, dim) {
			return 1 << uint(i)
		}
	}
	return 0
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// sliceCells selects the rows of a (partial) cube table belonging to the
// cuboid identified by mask: dims in the mask are real (not ALL) and dims
// outside are ALL.
func sliceCells(cube *table.Table, lat *Lattice, mask uint) (*table.Table, error) {
	idx := make([]int, len(lat.Dims))
	for i, d := range lat.Dims {
		idx[i] = cube.Schema.MustColIndex(d)
	}
	out := table.New(cube.Schema)
	for _, r := range cube.Rows {
		match := true
		for i := range lat.Dims {
			isAll := r[idx[i]].IsAll()
			if mask&(1<<uint(i)) != 0 {
				if isAll {
					match = false
					break
				}
			} else if !isAll {
				match = false
				break
			}
		}
		if match {
			out.Append(r)
		}
	}
	return out, nil
}
