package cube

import (
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

func TestComputeSubcubesMatchesFullCube(t *testing.T) {
	detail := randSales(400, 5, 4, 3, 51)
	dims := []string{"prod", "month", "state"}
	specs := specsSumCount()

	full, err := Compute(detail, dims, specs, Options{Method: Naive})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := NewLattice(detail, dims)
	if err != nil {
		t.Fatal(err)
	}

	sets := [][]string{
		{"prod", "month"},
		{"prod"},
		{}, // apex
	}
	sub, err := ComputeSubcubes(detail, dims, sets, specs)
	if err != nil {
		t.Fatal(err)
	}

	// The subcube result must equal the full cube restricted to the
	// requested masks.
	want := table.New(full.Schema)
	for _, s := range sets {
		mask, err := maskOf(dims, s)
		if err != nil {
			t.Fatal(err)
		}
		slice, err := sliceCells(full, lat, mask)
		if err != nil {
			t.Fatal(err)
		}
		want.Rows = append(want.Rows, slice.Rows...)
	}
	if d := want.Diff(sub); d != "" {
		t.Fatalf("selected subcubes differ from full-cube slices: %s", d)
	}
}

func TestComputeSubcubesReusesFinerResults(t *testing.T) {
	// Requesting a chain (prod,month) ⊃ (prod) ⊃ () must aggregate the
	// coarser members from the finer ones, not re-scan detail — verified
	// indirectly: results match and requesting only the apex also works.
	detail := randSales(300, 4, 3, 2, 52)
	dims := []string{"prod", "month"}
	specs := []agg.Spec{agg.NewSpec("sum", expr.C("sale"), "total")}

	apexOnly, err := ComputeSubcubes(detail, dims, [][]string{{}}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if apexOnly.Len() != 1 {
		t.Fatalf("apex-only request: %d rows, want 1", apexOnly.Len())
	}
	var wantTotal float64
	for _, r := range detail.Rows {
		wantTotal += r[detail.Schema.MustColIndex("sale")].AsFloat()
	}
	if got := apexOnly.Value(0, "total").AsFloat(); absf(got-wantTotal) > 1e-6 {
		t.Errorf("apex total = %v, want %v", got, wantTotal)
	}
}

func TestComputeSubcubesWithAvg(t *testing.T) {
	detail := randSales(300, 4, 3, 2, 53)
	dims := []string{"prod", "month"}
	specs := []agg.Spec{agg.NewSpec("avg", expr.C("sale"), "mean")}

	sub, err := ComputeSubcubes(detail, dims, [][]string{{"prod", "month"}, {"prod"}}, specs)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compute(detail, dims, specs, Options{Method: Naive})
	if err != nil {
		t.Fatal(err)
	}
	// Every subcube row must appear in the full cube with the same mean.
	lat, _ := NewLattice(detail, dims)
	fullIdx := table.BuildIndex(full, lat.Dims)
	for _, r := range sub.Rows {
		key := []table.Value{r[0], r[1]}
		hits := fullIdx.Probe(key)
		if len(hits) != 1 {
			t.Fatalf("row %v: %d matches in full cube", r, len(hits))
		}
		want := full.Rows[hits[0]][full.Schema.MustColIndex("mean")]
		got := r[sub.Schema.MustColIndex("mean")]
		if absf(want.AsFloat()-got.AsFloat()) > 1e-9 {
			t.Errorf("row %v: mean %v vs full cube %v", r, got, want)
		}
	}
}

func TestComputeSubcubesErrors(t *testing.T) {
	detail := randSales(50, 3, 2, 2, 54)
	if _, err := ComputeSubcubes(detail, []string{"prod"}, nil, specsSumCount()); err == nil {
		t.Error("empty request must error")
	}
	if _, err := ComputeSubcubes(detail, []string{"prod"}, [][]string{{"nope"}}, specsSumCount()); err == nil {
		t.Error("unknown dimension must error")
	}
	if _, err := ComputeSubcubes(detail, []string{"prod"}, [][]string{{"prod"}},
		[]agg.Spec{agg.NewSpec("median", expr.C("sale"), "mid")}); err == nil {
		t.Error("holistic aggregates must be rejected")
	}
}

func absf(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
