package cube

import (
	"fmt"
	"math/bits"
	"sort"

	"mdjoin/internal/agg"
	"mdjoin/internal/engine"
	"mdjoin/internal/table"
)

// ComputeSubcubes materializes only the requested cuboids (given as
// grouping sets over dims) — "materializing an optimal set of subcubes",
// the generalization the paper's conclusions call out for the Theorem 4.5
// framework. Each requested cuboid is computed from the cheapest already
// materialized finer cuboid when one exists (re-aggregation), falling
// back to the detail relation; intermediate cuboids are materialized only
// when a requested one needs the full-dimension aggregation anyway.
//
// The result has the uniform Figure 1 layout (all dims, ALL markers) and
// contains exactly the requested cuboids' cells. Aggregates must be
// distributive or avg (decomposed); use Naive Compute for holistic ones.
func ComputeSubcubes(detail *table.Table, dims []string, sets [][]string, specs []agg.Spec) (*table.Table, error) {
	lat, err := NewLattice(detail, dims)
	if err != nil {
		return nil, err
	}
	dec, err := decompose(lat, specs)
	if err != nil {
		return nil, err
	}
	work := dec.work
	reagg, err := reaggSpecs(work)
	if err != nil {
		return nil, err
	}

	// Requested masks, deduplicated, ordered finest-first so coarser ones
	// can reuse finer results.
	var masks []uint
	seen := map[uint]bool{}
	for _, s := range sets {
		m, err := maskOf(dims, s)
		if err != nil {
			return nil, err
		}
		if !seen[m] {
			seen[m] = true
			masks = append(masks, m)
		}
	}
	if len(masks) == 0 {
		return nil, fmt.Errorf("cube: no subcubes requested")
	}
	sort.Slice(masks, func(a, b int) bool {
		pa, pb := bits.OnesCount(uint(masks[a])), bits.OnesCount(uint(masks[b]))
		if pa != pb {
			return pa > pb
		}
		return masks[a] < masks[b]
	})

	materialized := map[uint]*table.Table{}
	out := table.New(cuboidSchemaFor(lat, work))
	for _, m := range masks {
		// Cheapest materialized strict superset, if any.
		var src *table.Table
		bestEst := -1
		for sm, t := range materialized {
			if sm&m == m && sm != m {
				if est := lat.Estimate(sm); bestEst < 0 || est < bestEst {
					bestEst, src = est, t
				}
			}
		}
		var g *table.Table
		var err error
		if src != nil {
			g, err = engine.GroupBy(src, lat.Attrs(m), reagg)
		} else {
			g, err = engine.GroupBy(detail, lat.Attrs(m), work)
		}
		if err != nil {
			return nil, err
		}
		cuboid := padCuboid(lat, m, g, work)
		materialized[m] = cuboid
		out.Rows = append(out.Rows, cuboid.Rows...)
	}
	if dec.finalize != nil {
		return dec.finalize(out, lat)
	}
	return out, nil
}
