package cube

import (
	"strings"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

func TestSingleDimensionCube(t *testing.T) {
	detail := randSales(100, 5, 3, 2, 61)
	specs := specsSumCount()
	want, err := Compute(detail, []string{"prod"}, specs, Options{Method: Naive})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{Rollup, PipeSort, MDJoinPass, PartitionedCube} {
		got, err := Compute(detail, []string{"prod"}, specs, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if d := want.Diff(got); d != "" {
			t.Errorf("%v on 1-dim lattice: %s", m, d)
		}
	}
}

func TestEmptyDetailCube(t *testing.T) {
	empty := table.New(table.SchemaOf("prod", "month", "sale"))
	for _, m := range []Method{Naive, Rollup, PipeSort, MDJoinPass, PartitionedCube} {
		got, err := Compute(empty, []string{"prod", "month"}, specsSumCount(), Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got.Len() != 0 {
			t.Errorf("%v: empty detail should give an empty cube, got %d rows", m, got.Len())
		}
	}
}

func TestPartitionedCubeExplicitDim(t *testing.T) {
	detail := randSales(300, 5, 4, 3, 62)
	dims := []string{"prod", "month", "state"}
	specs := specsSumCount()
	want, err := Compute(detail, dims, specs, Options{Method: Naive})
	if err != nil {
		t.Fatal(err)
	}
	for _, pd := range dims {
		got, err := Compute(detail, dims, specs, Options{Method: PartitionedCube, PartitionDim: pd})
		if err != nil {
			t.Fatalf("partition on %s: %v", pd, err)
		}
		if d := want.Diff(got); d != "" {
			t.Errorf("partition on %s: %s", pd, d)
		}
	}
	if _, err := Compute(detail, dims, specs, Options{Method: PartitionedCube, PartitionDim: "bogus"}); err == nil {
		t.Error("bad partition dimension should error")
	}
}

func TestThetaBuilder(t *testing.T) {
	theta := Theta("a", "b")
	s := theta.String()
	if !strings.Contains(s, "=^") || !strings.Contains(s, "R.a") || !strings.Contains(s, "R.b") {
		t.Errorf("theta = %s", s)
	}
	if Theta() != nil {
		t.Error("no dims → nil θ")
	}
}

func TestMaskNames(t *testing.T) {
	detail := randSales(50, 3, 2, 2, 63)
	lat, err := NewLattice(detail, []string{"prod", "month"})
	if err != nil {
		t.Fatal(err)
	}
	if got := lat.MaskName(0); got != "()" {
		t.Errorf("apex name = %q", got)
	}
	if got := lat.MaskName(lat.FullMask()); got != "(prod,month)" {
		t.Errorf("full name = %q", got)
	}
}

func TestLatticeParents(t *testing.T) {
	detail := randSales(50, 3, 2, 2, 64)
	lat, err := NewLattice(detail, []string{"prod", "month"})
	if err != nil {
		t.Fatal(err)
	}
	ps := lat.Parents(0)
	if len(ps) != 2 {
		t.Errorf("apex parents = %v", ps)
	}
	if len(lat.Parents(lat.FullMask())) != 0 {
		t.Error("full mask has no parents")
	}
	// CheapestParent of the full mask degenerates to itself.
	if lat.CheapestParent(lat.FullMask()) != lat.FullMask() {
		t.Error("cheapest parent of full mask")
	}
}

func TestRollupRejectsHolisticGracefully(t *testing.T) {
	detail := randSales(100, 3, 2, 2, 65)
	_, err := Compute(detail, []string{"prod"}, []agg.Spec{
		agg.NewSpec("median", expr.C("sale"), "mid"),
	}, Options{Method: Rollup})
	if err == nil {
		t.Fatal("rollup of a holistic aggregate must error")
	}
	// The scan-based methods handle it.
	for _, m := range []Method{Naive, MDJoinPass} {
		if _, err := Compute(detail, []string{"prod"}, []agg.Spec{
			agg.NewSpec("median", expr.C("sale"), "mid"),
		}, Options{Method: m}); err != nil {
			t.Errorf("%v should support holistic aggregates: %v", m, err)
		}
	}
}

func TestCubeRowCountFormula(t *testing.T) {
	// The cube's row count is the sum over masks of the distinct
	// mask-projections — verify against direct counting.
	detail := randSales(200, 4, 3, 3, 66)
	dims := []string{"prod", "month", "state"}
	cube, err := Compute(detail, dims, specsSumCount(), Options{Method: Rollup})
	if err != nil {
		t.Fatal(err)
	}
	lat, _ := NewLattice(detail, dims)
	want := 0
	for m := uint(0); m <= lat.FullMask(); m++ {
		seen := map[string]bool{}
		for _, r := range detail.Rows {
			key := ""
			for i, d := range dims {
				if m&(1<<uint(i)) != 0 {
					key += r[detail.Schema.MustColIndex(d)].String() + "\x00"
				}
			}
			seen[key] = true
		}
		want += len(seen)
	}
	if cube.Len() != want {
		t.Errorf("cube rows = %d, want %d", cube.Len(), want)
	}
}

func TestGroupingSetsBaseErrors(t *testing.T) {
	detail := randSales(50, 3, 2, 2, 67)
	if _, err := GroupingSetsBase(detail, []string{"prod"}, [][]string{{"bogus"}}); err == nil {
		t.Error("unknown set column must error")
	}
	if _, err := CubeBase(detail, "bogus"); err == nil {
		t.Error("unknown dimension must error")
	}
}
