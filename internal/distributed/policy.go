package distributed

// This file is the fault-tolerance policy layer for the scatter plans:
// per-attempt timeouts, retries with capped exponential backoff, per-site
// circuit breaking, and partial-result degradation. It sits between the
// scatter recombinators and Cluster.ask; because fragment results
// recombine by re-aggregation (Theorem 4.1) the recombination is
// indifferent to which replica — or which attempt — produced a partial
// result, so every recovery action below preserves the operator's
// semantics.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"mdjoin/internal/core"
	"mdjoin/internal/table"
)

// Sentinel errors surfaced (wrapped in *SiteError) by the request path.
var (
	// ErrSiteClosed reports an ask against a site whose serve loop has
	// stopped; retrying the same site cannot help, but a replica can.
	ErrSiteClosed = errors.New("site closed")

	// ErrCircuitOpen reports that a site's circuit breaker is open: the
	// site exceeded Policy.FailureThreshold consecutive failures and asks
	// fail fast until Policy.Cooldown admits a probe.
	ErrCircuitOpen = errors.New("circuit open")
)

// SiteError attributes a request failure to a site.
type SiteError struct {
	Site string
	Err  error
}

func (e *SiteError) Error() string {
	return fmt.Sprintf("distributed: site %q: %v", e.Site, e.Err)
}

func (e *SiteError) Unwrap() error { return e.Err }

// PartialError reports a degraded ScatterFragments result: the named
// fragments contributed nothing because every replica failed. The result
// returned alongside it still has one row per base row — each surviving
// site reports all base rows — but its aggregates miss the dead
// fragments' detail tuples.
type PartialError struct {
	// Failed maps each dead fragment to the last error seen across its
	// replicas.
	Failed map[string]error
}

// Fragments lists the dead fragments in sorted order.
func (e *PartialError) Fragments() []string {
	out := make([]string, 0, len(e.Failed))
	for f := range e.Failed {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("distributed: partial result; dead fragments: %s",
		strings.Join(e.Fragments(), ", "))
}

// Policy tunes the fault handling of the scatter plans. The zero value
// (and a nil *Policy) disables every mechanism: one attempt per site, no
// timeout, no circuit, fail the whole query on any site failure.
type Policy struct {
	// SiteTimeout bounds each attempt at a single site; the deadline
	// cancels the site's scan via the threaded context. Zero = no
	// per-attempt bound (the whole-query ctx still applies).
	SiteTimeout time.Duration

	// MaxRetries is the number of additional attempts at the same site
	// after a failed one (so MaxRetries=2 → up to 3 attempts).
	MaxRetries int

	// BackoffBase is the delay before the first retry; each further retry
	// doubles it. Zero retries immediately.
	BackoffBase time.Duration

	// BackoffMax caps the grown backoff, jitter included. Zero = no cap.
	BackoffMax time.Duration

	// Jitter adds a uniformly random fraction of the backoff (0.2 → up to
	// +20%) to de-synchronize retry storms; the sum is still capped by
	// BackoffMax.
	Jitter float64

	// FailureThreshold opens a site's circuit after that many consecutive
	// failures: further asks fail fast with ErrCircuitOpen instead of
	// burning a timeout each. Zero disables circuit breaking.
	FailureThreshold int

	// Cooldown is how long an open circuit rejects asks before admitting
	// a single probe (half-open); a successful probe closes the circuit.
	// Zero keeps an open circuit open until a failover path succeeds
	// elsewhere.
	Cooldown time.Duration

	// AllowPartial lets ScatterFragments degrade gracefully: when every
	// replica of a fragment is down the call returns the surviving
	// fragments' recombination plus a *PartialError naming the dead ones,
	// instead of failing outright.
	AllowPartial bool
}

// backoffFor computes the pre-attempt delay (attempt ≥ 2): exponential in
// the attempt number with jitter, capped by BackoffMax.
func (p *Policy) backoffFor(attempt int) time.Duration {
	if p.BackoffBase <= 0 {
		return 0
	}
	d := p.BackoffBase
	for i := 2; i < attempt && (p.BackoffMax <= 0 || d < p.BackoffMax); i++ {
		d *= 2
	}
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	if p.Jitter > 0 {
		d += time.Duration(float64(d) * p.Jitter * rand.Float64())
		if p.BackoffMax > 0 && d > p.BackoffMax {
			d = p.BackoffMax
		}
	}
	return d
}

// sleepCtx waits d, or less if ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// breaker is a per-site circuit breaker: closed → open after `threshold`
// consecutive failures → half-open (one probe) after `cooldown`.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration

	consecutive int
	open        bool
	openedAt    time.Time
}

// allow reports whether a request may proceed; in the open state it admits
// one probe per cooldown window.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.cooldown > 0 && time.Since(b.openedAt) >= b.cooldown {
		// Half-open: let this probe through; re-arm the window so a storm
		// of callers doesn't all probe at once.
		b.openedAt = time.Now()
		return true
	}
	return false
}

func (b *breaker) success() {
	b.mu.Lock()
	b.consecutive = 0
	b.open = false
	b.mu.Unlock()
}

// failure records a failed attempt and reports whether this one tripped
// the breaker closed→open.
func (b *breaker) failure() (opened bool) {
	b.mu.Lock()
	b.consecutive++
	if b.threshold > 0 && b.consecutive >= b.threshold && !b.open {
		b.open = true
		b.openedAt = time.Now()
		opened = true
	}
	b.mu.Unlock()
	return opened
}

// breakerFor lazily creates the site's breaker; returns nil when circuit
// breaking is disabled.
func (c *Cluster) breakerFor(site string) *breaker {
	p := c.policy
	if p == nil || p.FailureThreshold <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	br, ok := c.breakers[site]
	if !ok {
		br = &breaker{threshold: p.FailureThreshold, cooldown: p.Cooldown}
		c.breakers[site] = br
	}
	return br
}

// askOnce issues one attempt, recording it in the report. The request's
// Options travel by value, so each attempt gets a private Stats: never the
// caller's pointer (which concurrent scatter goroutines would race on), and
// a fresh tree per attempt so a failed attempt's partial counters are
// discarded rather than double-counted.
func (c *Cluster) askOnce(ctx context.Context, site string, req askRequest, rep *Report) (*table.Table, error) {
	req.opt.Stats = nil
	var st *core.Stats
	if rep != nil {
		st = &core.Stats{}
		req.opt.Stats = st
	}
	rep.recordAttempt(site)
	res, err := c.ask(ctx, site, req)
	if err == nil {
		rep.recordSuccess(site, st)
	}
	return res, err
}

// askPolicy runs ask under the cluster policy: circuit check, per-attempt
// timeout, and retries with backoff. With no policy set it is plain ask.
func (c *Cluster) askPolicy(ctx context.Context, site string, req askRequest, rep *Report) (*table.Table, error) {
	p := c.policy
	if p == nil {
		res, err := c.askOnce(ctx, site, req, rep)
		if err != nil {
			rep.recordFailure(site, err, false)
		}
		return res, err
	}
	br := c.breakerFor(site)
	var lastErr error
	for attempt := 1; attempt <= 1+p.MaxRetries; attempt++ {
		if attempt > 1 {
			d := p.backoffFor(attempt)
			rep.recordBackoff(site, d)
			if err := sleepCtx(ctx, d); err != nil {
				return nil, lastErr
			}
		}
		if br != nil && !br.allow() {
			// Fail fast; retrying the same open circuit is pointless —
			// let the caller fail over to a replica instead.
			rep.recordRejected(site)
			return nil, &SiteError{Site: site, Err: ErrCircuitOpen}
		}
		actx, cancel := ctx, context.CancelFunc(nil)
		if p.SiteTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.SiteTimeout)
		}
		res, err := c.askOnce(actx, site, req, rep)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			if br != nil {
				br.success()
			}
			return res, nil
		}
		opened := false
		if br != nil {
			opened = br.failure()
		}
		rep.recordFailure(site, err, opened)
		lastErr = err
		if ctx.Err() != nil {
			// The whole-query deadline expired; further attempts are
			// doomed to the same fate.
			return nil, lastErr
		}
		if errors.Is(err, ErrSiteClosed) {
			// A closed site does not come back; skip the remaining
			// retries and let failover take over.
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// askFailover tries the candidate sites in preference order, moving to the
// next replica when a site's attempts (per askPolicy) are exhausted. The
// recombination downstream is replica-agnostic (Theorem 4.1), so whichever
// candidate answers yields the same final result.
func (c *Cluster) askFailover(ctx context.Context, sites []string, req askRequest, rep *Report) (*table.Table, error) {
	var lastErr error
	for i, site := range sites {
		if i > 0 {
			rep.recordFailover()
		}
		res, err := c.askPolicy(ctx, site, req, rep)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("distributed: no candidate sites")
	}
	return nil, lastErr
}
