// Query-report tests: the Report must account for every fault-handling
// decision the policy layer takes (attempts, retries, backoff, breaker
// transitions, failovers, partial degradation) and carry the merged
// execution stats of the scattered evaluations. External test package
// because faultinject imports distributed.
package distributed_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/distributed"
	"mdjoin/internal/expr"
	"mdjoin/internal/faultinject"
)

// siteReport finds a site's entry case-insensitively.
func siteReport(t *testing.T, rep *distributed.Report, name string) *distributed.SiteReport {
	t.Helper()
	for k, sr := range rep.Sites {
		if strings.EqualFold(k, name) {
			return sr
		}
	}
	t.Fatalf("report has no entry for site %q (sites: %v)", name, rep.SiteNames())
	return nil
}

func TestReportRetryMetrics(t *testing.T) {
	sales, base, sites := faultSetup(t)
	faultinject.Wrap(sites[0], faultinject.Plan{FailFirst: 1})
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPolicy(distributed.Policy{MaxRetries: 2, BackoffBase: time.Millisecond})

	rep := distributed.NewReport()
	var stats core.Stats
	got, err := cluster.ScatterFragmentsReport(context.Background(), base, sumCountPhase(), core.Options{Stats: &stats}, rep)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != base.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), base.Len())
	}

	sr := siteReport(t, rep, sites[0].Name)
	if sr.Attempts != 2 || sr.Retries != 1 || sr.Failures != 1 {
		t.Errorf("flaky site: attempts=%d retries=%d failures=%d, want 2/1/1", sr.Attempts, sr.Retries, sr.Failures)
	}
	if sr.BackoffNanos <= 0 {
		t.Errorf("flaky site: BackoffNanos = %d, want > 0", sr.BackoffNanos)
	}
	if sr.LastError == "" {
		t.Error("flaky site: LastError empty after a failure")
	}
	for _, s := range sites[1:] {
		hr := siteReport(t, rep, s.Name)
		if hr.Attempts != 1 || hr.Failures != 0 {
			t.Errorf("healthy site %s: attempts=%d failures=%d, want 1/0", s.Name, hr.Attempts, hr.Failures)
		}
	}
	// Cluster-level exec stats cover every fragment's scan exactly once —
	// the failed attempt's partial counters must not leak in.
	if rep.Exec.TuplesScanned != sales.Len() {
		t.Errorf("Exec.TuplesScanned = %d, want %d", rep.Exec.TuplesScanned, sales.Len())
	}
	if rep.WallNanos <= 0 {
		t.Errorf("WallNanos = %d, want > 0", rep.WallNanos)
	}
	// The caller's Options.Stats receives the same cluster-level merge.
	if stats.Semantic() != rep.Exec.Semantic() {
		t.Errorf("caller stats diverge from report:\n caller %s\n report %s", stats.Semantic(), rep.Exec.Semantic())
	}
}

func TestReportCircuitAndFailover(t *testing.T) {
	_, base, sites := faultSetup(t)
	cluster, primaries, _ := replicatedCluster(t, sites)
	defer cluster.Close()
	faultinject.Wrap(primaries[0], faultinject.Plan{FailFirst: 1 << 30})
	cluster.SetPolicy(distributed.Policy{FailureThreshold: 1})

	rep := distributed.NewReport()
	phase := sumCountPhase()
	if _, err := cluster.ScatterFragmentsReport(context.Background(), base, phase, core.Options{}, rep); err != nil {
		t.Fatalf("failover must mask the dead primary: %v", err)
	}
	if rep.Failovers < 1 {
		t.Errorf("Failovers = %d, want ≥ 1", rep.Failovers)
	}
	sr := siteReport(t, rep, primaries[0].Name)
	if sr.CircuitOpened != 1 {
		t.Errorf("dead primary: CircuitOpened = %d, want 1", sr.CircuitOpened)
	}

	// A second scatter into the same report hits the now-open breaker:
	// the ask is rejected fast, not attempted.
	attempts := sr.Attempts
	if _, err := cluster.ScatterFragmentsReport(context.Background(), base, phase, core.Options{}, rep); err != nil {
		t.Fatal(err)
	}
	if sr.CircuitRejected < 1 {
		t.Errorf("dead primary: CircuitRejected = %d after second scatter, want ≥ 1", sr.CircuitRejected)
	}
	if sr.Attempts != attempts {
		t.Errorf("open circuit must not add attempts: %d → %d", attempts, sr.Attempts)
	}
}

func TestReportPartialDegradation(t *testing.T) {
	_, base, sites := faultSetup(t)
	faultinject.Wrap(sites[0], faultinject.Plan{FailFirst: 1 << 30})
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPolicy(distributed.Policy{AllowPartial: true})

	rep := distributed.NewReport()
	got, err := cluster.ScatterFragmentsReport(context.Background(), base, sumCountPhase(), core.Options{}, rep)
	var perr *distributed.PartialError
	if !errors.As(err, &perr) {
		t.Fatalf("want PartialError, got %v", err)
	}
	if got == nil || got.Len() != base.Len() {
		t.Fatal("partial result must still carry every base row")
	}
	if !rep.Partial {
		t.Error("report must flag partial degradation")
	}
	if len(rep.DeadFragments) != 1 || !strings.EqualFold(rep.DeadFragments[0], sites[0].Name) {
		t.Errorf("DeadFragments = %v, want [%s]", rep.DeadFragments, sites[0].Name)
	}
	if !strings.Contains(rep.String(), "PARTIAL") {
		t.Errorf("String() must render the partial flag: %q", rep.String())
	}
}

// TestScatterPhasesCallerStats: Options.Stats on a scatter no longer
// crosses the site boundary (each concurrent site used to write the same
// pointer — a data race); the cluster-level merge lands in the caller's
// tree after the call.
func TestScatterPhasesCallerStats(t *testing.T) {
	sales, base, sites := faultSetup(t)
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var routed []distributed.Routed
	for _, s := range sites {
		routed = append(routed, distributed.Routed{Site: s.Name, Phase: core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total_"+strings.ToLower(s.Name))},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
				expr.Eq(expr.QC("R", "state"), expr.S(s.Name))),
		}})
	}
	var stats core.Stats
	if _, err := cluster.ScatterPhases(context.Background(), base, routed, core.Options{Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	if stats.DetailScans != len(sites) {
		t.Errorf("DetailScans = %d, want %d (one per routed phase)", stats.DetailScans, len(sites))
	}
	// Each phase scans its own site's fragment; the fragments partition
	// Sales, so the cluster-merged scan count is exactly |Sales|.
	if stats.TuplesScanned != sales.Len() {
		t.Errorf("TuplesScanned = %d, want %d", stats.TuplesScanned, sales.Len())
	}
	if !stats.IndexUsed {
		t.Error("IndexUsed lost in the cluster merge")
	}
}
