package distributed

import (
	"context"
	"fmt"
	"sync"

	"mdjoin/internal/core"
	"mdjoin/internal/table"
)

// Evaluator computes a local MD-join for one request. The default
// evaluator of a Site runs core.Eval over the site's fragment with the
// request context threaded into the scan loop, so a caller that times out
// actually cancels the site's work. Fault-injection wrappers replace it.
type Evaluator func(ctx context.Context, base *table.Table, phases []core.Phase, opt core.Options) (*table.Table, error)

// Site is one data store holding a fragment of the detail relation. Run
// starts its serving loop; requests carry a base-values table and phases,
// responses carry the local MD-join result.
type Site struct {
	Name string
	Data *table.Table

	eval      Evaluator
	requests  chan request
	done      chan struct{}
	closeOnce sync.Once
}

type request struct {
	ctx    context.Context
	base   *table.Table
	phases []core.Phase
	opt    core.Options
	reply  chan response
}

type response struct {
	result *table.Table
	err    error
}

// NewSite creates a site around a local fragment.
func NewSite(name string, data *table.Table) *Site {
	s := &Site{
		Name:     name,
		Data:     data,
		requests: make(chan request),
		done:     make(chan struct{}),
	}
	s.eval = func(ctx context.Context, base *table.Table, phases []core.Phase, opt core.Options) (*table.Table, error) {
		opt.Ctx = ctx
		return core.Eval(base, s.Data, phases, opt)
	}
	return s
}

// Evaluator returns the site's current evaluation function; fault-injection
// wrappers compose around it.
func (s *Site) Evaluator() Evaluator { return s.eval }

// SetEvaluator replaces the site's evaluation function. It must be called
// before the site joins a cluster (the serve loop reads it without
// synchronization).
func (s *Site) SetEvaluator(fn Evaluator) { s.eval = fn }

// run serves MD-join requests until the site is closed.
func (s *Site) run() {
	for {
		select {
		case <-s.done:
			return
		case req := <-s.requests:
			// reply is buffered, so a caller that abandoned the request
			// (timeout, cancellation) never blocks the serve loop.
			req.reply <- s.serve(req)
		}
	}
}

// serve evaluates one request, converting a panic in the evaluator (or in
// the operator below it) into a returned error so a buggy site degrades
// into a failed request instead of killing the process.
func (s *Site) serve(req request) (resp response) {
	defer func() {
		if p := recover(); p != nil {
			resp = response{err: fmt.Errorf("site %q panicked: %v", s.Name, p)}
		}
	}()
	res, err := s.eval(req.ctx, req.base, req.phases, req.opt)
	return response{result: res, err: err}
}

// close stops the serve loop; pending and future asks observe ErrSiteClosed.
func (s *Site) close() {
	s.closeOnce.Do(func() { close(s.done) })
}
