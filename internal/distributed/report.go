package distributed

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mdjoin/internal/core"
)

// Report is the distributed counterpart of core.Stats: a cluster-level
// account of one scatter call's fault handling (per-site attempts, retries,
// backoff, circuit-breaker activity, failovers, partial degradation) plus
// the merged execution stats of every successful site evaluation. Pass one
// to ScatterPhasesReport / ScatterFragmentsReport; a nil *Report disables
// collection — every record method is nil-safe, mirroring the Options.Stats
// contract.
//
// The recorders synchronize internally (scatter fans out one goroutine per
// routed phase or fragment); the exported fields are safe to read once the
// scatter call has returned.
type Report struct {
	mu sync.Mutex

	// Sites holds one entry per site the call touched (including failover
	// replicas and sites that only rejected fast on an open circuit).
	Sites map[string]*SiteReport `json:"sites"`

	// Failovers counts moves to a later replica after a site's attempts
	// were exhausted.
	Failovers int `json:"failovers"`

	// Partial reports ScatterFragments degradation: the result was
	// recombined without DeadFragments (Policy.AllowPartial).
	Partial bool `json:"partial,omitempty"`
	// DeadFragments lists the fragments whose every replica failed.
	DeadFragments []string `json:"dead_fragments,omitempty"`

	// WallNanos is the scatter call's wall-clock time.
	WallNanos int64 `json:"wall_nanos"`

	// Exec is the cluster-level execution stats tree: the per-site stats of
	// every successful attempt merged with core.Stats.Merge. Per-stage times
	// sum across sites (CPU-style), so they can exceed WallNanos.
	Exec core.Stats `json:"exec"`
}

// SiteReport is one site's slice of the report.
type SiteReport struct {
	// Attempts counts asks issued to the site; Retries counts the attempts
	// after the first (per failover candidate pass).
	Attempts int `json:"attempts"`
	Retries  int `json:"retries"`
	// Failures counts attempts that returned an error.
	Failures int `json:"failures"`
	// BackoffNanos totals the pre-retry backoff delays spent on this site.
	BackoffNanos int64 `json:"backoff_nanos,omitempty"`
	// CircuitOpened counts closed→open breaker transitions this call
	// observed; CircuitRejected counts asks the open breaker failed fast.
	CircuitOpened   int `json:"circuit_opened,omitempty"`
	CircuitRejected int `json:"circuit_rejected,omitempty"`
	// LastError is the site's most recent failure, "" if none.
	LastError string `json:"last_error,omitempty"`
	// Exec is the merged execution stats of the site's successful attempts.
	Exec core.Stats `json:"exec"`
}

// NewReport returns an empty report ready to be passed to a scatter call.
func NewReport() *Report { return &Report{Sites: map[string]*SiteReport{}} }

// site returns the named site's entry, creating it. Caller holds r.mu.
func (r *Report) site(name string) *SiteReport {
	if r.Sites == nil {
		r.Sites = map[string]*SiteReport{}
	}
	sr, ok := r.Sites[name]
	if !ok {
		sr = &SiteReport{}
		r.Sites[name] = sr
	}
	return sr
}

// recordAttempt notes one ask issued to the site.
func (r *Report) recordAttempt(site string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sr := r.site(site)
	sr.Attempts++
	if sr.Attempts > 1 {
		sr.Retries++
	}
	r.mu.Unlock()
}

// recordFailure notes a failed attempt and whether it tripped the breaker
// closed→open.
func (r *Report) recordFailure(site string, err error, opened bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sr := r.site(site)
	sr.Failures++
	if err != nil {
		sr.LastError = err.Error()
	}
	if opened {
		sr.CircuitOpened++
	}
	r.mu.Unlock()
}

// recordRejected notes an ask the open circuit failed fast.
func (r *Report) recordRejected(site string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sr := r.site(site)
	sr.CircuitRejected++
	sr.LastError = ErrCircuitOpen.Error()
	r.mu.Unlock()
}

// recordBackoff notes pre-retry delay spent before asking the site again.
func (r *Report) recordBackoff(site string, d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.mu.Lock()
	r.site(site).BackoffNanos += d.Nanoseconds()
	r.mu.Unlock()
}

// recordSuccess folds a successful attempt's execution stats into the site
// and cluster trees.
func (r *Report) recordSuccess(site string, st *core.Stats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.site(site).Exec.Merge(st)
	r.Exec.Merge(st)
	r.mu.Unlock()
}

// recordFailover notes a move to a later replica.
func (r *Report) recordFailover() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.Failovers++
	r.mu.Unlock()
}

// recordPartial flags the degraded-result outcome and its dead fragments.
func (r *Report) recordPartial(dead []string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.Partial = true
	r.DeadFragments = dead
	r.mu.Unlock()
}

// SiteNames lists the touched sites in sorted order.
func (r *Report) SiteNames() []string {
	out := make([]string, 0, len(r.Sites))
	for s := range r.Sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// String renders the report, one line for the cluster and one per site.
func (r *Report) String() string {
	var b strings.Builder
	flag := ""
	if r.Partial {
		flag = fmt.Sprintf(" PARTIAL dead=[%s]", strings.Join(r.DeadFragments, ", "))
	}
	fmt.Fprintf(&b, "cluster: wall=%v failovers=%d%s %s",
		time.Duration(r.WallNanos).Round(time.Microsecond), r.Failovers, flag, r.Exec.String())
	for _, name := range r.SiteNames() {
		sr := r.Sites[name]
		fmt.Fprintf(&b, "\nsite %s: attempts=%d retries=%d failures=%d backoff=%v circuit(opened=%d rejected=%d)",
			name, sr.Attempts, sr.Retries, sr.Failures,
			time.Duration(sr.BackoffNanos).Round(time.Microsecond), sr.CircuitOpened, sr.CircuitRejected)
		if sr.LastError != "" {
			fmt.Fprintf(&b, " last_error=%q", sr.LastError)
		}
		fmt.Fprintf(&b, " %s", sr.Exec.String())
	}
	return b.String()
}
