// Package distributed emulates the distributed evaluation scenario of the
// paper's Section 4.3: "Suppose that the Sales table is a distributed
// relation, and data for New Jersey is stored in Trenton, data for New
// York in Albany... It is likely to be more efficient to move the
// base-value relation to the three data stores, perform local MD-joins,
// then equijoin the results."
//
// Each Site runs as its own goroutine with a request channel — the
// message-passing stand-in for a remote node (the substitution DESIGN.md
// documents for the paper's multi-store deployment). Two recombination
// strategies are provided, matching the two algebraic identities:
//
//   - ScatterPhases (Theorem 4.4): each phase is routed to the site whose
//     fragment its θ selects; the per-site results — all carrying the same
//     base rows — are recombined by equijoin on the base columns.
//   - ScatterFragments (Theorem 4.1 dual + Theorem 4.5): one phase over a
//     horizontally partitioned detail; every site aggregates its fragment
//     and the partial results are re-aggregated (count → sum, ...).
package distributed

import (
	"fmt"
	"strings"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Site is one data store holding a fragment of the detail relation. Run
// starts its serving loop; requests carry a base-values table and phases,
// responses carry the local MD-join result.
type Site struct {
	Name string
	Data *table.Table

	requests chan request
}

type request struct {
	base   *table.Table
	phases []core.Phase
	opt    core.Options
	reply  chan response
}

type response struct {
	result *table.Table
	err    error
}

// NewSite creates a site around a local fragment.
func NewSite(name string, data *table.Table) *Site {
	return &Site{Name: name, Data: data, requests: make(chan request)}
}

// run serves MD-join requests until the channel closes.
func (s *Site) run() {
	for req := range s.requests {
		res, err := core.Eval(req.base, s.Data, req.phases, req.opt)
		req.reply <- response{result: res, err: err}
	}
}

// Cluster is a set of running sites.
type Cluster struct {
	sites map[string]*Site
	order []string
}

// NewCluster starts the sites' serving goroutines.
func NewCluster(sites ...*Site) *Cluster {
	c := &Cluster{sites: make(map[string]*Site, len(sites))}
	for _, s := range sites {
		key := strings.ToLower(s.Name)
		if _, dup := c.sites[key]; dup {
			panic(fmt.Sprintf("distributed: duplicate site %q", s.Name))
		}
		c.sites[key] = s
		c.order = append(c.order, key)
		go s.run()
	}
	return c
}

// Close stops all site goroutines.
func (c *Cluster) Close() {
	for _, key := range c.order {
		close(c.sites[key].requests)
	}
}

// ask ships a request to a site and waits for its answer.
func (c *Cluster) ask(site string, base *table.Table, phases []core.Phase, opt core.Options) (*table.Table, error) {
	s, ok := c.sites[strings.ToLower(site)]
	if !ok {
		return nil, fmt.Errorf("distributed: unknown site %q", site)
	}
	reply := make(chan response, 1)
	s.requests <- request{base: base, phases: phases, opt: opt, reply: reply}
	resp := <-reply
	return resp.result, resp.err
}

// Routed pairs a phase with the site that owns its data.
type Routed struct {
	Site  string
	Phase core.Phase
}

// ScatterPhases implements the Theorem 4.4 plan: ship the base-values
// relation to each phase's site concurrently, evaluate the local MD-join,
// and equijoin the results on the base columns. The base relation must
// have distinct rows (the theorem's precondition, which SplitJoin checks).
func (c *Cluster) ScatterPhases(base *table.Table, routed []Routed, opt core.Options) (*table.Table, error) {
	if len(routed) == 0 {
		return nil, fmt.Errorf("distributed: no phases to scatter")
	}
	type answer struct {
		idx    int
		result *table.Table
		err    error
	}
	answers := make(chan answer, len(routed))
	for i, r := range routed {
		go func(i int, r Routed) {
			res, err := c.ask(r.Site, base, []core.Phase{r.Phase}, opt)
			answers <- answer{idx: i, result: res, err: err}
		}(i, r)
	}
	results := make([]*table.Table, len(routed))
	for range routed {
		a := <-answers
		if a.err != nil {
			return nil, a.err
		}
		results[a.idx] = a.result
	}
	// Fold by equijoin on the base columns (Theorem 4.4).
	out := results[0]
	for _, r := range results[1:] {
		var err error
		out, err = core.SplitJoin(out, r, base.Schema.Names())
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ScatterFragments implements the horizontal-partitioning plan: the same
// phase runs at every site over its fragment; the partial results are
// re-aggregated with the Theorem 4.5 mapping. Only distributive aggregates
// (and avg, via sum/count decomposition) are supported — the same
// restriction the paper notes for the roll-up property.
func (c *Cluster) ScatterFragments(base *table.Table, phase core.Phase, opt core.Options) (*table.Table, error) {
	work, finalize, err := decomposeSpecs(phase.Aggs)
	if err != nil {
		return nil, err
	}
	workPhase := core.Phase{Aggs: work, Theta: phase.Theta}

	type answer struct {
		result *table.Table
		err    error
	}
	answers := make(chan answer, len(c.order))
	for _, key := range c.order {
		go func(site string) {
			res, err := c.ask(site, base, []core.Phase{workPhase}, opt)
			answers <- answer{result: res, err: err}
		}(key)
	}
	var partials []*table.Table
	for range c.order {
		a := <-answers
		if a.err != nil {
			return nil, a.err
		}
		partials = append(partials, a.result)
	}

	// Union the partials and re-aggregate per base row.
	union, err := engine.Union(partials...)
	if err != nil {
		return nil, err
	}
	reagg := make([]agg.Spec, len(work))
	for i, s := range work {
		fn, err := agg.Lookup(s.Func)
		if err != nil {
			return nil, err
		}
		re, ok := fn.Reaggregate()
		if !ok {
			return nil, fmt.Errorf("distributed: aggregate %q is not distributive; it cannot be recombined across fragments", s.Func)
		}
		reagg[i] = agg.Spec{Func: re.Name(), Arg: expr.C(s.OutName()), As: s.OutName()}
	}
	merged, err := engine.GroupBy(union, base.Schema.Names(), reagg)
	if err != nil {
		return nil, err
	}
	if finalize != nil {
		return finalize(merged)
	}
	return merged, nil
}

// decomposeSpecs rewrites avg into hidden sum/count pairs (mirroring the
// cube planner's decomposition) so fragment results re-aggregate; it
// returns the working specs and an optional projection restoring the
// requested columns.
func decomposeSpecs(specs []agg.Spec) ([]agg.Spec, func(*table.Table) (*table.Table, error), error) {
	needs := false
	for _, s := range specs {
		if strings.EqualFold(s.Func, "avg") {
			needs = true
		}
	}
	if !needs {
		return specs, nil, nil
	}
	var work []agg.Spec
	type parts struct{ sum, cnt string }
	avg := map[string]parts{}
	for i, s := range specs {
		if strings.EqualFold(s.Func, "avg") {
			p := parts{
				sum: fmt.Sprintf("__davg%d_sum", i),
				cnt: fmt.Sprintf("__davg%d_cnt", i),
			}
			avg[s.OutName()] = p
			work = append(work,
				agg.Spec{Func: "sum", Arg: s.Arg, As: p.sum},
				agg.Spec{Func: "count", Arg: s.Arg, As: p.cnt})
			continue
		}
		work = append(work, s)
	}
	finalize := func(t *table.Table) (*table.Table, error) {
		var cols []engine.ProjCol
		for _, c := range t.Schema.Names() {
			if strings.HasPrefix(c, "__davg") {
				continue
			}
			cols = append(cols, engine.ProjCol{Expr: expr.C(c)})
		}
		for _, s := range specs {
			if p, ok := avg[s.OutName()]; ok {
				cols = append(cols, engine.ProjCol{
					Expr: expr.Div(expr.C(p.sum), expr.C(p.cnt)),
					As:   s.OutName(),
				})
			}
		}
		return engine.Project(t, cols, false)
	}
	return work, finalize, nil
}

// PartitionByColumn splits a detail relation into per-value fragments of
// the named column — the "Sales partitioned by state" setup of the
// paper's scenario. Fragment order follows first appearance.
func PartitionByColumn(t *table.Table, col string) ([]*Site, error) {
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("distributed: partition column %q not in schema %v", col, t.Schema.Names())
	}
	frags := map[string]*table.Table{}
	var order []string
	for _, r := range t.Rows {
		key := r[ci].String()
		f, ok := frags[key]
		if !ok {
			f = table.New(t.Schema)
			frags[key] = f
			order = append(order, key)
		}
		f.Append(r)
	}
	sites := make([]*Site, len(order))
	for i, key := range order {
		sites[i] = NewSite(key, frags[key])
	}
	return sites, nil
}
