// Package distributed emulates the distributed evaluation scenario of the
// paper's Section 4.3: "Suppose that the Sales table is a distributed
// relation, and data for New Jersey is stored in Trenton, data for New
// York in Albany... It is likely to be more efficient to move the
// base-value relation to the three data stores, perform local MD-joins,
// then equijoin the results."
//
// Each Site runs as its own goroutine with a request channel — the
// message-passing stand-in for a remote node (the substitution DESIGN.md
// documents for the paper's multi-store deployment). Two recombination
// strategies are provided, matching the two algebraic identities:
//
//   - ScatterPhases (Theorem 4.4): each phase is routed to the site whose
//     fragment its θ selects; the per-site results — all carrying the same
//     base rows — are recombined by equijoin on the base columns.
//   - ScatterFragments (Theorem 4.1 dual + Theorem 4.5): one phase over a
//     horizontally partitioned detail; every site aggregates its fragment
//     and the partial results are re-aggregated (count → sum, ...).
//
// Real multi-store deployments fail: sites stall, crash, or drop
// requests. The request path is therefore context-aware end to end (a
// deadline cancels the remote scan itself, not just the wait), and a
// cluster Policy adds per-attempt timeouts, retries with capped backoff,
// per-site circuit breaking, replica failover (RegisterReplicas), and —
// for ScatterFragments — partial-result degradation via PartialError.
// internal/faultinject provides the deterministic fault harness the tests
// drive these paths with.
package distributed

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// askRequest bundles the shipped payload of one site request.
type askRequest struct {
	base   *table.Table
	phases []core.Phase
	opt    core.Options
}

// Cluster is a set of running sites plus the fault-handling state that
// spans requests (policy, per-site breakers, replica map).
type Cluster struct {
	sites map[string]*Site
	order []string

	policy *Policy

	mu       sync.Mutex
	breakers map[string]*breaker

	// replicas maps a fragment name to the sites holding copies of that
	// fragment, in failover preference order; fragOrder preserves
	// registration order for deterministic scatter.
	replicas  map[string][]string
	fragOrder []string
}

// NewCluster starts the sites' serving goroutines. Duplicate site names
// (case-insensitive) are rejected — silently shadowing a site would route
// a fragment's requests to the wrong data.
func NewCluster(sites ...*Site) (*Cluster, error) {
	c := &Cluster{
		sites:    make(map[string]*Site, len(sites)),
		breakers: make(map[string]*breaker),
		replicas: make(map[string][]string),
	}
	for _, s := range sites {
		key := strings.ToLower(s.Name)
		if _, dup := c.sites[key]; dup {
			c.Close()
			return nil, fmt.Errorf("distributed: duplicate site %q", s.Name)
		}
		c.sites[key] = s
		c.order = append(c.order, key)
		go s.run()
	}
	return c, nil
}

// SetPolicy installs the fault-handling policy for subsequent queries.
// Call it before issuing queries; it is not synchronized against in-flight
// scatter calls.
func (c *Cluster) SetPolicy(p Policy) {
	c.policy = &p
	c.mu.Lock()
	c.breakers = make(map[string]*breaker)
	c.mu.Unlock()
}

// RegisterReplicas declares that the named fragment is replicated across
// the given sites, in failover preference order. Once any fragment is
// registered, ScatterFragments scatters over the registered fragments
// (asking one live replica each) instead of over every site. The caller
// is responsible for the replicas actually holding the same fragment
// data; recombination cannot tell replicas apart (Theorem 4.1).
func (c *Cluster) RegisterReplicas(fragment string, sites ...string) error {
	if len(sites) == 0 {
		return fmt.Errorf("distributed: fragment %q needs at least one site", fragment)
	}
	keys := make([]string, len(sites))
	for i, s := range sites {
		key := strings.ToLower(s)
		if _, ok := c.sites[key]; !ok {
			return fmt.Errorf("distributed: fragment %q replica %q is not a cluster site", fragment, s)
		}
		keys[i] = key
	}
	fkey := strings.ToLower(fragment)
	if _, dup := c.replicas[fkey]; dup {
		return fmt.Errorf("distributed: fragment %q already registered", fragment)
	}
	c.replicas[fkey] = keys
	c.fragOrder = append(c.fragOrder, fkey)
	return nil
}

// Close stops all site goroutines. Pending and future asks fail with
// ErrSiteClosed instead of blocking.
func (c *Cluster) Close() {
	for _, key := range c.order {
		c.sites[key].close()
	}
}

// candidates resolves a routing name to the failover-ordered site list:
// the registered replica set if the name is a fragment, else the site
// itself.
func (c *Cluster) candidates(name string) []string {
	if sites, ok := c.replicas[strings.ToLower(name)]; ok {
		return sites
	}
	return []string{strings.ToLower(name)}
}

// ask ships a request to a site and waits for its answer. The context
// bounds both the hand-off and the wait, and travels with the request so
// the site's detail scan is cancelled too; a closed site fails immediately
// with ErrSiteClosed rather than wedging the caller.
func (c *Cluster) ask(ctx context.Context, site string, req askRequest) (*table.Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s, ok := c.sites[strings.ToLower(site)]
	if !ok {
		return nil, fmt.Errorf("distributed: unknown site %q", site)
	}
	reply := make(chan response, 1)
	select {
	case s.requests <- request{ctx: ctx, base: req.base, phases: req.phases, opt: req.opt, reply: reply}:
	case <-s.done:
		return nil, &SiteError{Site: s.Name, Err: ErrSiteClosed}
	case <-ctx.Done():
		return nil, &SiteError{Site: s.Name, Err: ctx.Err()}
	}
	select {
	case resp := <-reply:
		if resp.err != nil {
			return nil, &SiteError{Site: s.Name, Err: resp.err}
		}
		return resp.result, nil
	case <-ctx.Done():
		return nil, &SiteError{Site: s.Name, Err: ctx.Err()}
	}
}

// Routed pairs a phase with the site (or registered fragment) that owns
// its data.
type Routed struct {
	Site  string
	Phase core.Phase
}

// ScatterPhases implements the Theorem 4.4 plan: ship the base-values
// relation to each phase's site concurrently, evaluate the local MD-join,
// and equijoin the results on the base columns. The base relation must
// have distinct rows (the theorem's precondition, which SplitJoin checks).
//
// Each routed request runs under the cluster policy (timeout, retries,
// circuit) and fails over across the fragment's replicas when Routed.Site
// names a registered fragment. The equijoin recombination needs every
// phase, so there is no partial degradation here: the first phase whose
// candidates are all exhausted fails the call, cancelling the siblings.
func (c *Cluster) ScatterPhases(ctx context.Context, base *table.Table, routed []Routed, opt core.Options) (*table.Table, error) {
	return c.ScatterPhasesReport(ctx, base, routed, opt, nil)
}

// ScatterPhasesReport is ScatterPhases with a query report: rep (when
// non-nil) collects the per-site fault-handling metrics and the merged
// execution stats of the scattered evaluations. Options.Stats, when set,
// never crosses a site boundary — each attempt evaluates into a private
// Stats (so concurrent sites cannot race on the caller's pointer) and the
// cluster-level merge lands in the caller's tree at the end.
func (c *Cluster) ScatterPhasesReport(ctx context.Context, base *table.Table, routed []Routed, opt core.Options, rep *Report) (*table.Table, error) {
	if len(routed) == 0 {
		return nil, fmt.Errorf("distributed: no phases to scatter")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	callerStats := opt.Stats
	opt.Stats = nil
	if rep == nil && callerStats != nil {
		rep = NewReport()
	}
	if rep != nil {
		start := time.Now()
		defer func() {
			rep.WallNanos += time.Since(start).Nanoseconds()
			if callerStats != nil {
				callerStats.Merge(&rep.Exec)
			}
		}()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type answer struct {
		idx    int
		result *table.Table
		err    error
	}
	answers := make(chan answer, len(routed))
	for i, r := range routed {
		go func(i int, r Routed) {
			res, err := c.askFailover(ctx, c.candidates(r.Site), askRequest{base: base, phases: []core.Phase{r.Phase}, opt: opt}, rep)
			answers <- answer{idx: i, result: res, err: err}
		}(i, r)
	}
	results := make([]*table.Table, len(routed))
	var firstErr error
	for range routed {
		a := <-answers
		if a.err != nil && firstErr == nil {
			firstErr = a.err
			cancel() // stop sibling work; their answers still drain below
		}
		results[a.idx] = a.result
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Fold by equijoin on the base columns (Theorem 4.4).
	out := results[0]
	for _, r := range results[1:] {
		var err error
		out, err = core.SplitJoin(out, r, base.Schema.Names())
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fragmentGroup is one scatter target of ScatterFragments: a fragment name
// and the failover-ordered sites holding it.
type fragmentGroup struct {
	name  string
	sites []string
}

// fragmentGroups lists the scatter targets: the registered replica sets
// when any exist, else every site as its own single-replica fragment.
func (c *Cluster) fragmentGroups() []fragmentGroup {
	if len(c.fragOrder) > 0 {
		out := make([]fragmentGroup, len(c.fragOrder))
		for i, f := range c.fragOrder {
			out[i] = fragmentGroup{name: f, sites: c.replicas[f]}
		}
		return out
	}
	out := make([]fragmentGroup, len(c.order))
	for i, key := range c.order {
		out[i] = fragmentGroup{name: key, sites: []string{key}}
	}
	return out
}

// ScatterFragments implements the horizontal-partitioning plan: the same
// phase runs at every fragment over its detail slice; the partial results
// are re-aggregated with the Theorem 4.5 mapping. Only distributive
// aggregates (and avg, via sum/count decomposition) are supported — the
// same restriction the paper notes for the roll-up property.
//
// Each fragment's request runs under the cluster policy and fails over
// across the fragment's replicas. When every replica of a fragment is
// down, the call fails — unless Policy.AllowPartial is set, in which case
// it returns the surviving fragments' recombination together with a
// *PartialError naming the dead fragments (check with errors.As). The
// partial result still has one row per base row; its aggregates simply
// miss the dead fragments' tuples.
func (c *Cluster) ScatterFragments(ctx context.Context, base *table.Table, phase core.Phase, opt core.Options) (*table.Table, error) {
	return c.ScatterFragmentsReport(ctx, base, phase, opt, nil)
}

// ScatterFragmentsReport is ScatterFragments with a query report; see
// ScatterPhasesReport for the collection and Options.Stats contract. On a
// degraded result the report carries Partial and DeadFragments alongside
// the returned *PartialError.
func (c *Cluster) ScatterFragmentsReport(ctx context.Context, base *table.Table, phase core.Phase, opt core.Options, rep *Report) (*table.Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	callerStats := opt.Stats
	opt.Stats = nil
	if rep == nil && callerStats != nil {
		rep = NewReport()
	}
	if rep != nil {
		start := time.Now()
		defer func() {
			rep.WallNanos += time.Since(start).Nanoseconds()
			if callerStats != nil {
				callerStats.Merge(&rep.Exec)
			}
		}()
	}
	work, finalize, err := decomposeSpecs(phase.Aggs)
	if err != nil {
		return nil, err
	}
	workPhase := core.Phase{Aggs: work, Theta: phase.Theta}
	groups := c.fragmentGroups()

	type answer struct {
		idx    int
		result *table.Table
		err    error
	}
	answers := make(chan answer, len(groups))
	for i, g := range groups {
		go func(i int, g fragmentGroup) {
			res, err := c.askFailover(ctx, g.sites, askRequest{base: base, phases: []core.Phase{workPhase}, opt: opt}, rep)
			answers <- answer{idx: i, result: res, err: err}
		}(i, g)
	}
	// Collect into fragment order (not completion order) so the union —
	// and therefore the recombined result — is deterministic.
	slots := make([]*table.Table, len(groups))
	failed := map[string]error{}
	for range groups {
		a := <-answers
		if a.err != nil {
			failed[groups[a.idx].name] = a.err
			continue
		}
		slots[a.idx] = a.result
	}
	var partials []*table.Table
	for _, s := range slots {
		if s != nil {
			partials = append(partials, s)
		}
	}
	allowPartial := c.policy != nil && c.policy.AllowPartial
	if len(failed) > 0 && (!allowPartial || len(partials) == 0) {
		perr := &PartialError{Failed: failed}
		frag := perr.Fragments()[0]
		return nil, fmt.Errorf("distributed: fragment %q unavailable: %w", frag, failed[frag])
	}

	// Union the partials and re-aggregate per base row.
	union, err := engine.Union(partials...)
	if err != nil {
		return nil, err
	}
	reagg := make([]agg.Spec, len(work))
	for i, s := range work {
		fn, err := agg.Lookup(s.Func)
		if err != nil {
			return nil, err
		}
		re, ok := fn.Reaggregate()
		if !ok {
			return nil, fmt.Errorf("distributed: aggregate %q is not distributive; it cannot be recombined across fragments", s.Func)
		}
		reagg[i] = agg.Spec{Func: re.Name(), Arg: expr.C(s.OutName()), As: s.OutName()}
	}
	merged, err := engine.GroupBy(union, base.Schema.Names(), reagg)
	if err != nil {
		return nil, err
	}
	if finalize != nil {
		merged, err = finalize(merged)
		if err != nil {
			return nil, err
		}
	}
	if len(failed) > 0 {
		perr := &PartialError{Failed: failed}
		rep.recordPartial(perr.Fragments())
		return merged, perr
	}
	return merged, nil
}

// decomposeSpecs rewrites avg into hidden sum/count pairs (mirroring the
// cube planner's decomposition) so fragment results re-aggregate; it
// returns the working specs and an optional projection restoring the
// requested columns.
func decomposeSpecs(specs []agg.Spec) ([]agg.Spec, func(*table.Table) (*table.Table, error), error) {
	needs := false
	for _, s := range specs {
		if strings.EqualFold(s.Func, "avg") {
			needs = true
		}
	}
	if !needs {
		return specs, nil, nil
	}
	var work []agg.Spec
	type parts struct{ sum, cnt string }
	avg := map[string]parts{}
	for i, s := range specs {
		if strings.EqualFold(s.Func, "avg") {
			p := parts{
				sum: fmt.Sprintf("__davg%d_sum", i),
				cnt: fmt.Sprintf("__davg%d_cnt", i),
			}
			avg[s.OutName()] = p
			work = append(work,
				agg.Spec{Func: "sum", Arg: s.Arg, As: p.sum},
				agg.Spec{Func: "count", Arg: s.Arg, As: p.cnt})
			continue
		}
		work = append(work, s)
	}
	finalize := func(t *table.Table) (*table.Table, error) {
		var cols []engine.ProjCol
		for _, c := range t.Schema.Names() {
			if strings.HasPrefix(c, "__davg") {
				continue
			}
			cols = append(cols, engine.ProjCol{Expr: expr.C(c)})
		}
		for _, s := range specs {
			if p, ok := avg[s.OutName()]; ok {
				cols = append(cols, engine.ProjCol{
					Expr: expr.Div(expr.C(p.sum), expr.C(p.cnt)),
					As:   s.OutName(),
				})
			}
		}
		return engine.Project(t, cols, false)
	}
	return work, finalize, nil
}

// PartitionByColumn splits a detail relation into per-value fragments of
// the named column — the "Sales partitioned by state" setup of the
// paper's scenario. Fragment order follows first appearance.
func PartitionByColumn(t *table.Table, col string) ([]*Site, error) {
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("distributed: partition column %q not in schema %v", col, t.Schema.Names())
	}
	// Fragments are Builder-built: each site scans its fragment as the
	// detail relation, so shipping it with the columnar mirror attached
	// puts site-local evaluation on the zero-transpose chunk path.
	frags := map[string]*table.Builder{}
	var order []string
	for _, r := range t.Rows {
		key := r[ci].String()
		f, ok := frags[key]
		if !ok {
			f = table.NewBuilder(t.Schema)
			frags[key] = f
			order = append(order, key)
		}
		f.Append(r)
	}
	sites := make([]*Site, len(order))
	for i, key := range order {
		sites[i] = NewSite(key, frags[key].Table())
	}
	return sites, nil
}
