package distributed

import (
	"context"
	"strings"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/cube"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

func setupSales(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	sales := workload.Sales(workload.SalesConfig{Rows: 2000, Customers: 20, States: 4, Seed: 31})
	base, err := cube.DistinctBase(sales, "cust")
	if err != nil {
		t.Fatal(err)
	}
	return sales, base
}

func TestScatterPhasesMatchesSequential(t *testing.T) {
	// The paper's scenario: per-state averages evaluated at the state's
	// own site must equal the centralized series.
	sales, base := setupSales(t)
	sites, err := PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	cluster := mustCluster(t, sites...)
	defer cluster.Close()

	states := []string{}
	for _, s := range sites {
		states = append(states, s.Name)
	}

	var routed []Routed
	var steps []core.Step
	for _, st := range states {
		phase := core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_"+strings.ToLower(st))},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
				expr.Eq(expr.QC("R", "state"), expr.S(st))),
		}
		routed = append(routed, Routed{Site: st, Phase: phase})
		steps = append(steps, core.Step{Detail: "Sales", Phase: phase})
	}

	got, err := cluster.ScatterPhases(context.Background(), base, routed, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EvalSeries(base, map[string]*table.Table{"Sales": sales}, steps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := want.Diff(got); d != "" {
		t.Fatalf("distributed Theorem 4.4 evaluation differs: %s", d)
	}
}

func TestScatterFragmentsMatchesCentralized(t *testing.T) {
	sales, base := setupSales(t)
	sites, err := PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	cluster := mustCluster(t, sites...)
	defer cluster.Close()

	phase := core.Phase{
		Aggs: []agg.Spec{
			agg.NewSpec("sum", expr.QC("R", "sale"), "total"),
			agg.NewSpec("count", nil, "n"),
			agg.NewSpec("min", expr.QC("R", "sale"), "lo"),
			agg.NewSpec("max", expr.QC("R", "sale"), "hi"),
		},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
	got, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Eval(base, sales, []core.Phase{phase}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Column order may differ after the re-aggregation group-by; compare
	// projected to the same order.
	if got.Len() != want.Len() {
		t.Fatalf("row counts differ: %d vs %d", got.Len(), want.Len())
	}
	gotS := got.Clone().SortBy("cust")
	wantS := want.Clone().SortBy("cust")
	for i := range wantS.Rows {
		for _, col := range []string{"cust", "total", "n", "lo", "hi"} {
			a := wantS.Value(i, col)
			g := gotS.Value(i, col)
			if !a.Equal(g) && !(a.IsNumeric() && g.IsNumeric() && abs(a.AsFloat()-g.AsFloat()) < 1e-6) {
				t.Fatalf("row %d col %s: %v vs %v", i, col, a, g)
			}
		}
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestScatterFragmentsAvgDecomposition(t *testing.T) {
	sales, base := setupSales(t)
	sites, err := PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	cluster := mustCluster(t, sites...)
	defer cluster.Close()

	phase := core.Phase{
		Aggs:  []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "mean")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
	got, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Eval(base, sales, []core.Phase{phase}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotS := got.Clone().SortBy("cust")
	wantS := want.Clone().SortBy("cust")
	for i := range wantS.Rows {
		a, g := wantS.Value(i, "mean"), gotS.Value(i, "mean")
		if a.IsNull() != g.IsNull() {
			t.Fatalf("row %d: %v vs %v", i, a, g)
		}
		if !a.IsNull() && abs(a.AsFloat()-g.AsFloat()) > 1e-6 {
			t.Fatalf("row %d: %v vs %v", i, a, g)
		}
	}
}

func TestScatterFragmentsRejectsHolistic(t *testing.T) {
	sales, base := setupSales(t)
	sites, _ := PartitionByColumn(sales, "state")
	cluster := mustCluster(t, sites...)
	defer cluster.Close()

	phase := core.Phase{
		Aggs:  []agg.Spec{agg.NewSpec("median", expr.QC("R", "sale"), "mid")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
	if _, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{}); err == nil {
		t.Fatal("holistic aggregates must be rejected for fragment recombination")
	}
}

func TestUnknownSite(t *testing.T) {
	sales, base := setupSales(t)
	sites, _ := PartitionByColumn(sales, "state")
	cluster := mustCluster(t, sites...)
	defer cluster.Close()
	_, err := cluster.ScatterPhases(context.Background(), base, []Routed{{Site: "Atlantis", Phase: core.Phase{
		Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}}}, core.Options{})
	if err == nil {
		t.Fatal("unknown site must error")
	}
}

func TestPartitionByColumn(t *testing.T) {
	sales, _ := setupSales(t)
	sites, err := PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sites {
		total += s.Data.Len()
		// Every fragment row carries the site's state.
		ci := s.Data.Schema.MustColIndex("state")
		for _, r := range s.Data.Rows {
			if r[ci].AsString() != s.Name {
				t.Fatalf("fragment %s contains row of state %v", s.Name, r[ci])
			}
		}
	}
	if total != sales.Len() {
		t.Errorf("fragments cover %d rows, want %d", total, sales.Len())
	}
	if _, err := PartitionByColumn(sales, "nope"); err == nil {
		t.Error("bad column should error")
	}
}

// mustCluster builds a running cluster or fails the test.
func mustCluster(t *testing.T, sites ...*Site) *Cluster {
	t.Helper()
	c, err := NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterRejectsDuplicateNames(t *testing.T) {
	sales, _ := setupSales(t)
	a := NewSite("NY", sales)
	b := NewSite("ny", sales) // duplicate modulo case
	if _, err := NewCluster(a, b); err == nil || !strings.Contains(err.Error(), "duplicate site") {
		t.Fatalf("duplicate site names must be rejected with a clear error, got %v", err)
	}
}

func TestDecomposeSpecsAvgMixedWithSumCount(t *testing.T) {
	specs := []agg.Spec{
		agg.NewSpec("sum", expr.QC("R", "sale"), "total"),
		agg.NewSpec("avg", expr.QC("R", "sale"), "mean"),
		agg.NewSpec("count", nil, "n"),
	}
	work, finalize, err := decomposeSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if finalize == nil {
		t.Fatal("avg decomposition must produce a finalize projection")
	}
	// sum + (avg → hidden sum/count) + count.
	if len(work) != 4 {
		t.Fatalf("want 4 working specs, got %d: %v", len(work), work)
	}
	names := []string{}
	for _, s := range work {
		names = append(names, s.OutName())
	}
	want := []string{"total", "__davg1_sum", "__davg1_cnt", "n"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("working spec %d: got %q, want %q (all: %v)", i, names[i], n, names)
		}
	}
}

func TestDecomposeSpecsMultipleAvgs(t *testing.T) {
	specs := []agg.Spec{
		agg.NewSpec("avg", expr.QC("R", "sale"), "mean_sale"),
		agg.NewSpec("avg", expr.QC("R", "qty"), "mean_qty"),
	}
	work, finalize, err := decomposeSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if finalize == nil || len(work) != 4 {
		t.Fatalf("two avgs must decompose into 4 working specs, got %d", len(work))
	}
	seen := map[string]bool{}
	for _, s := range work {
		if seen[s.OutName()] {
			t.Fatalf("hidden column name %q collides", s.OutName())
		}
		seen[s.OutName()] = true
	}
}

func TestDecomposeSpecsNoAvgPassthrough(t *testing.T) {
	specs := []agg.Spec{agg.NewSpec("sum", expr.QC("R", "sale"), "total")}
	work, finalize, err := decomposeSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if finalize != nil {
		t.Fatal("no avg: no finalize projection expected")
	}
	if len(work) != 1 || work[0].OutName() != "total" {
		t.Fatalf("specs must pass through untouched, got %v", work)
	}
}

func TestScatterFragmentsAvgOverEmptyRange(t *testing.T) {
	// A base row matching no detail tuples exercises the NULL-sum /
	// zero-count division path of the avg finalizer: the distributed mean
	// must be NULL exactly where the centralized mean is NULL.
	sales, base := setupSales(t)
	ghost := base.Clone()
	ghost.Append(table.Row{table.Int(999999)}) // customer with no sales
	sites, err := PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	cluster := mustCluster(t, sites...)
	defer cluster.Close()

	phase := core.Phase{
		Aggs:  []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "mean")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
	got, err := cluster.ScatterFragments(context.Background(), ghost, phase, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Eval(ghost, sales, []core.Phase{phase}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotS := got.Clone().SortBy("cust")
	wantS := want.Clone().SortBy("cust")
	if gotS.Len() != wantS.Len() {
		t.Fatalf("row counts differ: %d vs %d", gotS.Len(), wantS.Len())
	}
	sawNull := false
	for i := range wantS.Rows {
		a, g := wantS.Value(i, "mean"), gotS.Value(i, "mean")
		if a.IsNull() != g.IsNull() {
			t.Fatalf("row %d NULL-ness differs: want %v, got %v", i, a, g)
		}
		if a.IsNull() {
			sawNull = true
			continue
		}
		if abs(a.AsFloat()-g.AsFloat()) > 1e-6 {
			t.Fatalf("row %d: want %v, got %v", i, a, g)
		}
	}
	if !sawNull {
		t.Fatal("test fixture must include an empty-range base row")
	}
}

func TestScatterFragmentsHolisticRejectionMessage(t *testing.T) {
	sales, base := setupSales(t)
	sites, _ := PartitionByColumn(sales, "state")
	cluster := mustCluster(t, sites...)
	defer cluster.Close()

	phase := core.Phase{
		Aggs:  []agg.Spec{agg.NewSpec("median", expr.QC("R", "sale"), "mid")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
	_, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{})
	if err == nil {
		t.Fatal("holistic aggregates must be rejected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "median") || !strings.Contains(msg, "not distributive") {
		t.Fatalf("rejection message must name the aggregate and the reason, got: %s", msg)
	}
}
