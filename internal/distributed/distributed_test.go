package distributed

import (
	"strings"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/cube"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

func setupSales(t *testing.T) (*table.Table, *table.Table) {
	t.Helper()
	sales := workload.Sales(workload.SalesConfig{Rows: 2000, Customers: 20, States: 4, Seed: 31})
	base, err := cube.DistinctBase(sales, "cust")
	if err != nil {
		t.Fatal(err)
	}
	return sales, base
}

func TestScatterPhasesMatchesSequential(t *testing.T) {
	// The paper's scenario: per-state averages evaluated at the state's
	// own site must equal the centralized series.
	sales, base := setupSales(t)
	sites, err := PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(sites...)
	defer cluster.Close()

	states := []string{}
	for _, s := range sites {
		states = append(states, s.Name)
	}

	var routed []Routed
	var steps []core.Step
	for _, st := range states {
		phase := core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_"+strings.ToLower(st))},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
				expr.Eq(expr.QC("R", "state"), expr.S(st))),
		}
		routed = append(routed, Routed{Site: st, Phase: phase})
		steps = append(steps, core.Step{Detail: "Sales", Phase: phase})
	}

	got, err := cluster.ScatterPhases(base, routed, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EvalSeries(base, map[string]*table.Table{"Sales": sales}, steps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := want.Diff(got); d != "" {
		t.Fatalf("distributed Theorem 4.4 evaluation differs: %s", d)
	}
}

func TestScatterFragmentsMatchesCentralized(t *testing.T) {
	sales, base := setupSales(t)
	sites, err := PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(sites...)
	defer cluster.Close()

	phase := core.Phase{
		Aggs: []agg.Spec{
			agg.NewSpec("sum", expr.QC("R", "sale"), "total"),
			agg.NewSpec("count", nil, "n"),
			agg.NewSpec("min", expr.QC("R", "sale"), "lo"),
			agg.NewSpec("max", expr.QC("R", "sale"), "hi"),
		},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
	got, err := cluster.ScatterFragments(base, phase, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Eval(base, sales, []core.Phase{phase}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Column order may differ after the re-aggregation group-by; compare
	// projected to the same order.
	if got.Len() != want.Len() {
		t.Fatalf("row counts differ: %d vs %d", got.Len(), want.Len())
	}
	gotS := got.Clone().SortBy("cust")
	wantS := want.Clone().SortBy("cust")
	for i := range wantS.Rows {
		for _, col := range []string{"cust", "total", "n", "lo", "hi"} {
			a := wantS.Value(i, col)
			g := gotS.Value(i, col)
			if !a.Equal(g) && !(a.IsNumeric() && g.IsNumeric() && abs(a.AsFloat()-g.AsFloat()) < 1e-6) {
				t.Fatalf("row %d col %s: %v vs %v", i, col, a, g)
			}
		}
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestScatterFragmentsAvgDecomposition(t *testing.T) {
	sales, base := setupSales(t)
	sites, err := PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(sites...)
	defer cluster.Close()

	phase := core.Phase{
		Aggs:  []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "mean")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
	got, err := cluster.ScatterFragments(base, phase, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Eval(base, sales, []core.Phase{phase}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotS := got.Clone().SortBy("cust")
	wantS := want.Clone().SortBy("cust")
	for i := range wantS.Rows {
		a, g := wantS.Value(i, "mean"), gotS.Value(i, "mean")
		if a.IsNull() != g.IsNull() {
			t.Fatalf("row %d: %v vs %v", i, a, g)
		}
		if !a.IsNull() && abs(a.AsFloat()-g.AsFloat()) > 1e-6 {
			t.Fatalf("row %d: %v vs %v", i, a, g)
		}
	}
}

func TestScatterFragmentsRejectsHolistic(t *testing.T) {
	sales, base := setupSales(t)
	sites, _ := PartitionByColumn(sales, "state")
	cluster := NewCluster(sites...)
	defer cluster.Close()

	phase := core.Phase{
		Aggs:  []agg.Spec{agg.NewSpec("median", expr.QC("R", "sale"), "mid")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
	if _, err := cluster.ScatterFragments(base, phase, core.Options{}); err == nil {
		t.Fatal("holistic aggregates must be rejected for fragment recombination")
	}
}

func TestUnknownSite(t *testing.T) {
	sales, base := setupSales(t)
	sites, _ := PartitionByColumn(sales, "state")
	cluster := NewCluster(sites...)
	defer cluster.Close()
	_, err := cluster.ScatterPhases(base, []Routed{{Site: "Atlantis", Phase: core.Phase{
		Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}}}, core.Options{})
	if err == nil {
		t.Fatal("unknown site must error")
	}
}

func TestPartitionByColumn(t *testing.T) {
	sales, _ := setupSales(t)
	sites, err := PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sites {
		total += s.Data.Len()
		// Every fragment row carries the site's state.
		ci := s.Data.Schema.MustColIndex("state")
		for _, r := range s.Data.Rows {
			if r[ci].AsString() != s.Name {
				t.Fatalf("fragment %s contains row of state %v", s.Name, r[ci])
			}
		}
	}
	if total != sales.Len() {
		t.Errorf("fragments cover %d rows, want %d", total, sales.Len())
	}
	if _, err := PartitionByColumn(sales, "nope"); err == nil {
		t.Error("bad column should error")
	}
}
