// Fault-path tests: every Policy mechanism is driven by the deterministic
// internal/faultinject harness — timeout cancels a stalled site, retry
// rides out a transient error, failover moves to a replica (with the
// Theorem 4.1 equivalence asserted against the all-healthy run), the
// circuit opens after the configured threshold, a panicking site surfaces
// as an error, and AllowPartial degrades to a PartialError. These live in
// an external test package because faultinject imports distributed.
package distributed_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/cube"
	"mdjoin/internal/distributed"
	"mdjoin/internal/expr"
	"mdjoin/internal/faultinject"
	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

func faultSetup(t testing.TB) (sales, base *table.Table, sites []*distributed.Site) {
	t.Helper()
	sales = workload.Sales(workload.SalesConfig{Rows: 2000, Customers: 20, States: 4, Seed: 31})
	base, err := cube.DistinctBase(sales, "cust")
	if err != nil {
		t.Fatal(err)
	}
	sites, err = distributed.PartitionByColumn(sales, "state")
	if err != nil {
		t.Fatal(err)
	}
	return sales, base, sites
}

func sumCountPhase() core.Phase {
	return core.Phase{
		Aggs: []agg.Spec{
			agg.NewSpec("sum", expr.QC("R", "sale"), "total"),
			agg.NewSpec("count", nil, "n"),
		},
		Theta: expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
	}
}

// assertSameAgg compares two aggregate tables row-by-row after sorting by
// cust, with a float tolerance on numeric columns.
func assertSameAgg(t *testing.T, want, got *table.Table, cols ...string) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("row counts differ: want %d, got %d", want.Len(), got.Len())
	}
	w := want.Clone().SortBy("cust")
	g := got.Clone().SortBy("cust")
	for i := range w.Rows {
		for _, col := range cols {
			a, b := w.Value(i, col), g.Value(i, col)
			if a.IsNull() != b.IsNull() {
				t.Fatalf("row %d col %s: want %v, got %v", i, col, a, b)
			}
			if a.IsNull() {
				continue
			}
			if a.IsNumeric() && b.IsNumeric() {
				d := a.AsFloat() - b.AsFloat()
				if d < -1e-6 || d > 1e-6 {
					t.Fatalf("row %d col %s: want %v, got %v", i, col, a, b)
				}
				continue
			}
			if !a.Equal(b) {
				t.Fatalf("row %d col %s: want %v, got %v", i, col, a, b)
			}
		}
	}
}

func TestSiteTimeoutCancelsStalledSite(t *testing.T) {
	_, base, sites := faultSetup(t)
	faultinject.Wrap(sites[0], faultinject.Plan{Stall: true})
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPolicy(distributed.Policy{SiteTimeout: 30 * time.Millisecond})

	start := time.Now()
	_, err = cluster.ScatterFragments(context.Background(), base, sumCountPhase(), core.Options{})
	if err == nil {
		t.Fatal("a stalled site without replicas must fail the query")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in the chain, got %v", err)
	}
	var se *distributed.SiteError
	if !errors.As(err, &se) || !strings.EqualFold(se.Site, sites[0].Name) {
		t.Fatalf("error must attribute the stalled site, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout did not bound the wait: %v", elapsed)
	}
}

func TestWholeQueryDeadlineCancels(t *testing.T) {
	// No per-site policy at all: the caller's context alone must unwedge
	// the scatter (the pre-fault-layer code would block forever here).
	_, base, sites := faultSetup(t)
	for _, s := range sites {
		faultinject.Wrap(s, faultinject.Plan{Stall: true})
	}
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := cluster.ScatterFragments(ctx, base, sumCountPhase(), core.Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestRetryRecoversTransientError(t *testing.T) {
	sales, base, sites := faultSetup(t)
	inj := faultinject.Wrap(sites[0], faultinject.Plan{FailFirst: 1})
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPolicy(distributed.Policy{MaxRetries: 2, BackoffBase: time.Millisecond, Jitter: 0.2})

	phase := sumCountPhase()
	got, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{})
	if err != nil {
		t.Fatalf("retry must recover a single transient failure: %v", err)
	}
	if inj.Requests() != 2 {
		t.Fatalf("want success on attempt 2, site saw %d requests", inj.Requests())
	}
	want, err := core.Eval(base, sales, []core.Phase{phase}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAgg(t, want, got, "cust", "total", "n")
}

func TestDropNthRecoveredByTimeoutAndRetry(t *testing.T) {
	sales, base, sites := faultSetup(t)
	inj := faultinject.Wrap(sites[1], faultinject.Plan{DropNth: 1})
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPolicy(distributed.Policy{SiteTimeout: 30 * time.Millisecond, MaxRetries: 1})

	phase := sumCountPhase()
	got, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{})
	if err != nil {
		t.Fatalf("a single dropped response must be absorbed by timeout+retry: %v", err)
	}
	if inj.Requests() != 2 {
		t.Fatalf("want 2 requests (drop, then success), got %d", inj.Requests())
	}
	want, err := core.Eval(base, sales, []core.Phase{phase}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAgg(t, want, got, "cust", "total", "n")
}

// replicatedCluster builds one primary + one replica site per state
// fragment, registers the replica sets, and returns the primaries for
// fault wrapping.
func replicatedCluster(t testing.TB, sites []*distributed.Site) (*distributed.Cluster, []*distributed.Site, []*distributed.Site) {
	t.Helper()
	var all, primaries, replicas []*distributed.Site
	for _, s := range sites {
		p := distributed.NewSite(s.Name+"-a", s.Data)
		r := distributed.NewSite(s.Name+"-b", s.Data)
		primaries = append(primaries, p)
		replicas = append(replicas, r)
		all = append(all, p, r)
	}
	cluster, err := distributed.NewCluster(all...)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sites {
		if err := cluster.RegisterReplicas(s.Name, primaries[i].Name, replicas[i].Name); err != nil {
			t.Fatal(err)
		}
	}
	return cluster, primaries, replicas
}

func TestFailoverToReplicaMatchesHealthyRun(t *testing.T) {
	// Theorem 4.1: fragment partials recombine by re-aggregation no matter
	// which replica computed them — the failed-over result must be
	// identical to the all-healthy run.
	_, base, sites := faultSetup(t)

	healthyCluster, _, _ := replicatedCluster(t, sites)
	defer healthyCluster.Close()
	phase := sumCountPhase()
	healthy, err := healthyCluster.ScatterFragments(context.Background(), base, phase, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	cluster, primaries, _ := replicatedCluster(t, sites)
	defer cluster.Close()
	// Kill one primary outright (always errors) and make another flaky.
	faultinject.Wrap(primaries[0], faultinject.Plan{FailFirst: 1 << 30})
	faultinject.Wrap(primaries[1], faultinject.Plan{PanicFirst: 1 << 30})
	cluster.SetPolicy(distributed.Policy{MaxRetries: 0})

	got, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{})
	if err != nil {
		t.Fatalf("failover must mask dead primaries: %v", err)
	}
	if d := healthy.Diff(got); d != "" {
		t.Fatalf("failed-over result differs from all-healthy run: %s", d)
	}
}

func TestScatterPhasesFailoverAcrossReplicas(t *testing.T) {
	sales, base, sites := faultSetup(t)
	cluster, primaries, _ := replicatedCluster(t, sites)
	defer cluster.Close()
	faultinject.Wrap(primaries[0], faultinject.Plan{Stall: true})
	cluster.SetPolicy(distributed.Policy{SiteTimeout: 30 * time.Millisecond})

	var routed []distributed.Routed
	var steps []core.Step
	for _, s := range sites {
		phase := core.Phase{
			Aggs: []agg.Spec{agg.NewSpec("avg", expr.QC("R", "sale"), "avg_"+strings.ToLower(s.Name))},
			Theta: expr.And(
				expr.Eq(expr.QC("R", "cust"), expr.C("cust")),
				expr.Eq(expr.QC("R", "state"), expr.S(s.Name))),
		}
		// Route to the fragment name; the cluster resolves replicas.
		routed = append(routed, distributed.Routed{Site: s.Name, Phase: phase})
		steps = append(steps, core.Step{Detail: "Sales", Phase: phase})
	}
	got, err := cluster.ScatterPhases(context.Background(), base, routed, core.Options{})
	if err != nil {
		t.Fatalf("phase routing must fail over to the replica: %v", err)
	}
	want, err := core.EvalSeries(base, map[string]*table.Table{"Sales": sales}, steps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := want.Diff(got); d != "" {
		t.Fatalf("failed-over ScatterPhases differs from centralized series: %s", d)
	}
}

func TestCircuitOpensAfterThreshold(t *testing.T) {
	_, base, sites := faultSetup(t)
	inj := faultinject.Wrap(sites[0], faultinject.Plan{FailFirst: 1 << 30})
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPolicy(distributed.Policy{MaxRetries: 5, FailureThreshold: 2})

	_, err = cluster.ScatterFragments(context.Background(), base, sumCountPhase(), core.Options{})
	if !errors.Is(err, distributed.ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen once the threshold trips, got %v", err)
	}
	if inj.Requests() != 2 {
		t.Fatalf("circuit must stop attempts at the threshold: site saw %d requests, want 2", inj.Requests())
	}

	// Open circuit fails fast without touching the site again.
	_, err = cluster.ScatterFragments(context.Background(), base, sumCountPhase(), core.Options{})
	if !errors.Is(err, distributed.ErrCircuitOpen) {
		t.Fatalf("open circuit must fail fast, got %v", err)
	}
	if inj.Requests() != 2 {
		t.Fatalf("open circuit must not admit requests: site saw %d, want 2", inj.Requests())
	}
}

func TestCircuitHalfOpenProbeRecovers(t *testing.T) {
	sales, base, sites := faultSetup(t)
	inj := faultinject.Wrap(sites[0], faultinject.Plan{FailFirst: 1})
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPolicy(distributed.Policy{FailureThreshold: 1, Cooldown: 20 * time.Millisecond})

	phase := sumCountPhase()
	if _, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{}); err == nil {
		t.Fatal("first call must fail and open the circuit")
	}
	if _, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{}); !errors.Is(err, distributed.ErrCircuitOpen) {
		t.Fatalf("within the cooldown the circuit must reject, got %v", err)
	}
	if inj.Requests() != 1 {
		t.Fatalf("rejected call must not reach the site: saw %d requests", inj.Requests())
	}
	time.Sleep(30 * time.Millisecond)
	got, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{})
	if err != nil {
		t.Fatalf("half-open probe against a recovered site must close the circuit: %v", err)
	}
	want, err := core.Eval(base, sales, []core.Phase{phase}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAgg(t, want, got, "cust", "total", "n")
}

func TestPanickingSiteSurfacesAsError(t *testing.T) {
	_, base, sites := faultSetup(t)
	faultinject.Wrap(sites[2], faultinject.Plan{PanicFirst: 1})
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	_, err = cluster.ScatterFragments(context.Background(), base, sumCountPhase(), core.Options{})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("a panicking site must surface as an error, got %v", err)
	}
	// The site's serve loop survived the panic: the next query succeeds.
	if _, err := cluster.ScatterFragments(context.Background(), base, sumCountPhase(), core.Options{}); err != nil {
		t.Fatalf("serve loop must survive a recovered panic: %v", err)
	}
}

func TestPartialDegradationReportsDeadFragments(t *testing.T) {
	sales, base, sites := faultSetup(t)
	deadState := sites[0].Name
	faultinject.Wrap(sites[0], faultinject.Plan{FailFirst: 1 << 30})
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPolicy(distributed.Policy{AllowPartial: true})

	phase := sumCountPhase()
	got, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{})
	var pe *distributed.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if frags := pe.Fragments(); len(frags) != 1 || !strings.EqualFold(frags[0], deadState) {
		t.Fatalf("PartialError must name the dead fragment %q, got %v", deadState, frags)
	}
	if got == nil {
		t.Fatal("AllowPartial must still return the surviving recombination")
	}
	if got.Len() != base.Len() {
		t.Fatalf("partial result must keep one row per base row: %d vs %d", got.Len(), base.Len())
	}
	// The partial equals a centralized run over the surviving fragments.
	si := sales.Schema.MustColIndex("state")
	surviving := table.New(sales.Schema)
	for _, r := range sales.Rows {
		if r[si].AsString() != deadState {
			surviving.Append(r)
		}
	}
	want, err := core.Eval(base, surviving, []core.Phase{phase}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAgg(t, want, got, "cust", "total", "n")
}

func TestAllFragmentsDeadFailsEvenWithAllowPartial(t *testing.T) {
	_, base, sites := faultSetup(t)
	for _, s := range sites {
		faultinject.Wrap(s, faultinject.Plan{FailFirst: 1 << 30})
	}
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetPolicy(distributed.Policy{AllowPartial: true})

	res, err := cluster.ScatterFragments(context.Background(), base, sumCountPhase(), core.Options{})
	if err == nil || res != nil {
		t.Fatalf("with every fragment dead there is nothing to return: res=%v err=%v", res, err)
	}
	var pe *distributed.PartialError
	if errors.As(err, &pe) {
		t.Fatalf("total failure is a hard error, not a partial result: %v", err)
	}
}

func TestAskAfterCloseFailsFast(t *testing.T) {
	_, base, sites := faultSetup(t)
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Close()

	done := make(chan error, 1)
	go func() {
		_, err := cluster.ScatterFragments(context.Background(), base, sumCountPhase(), core.Options{})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, distributed.ErrSiteClosed) {
			t.Fatalf("want ErrSiteClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ask against a closed cluster must not block")
	}
}
