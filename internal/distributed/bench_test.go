package distributed_test

import (
	"context"
	"testing"
	"time"

	"mdjoin/internal/core"
	"mdjoin/internal/distributed"
)

// The bench guard for the fault layer: on an all-healthy cluster the
// policy machinery (breaker lookups, per-attempt context, retry loop
// bookkeeping) must be lost in the noise next to the MD-join work — the
// ISSUE budget is <5% over the bare path. Run both and compare:
//
//	go test ./internal/distributed -bench ScatterFragments -benchtime 5x
func benchScatter(b *testing.B, withPolicy bool) {
	sales, base, sites := faultSetup(b)
	_ = sales
	cluster, err := distributed.NewCluster(sites...)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	if withPolicy {
		cluster.SetPolicy(distributed.Policy{
			SiteTimeout:      10 * time.Second,
			MaxRetries:       2,
			BackoffBase:      time.Millisecond,
			BackoffMax:       100 * time.Millisecond,
			Jitter:           0.2,
			FailureThreshold: 5,
			Cooldown:         time.Second,
		})
	}
	phase := sumCountPhase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.ScatterFragments(context.Background(), base, phase, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScatterFragmentsBare(b *testing.B)   { b.ReportAllocs(); benchScatter(b, false) }
func BenchmarkScatterFragmentsPolicy(b *testing.B) { b.ReportAllocs(); benchScatter(b, true) }
