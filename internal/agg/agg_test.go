package agg

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// feed folds a sequence of float values into a fresh state of fn.
func feed(t *testing.T, fn string, vals ...float64) State {
	t.Helper()
	f, err := Lookup(fn)
	if err != nil {
		t.Fatal(err)
	}
	st := f.NewState()
	for _, v := range vals {
		st.Add(table.Float(v))
	}
	return st
}

func TestEmptyStates(t *testing.T) {
	// Definition 3.1's outer-join semantics: count of an empty range is 0;
	// everything else is NULL.
	for _, fn := range []string{"sum", "min", "max", "avg", "var", "var_pop", "stddev", "median", "approx_median", "mode", "first", "last"} {
		st := feed(t, fn)
		if !st.Result().IsNull() {
			t.Errorf("%s over empty range = %v, want NULL", fn, st.Result())
		}
	}
	if got := feed(t, "count").Result(); got.AsInt() != 0 {
		t.Errorf("count over empty range = %v, want 0", got)
	}
	if got := feed(t, "count_distinct").Result(); got.AsInt() != 0 {
		t.Errorf("count_distinct over empty range = %v, want 0", got)
	}
}

func TestBasicResults(t *testing.T) {
	cases := []struct {
		fn   string
		vals []float64
		want float64
	}{
		{"sum", []float64{1, 2, 3}, 6},
		{"count", []float64{1, 2, 3}, 3},
		{"min", []float64{3, 1, 2}, 1},
		{"max", []float64{3, 1, 2}, 3},
		{"avg", []float64{2, 4, 6}, 4},
		{"median", []float64{5, 1, 3}, 3},
		{"median", []float64{4, 1, 3, 2}, 2.5},
		{"var", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 4.571428571428571},
		{"var_pop", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 4},
		{"stddev", []float64{2, 4, 4, 4, 5, 5, 7, 9}, math.Sqrt(4.571428571428571)},
		{"first", []float64{7, 8, 9}, 7},
		{"last", []float64{7, 8, 9}, 9},
	}
	for _, c := range cases {
		got := feed(t, c.fn, c.vals...).Result().AsFloat()
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s(%v) = %v, want %v", c.fn, c.vals, got, c.want)
		}
	}
}

func TestNullsIgnored(t *testing.T) {
	f := MustLookup("sum")
	st := f.NewState()
	st.Add(table.Float(5))
	st.Add(table.Null())
	st.Add(table.Float(3))
	if got := st.Result().AsFloat(); got != 8 {
		t.Errorf("sum with NULLs = %v, want 8", got)
	}
	c := MustLookup("count").NewState()
	c.Add(table.Null())
	c.Add(table.Int(1))
	if got := c.Result().AsInt(); got != 1 {
		t.Errorf("count(col) must skip NULL: %v", got)
	}
}

func TestSumKinds(t *testing.T) {
	st := MustLookup("sum").NewState()
	st.Add(table.Int(2))
	st.Add(table.Int(3))
	if got := st.Result(); got.Kind() != table.KindInt || got.AsInt() != 5 {
		t.Errorf("int sum = %v (%v)", got, got.Kind())
	}
	st.Add(table.Float(0.5))
	if got := st.Result(); got.Kind() != table.KindFloat || got.AsFloat() != 5.5 {
		t.Errorf("mixed sum = %v (%v)", got, got.Kind())
	}
}

func TestMinMaxStrings(t *testing.T) {
	st := MustLookup("min").NewState()
	st.Add(table.Str("pear"))
	st.Add(table.Str("apple"))
	if st.Result().AsString() != "apple" {
		t.Errorf("min = %v", st.Result())
	}
	st2 := MustLookup("max").NewState()
	st2.Add(table.Str("pear"))
	st2.Add(table.Str("apple"))
	if st2.Result().AsString() != "pear" {
		t.Errorf("max = %v", st2.Result())
	}
}

func TestModeDeterministicTieBreak(t *testing.T) {
	st := MustLookup("mode").NewState()
	for _, v := range []int64{3, 1, 3, 1, 2} {
		st.Add(table.Int(v))
	}
	// 1 and 3 tie with two occurrences; the smaller wins.
	if got := st.Result().AsInt(); got != 1 {
		t.Errorf("mode = %v, want 1 (tie toward smaller)", got)
	}
}

func TestCountDistinct(t *testing.T) {
	st := MustLookup("count_distinct").NewState()
	for _, v := range []int64{1, 2, 2, 3, 3, 3} {
		st.Add(table.Int(v))
	}
	st.Add(table.Null())
	if got := st.Result().AsInt(); got != 3 {
		t.Errorf("count_distinct = %v, want 3", got)
	}
}

// TestMergeEqualsSequential is the key property for Theorem 4.1 and
// R-partitioned parallelism: splitting a value stream arbitrarily,
// accumulating each part separately and merging must equal sequential
// accumulation.
func TestMergeEqualsSequential(t *testing.T) {
	fns := []string{"count", "sum", "min", "max", "avg", "var", "var_pop", "stddev", "median", "mode", "count_distinct"}
	for _, fn := range fns {
		f := MustLookup(fn)
		prop := func(raw []float64, cut uint8) bool {
			// Use small integral values so float addition reordering does
			// not introduce spurious drift for sums and variances.
			vals := make([]float64, len(raw))
			for i, v := range raw {
				vals[i] = float64(int64(v*10) % 100)
			}
			k := 0
			if len(vals) > 0 {
				k = int(cut) % (len(vals) + 1)
			}
			seq := f.NewState()
			for _, v := range vals {
				seq.Add(table.Float(v))
			}
			a, b := f.NewState(), f.NewState()
			for _, v := range vals[:k] {
				a.Add(table.Float(v))
			}
			for _, v := range vals[k:] {
				b.Add(table.Float(v))
			}
			a.Merge(b)
			x, y := seq.Result(), a.Result()
			if x.IsNull() != y.IsNull() {
				return false
			}
			if x.IsNull() {
				return true
			}
			if x.IsNumeric() && y.IsNumeric() {
				return math.Abs(x.AsFloat()-y.AsFloat()) < 1e-6
			}
			return x.Equal(y)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: merge ≠ sequential: %v", fn, err)
		}
	}
}

// TestReaggregateEqualsDirect is Theorem 4.5's l → l' mapping: aggregating
// partition results with the re-aggregation function must equal direct
// aggregation, for every distributive aggregate.
func TestReaggregateEqualsDirect(t *testing.T) {
	for _, fn := range []string{"count", "sum", "min", "max"} {
		f := MustLookup(fn)
		re, ok := f.Reaggregate()
		if !ok {
			t.Fatalf("%s must re-aggregate", fn)
		}
		prop := func(raw []float64, parts uint8) bool {
			vals := make([]float64, len(raw))
			for i, v := range raw {
				vals[i] = float64(int64(v*10) % 1000)
			}
			p := int(parts)%4 + 1
			// Direct.
			direct := f.NewState()
			for _, v := range vals {
				direct.Add(table.Float(v))
			}
			// Partitioned: aggregate each stripe, then re-aggregate the
			// results.
			outer := re.NewState()
			any := false
			for i := 0; i < p; i++ {
				inner := f.NewState()
				used := false
				for j, v := range vals {
					if j%p == i {
						inner.Add(table.Float(v))
						used = true
					}
				}
				if used {
					any = true
					outer.Add(inner.Result())
				}
			}
			want, got := direct.Result(), outer.Result()
			if !any {
				return want.IsNull() || want.AsFloat() == 0
			}
			if want.IsNumeric() && got.IsNumeric() {
				return math.Abs(want.AsFloat()-got.AsFloat()) < 1e-6
			}
			return want.Equal(got)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: reaggregate ≠ direct: %v", fn, err)
		}
	}
}

func TestAvgDoesNotReaggregate(t *testing.T) {
	if _, ok := MustLookup("avg").Reaggregate(); ok {
		t.Error("avg is algebraic; an average of averages is wrong and must be rejected")
	}
}

func TestApproxMedianConvergence(t *testing.T) {
	f := ApproxMedian{Capacity: 512, Seed: 42}
	st := f.NewState()
	// Uniform 0..9999: true median ≈ 4999.5.
	for i := 0; i < 10000; i++ {
		st.Add(table.Int(int64(i)))
	}
	got := st.Result().AsFloat()
	if math.Abs(got-4999.5) > 800 {
		t.Errorf("approx median = %v, want within 800 of 4999.5", got)
	}
}

func TestApproxMedianExactWhenSmall(t *testing.T) {
	st := ApproxMedian{Capacity: 100, Seed: 1}.NewState()
	for _, v := range []float64{9, 1, 5} {
		st.Add(table.Float(v))
	}
	if got := st.Result().AsFloat(); got != 5 {
		t.Errorf("approx median below capacity must be exact: %v", got)
	}
}

func TestRegistry(t *testing.T) {
	if _, err := Lookup("no_such_fn"); err == nil {
		t.Error("unknown aggregate should error")
	}
	if _, err := Lookup("SUM"); err != nil {
		t.Error("lookup must be case-insensitive")
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Error("Names must be sorted")
	}
	found := false
	for _, n := range names {
		if n == "median" {
			found = true
		}
	}
	if !found {
		t.Error("median must be registered")
	}
}

// testUDAF is a user-defined aggregate: the range of values (max - min) —
// the paper's Section 1 UDAF motivation.
type testUDAF struct{}

func (testUDAF) Name() string              { return "spread" }
func (testUDAF) NewState() State           { return &spreadState{} }
func (testUDAF) Reaggregate() (Func, bool) { return nil, false }

type spreadState struct {
	seen     bool
	min, max float64
}

func (s *spreadState) Add(v table.Value) {
	if !v.IsNumeric() {
		return
	}
	f := v.AsFloat()
	if !s.seen {
		s.seen, s.min, s.max = true, f, f
		return
	}
	if f < s.min {
		s.min = f
	}
	if f > s.max {
		s.max = f
	}
}

func (s *spreadState) Merge(o State) {
	os := o.(*spreadState)
	if os.seen {
		s.Add(table.Float(os.min))
		s.Add(table.Float(os.max))
	}
}

func (s *spreadState) Result() table.Value {
	if !s.seen {
		return table.Null()
	}
	return table.Float(s.max - s.min)
}

func TestUDAFRegistration(t *testing.T) {
	Register(testUDAF{})
	st := feed(t, "spread", 3, 10, 7)
	if got := st.Result().AsFloat(); got != 7 {
		t.Errorf("spread = %v, want 7", got)
	}
}

func TestSpecOutName(t *testing.T) {
	cases := []struct {
		s    Spec
		want string
	}{
		{NewSpec("sum", expr.QC("R", "sale"), "total"), "total"},
		{NewSpec("sum", expr.QC("R", "sale"), ""), "sum_R_sale"},
		{NewSpec("count", nil, ""), "count"},
	}
	for _, c := range cases {
		if got := c.s.OutName(); got != c.want {
			t.Errorf("OutName(%v) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestCompileSpecsRejectsDuplicates(t *testing.T) {
	b := expr.NewBinding()
	b.AddRel(table.SchemaOf("sale"), "r")
	_, err := CompileSpecs([]Spec{
		NewSpec("sum", expr.C("sale"), "x"),
		NewSpec("avg", expr.C("sale"), "X"), // case-insensitive clash
	}, b)
	if err == nil {
		t.Error("duplicate output names must be rejected")
	}
}

func TestCompileSpecUnknownFunc(t *testing.T) {
	b := expr.NewBinding()
	b.AddRel(table.SchemaOf("sale"), "r")
	if _, err := CompileSpec(NewSpec("frobnicate", expr.C("sale"), "x"), b); err == nil {
		t.Error("unknown function must be rejected")
	}
}

func TestCountStarFeed(t *testing.T) {
	b := expr.NewBinding()
	b.AddRel(table.SchemaOf("sale"), "r")
	c, err := CompileSpec(NewSpec("count", nil, "n"), b)
	if err != nil {
		t.Fatal(err)
	}
	st := c.NewState()
	c.Feed(st, []table.Row{{table.Null()}}) // count(*) counts NULL rows too
	c.Feed(st, []table.Row{{table.Int(5)}})
	if got := st.Result().AsInt(); got != 2 {
		t.Errorf("count(*) = %v, want 2", got)
	}
}
