package agg

import (
	"fmt"
	"strings"

	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Spec names one aggregate column to compute: the function, its argument
// expression, and the output column name. A nil Arg denotes count(*) — the
// state is fed a constant non-NULL marker per matching tuple.
//
// Spec is shared by the classic group-by (internal/engine), the MD-join
// (internal/core), and the cube toolkit (internal/cube); the paper's list l
// of aggregate functions is a []Spec.
type Spec struct {
	Func string    // registered aggregate name, e.g. "sum"
	Arg  expr.Expr // argument expression; nil means count(*)
	As   string    // output column name; "" derives "func_arg"
}

// NewSpec builds a spec with a derived alias when As is empty.
func NewSpec(fn string, arg expr.Expr, as string) Spec {
	return Spec{Func: fn, Arg: arg, As: as}
}

// OutName returns the output column name, deriving one from the function
// and argument when no alias was given (sum(sale) → "sum_sale"), in the
// spirit of the paper's fᵢ_R.cᵢ naming.
func (s Spec) OutName() string {
	if s.As != "" {
		return s.As
	}
	if s.Arg == nil {
		return s.Func
	}
	arg := s.Arg.String()
	arg = strings.NewReplacer(".", "_", "(", "", ")", "", " ", "").Replace(arg)
	return s.Func + "_" + arg
}

// String renders the spec as "func(arg) AS name".
func (s Spec) String() string {
	arg := "*"
	if s.Arg != nil {
		arg = s.Arg.String()
	}
	return fmt.Sprintf("%s(%s) AS %s", s.Func, arg, s.OutName())
}

// Compiled pairs a spec's function with its compiled argument, ready to
// drive states during a scan.
type Compiled struct {
	Spec Spec
	Fn   Func
	arg  *expr.Compiled // nil for count(*)
}

// CompileSpec resolves the function name and compiles the argument against
// the binding.
func CompileSpec(s Spec, b *expr.Binding) (*Compiled, error) {
	fn, err := Lookup(s.Func)
	if err != nil {
		return nil, err
	}
	c := &Compiled{Spec: s, Fn: fn}
	if s.Arg != nil {
		ce, err := expr.Compile(s.Arg, b)
		if err != nil {
			return nil, fmt.Errorf("agg: compiling argument of %s: %w", s, err)
		}
		c.arg = ce
	}
	return c, nil
}

// CompileSpecs compiles a list of specs and validates distinct output
// names.
func CompileSpecs(specs []Spec, b *expr.Binding) ([]*Compiled, error) {
	seen := map[string]bool{}
	out := make([]*Compiled, len(specs))
	for i, s := range specs {
		name := strings.ToLower(s.OutName())
		if seen[name] {
			return nil, fmt.Errorf("agg: duplicate aggregate output column %q", s.OutName())
		}
		seen[name] = true
		c, err := CompileSpec(s, b)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// Feed evaluates the argument over the frame and folds it into the state.
func (c *Compiled) Feed(st State, frame []table.Row) {
	if c.arg == nil {
		st.Add(table.Int(1)) // count(*) marker
		return
	}
	st.Add(c.arg.Eval(frame))
}

// NewState creates an accumulator for this aggregate.
func (c *Compiled) NewState() State { return c.Fn.NewState() }

// OutColumns derives the schema columns that a list of specs appends.
func OutColumns(specs []Spec) []table.Field {
	cols := make([]table.Field, len(specs))
	for i, s := range specs {
		cols[i] = table.Field{Name: s.OutName()}
	}
	return cols
}
