package agg

import (
	"math/rand"
	"testing"

	"mdjoin/internal/table"
)

// The typed fold paths (FoldInto/FoldColumn) must be indistinguishable
// from feeding the same values through State.Add — for every registered
// aggregate, every column representation, and every special-value mix.
// Order-sensitive states (first/last) rely on sel-order feeding, so the
// comparisons here are exact-result, not approximate.

// foldColumnOf builds a chunk column from the values.
func foldColumnOf(vals []table.Value) *table.Column {
	c := new(table.Column)
	for _, v := range vals {
		c.AppendValue(v)
	}
	return c
}

// genFoldValues produces a value sequence for the given payload mix.
func genFoldValues(rng *rand.Rand, n int, mix string) []table.Value {
	out := make([]table.Value, n)
	for i := range out {
		switch mix {
		case "int":
			out[i] = table.Int(int64(rng.Intn(100) - 50))
		case "float":
			out[i] = table.Float(float64(rng.Intn(200)-100) / 8)
		case "string":
			out[i] = table.Str([]string{"a", "b", "c", "d"}[rng.Intn(4)])
		case "bool":
			out[i] = table.Bool(rng.Intn(2) == 0)
		default: // mixed kinds → boxed column
			switch rng.Intn(3) {
			case 0:
				out[i] = table.Int(int64(rng.Intn(20)))
			case 1:
				out[i] = table.Float(float64(rng.Intn(20)) + 0.25)
			default:
				out[i] = table.Str("m")
			}
		}
		switch rng.Intn(10) {
		case 0:
			out[i] = table.Null()
		case 1:
			out[i] = table.All()
		}
	}
	return out
}

// TestFoldMatchesAdd runs every registered aggregate over every column
// representation, comparing three feeds of the same values: boxed Add
// (reference), per-position FoldInto, and bulk FoldColumn.
func TestFoldMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for _, name := range Names() {
		fn := MustLookup(name)
		for _, mix := range []string{"int", "float", "string", "bool", "mixed"} {
			for trial := 0; trial < 5; trial++ {
				vals := genFoldValues(rng, 1+rng.Intn(60), mix)
				col := foldColumnOf(vals)

				ref := fn.NewState()
				for _, v := range vals {
					ref.Add(v)
				}

				into := fn.NewState()
				for i := range vals {
					FoldInto(into, col, i)
				}

				sel := make([]int32, len(vals))
				for i := range sel {
					sel[i] = int32(i)
				}
				bulk := fn.NewState()
				FoldColumn(bulk, col, sel)

				want := ref.Result()
				for how, st := range map[string]State{"FoldInto": into, "FoldColumn": bulk} {
					got := st.Result()
					if !resultsAgree(got, want) {
						t.Fatalf("%s/%s trial %d: %s %v vs Add %v\nvals=%v",
							name, mix, trial, how, got, want, vals)
					}
				}
			}
		}
	}
}

// TestFoldColumnSelection: FoldColumn must feed exactly the selected
// positions, in sel order (first/last are the order-sensitive witnesses).
func TestFoldColumnSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	vals := genFoldValues(rng, 80, "int")
	col := foldColumnOf(vals)
	sel := []int32{}
	for i := 0; i < len(vals); i += 3 {
		sel = append(sel, int32(i))
	}
	for _, name := range []string{"count", "sum", "min", "first", "last"} {
		fn := MustLookup(name)
		ref := fn.NewState()
		for _, si := range sel {
			ref.Add(vals[si])
		}
		got := fn.NewState()
		FoldColumn(got, col, sel)
		if !resultsAgree(got.Result(), ref.Result()) {
			t.Fatalf("%s: selection fold %v vs reference %v", name, got.Result(), ref.Result())
		}
	}
}

// resultsAgree compares aggregate results: Equal plus the NULL case (empty
// min over no values, etc.) that Value.Equal reports false for.
func resultsAgree(a, b table.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return a.Equal(b)
}
