// Package agg implements the aggregate-function framework shared by the
// MD-join operator, the classic relational group-by, and the cube toolkit.
//
// Every aggregate is a Func that manufactures mergeable States. Mergeability
// serves two of the paper's needs: intra-operator parallelism over
// partitions of the detail relation (Section 4.1.2), and the roll-up
// transformation of Theorem 4.5, where a coarser cuboid is computed from a
// finer one by re-aggregating (a count in l becomes a sum in l').
//
// Distributive aggregates (count, sum, min, max) and algebraic aggregates
// (avg, var, stddev — fixed-size states) run in constant memory per group.
// Holistic aggregates (median, mode, count_distinct) retain value multisets,
// mirroring the paper's footnote 2; approx_median trades exactness for a
// bounded-size reservoir, the approximation route the footnote cites
// [MRL98].
package agg

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"mdjoin/internal/table"
)

// Func describes an aggregate function. Implementations must be stateless:
// all per-group storage lives in the State values they create.
type Func interface {
	// Name is the canonical lower-case name ("sum", "count", ...).
	Name() string
	// NewState creates an empty accumulator.
	NewState() State
	// Reaggregate returns the function that combines already-aggregated
	// results of this function (Theorem 4.5's l → l' mapping): count
	// re-aggregates by sum, sum by sum, min by min, max by max. The second
	// result is false for non-distributive aggregates, which cannot be
	// rolled up from result values alone.
	Reaggregate() (Func, bool)
}

// State accumulates input values for one group.
type State interface {
	// Add folds one value into the accumulator. NULL inputs are ignored,
	// following SQL; count(*) is modelled by feeding a non-NULL marker.
	Add(v table.Value)
	// Merge folds another accumulator of the same function into this one.
	Merge(o State)
	// Result reports the aggregate value. Empty accumulators yield 0 for
	// count and NULL otherwise (the MD-join's outer-join semantics:
	// Definition 3.1 emits a row for every b ∈ B even when RNG(b,R,θ) is
	// empty).
	Result() table.Value
}

// ---------------------------------------------------------------- registry

var (
	regMu    sync.RWMutex
	registry = map[string]Func{}
)

// Register installs an aggregate function under its Name. It is how user
// defined aggregate functions (UDAFs, Section 1 of the paper) plug in; the
// built-ins register themselves at init. Re-registering a name replaces the
// previous function.
func Register(f Func) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[strings.ToLower(f.Name())] = f
}

// Lookup finds a registered aggregate by name (case-insensitive).
func Lookup(name string) (Func, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("agg: unknown aggregate function %q", name)
	}
	return f, nil
}

// MustLookup is Lookup that panics; for statically known names.
func MustLookup(name string) Func {
	f, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Names returns the sorted names of all registered aggregates.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(countFunc{})
	Register(sumFunc{})
	Register(minFunc{})
	Register(maxFunc{})
	Register(avgFunc{})
	Register(varFunc{pop: false})
	Register(varFunc{pop: true})
	Register(stddevFunc{})
	Register(firstFunc{})
	Register(lastFunc{})
	Register(medianFunc{})
	Register(ApproxMedian{Capacity: 1024, Seed: 1})
	Register(modeFunc{})
	Register(countDistinctFunc{})
}

// ------------------------------------------------------------------- count

type countFunc struct{}

func (countFunc) Name() string              { return "count" }
func (countFunc) NewState() State           { return &countState{} }
func (countFunc) Reaggregate() (Func, bool) { return sumFunc{}, true }

//mdlint:sizedexempt a single counter; the struct size is the footprint
type countState struct{ n int64 }

func (s *countState) Add(v table.Value) {
	if !v.IsNull() {
		s.n++
	}
}
func (s *countState) Merge(o State)       { s.n += o.(*countState).n }
func (s *countState) Result() table.Value { return table.Int(s.n) }

// --------------------------------------------------------------------- sum

type sumFunc struct{}

func (sumFunc) Name() string              { return "sum" }
func (sumFunc) NewState() State           { return &sumState{} }
func (sumFunc) Reaggregate() (Func, bool) { return sumFunc{}, true }

// sumState counts its inputs instead of latching seen/isFloat booleans:
// n is the number of numeric inputs, nf the number of float inputs, so
// both flags stay invertible under Subtract/Unmerge (a window that evicts
// its last float legitimately reverts the result kind to Int, matching a
// batch evaluation over the surviving inputs).
//
//mdlint:sizedexempt four scalar fields; the struct size is the footprint
type sumState struct {
	n  int64
	nf int64
	i  int64
	f  float64
}

func (s *sumState) Add(v table.Value) {
	switch v.Kind() {
	case table.KindInt:
		s.n++
		s.i += v.AsInt()
		s.f += float64(v.AsInt())
	case table.KindFloat:
		s.n++
		s.nf++
		s.f += v.AsFloat()
	}
}

func (s *sumState) Merge(o State) {
	os := o.(*sumState)
	s.n += os.n
	s.nf += os.nf
	s.i += os.i
	s.f += os.f
}

func (s *sumState) Result() table.Value {
	if s.n == 0 {
		return table.Null()
	}
	if s.nf > 0 {
		return table.Float(s.f)
	}
	return table.Int(s.i)
}

// ----------------------------------------------------------------- min/max

type minFunc struct{}

func (minFunc) Name() string              { return "min" }
func (minFunc) NewState() State           { return &extState{min: true} }
func (minFunc) Reaggregate() (Func, bool) { return minFunc{}, true }

type maxFunc struct{}

func (maxFunc) Name() string              { return "max" }
func (maxFunc) NewState() State           { return &extState{min: false} }
func (maxFunc) Reaggregate() (Func, bool) { return maxFunc{}, true }

//mdlint:sizedexempt retains one value regardless of input size
type extState struct {
	min  bool
	seen bool
	v    table.Value
}

func (s *extState) Add(v table.Value) {
	if v.IsNull() || v.IsAll() {
		return
	}
	if !s.seen {
		s.seen = true
		s.v = v
		return
	}
	if s.min == (v.Compare(s.v) < 0) {
		s.v = v
	}
}

func (s *extState) Merge(o State) {
	os := o.(*extState)
	if os.seen {
		s.Add(os.v)
	}
}

func (s *extState) Result() table.Value {
	if !s.seen {
		return table.Null()
	}
	return s.v
}

// --------------------------------------------------------------------- avg

type avgFunc struct{}

func (avgFunc) Name() string    { return "avg" }
func (avgFunc) NewState() State { return &avgState{} }

// Reaggregate reports false: avg is algebraic, not distributive; an average
// of averages is wrong. Rollup paths must decompose avg into sum and count
// (see cube planner) or aggregate from detail.
func (avgFunc) Reaggregate() (Func, bool) { return nil, false }

//mdlint:sizedexempt two scalar fields; the struct size is the footprint
type avgState struct {
	n   int64
	sum float64
}

func (s *avgState) Add(v table.Value) {
	if !v.IsNumeric() {
		return
	}
	s.n++
	s.sum += v.AsFloat()
}

func (s *avgState) Merge(o State) {
	os := o.(*avgState)
	s.n += os.n
	s.sum += os.sum
}

func (s *avgState) Result() table.Value {
	if s.n == 0 {
		return table.Null()
	}
	return table.Float(s.sum / float64(s.n))
}

// -------------------------------------------------------------- var/stddev

// varFunc computes sample (var) or population (var_pop) variance using
// Welford accumulation with Chan's parallel merge — algebraic, so it stays
// mergeable for partitioned execution.
type varFunc struct{ pop bool }

func (f varFunc) Name() string {
	if f.pop {
		return "var_pop"
	}
	return "var"
}
func (f varFunc) NewState() State         { return &varState{pop: f.pop} }
func (varFunc) Reaggregate() (Func, bool) { return nil, false }

//mdlint:sizedexempt Welford accumulators are fixed-size scalars
type varState struct {
	pop  bool
	n    int64
	mean float64
	m2   float64
}

func (s *varState) Add(v table.Value) {
	if !v.IsNumeric() {
		return
	}
	s.n++
	d := v.AsFloat() - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v.AsFloat() - s.mean)
}

func (s *varState) Merge(o State) {
	os := o.(*varState)
	if os.n == 0 {
		return
	}
	if s.n == 0 {
		s.n, s.mean, s.m2 = os.n, os.mean, os.m2
		return
	}
	n := float64(s.n + os.n)
	d := os.mean - s.mean
	s.m2 += os.m2 + d*d*float64(s.n)*float64(os.n)/n
	s.mean = (s.mean*float64(s.n) + os.mean*float64(os.n)) / n
	s.n += os.n
}

func (s *varState) Result() table.Value {
	if s.pop {
		if s.n == 0 {
			return table.Null()
		}
		return table.Float(s.m2 / float64(s.n))
	}
	if s.n < 2 {
		return table.Null()
	}
	return table.Float(s.m2 / float64(s.n-1))
}

type stddevFunc struct{}

func (stddevFunc) Name() string              { return "stddev" }
func (stddevFunc) NewState() State           { return &stddevState{varState{pop: false}} }
func (stddevFunc) Reaggregate() (Func, bool) { return nil, false }

//mdlint:sizedexempt embeds the fixed-size varState and nothing else
type stddevState struct{ varState }

func (s *stddevState) Merge(o State) { s.varState.Merge(&o.(*stddevState).varState) }

func (s *stddevState) Result() table.Value {
	v := s.varState.Result()
	if v.IsNull() {
		return v
	}
	return table.Float(math.Sqrt(v.AsFloat()))
}

// -------------------------------------------------------------- first/last

// first and last record the first/last non-NULL value in arrival order.
// They are order-sensitive: Merge keeps the receiver's first (respectively
// the argument's last), which matches partition-then-concatenate execution.
type firstFunc struct{}

func (firstFunc) Name() string              { return "first" }
func (firstFunc) NewState() State           { return &firstState{} }
func (firstFunc) Reaggregate() (Func, bool) { return firstFunc{}, true }

//mdlint:sizedexempt retains one value regardless of input size
type firstState struct {
	seen bool
	v    table.Value
}

func (s *firstState) Add(v table.Value) {
	if !s.seen && !v.IsNull() {
		s.seen = true
		s.v = v
	}
}
func (s *firstState) Merge(o State) {
	os := o.(*firstState)
	if !s.seen && os.seen {
		s.seen, s.v = true, os.v
	}
}
func (s *firstState) Result() table.Value {
	if !s.seen {
		return table.Null()
	}
	return s.v
}

type lastFunc struct{}

func (lastFunc) Name() string              { return "last" }
func (lastFunc) NewState() State           { return &lastState{} }
func (lastFunc) Reaggregate() (Func, bool) { return lastFunc{}, true }

//mdlint:sizedexempt retains one value regardless of input size
type lastState struct {
	seen bool
	v    table.Value
}

func (s *lastState) Add(v table.Value) {
	if !v.IsNull() {
		s.seen = true
		s.v = v
	}
}
func (s *lastState) Merge(o State) {
	os := o.(*lastState)
	if os.seen {
		s.seen, s.v = true, os.v
	}
}
func (s *lastState) Result() table.Value {
	if !s.seen {
		return table.Null()
	}
	return s.v
}
