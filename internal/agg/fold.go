// Typed fold paths: the columnar executor feeds aggregate states straight
// from chunk payload arrays ([]int64 / []float64 plus validity bitmaps)
// without boxing each element into a table.Value. States that can consume
// raw payloads implement IntAdder/FloatAdder; everything else — and every
// NULL/ALL position, whose semantics differ per aggregate (count counts
// ALL, min/max skip it, sum ignores it) — routes through the ordinary
// boxed State.Add, so the typed path cannot drift from the reference
// semantics.
package agg

import "mdjoin/internal/table"

// IntAdder is implemented by states that can fold a valid (non-NULL,
// non-ALL) int64 payload directly.
type IntAdder interface {
	AddInt(v int64)
}

// FloatAdder is implemented by states that can fold a valid float64
// payload directly.
type FloatAdder interface {
	AddFloat(v float64)
}

// count: every valid payload is non-NULL by definition.

func (s *countState) AddInt(int64)     { s.n++ }
func (s *countState) AddFloat(float64) { s.n++ }

// sum mirrors Add's kind handling: ints accumulate both lanes so the
// result kind stays Int until a float is seen.

func (s *sumState) AddInt(v int64) {
	s.n++
	s.i += v
	s.f += float64(v)
}

func (s *sumState) AddFloat(v float64) {
	s.n++
	s.nf++
	s.f += v
}

// min/max still box the payload (the state stores a Value), but skip the
// expression-evaluation detour.

func (s *extState) AddInt(v int64)     { s.Add(table.Int(v)) }
func (s *extState) AddFloat(v float64) { s.Add(table.Float(v)) }

func (s *avgState) AddInt(v int64) {
	s.n++
	s.sum += float64(v)
}

func (s *avgState) AddFloat(v float64) {
	s.n++
	s.sum += v
}

// var/stddev replicate Add's exact Welford update sequence so the typed
// path is bit-identical to the boxed one. stddevState embeds varState and
// inherits both adders.

func (s *varState) AddFloat(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

func (s *varState) AddInt(v int64) { s.AddFloat(float64(v)) }

// FoldInto folds position i of a chunk column into the state: valid
// int/float payloads go through the typed adders when the state has them;
// NULL/ALL positions and everything else box through State.Add.
func FoldInto(st State, col *table.Column, i int) {
	if !col.IsNull(i) && !col.IsAll(i) {
		switch col.PayloadKind() {
		case table.KindInt:
			if a, ok := st.(IntAdder); ok {
				a.AddInt(col.Ints()[i])
				return
			}
		case table.KindFloat:
			if a, ok := st.(FloatAdder); ok {
				a.AddFloat(col.Floats()[i])
				return
			}
		}
	}
	st.Add(col.Value(i))
}

// FoldColumn folds every selected position of the column into the state —
// the bulk typed fold, with the adder assertion hoisted out of the loop.
// Feeding positions in sel order matches the tuple-at-a-time feed order,
// so order-sensitive states (first/last) see the same sequence.
func FoldColumn(st State, col *table.Column, sel []int32) {
	switch col.PayloadKind() {
	case table.KindInt:
		if a, ok := st.(IntAdder); ok {
			ints := col.Ints()
			if !col.HasSpecial() {
				for _, si := range sel {
					a.AddInt(ints[si])
				}
				return
			}
			for _, si := range sel {
				i := int(si)
				if col.IsNull(i) || col.IsAll(i) {
					st.Add(col.Value(i))
					continue
				}
				a.AddInt(ints[i])
			}
			return
		}
	case table.KindFloat:
		if a, ok := st.(FloatAdder); ok {
			floats := col.Floats()
			if !col.HasSpecial() {
				for _, si := range sel {
					a.AddFloat(floats[si])
				}
				return
			}
			for _, si := range sel {
				i := int(si)
				if col.IsNull(i) || col.IsAll(i) {
					st.Add(col.Value(i))
					continue
				}
				a.AddFloat(floats[i])
			}
			return
		}
	}
	for _, si := range sel {
		st.Add(col.Value(int(si)))
	}
}
