package agg

import (
	"math/rand"
	"testing"

	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

func randValue(rng *rand.Rand) table.Value {
	switch rng.Intn(5) {
	case 0:
		return table.Null()
	case 1:
		return table.Float(float64(rng.Intn(1000)) / 4) // exactly representable
	default:
		return table.Int(int64(rng.Intn(2000) - 1000))
	}
}

// TestSubtractableFuncs pins which built-ins advertise invertibility: the
// incremental executor's window-mode choice hangs off this set.
func TestSubtractableFuncs(t *testing.T) {
	want := map[string]bool{
		"count": true, "sum": true, "avg": true,
		"min": false, "max": false, "median": false, "approx_median": false,
		"mode": false, "count_distinct": false, "first": false, "last": false,
		"var": false, "stddev": false,
	}
	for name, sub := range want {
		fn := MustLookup(name)
		if got := IsSubtractable(fn); got != sub {
			t.Errorf("IsSubtractable(%s) = %v, want %v", name, got, sub)
		}
	}
}

// TestAddSubtractIdentity is the property test: for every subtractable
// aggregate, any prefix of Adds followed by Add(x); Subtract(x) yields the
// same Result as the prefix alone — for any x, including NULL, at every
// point in the stream.
func TestAddSubtractIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range Names() {
		fn := MustLookup(name)
		if !IsSubtractable(fn) {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			ref := fn.NewState()
			st := fn.NewState().(Subtractor)
			for i, k := 0, rng.Intn(20); i < k; i++ {
				v := randValue(rng)
				ref.Add(v)
				st.Add(v)
			}
			x := randValue(rng)
			st.Add(x)
			st.Subtract(x)
			if got, want := st.Result(), ref.Result(); !got.Equal(want) {
				t.Fatalf("%s trial %d: Add(%v);Subtract(%v) broke identity: got %v, want %v",
					name, trial, x, x, got, want)
			}
		}
	}
}

// TestMergeUnmergeIdentity is the bulk version: Merge(o); Unmerge(o)
// restores Result, including through Arena.Unmerge.
func TestMergeUnmergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bind := expr.NewBinding()
	bind.AddRel(table.SchemaOf("w"), "r")
	specs, err := CompileSpecs([]Spec{
		NewSpec("count", nil, "n"),
		NewSpec("sum", expr.C("w"), "s"),
		NewSpec("avg", expr.C("w"), "a"),
	}, bind)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 17
	base := NewArena(specs, rows)
	delta := NewArena(specs, rows)
	want := make([]table.Value, 0, rows*len(specs))
	for bi := 0; bi < rows; bi++ {
		for j := range specs {
			for i, k := 0, rng.Intn(8); i < k; i++ {
				base.At(bi, j).Add(randValue(rng))
			}
			want = append(want, base.At(bi, j).Result())
			for i, k := 0, rng.Intn(8); i < k; i++ {
				delta.At(bi, j).Add(randValue(rng))
			}
		}
	}
	base.Merge(delta)
	base.Unmerge(delta)
	i := 0
	for bi := 0; bi < rows; bi++ {
		for j := range specs {
			if got := base.At(bi, j).Result(); !got.Equal(want[i]) {
				t.Fatalf("row %d spec %d: Merge;Unmerge broke identity: got %v, want %v", bi, j, got, want[i])
			}
			i++
		}
	}
}

// TestSumSubtractRestoresIntKind pins the counter refactor: evicting the
// only float input reverts the sum's result kind to Int, exactly what a
// batch evaluation over the surviving inputs reports.
func TestSumSubtractRestoresIntKind(t *testing.T) {
	st := MustLookup("sum").NewState().(Subtractor)
	st.Add(table.Int(3))
	st.Add(table.Float(1.5))
	st.Subtract(table.Float(1.5))
	got := st.Result()
	if got.Kind() != table.KindInt || got.AsInt() != 3 {
		t.Fatalf("sum after evicting the only float = %v (kind %v), want Int 3", got, got.Kind())
	}
}

// TestReservoirMergeWeightProportional is the statistical pin for the
// weight-proportional reservoir merge: two partitions with disjoint value
// ranges and equal stream lengths must contribute ~equally to the merged
// sample regardless of merge direction. The old replay-through-Add merge
// capped the donor stream's influence at its sample size, collapsing its
// share to ~cap/(n+cap) (about 5% here) and dragging the merged median to
// the receiver's partition.
func TestReservoirMergeWeightProportional(t *testing.T) {
	const n, cap = 10000, 256
	fresh := func(seed int64) State { return ApproxMedian{Capacity: cap, Seed: seed}.NewState() }
	feed := func(st State, lo float64) {
		for i := 0; i < n; i++ {
			st.Add(table.Float(lo + float64(i%100)))
		}
	}
	for _, dir := range []string{"a<-b", "b<-a"} {
		a, b := fresh(1), fresh(2)
		feed(a, 0)    // partition A: values in [0, 100)
		feed(b, 1000) // partition B: values in [1000, 1100)
		recv, donor := a, b
		if dir == "b<-a" {
			recv, donor = b, a
		}
		recv.Merge(donor)
		rs := recv.(*reservoirState)
		if rs.n != 2*n {
			t.Fatalf("%s: merged stream length = %d, want %d", dir, rs.n, 2*n)
		}
		if len(rs.vals) != cap {
			t.Fatalf("%s: merged sample size = %d, want %d", dir, len(rs.vals), cap)
		}
		hi := 0
		for _, v := range rs.vals {
			if v >= 1000 {
				hi++
			}
		}
		frac := float64(hi) / float64(len(rs.vals))
		if frac < 0.35 || frac > 0.65 {
			t.Errorf("%s: partition B holds %.0f%% of the merged sample, want ~50%%", dir, frac*100)
		}
	}
}

// TestReservoirMergeVsSinglePassQuantiles compares the merged-across-
// partitions estimate against a single-pass reservoir and the exact
// median over a skewed stream: both estimates must land within the same
// tolerance band of the truth.
func TestReservoirMergeVsSinglePassQuantiles(t *testing.T) {
	const n, parts, cap = 40000, 8, 512
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, n)
	for i := range vals {
		// Skewed: squaring a uniform draw piles mass near zero.
		u := rng.Float64()
		vals[i] = u * u * 1000
	}
	single := ApproxMedian{Capacity: cap, Seed: 3}.NewState()
	partials := make([]State, parts)
	for i := range partials {
		partials[i] = ApproxMedian{Capacity: cap, Seed: int64(20 + i)}.NewState()
	}
	for i, v := range vals {
		single.Add(table.Float(v))
		partials[i%parts].Add(table.Float(v))
	}
	merged := partials[0]
	for _, p := range partials[1:] {
		merged.Merge(p)
	}
	exact := MustLookup("median").NewState()
	for _, v := range vals {
		exact.Add(table.Float(v))
	}
	truth := exact.Result().AsFloat()
	const tol = 40 // generous: reservoir error at cap=512 is well inside this
	if got := single.Result().AsFloat(); got < truth-tol || got > truth+tol {
		t.Errorf("single-pass estimate %.1f outside ±%d of exact %.1f", got, tol, truth)
	}
	if got := merged.Result().AsFloat(); got < truth-tol || got > truth+tol {
		t.Errorf("merged estimate %.1f outside ±%d of exact %.1f", got, tol, truth)
	}
}
