package agg

import (
	"math"
	"math/rand"
	"testing"

	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

func arenaSpecs(t *testing.T) []*Compiled {
	t.Helper()
	bind := expr.NewBinding()
	bind.AddRel(table.SchemaOf("w"), "r")
	specs := []Spec{
		NewSpec("count", nil, "n"),
		NewSpec("sum", expr.C("w"), "total"),
		NewSpec("min", expr.C("w"), "lo"),
		NewSpec("max", expr.C("w"), "hi"),
		NewSpec("avg", expr.C("w"), "mean"),
		NewSpec("var", expr.C("w"), "v"),
		NewSpec("var_pop", expr.C("w"), "vp"),
		NewSpec("stddev", expr.C("w"), "sd"),
		NewSpec("first", expr.C("w"), "fst"),
		NewSpec("last", expr.C("w"), "lst"),
		NewSpec("median", expr.C("w"), "med"), // holistic: per-state fallback
	}
	cs, err := CompileSpecs(specs, bind)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestArenaMatchesIndividualStates: feeding the same value streams through
// arena-backed states and through individually allocated NewState results
// must produce identical aggregates — bulk allocation is invisible.
func TestArenaMatchesIndividualStates(t *testing.T) {
	cs := arenaSpecs(t)
	const rows = 17
	rng := rand.New(rand.NewSource(9))

	arena := NewArena(cs, rows)
	plain := make([][]State, rows)
	for bi := range plain {
		plain[bi] = make([]State, len(cs))
		for j, c := range cs {
			plain[bi][j] = c.NewState()
		}
	}

	frame := make([]table.Row, 1)
	for i := 0; i < 500; i++ {
		bi := rng.Intn(rows)
		frame[0] = table.Row{table.Int(int64(rng.Intn(100) - 50))}
		for j, c := range cs {
			c.Feed(arena.At(bi, j), frame)
			c.Feed(plain[bi][j], frame)
		}
	}
	for bi := 0; bi < rows; bi++ {
		for j := range cs {
			got, want := arena.At(bi, j).Result(), plain[bi][j].Result()
			if !got.Equal(want) {
				t.Fatalf("row %d spec %s: arena %v vs plain %v", bi, cs[j].Spec, got, want)
			}
		}
	}
	// Rows never fed must still report the empty-accumulator results.
	empty := NewArena(cs, 3)
	for j, c := range cs {
		if got, want := empty.At(2, j).Result(), c.NewState().Result(); !got.Equal(want) {
			t.Fatalf("empty arena spec %s: %v vs %v", c.Spec, got, want)
		}
	}
}

// TestArenaMerge: merging two arenas equals feeding the concatenated
// stream into one.
func TestArenaMerge(t *testing.T) {
	cs := arenaSpecs(t)
	const rows = 5
	rng := rand.New(rand.NewSource(10))
	a, b, whole := NewArena(cs, rows), NewArena(cs, rows), NewArena(cs, rows)

	frame := make([]table.Row, 1)
	feed := func(dst *Arena, bi int, v int64) {
		frame[0] = table.Row{table.Int(v)}
		for j, c := range cs {
			c.Feed(dst.At(bi, j), frame)
		}
	}
	for i := 0; i < 200; i++ {
		bi, v := rng.Intn(rows), int64(rng.Intn(40))
		feed(a, bi, v)
		feed(whole, bi, v)
	}
	for i := 0; i < 200; i++ {
		bi, v := rng.Intn(rows), int64(rng.Intn(40))
		feed(b, bi, v)
		feed(whole, bi, v)
	}
	a.Merge(b)
	for bi := 0; bi < rows; bi++ {
		for j := range cs {
			got, want := a.At(bi, j).Result(), whole.At(bi, j).Result()
			// Welford's parallel merge is algebraically but not bitwise
			// equal to sequential accumulation; allow float rounding.
			if got.Kind() == table.KindFloat && want.Kind() == table.KindFloat {
				g, w := got.AsFloat(), want.AsFloat()
				if diff := math.Abs(g - w); diff > 1e-9*math.Max(1, math.Abs(w)) {
					t.Fatalf("row %d spec %s: merged %v vs whole %v", bi, cs[j].Spec, got, want)
				}
				continue
			}
			if !got.Equal(want) {
				t.Fatalf("row %d spec %s: merged %v vs whole %v", bi, cs[j].Spec, got, want)
			}
		}
	}
}

// TestArenaRowView pins the row-major layout contract At/Row share.
func TestArenaRowView(t *testing.T) {
	cs := arenaSpecs(t)
	a := NewArena(cs, 4)
	if a.Len() != 4 || a.Specs() != len(cs) {
		t.Fatalf("shape: %d x %d", a.Len(), a.Specs())
	}
	for bi := 0; bi < 4; bi++ {
		row := a.Row(bi)
		for j := range cs {
			if row[j] != a.At(bi, j) {
				t.Fatalf("Row(%d)[%d] != At(%d,%d)", bi, j, bi, j)
			}
		}
	}
}

// TestBulkAllocBuiltins asserts the built-ins that should bulk-allocate
// actually implement BulkFunc (a regression guard: a new field that breaks
// FillStates initialization would silently deoptimize the executor).
func TestBulkAllocBuiltins(t *testing.T) {
	for _, name := range []string{"count", "sum", "min", "max", "avg", "var", "var_pop", "stddev", "first", "last"} {
		if _, ok := MustLookup(name).(BulkFunc); !ok {
			t.Errorf("%s does not implement BulkFunc", name)
		}
	}
	for _, name := range []string{"median", "mode", "count_distinct"} {
		if _, ok := MustLookup(name).(BulkFunc); ok {
			t.Errorf("holistic %s unexpectedly implements BulkFunc", name)
		}
	}
}
