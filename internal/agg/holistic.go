package agg

import (
	"math/rand"
	"reflect"
	"sort"

	"mdjoin/internal/table"
)

// ------------------------------------------------------------------ median

// medianFunc is the exact holistic median: it retains every numeric input.
// The paper's footnote 2 notes that Algorithm 3.1 covers distributive and
// algebraic aggregates and that holistic ones need memory handling; here
// the multiset simply lives in the state.
type medianFunc struct{}

func (medianFunc) Name() string              { return "median" }
func (medianFunc) NewState() State           { return &medianState{} }
func (medianFunc) Reaggregate() (Func, bool) { return nil, false }

type medianState struct{ vals []float64 }

func (s *medianState) Add(v table.Value) {
	if v.IsNumeric() {
		s.vals = append(s.vals, v.AsFloat())
	}
}

func (s *medianState) Merge(o State) {
	s.vals = append(s.vals, o.(*medianState).vals...)
}

func (s *medianState) SizeBytes() int64 {
	return int64(reflectStateSize(s)) + int64(cap(s.vals))*8
}

func (s *medianState) Result() table.Value {
	n := len(s.vals)
	if n == 0 {
		return table.Null()
	}
	vs := make([]float64, n)
	copy(vs, s.vals)
	sort.Float64s(vs)
	if n%2 == 1 {
		return table.Float(vs[n/2])
	}
	return table.Float((vs[n/2-1] + vs[n/2]) / 2)
}

// ------------------------------------------------------------ approx median

// ApproxMedian estimates the median from a bounded reservoir sample,
// making the holistic median effectively algebraic by approximation — the
// route the paper's footnote 2 cites ([MRL98]). Capacity bounds per-group
// memory; Seed makes runs reproducible. Register a differently tuned
// instance to change the defaults.
type ApproxMedian struct {
	Capacity int
	Seed     int64
}

// Name implements Func.
func (ApproxMedian) Name() string { return "approx_median" }

// NewState implements Func.
func (f ApproxMedian) NewState() State {
	cap := f.Capacity
	if cap <= 0 {
		cap = 1024
	}
	return &reservoirState{cap: cap, rng: rand.New(rand.NewSource(f.Seed))}
}

// Reaggregate implements Func; approximate medians do not re-aggregate.
func (ApproxMedian) Reaggregate() (Func, bool) { return nil, false }

type reservoirState struct {
	cap  int
	n    int64 // total values offered
	vals []float64
	rng  *rand.Rand
}

func (s *reservoirState) Add(v table.Value) {
	if !v.IsNumeric() {
		return
	}
	s.n++
	if len(s.vals) < s.cap {
		s.vals = append(s.vals, v.AsFloat())
		return
	}
	// Vitter's algorithm R.
	if j := s.rng.Int63n(s.n); j < int64(s.cap) {
		s.vals[j] = v.AsFloat()
	}
}

func (s *reservoirState) Merge(o State) {
	os := o.(*reservoirState)
	if os.n == 0 {
		return
	}
	// A reservoir that never overflowed is not a sample — it IS its
	// stream, so replaying it through Add runs Vitter's algorithm over
	// the concatenated streams exactly.
	if os.n == int64(len(os.vals)) {
		for _, v := range os.vals {
			s.Add(table.Float(v))
		}
		return
	}
	if s.n == int64(len(s.vals)) {
		// Symmetric case: the receiver is complete but the other side
		// overflowed. Restart from the other side's sample and replay the
		// receiver's (complete) stream into it.
		mine := s.vals
		s.vals = append(make([]float64, 0, s.cap), os.vals...)
		s.n = os.n
		for _, v := range mine {
			s.Add(table.Float(v))
		}
		return
	}
	// Both sides overflowed: draw the merged sample weight-proportionally
	// without replacement. Each remaining slot of a side's sample stands
	// for streamLen/sampleLen original values; every output slot picks a
	// side with probability proportional to its remaining weight, then a
	// uniform victim within it. Replaying one sample through Add instead
	// (the old code) caps the other stream's influence at sampleLen
	// candidates no matter how long its stream was, skewing quantiles
	// toward the receiver's partition under parallel merges.
	na, nb := s.n, os.n
	a := append(make([]float64, 0, len(s.vals)), s.vals...)
	b := append(make([]float64, 0, len(os.vals)), os.vals...)
	ewa := float64(na) / float64(len(a))
	ewb := float64(nb) / float64(len(b))
	wa, wb := float64(na), float64(nb)
	merged := s.vals[:0]
	for len(merged) < s.cap && (len(a) > 0 || len(b) > 0) {
		fromA := len(b) == 0
		if len(a) > 0 && len(b) > 0 {
			fromA = s.rng.Float64()*(wa+wb) < wa
		}
		if fromA {
			i := s.rng.Intn(len(a))
			merged = append(merged, a[i])
			a[i] = a[len(a)-1]
			a = a[:len(a)-1]
			wa -= ewa
		} else {
			i := s.rng.Intn(len(b))
			merged = append(merged, b[i])
			b[i] = b[len(b)-1]
			b = b[:len(b)-1]
			wb -= ewb
		}
	}
	s.vals = merged
	s.n = na + nb
}

func (s *reservoirState) SizeBytes() int64 {
	return int64(reflectStateSize(s)) + int64(cap(s.vals))*8
}

func (s *reservoirState) Result() table.Value {
	n := len(s.vals)
	if n == 0 {
		return table.Null()
	}
	vs := make([]float64, n)
	copy(vs, s.vals)
	sort.Float64s(vs)
	if n%2 == 1 {
		return table.Float(vs[n/2])
	}
	return table.Float((vs[n/2-1] + vs[n/2]) / 2)
}

// -------------------------------------------------------------------- mode

// modeFunc ("most frequent", one of the paper's Section 1 examples of a
// complex aggregate) returns the most frequent non-NULL value; ties break
// toward the smaller value under the table.Value total order so results
// are deterministic.
type modeFunc struct{}

func (modeFunc) Name() string              { return "mode" }
func (modeFunc) NewState() State           { return &modeState{counts: map[table.Value]int64{}} }
func (modeFunc) Reaggregate() (Func, bool) { return nil, false }

type modeState struct {
	counts map[table.Value]int64
}

func (s *modeState) Add(v table.Value) {
	if v.IsNull() || v.IsAll() {
		return
	}
	s.counts[v]++
}

func (s *modeState) Merge(o State) {
	for v, n := range o.(*modeState).counts {
		s.counts[v] += n
	}
}

func (s *modeState) SizeBytes() int64 {
	// map entry ≈ key (table.Value, 48 bytes) + count + bucket overhead.
	return int64(reflectStateSize(s)) + int64(len(s.counts))*64
}

func (s *modeState) Result() table.Value {
	var best table.Value
	var bestN int64 = -1
	found := false
	for v, n := range s.counts {
		if n > bestN || (n == bestN && v.Less(best)) {
			best, bestN, found = v, n, true
		}
	}
	if !found {
		return table.Null()
	}
	return best
}

// ---------------------------------------------------------- count distinct

type countDistinctFunc struct{}

func (countDistinctFunc) Name() string              { return "count_distinct" }
func (countDistinctFunc) NewState() State           { return &cdState{seen: map[table.Value]bool{}} }
func (countDistinctFunc) Reaggregate() (Func, bool) { return nil, false }

type cdState struct {
	seen map[table.Value]bool
}

func (s *cdState) Add(v table.Value) {
	if v.IsNull() {
		return
	}
	s.seen[v] = true
}

func (s *cdState) Merge(o State) {
	for v := range o.(*cdState).seen {
		s.seen[v] = true
	}
}

func (s *cdState) SizeBytes() int64 {
	return int64(reflectStateSize(s)) + int64(len(s.seen))*56
}

func (s *cdState) Result() table.Value { return table.Int(int64(len(s.seen))) }

// reflectStateSize is the state's own struct size, shared by the Sized
// implementations above so buffer estimates sit on top of a consistent
// fixed part.
func reflectStateSize(s State) uintptr {
	t := reflect.TypeOf(s)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Size()
}
