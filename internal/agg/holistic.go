package agg

import (
	"math/rand"
	"sort"

	"mdjoin/internal/table"
)

// ------------------------------------------------------------------ median

// medianFunc is the exact holistic median: it retains every numeric input.
// The paper's footnote 2 notes that Algorithm 3.1 covers distributive and
// algebraic aggregates and that holistic ones need memory handling; here
// the multiset simply lives in the state.
type medianFunc struct{}

func (medianFunc) Name() string              { return "median" }
func (medianFunc) NewState() State           { return &medianState{} }
func (medianFunc) Reaggregate() (Func, bool) { return nil, false }

type medianState struct{ vals []float64 }

func (s *medianState) Add(v table.Value) {
	if v.IsNumeric() {
		s.vals = append(s.vals, v.AsFloat())
	}
}

func (s *medianState) Merge(o State) {
	s.vals = append(s.vals, o.(*medianState).vals...)
}

func (s *medianState) Result() table.Value {
	n := len(s.vals)
	if n == 0 {
		return table.Null()
	}
	vs := make([]float64, n)
	copy(vs, s.vals)
	sort.Float64s(vs)
	if n%2 == 1 {
		return table.Float(vs[n/2])
	}
	return table.Float((vs[n/2-1] + vs[n/2]) / 2)
}

// ------------------------------------------------------------ approx median

// ApproxMedian estimates the median from a bounded reservoir sample,
// making the holistic median effectively algebraic by approximation — the
// route the paper's footnote 2 cites ([MRL98]). Capacity bounds per-group
// memory; Seed makes runs reproducible. Register a differently tuned
// instance to change the defaults.
type ApproxMedian struct {
	Capacity int
	Seed     int64
}

// Name implements Func.
func (ApproxMedian) Name() string { return "approx_median" }

// NewState implements Func.
func (f ApproxMedian) NewState() State {
	cap := f.Capacity
	if cap <= 0 {
		cap = 1024
	}
	return &reservoirState{cap: cap, rng: rand.New(rand.NewSource(f.Seed))}
}

// Reaggregate implements Func; approximate medians do not re-aggregate.
func (ApproxMedian) Reaggregate() (Func, bool) { return nil, false }

type reservoirState struct {
	cap  int
	n    int64 // total values offered
	vals []float64
	rng  *rand.Rand
}

func (s *reservoirState) Add(v table.Value) {
	if !v.IsNumeric() {
		return
	}
	s.n++
	if len(s.vals) < s.cap {
		s.vals = append(s.vals, v.AsFloat())
		return
	}
	// Vitter's algorithm R.
	if j := s.rng.Int63n(s.n); j < int64(s.cap) {
		s.vals[j] = v.AsFloat()
	}
}

func (s *reservoirState) Merge(o State) {
	os := o.(*reservoirState)
	// Feed the other reservoir's sample through Add, weighting by its
	// acceptance ratio; adequate for the benchmark use and keeps the state
	// bounded.
	for _, v := range os.vals {
		s.Add(table.Float(v))
	}
	s.n += os.n - int64(len(os.vals))
}

func (s *reservoirState) Result() table.Value {
	n := len(s.vals)
	if n == 0 {
		return table.Null()
	}
	vs := make([]float64, n)
	copy(vs, s.vals)
	sort.Float64s(vs)
	if n%2 == 1 {
		return table.Float(vs[n/2])
	}
	return table.Float((vs[n/2-1] + vs[n/2]) / 2)
}

// -------------------------------------------------------------------- mode

// modeFunc ("most frequent", one of the paper's Section 1 examples of a
// complex aggregate) returns the most frequent non-NULL value; ties break
// toward the smaller value under the table.Value total order so results
// are deterministic.
type modeFunc struct{}

func (modeFunc) Name() string              { return "mode" }
func (modeFunc) NewState() State           { return &modeState{counts: map[table.Value]int64{}} }
func (modeFunc) Reaggregate() (Func, bool) { return nil, false }

type modeState struct {
	counts map[table.Value]int64
}

func (s *modeState) Add(v table.Value) {
	if v.IsNull() || v.IsAll() {
		return
	}
	s.counts[v]++
}

func (s *modeState) Merge(o State) {
	for v, n := range o.(*modeState).counts {
		s.counts[v] += n
	}
}

func (s *modeState) Result() table.Value {
	var best table.Value
	var bestN int64 = -1
	found := false
	for v, n := range s.counts {
		if n > bestN || (n == bestN && v.Less(best)) {
			best, bestN, found = v, n, true
		}
	}
	if !found {
		return table.Null()
	}
	return best
}

// ---------------------------------------------------------- count distinct

type countDistinctFunc struct{}

func (countDistinctFunc) Name() string              { return "count_distinct" }
func (countDistinctFunc) NewState() State           { return &cdState{seen: map[table.Value]bool{}} }
func (countDistinctFunc) Reaggregate() (Func, bool) { return nil, false }

type cdState struct {
	seen map[table.Value]bool
}

func (s *cdState) Add(v table.Value) {
	if v.IsNull() {
		return
	}
	s.seen[v] = true
}

func (s *cdState) Merge(o State) {
	for v := range o.(*cdState).seen {
		s.seen[v] = true
	}
}

func (s *cdState) Result() table.Value { return table.Int(int64(len(s.seen))) }
