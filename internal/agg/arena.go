package agg

import "reflect"

// BulkFunc is implemented by aggregate functions whose states can be
// allocated in bulk: FillStates writes n fresh states into
// dst[0], dst[stride], ..., dst[(n-1)*stride], all backed by a single
// allocation. The MD-join executor holds |B| × |specs| states per phase;
// without bulk allocation every one is a separate tiny heap object.
//
// Implementations must produce states identical to n calls of NewState.
// Holistic aggregates (whose states carry their own growing buffers) need
// not implement it — Arena falls back to per-state allocation.
type BulkFunc interface {
	Func
	FillStates(dst []State, stride, n int)
}

// fillStates is the generic bulk fill: one backing []T for n states, with
// an init hook for functions whose zero state is not the empty state.
func fillStates[T any, PT interface {
	*T
	State
}](dst []State, stride, n int, init func(*T)) {
	backing := make([]T, n)
	for i := 0; i < n; i++ {
		if init != nil {
			init(&backing[i])
		}
		dst[i*stride] = PT(&backing[i])
	}
}

// Arena is flat per-(row, spec) aggregate state storage for one MD-join
// phase: states[bi*len(specs)+j] is row bi's accumulator for spec j. One
// []State header block plus one backing array per bulk-allocatable spec
// replace the |B| × |specs| individual allocations of the naive layout,
// and row-major order keeps one base row's states on the same cache lines
// during the probe-and-feed loop.
type Arena struct {
	k      int
	states []State
}

// NewArena allocates states for n rows across the compiled specs.
func NewArena(specs []*Compiled, n int) *Arena {
	k := len(specs)
	a := &Arena{k: k, states: make([]State, n*k)}
	for j, c := range specs {
		if bf, ok := c.Fn.(BulkFunc); ok && n > 0 {
			bf.FillStates(a.states[j:], k, n)
			continue
		}
		for i := 0; i < n; i++ {
			a.states[i*k+j] = c.NewState()
		}
	}
	return a
}

// At returns row bi's state for spec j.
func (a *Arena) At(bi, j int) State { return a.states[bi*a.k+j] }

// Row returns row bi's states, one per spec, as a shared-backing slice.
func (a *Arena) Row(bi int) []State { return a.states[bi*a.k : (bi+1)*a.k] }

// Len returns the number of rows the arena holds states for.
func (a *Arena) Len() int {
	if a.k == 0 {
		return 0
	}
	return len(a.states) / a.k
}

// Specs returns the number of specs per row.
func (a *Arena) Specs() int { return a.k }

// Sized is implemented by states that carry growing buffers (holistic
// aggregates: retained multisets, reservoirs, distinct sets) so memory
// accounting can see the growth. SizeBytes reports the state's current
// footprint including its buffers; states without it are charged their
// fixed struct size.
type Sized interface {
	State
	SizeBytes() int64
}

// SizeBytes estimates the arena's memory footprint: the interface header
// block plus one backing struct per state. Specs whose states implement
// Sized are walked state by state (their buffers grow with the data —
// this is what keeps mdserve's per-view accounting honest for holistic
// aggregates); the rest are charged the struct size of the first row's
// state, shared across rows by bulk allocation.
func (a *Arena) SizeBytes() int64 {
	n := a.Len()
	total := int64(len(a.states)) * 16 // interface headers
	if n == 0 {
		return total
	}
	for j := 0; j < a.k; j++ {
		st := a.states[j]
		if st == nil {
			continue
		}
		if _, ok := st.(Sized); ok {
			for i := 0; i < n; i++ {
				if sz, ok := a.states[i*a.k+j].(Sized); ok {
					total += sz.SizeBytes()
				}
			}
			continue
		}
		t := reflect.TypeOf(st)
		if t.Kind() == reflect.Pointer {
			t = t.Elem()
		}
		total += int64(t.Size()) * int64(n)
	}
	return total
}

// Merge folds another arena of identical shape into this one, state by
// state — the detail-partitioned parallel merge.
func (a *Arena) Merge(o *Arena) {
	for i, st := range a.states {
		st.Merge(o.states[i])
	}
}

// Bulk allocation for the distributive and algebraic built-ins. Their
// states are small fixed-size structs, so a single backing array per spec
// covers the whole base table.

func (countFunc) FillStates(dst []State, stride, n int) {
	fillStates[countState](dst, stride, n, nil)
}

func (sumFunc) FillStates(dst []State, stride, n int) {
	fillStates[sumState](dst, stride, n, nil)
}

func (minFunc) FillStates(dst []State, stride, n int) {
	fillStates[extState](dst, stride, n, func(s *extState) { s.min = true })
}

func (maxFunc) FillStates(dst []State, stride, n int) {
	fillStates[extState](dst, stride, n, nil)
}

func (avgFunc) FillStates(dst []State, stride, n int) {
	fillStates[avgState](dst, stride, n, nil)
}

func (f varFunc) FillStates(dst []State, stride, n int) {
	fillStates[varState](dst, stride, n, func(s *varState) { s.pop = f.pop })
}

func (stddevFunc) FillStates(dst []State, stride, n int) {
	fillStates[stddevState](dst, stride, n, nil)
}

func (firstFunc) FillStates(dst []State, stride, n int) {
	fillStates[firstState](dst, stride, n, nil)
}

func (lastFunc) FillStates(dst []State, stride, n int) {
	fillStates[lastState](dst, stride, n, nil)
}
