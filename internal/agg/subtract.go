// Subtraction support for incremental maintenance: a windowed MD-join
// materialization (core.Incremental) retires expired detail tuples by
// subtracting them from live states instead of re-aggregating the
// surviving window. Only invertible aggregates qualify — count, sum, and
// avg, whose states are sums of per-input contributions. min/max and the
// holistic aggregates are not invertible (removing the current minimum
// says nothing about the next one), so windowed evaluation over them
// falls back to window-partitioned arenas.
package agg

import "mdjoin/internal/table"

// Subtractor is implemented by states whose Add is invertible: Subtract
// removes one previously Added value and Unmerge removes a previously
// Merged accumulator, both restoring the state byte-for-byte (for
// integer inputs; float subtraction is exact only when the intermediate
// sums are — the usual IEEE caveat).
type Subtractor interface {
	State
	// Subtract removes one value previously folded in with Add. NULL
	// inputs are ignored, mirroring Add.
	Subtract(v table.Value)
	// Unmerge removes another accumulator previously folded in with
	// Merge (or whose inputs were Added individually).
	Unmerge(o State)
}

// IsSubtractable reports whether fn's states support Subtract/Unmerge.
func IsSubtractable(fn Func) bool {
	_, ok := fn.NewState().(Subtractor)
	return ok
}

func (s *countState) Subtract(v table.Value) {
	if !v.IsNull() {
		s.n--
	}
}

func (s *countState) Unmerge(o State) { s.n -= o.(*countState).n }

func (s *sumState) Subtract(v table.Value) {
	switch v.Kind() {
	case table.KindInt:
		s.n--
		s.i -= v.AsInt()
		s.f -= float64(v.AsInt())
	case table.KindFloat:
		s.n--
		s.nf--
		s.f -= v.AsFloat()
	}
}

func (s *sumState) Unmerge(o State) {
	os := o.(*sumState)
	s.n -= os.n
	s.nf -= os.nf
	s.i -= os.i
	s.f -= os.f
}

func (s *avgState) Subtract(v table.Value) {
	if !v.IsNumeric() {
		return
	}
	s.n--
	s.sum -= v.AsFloat()
}

func (s *avgState) Unmerge(o State) {
	os := o.(*avgState)
	s.n -= os.n
	s.sum -= os.sum
}

// Unmerge subtracts another arena of identical shape, state by state —
// the bulk inverse of Merge, used by windowed incremental eviction. It
// panics (through the type assertion) if any state is not a Subtractor;
// callers gate on IsSubtractable per spec before choosing this path.
func (a *Arena) Unmerge(o *Arena) {
	for i, st := range a.states {
		st.(Subtractor).Unmerge(o.states[i])
	}
}
