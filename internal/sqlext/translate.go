package sqlext

import (
	"fmt"
	"strings"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/optimizer"
	"mdjoin/internal/table"
)

// Translate compiles a parsed query into an MD-join plan tree following
// the paper's two-phase model: build the base-values relation (group by /
// analyze by), then attach one MD-join phase per aggregation variable —
// the implicit "group" variable for unqualified aggregates (θ = group
// membership plus the WHERE condition) and one per EMF-SQL grouping
// variable (θ = its SUCH THAT condition). Aggregate calls inside
// conditions, HAVING, and the select list are rewritten to the generated
// columns. The resulting tree is un-optimized; pass it through
// optimizer.Optimize to combine independent phases and push selections.
func Translate(q *Query) (optimizer.Plan, error) {
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("sqlext: empty select list")
	}
	if q.From == "" {
		return nil, fmt.Errorf("sqlext: missing FROM relation")
	}

	gvNames := map[string]bool{}
	for _, gv := range q.GroupVars {
		n := strings.ToLower(gv.Name)
		if gvNames[n] {
			return nil, fmt.Errorf("sqlext: duplicate grouping variable %q", gv.Name)
		}
		if n == "r" || n == "b" || n == "base" || n == "detail" || strings.EqualFold(gv.Name, q.From) {
			return nil, fmt.Errorf("sqlext: grouping variable %q collides with a reserved qualifier", gv.Name)
		}
		gvNames[n] = true
	}

	// ---- collect aggregate calls, attributing each to a variable ("" is
	// the implicit group variable).
	type aggKey struct {
		variable string
		name     string
	}
	calls := map[aggKey]*expr.Call{}
	var order []aggKey
	collect := func(e expr.Expr) error {
		for _, c := range expr.CallsOf(e) {
			if _, err := agg.Lookup(c.Fn); err != nil {
				return fmt.Errorf("sqlext: %w", err)
			}
			variable := ""
			if col, ok := c.Arg.(*expr.Col); ok && col.Qual != "" {
				if !gvNames[strings.ToLower(col.Qual)] {
					return fmt.Errorf("sqlext: aggregate %s references undeclared grouping variable %q", c, col.Qual)
				}
				variable = strings.ToLower(col.Qual)
			}
			k := aggKey{variable: variable, name: deriveCallName(c)}
			if _, ok := calls[k]; !ok {
				calls[k] = c
				order = append(order, k)
			}
		}
		return nil
	}
	for _, item := range q.Select {
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}
	for _, gv := range q.GroupVars {
		if gv.Such == nil {
			return nil, fmt.Errorf("sqlext: grouping variable %q has no SUCH THAT condition", gv.Name)
		}
		if err := collect(gv.Such); err != nil {
			return nil, err
		}
	}
	if err := collect(q.Having); err != nil {
		return nil, err
	}
	for _, k := range q.OrderBy {
		if err := collect(k.Expr); err != nil {
			return nil, err
		}
	}
	if len(expr.CallsOf(q.Where)) > 0 {
		return nil, fmt.Errorf("sqlext: aggregate calls are not allowed in WHERE (use HAVING)")
	}

	// ---- base-values plan.
	detail := optimizer.Plan(&optimizer.Scan{Name: q.From})
	baseInput := detail
	if q.Where != nil {
		baseInput = &optimizer.Select{Input: detail, Pred: stripFromQual(q.Where, q.From)}
	}
	var base optimizer.Plan
	cubeLike := false
	switch q.Analyze.Op {
	case "group":
		if len(q.Analyze.Dims) == 0 {
			// Aggregation without grouping: a single-row base (the grand
			// total). Model as a one-row literal with no columns.
			base = &optimizer.Literal{
				Table: table.MustFromRows(table.NewSchema(), []table.Row{{}}),
				Label: "grand-total",
			}
		} else {
			base = &optimizer.BaseValues{Input: baseInput, Op: "group", Dims: q.Analyze.Dims}
		}
	case "cube", "rollup", "unpivot", "groupingsets":
		cubeLike = true
		base = &optimizer.BaseValues{Input: baseInput, Op: q.Analyze.Op, Dims: q.Analyze.Dims, Sets: q.Analyze.Sets}
	case "table":
		cubeLike = true // a user table may contain ALL markers (Example 2.4)
		var cols []engine.ProjCol
		for _, d := range q.Analyze.Dims {
			cols = append(cols, engine.ProjCol{Expr: expr.C(d)})
		}
		base = &optimizer.Project{Input: &optimizer.Scan{Name: q.Analyze.Table}, Cols: cols}
	default:
		return nil, fmt.Errorf("sqlext: unknown analyze-by operation %q", q.Analyze.Op)
	}

	// ---- θ for the implicit group variable: group membership (+ WHERE).
	eq := expr.Eq
	if cubeLike {
		eq = expr.CubeEq
	}
	var groupConj []expr.Expr
	for _, d := range q.Analyze.Dims {
		groupConj = append(groupConj, eq(expr.QC("R", d), expr.C(d)))
	}
	if q.Where != nil {
		groupConj = append(groupConj, qualifyToDetail(q.Where, q.From))
	}
	groupTheta := expr.And(groupConj...)

	// ---- build the MD-join chain: one node per variable that owns
	// aggregates, implicit group variable first, then grouping variables
	// in declaration order. optimizer.Optimize merges what Theorem 4.3
	// allows.
	plan := base
	addNode := func(variable string, theta expr.Expr, detailPlan optimizer.Plan, detailName string) error {
		var specs []agg.Spec
		for _, k := range order {
			if k.variable != variable {
				continue
			}
			c := calls[k]
			spec := agg.Spec{Func: c.Fn, As: k.name}
			if !c.Star && c.Arg != nil {
				arg, err := translateDetailExpr(c.Arg, variable, q, gvNames)
				if err != nil {
					return err
				}
				spec.Arg = arg
			}
			specs = append(specs, spec)
		}
		if len(specs) == 0 {
			return nil
		}
		plan = &optimizer.MDJoin{
			Base:       plan,
			Detail:     detailPlan,
			DetailName: detailName,
			Phases:     []core.Phase{{Aggs: specs, Theta: theta}},
		}
		return nil
	}
	if err := addNode("", groupTheta, detail, q.From); err != nil {
		return nil, err
	}
	for _, gv := range q.GroupVars {
		theta, err := translateSuchThat(gv, q, gvNames)
		if err != nil {
			return nil, err
		}
		if cubeLike {
			theta = cubifyDimEqualities(theta, q.Analyze.Dims)
		}
		// A variable declared over its own relation (Example 3.3's
		// Payments) aggregates that relation instead of the FROM table.
		detailPlan, detailName := detail, q.From
		if gv.Over != "" && !strings.EqualFold(gv.Over, q.From) {
			detailPlan, detailName = optimizer.Plan(&optimizer.Scan{Name: gv.Over}), gv.Over
		}
		if err := addNode(strings.ToLower(gv.Name), theta, detailPlan, detailName); err != nil {
			return nil, err
		}
	}

	// ---- HAVING: a selection over the chained result (aggregate calls
	// become generated columns).
	if q.Having != nil {
		pred := expr.SubstituteCalls(q.Having, func(c *expr.Call) expr.Expr {
			return expr.C(deriveCallName(c))
		})
		plan = &optimizer.Select{Input: plan, Pred: pred}
	}

	// ---- final projection in select order, plus ORDER BY / LIMIT.
	// ORDER BY may reference generated columns that the select list does
	// not carry (order by sum(sale) without selecting it); those are kept
	// as hidden projection columns through the sort and stripped after.
	var cols []engine.ProjCol
	visible := map[string]bool{}
	for _, item := range q.Select {
		e := expr.SubstituteCalls(item.Expr, func(c *expr.Call) expr.Expr {
			return expr.C(deriveCallName(c))
		})
		cols = append(cols, engine.ProjCol{Expr: e, As: item.Name()})
		visible[strings.ToLower(item.Name())] = true
	}

	var keys []optimizer.SortKey
	hidden := false
	for _, k := range q.OrderBy {
		e := expr.SubstituteCalls(k.Expr, func(c *expr.Call) expr.Expr {
			return expr.C(deriveCallName(c))
		})
		for _, c := range expr.ColumnsOf(e) {
			name := strings.ToLower(c.Name)
			if c.Qual == "" && !visible[name] {
				cols = append(cols, engine.ProjCol{Expr: expr.C(c.Name), As: c.Name})
				visible[name] = true
				hidden = true
			}
		}
		keys = append(keys, optimizer.SortKey{Expr: e, Desc: k.Desc})
	}

	plan = &optimizer.Project{Input: plan, Cols: cols}
	if len(keys) > 0 {
		plan = &optimizer.Sort{Input: plan, Keys: keys}
	}
	if q.Limit > 0 {
		plan = &optimizer.Limit{Input: plan, N: q.Limit}
	}
	if hidden {
		var final []engine.ProjCol
		for _, item := range q.Select {
			final = append(final, engine.ProjCol{Expr: expr.C(item.Name()), As: item.Name()})
		}
		plan = &optimizer.Project{Input: plan, Cols: final}
	}
	return plan, nil
}

// translateSuchThat rewrites a grouping variable's condition into an
// MD-join θ: Name-qualified columns become detail references, aggregate
// calls become generated base columns, bare columns stay base attributes.
func translateSuchThat(gv GroupVar, q *Query, gvNames map[string]bool) (expr.Expr, error) {
	// First eliminate aggregate calls (references to other variables'
	// results, e.g. Z.sale > avg(X.sale)).
	e := expr.SubstituteCalls(gv.Such, func(c *expr.Call) expr.Expr {
		return expr.C(deriveCallName(c))
	})
	// Then rewrite column qualifiers.
	var badQual string
	mapping := map[string]expr.Expr{}
	for _, c := range expr.ColumnsOf(e) {
		if c.Qual == "" {
			continue
		}
		lq := strings.ToLower(c.Qual)
		switch {
		case lq == strings.ToLower(gv.Name):
			mapping[strings.ToLower(c.String())] = expr.QC("R", c.Name)
		case strings.EqualFold(c.Qual, q.From),
			gv.Over != "" && strings.EqualFold(c.Qual, gv.Over):
			mapping[strings.ToLower(c.String())] = expr.QC("R", c.Name)
		case gvNames[lq]:
			// Plain column of another grouping variable: not expressible
			// as a single MD-join θ.
			badQual = c.String()
		default:
			badQual = c.String()
		}
	}
	if badQual != "" {
		return nil, fmt.Errorf("sqlext: condition of %q references %s, which is neither the variable itself nor a base attribute (aggregate other variables instead, e.g. avg(X.sale))", gv.Name, badQual)
	}
	return expr.SubstituteCols(e, mapping), nil
}

// translateDetailExpr rewrites an aggregate argument: the owning
// variable's qualifier (or the FROM table's) maps to the detail relation;
// bare columns refer to the detail for the implicit variable and to the
// base for grouping variables (matching EMF-SQL, where avg(X.sale) ranges
// over X's tuples).
func translateDetailExpr(e expr.Expr, variable string, q *Query, gvNames map[string]bool) (expr.Expr, error) {
	var err error
	mapping := map[string]expr.Expr{}
	for _, c := range expr.ColumnsOf(e) {
		lq := strings.ToLower(c.Qual)
		switch {
		case c.Qual == "" && variable == "":
			// Unqualified aggregate argument (sum(sale)): detail column.
			mapping[strings.ToLower(c.Name)] = expr.QC("R", c.Name)
		case lq == variable, strings.EqualFold(c.Qual, q.From):
			mapping[strings.ToLower(c.String())] = expr.QC("R", c.Name)
		case c.Qual == "":
			// Bare column inside a grouping variable's aggregate: base
			// attribute; leave as-is.
		case gvNames[lq]:
			err = fmt.Errorf("sqlext: aggregate argument %s mixes grouping variables", e)
		default:
			err = fmt.Errorf("sqlext: unknown qualifier %q in aggregate argument %s", c.Qual, e)
		}
	}
	if err != nil {
		return nil, err
	}
	return expr.SubstituteCols(e, mapping), nil
}

// cubifyDimEqualities rewrites strict equalities against cube-base
// dimension attributes into cube equalities, so a SUCH THAT condition
// written as "X.prod = prod" (the paper's Example 2.3 style) matches the
// ALL cells of the base-values table. Only equalities whose bare-column
// side names an analyze-by dimension are affected.
func cubifyDimEqualities(e expr.Expr, dims []string) expr.Expr {
	isDim := func(x expr.Expr) bool {
		c, ok := x.(*expr.Col)
		if !ok || c.Qual != "" {
			return false
		}
		for _, d := range dims {
			if strings.EqualFold(d, c.Name) {
				return true
			}
		}
		return false
	}
	switch n := e.(type) {
	case *expr.Binary:
		l := cubifyDimEqualities(n.L, dims)
		r := cubifyDimEqualities(n.R, dims)
		op := n.Op
		if op == expr.OpEq && (isDim(n.L) || isDim(n.R)) {
			op = expr.OpCubeEq
		}
		return &expr.Binary{Op: op, L: l, R: r}
	case *expr.Unary:
		return &expr.Unary{Op: n.Op, X: cubifyDimEqualities(n.X, dims)}
	default:
		return e
	}
}

// stripFromQual rewrites From-qualified columns to bare ones so a WHERE
// predicate compiles against the detail relation alone.
func stripFromQual(e expr.Expr, from string) expr.Expr {
	mapping := map[string]expr.Expr{}
	for _, c := range expr.ColumnsOf(e) {
		if strings.EqualFold(c.Qual, from) {
			mapping[strings.ToLower(c.String())] = expr.C(c.Name)
		}
	}
	return expr.SubstituteCols(e, mapping)
}

// qualifyToDetail rewrites every column of a WHERE predicate to a detail
// reference, for embedding into the implicit group variable's θ.
func qualifyToDetail(e expr.Expr, from string) expr.Expr {
	mapping := map[string]expr.Expr{}
	for _, c := range expr.ColumnsOf(e) {
		if c.Qual == "" || strings.EqualFold(c.Qual, from) {
			mapping[strings.ToLower(c.String())] = expr.QC("R", c.Name)
		}
	}
	return expr.SubstituteCols(e, mapping)
}

// Run parses, translates, optimizes, and executes a dialect query against
// the catalog. WITH-clause members are evaluated first (in order, each
// seeing the previous ones) into an extended catalog. It is the one-call
// entry point cmd/mdq and the examples use; callers that need a deadline
// or per-request execution parameters use RunContext.
func Run(src string, cat optimizer.Catalog) (*table.Table, error) {
	return RunContext(nil, src, cat, core.Options{})
}

// Explain parses, translates and optimizes a query, returning the plan
// rendering (for mdq -explain).
func Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := Translate(q)
	if err != nil {
		return "", err
	}
	before := optimizer.Format(plan)
	after := optimizer.Format(optimizer.Optimize(plan))
	return "-- logical plan --\n" + before + "-- optimized plan --\n" + after, nil
}

// ExplainAnalyze parses, translates, optimizes, and EXECUTES the query,
// returning the optimized plan annotated with runtime counters (actual
// rows, per-node wall time, the MD-join metrics tree, join strategy) plus
// the result table. Unlike Explain it needs the real catalog, since the
// counters come from actually running the plan.
func ExplainAnalyze(src string, cat optimizer.Catalog) (string, *table.Table, error) {
	return ExplainAnalyzeContext(nil, src, cat, core.Options{})
}
