package sqlext

import (
	"fmt"
	"strconv"
	"strings"

	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Parse parses a dialect query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) && !(p.at(tokPunct) && p.cur().text == ";") {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token          { return p.toks[p.i] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

// atKeyword checks the current token against a case-insensitive keyword.
func (p *parser) atKeyword(kw string) bool {
	return p.at(tokIdent) && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expectPunct(s string) error {
	if !p.at(tokPunct) || p.cur().text != s {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) eatPunct(s string) bool {
	if p.at(tokPunct) && p.cur().text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlext: %s (near offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

// reserved words that end an expression-item list.
var clauseKeywords = map[string]bool{
	"from": true, "where": true, "group": true, "analyze": true,
	"such": true, "having": true, "order": true, "limit": true,
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Analyze: AnalyzeSpec{Op: "group"}}
	if p.eatKeyword("with") {
		for {
			if !p.at(tokIdent) {
				return nil, p.errf("expected CTE name after WITH, found %q", p.cur().text)
			}
			name := p.advance().text
			if err := p.expectKeyword("as"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			sub, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			q.With = append(q.With, CTE{Name: name, Query: sub})
			if !p.eatPunct(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if !p.at(tokIdent) {
		return nil, p.errf("expected relation name after FROM, found %q", p.cur().text)
	}
	q.From = p.advance().text

	if p.eatKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}

	switch {
	case p.atKeyword("group"):
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		dims, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		q.Analyze = AnalyzeSpec{Op: "group", Dims: dims}
		// Optional grouping-variable declaration: ": X, Y, Z" (the paper
		// writes "; X,Y,Z"; both separators are accepted). A variable may
		// name its own detail relation: "Y(Payments)".
		if p.eatPunct(":") || p.eatPunct(";") {
			for {
				if !p.at(tokIdent) || clauseKeywords[strings.ToLower(p.cur().text)] {
					return nil, p.errf("expected grouping variable name, found %q", p.cur().text)
				}
				gv := GroupVar{Name: p.advance().text}
				if p.eatPunct("(") {
					if !p.at(tokIdent) {
						return nil, p.errf("expected detail relation inside %s(...)", gv.Name)
					}
					gv.Over = p.advance().text
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
				}
				q.GroupVars = append(q.GroupVars, gv)
				if !p.eatPunct(",") {
					break
				}
			}
		}
	case p.atKeyword("analyze"):
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		spec, err := p.parseAnalyzeSpec()
		if err != nil {
			return nil, err
		}
		q.Analyze = *spec
	}

	if p.eatKeyword("such") {
		if err := p.expectKeyword("that"); err != nil {
			return nil, err
		}
		if err := p.parseSuchThat(q); err != nil {
			return nil, err
		}
	}

	if p.eatKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}

	if p.eatKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.eatKeyword("desc") {
				key.Desc = true
			} else {
				p.eatKeyword("asc")
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.eatPunct(",") {
				break
			}
		}
	}

	if p.eatKeyword("limit") {
		if !p.at(tokNumber) {
			return nil, p.errf("expected row count after LIMIT, found %q", p.cur().text)
		}
		n, err := strconv.Atoi(p.advance().text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT value")
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.eatKeyword("as") {
		if !p.at(tokIdent) {
			return SelectItem{}, p.errf("expected alias after AS, found %q", p.cur().text)
		}
		item.As = p.advance().text
	}
	return item, nil
}

func (p *parser) parseIdentList() ([]string, error) {
	var out []string
	for {
		if !p.at(tokIdent) || clauseKeywords[strings.ToLower(p.cur().text)] {
			if len(out) == 0 {
				return nil, p.errf("expected identifier, found %q", p.cur().text)
			}
			return out, nil
		}
		out = append(out, p.advance().text)
		if !p.eatPunct(",") {
			return out, nil
		}
	}
}

func (p *parser) parseParenIdentList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.eatPunct(")") {
		return nil, nil
	}
	ids, err := p.parseIdentList()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return ids, nil
}

func (p *parser) parseAnalyzeSpec() (*AnalyzeSpec, error) {
	if !p.at(tokIdent) {
		return nil, p.errf("expected base-values operation after ANALYZE BY, found %q", p.cur().text)
	}
	op := strings.ToLower(p.advance().text)
	switch op {
	case "cube", "rollup", "unpivot", "group":
		dims, err := p.parseParenIdentList()
		if err != nil {
			return nil, err
		}
		return &AnalyzeSpec{Op: op, Dims: dims}, nil
	case "grouping":
		if err := p.expectKeyword("sets"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var sets [][]string
		dimSeen := map[string]bool{}
		var dims []string
		for {
			set, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			sets = append(sets, set)
			for _, d := range set {
				if !dimSeen[strings.ToLower(d)] {
					dimSeen[strings.ToLower(d)] = true
					dims = append(dims, d)
				}
			}
			if !p.eatPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &AnalyzeSpec{Op: "groupingsets", Dims: dims, Sets: sets}, nil
	case "table":
		if !p.at(tokIdent) {
			return nil, p.errf("expected table name after ANALYZE BY TABLE, found %q", p.cur().text)
		}
		name := p.advance().text
		dims, err := p.parseParenIdentList()
		if err != nil {
			return nil, err
		}
		return &AnalyzeSpec{Op: "table", Table: name, Dims: dims}, nil
	default:
		// "analyze by T(cols)" — a bare table name, Example 2.4's form.
		dims, err := p.parseParenIdentList()
		if err != nil {
			return nil, err
		}
		return &AnalyzeSpec{Op: "table", Table: op, Dims: dims}, nil
	}
}

// parseSuchThat fills in the θ of each declared grouping variable:
// "X.prod = prod AND ..., Y.prod = prod AND ...". Each comma-separated
// condition is attributed to the variable its qualified columns name; a
// condition may also start with "name :" to be explicit. Variables not yet
// declared (no GROUP BY ":" list) are declared implicitly.
func (p *parser) parseSuchThat(q *Query) error {
	for {
		// Optional explicit "name :" prefix.
		var explicit string
		if p.at(tokIdent) && p.i+1 < len(p.toks) &&
			p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == ":" &&
			!clauseKeywords[strings.ToLower(p.cur().text)] {
			explicit = p.advance().text
			p.advance() // ':'
		}
		cond, err := p.parseExpr()
		if err != nil {
			return err
		}
		name := explicit
		if name == "" {
			name = dominantQualifier(cond, q)
		}
		if name == "" {
			return fmt.Errorf("sqlext: cannot attribute SUCH THAT condition %s to a grouping variable (qualify its detail columns, e.g. X.prod)", cond)
		}
		assigned := false
		for i := range q.GroupVars {
			if strings.EqualFold(q.GroupVars[i].Name, name) {
				q.GroupVars[i].Such = expr.And(q.GroupVars[i].Such, cond)
				assigned = true
				break
			}
		}
		if !assigned {
			// A condition qualified by a variable's detail relation
			// ("Payments.cust = cust" for Y(Payments)) attributes to that
			// variable, provided the relation is unambiguous.
			owner := -1
			for i := range q.GroupVars {
				if strings.EqualFold(q.GroupVars[i].Over, name) {
					if owner >= 0 {
						owner = -1
						break
					}
					owner = i
				}
			}
			if owner >= 0 {
				q.GroupVars[owner].Such = expr.And(q.GroupVars[owner].Such, cond)
				assigned = true
			}
		}
		if !assigned {
			q.GroupVars = append(q.GroupVars, GroupVar{Name: name, Such: cond})
		}
		if !p.eatPunct(",") {
			return nil
		}
	}
}

// dominantQualifier finds the grouping-variable qualifier a SUCH THAT
// condition belongs to: the unique non-FROM qualifier appearing on plain
// columns outside aggregate calls. (Inside calls, other variables may be
// referenced — "Z.sale > avg(X.sale)" belongs to Z.) Declared names break
// remaining ties.
func dominantQualifier(e expr.Expr, q *Query) string {
	// Erase aggregate calls so only genuinely-outside columns remain.
	noCalls := expr.SubstituteCalls(e, func(*expr.Call) expr.Expr {
		return expr.V(table.Null())
	})
	seen := map[string]bool{}
	var outside []string
	for _, c := range expr.ColumnsOf(noCalls) {
		if c.Qual == "" || strings.EqualFold(c.Qual, q.From) {
			continue
		}
		lq := strings.ToLower(c.Qual)
		if seen[lq] {
			continue
		}
		seen[lq] = true
		outside = append(outside, c.Qual)
	}
	if len(outside) == 1 {
		return outside[0]
	}
	if len(outside) > 1 {
		// Prefer an already declared variable.
		var declared []string
		for _, n := range outside {
			for _, gv := range q.GroupVars {
				if strings.EqualFold(gv.Name, n) {
					declared = append(declared, n)
				}
			}
		}
		if len(declared) == 1 {
			return declared[0]
		}
	}
	return ""
}

// ---------------------------------------------------------- expressions

// parseExpr parses with precedence: OR < AND < NOT < comparison/BETWEEN <
// additive < multiplicative < unary < primary.
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = expr.And(l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.eatKeyword("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.Not(x), nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.eatKeyword("between") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return expr.And(expr.Ge(l, lo), expr.Le(l, hi)), nil
	}
	if p.atKeyword("in") || (p.atKeyword("not") && p.i+1 < len(p.toks) &&
		p.toks[p.i+1].kind == tokIdent && strings.EqualFold(p.toks[p.i+1].text, "in")) {
		neg := p.eatKeyword("not")
		p.advance() // IN
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var alts []expr.Expr
		for {
			item, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			alts = append(alts, expr.Eq(l, item))
			if !p.eatPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		out := expr.Or(alts...)
		if neg {
			out = expr.Not(out)
		}
		return out, nil
	}
	if p.eatKeyword("is") {
		neg := p.eatKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		op := expr.OpIsNull
		if neg {
			op = expr.OpIsNotNull
		}
		return &expr.Unary{Op: op, X: l}, nil
	}
	if !p.at(tokPunct) {
		return l, nil
	}
	var op expr.Op
	switch p.cur().text {
	case "=":
		op = expr.OpEq
	case "<>":
		op = expr.OpNe
	case "<":
		op = expr.OpLt
	case "<=":
		op = expr.OpLe
	case ">":
		op = expr.OpGt
	case ">=":
		op = expr.OpGe
	default:
		return l, nil
	}
	p.advance()
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &expr.Binary{Op: op, L: l, R: r}, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct) && (p.cur().text == "+" || p.cur().text == "-") {
		op := expr.OpAdd
		if p.cur().text == "-" {
			op = expr.OpSub
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct) && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		var op expr.Op
		switch p.cur().text {
		case "*":
			op = expr.OpMul
		case "/":
			op = expr.OpDiv
		case "%":
			op = expr.OpMod
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.at(tokPunct) && p.cur().text == "-" {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: expr.OpNeg, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	switch {
	case p.at(tokNumber):
		t := p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return expr.F(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return expr.I(n), nil

	case p.at(tokString):
		return expr.S(p.advance().text), nil

	case p.at(tokPunct) && p.cur().text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil

	case p.at(tokPunct) && p.cur().text == "*":
		// Bare * only inside count(*) — handled by the call path; here it
		// is an error.
		return nil, p.errf("unexpected '*'")

	case p.at(tokIdent):
		t := p.advance()
		switch strings.ToLower(t.text) {
		case "null":
			return expr.V(table.Null()), nil
		case "all":
			return expr.V(table.All()), nil
		case "true":
			return expr.V(table.Bool(true)), nil
		case "false":
			return expr.V(table.Bool(false)), nil
		}
		// Function call?
		if p.at(tokPunct) && p.cur().text == "(" {
			p.advance()
			call := &expr.Call{Fn: t.text}
			if p.eatKeyword("distinct") {
				// f(DISTINCT x) maps onto the distinct-flavored aggregate;
				// only count has one.
				if !strings.EqualFold(call.Fn, "count") {
					return nil, p.errf("DISTINCT is supported only inside count(...)")
				}
				call.Fn = "count_distinct"
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Arg = arg
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.eatPunct("*") {
				call.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Arg = arg
				// f(Z.*) parses the arg as Z . * → the primary path below
				// yields Col{Qual:Z, Name:*}; mark star.
				if c, ok := arg.(*expr.Col); ok && c.Name == "*" {
					call.Star = true
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column?
		if p.at(tokPunct) && p.cur().text == "." {
			p.advance()
			if p.eatPunct("*") {
				return &expr.Col{Qual: t.text, Name: "*"}, nil
			}
			if !p.at(tokIdent) {
				return nil, p.errf("expected column after %q.", t.text)
			}
			return &expr.Col{Qual: t.text, Name: p.advance().text}, nil
		}
		return &expr.Col{Name: t.text}, nil

	default:
		return nil, p.errf("unexpected token %q", p.cur().text)
	}
}
