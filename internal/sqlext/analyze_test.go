package sqlext

import (
	"strings"
	"testing"
)

// TestExplainAnalyze: the dialect-level EXPLAIN ANALYZE must execute the
// query and annotate the optimized plan with the runtime counters the
// executor actually recorded — cardinalities, the MD-join tier, index
// probes and pushdown selectivity.
func TestExplainAnalyze(t *testing.T) {
	const q = "select cust, sum(sale) as total from Sales group by cust"
	text, res, err := ExplainAnalyze(q, catalog())
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, q)
	if res.Len() != want.Len() {
		t.Fatalf("analyzed result rows = %d, want %d", res.Len(), want.Len())
	}
	for _, frag := range []string{
		"-- explain analyze --",
		"actual rows=3", // alice, bob, carol
		"time=",
		"tier=",
		"indexed probes=",
		"pushdown=",
		"phase 0:",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, text)
		}
	}
}

func TestExplainAnalyzeErrors(t *testing.T) {
	if _, _, err := ExplainAnalyze("select", catalog()); err == nil {
		t.Error("parse error must surface")
	}
	if _, _, err := ExplainAnalyze("select x from Missing group by x", catalog()); err == nil {
		t.Error("unknown relation must surface")
	}
}
