package sqlext

import (
	"testing"

	"mdjoin/internal/table"
)

func TestOrderByAndLimit(t *testing.T) {
	out := run(t, "select cust, sum(sale) as total from Sales group by cust order by total desc limit 2")
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", out.Len(), out)
	}
	if out.Value(0, "cust").AsString() != "bob" { // 180
		t.Errorf("first row should be bob: %v", out.Rows[0])
	}
	if out.Value(1, "cust").AsString() != "alice" { // 100
		t.Errorf("second row should be alice: %v", out.Rows[1])
	}
}

func TestOrderByAscendingDefault(t *testing.T) {
	out := run(t, "select cust, sum(sale) as total from Sales group by cust order by total")
	if out.Value(0, "cust").AsString() != "carol" {
		t.Errorf("ascending order should start with carol: %v", out.Rows[0])
	}
}

func TestOrderByAggregateCall(t *testing.T) {
	// ORDER BY may reference the aggregate call directly, not only its
	// alias.
	out := run(t, "select cust from Sales group by cust order by sum(sale) desc limit 1")
	if out.Value(0, "cust").AsString() != "bob" {
		t.Errorf("order by sum(sale): %v", out.Rows[0])
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	out := run(t, "select prod, month, count(*) as n from Sales group by prod, month order by prod desc, month")
	prev := int64(1 << 60)
	var prevMonth int64 = -1
	for i := range out.Rows {
		p := out.Value(i, "prod").AsInt()
		m := out.Value(i, "month").AsInt()
		if p > prev {
			t.Fatalf("prod not descending at row %d", i)
		}
		if p == prev && m < prevMonth {
			t.Fatalf("month not ascending within prod at row %d", i)
		}
		if p != prev {
			prevMonth = -1
		}
		prev, prevMonth = p, m
	}
}

func TestLimitLargerThanResult(t *testing.T) {
	out := run(t, "select cust from Sales group by cust limit 100")
	if out.Len() != 3 {
		t.Errorf("limit beyond result size must keep all rows: %d", out.Len())
	}
}

func TestInPredicate(t *testing.T) {
	out := run(t, "select cust, count(*) as n from Sales where state in ('NY', 'NJ') group by cust")
	for i := range out.Rows {
		if out.Value(i, "cust").AsString() == "carol" {
			t.Errorf("carol only sells in CA; she must not form a group")
		}
	}
	out2 := run(t, "select cust from Sales where state not in ('NY', 'NJ', 'CT', 'CA') group by cust")
	if out2.Len() != 0 {
		t.Errorf("NOT IN over all states should exclude everything: %d rows", out2.Len())
	}
}

func TestInPredicateParses(t *testing.T) {
	q, err := Parse("select cust from Sales where month in (1, 2, 3) group by cust")
	if err != nil {
		t.Fatal(err)
	}
	// Desugars to a disjunction of equalities.
	if q.Where == nil {
		t.Fatal("where missing")
	}
}

func TestOrderByParseErrors(t *testing.T) {
	for _, src := range []string{
		"select cust from Sales group by cust order cust",
		"select cust from Sales group by cust order by",
		"select cust from Sales group by cust limit",
		"select cust from Sales group by cust limit x",
		"select cust from Sales where month in (1,",
		"select cust from Sales where month in 1",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestLimitZeroMeansNoLimit(t *testing.T) {
	q, err := Parse("select cust from Sales group by cust")
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 0 {
		t.Errorf("absent LIMIT should parse as 0 (no limit)")
	}
}

func TestOrderByNullsFirst(t *testing.T) {
	// NULL sorts before real values under the table.Value total order;
	// pin that the dialect inherits it.
	cat := catalog()
	out, err := Run(`select cust, avg(X.sale) as a from Sales group by cust : X
		such that X.cust = cust and X.state = 'CT' order by a`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Value(0, "a").IsNull() {
		t.Errorf("NULL averages should sort first: %v", out.Rows[0])
	}
	_ = table.Null()
}

func TestCountDistinct(t *testing.T) {
	out := run(t, "select cust, count(distinct state) as states from Sales group by cust")
	got := map[string]int64{}
	for i := range out.Rows {
		got[out.Value(i, "cust").AsString()] = out.Value(i, "states").AsInt()
	}
	// alice: NY, NJ → 2; bob: CT, NY, NJ → 3; carol: CA → 1.
	if got["alice"] != 2 || got["bob"] != 3 || got["carol"] != 1 {
		t.Errorf("distinct states = %v", got)
	}
}

func TestDistinctOnlyForCount(t *testing.T) {
	if _, err := Parse("select sum(distinct sale) from Sales group by cust"); err == nil {
		t.Error("sum(distinct) must be rejected")
	}
}

func TestMultiDetailGroupingVariable(t *testing.T) {
	// Example 3.3 in dialect form: total sales and payments per customer,
	// with Y ranging over the Payments relation.
	cat := catalog()
	pay := table.MustFromRows(table.SchemaOf("cust", "month", "amount"), []table.Row{
		{table.Str("alice"), table.Int(1), table.Float(5)},
		{table.Str("alice"), table.Int(2), table.Float(15)},
		{table.Str("bob"), table.Int(1), table.Float(25)},
	})
	cat["Payments"] = pay
	src := `
		select cust, sum(X.sale) as sold, sum(Y.amount) as paid
		from Sales
		group by cust : X, Y(Payments)
		such that X.cust = cust,
		          Y.cust = cust`
	out, err := Run(src, cat)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][2]table.Value{}
	for i := range out.Rows {
		got[out.Value(i, "cust").AsString()] = [2]table.Value{
			out.Value(i, "sold"), out.Value(i, "paid"),
		}
	}
	if v := got["alice"]; v[0].AsFloat() != 100 || v[1].AsFloat() != 20 {
		t.Errorf("alice = %v", v)
	}
	if v := got["bob"]; v[0].AsFloat() != 180 || v[1].AsFloat() != 25 {
		t.Errorf("bob = %v", v)
	}
	if v := got["carol"]; v[0].AsFloat() != 80 || !v[1].IsNull() {
		t.Errorf("carol = %v (no payments → NULL)", v)
	}
}

func TestMultiDetailQualifiedColumns(t *testing.T) {
	// Conditions may qualify by the variable's own relation name too.
	cat := catalog()
	pay := table.MustFromRows(table.SchemaOf("cust", "amount"), []table.Row{
		{table.Str("alice"), table.Float(9)},
	})
	cat["Payments"] = pay
	out, err := Run(`select cust, count(Y.*) as n from Sales
		group by cust : Y(Payments)
		such that Payments.cust = cust`, cat)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Rows {
		if out.Value(i, "cust").AsString() == "alice" {
			if out.Value(i, "n").AsInt() != 1 {
				t.Errorf("alice payments = %v", out.Value(i, "n"))
			}
		}
	}
}

func TestMultiDetailUnknownRelation(t *testing.T) {
	_, err := Run(`select cust, count(Y.*) as n from Sales
		group by cust : Y(Nowhere) such that Y.cust = cust`, catalog())
	if err == nil {
		t.Fatal("unknown detail relation must error at execution")
	}
}

func TestWithClause(t *testing.T) {
	// Build the base-values relation with a CTE, then aggregate against
	// it — the computed-base pattern of Example 2.4.
	src := `
		with BigSpenders as (
			select cust, sum(sale) as total from Sales group by cust having sum(sale) > 90
		)
		select cust, count(*) as n from Sales analyze by BigSpenders(cust)`
	out := run(t, src)
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (alice, bob):\n%s", out.Len(), out)
	}
	for i := range out.Rows {
		if c := out.Value(i, "cust").AsString(); c != "alice" && c != "bob" {
			t.Errorf("unexpected base row %q", c)
		}
	}
}

func TestWithClauseChained(t *testing.T) {
	// A later CTE may reference an earlier one.
	src := `
		with A as (select cust, sum(sale) as total from Sales group by cust),
		     B as (select cust from A where total > 90 group by cust)
		select cust, count(*) as n from Sales analyze by B(cust)`
	out := run(t, src)
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", out.Len(), out)
	}
}

func TestWithNameCollision(t *testing.T) {
	_, err := Run(`with Sales as (select cust from Sales group by cust)
		select cust, count(*) as n from Sales group by cust`, catalog())
	if err == nil {
		t.Fatal("CTE shadowing an existing relation must error")
	}
}

func TestWithParseErrors(t *testing.T) {
	for _, src := range []string{
		"with select cust from Sales group by cust",
		"with X as select cust from Sales group by cust",
		"with X as (select cust from Sales group by cust select",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}
