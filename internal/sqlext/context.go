package sqlext

import (
	"context"
	"fmt"

	"mdjoin/internal/core"
	"mdjoin/internal/optimizer"
	"mdjoin/internal/table"
)

// Prepared is a dialect query compiled once — parsed, translated, and
// optimized — and executable many times. A Prepared is immutable after
// Prepare returns and safe for concurrent ExecContext calls: every
// execution clones the plan tree (optimizer.WithExecOptions) before
// stamping its per-request context, stats sink, and memory budget onto
// the MDJoin nodes. mdserve's plan LRU caches these so repeated query
// texts skip the parse/translate/optimize front end entirely.
type Prepared struct {
	src   string
	query *Query
	plan  optimizer.Plan
	with  []preparedCTE
}

// preparedCTE is one WITH-clause member, compiled like the main query;
// its result extends the catalog at execution time.
type preparedCTE struct {
	name string
	prep *Prepared
}

// Prepare parses, translates, and optimizes a dialect query without
// executing it. WITH-clause members are compiled recursively; their
// results are materialized per execution (each ExecContext sees the
// catalog of that call).
func Prepare(src string) (*Prepared, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return prepareQuery(src, q)
}

func prepareQuery(src string, q *Query) (*Prepared, error) {
	p := &Prepared{src: src, query: q}
	for _, cte := range q.With {
		cp, err := prepareQuery("", cte.Query)
		if err != nil {
			return nil, fmt.Errorf("sqlext: preparing WITH %s: %w", cte.Name, err)
		}
		p.with = append(p.with, preparedCTE{name: cte.Name, prep: cp})
	}
	plan, err := Translate(q)
	if err != nil {
		return nil, err
	}
	p.plan = optimizer.Optimize(plan)
	return p, nil
}

// Src returns the query text the plan was prepared from ("" for inner
// WITH members).
func (p *Prepared) Src() string { return p.src }

// Plan returns the optimized plan tree. The tree is immutable and shared
// across executions; callers that transform it (mdserve's materialized
// views graft a Literal over the MD-join node) must rebuild rather than
// mutate — optimizer.ReplacePlanNode and WithExecOptions both do.
func (p *Prepared) Plan() optimizer.Plan { return p.plan }

// HasWith reports whether the query carries WITH-clause members. Their
// results are materialized per execution, so callers freezing a plan
// against a fixed catalog (materialized views) reject them.
func (p *Prepared) HasWith() bool { return len(p.with) > 0 }

// ExecContext executes the prepared query against the catalog. ctx is
// threaded into every MD-join's Options.Ctx (superseding opt.Ctx when
// both are given), so cancellation aborts detail scans mid-flight; an
// already-expired ctx fails fast before any WITH member runs. The
// remaining opt fields are per-request execution parameters: Stats
// receives the merged MD-join metrics of every node, MemoryBudgetBytes
// bounds each node's aggregate-state footprint (unless the optimizer
// already chose a partitioning for it), and the strategy switches
// (parallelism, Disable*) apply to nodes the optimizer left at defaults.
func (p *Prepared) ExecContext(ctx context.Context, cat optimizer.Catalog, opt core.Options) (*table.Table, error) {
	if ctx == nil {
		ctx = opt.Ctx
	}
	if err := pollCtx(ctx); err != nil {
		return nil, err
	}
	cat, err := p.extendCatalog(ctx, cat, opt)
	if err != nil {
		return nil, err
	}
	return p.stamp(ctx, opt).Execute(cat)
}

// ExplainAnalyzeContext executes the prepared query with EXPLAIN ANALYZE
// instrumentation (per-node actual rows, wall time, MD-join metrics
// trees) and returns the annotated rendering plus the result. The
// instrumentation injects a private Stats per MDJoin node; when opt.Stats
// is non-nil the per-node metrics are additionally merged into it, so
// callers get one query-wide Stats next to the annotated tree.
func (p *Prepared) ExplainAnalyzeContext(ctx context.Context, cat optimizer.Catalog, opt core.Options) (string, *table.Table, error) {
	if ctx == nil {
		ctx = opt.Ctx
	}
	if err := pollCtx(ctx); err != nil {
		return "", nil, err
	}
	cat, err := p.extendCatalog(ctx, cat, opt)
	if err != nil {
		return "", nil, err
	}
	stats := opt.Stats
	opt.Stats = nil
	text, res, err := optimizer.ExplainAnalyzeInto(p.stamp(ctx, opt), cat, stats)
	if err != nil {
		return "", nil, err
	}
	return "-- explain analyze --\n" + text, res, nil
}

// extendCatalog materializes the WITH members (in order, each seeing the
// previous ones) into an extended copy of the catalog; the caller's map
// is untouched. Queries without a WITH clause get the catalog as-is.
func (p *Prepared) extendCatalog(ctx context.Context, cat optimizer.Catalog, opt core.Options) (optimizer.Catalog, error) {
	if len(p.with) == 0 {
		return cat, nil
	}
	ext := make(optimizer.Catalog, len(cat)+len(p.with))
	for k, v := range cat {
		ext[k] = v
	}
	for _, cte := range p.with {
		if _, exists := ext[cte.name]; exists {
			return nil, fmt.Errorf("sqlext: WITH name %q shadows an existing relation", cte.name)
		}
		t, err := cte.prep.ExecContext(ctx, ext, opt)
		if err != nil {
			return nil, fmt.Errorf("sqlext: evaluating WITH %s: %w", cte.name, err)
		}
		ext[cte.name] = t
	}
	return ext, nil
}

// stamp clones the prepared plan and merges the per-request execution
// parameters into every MDJoin node's Options. Node-level settings the
// optimizer chose (aliases, an explicit partitioning or parallelism)
// win over the request's; the request supplies what the plan left open.
func (p *Prepared) stamp(ctx context.Context, opt core.Options) optimizer.Plan {
	return optimizer.WithExecOptions(p.plan, func(o core.Options) core.Options {
		o.Ctx = ctx
		// The shared-scan coordinator is a per-process service, never a
		// plan-level choice: the request's always applies.
		o.Shared = opt.Shared
		if opt.Stats != nil {
			o.Stats = opt.Stats
		}
		if o.MaxBaseRows == 0 && o.MemoryBudgetBytes == 0 {
			o.MemoryBudgetBytes = opt.MemoryBudgetBytes
		}
		if o.Parallelism == 0 && o.DetailParallelism == 0 {
			o.Parallelism = opt.Parallelism
			o.DetailParallelism = opt.DetailParallelism
		}
		if opt.DisableIndex {
			o.DisableIndex = true
		}
		if opt.DisablePushdown {
			o.DisablePushdown = true
		}
		if opt.DisableBatch {
			o.DisableBatch = true
		}
		if opt.DisableColumnar {
			o.DisableColumnar = true
		}
		return o
	})
}

// RunContext is the context-aware Run: parse, translate, optimize, and
// execute with ctx threaded into every MD-join's Options.Ctx. See
// Prepared.ExecContext for the opt semantics. Callers issuing the same
// query text repeatedly should Prepare once instead.
func RunContext(ctx context.Context, src string, cat optimizer.Catalog, opt core.Options) (*table.Table, error) {
	p, err := Prepare(src)
	if err != nil {
		return nil, err
	}
	return p.ExecContext(ctx, cat, opt)
}

// ExplainAnalyzeContext is the context-aware ExplainAnalyze: it executes
// the query with per-node instrumentation under ctx and returns the
// annotated plan rendering plus the result table.
func ExplainAnalyzeContext(ctx context.Context, src string, cat optimizer.Catalog, opt core.Options) (string, *table.Table, error) {
	p, err := Prepare(src)
	if err != nil {
		return "", nil, err
	}
	return p.ExplainAnalyzeContext(ctx, cat, opt)
}

// pollCtx reports the context's error if it is already cancelled; a nil
// context never cancels.
func pollCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
