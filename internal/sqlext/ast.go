package sqlext

import (
	"strings"

	"mdjoin/internal/expr"
)

// Query is the parsed form of a dialect statement.
type Query struct {
	// With holds common table expressions, evaluated in order before the
	// main query; each becomes a catalog relation. CTEs let a query build
	// its base-values table from a computed relation (the Example 2.4
	// pattern without a pre-existing table).
	With []CTE
	// Select lists the output items in order.
	Select []SelectItem
	// From names the detail relation.
	From string
	// Where filters the detail relation (standard SQL semantics: it
	// restricts both base-values construction and unqualified aggregates;
	// grouping variables range over the unfiltered detail, constrained
	// only by their SUCH THAT condition).
	Where expr.Expr
	// Analyze describes the base-values operation: a GROUP BY clause
	// parses to Op "group".
	Analyze AnalyzeSpec
	// GroupVars are the declared grouping variables with their θs.
	GroupVars []GroupVar
	// Having filters the final result (may reference aggregate calls).
	Having expr.Expr
	// OrderBy sorts the final result; Limit (when > 0) truncates it.
	OrderBy []OrderKey
	Limit   int
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Expr expr.Expr
	Desc bool
}

// CTE is one WITH-clause member.
type CTE struct {
	Name  string
	Query *Query
}

// SelectItem is one output column: an expression possibly containing
// aggregate calls, with an optional alias.
type SelectItem struct {
	Expr expr.Expr
	As   string
}

// Name returns the output column name for the item.
func (s SelectItem) Name() string {
	if s.As != "" {
		return s.As
	}
	if c, ok := s.Expr.(*expr.Col); ok {
		return c.Name
	}
	if c, ok := s.Expr.(*expr.Call); ok {
		return deriveCallName(c)
	}
	return s.Expr.String()
}

// AnalyzeSpec is the base-values operation of the analyze-by (or group-by)
// clause.
type AnalyzeSpec struct {
	// Op is one of "group", "cube", "rollup", "unpivot", "groupingsets",
	// "table".
	Op string
	// Dims are the base-values attributes.
	Dims []string
	// Sets holds the grouping sets for Op "groupingsets".
	Sets [][]string
	// Table names the base-values relation for Op "table" (Example 2.4).
	Table string
}

// GroupVar is an EMF-SQL grouping variable: a name and its SUCH THAT
// condition. Inside the condition, Name-qualified columns denote detail
// tuples of this variable's range; bare columns denote base attributes;
// aggregate calls over other variables denote their generated columns.
//
// Over names the detail relation the variable ranges over; empty means
// the FROM relation. "group by cust : X, Y(Payments)" declares X over the
// FROM table and Y over Payments — the multi-detail series of the paper's
// Example 3.3.
type GroupVar struct {
	Name string
	Over string
	Such expr.Expr
}

// deriveCallName derives the generated-column name for an aggregate call:
// count(Z.*) → count_z, avg(X.sale) → avg_x_sale, sum(sale) → sum_sale.
func deriveCallName(c *expr.Call) string {
	fn := strings.ToLower(c.Fn)
	if c.Arg == nil || c.Star {
		if col, ok := c.Arg.(*expr.Col); ok && col.Qual != "" {
			return fn + "_" + strings.ToLower(col.Qual)
		}
		return fn
	}
	if col, ok := c.Arg.(*expr.Col); ok {
		if col.Qual != "" {
			return fn + "_" + strings.ToLower(col.Qual) + "_" + strings.ToLower(col.Name)
		}
		return fn + "_" + strings.ToLower(col.Name)
	}
	s := strings.ToLower(c.Arg.String())
	s = strings.NewReplacer(".", "_", "(", "", ")", "", " ", "").Replace(s)
	return fn + "_" + s
}
