package sqlext

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mdjoin/internal/optimizer"
	"mdjoin/internal/table"
	"mdjoin/internal/workload"
)

// This file fuzzes the whole pipeline: randomly generated dialect queries
// are executed twice — once through the full optimizer with the indexed,
// pushdown-enabled executor, and once with rewrites skipped and every
// MD-join forced to the verbatim Algorithm 3.1 nested loop. The result
// relations must be identical. This is the end-to-end analogue of the
// per-theorem property tests in internal/core.

// queryGen builds random but well-formed dialect queries over the Sales
// schema.
type queryGen struct {
	rng *rand.Rand
}

var genDims = []string{"cust", "prod", "month", "state"}
var genMeasures = []string{"sale", "month", "prod"}
var genAggs = []string{"sum", "count", "avg", "min", "max"}

func (g *queryGen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

func (g *queryGen) dims(n int) []string {
	perm := g.rng.Perm(len(genDims))
	out := make([]string, 0, n)
	for _, i := range perm[:n] {
		out = append(out, genDims[i])
	}
	return out
}

// aggCall renders an aggregate call over an optional grouping variable.
func (g *queryGen) aggCall(gv string) (callExpr, alias string) {
	fn := g.pick(genAggs)
	if fn == "count" {
		if gv != "" {
			return fmt.Sprintf("count(%s.*)", gv), fmt.Sprintf("n_%s", strings.ToLower(gv))
		}
		return "count(*)", "n"
	}
	arg := g.pick(genMeasures)
	if gv != "" {
		return fmt.Sprintf("%s(%s.%s)", fn, gv, arg), fmt.Sprintf("%s_%s_%s", fn, strings.ToLower(gv), arg)
	}
	return fmt.Sprintf("%s(%s)", fn, arg), fmt.Sprintf("%s_%s", fn, arg)
}

// gvCondition renders a SUCH THAT condition for variable gv over base
// dims.
func (g *queryGen) gvCondition(gv string, dims []string) string {
	var conj []string
	for _, d := range dims {
		switch g.rng.Intn(3) {
		case 0:
			conj = append(conj, fmt.Sprintf("%s.%s = %s", gv, d, d))
		case 1:
			if d == "month" {
				off := g.rng.Intn(3) - 1
				if off == 0 {
					conj = append(conj, fmt.Sprintf("%s.month = month", gv))
				} else if off > 0 {
					conj = append(conj, fmt.Sprintf("%s.month = month + %d", gv, off))
				} else {
					conj = append(conj, fmt.Sprintf("%s.month = month - %d", gv, -off))
				}
			} else {
				conj = append(conj, fmt.Sprintf("%s.%s = %s", gv, d, d))
			}
		default:
			// Skip this dim: the variable ranges wider than the group.
		}
	}
	// Guarantee at least one conjunct so attribution works.
	if len(conj) == 0 {
		conj = append(conj, fmt.Sprintf("%s.%s = %s", gv, dims[0], dims[0]))
	}
	// Optional detail-only restriction.
	switch g.rng.Intn(3) {
	case 0:
		conj = append(conj, fmt.Sprintf("%s.state = 'NY'", gv))
	case 1:
		conj = append(conj, fmt.Sprintf("%s.sale > %d", gv, g.rng.Intn(500)))
	}
	return strings.Join(conj, " and ")
}

// generate builds one random query.
func (g *queryGen) generate() string {
	nd := 1 + g.rng.Intn(2)
	dims := g.dims(nd)

	var selects []string
	selects = append(selects, dims...)

	// Plain aggregates.
	na := 1 + g.rng.Intn(2)
	seen := map[string]bool{}
	for i := 0; i < na; i++ {
		call, alias := g.aggCall("")
		if seen[alias] {
			continue
		}
		seen[alias] = true
		selects = append(selects, fmt.Sprintf("%s as %s", call, alias))
	}

	// Grouping variables.
	gvNames := []string{}
	nGV := g.rng.Intn(3)
	for i := 0; i < nGV; i++ {
		gvNames = append(gvNames, string(rune('X'+i)))
	}
	for _, gv := range gvNames {
		call, alias := g.aggCall(gv)
		if seen[alias] {
			continue
		}
		seen[alias] = true
		selects = append(selects, fmt.Sprintf("%s as %s", call, alias))
	}

	q := "select " + strings.Join(selects, ", ") + " from Sales"
	if g.rng.Intn(2) == 0 {
		q += fmt.Sprintf(" where year = %d", 1996+g.rng.Intn(2))
	}

	switch g.rng.Intn(3) {
	case 0:
		q += " group by " + strings.Join(dims, ", ")
	case 1:
		q += " analyze by cube(" + strings.Join(dims, ", ") + ")"
	default:
		q += " analyze by rollup(" + strings.Join(dims, ", ") + ")"
	}
	if len(gvNames) > 0 {
		var conds []string
		for _, gv := range gvNames {
			conds = append(conds, gv+" : "+g.gvCondition(gv, dims))
		}
		q += " such that " + strings.Join(conds, ", ")
	}
	return q
}

func TestFuzzOptimizedMatchesNaive(t *testing.T) {
	detail := workload.Sales(workload.SalesConfig{
		Rows: 400, Customers: 6, Products: 4, Years: 2, FirstYear: 1996, States: 3, Seed: 71,
	})
	cat := optimizer.Catalog{"Sales": detail}
	g := &queryGen{rng: rand.New(rand.NewSource(72))}

	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		src := g.generate()
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated query failed to parse: %v\n%s", trial, err, src)
		}
		plan, err := Translate(q)
		if err != nil {
			t.Fatalf("trial %d: translate: %v\n%s", trial, err, src)
		}
		optimized := optimizer.Optimize(plan)
		fast, err := optimized.Execute(cat)
		if err != nil {
			t.Fatalf("trial %d: optimized execution: %v\n%s", trial, err, src)
		}
		naive := optimizer.ApplyNaive(plan)
		slow, err := naive.Execute(cat)
		if err != nil {
			t.Fatalf("trial %d: naive execution: %v\n%s", trial, err, src)
		}
		if d := fast.Diff(slow); d != "" {
			t.Fatalf("trial %d: optimized and naive disagree: %s\nquery: %s\nplan:\n%s",
				trial, d, src, optimizer.Format(optimized))
		}
	}
}

// approxEqualTables compares two result relations as multisets with a
// relative tolerance on numeric cells (float summation order differs
// across execution strategies).
func approxEqualTables(a, b *table.Table, tol float64) error {
	if !a.Schema.EqualNames(b.Schema) {
		return fmt.Errorf("schemas differ: %v vs %v", a.Schema.Names(), b.Schema.Names())
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	as := a.Clone().SortAll()
	bs := b.Clone().SortAll()
	for i := range as.Rows {
		for j := range as.Rows[i] {
			va, vb := as.Rows[i][j], bs.Rows[i][j]
			if va.IsNumeric() && vb.IsNumeric() {
				d := va.AsFloat() - vb.AsFloat()
				if d < 0 {
					d = -d
				}
				scale := va.AsFloat()
				if scale < 0 {
					scale = -scale
				}
				if scale < 1 {
					scale = 1
				}
				if d/scale > tol {
					return fmt.Errorf("row %d col %d: %v vs %v", i, j, va, vb)
				}
				continue
			}
			if !va.Equal(vb) {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, va, vb)
			}
		}
	}
	return nil
}

func TestFuzzParallelStrategies(t *testing.T) {
	detail := workload.Sales(workload.SalesConfig{
		Rows: 300, Customers: 5, Products: 3, Years: 2, FirstYear: 1996, States: 3, Seed: 73,
	})
	cat := optimizer.Catalog{"Sales": detail}
	g := &queryGen{rng: rand.New(rand.NewSource(74))}

	for trial := 0; trial < 25; trial++ {
		src := g.generate()
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := optimizer.Optimize(plan).Execute(cat)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		for name, cfg := range map[string]optimizer.PhysicalConfig{
			"workers":  {Workers: 3},
			"budgeted": {MemoryBudgetBytes: 4096},
		} {
			got, err := optimizer.ApplyPhysical(optimizer.Optimize(plan), cfg).Execute(cat)
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, name, err, src)
			}
			// Parallel state merging reorders float additions; compare
			// with a relative tolerance.
			if err := approxEqualTables(want, got, 1e-9); err != nil {
				t.Fatalf("trial %d %s: %v\nquery: %s", trial, name, err, src)
			}
		}
	}
}
