package sqlext

import "testing"

// Native fuzz target for the SQL front end: whatever bytes arrive, Parse
// must either return an error or a Query that Translate can consume
// without panicking. Seeds cover the dialect's surface (grouping
// variables, cube/rollup/grouping sets, having, order/limit) and the
// malformed shapes from TestParseErrors, so the mutator starts inside
// the grammar rather than at random ASCII. Run continuously with
//
//	go test ./internal/sqlext -fuzz FuzzParseTranslate
//
// or for the CI smoke slice, make fuzz-smoke.
func FuzzParseTranslate(f *testing.F) {
	seeds := []string{
		"select cust, sum(sale) as total, count(*) as n from Sales group by cust",
		"select prod, month, state, sum(sale) as total from Sales analyze by cube(prod, month, state)",
		"select prod, month, sum(sale) as total from Sales analyze by rollup(prod, month)",
		"select prod, state, count(*) as n from Sales analyze by grouping sets ((prod), (state))",
		"select cust, sum(X.sale) as x_total from Sales group by cust : X such that X.cust = cust and X.state = 'NY'",
		"select cust, sum(R.sale) from Sales group by cust : R such that R.cust = cust",
		"select cust, sum(sale) as total from Sales group by cust having sum(sale) > 90",
		"select cust, sum(sale) as total from Sales group by cust order by total desc limit 2",
		"select cust from Sales where sale between 10 and 20 group by cust",
		"select cust from Sales where not (sale < 5) and (state = 'NY' or state = 'NJ') group by cust",
		"select cust from Sales where sale + 1 * 2 > 3 group by cust",
		// Malformed shapes: the error paths must stay panic-free too.
		"select",
		"select from Sales",
		"select x from Sales where",
		"select sum(sale from Sales",
		"select x from Sales such that",
		"select x from Sales where 'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input; the only contract is no panic
		}
		if q == nil {
			t.Fatalf("Parse(%q) returned nil query without error", src)
		}
		// Translation of any accepted query must not panic; returning an
		// error (unknown aggregate, unbound variable, ...) is fine.
		_, _ = Translate(q)
	})
}
