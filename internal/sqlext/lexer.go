// Package sqlext implements the query language of Section 5 of the paper:
// SQL extended with the "analyze by" clause (which generalizes GROUP BY to
// any base-values-producing operation — cube, rollup, grouping sets,
// unpivot, or an arbitrary table) and EMF-SQL grouping variables with SUCH
// THAT conditions [Cha99]. Queries translate to MD-join plan trees
// (internal/optimizer) executed by internal/core.
//
// Grammar (case-insensitive keywords):
//
//	query      := SELECT items FROM ident [WHERE pred]
//	              [ groupClause | analyzeClause ]
//	              [ SUCH THAT gv ("," gv)* ]
//	              [ HAVING pred ]
//	items      := item ("," item)*
//	item       := expr [AS ident]
//	groupClause:= GROUP BY identList [ ":" identList ]    -- ": X, Y" declares grouping variables
//	analyzeClause := ANALYZE BY baseOp
//	baseOp     := CUBE "(" identList ")" | ROLLUP "(" identList ")"
//	            | UNPIVOT "(" identList ")"
//	            | GROUPING SETS "(" set ("," set)* ")"    where set := "(" [identList] ")"
//	            | GROUP "(" identList ")"
//	            | TABLE ident "(" identList ")"           -- Example 2.4: base from a table
//	gv         := ident ":" pred                          -- grouping variable and its θ
//	pred/expr  := SQL-ish expressions with AND/OR/NOT, comparisons,
//	              + - * / %, idents, quals (X.col), literals, BETWEEN,
//	              aggregate calls f(X.col) / f(col) / count(X.*) / count(*)
package sqlext

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind discriminates lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single/double char punctuation: ( ) , . : ; * = <> <= >= < > + - / %
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

// lexer tokenizes dialect text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front (queries are small).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil

	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				// A trailing ".*" (count(Z.*)) must not swallow the dot.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
					break
				}
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{}, fmt.Errorf("sqlext: unterminated string literal at offset %d", start)

	case strings.ContainsRune("(),.:;*=+-/%", rune(c)):
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], pos: start}, nil

	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], pos: start}, nil

	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokPunct, text: "<>", pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlext: unexpected '!' at offset %d", start)

	default:
		return token{}, fmt.Errorf("sqlext: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}
