package sqlext

import (
	"strings"
	"testing"

	"mdjoin/internal/expr"
	"mdjoin/internal/optimizer"
	"mdjoin/internal/table"
)

// catalog builds the small Sales fixture shared by the dialect tests.
func catalog() optimizer.Catalog {
	schema := table.SchemaOf("cust", "prod", "month", "year", "state", "sale")
	rows := []table.Row{
		{table.Str("alice"), table.Int(1), table.Int(1), table.Int(1997), table.Str("NY"), table.Float(10)},
		{table.Str("alice"), table.Int(1), table.Int(2), table.Int(1997), table.Str("NY"), table.Float(30)},
		{table.Str("alice"), table.Int(1), table.Int(3), table.Int(1997), table.Str("NY"), table.Float(20)},
		{table.Str("alice"), table.Int(2), table.Int(1), table.Int(1997), table.Str("NJ"), table.Float(40)},
		{table.Str("bob"), table.Int(1), table.Int(1), table.Int(1997), table.Str("CT"), table.Float(50)},
		{table.Str("bob"), table.Int(1), table.Int(2), table.Int(1997), table.Str("NY"), table.Float(60)},
		{table.Str("bob"), table.Int(2), table.Int(3), table.Int(1996), table.Str("NJ"), table.Float(70)},
		{table.Str("carol"), table.Int(3), table.Int(2), table.Int(1997), table.Str("CA"), table.Float(80)},
	}
	return optimizer.Catalog{"Sales": table.MustFromRows(schema, rows)}
}

func run(t *testing.T, src string) *table.Table {
	t.Helper()
	out, err := Run(src, catalog())
	if err != nil {
		t.Fatalf("running %q: %v", src, err)
	}
	return out
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"select",
		"select from Sales",
		"select x Sales",
		"select x from",
		"select x from Sales where",
		"select x from Sales group prod",
		"select sum(sale from Sales",
		"select x from Sales analyze by grouping(prod)",
		"select x from Sales such that",
		"select x from Sales where 'unterminated",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSimpleGroupBy(t *testing.T) {
	out := run(t, "select cust, sum(sale) as total, count(*) as n from Sales group by cust")
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", out.Len(), out)
	}
	got := map[string]float64{}
	for i := range out.Rows {
		got[out.Value(i, "cust").AsString()] = out.Value(i, "total").AsFloat()
	}
	if got["alice"] != 100 || got["bob"] != 180 || got["carol"] != 80 {
		t.Errorf("totals = %v", got)
	}
}

func TestWhereAppliesToGroupsAndAggregates(t *testing.T) {
	out := run(t, "select cust, count(*) as n from Sales where year = 1996 group by cust")
	// Only bob has 1996 sales, so only bob forms a group.
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", out.Len(), out)
	}
	if out.Value(0, "cust").AsString() != "bob" || out.Value(0, "n").AsInt() != 1 {
		t.Errorf("got %v", out.Rows[0])
	}
}

func TestGrandTotal(t *testing.T) {
	out := run(t, "select sum(sale) as total from Sales")
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1", out.Len())
	}
	if out.Value(0, "total").AsFloat() != 360 {
		t.Errorf("total = %v, want 360", out.Value(0, "total"))
	}
}

func TestExample21CubeBy(t *testing.T) {
	// Example 2.1 / Example 5.1: analyze by cube.
	out := run(t, "select prod, month, state, sum(sale) as total from Sales analyze by cube(prod, month, state)")
	// Apex row must aggregate everything.
	apexSeen := false
	for i := range out.Rows {
		if out.Value(i, "prod").IsAll() && out.Value(i, "month").IsAll() && out.Value(i, "state").IsAll() {
			apexSeen = true
			if v := out.Value(i, "total").AsFloat(); v != 360 {
				t.Errorf("apex total = %v, want 360", v)
			}
		}
	}
	if !apexSeen {
		t.Fatalf("no apex (ALL, ALL, ALL) row:\n%s", out)
	}
}

func TestExample21Unpivot(t *testing.T) {
	out := run(t, "select prod, month, state, sum(sale) as total from Sales analyze by unpivot(prod, month, state)")
	// Marginals only: every row has exactly one non-ALL dimension.
	for i, r := range out.Rows {
		nonAll := 0
		for _, c := range []string{"prod", "month", "state"} {
			if !out.Value(i, c).IsAll() {
				nonAll++
			}
		}
		if nonAll != 1 {
			t.Errorf("row %v has %d non-ALL dims, want 1", r, nonAll)
		}
	}
}

func TestExample22TriState(t *testing.T) {
	// Example 2.2 via grouping variables: per-customer averages in NY, NJ,
	// CT; customers without sales in a state get NULL.
	src := `
		select cust, avg(X.sale) as avg_ny, avg(Y.sale) as avg_nj, avg(Z.sale) as avg_ct
		from Sales
		group by cust : X, Y, Z
		such that X.cust = cust and X.state = 'NY',
		          Y.cust = cust and Y.state = 'NJ',
		          Z.cust = cust and Z.state = 'CT'`
	out := run(t, src)
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3 (every customer appears):\n%s", out.Len(), out)
	}
	vals := map[string][3]table.Value{}
	for i := range out.Rows {
		vals[out.Value(i, "cust").AsString()] = [3]table.Value{
			out.Value(i, "avg_ny"), out.Value(i, "avg_nj"), out.Value(i, "avg_ct"),
		}
	}
	a := vals["alice"]
	if a[0].AsFloat() != 20 { // (10+30+20)/3
		t.Errorf("alice avg_ny = %v, want 20", a[0])
	}
	if a[1].AsFloat() != 40 {
		t.Errorf("alice avg_nj = %v, want 40", a[1])
	}
	if !a[2].IsNull() {
		t.Errorf("alice avg_ct = %v, want NULL (outer-join semantics)", a[2])
	}
	c := vals["carol"]
	if !c[0].IsNull() || !c[1].IsNull() || !c[2].IsNull() {
		t.Errorf("carol = %v, want all NULL", c)
	}
}

func TestExample23CountAboveCubeAverage(t *testing.T) {
	// Example 2.3: over the cube, count sales above the cell's average.
	src := `
		select prod, month, avg(X.sale) as avg_sale, count(Y.*) as n_above
		from Sales
		analyze by cube(prod, month)
		such that X.prod = prod and X.month = month,
		          Y.prod = prod and Y.month = month and Y.sale > avg(X.sale)`
	out := run(t, src)
	// Apex: avg = 45, sales above 45: 50, 60, 70, 80 → 4.
	for i := range out.Rows {
		if out.Value(i, "prod").IsAll() && out.Value(i, "month").IsAll() {
			if v := out.Value(i, "avg_sale").AsFloat(); v != 45 {
				t.Errorf("apex avg = %v, want 45", v)
			}
			if v := out.Value(i, "n_above").AsInt(); v != 4 {
				t.Errorf("apex n_above = %v, want 4", v)
			}
		}
	}
}

func TestExample25Window(t *testing.T) {
	// Example 2.5: per (prod, month) of 1997, count sales between the
	// previous and following month's averages.
	src := `
		select prod, month, count(Z.*) as n
		from Sales
		where year = 1997
		group by prod, month : X, Y, Z
		such that X.prod = prod and X.month = month - 1,
		          Y.prod = prod and Y.month = month + 1,
		          Z.prod = prod and Z.month = month and Z.sale > avg(X.sale) and Z.sale < avg(Y.sale)`
	out := run(t, src)
	// Group (prod 1, month 2): X avg = avg(month1 sales of prod1) =
	// (10+50)/2 = 30; Y avg = avg(month3 of prod1) = 20. Sales in month 2
	// of prod 1: 30, 60 — between (30, 20): none (empty interval).
	found := false
	for i := range out.Rows {
		if out.Value(i, "prod").AsInt() == 1 && out.Value(i, "month").AsInt() == 2 {
			found = true
			if v := out.Value(i, "n").AsInt(); v != 0 {
				t.Errorf("(1,2) n = %d, want 0", v)
			}
		}
	}
	if !found {
		t.Fatalf("group (prod=1, month=2) missing:\n%s", out)
	}
}

func TestExample41YearRanges(t *testing.T) {
	// Example 4.1: totals for 1994–1996 vs a later year, via two grouping
	// variables with R-only range conjuncts (Theorem 4.2 fodder).
	src := `
		select prod, sum(X.sale) as total_94_96, sum(Y.sale) as total_97
		from Sales
		group by prod : X, Y
		such that X.prod = prod and X.year >= 1994 and X.year <= 1996,
		          Y.prod = prod and Y.year = 1997`
	out := run(t, src)
	for i := range out.Rows {
		if out.Value(i, "prod").AsInt() == 2 {
			if v := out.Value(i, "total_94_96").AsFloat(); v != 70 {
				t.Errorf("prod 2 total_94_96 = %v, want 70", v)
			}
			if v := out.Value(i, "total_97").AsFloat(); v != 40 {
				t.Errorf("prod 2 total_97 = %v, want 40", v)
			}
		}
	}
}

func TestAnalyzeByTable(t *testing.T) {
	// Example 2.4: base values from a precomputed table T.
	cat := catalog()
	points := table.MustFromRows(table.SchemaOf("prod", "month"), []table.Row{
		{table.Int(1), table.Int(2)},
		{table.Int(9), table.Int(9)}, // no matching sales
		{table.All(), table.Int(1)},  // a cube cell: all products, month 1
	})
	cat["T"] = points
	out, err := Run(`select prod, month, sum(sale) as total from Sales analyze by T(prod, month)`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3 (one per base point):\n%s", out.Len(), out)
	}
	byKey := map[string]table.Value{}
	for i := range out.Rows {
		k := out.Value(i, "prod").String() + "/" + out.Value(i, "month").String()
		byKey[k] = out.Value(i, "total")
	}
	if v := byKey["1/2"]; v.AsFloat() != 90 { // 30 + 60
		t.Errorf("(1,2) total = %v, want 90", v)
	}
	if v := byKey["9/9"]; !v.IsNull() {
		t.Errorf("(9,9) total = %v, want NULL", v)
	}
	if v := byKey["ALL/1"]; v.AsFloat() != 100 { // 10+40+50
		t.Errorf("(ALL,1) total = %v, want 100", v)
	}
}

func TestHaving(t *testing.T) {
	out := run(t, "select cust, sum(sale) as total from Sales group by cust having sum(sale) > 90")
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (alice 100, bob 180):\n%s", out.Len(), out)
	}
}

func TestGroupingSets(t *testing.T) {
	out := run(t, "select prod, state, count(*) as n from Sales analyze by grouping sets ((prod), (state))")
	for i := range out.Rows {
		pAll := out.Value(i, "prod").IsAll()
		sAll := out.Value(i, "state").IsAll()
		if pAll == sAll {
			t.Errorf("row %d: exactly one of prod/state must be ALL: %v", i, out.Rows[i])
		}
	}
}

func TestExplainShowsCombining(t *testing.T) {
	src := `
		select cust, sum(X.sale) as ny, sum(Y.sale) as nj
		from Sales
		group by cust : X, Y
		such that X.cust = cust and X.state = 'NY',
		          Y.cust = cust and Y.state = 'NJ'`
	out, err := Explain(src)
	if err != nil {
		t.Fatal(err)
	}
	// Optimized plan must contain a single MD-join node with two phases
	// (Theorem 4.3 combining): the node renders both aggregates in one
	// MDJoin line.
	optPart := out[strings.Index(out, "-- optimized plan --"):]
	if strings.Count(optPart, "MDJoin") != 1 {
		t.Errorf("optimized plan should have one MDJoin node:\n%s", out)
	}
}

func TestTranslateRejectsBadQueries(t *testing.T) {
	for _, src := range []string{
		// aggregate in WHERE
		"select cust from Sales where sum(sale) > 10 group by cust",
		// undeclared grouping variable
		"select cust, sum(Q.sale) from Sales group by cust",
		// grouping variable without SUCH THAT
		"select cust, sum(X.sale) from Sales group by cust : X",
		// reserved variable name
		"select cust, sum(R.sale) from Sales group by cust : R such that R.cust = cust",
		// unknown aggregate function
		"select cust, frob(sale) from Sales group by cust",
	} {
		q, err := Parse(src)
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := Translate(q); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", src)
		}
	}
}

func TestQualifiedColumnsInTheta(t *testing.T) {
	// The paper writes detail references as Sales.cust; both that and the
	// grouping-variable form must work.
	out := run(t, `select cust, count(*) as n from Sales where Sales.year = 1997 group by cust`)
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", out.Len(), out)
	}
}

func TestExprRoundTrip(t *testing.T) {
	// Parsed expressions must survive a String() → Parse round trip.
	srcs := []string{
		"select cust from Sales where sale > 10 and (state = 'NY' or state = 'NJ') group by cust",
		"select cust from Sales where sale between 10 and 20 group by cust",
		"select cust from Sales where not (sale < 5) group by cust",
		"select cust from Sales where sale + 1 * 2 > 3 group by cust",
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		rendered := q.Where.String()
		q2, err := Parse("select cust from Sales where " + rendered + " group by cust")
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if q2.Where.String() != rendered {
			t.Errorf("round trip changed %q to %q", rendered, q2.Where.String())
		}
	}
}

func TestSelectExpressionOverAggregates(t *testing.T) {
	// Select items may combine aggregate calls arithmetically.
	out := run(t, `select cust, sum(sale) / count(*) as mean from Sales group by cust`)
	for i := range out.Rows {
		if out.Value(i, "cust").AsString() == "carol" {
			if v := out.Value(i, "mean").AsFloat(); v != 80 {
				t.Errorf("carol mean = %v, want 80", v)
			}
		}
	}
}

func TestExpressionProperty_ParserPrecedence(t *testing.T) {
	// 2 + 3 * 4 = 14, not 20.
	q, err := Parse("select cust from Sales where sale = 2 + 3 * 4 group by cust")
	if err != nil {
		t.Fatal(err)
	}
	bin := q.Where.(*expr.Binary)
	v, ok := expr.EvalConst(bin.R)
	if !ok {
		t.Fatal("rhs should be constant")
	}
	if v.AsInt() != 14 {
		t.Errorf("2+3*4 = %v, want 14", v)
	}
}
