package optimizer

import (
	"strings"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

func TestCatalogLookup(t *testing.T) {
	tt := table.New(table.SchemaOf("a"))
	cat := Catalog{"Sales": tt}
	if got, err := cat.Lookup("sales"); err != nil || got != tt {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := cat.Lookup("nope"); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestScanAndLiteral(t *testing.T) {
	tt := table.MustFromRows(table.SchemaOf("a"), []table.Row{{table.Int(1)}})
	cat := Catalog{"T": tt}
	out := mustExec(t, &Scan{Name: "T"}, cat)
	if out.Len() != 1 {
		t.Error("scan")
	}
	out = mustExec(t, &Literal{Table: tt, Label: "lit"}, cat)
	if out.Len() != 1 {
		t.Error("literal")
	}
	if _, err := (&Scan{Name: "missing"}).Execute(cat); err == nil {
		t.Error("missing scan should error")
	}
}

func TestSortNode(t *testing.T) {
	tt := table.MustFromRows(table.SchemaOf("a", "b"), []table.Row{
		{table.Int(2), table.Str("x")},
		{table.Int(1), table.Str("z")},
		{table.Int(1), table.Str("y")},
	})
	cat := Catalog{"T": tt}
	out := mustExec(t, &Sort{
		Input: &Scan{Name: "T"},
		Keys:  []SortKey{{Expr: expr.C("a")}, {Expr: expr.C("b"), Desc: true}},
	}, cat)
	want := []string{"z", "y", "x"}
	for i, w := range want {
		if out.Rows[i][1].AsString() != w {
			t.Fatalf("row %d = %v, want b=%s", i, out.Rows[i], w)
		}
	}
	// Input left untouched.
	if tt.Rows[0][0].AsInt() != 2 {
		t.Error("Sort must not mutate its input")
	}
}

func TestLimitNode(t *testing.T) {
	tt := table.MustFromRows(table.SchemaOf("a"), []table.Row{
		{table.Int(1)}, {table.Int(2)}, {table.Int(3)},
	})
	cat := Catalog{"T": tt}
	out := mustExec(t, &Limit{Input: &Scan{Name: "T"}, N: 2}, cat)
	if out.Len() != 2 {
		t.Errorf("limit 2 → %d rows", out.Len())
	}
	out = mustExec(t, &Limit{Input: &Scan{Name: "T"}, N: 10}, cat)
	if out.Len() != 3 {
		t.Errorf("limit beyond size → %d rows", out.Len())
	}
}

func TestUnionNode(t *testing.T) {
	tt := table.MustFromRows(table.SchemaOf("a"), []table.Row{{table.Int(1)}})
	cat := Catalog{"T": tt}
	out := mustExec(t, &Union{Inputs: []Plan{&Scan{Name: "T"}, &Scan{Name: "T"}}}, cat)
	if out.Len() != 2 {
		t.Errorf("union all → %d rows", out.Len())
	}
}

func TestBaseValuesOps(t *testing.T) {
	tt := table.MustFromRows(table.SchemaOf("a", "b"), []table.Row{
		{table.Int(1), table.Int(10)},
		{table.Int(1), table.Int(20)},
		{table.Int(2), table.Int(10)},
	})
	cat := Catalog{"T": tt}
	cases := map[string]int{
		"group":  2, // distinct a
		"cube":   3, // (1),(2),(ALL)
		"rollup": 3, // (1),(2),(ALL)
	}
	for op, want := range cases {
		out := mustExec(t, &BaseValues{Input: &Scan{Name: "T"}, Op: op, Dims: []string{"a"}}, cat)
		if out.Len() != want {
			t.Errorf("%s(a) = %d rows, want %d\n%s", op, out.Len(), want, out)
		}
	}
	if _, err := (&BaseValues{Input: &Scan{Name: "T"}, Op: "bogus", Dims: []string{"a"}}).Execute(cat); err == nil {
		t.Error("unknown base-values op should error")
	}
}

func TestGroupByAndJoinNodes(t *testing.T) {
	tt := table.MustFromRows(table.SchemaOf("k", "v"), []table.Row{
		{table.Int(1), table.Float(5)},
		{table.Int(1), table.Float(7)},
	})
	cat := Catalog{"T": tt}
	g := mustExec(t, &GroupBy{
		Input: &Scan{Name: "T"},
		Keys:  []string{"k"},
		Aggs:  []agg.Spec{agg.NewSpec("sum", expr.C("v"), "s")},
	}, cat)
	if g.Len() != 1 || g.Value(0, "s").AsFloat() != 12 {
		t.Errorf("group by: %v", g.Rows)
	}
	j := mustExec(t, &Join{
		Left:   &Scan{Name: "T"},
		Right:  &Scan{Name: "T"},
		LAlias: "l", RAlias: "r",
		On:   expr.Eq(expr.QC("l", "k"), expr.QC("r", "k")),
		Kind: engine.InnerJoin,
	}, cat)
	if j.Len() != 4 {
		t.Errorf("self-join rows = %d, want 4", j.Len())
	}
}

func TestFormatRendersTree(t *testing.T) {
	plan := &Select{
		Input: &Scan{Name: "Sales"},
		Pred:  expr.Eq(expr.C("year"), expr.I(1997)),
	}
	out := Format(plan)
	if !strings.Contains(out, "Select") || !strings.Contains(out, "  Scan Sales") {
		t.Errorf("format:\n%s", out)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	plan := &Union{Inputs: []Plan{&Scan{Name: "A"}, &Scan{Name: "B"}}}
	n := 0
	Walk(plan, func(Plan) { n++ })
	if n != 3 {
		t.Errorf("walk visited %d nodes, want 3", n)
	}
}
