package optimizer

import (
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/expr"
)

func TestApplyPhysicalSetsOptions(t *testing.T) {
	plan := mdNode(
		expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
		[]agg.Spec{agg.NewSpec("count", nil, "n")},
	)
	out := ApplyPhysical(plan, PhysicalConfig{Workers: 4})
	m := out.(*MDJoin)
	if m.Opt.DetailParallelism != 4 {
		t.Errorf("workers not applied: %+v", m.Opt)
	}

	out2 := ApplyPhysical(plan, PhysicalConfig{MemoryBudgetBytes: 1 << 20, Workers: 4})
	m2 := out2.(*MDJoin)
	if m2.Opt.MemoryBudgetBytes != 1<<20 {
		t.Errorf("budget not applied: %+v", m2.Opt)
	}
	if m2.Opt.DetailParallelism != 0 {
		t.Errorf("budget must win over parallelism: %+v", m2.Opt)
	}

	// The original plan is untouched.
	if plan.Opt.DetailParallelism != 0 || plan.Opt.MemoryBudgetBytes != 0 {
		t.Errorf("ApplyPhysical mutated its input")
	}
}

func TestApplyPhysicalExecutesCorrectly(t *testing.T) {
	cat := testCatalog(9, 400)
	plan := mdNode(
		expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
		[]agg.Spec{agg.NewSpec("sum", expr.QC("Sales", "sale"), "total")},
	)
	want := mustExec(t, plan, cat)
	got := mustExec(t, ApplyPhysical(plan, PhysicalConfig{Workers: 3}), cat)
	if d := want.Diff(got); d != "" {
		t.Fatalf("physical decoration changed the result: %s", d)
	}
	got2 := mustExec(t, ApplyPhysical(plan, PhysicalConfig{MemoryBudgetBytes: 1024}), cat)
	if d := want.Diff(got2); d != "" {
		t.Fatalf("budgeted execution changed the result: %s", d)
	}
}
