package optimizer

import (
	"strings"
	"sync/atomic"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// execCounter wraps a subtree and counts how many times it executes. Its
// rendering is position-independent, so identical instances compare equal
// under ShareCommon's structural key.
type execCounter struct {
	n     *atomic.Int32
	inner Plan
}

func (e *execCounter) Children() []Plan { return []Plan{e.inner} }
func (e *execCounter) Describe() string { return "ExecCounter" }
func (e *execCounter) Execute(cat Catalog) (*table.Table, error) {
	e.n.Add(1)
	return e.inner.Execute(cat)
}

// TestShareCommonCacheHitExecutesOnce pins the cache-hit path: a subtree
// occurring three times must execute exactly once, with the later
// occurrences served from the materialization cache.
func TestShareCommonCacheHitExecutesOnce(t *testing.T) {
	cat := testCatalog(31, 200)
	var n atomic.Int32
	mk := func() Plan { return &execCounter{n: &n, inner: &Scan{Name: "Sales"}} }
	plan := &Union{Inputs: []Plan{mk(), mk(), mk()}}

	want := mustExec(t, plan, cat)
	if got := n.Load(); got != 3 {
		t.Fatalf("unshared plan executed the subtree %d times, want 3", got)
	}

	n.Store(0)
	shared, err := ShareCommon(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("ShareCommon executed the repeated subtree %d times, want 1 (cache hits after the first)", got)
	}
	got := mustExec(t, shared, cat)
	if got2 := n.Load(); got2 != 1 {
		t.Errorf("executing the shared plan re-ran the subtree (%d executions total)", got2)
	}
	if d := want.Diff(got); d != "" {
		t.Fatalf("sharing changed the result: %s", d)
	}
}

// TestShareCommonPropagatesExecutionError: a repeated subtree that fails
// to execute must surface its error out of ShareCommon, not panic or
// return a half-rewritten plan.
func TestShareCommonPropagatesExecutionError(t *testing.T) {
	cat := testCatalog(32, 50)
	bad := func() Plan {
		return &Select{Input: &Scan{Name: "Missing"}, Pred: expr.Eq(expr.C("year"), expr.I(1997))}
	}
	plan := &Union{Inputs: []Plan{bad(), bad()}}

	shared, err := ShareCommon(plan, cat)
	if err == nil {
		t.Fatal("ShareCommon swallowed the execution error of a shared subtree")
	}
	if !strings.Contains(err.Error(), "Missing") {
		t.Errorf("error %q does not name the unknown relation", err)
	}
	if shared != nil {
		t.Errorf("got a non-nil plan alongside the error:\n%s", Format(shared))
	}
}

// TestShareCommonPropagatesNestedError drives the error through the
// nested path: the failing shared subtree sits inside another shared
// subtree, so the error must thread through the child-rewrite closure of
// the outer materialization rather than be dropped by it.
func TestShareCommonPropagatesNestedError(t *testing.T) {
	cat := testCatalog(33, 50)
	inner := func() Plan {
		return &Select{Input: &Scan{Name: "Missing"}, Pred: expr.Eq(expr.C("year"), expr.I(1997))}
	}
	outer := func() Plan {
		return &GroupBy{
			Input: inner(),
			Keys:  []string{"cust"},
			Aggs:  []agg.Spec{agg.NewSpec("count", nil, "n")},
		}
	}
	// Both the GroupBy and its inner Select repeat; rewriting the outer
	// shared subtree recurses into the inner one, which errors.
	plan := &Union{Inputs: []Plan{outer(), outer()}}

	shared, err := ShareCommon(plan, cat)
	if err == nil {
		t.Fatal("nested shared-subtree error was swallowed")
	}
	if !strings.Contains(err.Error(), "Missing") {
		t.Errorf("error %q does not name the unknown relation", err)
	}
	if shared != nil {
		t.Errorf("got a non-nil plan alongside the error:\n%s", Format(shared))
	}
}

// benchSharePlan builds the dependent double MD-join whose filtered
// detail subtree repeats three times — the shape ShareCommon exists for.
func benchSharePlan() Plan {
	filtered := func() Plan {
		return &Select{
			Input: &Scan{Name: "Sales"},
			Pred:  expr.Eq(expr.C("year"), expr.I(1997)),
		}
	}
	inner := &MDJoin{
		Base:       &BaseValues{Input: filtered(), Op: "group", Dims: []string{"cust"}},
		Detail:     filtered(),
		DetailName: "Sales",
		Phases: []core.Phase{{
			Aggs:  []agg.Spec{agg.NewSpec("avg", expr.QC("Sales", "sale"), "avg_sale")},
			Theta: expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
		}},
	}
	return &MDJoin{
		Base:       inner,
		Detail:     filtered(),
		DetailName: "Sales",
		Phases: []core.Phase{{
			Aggs: []agg.Spec{agg.NewSpec("count", nil, "n_above")},
			Theta: expr.And(
				expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
				expr.Gt(expr.QC("Sales", "sale"), expr.C("avg_sale"))),
		}},
	}
}

// BenchmarkShareCommon compares executing the repeated-subtree plan as-is
// against sharing first: the shared run pays ShareCommon's rewrite and
// one materialization instead of three subtree executions.
func BenchmarkShareCommon(b *testing.B) {
	cat := testCatalog(34, 20_000)
	plan := benchSharePlan()

	b.Run("unshared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Execute(cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			shared, err := ShareCommon(plan, cat)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := shared.Execute(cat); err != nil {
				b.Fatal(err)
			}
		}
	})
}
