// Package optimizer represents relational-algebra-with-MD-join expressions
// as plan trees and optimizes them with the paper's algebraic
// transformations: Theorem 4.2 / Observation 4.1 pushdowns, Theorem 4.3
// series combining, Theorem 4.1 partitioning, and Section 4.5 index
// selection. The rules are cost-annotated so the driver can pick between
// rewritten alternatives; every rewrite preserves the result relation
// (property-tested in rules_test.go).
package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/cube"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

// Plan is a node of a logical/physical plan tree. Execute materializes the
// node's relation against a catalog of named tables.
type Plan interface {
	// Children returns the node's inputs.
	Children() []Plan
	// Execute materializes the node.
	Execute(cat Catalog) (*table.Table, error)
	// Describe renders one line for plan printouts.
	Describe() string
}

// Catalog resolves relation names to tables.
type Catalog map[string]*table.Table

// Lookup resolves a name case-insensitively.
func (c Catalog) Lookup(name string) (*table.Table, error) {
	if t, ok := c[name]; ok {
		return t, nil
	}
	for k, t := range c {
		if strings.EqualFold(k, name) {
			return t, nil
		}
	}
	return nil, fmt.Errorf("optimizer: unknown relation %q", name)
}

// ----------------------------------------------------------------- leaves

// Scan reads a named relation from the catalog.
type Scan struct {
	Name string
}

func (s *Scan) Children() []Plan { return nil }
func (s *Scan) Describe() string { return "Scan " + s.Name }
func (s *Scan) Execute(cat Catalog) (*table.Table, error) {
	return cat.Lookup(s.Name)
}

// Literal wraps an already materialized table (e.g. a user-supplied
// base-values table, Example 2.4's precomputed data points).
type Literal struct {
	Table *table.Table
	Label string
}

func (l *Literal) Children() []Plan { return nil }
func (l *Literal) Describe() string {
	if l.Label != "" {
		return "Literal " + l.Label
	}
	return fmt.Sprintf("Literal %d rows", l.Table.Len())
}
func (l *Literal) Execute(Catalog) (*table.Table, error) { return l.Table, nil }

// ------------------------------------------------------ classic operators

// Select filters its input.
type Select struct {
	Input Plan
	Pred  expr.Expr
}

func (s *Select) Children() []Plan { return []Plan{s.Input} }
func (s *Select) Describe() string { return "Select " + s.Pred.String() }
func (s *Select) Execute(cat Catalog) (*table.Table, error) {
	in, err := s.Input.Execute(cat)
	if err != nil {
		return nil, err
	}
	return engine.Select(in, s.Pred)
}

// Project evaluates a projection list, optionally DISTINCT.
type Project struct {
	Input    Plan
	Cols     []engine.ProjCol
	Distinct bool
}

func (p *Project) Children() []Plan { return []Plan{p.Input} }
func (p *Project) Describe() string {
	names := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		names[i] = c.Name()
	}
	d := "Project"
	if p.Distinct {
		d += " DISTINCT"
	}
	return d + " " + strings.Join(names, ", ")
}
func (p *Project) Execute(cat Catalog) (*table.Table, error) {
	in, err := p.Input.Execute(cat)
	if err != nil {
		return nil, err
	}
	return engine.Project(in, p.Cols, p.Distinct)
}

// Union concatenates same-schema inputs (multiset union — Theorem 4.1's ∪).
type Union struct {
	Inputs []Plan
}

func (u *Union) Children() []Plan { return u.Inputs }
func (u *Union) Describe() string { return fmt.Sprintf("Union of %d", len(u.Inputs)) }
func (u *Union) Execute(cat Catalog) (*table.Table, error) {
	ts := make([]*table.Table, len(u.Inputs))
	for i, in := range u.Inputs {
		t, err := in.Execute(cat)
		if err != nil {
			return nil, err
		}
		ts[i] = t
	}
	return engine.Union(ts...)
}

// GroupBy is the classic grouped aggregation (used by baseline plans and
// by base-values construction).
type GroupBy struct {
	Input Plan
	Keys  []string
	Aggs  []agg.Spec
}

func (g *GroupBy) Children() []Plan { return []Plan{g.Input} }
func (g *GroupBy) Describe() string {
	return "GroupBy " + strings.Join(g.Keys, ", ")
}
func (g *GroupBy) Execute(cat Catalog) (*table.Table, error) {
	in, err := g.Input.Execute(cat)
	if err != nil {
		return nil, err
	}
	return engine.GroupBy(in, g.Keys, g.Aggs)
}

// Join is the classic equi/θ join.
type Join struct {
	Left, Right    Plan
	LAlias, RAlias string
	On             expr.Expr
	Kind           engine.JoinKind
	// Stats, when set, receives the strategy and row counts of the next
	// Execute (EXPLAIN ANALYZE instrumentation).
	Stats *engine.JoinStats
}

func (j *Join) Children() []Plan { return []Plan{j.Left, j.Right} }
func (j *Join) Describe() string {
	k := "Join"
	if j.Kind == engine.LeftOuterJoin {
		k = "LeftOuterJoin"
	}
	if j.On != nil {
		return k + " on " + j.On.String()
	}
	return k
}
func (j *Join) Execute(cat Catalog) (*table.Table, error) {
	l, err := j.Left.Execute(cat)
	if err != nil {
		return nil, err
	}
	r, err := j.Right.Execute(cat)
	if err != nil {
		return nil, err
	}
	return engine.JoinWithStats(l, r, j.LAlias, j.RAlias, j.On, j.Kind, j.Stats)
}

// ----------------------------------------------------- base-values nodes

// BaseValues builds a base-values table from a detail relation with one of
// the grouping operations of the paper's "analyze by" clause.
type BaseValues struct {
	Input Plan
	Op    string // "group", "cube", "rollup", "groupingsets", "unpivot"
	Dims  []string
	Sets  [][]string // for groupingsets
}

func (b *BaseValues) Children() []Plan { return []Plan{b.Input} }
func (b *BaseValues) Describe() string {
	return fmt.Sprintf("BaseValues %s(%s)", b.Op, strings.Join(b.Dims, ", "))
}
func (b *BaseValues) Execute(cat Catalog) (*table.Table, error) {
	in, err := b.Input.Execute(cat)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(b.Op) {
	case "group", "groupby", "group by", "distinct":
		return cube.DistinctBase(in, b.Dims...)
	case "cube", "cubeby", "cube by":
		return cube.CubeBase(in, b.Dims...)
	case "rollup":
		return cube.RollupBase(in, b.Dims...)
	case "unpivot":
		return cube.UnpivotBase(in, b.Dims...)
	case "groupingsets", "grouping sets":
		return cube.GroupingSetsBase(in, b.Dims, b.Sets)
	default:
		return nil, fmt.Errorf("optimizer: unknown base-values operation %q", b.Op)
	}
}

// -------------------------------------------------------- MD-join nodes

// MDJoin is the operator node: a generalized MD-join of Base against
// Detail with one or more phases. Opt carries the physical strategy
// (partitioning, parallelism, index/pushdown switches).
type MDJoin struct {
	Base   Plan
	Detail Plan
	// DetailName registers an extra θ qualifier (e.g. "Sales").
	DetailName string
	Phases     []core.Phase
	Opt        core.Options
}

func (m *MDJoin) Children() []Plan { return []Plan{m.Base, m.Detail} }
func (m *MDJoin) Describe() string {
	var parts []string
	for _, p := range m.Phases {
		var aggs []string
		for _, a := range p.Aggs {
			aggs = append(aggs, a.String())
		}
		theta := "true"
		if p.Theta != nil {
			theta = p.Theta.String()
		}
		parts = append(parts, fmt.Sprintf("[%s | %s]", strings.Join(aggs, ", "), theta))
	}
	d := "MDJoin " + strings.Join(parts, " ")
	if m.Opt.MaxBaseRows > 0 {
		d += fmt.Sprintf(" maxBase=%d", m.Opt.MaxBaseRows)
	}
	if m.Opt.Parallelism > 1 {
		d += fmt.Sprintf(" parallel=%d", m.Opt.Parallelism)
	}
	return d
}
func (m *MDJoin) Execute(cat Catalog) (*table.Table, error) {
	b, err := m.Base.Execute(cat)
	if err != nil {
		return nil, err
	}
	r, err := m.Detail.Execute(cat)
	if err != nil {
		return nil, err
	}
	opt := m.Opt
	if opt.RAlias == "" {
		opt.RAlias = m.DetailName
	}
	if opt.Shared != nil {
		// Cross-query shared scans: compile here, let the coordinator
		// batch this evaluation with concurrent queries over the same
		// detail table (same merged machinery, same results and Stats).
		return opt.Shared.Eval(b, r, m.Phases, opt)
	}
	return core.Eval(b, r, m.Phases, opt)
}

// SortKey is one ordering term of a Sort node.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort orders its input by the key expressions (ORDER BY).
type Sort struct {
	Input Plan
	Keys  []SortKey
}

func (s *Sort) Children() []Plan { return []Plan{s.Input} }
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}
func (s *Sort) Execute(cat Catalog) (*table.Table, error) {
	in, err := s.Input.Execute(cat)
	if err != nil {
		return nil, err
	}
	bind := expr.NewBinding()
	bind.AddRel(in.Schema, "r", "detail")
	keys := make([]*expr.Compiled, len(s.Keys))
	for i, k := range s.Keys {
		c, err := expr.Compile(k.Expr, bind)
		if err != nil {
			return nil, err
		}
		keys[i] = c
	}
	out := &table.Table{Schema: in.Schema, Rows: append([]table.Row(nil), in.Rows...)}
	frameA, frameB := make([]table.Row, 1), make([]table.Row, 1)
	sort.SliceStable(out.Rows, func(a, b int) bool {
		frameA[0], frameB[0] = out.Rows[a], out.Rows[b]
		for i, k := range keys {
			cmp := k.Eval(frameA).Compare(k.Eval(frameB))
			if s.Keys[i].Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return out, nil
}

// Limit truncates its input to the first N rows (LIMIT).
type Limit struct {
	Input Plan
	N     int
}

func (l *Limit) Children() []Plan { return []Plan{l.Input} }
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.N) }
func (l *Limit) Execute(cat Catalog) (*table.Table, error) {
	in, err := l.Input.Execute(cat)
	if err != nil {
		return nil, err
	}
	out := table.New(in.Schema)
	n := l.N
	if n > in.Len() {
		n = in.Len()
	}
	out.Rows = append(out.Rows, in.Rows[:n]...)
	return out, nil
}

// ------------------------------------------------------------- utilities

// Format renders a plan tree with indentation.
func Format(p Plan) string {
	var b strings.Builder
	var rec func(Plan, int)
	rec = func(n Plan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(p, 0)
	return b.String()
}

// Walk visits every node of the tree in pre-order.
func Walk(p Plan, f func(Plan)) {
	f(p)
	for _, c := range p.Children() {
		Walk(c, f)
	}
}
