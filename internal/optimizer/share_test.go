package optimizer

import (
	"strings"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/expr"
)

func TestShareCommonMaterializesRepeatedSubtrees(t *testing.T) {
	cat := testCatalog(21, 400)
	// Two dependent MD-joins over the same filtered detail subtree: the
	// Select(Scan) appears twice and must be shared.
	filtered := func() Plan {
		return &Select{
			Input: &Scan{Name: "Sales"},
			Pred:  expr.Eq(expr.C("year"), expr.I(1997)),
		}
	}
	inner := &MDJoin{
		Base:       &BaseValues{Input: filtered(), Op: "group", Dims: []string{"cust"}},
		Detail:     filtered(),
		DetailName: "Sales",
		Phases: []core.Phase{{
			Aggs:  []agg.Spec{agg.NewSpec("avg", expr.QC("Sales", "sale"), "avg_sale")},
			Theta: expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
		}},
	}
	outer := &MDJoin{
		Base:       inner,
		Detail:     filtered(),
		DetailName: "Sales",
		Phases: []core.Phase{{
			Aggs: []agg.Spec{agg.NewSpec("count", nil, "n_above")},
			Theta: expr.And(
				expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
				expr.Gt(expr.QC("Sales", "sale"), expr.C("avg_sale"))),
		}},
	}

	want := mustExec(t, outer, cat)

	shared, err := ShareCommon(outer, cat)
	if err != nil {
		t.Fatal(err)
	}
	got := mustExec(t, shared, cat)
	if d := want.Diff(got); d != "" {
		t.Fatalf("sharing changed the result: %s", d)
	}
	// The repeated Select subtree must now be a shared Literal.
	rendered := Format(shared)
	if !strings.Contains(rendered, "shared Select") {
		t.Errorf("expected a shared Literal in the plan:\n%s", rendered)
	}
	// Every remaining mention of the Select must be inside a shared
	// Literal's label, not a live Select node.
	if strings.Count(rendered, "Select (year = 1997)") != strings.Count(rendered, "shared Select (year = 1997)") {
		t.Errorf("repeated Select subtrees should be fully replaced:\n%s", rendered)
	}
}

func TestShareCommonLeavesUniquePlansAlone(t *testing.T) {
	cat := testCatalog(22, 200)
	plan := mdNode(
		expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
		[]agg.Spec{agg.NewSpec("count", nil, "n")},
	)
	shared, err := ShareCommon(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(Format(shared), "shared") {
		t.Errorf("no repeated subtrees, nothing should be shared:\n%s", Format(shared))
	}
	want := mustExec(t, plan, cat)
	got := mustExec(t, shared, cat)
	if d := want.Diff(got); d != "" {
		t.Fatal(d)
	}
}

func TestExecuteShared(t *testing.T) {
	cat := testCatalog(23, 300)
	plan := mdNode(
		expr.Eq(expr.QC("Sales", "cust"), expr.C("cust")),
		[]agg.Spec{agg.NewSpec("sum", expr.QC("Sales", "sale"), "total")},
	)
	want := mustExec(t, Optimize(plan), cat)
	got, err := ExecuteShared(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if d := want.Diff(got); d != "" {
		t.Fatal(d)
	}
}
