package optimizer

import (
	"mdjoin/internal/table"
)

// ShareCommon performs common-subexpression elimination at execution
// level — "usually optimizers perform common subexpression elimination",
// as Section 4.4 notes when discussing PIPESORT plans. Every non-leaf
// subtree that occurs more than once in the plan is executed exactly once
// and all its occurrences are replaced by a Literal holding the
// materialized relation. The returned plan executes without recomputing
// shared work; the original plan is untouched.
//
// Because subtrees are compared structurally (by their Format rendering),
// two occurrences must be built identically to share — which is exactly
// how the translator emits repeated detail selections and base-values
// expressions.
func ShareCommon(p Plan, cat Catalog) (Plan, error) {
	counts := map[string]int{}
	var count func(Plan)
	count = func(n Plan) {
		if len(n.Children()) > 0 {
			counts[Format(n)]++
		}
		for _, c := range n.Children() {
			count(c)
		}
	}
	count(p)

	cache := map[string]*Literal{}
	var rec func(Plan) (Plan, error)
	rec = func(n Plan) (Plan, error) {
		if len(n.Children()) == 0 {
			return n, nil
		}
		key := Format(n)
		if counts[key] > 1 {
			if lit, ok := cache[key]; ok {
				return lit, nil
			}
			// Rewrite children first so nested shared subtrees are also
			// materialized once.
			var rewriteErr error
			shared := rewriteChildren(n, func(c Plan) Plan {
				out, err := rec(c)
				if err != nil && rewriteErr == nil {
					rewriteErr = err
				}
				return out
			})
			if rewriteErr != nil {
				return nil, rewriteErr
			}
			t, err := shared.Execute(cat)
			if err != nil {
				return nil, err
			}
			lit := &Literal{Table: t, Label: "shared " + n.Describe()}
			cache[key] = lit
			return lit, nil
		}
		var rewriteErr error
		out := rewriteChildren(n, func(c Plan) Plan {
			r, err := rec(c)
			if err != nil && rewriteErr == nil {
				rewriteErr = err
			}
			return r
		})
		if rewriteErr != nil {
			return nil, rewriteErr
		}
		return out, nil
	}
	return rec(p)
}

// ExecuteShared optimizes, shares common subtrees, and executes in one
// call — the full pipeline a cost-based engine would run.
func ExecuteShared(p Plan, cat Catalog) (*table.Table, error) {
	shared, err := ShareCommon(Optimize(p), cat)
	if err != nil {
		return nil, err
	}
	return shared.Execute(cat)
}
