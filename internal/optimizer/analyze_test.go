package optimizer

import (
	"strings"
	"testing"

	"mdjoin/internal/agg"
	"mdjoin/internal/core"
	"mdjoin/internal/engine"
	"mdjoin/internal/expr"
	"mdjoin/internal/table"
)

func analyzeFixture() Catalog {
	tt := table.MustFromRows(table.SchemaOf("k", "v"), []table.Row{
		{table.Int(1), table.Float(5)},
		{table.Int(1), table.Float(7)},
		{table.Int(2), table.Float(9)},
	})
	return Catalog{"T": tt}
}

func TestExplainAnalyzeJoinStrategy(t *testing.T) {
	cat := analyzeFixture()
	hash := &Join{
		Left:   &Scan{Name: "T"},
		Right:  &Scan{Name: "T"},
		LAlias: "l", RAlias: "r",
		On:   expr.Eq(expr.QC("l", "k"), expr.QC("r", "k")),
		Kind: engine.InnerJoin,
	}
	text, res, err := ExplainAnalyze(hash, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := mustExec(t, hash, cat)
	if res.Len() != want.Len() {
		t.Fatalf("analyzed result rows = %d, want %d", res.Len(), want.Len())
	}
	if !strings.Contains(text, "strategy=hash build=3 probe=3 out=5") {
		t.Errorf("hash join line missing:\n%s", text)
	}
	if !strings.Contains(text, "actual rows=5") {
		t.Errorf("root cardinality missing:\n%s", text)
	}

	// A non-equi θ has no hashable keys, so the engine falls back to the
	// nested loop and the report must say so.
	nl := &Join{
		Left:   &Scan{Name: "T"},
		Right:  &Scan{Name: "T"},
		LAlias: "l", RAlias: "r",
		On:   expr.Lt(expr.QC("l", "v"), expr.QC("r", "v")),
		Kind: engine.InnerJoin,
	}
	text, _, err = ExplainAnalyze(nl, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "strategy=nested-loop") {
		t.Errorf("nested-loop strategy missing:\n%s", text)
	}
}

func TestExplainAnalyzeMDJoin(t *testing.T) {
	cat := analyzeFixture()
	p := &MDJoin{
		Base:       &BaseValues{Input: &Scan{Name: "T"}, Op: "group", Dims: []string{"k"}},
		Detail:     &Scan{Name: "T"},
		DetailName: "T",
		Phases: []core.Phase{{
			Aggs:  []agg.Spec{agg.NewSpec("sum", expr.QC("R", "v"), "s")},
			Theta: expr.Eq(expr.QC("R", "k"), expr.C("k")),
		}},
	}
	text, res, err := ExplainAnalyze(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2:\n%s", res.Len(), res)
	}
	for _, frag := range []string{
		"actual rows=2",
		"tier=",            // executor tier of the phase
		"indexed probes=",  // θ is an equijoin → hash index
		"pushdown=",        // selectivity counters rendered
		"typed=", "boxed=", // kernel attribution
		"phase 0:",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("analyzed MD-join missing %q:\n%s", frag, text)
		}
	}
	// The shim must not leave a Stats pointer behind on the original plan.
	if p.Opt.Stats != nil {
		t.Error("instrument mutated the source plan's Options")
	}
}
