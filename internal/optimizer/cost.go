package optimizer

import (
	"strings"

	"mdjoin/internal/expr"
)

// CostModel estimates plan costs from catalog cardinalities. The model is
// deliberately coarse — the unit is "tuples touched" — but it orders the
// alternatives the rewrite rules produce correctly: pushed selections
// shrink detail scans, combined MD-joins remove whole scans, and indexed
// MD-joins avoid the |B| factor of the nested loop.
type CostModel struct {
	Cat Catalog
	// DefaultRows is assumed for relations missing from the catalog.
	DefaultRows int
	// Selectivity is the assumed fraction of rows surviving a selection.
	Selectivity float64
}

// NewCostModel builds a model with conventional defaults (one-third
// selection selectivity, 1000-row unknown relations).
func NewCostModel(cat Catalog) *CostModel {
	return &CostModel{Cat: cat, DefaultRows: 1000, Selectivity: 1.0 / 3.0}
}

// Rows estimates a node's output cardinality.
func (cm *CostModel) Rows(p Plan) float64 {
	switch n := p.(type) {
	case *Scan:
		if t, err := cm.Cat.Lookup(n.Name); err == nil {
			return float64(t.Len())
		}
		return float64(cm.DefaultRows)
	case *Literal:
		return float64(n.Table.Len())
	case *Select:
		return cm.Rows(n.Input) * cm.Selectivity
	case *Project:
		r := cm.Rows(n.Input)
		if n.Distinct {
			return r / 2
		}
		return r
	case *Union:
		var s float64
		for _, in := range n.Inputs {
			s += cm.Rows(in)
		}
		return s
	case *GroupBy:
		return cm.Rows(n.Input) / 2
	case *Join:
		return cm.Rows(n.Left) // equijoin on a key-ish base: ~left size
	case *BaseValues:
		r := cm.Rows(n.Input) / 2
		if strings.EqualFold(n.Op, "cube") {
			r *= float64(int(1) << uint(len(n.Dims)))
		}
		return r
	case *MDJoin:
		return cm.Rows(n.Base) // |output| = |B| by Definition 3.1
	case *Sort:
		return cm.Rows(n.Input)
	case *Limit:
		r := cm.Rows(n.Input)
		if float64(n.N) < r {
			return float64(n.N)
		}
		return r
	default:
		return float64(cm.DefaultRows)
	}
}

// Cost estimates total tuples touched by the subtree.
func (cm *CostModel) Cost(p Plan) float64 {
	var children float64
	for _, c := range p.Children() {
		children += cm.Cost(c)
	}
	switch n := p.(type) {
	case *Scan, *Literal:
		return 0 // materialized already
	case *Select:
		// Selections are assumed index-assisted (the paper's clustered
		// index discussion, Example 4.1): cost is the surviving rows, not
		// the full input.
		return children + cm.Rows(n)
	case *Project, *GroupBy, *BaseValues, *Limit:
		return children + cm.Rows(n.Children()[0])
	case *Sort:
		r := cm.Rows(n.Input)
		if r < 2 {
			return children + r
		}
		return children + r*4 // ~ n log n with a small constant
	case *Union:
		return children
	case *Join:
		return children + cm.Rows(n.Left) + cm.Rows(n.Right)
	case *MDJoin:
		detail := cm.Rows(n.Detail)
		base := cm.Rows(n.Base)
		var cost float64
		for _, ph := range n.Phases {
			if hasEquiConjunct(ph.Theta, detailQuals(n)) {
				// Indexed: each tuple probes O(1) base rows.
				cost += detail
			} else {
				// Nested loop: |R| × |B| pair tests.
				cost += detail * base
			}
		}
		return children + cost + base
	default:
		return children
	}
}

// hasEquiConjunct reports whether θ contains a conjunct of the form
// base-column = detail-expression (either equality), i.e. whether the
// Section 4.5 index applies.
func hasEquiConjunct(theta expr.Expr, quals []string) bool {
	for _, cj := range expr.SplitConjuncts(theta) {
		bin, ok := cj.(*expr.Binary)
		if !ok || (bin.Op != expr.OpEq && bin.Op != expr.OpCubeEq) {
			continue
		}
		check := func(bSide, rSide expr.Expr) bool {
			c, ok := bSide.(*expr.Col)
			if !ok || c.Qual != "" {
				return false
			}
			return refsOnlyDetail(rSide, quals)
		}
		if check(bin.L, bin.R) || check(bin.R, bin.L) {
			return true
		}
	}
	return false
}
