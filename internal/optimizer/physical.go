package optimizer

// Physical planning: after the algebraic rewrites, decorate MD-join nodes
// with an execution strategy. This is where Theorem 4.1 becomes a
// cost-based decision instead of a manual option — exactly how the paper
// envisions the operator sitting inside a cost-based optimizer (Section
// 4.1).

// PhysicalConfig describes the executor's resources.
type PhysicalConfig struct {
	// MemoryBudgetBytes bounds each MD-join's resident working set; 0
	// means unbounded (single pass).
	MemoryBudgetBytes int
	// Workers enables intra-operator parallelism when > 1. Detail
	// partitioning is chosen (its single-pass total work is independent
	// of the worker count) unless a phase's aggregates cannot merge, in
	// which case base partitioning applies.
	Workers int
}

// ApplyNaive returns a copy of the plan with every MD-join node forced to
// the verbatim Algorithm 3.1 nested loop (no index, no pushdown, no
// partitioning). Together with skipping Optimize, this yields the
// slowest, most literal execution — the reference the randomized
// equivalence tests compare the optimized pipeline against.
func ApplyNaive(p Plan) Plan {
	var rec func(Plan) Plan
	rec = func(n Plan) Plan {
		n = rewriteChildren(n, rec)
		m, ok := n.(*MDJoin)
		if !ok {
			return n
		}
		opt := m.Opt
		opt.DisableIndex = true
		opt.DisablePushdown = true
		opt.MaxBaseRows = 0
		opt.MemoryBudgetBytes = 0
		opt.Parallelism = 0
		opt.DetailParallelism = 0
		return &MDJoin{Base: m.Base, Detail: m.Detail, DetailName: m.DetailName, Phases: m.Phases, Opt: opt}
	}
	return rec(p)
}

// ApplyPhysical returns a copy of the plan with every MD-join node
// configured for the given resources. It is idempotent.
func ApplyPhysical(p Plan, cfg PhysicalConfig) Plan {
	var rec func(Plan) Plan
	rec = func(n Plan) Plan {
		n = rewriteChildren(n, rec)
		m, ok := n.(*MDJoin)
		if !ok {
			return n
		}
		opt := m.Opt
		if cfg.MemoryBudgetBytes > 0 {
			opt.MemoryBudgetBytes = cfg.MemoryBudgetBytes
		}
		if cfg.Workers > 1 && opt.MaxBaseRows == 0 && opt.MemoryBudgetBytes == 0 {
			// Parallelism and Theorem 4.1 partitioning both multiply
			// scans; prefer bounded memory when both are requested.
			opt.DetailParallelism = cfg.Workers
		}
		return &MDJoin{Base: m.Base, Detail: m.Detail, DetailName: m.DetailName, Phases: m.Phases, Opt: opt}
	}
	return rec(p)
}
