package optimizer

import "mdjoin/internal/core"

// WithExecOptions returns a copy of the plan tree with apply mapped over
// every MDJoin node's Options. The input tree is never mutated, so a plan
// held in a cache (sqlext.Prepared, mdserve's plan LRU) can be shared by
// concurrent executions: each request clones the tree and stamps its own
// per-request execution parameters — context, stats sink, memory budget —
// onto the clone. Leaf nodes (Scan, Literal) are shared between the clone
// and the original; they are read-only under Execute.
func WithExecOptions(p Plan, apply func(core.Options) core.Options) Plan {
	var rec func(Plan) Plan
	rec = func(n Plan) Plan {
		n = rewriteChildren(n, rec)
		if m, ok := n.(*MDJoin); ok {
			cp := *m
			cp.Opt = apply(m.Opt)
			return &cp
		}
		return n
	}
	return rec(p)
}
