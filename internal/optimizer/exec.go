package optimizer

import "mdjoin/internal/core"

// WithExecOptions returns a copy of the plan tree with apply mapped over
// every MDJoin node's Options. The input tree is never mutated, so a plan
// held in a cache (sqlext.Prepared, mdserve's plan LRU) can be shared by
// concurrent executions: each request clones the tree and stamps its own
// per-request execution parameters — context, stats sink, memory budget —
// onto the clone. Leaf nodes (Scan, Literal) are shared between the clone
// and the original; they are read-only under Execute.
func WithExecOptions(p Plan, apply func(core.Options) core.Options) Plan {
	var rec func(Plan) Plan
	rec = func(n Plan) Plan {
		n = rewriteChildren(n, rec)
		if m, ok := n.(*MDJoin); ok {
			cp := *m
			cp.Opt = apply(m.Opt)
			return &cp
		}
		return n
	}
	return rec(p)
}

// CollectMDJoins returns every MDJoin node of the tree in pre-order.
// mdserve's materialized views use this to find the (single) operator a
// view query incrementalizes.
func CollectMDJoins(p Plan) []*MDJoin {
	var out []*MDJoin
	Walk(p, func(n Plan) {
		if m, ok := n.(*MDJoin); ok {
			out = append(out, m)
		}
	})
	return out
}

// ReplacePlanNode returns a copy of the tree with the node identical to
// old (pointer identity) replaced by repl. The input tree is never
// mutated (interior nodes are rebuilt, leaves shared), so a cached plan
// survives the grafting. This is how a view read substitutes the
// incrementally-maintained MD-join result (as a Literal) into the rest of
// its query plan — sorts, projections, limits around the operator still
// execute normally.
func ReplacePlanNode(p, old, repl Plan) Plan {
	var rec func(Plan) Plan
	rec = func(n Plan) Plan {
		if n == old {
			return repl
		}
		return rewriteChildren(n, rec)
	}
	return rec(p)
}
