package optimizer

import (
	"fmt"
	"strings"
	"time"

	"mdjoin/internal/core"
	"mdjoin/internal/engine"
	"mdjoin/internal/table"
)

// EXPLAIN ANALYZE: run the plan with every node wrapped in a timing shim
// and render the tree annotated with actual row counts, per-node wall time,
// and the operator-specific runtime stats — the core.Stats metrics tree on
// MDJoin nodes (executor tier, index probes, pushdown selectivity, boxed
// fallbacks) and the hash/nested-loop strategy on Join nodes. The static
// Explain shows what the optimizer intended; this shows what the executor
// actually did.

// NodeStats carries one analyzed node's runtime counters.
type NodeStats struct {
	// Rows is the node's output cardinality.
	Rows int `json:"rows"`
	// Nanos is the node's wall time, children included (the usual
	// EXPLAIN ANALYZE total-time convention).
	Nanos int64 `json:"nanos"`
	// MD is the MD-join metrics tree; nil on non-MDJoin nodes.
	MD *core.Stats `json:"md,omitempty"`
	// Join is the join strategy report; nil on non-Join nodes.
	Join *engine.JoinStats `json:"join,omitempty"`
}

// analyzed wraps a plan node with runtime instrumentation. It satisfies
// Plan, so the instrumented tree executes through the ordinary path.
type analyzed struct {
	inner Plan
	stats *NodeStats
}

func (a *analyzed) Children() []Plan { return a.inner.Children() }
func (a *analyzed) Describe() string { return a.inner.Describe() }
func (a *analyzed) Execute(cat Catalog) (*table.Table, error) {
	start := time.Now()
	res, err := a.inner.Execute(cat)
	a.stats.Nanos += time.Since(start).Nanoseconds()
	if res != nil {
		a.stats.Rows = res.Len()
	}
	return res, err
}

// instrument rebuilds the tree bottom-up with every node wrapped in an
// analyzed shim; MDJoin nodes get a fresh Stats tree injected into their
// Options and Join nodes a JoinStats, so the operators report into the
// shims' counters.
func instrument(p Plan) Plan {
	inner := rewriteChildren(p, instrument)
	ns := &NodeStats{}
	switch n := inner.(type) {
	case *MDJoin:
		opt := n.Opt
		ns.MD = &core.Stats{}
		opt.Stats = ns.MD
		inner = &MDJoin{Base: n.Base, Detail: n.Detail, DetailName: n.DetailName, Phases: n.Phases, Opt: opt}
	case *Join:
		ns.Join = &engine.JoinStats{}
		inner = &Join{Left: n.Left, Right: n.Right, LAlias: n.LAlias, RAlias: n.RAlias, On: n.On, Kind: n.Kind, Stats: ns.Join}
	}
	return &analyzed{inner: inner, stats: ns}
}

// ExplainAnalyze executes the plan against the catalog with instrumentation
// and returns the annotated plan rendering together with the result table.
func ExplainAnalyze(p Plan, cat Catalog) (string, *table.Table, error) {
	return ExplainAnalyzeInto(p, cat, nil)
}

// ExplainAnalyzeInto is ExplainAnalyze with every instrumented MD-join's
// metrics additionally merged into stats (when non-nil) — the per-query
// Stats a serving layer returns alongside the annotated rendering.
func ExplainAnalyzeInto(p Plan, cat Catalog, stats *core.Stats) (string, *table.Table, error) {
	ip := instrument(p)
	res, err := ip.Execute(cat)
	if err != nil {
		return "", nil, err
	}
	if stats != nil {
		var rec func(Plan)
		rec = func(n Plan) {
			if a, ok := n.(*analyzed); ok && a.stats.MD != nil {
				stats.Merge(a.stats.MD)
			}
			for _, c := range n.Children() {
				rec(c)
			}
		}
		rec(ip)
	}
	return formatAnalyzed(ip), res, nil
}

// formatAnalyzed renders the instrumented tree: each node's Describe line
// annotated with actual counters, and the operator stats indented beneath.
func formatAnalyzed(p Plan) string {
	var b strings.Builder
	var rec func(Plan, int)
	rec = func(n Plan, depth int) {
		pad := strings.Repeat("  ", depth)
		a, ok := n.(*analyzed)
		if !ok {
			b.WriteString(pad + n.Describe() + "\n")
			for _, c := range n.Children() {
				rec(c, depth+1)
			}
			return
		}
		fmt.Fprintf(&b, "%s%s (actual rows=%d time=%v)\n",
			pad, a.inner.Describe(), a.stats.Rows,
			time.Duration(a.stats.Nanos).Round(time.Microsecond))
		if md := a.stats.MD; md != nil {
			for _, line := range md.Lines() {
				b.WriteString(pad + "    " + line + "\n")
			}
		}
		if js := a.stats.Join; js != nil {
			strat := "nested-loop"
			if js.Hash {
				strat = "hash"
			}
			fmt.Fprintf(&b, "%s    strategy=%s build=%d probe=%d out=%d\n",
				pad, strat, js.BuildRows, js.ProbeRows, js.Output)
		}
		for _, c := range a.Children() {
			rec(c, depth+1)
		}
	}
	rec(p, 0)
	return b.String()
}
