package analysis

// Dataflow over the CFG: a generic iterative forward solver plus the two
// concrete analyses the passes share — reaching definitions (which
// assignments of a variable can reach a use) and a must-precede query
// (does every path from entry pass a mark before a node). Both are
// per-function and flow-sensitive; neither follows calls — cross-function
// knowledge travels through facts instead (see facts.go).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ForwardDataflow runs an iterative forward analysis to a fixed point.
// boundary seeds the entry block; join merges predecessor out-states;
// transfer advances a state across one block's nodes; equal bounds the
// iteration. Returns each block's entry state.
func ForwardDataflow[S any](c *CFG, boundary S, join func(S, S) S, transfer func(*Block, S) S, equal func(S, S) bool) map[*Block]S {
	in := make(map[*Block]S, len(c.Blocks))
	out := make(map[*Block]S, len(c.Blocks))
	seen := make(map[*Block]bool, len(c.Blocks))
	in[c.Entry] = boundary

	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		s := in[blk]
		if blk != c.Entry {
			first := true
			for _, p := range blk.Preds {
				if !seen[p] {
					continue
				}
				if first {
					s = out[p]
					first = false
				} else {
					s = join(s, out[p])
				}
			}
			if first {
				continue // no processed predecessor yet
			}
			in[blk] = s
		}
		next := transfer(blk, s)
		if seen[blk] && equal(out[blk], next) {
			continue
		}
		seen[blk] = true
		out[blk] = next
		for _, succ := range blk.Succs {
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// ----------------------------------------------------------------- defs

// Def is one definition site of a variable: the assignment, declaration,
// or range clause that (re)binds it.
type Def struct {
	Var  *types.Var
	Site ast.Node // AssignStmt, ValueSpec, RangeStmt, Field (param), ...
}

// ReachingDefs computes, for each block entry, the set of definitions of
// each variable that may reach it. Definitions inside nested function
// literals are excluded — a closure's assignments are its own CFG's
// problem (and the escape analysis flags the sharing).
type ReachingDefs struct {
	cfg  *CFG
	info *types.Info
	defs []Def
	// siteDefs caches which def indices each block node generates.
	siteDefs  map[ast.Node][]int
	entryDefs []int
	in        map[*Block][]uint64
}

// NewReachingDefs builds the analysis for one function body's CFG.
// params are the function's parameter/receiver fields, treated as
// definitions at entry.
func NewReachingDefs(cfg *CFG, info *types.Info, params []*ast.Field) *ReachingDefs {
	rd := &ReachingDefs{cfg: cfg, info: info, siteDefs: map[ast.Node][]int{}}
	byVar := map[*types.Var][]int{}
	addDef := func(v *types.Var, site ast.Node) int {
		i := len(rd.defs)
		rd.defs = append(rd.defs, Def{Var: v, Site: site})
		byVar[v] = append(byVar[v], i)
		return i
	}
	for _, f := range params {
		for _, name := range f.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				rd.entryDefs = append(rd.entryDefs, addDef(v, f))
			}
		}
	}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			for _, v := range defsOf(info, n) {
				rd.siteDefs[n] = append(rd.siteDefs[n], addDef(v, n))
			}
		}
	}

	words := (len(rd.defs) + 63) / 64
	gen := func(blk *Block, in []uint64) []uint64 {
		out := append(make([]uint64, 0, words), in...)
		apply := func(idxs []int) {
			for _, i := range idxs {
				// Kill every other def of the same var, then set this one.
				for _, j := range byVar[rd.defs[i].Var] {
					out[j/64] &^= 1 << (j % 64)
				}
				out[i/64] |= 1 << (i % 64)
			}
		}
		if blk == cfg.Entry {
			apply(rd.entryDefs)
		}
		for _, n := range blk.Nodes {
			apply(rd.siteDefs[n])
		}
		return out
	}
	boundary := make([]uint64, words)
	rd.in = ForwardDataflow(cfg, boundary,
		func(a, b []uint64) []uint64 {
			out := append(make([]uint64, 0, words), a...)
			for i := range out {
				out[i] |= b[i]
			}
			return out
		},
		gen,
		func(a, b []uint64) bool {
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		})
	return rd
}

// defsOf extracts the variables a single CFG node (re)binds, skipping
// nested function literals.
func defsOf(info *types.Info, n ast.Node) []*types.Var {
	var out []*types.Var
	bind := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var obj types.Object
		if d, ok := info.Defs[id]; ok {
			obj = d
		} else if u, ok := info.Uses[id]; ok {
			obj = u
		}
		if v, ok := obj.(*types.Var); ok {
			out = append(out, v)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			bind(lhs)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						bind(name)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			bind(n.Key)
		}
		if n.Value != nil {
			bind(n.Value)
		}
	case *ast.IncDecStmt:
		bind(n.X)
	case *ast.IfStmt:
		if n.Init != nil {
			return defsOf(info, n.Init)
		}
	}
	return out
}

// DefsAt returns the definitions of v that may reach the given node
// (resolved to its containing block slot; defs earlier in the same block
// shadow incoming ones).
func (rd *ReachingDefs) DefsAt(q ast.Node, v *types.Var) []Def {
	blk, idx, ok := rd.cfg.NodeBlock(q)
	if !ok {
		return nil
	}
	live := append([]uint64(nil), rd.in[blk]...)
	if live == nil {
		live = make([]uint64, (len(rd.defs)+63)/64)
	}
	applyDef := func(di int) {
		for j, d := range rd.defs {
			if d.Var == rd.defs[di].Var {
				live[j/64] &^= 1 << (j % 64)
			}
		}
		live[di/64] |= 1 << (di % 64)
	}
	if blk == rd.cfg.Entry {
		// The solver applies param defs inside Entry's transfer, so the
		// in-state lacks them; replay for the in-block view.
		for _, di := range rd.entryDefs {
			applyDef(di)
		}
	}
	for i := 0; i < idx; i++ {
		for _, di := range rd.siteDefs[blk.Nodes[i]] {
			applyDef(di)
		}
	}
	var out []Def
	for i, d := range rd.defs {
		if d.Var == v && live[i/64]&(1<<(i%64)) != 0 {
			out = append(out, d)
		}
	}
	return out
}

// ---------------------------------------------------------- must-precede

// MustPrecede reports whether every path from the CFG entry to node q
// passes a node satisfying mark before reaching q. Marks in the same
// block count only when they appear at an earlier node index. Used for
// dominance-style checks like "the poison check must precede the first
// arena touch".
func (c *CFG) MustPrecede(mark func(ast.Node) bool, q ast.Node) bool {
	blk, idx, ok := c.NodeBlock(q)
	if !ok {
		return false
	}
	for i := 0; i < idx; i++ {
		if mark(blk.Nodes[i]) {
			return true
		}
	}
	// in[b] = true iff every path from entry to b's start passes a mark.
	in := ForwardDataflow(c, false,
		func(a, b bool) bool { return a && b },
		func(b *Block, s bool) bool {
			if s {
				return true
			}
			for _, n := range b.Nodes {
				if mark(n) {
					return true
				}
			}
			return false
		},
		func(a, b bool) bool { return a == b })
	return in[blk]
}
