package analysis

// Control-flow graphs over go/ast function bodies — the substrate the
// dataflow-capable analyzers (lockhold, releasepath, poisoncheck) run on.
//
// The shape mirrors golang.org/x/tools/go/cfg at a fraction of the
// surface: a CFG is a list of basic blocks, each holding the statements
// (and branch-condition expressions) that execute in order, with Succs
// and Preds mirroring each other. Branching statements (if, for, range,
// switch, select, goto, labeled break/continue) split blocks; return and
// panic(...) edges lead to the synthetic Exit block. Unreachable blocks
// are pruned after construction, so every surviving block is reachable
// from Entry — the invariant FuzzCFGBuild holds the builder to.
//
// Panic edges are deliberately coarse: any call may panic, so instead of
// multiplying edges per call site, analyses that care about abnormal exit
// (releasepath) treat a deferred statement as covering every path — a
// defer runs on panic unwinding too — and treat non-deferred cleanup as
// skippable by any intervening call.

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block: Nodes execute in order, then control moves to
// one of Succs. The Exit block has no successors; a block whose Nodes end
// in a return or panic has Exit as its only successor.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "body", "if.then", "for.head", ...
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is Entry; Exit is always present
	Entry  *Block
	Exit   *Block
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	cfg *CFG

	// branch targets: innermost-first stacks for break/continue, plus
	// label-resolved targets.
	breaks    []*targets
	labels    map[string]*labelInfo
	curLabel  string // pending label for the next breakable statement
	unreached bool   // current block is syntactically unreachable
	cur       *Block
}

// targets is one breakable/continuable region.
type targets struct {
	label     string
	brk, cont *Block // cont nil for switch/select
}

// labelInfo tracks a goto/labeled-branch target.
type labelInfo struct {
	block *Block // the label's block (created on first reference or definition)
}

// BuildCFG constructs the CFG of a function body. A nil body yields a
// two-block graph (entry → exit).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelInfo{},
	}
	entry := b.newBlock("entry")
	b.cfg.Entry = entry
	b.cfg.Exit = b.newBlock("exit")
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.cfg.Exit)
	b.prune()
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge connects from → to unless from is nil (dead flow) or the edge
// already exists.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock begins a fresh block and makes it current, linking from the
// previous current block when flow can fall through.
func (b *cfgBuilder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	if !b.unreached {
		b.edge(b.cur, blk)
	}
	b.unreached = false
	b.cur = blk
	return blk
}

// terminate marks the current flow as ended (return/goto/panic): the next
// started block gets no fall-through edge.
func (b *cfgBuilder) terminate() { b.unreached = true }

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// add appends a node to the current block (starting a fresh one after a
// terminator so stray statements still live somewhere — they are pruned
// as unreachable unless a label points at them).
func (b *cfgBuilder) add(n ast.Node) {
	if b.unreached {
		b.startBlockDetached("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// startBlockDetached begins a block with no incoming fall-through edge.
func (b *cfgBuilder) startBlockDetached(kind string) *Block {
	blk := b.newBlock(kind)
	b.unreached = false
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		condUnreached := b.unreached
		join := b.newBlock("if.join")

		thenBlk := b.newBlock("if.then")
		if !condUnreached {
			b.edge(condBlk, thenBlk)
		}
		b.unreached = condUnreached
		b.cur = thenBlk
		b.stmt(s.Body)
		if !b.unreached {
			b.edge(b.cur, join)
		}

		if s.Else != nil {
			elseBlk := b.newBlock("if.else")
			if !condUnreached {
				b.edge(condBlk, elseBlk)
			}
			b.unreached = condUnreached
			b.cur = elseBlk
			b.stmt(s.Else)
			if !b.unreached {
				b.edge(b.cur, join)
			}
		} else if !condUnreached {
			b.edge(condBlk, join)
		}
		b.unreached = false
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock("for.head")
		if s.Cond != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		}
		exit := b.newBlock("for.exit")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
		}
		if s.Cond != nil {
			b.edge(head, exit)
		}
		b.pushTargets(label, exit, post)
		body := b.newBlock("for.body")
		b.edge(head, body)
		b.unreached = false
		b.cur = body
		b.stmt(s.Body)
		if !b.unreached {
			b.edge(b.cur, post)
		}
		b.popTargets()
		b.unreached = false
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.startBlock("range.head")
		head.Nodes = append(head.Nodes, s)
		exit := b.newBlock("range.exit")
		b.edge(head, exit)
		b.pushTargets(label, exit, head)
		body := b.newBlock("range.body")
		b.edge(head, body)
		b.unreached = false
		b.cur = body
		b.stmt(s.Body)
		if !b.unreached {
			b.edge(b.cur, head)
		}
		b.popTargets()
		b.unreached = false
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.switchLike(s)

	case *ast.LabeledStmt:
		info := b.labelInfo(s.Label.Name)
		if !b.unreached {
			b.edge(b.cur, info.block)
		}
		b.unreached = false
		b.cur = info.block
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.terminate()

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.edge(b.cur, b.cfg.Exit)
				b.terminate()
			}
		}

	case nil:
		// Empty else or statement: nothing.

	default:
		// Declarations, assignments, go/defer/send/incdec/empty: straight-line.
		if _, ok := s.(*ast.EmptyStmt); !ok {
			b.add(s)
		}
	}
}

// switchLike handles switch, type switch, and select: one head block, one
// block per clause, all joining at a shared exit (the break target).
func (b *cfgBuilder) switchLike(s ast.Stmt) {
	label := b.takeLabel()
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	head := b.cur
	headUnreached := b.unreached
	exit := b.newBlock("switch.exit")
	b.pushTargets(label, exit, nil)

	// Clause blocks first, so fallthrough can target the next one.
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock("switch.case")
		if !headUnreached {
			b.edge(head, blocks[i])
		}
	}
	for i, c := range clauses {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				blocks[i].Nodes = append(blocks[i].Nodes, e)
			}
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				blocks[i].Nodes = append(blocks[i].Nodes, c.Comm)
			} else {
				hasDefault = true
			}
			list = c.Body
		}
		b.unreached = headUnreached
		b.cur = blocks[i]
		for _, st := range list {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				if i+1 < len(blocks) && !b.unreached {
					b.edge(b.cur, blocks[i+1])
				}
				b.terminate()
				continue
			}
			b.stmt(st)
		}
		if !b.unreached {
			b.edge(b.cur, exit)
		}
	}
	// A switch/select without a default can skip every clause (no tag
	// matches); select without default blocks, but modelling the
	// fall-past edge keeps the analyses conservative either way.
	if !hasDefault && !headUnreached {
		b.edge(head, exit)
	}
	b.popTargets()
	b.unreached = false
	b.cur = exit
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		if t := b.findTargets(s.Label); t != nil {
			b.edge(b.cur, t.brk)
		}
		b.terminate()
	case "continue":
		if t := b.findTargets(s.Label); t != nil && t.cont != nil {
			b.edge(b.cur, t.cont)
		}
		b.terminate()
	case "goto":
		if s.Label != nil {
			b.edge(b.cur, b.labelInfo(s.Label.Name).block)
		}
		b.terminate()
	case "fallthrough":
		// Handled inside switchLike; a stray one terminates flow.
		b.terminate()
	}
}

func (b *cfgBuilder) labelInfo(name string) *labelInfo {
	if info, ok := b.labels[name]; ok {
		return info
	}
	info := &labelInfo{block: b.newBlock("label." + name)}
	b.labels[name] = info
	return info
}

func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *cfgBuilder) pushTargets(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, &targets{label: label, brk: brk, cont: cont})
}

func (b *cfgBuilder) popTargets() { b.breaks = b.breaks[:len(b.breaks)-1] }

// findTargets resolves a break/continue: unlabeled → innermost; labeled →
// the region carrying that label. For continue, the innermost region with
// a cont target (switch/select are break-only).
func (b *cfgBuilder) findTargets(label *ast.Ident) *targets {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		t := b.breaks[i]
		if label != nil {
			if t.label == label.Name {
				return t
			}
			continue
		}
		return t
	}
	return nil
}

// prune removes blocks unreachable from Entry (except Exit, which is kept
// even when no return reaches it — an infinite loop) and renumbers.
func (b *cfgBuilder) prune() {
	cfg := b.cfg
	reach := map[*Block]bool{cfg.Entry: true}
	stack := []*Block{cfg.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	reach[cfg.Exit] = true
	keep := cfg.Blocks[:0]
	for _, blk := range cfg.Blocks {
		if reach[blk] {
			keep = append(keep, blk)
			continue
		}
		// Drop the dead block's edges from survivors' pred lists.
		for _, s := range blk.Succs {
			s.Preds = removeBlock(s.Preds, blk)
		}
		for _, p := range blk.Preds {
			p.Succs = removeBlock(p.Succs, blk)
		}
	}
	cfg.Blocks = keep
	for i, blk := range cfg.Blocks {
		blk.Index = i
	}
}

func removeBlock(list []*Block, b *Block) []*Block {
	out := list[:0]
	for _, x := range list {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

// NodeBlock locates the block (and node index within it) whose node
// contains the query node's position — sub-expressions of a statement
// resolve to the statement's slot. When several block nodes contain the
// position (a RangeStmt head node spans its whole body), the smallest
// wins, so body statements resolve to body blocks. Returns ok=false for
// nodes outside the graph (e.g. inside a nested function literal's body).
func (c *CFG) NodeBlock(q ast.Node) (*Block, int, bool) {
	var (
		bestBlk  *Block
		bestIdx  int
		bestSpan = int64(-1)
	)
	for _, blk := range c.Blocks {
		for i, n := range blk.Nodes {
			if n.Pos() <= q.Pos() && q.End() <= n.End() {
				if containsInNestedFunc(n, q) {
					continue
				}
				span := int64(n.End() - n.Pos())
				if bestSpan < 0 || span < bestSpan {
					bestBlk, bestIdx, bestSpan = blk, i, span
				}
			}
		}
	}
	return bestBlk, bestIdx, bestSpan >= 0
}

// containsInNestedFunc reports whether q sits inside a function literal
// nested under n (nested bodies have their own CFGs).
func containsInNestedFunc(n, q ast.Node) bool {
	if n == q {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := x.(*ast.FuncLit); ok && lit != q {
			if lit.Body != nil && lit.Body.Pos() <= q.Pos() && q.End() <= lit.Body.End() {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

// String renders the graph for debugging and test failures.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "%s ->", blk)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " %s", s)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
